// Workloads for the discrete-step simulator: a CC graph plus an evolution
// rule applied after every round. These realize the settings of the paper's
// evaluation —
//   StationaryWorkload — Fig. 3: a fixed random CC graph; committed tasks
//       are replaced by statistically identical ones, so the operating
//       point μ is constant and convergence can be measured.
//   ConsumingWorkload  — committed tasks leave the work-set (the basic
//       amorphous-data-parallel loop); the graph drains to empty.
//   RefiningWorkload   — Delaunay-refinement-like: a committed task spawns
//       children that conflict with each other and with the neighborhood;
//       parallelism ramps from almost nothing to thousands of tasks within
//       tens of steps (the Lonestar profile the paper cites, §4.1).
//   PhaseShiftWorkload — abrupt swaps between CC graphs of very different
//       density, exercising the controller's re-convergence speed.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/dynamic_graph.hpp"
#include "support/rng.hpp"

namespace optipar {

class Workload {
 public:
  virtual ~Workload() = default;

  /// Tasks currently available to launch.
  [[nodiscard]] virtual std::uint32_t pending() const = 0;
  [[nodiscard]] virtual bool done() const { return pending() == 0; }

  /// Sample up to m distinct pending tasks, already in commit order.
  [[nodiscard]] virtual std::vector<NodeId> sample_active(std::uint32_t m,
                                                          Rng& rng) = 0;
  /// Conflict test between two pending tasks.
  [[nodiscard]] virtual bool conflicts(NodeId a, NodeId b) const = 0;

  /// Apply the evolution rule after a round.
  virtual void on_round(const std::vector<NodeId>& committed,
                        const std::vector<NodeId>& aborted, Rng& rng) = 0;

  /// Density of the current CC graph (for traces).
  [[nodiscard]] virtual double average_degree() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Fixed CC graph; rounds never consume nodes.
class StationaryWorkload final : public Workload {
 public:
  explicit StationaryWorkload(CsrGraph graph);

  [[nodiscard]] std::uint32_t pending() const override;
  [[nodiscard]] bool done() const override { return false; }
  [[nodiscard]] std::vector<NodeId> sample_active(std::uint32_t m,
                                                  Rng& rng) override;
  [[nodiscard]] bool conflicts(NodeId a, NodeId b) const override;
  void on_round(const std::vector<NodeId>&, const std::vector<NodeId>&,
                Rng&) override {}
  [[nodiscard]] double average_degree() const override;
  [[nodiscard]] std::string name() const override { return "stationary"; }

  [[nodiscard]] const CsrGraph& graph() const noexcept { return graph_; }

 private:
  CsrGraph graph_;
};

/// Committed nodes are removed; the graph drains.
class ConsumingWorkload final : public Workload {
 public:
  explicit ConsumingWorkload(const CsrGraph& graph);

  [[nodiscard]] std::uint32_t pending() const override;
  [[nodiscard]] std::vector<NodeId> sample_active(std::uint32_t m,
                                                  Rng& rng) override;
  [[nodiscard]] bool conflicts(NodeId a, NodeId b) const override;
  void on_round(const std::vector<NodeId>& committed,
                const std::vector<NodeId>&, Rng& rng) override;
  [[nodiscard]] double average_degree() const override;
  [[nodiscard]] std::string name() const override { return "consuming"; }

  [[nodiscard]] const DynamicGraph& graph() const noexcept { return graph_; }

 private:
  DynamicGraph graph_;
};

/// DMR-like growth: each committed task is removed and, while the task
/// budget lasts, spawns `children` new tasks that form a clique and attach
/// to a few survivors of the old neighborhood.
struct RefiningParams {
  std::uint32_t seed_nodes = 8;       ///< initial work-set size
  std::uint32_t children = 3;         ///< tasks spawned per commit
  std::uint32_t attach_neighbors = 2; ///< old-neighborhood edges inherited
  std::uint64_t total_budget = 4000;  ///< spawning stops after this many
  double spawn_probability = 1.0;     ///< chance a commit spawns at all
};

class RefiningWorkload final : public Workload {
 public:
  RefiningWorkload(const RefiningParams& params, Rng& rng);

  [[nodiscard]] std::uint32_t pending() const override;
  [[nodiscard]] std::vector<NodeId> sample_active(std::uint32_t m,
                                                  Rng& rng) override;
  [[nodiscard]] bool conflicts(NodeId a, NodeId b) const override;
  void on_round(const std::vector<NodeId>& committed,
                const std::vector<NodeId>&, Rng& rng) override;
  [[nodiscard]] double average_degree() const override;
  [[nodiscard]] std::string name() const override { return "refining"; }

  [[nodiscard]] std::uint64_t spawned() const noexcept { return spawned_; }
  [[nodiscard]] const DynamicGraph& graph() const noexcept { return graph_; }

 private:
  RefiningParams params_;
  DynamicGraph graph_;
  std::uint64_t spawned_ = 0;
};

/// A sequence of (duration, graph) stages; stationary within each stage.
class PhaseShiftWorkload final : public Workload {
 public:
  struct Stage {
    std::uint32_t duration;  ///< rounds before advancing
    CsrGraph graph;
  };
  explicit PhaseShiftWorkload(std::vector<Stage> stages);

  [[nodiscard]] std::uint32_t pending() const override;
  [[nodiscard]] bool done() const override;
  [[nodiscard]] std::vector<NodeId> sample_active(std::uint32_t m,
                                                  Rng& rng) override;
  [[nodiscard]] bool conflicts(NodeId a, NodeId b) const override;
  void on_round(const std::vector<NodeId>&, const std::vector<NodeId>&,
                Rng&) override;
  [[nodiscard]] double average_degree() const override;
  [[nodiscard]] std::string name() const override { return "phase-shift"; }

  [[nodiscard]] std::size_t current_stage() const noexcept { return stage_; }

 private:
  std::vector<Stage> stages_;
  std::size_t stage_ = 0;
  std::uint32_t rounds_in_stage_ = 0;
};

}  // namespace optipar
