#include "sim/profile.hpp"

#include <algorithm>

#include "sim/step_simulator.hpp"

namespace optipar {

std::vector<ProfilePoint> parallelism_profile(Workload& workload,
                                              std::uint32_t max_steps,
                                              Rng& rng) {
  std::vector<ProfilePoint> profile;
  for (std::uint32_t t = 0; t < max_steps && !workload.done(); ++t) {
    ProfilePoint p;
    p.step = t;
    p.available = workload.pending();
    const RoundOutcome outcome = run_round(workload, p.available, rng);
    p.executed = static_cast<std::uint32_t>(outcome.committed.size());
    profile.push_back(p);
  }
  return profile;
}

std::uint32_t profile_peak(const std::vector<ProfilePoint>& profile) {
  std::uint32_t peak = 0;
  for (const auto& p : profile) peak = std::max(peak, p.executed);
  return peak;
}

std::uint32_t steps_to_fraction_of_peak(
    const std::vector<ProfilePoint>& profile, double fraction) {
  const double target = fraction * profile_peak(profile);
  for (const auto& p : profile) {
    if (static_cast<double>(p.executed) >= target) return p.step;
  }
  return profile.empty() ? 0 : profile.back().step + 1;
}

}  // namespace optipar
