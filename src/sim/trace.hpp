// Per-round execution records and derived controller-quality metrics
// (convergence time, steady-state oscillation, wasted work) — the
// quantities Fig. 3 and §4.1 discuss.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "control/controller.hpp"

namespace optipar {

struct StepRecord {
  std::uint32_t step = 0;
  std::uint32_t m = 0;          ///< allocation requested by the controller
  std::uint32_t launched = 0;   ///< min(m, pending work)
  std::uint32_t committed = 0;
  std::uint32_t aborted = 0;
  std::uint32_t pending_after = 0;  ///< tasks remaining after the round
  double avg_degree = 0.0;          ///< CC-graph density when launched
  // Failure-handling observations (DESIGN.md §8); all zero in fault-free
  // runs and in the discrete-step simulator.
  std::uint32_t retried = 0;      ///< faulted tasks requeued with backoff
  std::uint32_t quarantined = 0;  ///< faulted tasks dead-lettered
  std::uint32_t injected = 0;     ///< faults the injector fired
  bool degraded = false;          ///< round ran in forced-serial mode
  /// Rendered RoundStats::first_error of the round (empty when fault-free).
  /// run_adaptive fills this so absorbed failures are never invisible in a
  /// trace — previously first_error died inside RoundStats (DESIGN.md §10).
  std::string error;

  [[nodiscard]] double conflict_ratio() const noexcept {
    return launched == 0
               ? 0.0
               : static_cast<double>(aborted) / static_cast<double>(launched);
  }
};

struct Trace {
  std::vector<StepRecord> steps;
  /// Step at which the livelock watchdog degraded the run to serial
  /// (DESIGN.md §8); SIZE_MAX when it never fired.
  std::size_t degraded_at_step = static_cast<std::size_t>(-1);

  [[nodiscard]] bool watchdog_fired() const noexcept {
    return degraded_at_step != static_cast<std::size_t>(-1);
  }
  [[nodiscard]] std::uint64_t total_committed() const noexcept;
  [[nodiscard]] std::uint64_t total_aborted() const noexcept;
  [[nodiscard]] std::uint64_t total_retried() const noexcept;
  [[nodiscard]] std::uint64_t total_quarantined() const noexcept;
  [[nodiscard]] std::uint64_t total_injected() const noexcept;
  /// Fraction of all launched work that was wasted on aborts.
  [[nodiscard]] double wasted_fraction() const noexcept;
  /// Mean observed conflict ratio over rounds in [from, steps.size()).
  [[nodiscard]] double mean_conflict_ratio(std::size_t from = 0) const;

  /// First step s such that m stays within (1 ± band)·mu_ref for `hold`
  /// consecutive steps starting at s. Returns steps.size() if never.
  [[nodiscard]] std::size_t convergence_step(double mu_ref, double band,
                                             std::size_t hold = 5) const;

  /// Root-mean-square of (m − mu_ref)/mu_ref over steps >= from — the
  /// steady-state oscillation measure used by the ablation benches.
  [[nodiscard]] double rms_relative_error(double mu_ref,
                                          std::size_t from) const;
};

/// One `{"type":"round",...}` JSONL object per line. This is the canonical
/// structured form of a StepRecord; the telemetry layer's TraceEvent lines
/// (support/telemetry) interleave with these in a --trace-out file rather
/// than duplicating the per-round fields.
void write_step_jsonl(std::ostream& os, const StepRecord& rec);

/// Every step of the trace, plus a final `{"type":"trace_summary",...}`
/// line with the aggregate totals.
void write_trace_jsonl(std::ostream& os, const Trace& trace);

}  // namespace optipar
