// Available-parallelism profiles in the style of the Lonestar suite [15],
// which the paper uses to motivate fast adaptation (§4.1): run the workload
// with unbounded processors and record, per temporal step, the size of the
// maximal independent set actually executed — the amount of parallelism an
// ideal scheduler could exploit at that instant.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/workloads.hpp"
#include "support/rng.hpp"

namespace optipar {

struct ProfilePoint {
  std::uint32_t step = 0;
  std::uint32_t available = 0;  ///< pending tasks before the step
  std::uint32_t executed = 0;   ///< committed with unbounded processors
};

/// Drive the workload to completion (or max_steps) launching *all* pending
/// tasks each round; the committed count per round is the parallelism
/// profile.
[[nodiscard]] std::vector<ProfilePoint> parallelism_profile(
    Workload& workload, std::uint32_t max_steps, Rng& rng);

/// Peak executed parallelism in a profile.
[[nodiscard]] std::uint32_t profile_peak(
    const std::vector<ProfilePoint>& profile);

/// Steps needed to first reach `fraction` of the peak (the "0 → 1000 tasks
/// in ~30 steps" ramp metric).
[[nodiscard]] std::uint32_t steps_to_fraction_of_peak(
    const std::vector<ProfilePoint>& profile, double fraction);

}  // namespace optipar
