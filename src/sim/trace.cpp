#include "sim/trace.hpp"

#include <ostream>

#include "support/telemetry/metrics_registry.hpp"

namespace optipar {

namespace {
void write_escaped(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) >= 0x20) os << c;
    }
  }
}
}  // namespace

void write_step_jsonl(std::ostream& os, const StepRecord& rec) {
  os << "{\"type\":\"round\",\"step\":" << rec.step << ",\"m\":" << rec.m
     << ",\"launched\":" << rec.launched
     << ",\"committed\":" << rec.committed << ",\"aborted\":" << rec.aborted
     << ",\"retried\":" << rec.retried
     << ",\"quarantined\":" << rec.quarantined
     << ",\"injected\":" << rec.injected
     << ",\"pending_after\":" << rec.pending_after << ",\"r\":"
     << MetricsRegistry::format_value(rec.conflict_ratio())
     << ",\"degraded\":" << (rec.degraded ? "true" : "false");
  if (!rec.error.empty()) {
    os << ",\"error\":\"";
    write_escaped(os, rec.error);
    os << '"';
  }
  os << "}\n";
}

void write_trace_jsonl(std::ostream& os, const Trace& trace) {
  for (const StepRecord& rec : trace.steps) write_step_jsonl(os, rec);
  os << "{\"type\":\"trace_summary\",\"rounds\":" << trace.steps.size()
     << ",\"committed\":" << trace.total_committed()
     << ",\"aborted\":" << trace.total_aborted()
     << ",\"retried\":" << trace.total_retried()
     << ",\"quarantined\":" << trace.total_quarantined()
     << ",\"injected\":" << trace.total_injected() << ",\"wasted\":"
     << MetricsRegistry::format_value(trace.wasted_fraction())
     << ",\"watchdog_fired\":"
     << (trace.watchdog_fired() ? "true" : "false") << "}\n";
}

}  // namespace optipar
