#include "sim/step_simulator.hpp"

namespace optipar {

RoundOutcome run_round(Workload& workload, std::uint32_t m, Rng& rng) {
  RoundOutcome out;
  const std::vector<NodeId> active = workload.sample_active(m, rng);
  out.committed.reserve(active.size());
  for (const NodeId v : active) {
    bool blocked = false;
    for (const NodeId c : out.committed) {
      if (workload.conflicts(v, c)) {
        blocked = true;
        break;
      }
    }
    if (blocked) {
      out.aborted.push_back(v);
    } else {
      out.committed.push_back(v);
    }
  }
  workload.on_round(out.committed, out.aborted, rng);
  return out;
}

}  // namespace optipar
