#include "sim/workloads.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/generators.hpp"

namespace optipar {

namespace {

/// Sample up to m distinct entries of `pool` in random order.
std::vector<NodeId> sample_from_pool(const std::vector<NodeId>& pool,
                                     std::uint32_t m, Rng& rng) {
  const auto k = std::min<std::uint32_t>(
      m, static_cast<std::uint32_t>(pool.size()));
  auto indices =
      rng.sample_without_replacement(static_cast<std::uint32_t>(pool.size()),
                                     k);
  std::vector<NodeId> out;
  out.reserve(k);
  for (const auto i : indices) out.push_back(pool[i]);
  return out;
}

}  // namespace

// ---------------------------------------------------------------- stationary

StationaryWorkload::StationaryWorkload(CsrGraph graph)
    : graph_(std::move(graph)) {}

std::uint32_t StationaryWorkload::pending() const {
  return graph_.num_nodes();
}

std::vector<NodeId> StationaryWorkload::sample_active(std::uint32_t m,
                                                      Rng& rng) {
  return rng.sample_without_replacement(
      graph_.num_nodes(), std::min(m, graph_.num_nodes()));
}

bool StationaryWorkload::conflicts(NodeId a, NodeId b) const {
  return graph_.has_edge(a, b);
}

double StationaryWorkload::average_degree() const {
  return graph_.average_degree();
}

// ----------------------------------------------------------------- consuming

ConsumingWorkload::ConsumingWorkload(const CsrGraph& graph) : graph_(graph) {}

std::uint32_t ConsumingWorkload::pending() const {
  return graph_.num_alive();
}

std::vector<NodeId> ConsumingWorkload::sample_active(std::uint32_t m,
                                                     Rng& rng) {
  return sample_from_pool(graph_.alive_nodes(), m, rng);
}

bool ConsumingWorkload::conflicts(NodeId a, NodeId b) const {
  return graph_.has_edge(a, b);
}

void ConsumingWorkload::on_round(const std::vector<NodeId>& committed,
                                 const std::vector<NodeId>&, Rng&) {
  for (const NodeId v : committed) graph_.remove_node(v);
}

double ConsumingWorkload::average_degree() const {
  return graph_.average_degree();
}

// ------------------------------------------------------------------ refining

RefiningWorkload::RefiningWorkload(const RefiningParams& params, Rng& rng)
    : params_(params), graph_(params.seed_nodes) {
  if (params_.seed_nodes == 0) {
    throw std::invalid_argument("RefiningWorkload: need seed nodes");
  }
  // Lightly wire the seeds so the initial work-set has some conflicts.
  for (NodeId v = 0; v + 1 < params_.seed_nodes; ++v) {
    if (rng.chance(0.5)) graph_.add_edge(v, v + 1);
  }
}

std::uint32_t RefiningWorkload::pending() const { return graph_.num_alive(); }

std::vector<NodeId> RefiningWorkload::sample_active(std::uint32_t m,
                                                    Rng& rng) {
  return sample_from_pool(graph_.alive_nodes(), m, rng);
}

bool RefiningWorkload::conflicts(NodeId a, NodeId b) const {
  return graph_.has_edge(a, b);
}

void RefiningWorkload::on_round(const std::vector<NodeId>& committed,
                                const std::vector<NodeId>&, Rng& rng) {
  for (const NodeId v : committed) {
    // Capture the cavity neighborhood, retire the task, then spawn its
    // children into that neighborhood (the DMR retriangulation pattern).
    const std::vector<NodeId> cavity = graph_.neighbors(v);
    graph_.remove_node(v);
    if (spawned_ >= params_.total_budget ||
        !rng.chance(params_.spawn_probability)) {
      continue;
    }
    std::vector<NodeId> kids;
    kids.reserve(params_.children);
    for (std::uint32_t c = 0; c < params_.children; ++c) {
      kids.push_back(graph_.add_node());
      ++spawned_;
      if (spawned_ >= params_.total_budget) break;
    }
    // New triangles in one cavity all conflict with each other...
    for (std::size_t i = 0; i < kids.size(); ++i) {
      for (std::size_t j = i + 1; j < kids.size(); ++j) {
        graph_.add_edge(kids[i], kids[j]);
      }
    }
    // ...and with a few of the old neighborhood's survivors.
    if (!cavity.empty()) {
      for (const NodeId kid : kids) {
        const auto attach = std::min<std::uint32_t>(
            params_.attach_neighbors,
            static_cast<std::uint32_t>(cavity.size()));
        for (std::uint32_t a = 0; a < attach; ++a) {
          const NodeId target = cavity[rng.below(cavity.size())];
          if (graph_.is_alive(target) && target != kid) {
            graph_.add_edge(kid, target);
          }
        }
      }
    }
  }
}

double RefiningWorkload::average_degree() const {
  return graph_.average_degree();
}

// --------------------------------------------------------------- phase shift

PhaseShiftWorkload::PhaseShiftWorkload(std::vector<Stage> stages)
    : stages_(std::move(stages)) {
  if (stages_.empty()) {
    throw std::invalid_argument("PhaseShiftWorkload: no stages");
  }
  for (const auto& s : stages_) {
    if (s.duration == 0) {
      throw std::invalid_argument("PhaseShiftWorkload: zero-length stage");
    }
  }
}

std::uint32_t PhaseShiftWorkload::pending() const {
  return stage_ >= stages_.size() ? 0 : stages_[stage_].graph.num_nodes();
}

bool PhaseShiftWorkload::done() const { return stage_ >= stages_.size(); }

std::vector<NodeId> PhaseShiftWorkload::sample_active(std::uint32_t m,
                                                      Rng& rng) {
  const auto& g = stages_.at(stage_).graph;
  return rng.sample_without_replacement(g.num_nodes(),
                                        std::min(m, g.num_nodes()));
}

bool PhaseShiftWorkload::conflicts(NodeId a, NodeId b) const {
  return stages_.at(stage_).graph.has_edge(a, b);
}

void PhaseShiftWorkload::on_round(const std::vector<NodeId>&,
                                  const std::vector<NodeId>&, Rng&) {
  if (stage_ >= stages_.size()) return;
  if (++rounds_in_stage_ >= stages_[stage_].duration) {
    ++stage_;
    rounds_in_stage_ = 0;
  }
}

double PhaseShiftWorkload::average_degree() const {
  return stage_ >= stages_.size() ? 0.0
                                  : stages_[stage_].graph.average_degree();
}

}  // namespace optipar
