// One optimistic round of the paper's model (§2, Fig. 1): launch the active
// set, detect conflicts in commit order, split into committed / aborted,
// and hand the outcome to the workload's evolution rule.
#pragma once

#include <cstdint>
#include <vector>

#include "control/controller.hpp"
#include "sim/workloads.hpp"
#include "support/rng.hpp"

namespace optipar {

struct RoundOutcome {
  std::vector<NodeId> committed;
  std::vector<NodeId> aborted;

  [[nodiscard]] RoundStats stats() const noexcept {
    RoundStats s;
    s.committed = static_cast<std::uint32_t>(committed.size());
    s.aborted = static_cast<std::uint32_t>(aborted.size());
    s.launched = s.committed + s.aborted;
    return s;
  }
};

/// Execute one round of m speculative launches against the workload:
/// samples the active set (in commit order), applies the "abort iff an
/// earlier committed neighbor exists" rule, then invokes on_round. The
/// committed set is always a maximal independent set of the subgraph
/// induced by the active set (Fig. 1(iii)).
[[nodiscard]] RoundOutcome run_round(Workload& workload, std::uint32_t m,
                                     Rng& rng);

}  // namespace optipar
