#include "sim/run_loop.hpp"

#include <algorithm>
#include <cmath>

#include "sim/step_simulator.hpp"

namespace optipar {

std::uint64_t Trace::total_committed() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& s : steps) sum += s.committed;
  return sum;
}

std::uint64_t Trace::total_aborted() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& s : steps) sum += s.aborted;
  return sum;
}

std::uint64_t Trace::total_retried() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& s : steps) sum += s.retried;
  return sum;
}

std::uint64_t Trace::total_quarantined() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& s : steps) sum += s.quarantined;
  return sum;
}

std::uint64_t Trace::total_injected() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& s : steps) sum += s.injected;
  return sum;
}

double Trace::wasted_fraction() const noexcept {
  const double aborted = static_cast<double>(total_aborted());
  const double launched = aborted + static_cast<double>(total_committed());
  return launched == 0.0 ? 0.0 : aborted / launched;
}

double Trace::mean_conflict_ratio(std::size_t from) const {
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = from; i < steps.size(); ++i) {
    sum += steps[i].conflict_ratio();
    ++count;
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

std::size_t Trace::convergence_step(double mu_ref, double band,
                                    std::size_t hold) const {
  const double lo = mu_ref * (1.0 - band);
  const double hi = mu_ref * (1.0 + band);
  std::size_t streak = 0;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const auto m = static_cast<double>(steps[i].m);
    if (m >= lo && m <= hi) {
      if (++streak >= hold) return i + 1 - streak;
    } else {
      streak = 0;
    }
  }
  return steps.size();
}

double Trace::rms_relative_error(double mu_ref, std::size_t from) const {
  double sum_sq = 0.0;
  std::size_t count = 0;
  for (std::size_t i = from; i < steps.size(); ++i) {
    const double rel =
        (static_cast<double>(steps[i].m) - mu_ref) / mu_ref;
    sum_sq += rel * rel;
    ++count;
  }
  return count == 0 ? 0.0 : std::sqrt(sum_sq / static_cast<double>(count));
}

Trace run_controlled(Controller& controller, Workload& workload,
                     const RunLoopConfig& config, Rng& rng) {
  Trace trace;
  std::uint32_t m = controller.initial_m();
  for (std::uint32_t t = 0; t < config.max_steps && !workload.done(); ++t) {
    StepRecord rec;
    rec.step = t;
    rec.m = m;
    rec.avg_degree = workload.average_degree();
    const std::uint32_t launch = std::min(m, workload.pending());
    const RoundOutcome outcome = run_round(workload, launch, rng);
    const RoundStats stats = outcome.stats();
    rec.launched = stats.launched;
    rec.committed = stats.committed;
    rec.aborted = stats.aborted;
    rec.pending_after = workload.pending();
    trace.steps.push_back(rec);
    m = controller.observe(stats);
  }
  return trace;
}

namespace {

OperatingPoint from_mu_estimate(const MuEstimate& est) {
  OperatingPoint op;
  op.mu = est.mu;
  op.r_at_mu = est.curve.curve.r_bar(est.mu);
  op.ci_at_mu = est.curve.curve.r_bar_ci95(est.mu);
  op.sweeps = est.curve.sweeps;
  op.converged = est.curve.converged;
  return op;
}

}  // namespace

OperatingPoint find_operating_point(const CsrGraph& cc, double rho,
                                    const AdaptiveConfig& config,
                                    std::uint64_t seed) {
  return from_mu_estimate(find_mu_adaptive(cc, rho, config, seed));
}

OperatingPoint find_operating_point_parallel(const CsrGraph& cc, double rho,
                                             const AdaptiveConfig& config,
                                             std::uint64_t seed,
                                             ThreadPool& pool) {
  return from_mu_estimate(
      find_mu_adaptive_parallel(cc, rho, config, seed, pool));
}

}  // namespace optipar
