// Couples a Controller to a Workload: the closed loop of §4. Produces the
// per-round Trace that Fig. 3, §4.1, and the ablation benches analyze.
#pragma once

#include <cstdint>

#include "control/controller.hpp"
#include "sim/trace.hpp"
#include "sim/workloads.hpp"
#include "support/rng.hpp"

namespace optipar {

struct RunLoopConfig {
  std::uint32_t max_steps = 200;  ///< hard stop for non-draining workloads
};

/// Run the controller against the workload until the workload drains or
/// max_steps elapse. The controller's proposal is capped by the pending
/// work each round (you cannot launch more tasks than exist).
[[nodiscard]] Trace run_controlled(Controller& controller, Workload& workload,
                                   const RunLoopConfig& config, Rng& rng);

}  // namespace optipar
