// Couples a Controller to a Workload: the closed loop of §4. Produces the
// per-round Trace that Fig. 3, §4.1, and the ablation benches analyze.
#pragma once

#include <cstdint>

#include "control/controller.hpp"
#include "model/adaptive_estimator.hpp"
#include "sim/trace.hpp"
#include "sim/workloads.hpp"
#include "support/rng.hpp"

namespace optipar {

struct RunLoopConfig {
  std::uint32_t max_steps = 200;  ///< hard stop for non-draining workloads
};

/// Run the controller against the workload until the workload drains or
/// max_steps elapse. The controller's proposal is capped by the pending
/// work each round (you cannot launch more tasks than exist).
[[nodiscard]] Trace run_controlled(Controller& controller, Workload& workload,
                                   const RunLoopConfig& config, Rng& rng);

/// The reference operating point μ(ρ) the closed loop is judged against
/// (convergence bands, RMS error), estimated to a declared precision. The
/// fixed-trial habit of `find_mu(g, rho, 300, rng)` either wastes sweeps on
/// easy graphs or under-resolves μ on hard ones; this searches the curve
/// adaptively until every r̄(m) carries a CI half-width <= config.epsilon,
/// then reads off the largest m with r̄(m) <= rho.
struct OperatingPoint {
  std::uint32_t mu = 1;
  double r_at_mu = 0.0;      ///< estimated r̄(μ)
  double ci_at_mu = 0.0;     ///< 95% CI half-width on r̄(μ)
  std::uint32_t sweeps = 0;  ///< permutation sweeps spent
  bool converged = false;    ///< CI target met within the sweep budget
};

[[nodiscard]] OperatingPoint find_operating_point(const CsrGraph& cc,
                                                  double rho,
                                                  const AdaptiveConfig& config,
                                                  std::uint64_t seed);

/// Pool-parallel variant; deterministic given (seed, config, worker count).
[[nodiscard]] OperatingPoint find_operating_point_parallel(
    const CsrGraph& cc, double rho, const AdaptiveConfig& config,
    std::uint64_t seed, ThreadPool& pool);

}  // namespace optipar
