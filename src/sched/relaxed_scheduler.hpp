// MultiQueue-style k-relaxed priority draw (Alistarh et al., PAPERS.md):
// c·lanes sequential min-heaps; pushes land on a PRF-chosen heap, each pop
// compares the tops of two randomly chosen heaps and takes the better one.
// The draw is near-priority-ordered with a probabilistically bounded rank
// error (O(queues) in expectation), which is enough for the ordered apps
// (sssp, boruvka) to keep their work-efficiency without a global heap's
// contention — and without kPriority's single-mutex draw.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>

#include "sched/scheduler.hpp"
#include "support/padded.hpp"

namespace optipar::sched {

class RelaxedScheduler final : public Scheduler {
 public:
  RelaxedScheduler(std::uint64_t seed, std::size_t shard_count,
                   std::size_t queues_per_lane);

  [[nodiscard]] Backend backend() const noexcept override {
    return Backend::kRelaxed;
  }
  [[nodiscard]] std::size_t size() const override;
  [[nodiscard]] bool centralized() const noexcept override { return true; }
  [[nodiscard]] std::size_t queue_count() const noexcept { return nqueues_; }

  void push(std::span<const TaskId> tasks) override;
  void requeue(std::span<const TaskId> tasks) override;
  void splice(std::size_t lane, std::span<const TaskId> tasks) override;

  std::size_t begin_round(std::size_t m, std::vector<TaskId>& active,
                          Rng& rng) override;

  void save_state(snapshot::Writer& out,
                  std::span<const TaskId> prefetched) const override;
  void load_state(snapshot::Reader& in) override;

 private:
  using Item = std::pair<std::uint64_t, TaskId>;  // (priority, task)

  /// One sequential min-heap. The backing vector is kept in std heap
  /// layout so snapshots can store/restore the raw array order verbatim.
  struct alignas(kCacheLine) Queue {
    mutable std::mutex mutex;
    std::vector<Item> heap;
  };

  /// PRF over the global push counter: which heap the next push lands on.
  /// Counter-keyed (not rng-keyed) so single-lane placement is a pure
  /// function of the push sequence and replays across kill-and-resume.
  [[nodiscard]] std::size_t place(std::uint64_t ticket) const;
  void push_one(Queue& q, std::uint64_t prio, TaskId task);
  /// Pop the better top of heaps i and j (either may be empty).
  [[nodiscard]] TaskId pop_best(std::size_t i, std::size_t j);

  std::uint64_t seed_;
  std::size_t nqueues_;
  std::unique_ptr<Queue[]> queues_;
  std::atomic<std::uint64_t> push_counter_{0};
};

}  // namespace optipar::sched
