#include "sched/chromatic_scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "support/snapshot/snapshot.hpp"

namespace optipar::sched {

namespace {

[[noreturn]] void chromatic_mismatch(const std::string& what) {
  throw snapshot::SnapshotError(snapshot::SnapshotError::Kind::kMismatch,
                                "chromatic scheduler state: " + what);
}

}  // namespace

ChromaticScheduler::ChromaticScheduler(std::uint64_t seed) : seed_(seed) {}

void ChromaticScheduler::set_footprint_function(FootprintFn fn) {
  footprint_fn_ = std::move(fn);
}

std::size_t ChromaticScheduler::size() const {
  std::size_t total = 0;
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    total += classes_[c].size() - heads_[c];
  }
  const std::lock_guard lock(spliced_mutex_);
  return total + spliced_.size();
}

std::uint64_t ChromaticScheduler::jp_key(TaskId task) const {
  return SplitMix64(seed_ ^ (task * 0x9e3779b97f4a7c15ULL)).next();
}

void ChromaticScheduler::index_insert(const Entry& entry,
                                      std::uint32_t color) {
  for (const std::uint32_t item : entry.fp) index_[item].push_back(color);
}

void ChromaticScheduler::index_remove(const Entry& entry,
                                      std::uint32_t color) {
  for (const std::uint32_t item : entry.fp) {
    const auto row = index_.find(item);
    assert(row != index_.end());
    auto& colors = row->second;
    const auto it = std::find(colors.begin(), colors.end(), color);
    assert(it != colors.end());
    *it = colors.back();
    colors.pop_back();
    if (colors.empty()) index_.erase(row);
  }
}

void ChromaticScheduler::color_entry(Entry entry, bool fresh_class) {
  std::uint32_t color;
  if (fresh_class) {
    color = static_cast<std::uint32_t>(classes_.size());
  } else {
    // Smallest color absent from every index row the footprint touches.
    // With k standing neighbors at most k colors are forbidden, so a
    // (k+1)-slot bitmap always has a free slot.
    forbidden_.assign(classes_.size() + 1, 0);
    for (const std::uint32_t item : entry.fp) {
      const auto row = index_.find(item);
      if (row == index_.end()) continue;
      for (const std::uint32_t c : row->second) {
        if (c < forbidden_.size()) forbidden_[c] = 1;
      }
    }
    color = 0;
    while (forbidden_[color]) ++color;
  }
  if (color >= classes_.size()) {
    classes_.resize(color + 1);
    heads_.resize(color + 1, 0);
  }
  index_insert(entry, color);
  classes_[color].push_back(std::move(entry));
}

void ChromaticScheduler::color_batch(std::span<const TaskId> tasks) {
  if (tasks.empty()) return;
  if (!footprint_fn_) {
    throw std::logic_error(
        "SpeculativeExecutor: chromatic scheduler requires "
        "set_footprint_function before tasks are pushed");
  }
  std::vector<Entry> batch;
  batch.reserve(tasks.size());
  for (const TaskId t : tasks) {
    Entry e{t, {}};
    footprint_fn_(t, e.fp);
    batch.push_back(std::move(e));
  }
  // Deterministic Jones–Plassmann order: PRF key, arrival position ties.
  // Greedy smallest-absent-color in this order equals the parallel JP
  // fixpoint for the same priority assignment.
  std::stable_sort(batch.begin(), batch.end(),
                   [this](const Entry& a, const Entry& b) {
                     return jp_key(a.task) < jp_key(b.task);
                   });
  for (Entry& e : batch) color_entry(std::move(e), /*fresh_class=*/false);
}

void ChromaticScheduler::absorb_spliced() {
  std::vector<TaskId> pending;
  {
    const std::lock_guard lock(spliced_mutex_);
    pending.swap(spliced_);
  }
  color_batch(pending);
}

void ChromaticScheduler::invalidate_pending() {
  absorb_spliced();
  std::vector<TaskId> tasks;
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    for (std::size_t i = heads_[c]; i < classes_[c].size(); ++i) {
      tasks.push_back(classes_[c][i].task);
    }
  }
  classes_.clear();
  heads_.clear();
  index_.clear();
  color_cursor_ = 0;
  color_batch(tasks);
}

void ChromaticScheduler::push(std::span<const TaskId> tasks) {
  color_batch(tasks);
}

void ChromaticScheduler::requeue(std::span<const TaskId> tasks) {
  // Salvage path — may never drop a task. A footprint failure degrades to
  // a brand-new singleton class (trivially disjoint from everything) and
  // surfaces through the executor's round-error channel.
  for (const TaskId t : tasks) {
    Entry e{t, {}};
    try {
      if (!footprint_fn_) {
        throw std::logic_error("chromatic requeue without footprint fn");
      }
      footprint_fn_(t, e.fp);
      color_entry(std::move(e), /*fresh_class=*/false);
    } catch (...) {
      if (error_sink_) error_sink_();
      color_entry(Entry{t, {}}, /*fresh_class=*/true);
    }
  }
}

void ChromaticScheduler::splice(std::size_t /*lane*/,
                                std::span<const TaskId> tasks) {
  if (tasks.empty()) return;
  const std::lock_guard lock(spliced_mutex_);
  spliced_.insert(spliced_.end(), tasks.begin(), tasks.end());
}

std::size_t ChromaticScheduler::begin_round(std::size_t m,
                                            std::vector<TaskId>& active,
                                            Rng& /*rng*/) {
  absorb_spliced();
  // Find the next non-empty class, wrapping once (new arrivals may have
  // been colored into classes behind the cursor).
  std::size_t scanned = 0;
  while (scanned < std::max<std::size_t>(1, classes_.size())) {
    if (color_cursor_ >= classes_.size()) color_cursor_ = 0;
    if (classes_.empty()) break;
    if (heads_[color_cursor_] < classes_[color_cursor_].size()) break;
    // Drained class: reclaim its storage before moving on.
    classes_[color_cursor_].clear();
    classes_[color_cursor_].shrink_to_fit();
    heads_[color_cursor_] = 0;
    ++color_cursor_;
    ++scanned;
  }
  if (classes_.empty() || scanned >= classes_.size()) {
    active.clear();
    return 0;
  }

  auto& cls = classes_[color_cursor_];
  std::size_t& head = heads_[color_cursor_];
  // Never mix classes within a round — the zero-abort argument is
  // same-color pairwise disjointness, nothing weaker.
  const std::size_t take = std::min(m, cls.size() - head);
  active.resize(take);
  for (std::size_t i = 0; i < take; ++i) {
    Entry& e = cls[head + i];
    active[i] = e.task;
    index_remove(e, static_cast<std::uint32_t>(color_cursor_));
  }
  head += take;
  return take;
}

void ChromaticScheduler::save_state(snapshot::Writer& out,
                                    std::span<const TaskId> prefetched) const {
  // Centralized backends never see the overlapped-draw buffer (the
  // executor disables overlap for them).
  assert(prefetched.empty());
  (void)prefetched;
  {
    const std::lock_guard lock(spliced_mutex_);
    out.u64_vec(std::span<const TaskId>(spliced_));
  }
  out.u32(static_cast<std::uint32_t>(classes_.size()));
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    std::vector<TaskId> live;
    live.reserve(classes_[c].size() - heads_[c]);
    for (std::size_t i = heads_[c]; i < classes_[c].size(); ++i) {
      live.push_back(classes_[c][i].task);
    }
    out.u64_vec(std::span<const TaskId>(live));
  }
  out.u32(static_cast<std::uint32_t>(color_cursor_));
}

void ChromaticScheduler::load_state(snapshot::Reader& in) {
  classes_.clear();
  heads_.clear();
  index_.clear();
  color_cursor_ = 0;
  {
    const std::lock_guard lock(spliced_mutex_);
    spliced_ = in.u64_vec();
  }
  const std::uint32_t class_count = in.u32();
  // Footprints are recomputed at load time (they are derived state, not
  // durable state); colors are restored as saved. For static-footprint
  // apps this reproduces the saved index exactly; dynamic apps recolor
  // via invalidate_pending() each round anyway.
  std::vector<std::vector<TaskId>> loaded(class_count);
  std::size_t total = 0;
  for (std::uint32_t c = 0; c < class_count; ++c) {
    loaded[c] = in.u64_vec();
    total += loaded[c].size();
  }
  if (total > 0 && !footprint_fn_) {
    throw std::logic_error(
        "ChromaticScheduler: install the footprint function before "
        "load_state");
  }
  classes_.resize(class_count);
  heads_.assign(class_count, 0);
  for (std::uint32_t c = 0; c < class_count; ++c) {
    classes_[c].reserve(loaded[c].size());
    for (const TaskId t : loaded[c]) {
      Entry e{t, {}};
      footprint_fn_(t, e.fp);
      index_insert(e, c);
      classes_[c].push_back(std::move(e));
    }
  }
  const std::uint32_t cursor = in.u32();
  if (class_count == 0 ? cursor != 0 : cursor >= class_count) {
    chromatic_mismatch("color cursor out of range");
  }
  color_cursor_ = cursor;
}

}  // namespace optipar::sched
