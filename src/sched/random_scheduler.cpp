#include "sched/random_scheduler.hpp"

#include <cassert>
#include <stdexcept>
#include <thread>

#include "support/snapshot/snapshot.hpp"

namespace optipar::sched {

RandomScheduler::RandomScheduler(WorklistPolicy policy,
                                 std::size_t shard_count)
    : policy_(policy),
      shard_count_(std::max<std::size_t>(1, shard_count)),
      shards_(std::make_unique<Shard[]>(shard_count_)) {}

std::size_t RandomScheduler::size() const {
  std::size_t total = 0;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    const std::lock_guard guard(shards_[s].mutex);
    total += shards_[s].tasks.size() - shards_[s].head;
  }
  const std::lock_guard lock(worklist_mutex_);
  return total + priority_heap_.size();
}

void RandomScheduler::push(std::span<const TaskId> tasks) {
  if (policy_ == WorklistPolicy::kPriority) {
    const std::lock_guard lock(worklist_mutex_);
    if (!priority_fn_) {
      throw std::logic_error(
          "SpeculativeExecutor: kPriority requires set_priority_function");
    }
    for (const TaskId t : tasks) priority_heap_.emplace(priority_fn_(t), t);
    return;
  }
  if (shard_count_ == 1) {
    Shard& s = shards_[0];
    const std::lock_guard guard(s.mutex);
    s.tasks.insert(s.tasks.end(), tasks.begin(), tasks.end());
    return;
  }
  // Deal round-robin across shards, continuing where the last push left off
  // so repeated small pushes stay balanced.
  const std::size_t start =
      push_cursor_.fetch_add(tasks.size(), std::memory_order_relaxed) %
      shard_count_;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    Shard& shard = shards_[s];
    const std::lock_guard guard(shard.mutex);
    for (std::size_t i = (s + shard_count_ - start) % shard_count_;
         i < tasks.size(); i += shard_count_) {
      shard.tasks.push_back(tasks[i]);
    }
  }
}

void RandomScheduler::requeue(std::span<const TaskId> tasks) {
  if (tasks.empty()) return;
  if (policy_ == WorklistPolicy::kPriority) {
    const std::lock_guard lock(worklist_mutex_);
    for (const TaskId t : tasks) {
      std::uint64_t prio = t;
      try {
        prio = priority_fn_(t);
      } catch (...) {
        // Degrade to id-priority, never drop a task; the error surfaces
        // through the executor's round-error channel.
        if (error_sink_) error_sink_();
      }
      priority_heap_.emplace(prio, t);
    }
    return;
  }
  Shard& s = shards_[0];
  const std::lock_guard guard(s.mutex);
  s.tasks.insert(s.tasks.end(), tasks.begin(), tasks.end());
}

void RandomScheduler::splice(std::size_t lane,
                             std::span<const TaskId> tasks) {
  if (tasks.empty()) return;
  if (policy_ == WorklistPolicy::kPriority) {
    // Re-evaluate priorities at (re)insertion time: the state a task's
    // priority derives from may have changed while it ran or waited. A
    // throwing priority function propagates (the epilogue records it as a
    // pool fault and the serial tail re-splices the buffer).
    const std::lock_guard lock(worklist_mutex_);
    for (const TaskId t : tasks) priority_heap_.emplace(priority_fn_(t), t);
    return;
  }
  Shard& s = shards_[lane % shard_count_];
  const std::lock_guard guard(s.mutex);
  s.tasks.insert(s.tasks.end(), tasks.begin(), tasks.end());
}

std::size_t RandomScheduler::begin_round(std::size_t m,
                                         std::vector<TaskId>& active,
                                         Rng& /*rng*/) {
  // kPriority stays on the centralized path: the heap IS the policy (the m
  // globally-smallest tasks run), so the draw happens up front.
  assert(policy_ == WorklistPolicy::kPriority);
  const std::lock_guard lock(worklist_mutex_);
  const std::size_t take = std::min(m, priority_heap_.size());
  active.resize(take);
  for (std::size_t i = 0; i < take; ++i) {
    active[i] = priority_heap_.top().second;
    priority_heap_.pop();
  }
  return take;
}

TaskId RandomScheduler::pop_from(Shard& s, Rng& rng) {
  switch (policy_) {
    case WorklistPolicy::kRandom: {
      const std::size_t j = s.head + rng.below(s.tasks.size() - s.head);
      const TaskId t = s.tasks[j];
      s.tasks[j] = s.tasks.back();
      s.tasks.pop_back();
      return t;
    }
    case WorklistPolicy::kFifo: {
      const TaskId t = s.tasks[s.head++];
      // Compact the consumed prefix once it dominates the buffer.
      if (s.head > 1024 && s.head * 2 > s.tasks.size()) {
        s.tasks.erase(s.tasks.begin(),
                      s.tasks.begin() + static_cast<std::ptrdiff_t>(s.head));
        s.head = 0;
      }
      return t;
    }
    case WorklistPolicy::kLifo: {
      const TaskId t = s.tasks.back();
      s.tasks.pop_back();
      return t;
    }
    case WorklistPolicy::kPriority:
      break;  // centralized path never reaches the shards
  }
  assert(false && "pop_from: unreachable policy");
  return 0;
}

void RandomScheduler::draw_span(std::size_t lane, Rng& rng, TaskId* out,
                                std::size_t n) {
  // Draw the chunk: own shard under one lock, then steal one-by-one.
  std::size_t i = 0;
  {
    Shard& own = shards_[lane % shard_count_];
    const std::lock_guard guard(own.mutex);
    while (i < n && own.head < own.tasks.size()) {
      out[i++] = pop_from(own, rng);
    }
  }
  while (i < n) out[i++] = draw_one(lane, rng);
}

TaskId RandomScheduler::draw_one(std::size_t lane, Rng& rng) {
  // Own shard first, then steal round-robin. Because every ticket maps to a
  // task that was present at round start and requeues are buffered until
  // round end, shards only shrink during a round — a full scan observing
  // every shard empty would mean more pops than tickets, which cannot
  // happen. The outer loop is defensive only.
  for (;;) {
    for (std::size_t k = 0; k < shard_count_; ++k) {
      Shard& s = shards_[(lane + k) % shard_count_];
      const std::lock_guard guard(s.mutex);
      if (s.head < s.tasks.size()) return pop_from(s, rng);
    }
    std::this_thread::yield();
  }
}

void RandomScheduler::save_state(snapshot::Writer& out,
                                 std::span<const TaskId> prefetched) const {
  // Shard task vectors are stored live-suffix-only (tasks[head..end], in
  // order) and restored with head = 0. That compaction is draw-stream
  // safe: kRandom indexes relative to head, kFifo consumes from head, and
  // kLifo pops the back — none observe the consumed prefix.
  for (std::size_t s = 0; s < shard_count_; ++s) {
    const Shard& shard = shards_[s];
    const std::lock_guard guard(shard.mutex);
    if (s == 0 && !prefetched.empty()) {
      // WAL ordering extension (DESIGN.md §12): the overlapped-draw buffer
      // is work drawn-but-not-launched, so a snapshot taken between the
      // prefetch and its round persists those tasks as plain pending work,
      // appended to shard 0 — exactly where drain_prefetch would splice
      // them. Restore replays the draw; nothing is lost or double-counted,
      // and the buffer itself is never durable state.
      std::vector<TaskId> merged;
      merged.reserve(shard.tasks.size() - shard.head + prefetched.size());
      merged.insert(merged.end(),
                    shard.tasks.begin() +
                        static_cast<std::ptrdiff_t>(shard.head),
                    shard.tasks.end());
      merged.insert(merged.end(), prefetched.begin(), prefetched.end());
      out.u64_vec(std::span<const TaskId>(merged));
      continue;
    }
    out.u64_vec(std::span<const TaskId>(shard.tasks.data() + shard.head,
                                        shard.tasks.size() - shard.head));
  }
  out.u64(push_cursor_.load(std::memory_order_relaxed));

  // The priority heap's pop order is a pure function of its contents (the
  // (priority, task) pair comparison is total), so draining a copy and
  // re-pushing on load reproduces the schedule exactly.
  const std::lock_guard lock(worklist_mutex_);
  auto heap = priority_heap_;  // drain a copy; pop order == schedule order
  out.u64(heap.size());
  while (!heap.empty()) {
    out.u64(heap.top().first);
    out.u64(heap.top().second);
    heap.pop();
  }
}

void RandomScheduler::load_state(snapshot::Reader& in) {
  for (std::size_t s = 0; s < shard_count_; ++s) {
    Shard& shard = shards_[s];
    const std::lock_guard guard(shard.mutex);
    shard.tasks = in.u64_vec();
    shard.head = 0;
  }
  push_cursor_.store(in.u64(), std::memory_order_relaxed);

  const std::lock_guard lock(worklist_mutex_);
  priority_heap_ = {};
  const std::uint64_t heap_size = in.u64();
  for (std::uint64_t i = 0; i < heap_size; ++i) {
    const std::uint64_t prio = in.u64();
    const TaskId task = in.u64();
    priority_heap_.emplace(prio, task);
  }
}

}  // namespace optipar::sched
