#include "sched/relaxed_scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <functional>
#include <stdexcept>

#include "support/snapshot/snapshot.hpp"

namespace optipar::sched {

namespace {

[[noreturn]] void relaxed_mismatch(const std::string& what) {
  throw snapshot::SnapshotError(snapshot::SnapshotError::Kind::kMismatch,
                                "relaxed scheduler state: " + what);
}

}  // namespace

RelaxedScheduler::RelaxedScheduler(std::uint64_t seed,
                                   std::size_t shard_count,
                                   std::size_t queues_per_lane)
    : seed_(seed),
      nqueues_(std::max<std::size_t>(
          2, std::max<std::size_t>(1, queues_per_lane) *
                 std::max<std::size_t>(1, shard_count))),
      queues_(std::make_unique<Queue[]>(nqueues_)) {}

std::size_t RelaxedScheduler::size() const {
  std::size_t total = 0;
  for (std::size_t q = 0; q < nqueues_; ++q) {
    const std::lock_guard guard(queues_[q].mutex);
    total += queues_[q].heap.size();
  }
  return total;
}

std::size_t RelaxedScheduler::place(std::uint64_t ticket) const {
  return SplitMix64(seed_ ^ (ticket * 0x9e3779b97f4a7c15ULL)).next() %
         nqueues_;
}

void RelaxedScheduler::push_one(Queue& q, std::uint64_t prio, TaskId task) {
  q.heap.emplace_back(prio, task);
  std::push_heap(q.heap.begin(), q.heap.end(), std::greater<>{});
}

void RelaxedScheduler::push(std::span<const TaskId> tasks) {
  if (!priority_fn_) {
    throw std::logic_error(
        "SpeculativeExecutor: relaxed scheduler requires "
        "set_priority_function");
  }
  for (const TaskId t : tasks) {
    const std::uint64_t ticket =
        push_counter_.fetch_add(1, std::memory_order_relaxed);
    Queue& q = queues_[place(ticket)];
    const std::lock_guard guard(q.mutex);
    push_one(q, priority_fn_(t), t);
  }
}

void RelaxedScheduler::requeue(std::span<const TaskId> tasks) {
  for (const TaskId t : tasks) {
    std::uint64_t prio = t;
    try {
      prio = priority_fn_(t);
    } catch (...) {
      // Degrade to id-priority, never drop a task; the error surfaces
      // through the executor's round-error channel.
      if (error_sink_) error_sink_();
    }
    const std::uint64_t ticket =
        push_counter_.fetch_add(1, std::memory_order_relaxed);
    Queue& q = queues_[place(ticket)];
    const std::lock_guard guard(q.mutex);
    push_one(q, prio, t);
  }
}

void RelaxedScheduler::splice(std::size_t /*lane*/,
                              std::span<const TaskId> tasks) {
  // Priorities are evaluated at insertion time, like the kPriority heap's
  // epilogue splice; a throwing priority function propagates into the
  // executor's pool-fault channel.
  for (const TaskId t : tasks) {
    const std::uint64_t prio = priority_fn_(t);
    const std::uint64_t ticket =
        push_counter_.fetch_add(1, std::memory_order_relaxed);
    Queue& q = queues_[place(ticket)];
    const std::lock_guard guard(q.mutex);
    push_one(q, prio, t);
  }
}

TaskId RelaxedScheduler::pop_best(std::size_t i, std::size_t j) {
  Queue& a = queues_[i];
  Queue& b = queues_[j];
  auto top_of = [](Queue& q) -> const Item* {
    return q.heap.empty() ? nullptr : &q.heap.front();
  };
  Queue* pick = nullptr;
  if (i == j) {
    pick = top_of(a) ? &a : nullptr;
  } else {
    const Item* ta = top_of(a);
    const Item* tb = top_of(b);
    if (ta && tb) {
      pick = (*ta <= *tb) ? &a : &b;
    } else if (ta) {
      pick = &a;
    } else if (tb) {
      pick = &b;
    }
  }
  if (pick == nullptr) {
    // Both sampled heaps empty: fall back to a linear scan so a draw never
    // spuriously ends a round while work remains.
    for (std::size_t q = 0; q < nqueues_; ++q) {
      if (!queues_[q].heap.empty()) {
        pick = &queues_[q];
        break;
      }
    }
  }
  assert(pick != nullptr);
  std::pop_heap(pick->heap.begin(), pick->heap.end(), std::greater<>{});
  const TaskId task = pick->heap.back().second;
  pick->heap.pop_back();
  return task;
}

std::size_t RelaxedScheduler::begin_round(std::size_t m,
                                          std::vector<TaskId>& active,
                                          Rng& rng) {
  // Serial draw: no queue mutexes needed (begin_round runs between
  // rounds), and `rng` is the executor's serialized lane-0 stream so the
  // sampled heap pairs replay across kill-and-resume.
  const std::size_t take = std::min(m, size());
  active.resize(take);
  for (std::size_t i = 0; i < take; ++i) {
    const std::size_t a = rng.below(nqueues_);
    const std::size_t b = rng.below(nqueues_);
    active[i] = pop_best(a, b);
  }
  return take;
}

void RelaxedScheduler::save_state(snapshot::Writer& out,
                                  std::span<const TaskId> prefetched) const {
  // Centralized backends never see the overlapped-draw buffer.
  assert(prefetched.empty());
  (void)prefetched;
  out.u64(nqueues_);
  out.u64(push_counter_.load(std::memory_order_relaxed));
  // Raw heap-layout array order, restored verbatim: a valid std heap stays
  // a valid std heap, so no make_heap on load — and save/load/save is
  // byte-identical.
  for (std::size_t q = 0; q < nqueues_; ++q) {
    const std::lock_guard guard(queues_[q].mutex);
    out.u64(queues_[q].heap.size());
    for (const Item& item : queues_[q].heap) {
      out.u64(item.first);
      out.u64(item.second);
    }
  }
}

void RelaxedScheduler::load_state(snapshot::Reader& in) {
  if (in.u64() != nqueues_) relaxed_mismatch("queue count differs");
  push_counter_.store(in.u64(), std::memory_order_relaxed);
  for (std::size_t q = 0; q < nqueues_; ++q) {
    const std::lock_guard guard(queues_[q].mutex);
    auto& heap = queues_[q].heap;
    heap.clear();
    const std::uint64_t count = in.u64();
    heap.reserve(std::min<std::uint64_t>(count, in.remaining() / 16));
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint64_t prio = in.u64();
      const TaskId task = in.u64();
      heap.emplace_back(prio, task);
    }
  }
}

}  // namespace optipar::sched
