// The paper's scheduler, extracted behind the Scheduler interface: per-lane
// sharded worklists with a uniform random draw (kRandom), plus the
// kFifo/kLifo ablation policies and the centralized OBIM-style soft
// priority heap (kPriority). The draw/requeue byte sequence at one lane is
// identical to the pre-extraction executor — the determinism contract the
// golden-trace tests pin.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <queue>
#include <utility>

#include "sched/scheduler.hpp"
#include "support/padded.hpp"

namespace optipar::sched {

class RandomScheduler final : public Scheduler {
 public:
  RandomScheduler(WorklistPolicy policy, std::size_t shard_count);

  [[nodiscard]] Backend backend() const noexcept override {
    return Backend::kRandom;
  }
  [[nodiscard]] std::size_t size() const override;
  [[nodiscard]] bool centralized() const noexcept override {
    return policy_ == WorklistPolicy::kPriority;
  }

  void push(std::span<const TaskId> tasks) override;
  void requeue(std::span<const TaskId> tasks) override;
  void splice(std::size_t lane, std::span<const TaskId> tasks) override;

  std::size_t begin_round(std::size_t m, std::vector<TaskId>& active,
                          Rng& rng) override;
  void draw_span(std::size_t lane, Rng& rng, TaskId* out,
                 std::size_t n) override;
  TaskId draw_one(std::size_t lane, Rng& rng) override;

  void save_state(snapshot::Writer& out,
                  std::span<const TaskId> prefetched) const override;
  void load_state(snapshot::Reader& in) override;

 private:
  /// One per-lane slice of the work-set. Shard 0 with a single lane
  /// replays the centralized worklist exactly: the FIFO cursor (head),
  /// LIFO tail, and random swap-remove all operate per shard.
  struct alignas(kCacheLine) Shard {
    mutable std::mutex mutex;
    std::vector<TaskId> tasks;
    std::size_t head = 0;  // consumed FIFO prefix, compacted periodically
  };

  /// Pop one task from shard `s` per the draw policy (shard mutex held).
  TaskId pop_from(Shard& s, Rng& rng);

  WorklistPolicy policy_;
  std::size_t shard_count_;
  std::unique_ptr<Shard[]> shards_;
  std::atomic<std::size_t> push_cursor_{0};  // round-robin initial placement

  // Centralized priority scheduler (kPriority only), CP.50-guarded.
  mutable std::mutex worklist_mutex_;
  using PrioritizedTask = std::pair<std::uint64_t, TaskId>;
  std::priority_queue<PrioritizedTask, std::vector<PrioritizedTask>,
                      std::greater<>>
      priority_heap_;
};

}  // namespace optipar::sched
