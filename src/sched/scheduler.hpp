// Pluggable round schedulers (DESIGN.md §14). A Scheduler owns the
// work-set and the round's draw stage of the speculative executor: which
// tasks become a round's active set, in what order, and where committed
// pushes / aborted requeues land. Three backends are provided:
//
//   * random    — the paper's scheduler: per-lane sharded worklists with a
//                 uniform random draw (plus the kFifo/kLifo/kPriority
//                 ablation policies). This is the seed behavior extracted
//                 behind the interface; single-lane draw sequences are
//                 byte-identical to the pre-refactor executor.
//   * chromatic — speculation-free color-class rounds (Rokos/Gorman/Kelly):
//                 the pending tasks' declared footprints are colored so
//                 that same-color tasks are pairwise disjoint, and a round
//                 executes only tasks of one color — zero aborts by
//                 construction (the executor downgrades conflict detection
//                 to a debug assert under this backend).
//   * relaxed   — MultiQueue-style k-relaxed priority draw (Alistarh et
//                 al.): c·lanes sequential min-heaps, push to a PRF-chosen
//                 heap, pop the better top of two randomly chosen heaps —
//                 near-priority order with a provably bounded rank error,
//                 for the ordered apps (sssp, boruvka).
//
// Thread-safety contract: push/requeue/size/begin_round/save/load run only
// in the executor's serial sections (between rounds or in the serial
// tail); draw_span/draw_one/splice are called concurrently by round lanes
// and must synchronize internally.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "support/rng.hpp"

namespace optipar {

namespace snapshot {
class Writer;
class Reader;
}  // namespace snapshot

using TaskId = std::uint64_t;

/// How a round's active tasks are drawn from the work-set (random backend).
/// The paper's model assumes kRandom; kFifo/kLifo exist for the
/// scheduling-policy ablation (they bias which conflicts are observed).
/// kPriority is an OBIM-style soft-priority scheduler: each round runs the
/// m smallest-priority tasks (per the installed priority function) — order
/// is best-effort, not a commit-order guarantee, so it suits unordered
/// algorithms that merely *benefit* from priority (e.g. SSSP relaxing near
/// the source first).
enum class WorklistPolicy { kRandom, kFifo, kLifo, kPriority };

namespace sched {

/// Scheduler backend selector, wired through RoundOptions, the CLI
/// (--scheduler=) and the serve job spec. The numeric values are part of
/// the snapshot shape header — append only.
enum class Backend : std::uint8_t {
  kRandom = 0,
  kChromatic = 1,
  kRelaxed = 2,
};

[[nodiscard]] const char* backend_name(Backend backend) noexcept;
/// Parse a CLI/wire backend name; nullopt for unknown names (the caller
/// owns the exit-2 / kBadRequest refusal).
[[nodiscard]] std::optional<Backend> parse_backend(std::string_view name);

/// Declares the abstract-lock footprint of a task: every item the operator
/// may acquire while executing it. Appends item ids to `out` (cleared by
/// the caller). Required by the chromatic backend before any push.
using FootprintFn = std::function<void(TaskId, std::vector<std::uint32_t>&)>;

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  [[nodiscard]] virtual Backend backend() const noexcept = 0;

  /// Pending tasks owned by this scheduler (excludes the executor's
  /// deferred/prefetched buffers).
  [[nodiscard]] virtual std::size_t size() const = 0;

  /// True when the active set is materialized up-front by begin_round
  /// (priority heap, color classes, relaxed heaps) instead of drawn
  /// incrementally by the lanes. Constant per backend instance.
  [[nodiscard]] virtual bool centralized() const noexcept = 0;

  /// True when a round can never observe a conflict by construction
  /// (chromatic). The executor downgrades conflict detection to a debug
  /// assert for such backends.
  [[nodiscard]] virtual bool zero_abort() const noexcept { return false; }

  /// Priority function (kPriority scheduling, relaxed heaps, and
  /// arbitration). Call between rounds only.
  virtual void set_priority_function(std::function<std::uint64_t(TaskId)> fn) {
    priority_fn_ = std::move(fn);
  }

  /// Error sink invoked INSIDE a catch block when a serial-path requeue
  /// swallows a priority-function failure (the task is kept with a
  /// degraded id-priority, and the error surfaces through the executor's
  /// round-error channel instead of being dropped).
  void set_error_sink(std::function<void()> sink) {
    error_sink_ = std::move(sink);
  }

  /// Seed the work-set (initial tasks, released deferred tasks). Serial.
  virtual void push(std::span<const TaskId> tasks) = 0;

  /// Return tasks to the work-set from the serial tail (aborted-task
  /// requeue after salvage, drained prefetch buffers, prefetch surplus).
  /// Must swallow priority-function failures via the error sink — a
  /// salvage path may never drop a task.
  virtual void requeue(std::span<const TaskId> tasks) = 0;

  /// Splice a lane's requeue buffer back into the work-set (parallel
  /// epilogue; thread-safe). Unlike requeue, exceptions propagate — the
  /// epilogue's catch converts them into a recorded pool fault and the
  /// serial tail re-splices the buffer.
  virtual void splice(std::size_t lane, std::span<const TaskId> tasks) = 0;

  /// Centralized draw: fill `active` with up to m tasks and return the
  /// count. `rng` is the executor's lane-0 stream (serialized in
  /// snapshots), so single-lane draw sequences replay across restores.
  virtual std::size_t begin_round(std::size_t m, std::vector<TaskId>& active,
                                  Rng& rng);

  /// Distributed draw (non-centralized backends): fill out[0..n) from the
  /// work-set. Called concurrently per lane; the executor guarantees n
  /// never exceeds the tasks available at round start.
  virtual void draw_span(std::size_t lane, Rng& rng, TaskId* out,
                         std::size_t n);
  /// Draw a single task (overlapped prefetch stage).
  virtual TaskId draw_one(std::size_t lane, Rng& rng);

  /// Serialize the backend's work-set state. `prefetched` is the
  /// executor's overlapped-draw buffer — drawn-but-not-launched work that
  /// the snapshot must fold back into the pending set (only the random
  /// backend can ever see a non-empty buffer; overlap is disabled for
  /// centralized backends).
  virtual void save_state(snapshot::Writer& out,
                          std::span<const TaskId> prefetched) const = 0;
  virtual void load_state(snapshot::Reader& in) = 0;

 protected:
  std::function<std::uint64_t(TaskId)> priority_fn_;
  std::function<void()> error_sink_;
};

/// Backend construction knobs beyond the backend tag itself.
struct SchedulerConfig {
  WorklistPolicy worklist = WorklistPolicy::kRandom;
  std::size_t shard_count = 1;  ///< pool worker count (lanes)
  std::uint64_t seed = 0;       ///< executor seed (PRF derivations only)
  std::size_t relaxed_queues_per_lane = 4;  ///< MultiQueue c factor
};

[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler(
    Backend backend, const SchedulerConfig& config);

}  // namespace sched
}  // namespace optipar
