// Speculation-free chromatic rounds (Rokos/Gorman/Kelly, PAPERS.md): color
// the conflict graph of the pending tasks' declared footprints so that
// same-color tasks are pairwise disjoint, then execute whole color classes
// per round. Zero aborts by construction — the executor downgrades conflict
// detection to a debug assert under this backend.
//
// The coloring is greedy smallest-absent-color in a deterministic
// Jones–Plassmann priority order (a PRF over the task id, ties by arrival),
// which is exactly the fixpoint a parallel JP sweep converges to for that
// priority assignment. New arrivals (committed pushes, requeues) are
// colored incrementally against the standing classes; dynamic apps whose
// footprints move (boruvka contraction, mesh refinement) call
// invalidate_pending() between rounds to recolor with fresh footprints.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "sched/scheduler.hpp"

namespace optipar::sched {

class ChromaticScheduler final : public Scheduler {
 public:
  explicit ChromaticScheduler(std::uint64_t seed);

  [[nodiscard]] Backend backend() const noexcept override {
    return Backend::kChromatic;
  }
  [[nodiscard]] std::size_t size() const override;
  [[nodiscard]] bool centralized() const noexcept override { return true; }
  [[nodiscard]] bool zero_abort() const noexcept override { return true; }

  /// Install the footprint declaration. Must be set before the first push
  /// (and re-installed before load_state, which recomputes footprints).
  void set_footprint_function(FootprintFn fn);

  /// Drop every standing color assignment and recolor all pending tasks
  /// with freshly computed footprints. Call between rounds when operator
  /// execution may have changed task neighborhoods (dynamic apps).
  void invalidate_pending();

  void push(std::span<const TaskId> tasks) override;
  void requeue(std::span<const TaskId> tasks) override;
  void splice(std::size_t lane, std::span<const TaskId> tasks) override;

  std::size_t begin_round(std::size_t m, std::vector<TaskId>& active,
                          Rng& rng) override;

  void save_state(snapshot::Writer& out,
                  std::span<const TaskId> prefetched) const override;
  void load_state(snapshot::Reader& in) override;

 private:
  /// One pending task instance. Duplicate TaskIds are distinct entries
  /// whose (identical) footprints conflict with each other, so re-pushed
  /// instances of one task land in different classes.
  struct Entry {
    TaskId task;
    std::vector<std::uint32_t> fp;  // declared footprint, may hold dupes
  };

  /// Jones–Plassmann priority: PRF over the task id, seed-keyed.
  [[nodiscard]] std::uint64_t jp_key(TaskId task) const;

  /// Color `tasks` (footprints computed via footprint_fn_) in JP order
  /// against the standing index and append them to their classes.
  void color_batch(std::span<const TaskId> tasks);
  /// Color one entry (smallest color absent from its footprint's index
  /// rows) and insert it. `fresh_class` forces a brand-new color.
  void color_entry(Entry entry, bool fresh_class);
  void index_insert(const Entry& entry, std::uint32_t color);
  void index_remove(const Entry& entry, std::uint32_t color);
  /// Move spliced-but-uncolored arrivals into the classes. Serial.
  void absorb_spliced();

  std::uint64_t seed_;
  FootprintFn footprint_fn_;

  // classes_[c] holds the color-c entries not yet drawn; heads_[c] is the
  // consumed prefix (compacted when a class drains). color_cursor_ is the
  // class the next round draws from; a full wrap with every class empty
  // means only spliced_ (or nothing) remains.
  std::vector<std::vector<Entry>> classes_;
  std::vector<std::size_t> heads_;
  std::size_t color_cursor_ = 0;

  // item id -> colors of standing entries whose footprint contains the
  // item (one occurrence per entry, duplicates allowed). Lookup-only; the
  // map is never iterated, so unordered ordering cannot leak into
  // scheduling decisions.
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> index_;

  // Parallel-epilogue arrivals, colored at the next serial point.
  mutable std::mutex spliced_mutex_;
  std::vector<TaskId> spliced_;

  // Scratch for color_entry (avoids per-entry allocation).
  std::vector<char> forbidden_;
};

}  // namespace optipar::sched
