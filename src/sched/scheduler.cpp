#include "sched/scheduler.hpp"

#include <stdexcept>

#include "sched/chromatic_scheduler.hpp"
#include "sched/random_scheduler.hpp"
#include "sched/relaxed_scheduler.hpp"

namespace optipar::sched {

const char* backend_name(Backend backend) noexcept {
  switch (backend) {
    case Backend::kRandom:
      return "random";
    case Backend::kChromatic:
      return "chromatic";
    case Backend::kRelaxed:
      return "relaxed";
  }
  return "unknown";
}

std::optional<Backend> parse_backend(std::string_view name) {
  if (name == "random") return Backend::kRandom;
  if (name == "chromatic") return Backend::kChromatic;
  if (name == "relaxed") return Backend::kRelaxed;
  return std::nullopt;
}

std::size_t Scheduler::begin_round(std::size_t /*m*/,
                                   std::vector<TaskId>& /*active*/,
                                   Rng& /*rng*/) {
  throw std::logic_error("Scheduler: begin_round on a distributed backend");
}

void Scheduler::draw_span(std::size_t /*lane*/, Rng& /*rng*/, TaskId* /*out*/,
                          std::size_t /*n*/) {
  throw std::logic_error("Scheduler: draw_span on a centralized backend");
}

TaskId Scheduler::draw_one(std::size_t /*lane*/, Rng& /*rng*/) {
  throw std::logic_error("Scheduler: draw_one on a centralized backend");
}

std::unique_ptr<Scheduler> make_scheduler(Backend backend,
                                          const SchedulerConfig& config) {
  switch (backend) {
    case Backend::kRandom:
      return std::make_unique<RandomScheduler>(config.worklist,
                                               config.shard_count);
    case Backend::kChromatic:
      return std::make_unique<ChromaticScheduler>(config.seed);
    case Backend::kRelaxed:
      return std::make_unique<RelaxedScheduler>(
          config.seed, config.shard_count, config.relaxed_queues_per_lane);
  }
  throw std::invalid_argument("make_scheduler: unknown backend");
}

}  // namespace optipar::sched
