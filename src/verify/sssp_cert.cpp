#include <cmath>
#include <string>

#include "apps/sssp/sssp.hpp"
#include "verify/app_certs.hpp"

namespace optipar::verify {

// Soundness sketch: with dist[s] = 0, "no edge relaxable" makes every
// label an UPPER bound that no path can undercut, i.e. dist[v] <= d*(v)
// can only fail upward — dist[v] >= d*(v) for all v. The tight-witness
// condition then forces every finite label to be realized by an actual
// path from some tight predecessor chain, so dist[v] <= d*(v) too.
// Equality is exact in doubles because both the operator and this check
// compute labels by the same finite +-chains over the same weights.
Certificate certify_sssp(const WeightedGraph& graph, NodeId source,
                         std::span<const double> dist) {
  Certificate cert;
  const NodeId n = graph.num_nodes();
  if (dist.size() != n) {
    cert.code = CertCode::kBadSourceDistance;
    cert.detail = "distance table has " + std::to_string(dist.size()) +
                  " entries for " + std::to_string(n) + " nodes";
    return cert;
  }
  ++cert.checked;
  if (dist[source] != 0.0) {
    cert.code = CertCode::kBadSourceDistance;
    cert.detail = "dist[source] = " + std::to_string(dist[source]);
    return cert;
  }
  for (NodeId u = 0; u < n; ++u) {
    if (dist[u] == sssp::kUnreachable) continue;
    for (const Arc& arc : graph.arcs(u)) {
      ++cert.checked;
      if (dist[u] + arc.weight < dist[arc.to]) {
        cert.code = CertCode::kRelaxable;
        cert.detail = "edge (" + std::to_string(u) + "," +
                      std::to_string(arc.to) + ") relaxes " +
                      std::to_string(dist[arc.to]) + " to " +
                      std::to_string(dist[u] + arc.weight);
        return cert;
      }
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    if (v == source || dist[v] == sssp::kUnreachable) continue;
    ++cert.checked;
    bool tight = false;
    for (const Arc& arc : graph.arcs(v)) {
      // Undirected graph: v's arc list doubles as its in-edge list.
      if (dist[arc.to] != sssp::kUnreachable &&
          dist[arc.to] + arc.weight == dist[v]) {
        tight = true;
        break;
      }
    }
    if (!tight) {
      cert.code = CertCode::kNoWitness;
      cert.detail = "node " + std::to_string(v) + " claims dist " +
                    std::to_string(dist[v]) +
                    " with no tight predecessor edge";
      return cert;
    }
  }
  return cert;
}

}  // namespace optipar::verify
