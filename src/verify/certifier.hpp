// Result certification (DESIGN.md §16): cheap, independent post-run
// checkers that prove the ANSWER a speculative run produced is correct,
// not merely that the run survived. The runtime's existing suites pin
// byte-identity (same schedule after a crash) and liveness (no livelock,
// no lock leaks); a rollback bug or a torn recovery could still commit a
// semantically wrong answer and pass all of them. A Certifier closes that
// gap: it re-derives the correctness invariant of the application from
// first principles — independence and maximality for MIS, per-edge
// relaxation for SSSP, a saturated min-cut for maxflow — and returns a
// typed Certificate instead of a bare bool, so a failure names exactly
// WHICH invariant broke.
//
// Layering: this header depends only on the support substrate, so the
// runtime (rt/adaptive_executor) can carry a Certifier without a cycle.
// The per-app checkers live in verify/app_certs.hpp; the executor
// completeness certificate in verify/executor_cert.hpp.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

namespace optipar {
class MetricsRegistry;
namespace telemetry {
class RuntimeTelemetry;
}
}  // namespace optipar

namespace optipar::verify {

/// The typed failure taxonomy. Every certifier maps each invariant it
/// checks to one code, so a mutation test can assert the EXACT rejection
/// (perturb a known-good output, demand the matching code — the WHFC
/// flow_tester discipline).
enum class CertCode : std::uint8_t {
  kOk = 0,
  // --- MIS ---
  kNotIndependent,     ///< two adjacent nodes are both in the set
  kNotMaximal,         ///< a node outside the set has no neighbor in it
  kUndecidedNode,      ///< a node was never decided in or out
  // --- coloring ---
  kUncolored,          ///< a node carries no color
  kBadColor,           ///< a monochromatic edge
  kPaletteOverflow,    ///< more than max_degree + 1 colors used
  // --- SSSP ---
  kBadSourceDistance,  ///< dist[source] != 0
  kRelaxable,          ///< an edge still admits a relaxation
  kNoWitness,          ///< a finite distance has no tight predecessor edge
  // --- Boruvka ---
  kNotSpanning,        ///< chosen edge count != n - #components
  kWeightMismatch,     ///< claimed weight != serial Kruskal reference
  // --- maxflow ---
  kFlowViolation,      ///< an arc's flow is negative or exceeds capacity
  kNotConserved,       ///< net flow at an internal node is nonzero
  kCutMismatch,        ///< flow value != saturated s-t cut capacity
  // --- survey propagation ---
  kNotSatisfied,       ///< the solver reported no satisfying assignment
  kBadAssignment,      ///< the claimed assignment falsifies a clause
  // --- Delaunay mesh refinement ---
  kBadMesh,            ///< structural invariants (CCW, adjacency) broken
  kStillBad,           ///< a bad triangle survived refinement
  kNotDelaunay,        ///< an empty-circumcircle spot check failed
  // --- executor completeness (any drained run) ---
  kNotDrained,         ///< work remains pending after the run
  kUnaccounted,        ///< committed + quarantined != total tasks
  kLockLeak,           ///< an abstract lock is still owned post-run
  kStateCorrupt,       ///< shared state diverged from the serial oracle
};

[[nodiscard]] const char* cert_code_name(CertCode code) noexcept;

/// The product of one certification pass. `checked` counts the elementary
/// facts examined (edges, arcs, clauses, circumcircles) so a passing
/// certificate is auditable — "ok" with checked == 0 is a red flag, not a
/// pass.
struct Certificate {
  CertCode code = CertCode::kOk;
  std::string detail;         ///< human diagnostic (empty when ok)
  std::uint64_t checked = 0;  ///< elementary facts examined
  std::uint64_t check_ns = 0; ///< wall time (filled by run_certifier)

  [[nodiscard]] bool ok() const noexcept { return code == CertCode::kOk; }
  /// `ok` or `<code>: <detail>` — the form summary lines embed.
  [[nodiscard]] std::string describe() const;
};

/// Thrown by hosts that escalate a failed certificate (the CLI maps it to
/// exit code 8). Carries the full certificate for the catcher.
class CertificationError : public std::runtime_error {
 public:
  explicit CertificationError(Certificate certificate)
      : std::runtime_error("certification failed: " +
                           certificate.describe()),
        certificate_(std::move(certificate)) {}

  [[nodiscard]] const Certificate& certificate() const noexcept {
    return certificate_;
  }

 private:
  Certificate certificate_;
};

/// A deferred certification pass. The closure captures whatever state the
/// check needs (app state + input, or the executor itself) and runs once,
/// after the work-set drains — never on the round hot path.
using Certifier = std::function<Certificate()>;

/// Execute `fn`, stamp the elapsed time into the certificate, and surface
/// the verdict through telemetry when attached: a kCertify trace event
/// (a = ok, b = facts checked, x = seconds, note = code) and a "certify"
/// span on the timeline. With tel == nullptr this is just a timed call —
/// the telemetry-off path stays byte-identical.
[[nodiscard]] Certificate run_certifier(const Certifier& fn,
                                        telemetry::RuntimeTelemetry* tel,
                                        std::uint64_t round);

/// Render the certificate into the metrics registry (`optipar_certify_ok`
/// gauge with a `code` label, `optipar_certify_checked_total`,
/// `optipar_certify_seconds`) — so `--metrics-out` and the serve daemon's
/// metrics artifact both carry the verdict.
void export_certificate_metrics(MetricsRegistry& registry,
                                const Certificate& certificate);

}  // namespace optipar::verify
