#include <string>
#include <vector>

#include "apps/dmr/mesh.hpp"
#include "apps/dmr/refine.hpp"
#include "support/rng.hpp"
#include "verify/app_certs.hpp"

namespace optipar::verify {

Certificate certify_mesh(const dmr::Mesh& mesh,
                         const dmr::RefineQuality& quality,
                         std::uint32_t skip_verts_below,
                         std::size_t spot_checks, std::uint64_t seed) {
  Certificate cert;
  // 1. Structural invariants: CCW orientation, symmetric neighbor links,
  // shared edges. A torn rollback of a cavity re-triangulation breaks
  // these long before it breaks anything an application would notice.
  ++cert.checked;
  if (!mesh.validate()) {
    cert.code = CertCode::kBadMesh;
    cert.detail = "structural invariants violated (orientation/adjacency)";
    return cert;
  }
  // 2. Termination claim: the refinement's whole contract is that no
  // refinable-bad triangle survives the drain.
  const std::vector<dmr::TriId> bad = dmr::bad_triangles(mesh, quality);
  cert.checked += mesh.num_alive_triangles();
  if (!bad.empty()) {
    cert.code = CertCode::kStillBad;
    cert.detail = std::to_string(bad.size()) +
                  " bad triangles remain (first: triangle " +
                  std::to_string(bad.front()) + ")";
    return cert;
  }
  // 3. Delaunay spot checks: sampled alive triangles must pass the local
  // empty-circumcircle test against each neighbor's opposite vertex.
  // Triangles touching the synthetic super-triangle corners are exempt
  // (their circumcircles legitimately swallow interior points).
  const std::vector<dmr::TriId> alive = mesh.alive_triangles();
  if (alive.empty()) return cert;
  Rng rng(seed);
  const std::size_t samples = std::min(spot_checks, alive.size());
  const std::vector<std::uint32_t> picks = rng.sample_without_replacement(
      static_cast<std::uint32_t>(alive.size()),
      static_cast<std::uint32_t>(samples));
  for (const std::uint32_t pick : picks) {
    const dmr::TriId t = alive[pick];
    const dmr::Triangle& tri = mesh.tri(t);
    bool skip = false;
    for (const dmr::PointId p : tri.v) skip = skip || p < skip_verts_below;
    if (skip) continue;
    for (int slot = 0; slot < 3; ++slot) {
      const dmr::TriId nb = tri.nbr[slot];
      if (nb == dmr::kNoNeighbor || !mesh.is_alive(nb)) continue;
      const int back = mesh.slot_of_neighbor(nb, t);
      if (back < 0) continue;  // validate() already vouched for adjacency
      const dmr::PointId opposite = mesh.tri(nb).v[back];
      if (opposite < skip_verts_below) continue;
      ++cert.checked;
      if (mesh.in_circumcircle(t, mesh.point(opposite))) {
        cert.code = CertCode::kNotDelaunay;
        cert.detail = "vertex " + std::to_string(opposite) +
                      " lies inside the circumcircle of triangle " +
                      std::to_string(t);
        return cert;
      }
    }
  }
  return cert;
}

}  // namespace optipar::verify
