// Certified application harness: run one of the seven app kernels end to
// end — generated input, speculative adaptive run, post-run certificate —
// under any controller and scheduler backend. This is the engine behind
// `optipar_cli run --app=<name> --verify` and the verify-smoke CI job: one
// entry point that exercises the whole certification stack (AdaptiveRun's
// certify step, telemetry surfacing, typed failure taxonomy) on real
// workloads instead of the synthetic cell grid.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "sched/scheduler.hpp"
#include "sim/trace.hpp"
#include "support/thread_pool.hpp"
#include "verify/certifier.hpp"

namespace optipar::telemetry {
class RuntimeTelemetry;
}

namespace optipar::verify {

enum class AppKind : std::uint8_t {
  kMis,
  kColoring,
  kSssp,
  kBoruvka,
  kMaxflow,
  kSp,
  kDmr,
};

[[nodiscard]] const char* app_name(AppKind app) noexcept;
[[nodiscard]] std::optional<AppKind> parse_app(std::string_view name);

struct AppRunOptions {
  /// Problem size. Nodes for the graph kernels; variables for sp; points
  /// for dmr; network width scales from it for maxflow.
  std::uint32_t nodes = 300;
  std::uint32_t degree = 8;  ///< average degree (graph kernels)
  std::uint64_t seed = 1;
  sched::Backend scheduler = sched::Backend::kRandom;
  std::string controller = "hybrid";
  double rho = 0.25;
  std::uint32_t max_rounds = 200000;
  /// Optional sink, attached to the run's executor; the certificate's
  /// kCertify event and "certify" span land here.
  telemetry::RuntimeTelemetry* telemetry = nullptr;
};

struct AppRunReport {
  Certificate certificate;
  Trace trace;
  std::uint64_t rounds = 0;
  std::uint64_t launched = 0;
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  /// One app-defined headline number: |MIS|, colors used, reachable nodes,
  /// forest weight, max-flow value, satisfied (0/1), alive triangles.
  double answer = 0.0;
};

/// Generate the app's input from (nodes, degree, seed), run it to drain
/// under the named controller on the chosen backend, certify, and report.
/// The certificate also covers completeness (kNotDrained / kLockLeak) —
/// a run stopped by max_rounds refutes rather than passes. Throws
/// std::invalid_argument for an unknown controller name.
[[nodiscard]] AppRunReport run_app_certified(AppKind app, ThreadPool& pool,
                                             const AppRunOptions& options);

}  // namespace optipar::verify
