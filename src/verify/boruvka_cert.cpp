#include <cmath>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "apps/boruvka/boruvka.hpp"
#include "verify/app_certs.hpp"

namespace optipar::verify {

namespace {

// Minimal union–find, independent of the Kruskal reference's internals.
class Dsu {
 public:
  explicit Dsu(NodeId n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), NodeId{0});
  }
  NodeId find(NodeId v) {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];
      v = parent_[v];
    }
    return v;
  }
  bool unite(NodeId a, NodeId b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<NodeId> parent_;
};

}  // namespace

Certificate certify_boruvka(NodeId n,
                            const std::vector<boruvka::WeightedEdge>& edges,
                            double claimed_weight,
                            std::uint32_t claimed_count) {
  Certificate cert;
  // A spanning forest of the input has exactly n − #components edges;
  // Boruvka contraction records one edge per successful contraction, so
  // the count is a structural certificate independent of the weights.
  Dsu dsu(n);
  NodeId components = n;
  for (const boruvka::WeightedEdge& e : edges) {
    ++cert.checked;
    if (dsu.unite(e.u, e.v)) --components;
  }
  const std::uint32_t expected = n - components;
  if (claimed_count != expected) {
    cert.code = CertCode::kNotSpanning;
    cert.detail = "chose " + std::to_string(claimed_count) +
                  " edges, spanning forest needs " + std::to_string(expected);
    return cert;
  }
  ++cert.checked;
  const double reference = boruvka::kruskal_mst_weight(n, edges);
  const double tol = 1e-6 * std::max(1.0, std::abs(reference));
  if (std::abs(claimed_weight - reference) > tol) {
    cert.code = CertCode::kWeightMismatch;
    cert.detail = "claimed weight " + std::to_string(claimed_weight) +
                  " vs serial Kruskal " + std::to_string(reference);
    return cert;
  }
  ++cert.checked;
  return cert;
}

}  // namespace optipar::verify
