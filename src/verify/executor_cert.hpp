// Executor completeness certificate: the app-agnostic half of result
// certification. Any drained speculative run, whatever its operator, must
// satisfy three bookkeeping invariants — the work-set is empty, every task
// is accounted for (committed or dead-lettered, exactly once), and no
// abstract lock survived the last round. Rollback bugs and torn recoveries
// tend to break one of these before they break the answer, so this check
// rides along on every `--verify` run even when no app-level certifier is
// applicable (e.g. the CLI's synthetic cell workload).
#pragma once

#include <cstdint>

#include "verify/certifier.hpp"

namespace optipar {
class SpeculativeExecutor;
}

namespace optipar::verify {

/// Certify the bookkeeping of a drained run: done() holds (kNotDrained),
/// committed + dead_letters == `total_tasks` (kUnaccounted), and the lock
/// table is empty (kLockLeak). `total_tasks` is the number of DISTINCT
/// tasks the workload retires — for self-requeueing workloads pass the
/// final committed + quarantined expectation, not the initial push count.
[[nodiscard]] Certificate certify_drained_run(SpeculativeExecutor& executor,
                                              std::uint64_t total_tasks);

}  // namespace optipar::verify
