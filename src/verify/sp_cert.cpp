#include <string>

#include "apps/sp/formula.hpp"
#include "apps/sp/survey.hpp"
#include "verify/app_certs.hpp"

namespace optipar::verify {

Certificate certify_sp(const sp::Formula& formula,
                       const sp::SidResult& result) {
  Certificate cert;
  if (!result.satisfied) {
    cert.code = CertCode::kNotSatisfied;
    cert.detail = "solver reported no satisfying assignment";
    return cert;
  }
  ++cert.checked;
  if (result.assignment.size() != formula.num_vars()) {
    cert.code = CertCode::kBadAssignment;
    cert.detail = "assignment covers " +
                  std::to_string(result.assignment.size()) + " of " +
                  std::to_string(formula.num_vars()) + " variables";
    return cert;
  }
  ++cert.checked;
  // Evaluate every clause directly rather than via is_satisfied_by, so the
  // certificate can name the falsified clause.
  for (std::uint32_t c = 0; c < formula.num_clauses(); ++c) {
    ++cert.checked;
    bool satisfied = false;
    for (const sp::Literal& lit : formula.clause(c).literals) {
      if ((result.assignment[lit.var] != 0) == lit.positive) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) {
      cert.code = CertCode::kBadAssignment;
      cert.detail = "clause " + std::to_string(c) +
                    " is falsified by the claimed assignment";
      return cert;
    }
  }
  return cert;
}

}  // namespace optipar::verify
