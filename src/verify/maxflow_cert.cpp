#include <cmath>
#include <deque>
#include <string>
#include <vector>

#include "apps/maxflow/maxflow.hpp"
#include "verify/app_certs.hpp"

namespace optipar::verify {

// The WHFC flow_tester shape: feasibility plus a saturated s-t cut whose
// capacity equals the flow value. By weak duality any cut's capacity upper-
// bounds any feasible flow, so exhibiting a cut that MEETS the flow value
// proves optimality of both — no reference max-flow run needed.
Certificate certify_maxflow(const maxflow::FlowNetwork& net, NodeId s,
                            NodeId t, double claimed_flow) {
  Certificate cert;
  const NodeId n = net.num_nodes();
  // Capacities are integer-valued doubles, but flow values are produced by
  // long +/- chains, so allow a tiny absolute slack on the summed checks.
  constexpr double kEps = 1e-6;

  // 1. Capacity constraints, arc by arc. Reverse (residual) arcs carry
  // capacity 0 and flow <= 0, which the same bounds admit.
  for (NodeId u = 0; u < n; ++u) {
    for (const maxflow::FlowNetwork::FlowArc& arc : net.arcs(u)) {
      ++cert.checked;
      if (arc.flow > arc.capacity + kEps ||
          arc.flow < -net.arcs(arc.rev_node)[arc.rev_index].capacity - kEps) {
        cert.code = CertCode::kFlowViolation;
        cert.detail = "arc " + std::to_string(u) + "->" +
                      std::to_string(arc.to) + " flow " +
                      std::to_string(arc.flow) + " outside [−rev_cap, " +
                      std::to_string(arc.capacity) + "]";
        return cert;
      }
    }
  }

  // 2. Conservation at every internal node (net outflow == 0; arc pairs
  // mirror each other, so summing each node's own list suffices).
  for (NodeId u = 0; u < n; ++u) {
    if (u == s || u == t) continue;
    ++cert.checked;
    double out = 0.0;
    for (const maxflow::FlowNetwork::FlowArc& arc : net.arcs(u)) {
      out += arc.flow;
    }
    if (std::abs(out) > kEps) {
      cert.code = CertCode::kNotConserved;
      cert.detail = "node " + std::to_string(u) + " has net outflow " +
                    std::to_string(out);
      return cert;
    }
  }

  // 3. Saturated cut: BFS from s over residual arcs. Reaching t means the
  // flow is not maximum; otherwise the (reachable, unreachable) cut is
  // saturated and its capacity must equal the flow value.
  std::vector<std::uint8_t> reach(n, 0);
  std::deque<NodeId> queue{s};
  reach[s] = 1;
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (const maxflow::FlowNetwork::FlowArc& arc : net.arcs(u)) {
      ++cert.checked;
      if (arc.residual() > kEps && !reach[arc.to]) {
        reach[arc.to] = 1;
        queue.push_back(arc.to);
      }
    }
  }
  if (reach[t]) {
    cert.code = CertCode::kCutMismatch;
    cert.detail = "t is residual-reachable from s: flow is not maximum";
    return cert;
  }
  double cut_capacity = 0.0;
  for (NodeId u = 0; u < n; ++u) {
    if (!reach[u]) continue;
    for (const maxflow::FlowNetwork::FlowArc& arc : net.arcs(u)) {
      if (!reach[arc.to]) cut_capacity += arc.capacity;
    }
  }
  const double value = net.flow_value(s);
  const double tol = kEps * std::max(1.0, std::abs(cut_capacity));
  if (std::abs(value - cut_capacity) > tol ||
      std::abs(claimed_flow - cut_capacity) > tol) {
    cert.code = CertCode::kCutMismatch;
    cert.detail = "claimed " + std::to_string(claimed_flow) + ", flow value " +
                  std::to_string(value) + ", saturated cut capacity " +
                  std::to_string(cut_capacity);
    return cert;
  }
  ++cert.checked;
  return cert;
}

}  // namespace optipar::verify
