#include "verify/executor_cert.hpp"

#include <string>

#include "rt/spec_executor.hpp"

namespace optipar::verify {

Certificate certify_drained_run(SpeculativeExecutor& executor,
                                std::uint64_t total_tasks) {
  Certificate cert;
  if (!executor.done()) {
    cert.code = CertCode::kNotDrained;
    cert.detail = std::to_string(executor.pending()) + " tasks still pending";
    return cert;
  }
  ++cert.checked;
  const ExecutorTotals& t = executor.totals();
  const std::uint64_t retired =
      t.committed + static_cast<std::uint64_t>(executor.dead_letters().size());
  if (retired != total_tasks) {
    cert.code = CertCode::kUnaccounted;
    cert.detail = "committed=" + std::to_string(t.committed) +
                  " dead_letters=" +
                  std::to_string(executor.dead_letters().size()) +
                  " expected total=" + std::to_string(total_tasks);
    return cert;
  }
  ++cert.checked;
  const std::size_t leaked = executor.locks().owned_count();
  if (leaked != 0) {
    cert.code = CertCode::kLockLeak;
    cert.detail = std::to_string(leaked) + " abstract locks still owned";
    return cert;
  }
  ++cert.checked;
  return cert;
}

}  // namespace optipar::verify
