#include "verify/certifier.hpp"

#include "support/telemetry/metrics_registry.hpp"
#include "support/telemetry/span_trace.hpp"
#include "support/telemetry/telemetry.hpp"
#include "support/timer.hpp"

namespace optipar::verify {

const char* cert_code_name(CertCode code) noexcept {
  switch (code) {
    case CertCode::kOk: return "ok";
    case CertCode::kNotIndependent: return "not_independent";
    case CertCode::kNotMaximal: return "not_maximal";
    case CertCode::kUndecidedNode: return "undecided_node";
    case CertCode::kUncolored: return "uncolored";
    case CertCode::kBadColor: return "bad_color";
    case CertCode::kPaletteOverflow: return "palette_overflow";
    case CertCode::kBadSourceDistance: return "bad_source_distance";
    case CertCode::kRelaxable: return "relaxable";
    case CertCode::kNoWitness: return "no_witness";
    case CertCode::kNotSpanning: return "not_spanning";
    case CertCode::kWeightMismatch: return "weight_mismatch";
    case CertCode::kFlowViolation: return "flow_violation";
    case CertCode::kNotConserved: return "not_conserved";
    case CertCode::kCutMismatch: return "cut_mismatch";
    case CertCode::kNotSatisfied: return "not_satisfied";
    case CertCode::kBadAssignment: return "bad_assignment";
    case CertCode::kBadMesh: return "bad_mesh";
    case CertCode::kStillBad: return "still_bad";
    case CertCode::kNotDelaunay: return "not_delaunay";
    case CertCode::kNotDrained: return "not_drained";
    case CertCode::kUnaccounted: return "unaccounted";
    case CertCode::kLockLeak: return "lock_leak";
    case CertCode::kStateCorrupt: return "state_corrupt";
  }
  return "unknown";
}

std::string Certificate::describe() const {
  if (ok()) return "ok";
  std::string out = cert_code_name(code);
  if (!detail.empty()) {
    out += ": ";
    out += detail;
  }
  return out;
}

Certificate run_certifier(const Certifier& fn,
                          telemetry::RuntimeTelemetry* tel,
                          std::uint64_t round) {
  const std::uint64_t t0 = monotonic_ns();
  Certificate cert = fn();
  const std::uint64_t t1 = monotonic_ns();
  cert.check_ns = t1 - t0;
  if (tel != nullptr) {
    telemetry::TraceEvent ev;
    ev.kind = telemetry::EventKind::kCertify;
    ev.round = round;
    ev.a = cert.ok() ? 1 : 0;
    ev.b = cert.checked;
    ev.x = static_cast<double>(cert.check_ns) * 1e-9;
    ev.note = cert.describe();
    tel->emit(std::move(ev));
    if (telemetry::SpanCollector* spans = tel->spans(); spans != nullptr) {
      telemetry::SpanRecord rec;
      rec.name = "certify";
      rec.tid = 0;  // coordinator — certification never runs on a lane
      rec.start_ns = t0;
      rec.end_ns = t1;
      rec.a = round;
      rec.b = cert.checked;
      rec.note = cert.describe();
      spans->record(rec);
    }
  }
  return cert;
}

void export_certificate_metrics(MetricsRegistry& reg,
                                const Certificate& cert) {
  reg.add("optipar_certify_ok", MetricsRegistry::Type::kGauge,
          "Post-run certification verdict (1 = certified, 0 = refuted)",
          {{"code", cert_code_name(cert.code)}}, cert.ok() ? 1.0 : 0.0);
  reg.add("optipar_certify_checked_total", MetricsRegistry::Type::kCounter,
          "Elementary facts examined by the post-run certifier", {},
          static_cast<double>(cert.checked));
  reg.add("optipar_certify_seconds", MetricsRegistry::Type::kGauge,
          "Wall seconds the post-run certification pass took", {},
          static_cast<double>(cert.check_ns) * 1e-9);
}

}  // namespace optipar::verify
