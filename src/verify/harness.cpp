#include "verify/harness.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

#include "apps/boruvka/boruvka.hpp"
#include "apps/coloring/coloring.hpp"
#include "apps/dmr/delaunay.hpp"
#include "apps/dmr/refine.hpp"
#include "apps/maxflow/maxflow.hpp"
#include "apps/mis/mis.hpp"
#include "apps/sp/survey.hpp"
#include "apps/sssp/sssp.hpp"
#include "control/factory.hpp"
#include "graph/generators.hpp"
#include "graph/weighted_graph.hpp"
#include "rt/adaptive_executor.hpp"
#include "rt/spec_executor.hpp"
#include "support/rng.hpp"
#include "verify/app_certs.hpp"

namespace optipar::verify {

const char* app_name(AppKind app) noexcept {
  switch (app) {
    case AppKind::kMis: return "mis";
    case AppKind::kColoring: return "coloring";
    case AppKind::kSssp: return "sssp";
    case AppKind::kBoruvka: return "boruvka";
    case AppKind::kMaxflow: return "maxflow";
    case AppKind::kSp: return "sp";
    case AppKind::kDmr: return "dmr";
  }
  return "unknown";
}

std::optional<AppKind> parse_app(std::string_view name) {
  for (const AppKind app :
       {AppKind::kMis, AppKind::kColoring, AppKind::kSssp, AppKind::kBoruvka,
        AppKind::kMaxflow, AppKind::kSp, AppKind::kDmr}) {
    if (name == app_name(app)) return app;
  }
  return std::nullopt;
}

namespace {

RoundOptions options_for(sched::Backend backend) {
  RoundOptions opts;
  opts.scheduler = backend;
  return opts;
}

/// Backend wiring shared by every graph kernel: chromatic needs the
/// declared footprint, relaxed a priority (task id keeps runs
/// deterministic and backend-comparable).
void wire_backend(SpeculativeExecutor& ex, sched::Backend backend,
                  sched::FootprintFn footprint) {
  if (backend == sched::Backend::kChromatic) {
    ex.set_footprint_function(std::move(footprint));
  } else if (backend == sched::Backend::kRelaxed) {
    ex.set_priority_function([](TaskId t) { return t; });
  }
}

sched::FootprintFn closed_neighborhood(const CsrGraph& g) {
  return [&g](TaskId t, std::vector<std::uint32_t>& fp) {
    const auto v = static_cast<NodeId>(t);
    fp.push_back(v);
    for (const NodeId u : g.neighbors(v)) fp.push_back(u);
  };
}

void push_all(SpeculativeExecutor& ex, std::size_t n) {
  std::vector<TaskId> tasks(n);
  std::iota(tasks.begin(), tasks.end(), TaskId{0});
  ex.push_initial(tasks);
}

std::unique_ptr<Controller> make_run_controller(const AppRunOptions& opt) {
  ControllerParams params;
  params.rho = opt.rho;
  params.m_max = std::max<std::uint32_t>(2, opt.nodes);
  std::unique_ptr<Controller> controller =
      make_controller(opt.controller, params);
  if (controller == nullptr) {
    throw std::invalid_argument("unknown controller: " + opt.controller);
  }
  return controller;
}

/// The harness certificate = completeness (drained, no lock leaks) THEN
/// the app's answer certificate — so a run stopped by max_rounds refutes
/// with kNotDrained instead of certifying a half-finished answer.
Certificate completeness_then(SpeculativeExecutor& ex,
                              const Certifier& app_cert) {
  if (!ex.done()) {
    Certificate cert;
    cert.code = CertCode::kNotDrained;
    cert.detail = std::to_string(ex.pending()) + " tasks still pending";
    return cert;
  }
  if (const std::size_t leaked = ex.locks().owned_count(); leaked != 0) {
    Certificate cert;
    cert.code = CertCode::kLockLeak;
    cert.detail = std::to_string(leaked) + " abstract locks still owned";
    return cert;
  }
  Certificate cert = app_cert();
  cert.checked += 2;  // the drain + lock-leak facts above
  return cert;
}

/// Drive the stepper to completion and collect the common report fields.
/// ensure_certified() covers the max_rounds exit, where step() never
/// observes the finished state from a non-finished one.
AppRunReport drive(SpeculativeExecutor& ex, Controller& controller,
                   AdaptiveRunConfig config) {
  AdaptiveRun run(ex, controller, std::move(config));
  while (run.step()) {
  }
  run.ensure_certified();
  AppRunReport report;
  if (run.certificate().has_value()) report.certificate = *run.certificate();
  report.trace = run.take_trace();
  report.rounds = ex.totals().rounds;
  report.launched = ex.totals().launched;
  report.committed = ex.totals().committed;
  report.aborted = ex.totals().aborted;
  return report;
}

AdaptiveRunConfig base_config(const AppRunOptions& opt) {
  AdaptiveRunConfig config;
  config.max_rounds = opt.max_rounds;
  return config;
}

AppRunReport run_mis(ThreadPool& pool, const AppRunOptions& opt) {
  Rng rng(opt.seed);
  const CsrGraph g =
      gen::random_with_average_degree(opt.nodes, opt.degree, rng);
  mis::MisState state(g.num_nodes());
  SpeculativeExecutor ex(pool, g.num_nodes(),
                         mis::make_mis_operator(g, state), opt.seed * 11 + 3,
                         options_for(opt.scheduler));
  wire_backend(ex, opt.scheduler, closed_neighborhood(g));
  if (opt.telemetry != nullptr) ex.set_telemetry(opt.telemetry);
  push_all(ex, g.num_nodes());
  auto controller = make_run_controller(opt);
  AdaptiveRunConfig config = base_config(opt);
  config.certifier = [&ex, &g, &state] {
    return completeness_then(ex, [&] { return certify_mis(g, state); });
  };
  AppRunReport report = drive(ex, *controller, std::move(config));
  report.answer = static_cast<double>(state.in_set().size());
  return report;
}

AppRunReport run_coloring(ThreadPool& pool, const AppRunOptions& opt) {
  Rng rng(opt.seed);
  const CsrGraph g =
      gen::random_with_average_degree(opt.nodes, opt.degree, rng);
  coloring::ColoringState state(g.num_nodes());
  SpeculativeExecutor ex(pool, g.num_nodes(),
                         coloring::make_coloring_operator(g, state),
                         opt.seed * 11 + 3, options_for(opt.scheduler));
  wire_backend(ex, opt.scheduler, closed_neighborhood(g));
  if (opt.telemetry != nullptr) ex.set_telemetry(opt.telemetry);
  push_all(ex, g.num_nodes());
  auto controller = make_run_controller(opt);
  AdaptiveRunConfig config = base_config(opt);
  config.certifier = [&ex, &g, &state] {
    return completeness_then(ex, [&] { return certify_coloring(g, state); });
  };
  AppRunReport report = drive(ex, *controller, std::move(config));
  report.answer = static_cast<double>(state.colors_used());
  return report;
}

AppRunReport run_sssp(ThreadPool& pool, const AppRunOptions& opt) {
  Rng rng(opt.seed);
  const CsrGraph base =
      gen::random_with_average_degree(opt.nodes, opt.degree, rng);
  std::vector<WeightedEdgeTriple> edges;
  for (const auto& [u, v] : base.edges()) {
    edges.push_back({u, v, rng.uniform() * 10.0 + 0.1});
  }
  const WeightedGraph g = WeightedGraph::from_edges(base.num_nodes(), edges);
  const NodeId source = 0;
  sssp::DistanceTable dist(g.num_nodes(), source);
  SpeculativeExecutor ex(pool, g.num_nodes(),
                         sssp::make_sssp_operator(g, dist), opt.seed * 11 + 3,
                         options_for(opt.scheduler));
  wire_backend(ex, opt.scheduler,
               [&g](TaskId t, std::vector<std::uint32_t>& fp) {
                 const auto v = static_cast<NodeId>(t);
                 fp.push_back(v);
                 for (const Arc& a : g.arcs(v)) fp.push_back(a.to);
               });
  if (opt.telemetry != nullptr) ex.set_telemetry(opt.telemetry);
  push_all(ex, g.num_nodes());
  auto controller = make_run_controller(opt);
  AdaptiveRunConfig config = base_config(opt);
  config.certifier = [&ex, &g, &dist, source] {
    return completeness_then(
        ex, [&] { return certify_sssp(g, source, dist.all()); });
  };
  AppRunReport report = drive(ex, *controller, std::move(config));
  double reached = 0.0;
  for (const double d : dist.all()) {
    if (d != sssp::kUnreachable) reached += 1.0;
  }
  report.answer = reached;
  return report;
}

AppRunReport run_boruvka(ThreadPool& pool, const AppRunOptions& opt) {
  Rng rng(opt.seed);
  const CsrGraph base =
      gen::random_with_average_degree(opt.nodes, opt.degree, rng);
  std::vector<boruvka::WeightedEdge> edges;
  for (const auto& [u, v] : base.edges()) {
    edges.push_back({u, v, rng.uniform() * 100.0 + 1e-3});
  }
  boruvka::ContractionGraph graph(base.num_nodes(), edges);
  SpeculativeExecutor ex(pool, base.num_nodes(),
                         boruvka::make_boruvka_operator(graph),
                         opt.seed * 11 + 3, options_for(opt.scheduler));
  // Live closed neighborhood in the contraction graph; the adjacency
  // mutates as supernodes merge, so the standing coloring is invalidated
  // before every round (a no-op on non-chromatic backends).
  wire_backend(ex, opt.scheduler,
               [&graph](TaskId t, std::vector<std::uint32_t>& fp) {
                 const auto v = static_cast<NodeId>(t);
                 fp.push_back(v);
                 for (const auto& [x, w] : graph.adjacency(v)) {
                   fp.push_back(x);
                 }
               });
  if (opt.telemetry != nullptr) ex.set_telemetry(opt.telemetry);
  push_all(ex, base.num_nodes());
  auto controller = make_run_controller(opt);
  AdaptiveRunConfig config = base_config(opt);
  config.before_round = [](SpeculativeExecutor& e) {
    e.invalidate_schedule();
  };
  const NodeId n = base.num_nodes();
  config.certifier = [&ex, &graph, &edges, n] {
    return completeness_then(ex, [&] {
      return certify_boruvka(n, edges, graph.chosen_weight(),
                             graph.chosen_count());
    });
  };
  AppRunReport report = drive(ex, *controller, std::move(config));
  report.answer = graph.chosen_weight();
  return report;
}

AppRunReport run_maxflow(ThreadPool& pool, const AppRunOptions& opt) {
  // Layered random network s -> L1 -> L2 -> t, width scaled from `nodes`.
  const NodeId width = std::max<NodeId>(4, opt.nodes / 10);
  const NodeId n = 2 * width + 2;
  const NodeId s = 0;
  const NodeId t = n - 1;
  maxflow::FlowNetwork net(n);
  Rng rng(opt.seed);
  for (NodeId v = 1; v <= width; ++v) {
    net.add_arc(s, v, rng.uniform() * 8.0 + 1.0);
  }
  for (NodeId v = 1; v <= width; ++v) {
    for (int k = 0; k < 3; ++k) {
      const NodeId w =
          width + 1 + static_cast<NodeId>(rng.below(width));
      net.add_arc(v, w, rng.uniform() * 6.0 + 0.5);
    }
  }
  for (NodeId w = width + 1; w <= 2 * width; ++w) {
    net.add_arc(w, t, rng.uniform() * 8.0 + 1.0);
  }

  maxflow::PushRelabelState state(n, s);
  // Source-saturating preflow: the push-relabel starting point.
  std::vector<TaskId> initial;
  auto& source_arcs = net.arcs(s);
  for (std::uint32_t i = 0; i < source_arcs.size(); ++i) {
    auto& a = source_arcs[i];
    if (a.capacity > 0.0) {
      net.push(s, i, a.capacity);
      state.set_excess(a.to, state.excess(a.to) + a.capacity);
      state.set_excess(s, state.excess(s) - a.capacity);
      if (a.to != t) initial.push_back(a.to);
    }
  }
  SpeculativeExecutor ex(pool, n,
                         maxflow::make_push_relabel_operator(net, state, s, t),
                         opt.seed * 11 + 3, options_for(opt.scheduler));
  wire_backend(ex, opt.scheduler,
               [&net](TaskId task, std::vector<std::uint32_t>& fp) {
                 const auto v = static_cast<NodeId>(task);
                 fp.push_back(v);
                 for (const auto& a : net.arcs(v)) fp.push_back(a.to);
               });
  if (opt.telemetry != nullptr) ex.set_telemetry(opt.telemetry);
  ex.push_initial(initial);
  auto controller = make_run_controller(opt);
  AdaptiveRunConfig config = base_config(opt);
  auto rounds_since = std::make_shared<int>(0);
  config.before_round = [&net, &state, s, t,
                         rounds_since](SpeculativeExecutor&) {
    if (++*rounds_since >= 64) {
      *rounds_since = 0;
      maxflow::global_relabel(net, state, s, t);
    }
  };
  config.certifier = [&ex, &net, &state, s, t] {
    return completeness_then(
        ex, [&] { return certify_maxflow(net, s, t, state.excess(t)); });
  };
  AppRunReport report = drive(ex, *controller, std::move(config));
  report.answer = state.excess(t);
  return report;
}

AppRunReport run_sp(ThreadPool& pool, const AppRunOptions& opt) {
  // Ratio 2.0 keeps instances satisfiable w.h.p. (3-SAT threshold ~4.27),
  // so a refuted certificate signals a runtime bug, not a hard instance.
  Rng rng(opt.seed);
  const sp::Formula formula =
      sp::random_ksat(opt.nodes, opt.nodes * 2, 3, rng);
  sp::SpConfig config;
  config.scheduler = opt.scheduler;
  auto controller = make_run_controller(opt);
  const sp::SidResult result =
      sp::solve_with_sid(formula, config, rng, controller.get(), &pool);
  AppRunReport report;
  report.certificate = run_certifier(
      [&formula, &result] { return certify_sp(formula, result); },
      opt.telemetry, result.trace.steps.size());
  report.trace = result.trace;
  report.rounds = report.trace.steps.size();
  for (const StepRecord& step : report.trace.steps) {
    report.launched += step.launched;
    report.committed += step.committed;
    report.aborted += step.aborted;
  }
  report.answer = result.satisfied ? 1.0 : 0.0;
  return report;
}

AppRunReport run_dmr(ThreadPool& pool, const AppRunOptions& opt) {
  Rng rng(opt.seed);
  std::vector<dmr::Point2> pts;
  pts.reserve(opt.nodes);
  for (std::uint32_t i = 0; i < opt.nodes; ++i) {
    pts.push_back({rng.uniform() * 100.0, rng.uniform() * 100.0});
  }
  dmr::Mesh mesh;
  dmr::build_delaunay(mesh, pts, 16.0);
  dmr::RefineQuality q;
  q.min_angle_deg = 25.0;
  q.min_edge = 2.0;
  q.set_domain(pts);

  SpeculativeExecutor ex(pool, mesh.num_triangle_slots(),
                         dmr::make_refine_operator(mesh, q),
                         opt.seed * 11 + 3, options_for(opt.scheduler));
  // Declared footprint of a bad triangle: the Bowyer–Watson cavity + ring
  // of BOTH candidate insertion points (circumcenter, centroid) — a
  // superset of whatever refine_one ends up locking.
  wire_backend(
      ex, opt.scheduler,
      [&mesh, q](TaskId task, std::vector<std::uint32_t>& fp) {
        const auto t = static_cast<dmr::TriId>(task);
        fp.push_back(t);
        if (!dmr::is_bad(mesh, t, q)) return;
        const auto add = [&fp](const dmr::CavityFootprint& c) {
          for (const dmr::TriId tri : c.cavity) fp.push_back(tri);
          for (const dmr::TriId tri : c.ring) fp.push_back(tri);
        };
        const dmr::Point2 center = mesh.circumcenter_of(t);
        if (std::isfinite(center.x) && std::isfinite(center.y) &&
            q.in_domain(center)) {
          add(dmr::probe_cavity(mesh, center, t));
        }
        const dmr::Point2 centroid{
            (mesh.corner(t, 0).x + mesh.corner(t, 1).x +
             mesh.corner(t, 2).x) /
                3.0,
            (mesh.corner(t, 0).y + mesh.corner(t, 1).y +
             mesh.corner(t, 2).y) /
                3.0};
        add(dmr::probe_cavity(mesh, centroid, t));
      });
  if (opt.telemetry != nullptr) ex.set_telemetry(opt.telemetry);
  const std::vector<dmr::TriId> initial = dmr::bad_triangles(mesh, q);
  std::vector<TaskId> tasks(initial.begin(), initial.end());
  ex.push_initial(tasks);
  auto controller = make_run_controller(opt);
  AdaptiveRunConfig config = base_config(opt);
  config.before_round = [&mesh](SpeculativeExecutor& e) {
    e.grow_items(mesh.num_triangle_slots());
    e.invalidate_schedule();
  };
  const std::uint64_t cert_seed = opt.seed ^ 0x5eedULL;
  config.certifier = [&ex, &mesh, q, cert_seed] {
    return completeness_then(ex, [&] {
      return certify_mesh(mesh, q, dmr::kNumSuperVertices,
                          /*spot_checks=*/64, cert_seed);
    });
  };
  AppRunReport report = drive(ex, *controller, std::move(config));
  report.answer = static_cast<double>(mesh.num_alive_triangles());
  return report;
}

}  // namespace

AppRunReport run_app_certified(AppKind app, ThreadPool& pool,
                               const AppRunOptions& options) {
  switch (app) {
    case AppKind::kMis: return run_mis(pool, options);
    case AppKind::kColoring: return run_coloring(pool, options);
    case AppKind::kSssp: return run_sssp(pool, options);
    case AppKind::kBoruvka: return run_boruvka(pool, options);
    case AppKind::kMaxflow: return run_maxflow(pool, options);
    case AppKind::kSp: return run_sp(pool, options);
    case AppKind::kDmr: return run_dmr(pool, options);
  }
  throw std::invalid_argument("unknown app kind");
}

}  // namespace optipar::verify
