// Per-app answer certificates (DESIGN.md §16). Each function re-derives
// the application's correctness invariant independently of the speculative
// operator that produced the answer — different code path, different data
// structures, serial — and returns a typed Certificate. The checks are
// asymptotically cheaper than (or comparable to) one serial re-solve and
// run exactly once, after the work-set drains.
//
// Certification strength, per app:
//   MIS       exact: independence + maximality + totality characterize the
//             answer set completely.
//   coloring  exact: properness + the Δ+1 palette bound is precisely the
//             greedy invariant the operator promises.
//   SSSP      exact: dist[s] = 0, no relaxable edge, and a tight
//             predecessor witness per finite label imply dist is THE
//             shortest-distance fixed point (no reference run needed).
//   boruvka   exact vs reference: spanning-forest edge count per component
//             + total weight equal to a serial Kruskal re-solve.
//   maxflow   exact: feasibility + a saturated s-t cut whose capacity
//             equals the flow value is the strong-duality certificate of
//             optimality (the WHFC flow_tester shape).
//   sp        exact for SAT claims: the assignment is checked against
//             every clause by independent evaluation.
//   dmr       structural validity + no remaining bad triangle, plus
//             randomized empty-circumcircle spot checks.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/weighted_graph.hpp"
#include "verify/certifier.hpp"

namespace optipar::mis {
class MisState;
}
namespace optipar::coloring {
class ColoringState;
}
namespace optipar::boruvka {
struct WeightedEdge;
}
namespace optipar::maxflow {
class FlowNetwork;
}
namespace optipar::sp {
class Formula;
struct SidResult;
}
namespace optipar::dmr {
class Mesh;
struct RefineQuality;
}

namespace optipar::verify {

/// MIS: every node decided (kUndecidedNode), no edge inside the set
/// (kNotIndependent), every OUT node has an IN neighbor (kNotMaximal).
[[nodiscard]] Certificate certify_mis(const CsrGraph& graph,
                                      const mis::MisState& state);

/// Coloring: every node colored (kUncolored), no monochromatic edge
/// (kBadColor), colors fit in [0, max_degree] (kPaletteOverflow).
[[nodiscard]] Certificate certify_coloring(const CsrGraph& graph,
                                           const coloring::ColoringState& state);

/// SSSP fixed-point certificate against `dist` (indexed by node):
/// dist[source] == 0 (kBadSourceDistance), no edge admits a relaxation
/// (kRelaxable), and every finite non-source label has a tight predecessor
/// edge dist[u] + w == dist[v] (kNoWitness). Exact double comparisons are
/// sound here: labels are produced by the same +-chains the check replays.
[[nodiscard]] Certificate certify_sssp(const WeightedGraph& graph,
                                       NodeId source,
                                       std::span<const double> dist);

/// Boruvka MST/forest: chosen edge count must equal n − #components of the
/// input (kNotSpanning) and the claimed weight must match an internal
/// serial Kruskal re-solve to 1e-6 relative (kWeightMismatch).
[[nodiscard]] Certificate certify_boruvka(
    NodeId n, const std::vector<boruvka::WeightedEdge>& edges,
    double claimed_weight, std::uint32_t claimed_count);

/// Maxflow strong-duality certificate: 0 <= flow <= capacity on every arc
/// (kFlowViolation), conservation at every node but s/t (kNotConserved),
/// and a BFS over residual arcs from s must not reach t with the resulting
/// cut's capacity equal to both the claimed and the recomputed flow value
/// (kCutMismatch).
[[nodiscard]] Certificate certify_maxflow(const maxflow::FlowNetwork& net,
                                          NodeId s, NodeId t,
                                          double claimed_flow);

/// Survey propagation: the solver must claim satisfaction (kNotSatisfied)
/// and the assignment must be total and satisfy every clause under
/// independent evaluation (kBadAssignment).
[[nodiscard]] Certificate certify_sp(const sp::Formula& formula,
                                     const sp::SidResult& result);

/// Refined mesh: structural invariants hold (kBadMesh), no refinable-bad
/// triangle remains (kStillBad), and `spot_checks` randomly sampled alive
/// triangles pass the local empty-circumcircle test against each
/// neighbor's opposite vertex (kNotDelaunay). Triangles touching a vertex
/// below `skip_verts_below` (the synthetic super-triangle corners) are
/// exempt from the Delaunay check, matching Mesh::is_locally_delaunay.
[[nodiscard]] Certificate certify_mesh(const dmr::Mesh& mesh,
                                       const dmr::RefineQuality& quality,
                                       std::uint32_t skip_verts_below,
                                       std::size_t spot_checks,
                                       std::uint64_t seed);

}  // namespace optipar::verify
