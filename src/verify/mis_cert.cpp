#include <string>

#include "apps/mis/mis.hpp"
#include "verify/app_certs.hpp"

namespace optipar::verify {

Certificate certify_mis(const CsrGraph& graph, const mis::MisState& state) {
  Certificate cert;
  const NodeId n = graph.num_nodes();
  for (NodeId v = 0; v < n; ++v) {
    ++cert.checked;
    if (state.get(v) == mis::NodeState::kUndecided) {
      cert.code = CertCode::kUndecidedNode;
      cert.detail = "node " + std::to_string(v) + " never decided";
      return cert;
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    const bool v_in = state.get(v) == mis::NodeState::kIn;
    bool has_in_neighbor = false;
    for (const NodeId u : graph.neighbors(v)) {
      ++cert.checked;
      const bool u_in = state.get(u) == mis::NodeState::kIn;
      if (v_in && u_in) {
        cert.code = CertCode::kNotIndependent;
        cert.detail = "edge (" + std::to_string(v) + "," + std::to_string(u) +
                      ") has both endpoints in the set";
        return cert;
      }
      has_in_neighbor = has_in_neighbor || u_in;
    }
    if (!v_in && !has_in_neighbor) {
      cert.code = CertCode::kNotMaximal;
      cert.detail = "node " + std::to_string(v) +
                    " is out but has no in-set neighbor";
      return cert;
    }
  }
  return cert;
}

}  // namespace optipar::verify
