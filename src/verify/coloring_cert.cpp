#include <string>

#include "apps/coloring/coloring.hpp"
#include "verify/app_certs.hpp"

namespace optipar::verify {

Certificate certify_coloring(const CsrGraph& graph,
                             const coloring::ColoringState& state) {
  Certificate cert;
  const NodeId n = graph.num_nodes();
  // The greedy operator's palette bound: first-fit over a neighborhood of
  // at most max_degree colors can never need a color above max_degree.
  const std::uint32_t palette = graph.max_degree();
  for (NodeId v = 0; v < n; ++v) {
    ++cert.checked;
    const std::uint32_t c = state.color(v);
    if (c == coloring::kUncolored) {
      cert.code = CertCode::kUncolored;
      cert.detail = "node " + std::to_string(v) + " has no color";
      return cert;
    }
    if (c > palette) {
      cert.code = CertCode::kPaletteOverflow;
      cert.detail = "node " + std::to_string(v) + " uses color " +
                    std::to_string(c) + " > max_degree " +
                    std::to_string(palette);
      return cert;
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    for (const NodeId u : graph.neighbors(v)) {
      if (u <= v) continue;  // each undirected edge once
      ++cert.checked;
      if (state.color(v) == state.color(u)) {
        cert.code = CertCode::kBadColor;
        cert.detail = "edge (" + std::to_string(v) + "," + std::to_string(u) +
                      ") is monochromatic (color " +
                      std::to_string(state.color(v)) + ")";
        return cert;
      }
    }
  }
  return cert;
}

}  // namespace optipar::verify
