#include "serve/job.hpp"

#include "support/snapshot/snapshot.hpp"

namespace optipar::serve {

namespace {

using snapshot::Reader;
using snapshot::SnapshotError;
using snapshot::Writer;

void encode_spec(Writer& out, const JobSpec& spec) {
  out.u64(spec.id);
  out.u8(static_cast<std::uint8_t>(spec.kind));
  out.str(spec.graph);
  out.str(spec.controller);
  out.f64(spec.rho);
  out.u64(spec.seed);
  out.u32(spec.steps);
  out.u32(spec.m0);
  out.u32(spec.m_max);
  out.i64(spec.timeout_ms);
  out.u32(spec.checkpoint_every);
  out.str(spec.scheduler);
  out.u8(spec.verify ? 1 : 0);
}

JobSpec decode_spec(Reader& in) {
  JobSpec spec;
  spec.id = in.u64();
  const auto kind = in.u8();
  if (kind > static_cast<std::uint8_t>(JobKind::kEstimate)) {
    throw SnapshotError(SnapshotError::Kind::kMalformed,
                        "WAL: unknown job kind");
  }
  spec.kind = static_cast<JobKind>(kind);
  spec.graph = in.str();
  spec.controller = in.str();
  spec.rho = in.f64();
  spec.seed = in.u64();
  spec.steps = in.u32();
  spec.m0 = in.u32();
  spec.m_max = in.u32();
  spec.timeout_ms = in.i64();
  spec.checkpoint_every = in.u32();
  spec.scheduler = in.str();
  spec.verify = in.u8() != 0;
  return spec;
}

void encode_result(Writer& out, const JobResult& result) {
  out.u64(result.rounds);
  out.u64(result.committed);
  out.u64(result.pending);
  out.f64(result.wasted);
  out.f64(result.mean_r);
  out.u32(result.mu);
  out.str(result.error);
  out.u8(result.verified);
  out.str(result.cert);
}

JobResult decode_result(Reader& in) {
  JobResult result;
  result.rounds = in.u64();
  result.committed = in.u64();
  result.pending = in.u64();
  result.wasted = in.f64();
  result.mean_r = in.f64();
  result.mu = in.u32();
  result.error = in.str();
  const auto verified = in.u8();
  if (verified > 2) {
    throw SnapshotError(SnapshotError::Kind::kMalformed,
                        "WAL: unknown verification verdict");
  }
  result.verified = verified;
  result.cert = in.str();
  return result;
}

}  // namespace

std::vector<std::byte> encode_wal_record(const WalRecord& rec) {
  Writer out;
  out.u8(static_cast<std::uint8_t>(rec.kind));
  switch (rec.kind) {
    case WalRecordKind::kSubmitted:
      encode_spec(out, rec.spec);
      break;
    case WalRecordKind::kFinished:
      out.u64(rec.id);
      out.u8(static_cast<std::uint8_t>(rec.final_state));
      encode_result(out, rec.result);
      break;
  }
  return out.take();
}

WalRecord decode_wal_record(std::span<const std::byte> payload) {
  Reader in(payload);
  WalRecord rec;
  const auto kind = in.u8();
  switch (kind) {
    case static_cast<std::uint8_t>(WalRecordKind::kSubmitted):
      rec.kind = WalRecordKind::kSubmitted;
      rec.spec = decode_spec(in);
      break;
    case static_cast<std::uint8_t>(WalRecordKind::kFinished): {
      rec.kind = WalRecordKind::kFinished;
      rec.id = in.u64();
      const auto state = in.u8();
      if (state > static_cast<std::uint8_t>(JobState::kTimedOut)) {
        throw SnapshotError(SnapshotError::Kind::kMalformed,
                            "WAL: unknown terminal job state");
      }
      rec.final_state = static_cast<JobState>(state);
      rec.result = decode_result(in);
      break;
    }
    default:
      throw SnapshotError(SnapshotError::Kind::kMalformed,
                          "WAL: unknown record kind");
  }
  in.expect_end();
  return rec;
}

}  // namespace optipar::serve
