// Blocking client for the optipar_serve wire protocol (DESIGN.md §13).
// One Client owns one connected UNIX-socket stream; every typed method
// sends a single request frame and decodes the single reply frame.
//
// Error surface: transport and framing defects raise WireError; an
// application-level kErrorReply raises ServeError (carrying the typed
// ErrorCode) — EXCEPT on the submission paths, where kOverloaded is an
// expected outcome, not an exception: run()/estimate() return a variant so
// callers must consciously handle backpressure.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "serve/wire.hpp"

namespace optipar::serve {

/// An application-level error returned by the daemon (kErrorReply).
class ServeError : public std::runtime_error {
 public:
  ServeError(ErrorCode code, const std::string& message)
      : std::runtime_error("serve: " + message), code_(code) {}

  [[nodiscard]] ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

class Client {
 public:
  /// Connect to the daemon's UNIX socket. timeout_ms > 0 arms SO_RCVTIMEO/
  /// SO_SNDTIMEO so a wedged daemon surfaces as WireError{kIo} instead of
  /// a hang (tests always set it). Throws WireError{kIo} on failure.
  [[nodiscard]] static Client connect(const std::string& socket_path,
                                      int timeout_ms = 0);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  [[nodiscard]] OkReply health();
  [[nodiscard]] OkReply upload_graph(const std::string& name,
                                     const std::string& text);

  /// Submission outcome: accepted, typed backpressure, or refusal.
  using SubmitResult =
      std::variant<JobAcceptedReply, OverloadedReply, ErrorReply>;
  [[nodiscard]] SubmitResult run(const RunRequest& request);
  [[nodiscard]] SubmitResult estimate(const EstimateRequest& request);

  [[nodiscard]] JobStatusReply status(std::uint64_t job);
  [[nodiscard]] TextReply trace(std::uint64_t job);
  /// Fetch a finished run job's retained observability artifact (trace
  /// JSONL, Chrome trace JSON, or per-job metrics JSON). Raises ServeError
  /// {kBadRequest} when the artifact was never produced or was evicted.
  [[nodiscard]] TextReply artifact(std::uint64_t job, ArtifactKind kind);
  [[nodiscard]] OkReply cancel(std::uint64_t job);
  [[nodiscard]] ServerInfoReply server_status();
  [[nodiscard]] TextReply metrics(const std::string& format = "prometheus");
  [[nodiscard]] OkReply shutdown(bool drain);

  /// Poll status() until the job reaches a terminal state; returns the
  /// final status. Throws WireError{kIo} when budget_ms elapses first.
  [[nodiscard]] JobStatusReply wait_for_job(std::uint64_t job,
                                            int poll_ms = 20,
                                            int budget_ms = 60000);

  /// One raw request/reply round-trip (exposed for the protocol tests).
  [[nodiscard]] std::vector<std::byte> request(
      std::span<const std::byte> payload);

 private:
  explicit Client(int fd) noexcept : fd_(fd) {}

  /// request() + "throw ServeError on kErrorReply" + expected-type check.
  [[nodiscard]] std::vector<std::byte> request_expect(
      std::span<const std::byte> payload, MsgType expected);

  int fd_ = -1;
};

}  // namespace optipar::serve
