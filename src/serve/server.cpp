#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "control/factory.hpp"
#include "graph/csr_graph.hpp"
#include "graph/graph_io.hpp"
#include "model/conflict_ratio.hpp"
#include "rt/adaptive_executor.hpp"
#include "rt/checkpoint.hpp"
#include "rt/spec_executor.hpp"
#include "sim/trace.hpp"
#include "support/deadline.hpp"
#include "support/rng.hpp"
#include "support/snapshot/journal.hpp"
#include "support/snapshot/snapshot.hpp"
#include "support/telemetry/metrics_registry.hpp"
#include "support/telemetry/span_trace.hpp"
#include "support/telemetry/telemetry.hpp"
#include "support/timer.hpp"
#include "verify/executor_cert.hpp"

namespace optipar::serve {

namespace {

using namespace std::chrono_literals;

void make_dir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) return;
  throw std::runtime_error("serve: cannot create directory " + path + ": " +
                           std::strerror(errno));
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

/// Best-effort removal of a terminal job's checkpoint artifacts: once the
/// kFinished WAL record is durable the job can never be resumed, so its
/// snapshots are dead disk weight (the soak test's bounded-footprint
/// guarantee depends on this).
void remove_job_dir(const std::string& dir) {
  for (const char* f : {"/snap-a.bin", "/snap-b.bin", "/journal.bin",
                        "/snap-a.bin.tmp", "/snap-b.bin.tmp"}) {
    std::remove((dir + f).c_str());
  }
  ::rmdir(dir.c_str());
}

/// Assemble a finished run job's retained artifacts: the trace JSONL the
/// caller already rendered, the Chrome trace export (the job span is
/// closed first so the timeline brackets everything), and the per-job
/// metrics JSON — the same `tel.export_metrics + render_json` document
/// `optipar_cli run --metrics-out` writes.
JobArtifacts collect_artifacts(std::string jsonl,
                               telemetry::RuntimeTelemetry& tel,
                               telemetry::SpanCollector& spans,
                               std::size_t job_span) {
  JobArtifacts art;
  art.jsonl = std::move(jsonl);
  spans.end(job_span);
  std::ostringstream chrome;
  spans.export_chrome(chrome);
  art.chrome = chrome.str();
  MetricsRegistry reg;
  tel.export_metrics(reg);
  std::ostringstream metrics;
  reg.render_json(metrics);
  art.metrics_json = metrics.str();
  return art;
}

}  // namespace

// ---------------------------------------------------------------------------
// Scheduler-side per-job machinery. Declaration order is destruction order
// reversed: `run` references exec/controller/checkpoint and the executor
// holds non-owning pointers into `tel` and `graph`, so `run` must die first
// and `graph`/`tel` last.
// ---------------------------------------------------------------------------

struct Server::ActiveJob {
  std::shared_ptr<Job> job;
  CsrGraph graph;
  std::unique_ptr<telemetry::RuntimeTelemetry> tel;
  std::unique_ptr<telemetry::SpanCollector> spans;  ///< pid = job id
  std::unique_ptr<SpeculativeExecutor> exec;
  std::unique_ptr<Controller> controller;
  std::unique_ptr<CheckpointManager> checkpoint;
  std::unique_ptr<AdaptiveRun> run;
  std::size_t lanes = 0;      ///< last applied per-round lane cap
  std::size_t job_span = 0;   ///< the open "job" span's handle
  bool first_step_done = false;  ///< time-to-first-round already recorded
};

struct Server::Connection {
  std::atomic<int> fd{-1};
  std::thread thread;
  std::atomic<bool> done{false};
};

Server::Server(ServerConfig config) : config_(std::move(config)) {
  if (config_.threads == 0) config_.threads = 1;
  if (config_.max_active == 0) config_.max_active = 1;
  if (config_.rounds_per_slice == 0) config_.rounds_per_slice = 1;
}

Server::~Server() {
  if (started_.load()) {
    request_shutdown(/*drain=*/false);
    wait();
  }
}

std::string Server::graph_path(const std::string& name) const {
  return config_.state_dir + "/graphs/" + name + ".bin";
}

std::string Server::job_dir(std::uint64_t job_id) const {
  return config_.state_dir + "/jobs/job-" + std::to_string(job_id);
}

void Server::start() {
  make_dir(config_.state_dir);
  make_dir(config_.state_dir + "/graphs");
  make_dir(config_.state_dir + "/jobs");
  queue_ = std::make_unique<AdmissionQueue>(config_.queue_capacity);
  pool_ = std::make_unique<ThreadPool>(config_.threads);

  // WAL replay: rebuild the job table, then re-admit {submitted} \
  // {finished} in journal order. The journal's own open already ran
  // torn-tail recovery, so every record seen here is CRC-committed.
  wal_ = std::make_unique<snapshot::RoundJournal>(config_.state_dir +
                                                  "/jobs.wal");
  std::vector<std::uint64_t> order;
  for (const auto& bytes : wal_->records()) {
    WalRecord rec;
    try {
      rec = decode_wal_record(bytes);
    } catch (const std::exception& e) {
      // A structurally invalid (but CRC-valid) record means this WAL was
      // written by a different build. Skip it — the daemon must come up.
      std::cerr << "optipar_serve: skipping unreadable WAL record: "
                << e.what() << "\n";
      continue;
    }
    if (rec.kind == WalRecordKind::kSubmitted) {
      auto job = std::make_shared<Job>();
      job->spec = rec.spec;
      job->recovered = true;
      jobs_[rec.spec.id] = job;
      order.push_back(rec.spec.id);
      next_job_id_ = std::max(next_job_id_, rec.spec.id + 1);
      submitted_.fetch_add(1, std::memory_order_relaxed);
    } else {
      const auto it = jobs_.find(rec.id);
      if (it == jobs_.end()) continue;
      it->second->state.store(rec.final_state, std::memory_order_release);
      it->second->result = rec.result;
      next_job_id_ = std::max(next_job_id_, rec.id + 1);
      // Certification verdicts are durable in the kFinished record; keep
      // the attestation counters consistent across restarts.
      if (rec.result.verified == 1) {
        certified_.fetch_add(1, std::memory_order_relaxed);
      } else if (rec.result.verified == 2) {
        cert_failed_.fetch_add(1, std::memory_order_relaxed);
      }
      switch (rec.final_state) {
        case JobState::kDone:
          completed_.fetch_add(1, std::memory_order_relaxed);
          break;
        case JobState::kFailed:
          failed_.fetch_add(1, std::memory_order_relaxed);
          break;
        case JobState::kCancelled:
          cancelled_.fetch_add(1, std::memory_order_relaxed);
          break;
        case JobState::kTimedOut:
          timed_out_.fetch_add(1, std::memory_order_relaxed);
          break;
        default:
          break;
      }
    }
  }
  for (const std::uint64_t id : order) {
    const auto& job = jobs_.at(id);
    const JobState s = job->state.load(std::memory_order_acquire);
    if (s == JobState::kQueued) {
      // The original submit instant did not survive the crash (timestamps
      // are monotonic, not wall-clock): the recovered job's admission wait
      // is measured from this incarnation's replay.
      job->submit_ns = monotonic_ns();
      queue_->readmit(id);  // bypasses capacity: already-accepted work
      ++recovered_;
    }
  }

  // Socket.
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    throw WireError(WireError::Kind::kIo,
                    std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (config_.socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::invalid_argument("serve: socket path too long: " +
                                config_.socket_path);
  }
  std::memcpy(addr.sun_path, config_.socket_path.c_str(),
              config_.socket_path.size() + 1);
  ::unlink(config_.socket_path.c_str());  // stale socket from a crash
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    throw WireError(WireError::Kind::kIo,
                    "bind " + config_.socket_path + ": " +
                        std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) < 0) {
    throw WireError(WireError::Kind::kIo,
                    std::string("listen: ") + std::strerror(errno));
  }

  started_.store(true);
  scheduler_thread_ = std::thread(&Server::scheduler_loop, this);
  accept_thread_ = std::thread(&Server::accept_loop, this);
}

void Server::request_shutdown(bool drain) {
  if (drain) {
    draining_.store(true, std::memory_order_release);
  } else {
    stop_now_.store(true, std::memory_order_release);
  }
  if (queue_) queue_->close();
}

void Server::wait() {
  if (scheduler_thread_.joinable()) scheduler_thread_.join();
  // The scheduler is the daemon's lifetime: once it returns, stop
  // answering and tear down. stop_now_ doubles as the accept loop's stop
  // flag (it polls, so no wake-up trick is needed).
  stop_now_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(config_.socket_path.c_str());
  }
  std::list<std::unique_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    conns.swap(conns_);
  }
  for (auto& conn : conns) {
    const int fd = conn->fd.load(std::memory_order_acquire);
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);  // wakes a blocked recv
  }
  for (auto& conn : conns) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  started_.store(false);
}

// ---------------------------------------------------------------------------
// Accept + connection threads
// ---------------------------------------------------------------------------

void Server::accept_loop() {
  for (;;) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 200);
    if (stop_now_.load(std::memory_order_acquire)) return;
    if (rc < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (rc == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;
    }
    std::lock_guard<std::mutex> lock(conns_mutex_);
    // Reap finished connections so the list (and thread count) stays
    // bounded by the number of LIVE connections, not total ever accepted.
    for (auto it = conns_.begin(); it != conns_.end();) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        if ((*it)->thread.joinable()) (*it)->thread.join();
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
    if (conns_.size() >= config_.max_connections) {
      // Connection-level load shedding: typed backpressure, then close.
      try {
        send_frame(fd, OverloadedReply{queue_ ? queue_->depth() : 0,
                                       config_.queue_capacity}
                           .encode());
      } catch (...) {
      }
      ::close(fd);
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->fd.store(fd, std::memory_order_release);
    Connection* raw = conn.get();
    conns_.push_back(std::move(conn));
    raw->thread = std::thread(&Server::serve_connection, this, raw);
  }
}

void Server::serve_connection(Connection* conn) {
  const int fd = conn->fd.load(std::memory_order_acquire);
  try {
    for (;;) {
      const auto payload = recv_frame(fd, config_.max_frame_bytes);
      std::vector<std::byte> reply;
      try {
        reply = handle_request(payload);
      } catch (const WireError& e) {
        // Payload-level defect (bad tag, truncated fields): the framing is
        // still synchronized, so answer and keep the connection.
        reply = ErrorReply{ErrorCode::kBadRequest, e.what()}.encode();
      } catch (const snapshot::SnapshotError& e) {
        reply = ErrorReply{ErrorCode::kInternal, e.what()}.encode();
      } catch (const std::exception& e) {
        reply = ErrorReply{ErrorCode::kInternal, e.what()}.encode();
      }
      send_frame(fd, reply);
    }
  } catch (const WireError& e) {
    // Frame-level defect or disconnect. For defects the stream may be out
    // of sync, so reply best-effort with the typed reason and drop the
    // connection; kClosed/kIo are ordinary disconnects.
    if (e.kind() != WireError::Kind::kClosed &&
        e.kind() != WireError::Kind::kIo) {
      try {
        send_frame(fd, ErrorReply{ErrorCode::kBadRequest, e.what()}.encode());
      } catch (...) {
      }
    }
  } catch (...) {
  }
  ::close(fd);
  conn->fd.store(-1, std::memory_order_release);
  conn->done.store(true, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Request handlers (connection threads)
// ---------------------------------------------------------------------------

std::vector<std::byte> Server::handle_request(
    std::span<const std::byte> payload) {
  switch (peek_type(payload)) {
    case MsgType::kHealth:
      return OkReply{"ok"}.encode();
    case MsgType::kUploadGraph:
      return handle_upload(payload);
    case MsgType::kRun:
    case MsgType::kEstimate:
      return handle_submit(payload);
    case MsgType::kStatus:
      return handle_status(JobIdRequest::decode(payload).job);
    case MsgType::kTrace:
      return handle_trace(JobIdRequest::decode(payload).job);
    case MsgType::kCancel:
      return handle_cancel(JobIdRequest::decode(payload).job);
    case MsgType::kServerStatus:
      return handle_server_status();
    case MsgType::kMetrics:
      return handle_metrics(MetricsRequest::decode(payload).format);
    case MsgType::kArtifact: {
      const auto req = ArtifactRequest::decode(payload);
      return handle_artifact(req.job, req.kind);
    }
    case MsgType::kShutdown: {
      const auto req = ShutdownRequest::decode(payload);
      request_shutdown(req.drain);
      return OkReply{req.drain ? "draining" : "stopping"}.encode();
    }
    default:
      throw WireError(WireError::Kind::kBadType,
                      "message type is not a request");
  }
}

std::vector<std::byte> Server::handle_upload(
    std::span<const std::byte> payload) {
  const auto req = UploadGraphRequest::decode(payload);
  if (!valid_graph_name(req.name)) {
    return ErrorReply{ErrorCode::kBadRequest,
                      "invalid graph name (want 1-64 of [A-Za-z0-9_.-], no "
                      "leading dot)"}
        .encode();
  }
  if (req.text.size() > config_.max_graph_bytes) {
    return ErrorReply{ErrorCode::kBadRequest,
                      "graph exceeds " +
                          std::to_string(config_.max_graph_bytes) + " bytes"}
        .encode();
  }
  try {
    // Parse NOW: a graph that cannot be read must be refused at upload,
    // not discovered as a poisoned job later.
    std::istringstream is(req.text);
    const CsrGraph g = io::read_edge_list(is);
    snapshot::Writer out;
    out.str(req.text);
    snapshot::write_file_atomic(graph_path(req.name), out.take());
    return OkReply{"graph '" + req.name +
                   "' stored: n=" + std::to_string(g.num_nodes()) +
                   " m=" + std::to_string(g.num_edges())}
        .encode();
  } catch (const io::GraphIoError& e) {
    return ErrorReply{ErrorCode::kBadRequest, e.what()}.encode();
  }
}

std::vector<std::byte> Server::handle_submit(
    std::span<const std::byte> payload) {
  JobSpec spec;
  if (peek_type(payload) == MsgType::kRun) {
    const auto req = RunRequest::decode(payload);
    spec.kind = JobKind::kRun;
    spec.graph = req.graph;
    spec.controller = req.controller;
    spec.rho = req.rho;
    spec.seed = req.seed;
    spec.steps = req.steps;
    spec.m0 = req.m0;
    spec.m_max = req.m_max;
    spec.timeout_ms = req.timeout_ms;
    spec.checkpoint_every = req.checkpoint_every;
    spec.scheduler = req.scheduler;
    spec.verify = req.verify;
  } else {
    const auto req = EstimateRequest::decode(payload);
    spec.kind = JobKind::kEstimate;
    spec.graph = req.graph;
    spec.rho = req.rho;
    spec.seed = req.seed;
    spec.steps = req.trials;
  }
  if (!valid_graph_name(spec.graph)) {
    return ErrorReply{ErrorCode::kBadRequest, "invalid graph name"}.encode();
  }
  if (!file_exists(graph_path(spec.graph))) {
    return ErrorReply{ErrorCode::kUnknownGraph,
                      "no uploaded graph named '" + spec.graph + "'"}
        .encode();
  }
  if (!(spec.rho > 0.0) || spec.rho > 1.0) {
    return ErrorReply{ErrorCode::kBadRequest, "rho must be in (0, 1]"}
        .encode();
  }
  if (spec.steps == 0) {
    return ErrorReply{ErrorCode::kBadRequest, "steps/trials must be >= 1"}
        .encode();
  }
  if (spec.kind == JobKind::kRun &&
      optipar::make_controller(spec.controller, ControllerParams{}) ==
          nullptr) {
    return ErrorReply{ErrorCode::kBadRequest,
                      "unknown controller '" + spec.controller + "'"}
        .encode();
  }
  if (spec.kind == JobKind::kRun &&
      !sched::parse_backend(spec.scheduler)) {
    return ErrorReply{ErrorCode::kBadRequest,
                      "unknown scheduler '" + spec.scheduler +
                          "' (random|chromatic|relaxed)"}
        .encode();
  }
  // Resolve server defaults at submit time so the WAL records the job's
  // EFFECTIVE deadline and cadence — a restart must not re-resolve them
  // against a possibly different server configuration.
  if (spec.timeout_ms == 0) spec.timeout_ms = config_.default_timeout_ms;
  if (spec.checkpoint_every == 0) {
    spec.checkpoint_every = config_.checkpoint_every;
  }

  std::lock_guard<std::mutex> lock(jobs_mutex_);
  if (queue_->closed()) {
    return ErrorReply{ErrorCode::kShuttingDown, "server is shutting down"}
        .encode();
  }
  if (queue_->depth() >= config_.queue_capacity) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return OverloadedReply{queue_->depth(), config_.queue_capacity}.encode();
  }
  spec.id = next_job_id_++;
  // Write-ahead: the submission is durable BEFORE the client can observe
  // kJobAccepted, so an accepted job survives any later crash.
  WalRecord rec;
  rec.kind = WalRecordKind::kSubmitted;
  rec.spec = spec;
  const std::uint64_t submit_ns = monotonic_ns();
  wal_->append(encode_wal_record(rec));
  auto job = std::make_shared<Job>();
  job->spec = spec;
  job->submit_ns = submit_ns;
  job->wal_fsync_ns = monotonic_ns();
  jobs_[spec.id] = job;
  queue_->readmit(spec.id);  // capacity was checked above, same lock
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return JobAcceptedReply{spec.id}.encode();
}

std::vector<std::byte> Server::handle_status(std::uint64_t job_id) {
  std::lock_guard<std::mutex> lock(jobs_mutex_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return ErrorReply{ErrorCode::kUnknownJob,
                      "no job " + std::to_string(job_id)}
        .encode();
  }
  const Job& job = *it->second;
  JobStatusReply reply;
  reply.job = job_id;
  reply.state = job.state.load(std::memory_order_acquire);
  reply.kind = job.spec.kind;
  reply.rounds = job.result.rounds;
  reply.committed = job.result.committed;
  reply.pending = job.result.pending;
  reply.wasted = job.result.wasted;
  reply.mean_r = job.result.mean_r;
  reply.mu = job.result.mu;
  reply.resumed = job.resumed;
  reply.error = job.result.error;
  reply.scheduler = job.spec.scheduler;
  reply.verified = job.result.verified;
  reply.cert = job.result.cert;
  return reply.encode();
}

std::vector<std::byte> Server::handle_trace(std::uint64_t job_id) {
  std::lock_guard<std::mutex> lock(jobs_mutex_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return ErrorReply{ErrorCode::kUnknownJob,
                      "no job " + std::to_string(job_id)}
        .encode();
  }
  const auto tr = artifacts_.find(job_id);
  if (tr == artifacts_.end() || tr->second.jsonl.empty()) {
    return ErrorReply{ErrorCode::kBadRequest,
                      "trace unavailable (job still running, recovered "
                      "from a previous incarnation, or evicted)"}
        .encode();
  }
  return TextReply{tr->second.jsonl}.encode();
}

std::vector<std::byte> Server::handle_artifact(std::uint64_t job_id,
                                               ArtifactKind kind) {
  std::lock_guard<std::mutex> lock(jobs_mutex_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return ErrorReply{ErrorCode::kUnknownJob,
                      "no job " + std::to_string(job_id)}
        .encode();
  }
  const auto art = artifacts_.find(job_id);
  const std::string* text = nullptr;
  if (art != artifacts_.end()) {
    switch (kind) {
      case ArtifactKind::kTraceJsonl: text = &art->second.jsonl; break;
      case ArtifactKind::kTraceChrome: text = &art->second.chrome; break;
      case ArtifactKind::kMetricsJson:
        text = &art->second.metrics_json;
        break;
    }
  }
  if (text == nullptr || text->empty()) {
    return ErrorReply{ErrorCode::kBadRequest,
                      std::string(artifact_kind_name(kind)) +
                          " unavailable (job still running, not a run "
                          "job, recovered, or evicted)"}
        .encode();
  }
  return TextReply{*text}.encode();
}

std::vector<std::byte> Server::handle_cancel(std::uint64_t job_id) {
  std::lock_guard<std::mutex> lock(jobs_mutex_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return ErrorReply{ErrorCode::kUnknownJob,
                      "no job " + std::to_string(job_id)}
        .encode();
  }
  const JobState s = it->second->state.load(std::memory_order_acquire);
  if (s != JobState::kQueued && s != JobState::kRunning) {
    return OkReply{"job already terminal: " +
                   std::string(job_state_name(s))}
        .encode();
  }
  it->second->cancel.store(true, std::memory_order_release);
  return OkReply{"cancel requested"}.encode();
}

std::vector<std::byte> Server::handle_server_status() {
  ServerInfoReply reply;
  reply.queued = queue_->depth();
  reply.active = active_count_.load(std::memory_order_acquire);
  reply.capacity = config_.queue_capacity;
  reply.submitted = submitted_.load(std::memory_order_relaxed);
  reply.rejected = rejected_.load(std::memory_order_relaxed);
  reply.completed = completed_.load(std::memory_order_relaxed);
  reply.failed = failed_.load(std::memory_order_relaxed);
  reply.cancelled = cancelled_.load(std::memory_order_relaxed);
  reply.timed_out = timed_out_.load(std::memory_order_relaxed);
  reply.resumed = resumed_.load(std::memory_order_relaxed);
  reply.certified = certified_.load(std::memory_order_relaxed);
  reply.cert_failed = cert_failed_.load(std::memory_order_relaxed);
  reply.lanes = config_.threads;
  reply.draining = draining_.load(std::memory_order_acquire) ||
                   queue_->closed();
  return reply.encode();
}

std::vector<std::byte> Server::handle_metrics(const std::string& format) {
  if (format != "prometheus" && format != "json") {
    return ErrorReply{ErrorCode::kBadRequest,
                      "unknown format '" + format + "' (prometheus|json)"}
        .encode();
  }
  MetricsRegistry reg;
  using Type = MetricsRegistry::Type;
  reg.add("optipar_serve_queue_depth", Type::kGauge,
          "Jobs waiting for admission", {},
          static_cast<double>(queue_->depth()));
  reg.add("optipar_serve_queue_capacity", Type::kGauge,
          "Admission queue capacity", {},
          static_cast<double>(config_.queue_capacity));
  reg.add("optipar_serve_active_jobs", Type::kGauge,
          "Jobs currently multiplexed by the scheduler", {},
          static_cast<double>(active_count_.load(std::memory_order_acquire)));
  reg.add("optipar_serve_submitted_total", Type::kCounter,
          "Jobs accepted through admission", {},
          static_cast<double>(submitted_.load(std::memory_order_relaxed)));
  reg.add("optipar_serve_rejected_total", Type::kCounter,
          "Submissions refused with kOverloaded backpressure", {},
          static_cast<double>(rejected_.load(std::memory_order_relaxed)));
  reg.add("optipar_serve_completed_total", Type::kCounter,
          "Jobs finished successfully", {},
          static_cast<double>(completed_.load(std::memory_order_relaxed)));
  reg.add("optipar_serve_failed_total", Type::kCounter,
          "Jobs quarantined as failed", {},
          static_cast<double>(failed_.load(std::memory_order_relaxed)));
  reg.add("optipar_serve_cancelled_total", Type::kCounter,
          "Jobs cancelled by clients", {},
          static_cast<double>(cancelled_.load(std::memory_order_relaxed)));
  reg.add("optipar_serve_timed_out_total", Type::kCounter,
          "Jobs interrupted by their deadline", {},
          static_cast<double>(timed_out_.load(std::memory_order_relaxed)));
  reg.add("optipar_serve_resumed_total", Type::kCounter,
          "Jobs resumed from checkpoints after a restart", {},
          static_cast<double>(resumed_.load(std::memory_order_relaxed)));
  reg.add("optipar_serve_certified_total", Type::kCounter,
          "Verify jobs whose result certificate held", {},
          static_cast<double>(certified_.load(std::memory_order_relaxed)));
  reg.add("optipar_serve_cert_failed_total", Type::kCounter,
          "Verify jobs refuted by the result certifier", {},
          static_cast<double>(cert_failed_.load(std::memory_order_relaxed)));
  {
    // Serve latency histograms (DESIGN.md §15): log-bucketed, with
    // quantile-summary gauges — the optipar.metrics.v2 additions.
    std::lock_guard<std::mutex> lock(lat_mutex_);
    lat_admission_.export_metrics(reg, "optipar_serve_admission_wait",
                                  "Job admission wait (accept to activate)");
    lat_first_round_.export_metrics(
        reg, "optipar_serve_time_to_first_round",
        "Activation to the end of the job's first round");
    lat_round_.export_metrics(reg, "optipar_serve_round_latency",
                              "Per-round scheduler step latency");
    lat_e2e_.export_metrics(reg, "optipar_serve_job_duration",
                            "End-to-end job time (accept to terminal)");
  }
  std::ostringstream os;
  if (format == "json") {
    reg.render_json(os);
  } else {
    reg.render_prometheus(os);
  }
  return TextReply{os.str()}.encode();
}

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

void Server::finish_job(const std::shared_ptr<Job>& job, JobState state,
                        JobResult result, JobArtifacts artifacts) {
  if (job->submit_ns != 0) {
    std::lock_guard<std::mutex> lock(lat_mutex_);
    lat_e2e_.record_ns(monotonic_ns() - job->submit_ns);
  }
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    job->result = result;
    job->state.store(state, std::memory_order_release);
    WalRecord rec;
    rec.kind = WalRecordKind::kFinished;
    rec.id = job->spec.id;
    rec.final_state = state;
    rec.result = result;
    try {
      wal_->append(encode_wal_record(rec));
    } catch (const std::exception& e) {
      // Disk trouble must not take the daemon down; worst case the job
      // re-runs after a restart (it is still resumable, never lost).
      std::cerr << "optipar_serve: WAL append failed for job "
                << job->spec.id << ": " << e.what() << "\n";
    }
    if (!artifacts.jsonl.empty() || !artifacts.chrome.empty() ||
        !artifacts.metrics_json.empty()) {
      artifacts_[job->spec.id] = std::move(artifacts);
      artifact_order_.push_back(job->spec.id);
      while (artifact_order_.size() > config_.trace_cache) {
        artifacts_.erase(artifact_order_.front());
        artifact_order_.pop_front();
      }
    }
  }
  switch (state) {
    case JobState::kDone:
      completed_.fetch_add(1, std::memory_order_relaxed);
      break;
    case JobState::kFailed:
      failed_.fetch_add(1, std::memory_order_relaxed);
      break;
    case JobState::kCancelled:
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      break;
    case JobState::kTimedOut:
      timed_out_.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      break;
  }
  remove_job_dir(job_dir(job->spec.id));
}

void Server::activate(std::uint64_t job_id) {
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    const auto it = jobs_.find(job_id);
    if (it == jobs_.end()) return;
    job = it->second;
  }
  if (job->cancel.load(std::memory_order_acquire)) {
    finish_job(job, JobState::kCancelled, {}, {});
    return;
  }
  job->state.store(JobState::kRunning, std::memory_order_release);
  job->activate_ns = monotonic_ns();
  if (job->submit_ns != 0) {
    std::lock_guard<std::mutex> lock(lat_mutex_);
    lat_admission_.record_ns(job->activate_ns - job->submit_ns);
  }
  const JobSpec& spec = job->spec;
  try {
    // Load the graph through the validated reader: the daemon's own state
    // dir is treated as hostile input, like every other on-disk artifact.
    const auto bytes = snapshot::read_file_validated(graph_path(spec.graph));
    snapshot::Reader in(bytes);
    const std::string text = in.str();
    in.expect_end();

    if (spec.kind == JobKind::kEstimate) {
      // Estimates are short and deterministic: run synchronously, no
      // checkpoint. After a crash the replayed job re-runs from scratch
      // and lands on the same mu (same seed, same trials).
      std::istringstream is(text);
      const CsrGraph g = io::read_edge_list(is);
      Rng rng(spec.seed);
      Rng measure = rng.split();  // mirrors optipar_cli mu's stream split
      JobResult result;
      result.mu = find_mu(g, spec.rho, spec.steps, measure);
      finish_job(job, JobState::kDone, result, {});
      return;
    }

    auto aj = std::make_unique<ActiveJob>();
    aj->job = job;
    {
      std::istringstream is(text);
      aj->graph = io::read_edge_list(is);
    }
    ControllerParams params;
    params.rho = spec.rho;
    if (spec.m0 != 0) params.m0 = spec.m0;
    if (spec.m_max != 0) params.m_max = spec.m_max;
    aj->controller = optipar::make_controller(spec.controller, params);
    if (aj->controller == nullptr) {
      throw std::runtime_error("unknown controller '" + spec.controller +
                               "'");
    }
    // The job construction mirrors `optipar_cli run` exactly (operator =
    // acquire the closed neighborhood; executor seed = seed*11+3; all
    // nodes pushed; same per-backend footprint/priority hooks), so a
    // one-lane daemon run traces byte-identically to the CLI — the resume
    // smoke test's ground truth.
    const auto backend = sched::parse_backend(spec.scheduler);
    if (!backend) {
      throw std::runtime_error("unknown scheduler '" + spec.scheduler + "'");
    }
    const CsrGraph* g = &aj->graph;
    RoundOptions ropts;
    ropts.scheduler = *backend;
    aj->exec = std::make_unique<SpeculativeExecutor>(
        *pool_, g->num_nodes(),
        [g](TaskId t, IterationContext& ctx) {
          const auto v = static_cast<NodeId>(t);
          ctx.acquire(v);
          for (const NodeId u : g->neighbors(v)) ctx.acquire(u);
        },
        spec.seed * 11 + 3, ropts);
    if (*backend == sched::Backend::kChromatic) {
      aj->exec->set_footprint_function(
          [g](TaskId t, std::vector<std::uint32_t>& fp) {
            const auto v = static_cast<NodeId>(t);
            fp.push_back(v);
            for (const NodeId u : g->neighbors(v)) fp.push_back(u);
          });
    } else if (*backend == sched::Backend::kRelaxed) {
      aj->exec->set_priority_function([](TaskId t) { return t; });
    }
    aj->tel = std::make_unique<telemetry::RuntimeTelemetry>();
    aj->tel->set_target_rho(spec.rho);
    // Every run job is traced (DESIGN.md §15): the collector's pid is the
    // job id, so multiple jobs' exports stay distinguishable in Perfetto.
    // The admission wait and the WAL fsync happened before the collector
    // existed; record them retroactively from the Job's timestamps so the
    // exported timeline covers the job's whole daemon-side life.
    aj->spans = std::make_unique<telemetry::SpanCollector>(spec.id);
    if (job->submit_ns != 0) {
      telemetry::SpanRecord rec;
      rec.name = "admission-wait";
      rec.tid = 0;
      rec.start_ns = job->submit_ns;
      rec.end_ns = job->activate_ns;
      rec.a = spec.id;
      aj->spans->record(rec);
      if (job->wal_fsync_ns >= job->submit_ns) {
        rec.name = "wal-fsync";
        rec.end_ns = job->wal_fsync_ns;
        aj->spans->record(rec);
      }
    }
    aj->job_span = aj->spans->begin("job", 0, spec.id, spec.steps);
    aj->tel->set_spans(aj->spans.get());
    aj->exec->set_telemetry(aj->tel.get());
    std::vector<TaskId> tasks(g->num_nodes());
    std::iota(tasks.begin(), tasks.end(), TaskId{0});
    aj->exec->push_initial(tasks);

    const std::string dir = job_dir(spec.id);
    make_dir(dir);
    if (!job->recovered) {
      // Fresh submission: job ids are never reused, but scrub anyway so a
      // stale directory can never be silently resumed (same discipline as
      // the CLI's non---resume path).
      for (const char* f : {"/snap-a.bin", "/snap-b.bin", "/journal.bin",
                            "/snap-a.bin.tmp", "/snap-b.bin.tmp"}) {
        std::remove((dir + f).c_str());
      }
    }
    CheckpointConfig ccfg;
    ccfg.dir = dir;
    ccfg.every = spec.checkpoint_every;
    aj->checkpoint =
        std::make_unique<CheckpointManager>(ccfg, graph_fingerprint(*g));
    aj->checkpoint->set_telemetry(aj->tel.get());

    AdaptiveRunConfig rcfg;
    rcfg.max_rounds = spec.steps;
    rcfg.checkpoint = aj->checkpoint.get();
    rcfg.deadline = JobDeadline::after_ms(spec.timeout_ms);
    rcfg.cancel = &job->cancel;
    if (spec.verify) {
      // Post-run attestation: every task accounted for and no lock leaks,
      // checked once when the drain is observed. The verdict is read in
      // the scheduler's finished branch and made durable in the WAL.
      SpeculativeExecutor* ex = aj->exec.get();
      rcfg.certifier = [ex, total = static_cast<std::uint64_t>(
                                g->num_nodes())] {
        return verify::certify_drained_run(*ex, total);
      };
    }
    aj->run =
        std::make_unique<AdaptiveRun>(*aj->exec, *aj->controller, rcfg);
    if (aj->run->resumed()) {
      std::lock_guard<std::mutex> lock(jobs_mutex_);
      job->resumed = true;
      resumed_.fetch_add(1, std::memory_order_relaxed);
    }
    active_.push_back(std::move(aj));
    active_count_.store(active_.size(), std::memory_order_release);
  } catch (const std::exception& e) {
    // Poisoned job: quarantine it with its error durable in the WAL; the
    // scheduler — and every neighbor job — keeps running.
    JobResult result;
    result.error = e.what();
    finish_job(job, JobState::kFailed, result, {});
  }
}

void Server::scheduler_loop() {
  for (;;) {
    if (stop_now_.load(std::memory_order_acquire)) break;
    const bool draining = draining_.load(std::memory_order_acquire);

    // Fill free slots. Block briefly only when idle; with jobs active the
    // pop must not add latency to their rounds.
    while (active_.size() < config_.max_active) {
      const auto wait = active_.empty() ? 100ms : 0ms;
      const auto id = queue_->pop_for(wait);
      if (!id) break;
      activate(*id);
    }
    if (active_.empty()) {
      if (draining && queue_->depth() == 0) break;  // drained clean
      continue;
    }

    // Graceful degradation: divide the pool's lanes over the active jobs
    // (floor 1) so admission bursts shrink per-job parallelism instead of
    // oversubscribing the pool. Applied between rounds, as required.
    const std::size_t lanes = std::max<std::size_t>(
        1, config_.threads / active_.size());
    for (auto& aj : active_) {
      if (aj->lanes != lanes) {
        PipelineConfig pc;
        pc.max_lanes = lanes;
        aj->exec->set_pipeline(pc);
        aj->lanes = lanes;
      }
    }

    // Step every active job one slice, round-robin. Each step() boundary
    // is a deadline / cancellation / checkpoint point.
    for (auto it = active_.begin(); it != active_.end();) {
      ActiveJob& aj = **it;
      bool finished = false;
      try {
        for (std::uint32_t i = 0; i < config_.rounds_per_slice; ++i) {
          const std::uint64_t t0 = monotonic_ns();
          if (!aj.run->step()) {
            finished = true;
            break;
          }
          const std::uint64_t now = monotonic_ns();
          std::lock_guard<std::mutex> lock(lat_mutex_);
          lat_round_.record_ns(now - t0);
          if (!aj.first_step_done) {
            aj.first_step_done = true;
            lat_first_round_.record_ns(now - aj.job->activate_ns);
          }
        }
      } catch (const JobInterrupted& e) {
        const JobState state =
            e.reason() == JobInterrupted::Reason::kDeadline
                ? JobState::kTimedOut
                : JobState::kCancelled;
        JobResult result;
        result.rounds = e.partial_trace.steps.size();
        result.committed = e.partial_trace.total_committed();
        result.pending = aj.exec->pending();
        result.wasted = e.partial_trace.wasted_fraction();
        result.mean_r = e.partial_trace.mean_conflict_ratio();
        result.error = e.what();
        std::ostringstream os;
        write_trace_jsonl(os, e.partial_trace);
        finish_job(aj.job, state, result,
                   collect_artifacts(os.str(), *aj.tel, *aj.spans,
                                     aj.job_span));
        it = active_.erase(it);
        active_count_.store(active_.size(), std::memory_order_release);
        continue;
      } catch (const LivelockError& e) {
        JobResult result;
        result.rounds = e.partial_trace.steps.size();
        result.committed = e.partial_trace.total_committed();
        result.pending = e.pending();
        result.wasted = e.partial_trace.wasted_fraction();
        result.mean_r = e.partial_trace.mean_conflict_ratio();
        result.error = e.what();
        std::ostringstream os;
        write_trace_jsonl(os, e.partial_trace);
        finish_job(aj.job, JobState::kFailed, result,
                   collect_artifacts(os.str(), *aj.tel, *aj.spans,
                                     aj.job_span));
        it = active_.erase(it);
        active_count_.store(active_.size(), std::memory_order_release);
        continue;
      } catch (const std::exception& e) {
        // Poisoned operator / snapshot IO / anything else: quarantine the
        // job, keep the daemon and its neighbors alive.
        JobResult result;
        result.rounds = aj.run->trace().steps.size();
        result.committed = aj.run->trace().total_committed();
        result.error = e.what();
        // No partial trace rode the exception, but the spans and metrics
        // up to the poisoning round are still worth keeping.
        finish_job(aj.job, JobState::kFailed, result,
                   collect_artifacts({}, *aj.tel, *aj.spans, aj.job_span));
        it = active_.erase(it);
        active_count_.store(active_.size(), std::memory_order_release);
        continue;
      }
      if (finished) {
        // step() certified at the drain observation (AdaptiveRun's certify
        // hook); the direct call covers the max_rounds stop, where no step
        // ever sees finished() flip.
        aj.run->ensure_certified();
        const Trace trace = aj.run->take_trace();
        JobResult result;
        result.rounds = trace.steps.size();
        result.committed = trace.total_committed();
        result.pending = aj.exec->pending();
        result.wasted = trace.wasted_fraction();
        result.mean_r = trace.mean_conflict_ratio();
        JobState final_state = JobState::kDone;
        if (aj.job->spec.verify) {
          const auto& cert = aj.run->certificate();
          if (cert.has_value() && cert->ok()) {
            result.verified = 1;
            result.cert = cert->describe();
            certified_.fetch_add(1, std::memory_order_relaxed);
          } else {
            // Refuted (or never produced — itself a defect): the answer
            // must not be served as kDone.
            result.verified = 2;
            result.cert =
                cert.has_value() ? cert->describe() : "no certificate";
            result.error = "certification failed: " + result.cert;
            final_state = JobState::kFailed;
            cert_failed_.fetch_add(1, std::memory_order_relaxed);
          }
        }
        std::ostringstream os;
        write_trace_jsonl(os, trace);
        telemetry::write_events_jsonl(os, aj.tel->drain_events());
        finish_job(aj.job, final_state, result,
                   collect_artifacts(os.str(), *aj.tel, *aj.spans,
                                     aj.job_span));
        it = active_.erase(it);
        active_count_.store(active_.size(), std::memory_order_release);
      } else {
        // Progress visible to status polls without touching the run from
        // other threads.
        std::lock_guard<std::mutex> lock(jobs_mutex_);
        const Trace& tr = aj.run->trace();
        aj.job->result.rounds = tr.steps.size();
        aj.job->result.committed = tr.total_committed();
        aj.job->result.pending = aj.exec->pending();
        ++it;
      }
    }
  }

  // Immediate shutdown with jobs still active: force one snapshot at the
  // current round boundary and abandon. The WAL holds their kSubmitted
  // records with no kFinished, so the next incarnation re-admits them and
  // AdaptiveRun resumes each from this exact boundary.
  for (auto& aj : active_) {
    try {
      aj->run->checkpoint_now();
    } catch (const std::exception& e) {
      std::cerr << "optipar_serve: shutdown checkpoint failed for job "
                << aj->job->spec.id << ": " << e.what() << "\n";
    }
    aj->job->state.store(JobState::kQueued, std::memory_order_release);
  }
  active_.clear();
  active_count_.store(0, std::memory_order_release);
}

}  // namespace optipar::serve
