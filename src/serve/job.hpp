// Job model of the serve daemon (DESIGN.md §13). A Job is the unit of
// admission, scheduling, cancellation, and crash recovery. Durability rides
// on the write-ahead jobs journal (snapshot::RoundJournal reused at job
// granularity): a kSubmitted record is fsynced BEFORE the client sees
// kJobAccepted, and a kFinished record is fsynced when the job reaches a
// terminal state — so after any crash the set {submitted} \ {finished}, in
// journal order, is exactly the set of jobs the restarted daemon must
// re-admit, and each of those resumes from its own per-job checkpoint
// directory via the PR-5 recovery ladder.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "serve/wire.hpp"

namespace optipar::serve {

/// Everything needed to (re)construct a job's run, durable in the WAL.
struct JobSpec {
  std::uint64_t id = 0;
  JobKind kind = JobKind::kRun;
  std::string graph;
  std::string controller = "hybrid";
  double rho = 0.25;
  std::uint64_t seed = 1;
  std::uint32_t steps = 100000;  ///< run: max rounds; estimate: trials
  std::uint32_t m0 = 0;          ///< 0 = controller default
  std::uint32_t m_max = 0;       ///< 0 = controller default
  std::int64_t timeout_ms = 0;   ///< 0 = no deadline
  std::uint32_t checkpoint_every = 8;
  /// Scheduler backend name ("random", "chromatic", "relaxed"); validated
  /// at admission against sched::parse_backend.
  std::string scheduler = "random";
  /// Certify the drained run before the job goes terminal (run jobs only;
  /// the verdict is durable in the kFinished record).
  bool verify = false;
};

/// Terminal summary, durable in the WAL's kFinished record so status
/// queries survive a restart without re-running anything.
struct JobResult {
  std::uint64_t rounds = 0;
  std::uint64_t committed = 0;
  std::uint64_t pending = 0;
  double wasted = 0.0;
  double mean_r = 0.0;
  std::uint32_t mu = 0;  ///< estimate jobs
  std::string error;     ///< kFailed detail
  /// Certification verdict: 0 = not requested, 1 = ok, 2 = refuted.
  std::uint8_t verified = 0;
  std::string cert;  ///< certificate describe() text when verified != 0
};

/// One job's live record. `state` and `cancel` are the only fields touched
/// across threads (connection threads flip cancel / read state; the
/// scheduler owns everything else), so they are atomics; the rest is
/// written by the scheduler and read by connection threads under the
/// server's job mutex.
struct Job {
  JobSpec spec;
  std::atomic<JobState> state{JobState::kQueued};
  std::atomic<bool> cancel{false};
  bool recovered = false;  ///< re-admitted from the WAL after a restart
  bool resumed = false;    ///< restored from a checkpoint after a restart
  JobResult result;

  // Lifecycle timestamps (monotonic_ns, this incarnation only — not in the
  // WAL). Written before the job becomes reachable by the scheduler
  // (submit) or by the scheduler thread itself (activate), so they need no
  // synchronization beyond the queue's publish. Zero = never reached. They
  // feed the serve latency histograms and the retroactive admission-wait /
  // WAL-fsync spans of the job's trace (DESIGN.md §15).
  std::uint64_t submit_ns = 0;     ///< admission accepted (WAL append start)
  std::uint64_t wal_fsync_ns = 0;  ///< kSubmitted record durable
  std::uint64_t activate_ns = 0;   ///< scheduler picked the job up
};

// ---------------------------------------------------------------------------
// WAL records
// ---------------------------------------------------------------------------

enum class WalRecordKind : std::uint8_t { kSubmitted = 1, kFinished = 2 };

struct WalRecord {
  WalRecordKind kind = WalRecordKind::kSubmitted;
  JobSpec spec;          ///< kSubmitted
  std::uint64_t id = 0;  ///< kFinished
  JobState final_state = JobState::kDone;  ///< kFinished
  JobResult result;      ///< kFinished
};

[[nodiscard]] std::vector<std::byte> encode_wal_record(const WalRecord& rec);
/// Throws snapshot::SnapshotError{kMalformed} on a structurally invalid
/// record — the daemon treats its own WAL as untrusted input, like every
/// other on-disk artifact.
[[nodiscard]] WalRecord decode_wal_record(std::span<const std::byte> payload);

}  // namespace optipar::serve
