#include "serve/wire.hpp"

#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace optipar::serve {

namespace {

using snapshot::Reader;
using snapshot::SnapshotError;
using snapshot::Writer;

/// Little-endian u32 at `p` (the framing is explicit-endian like the
/// snapshot format, not host-endian).
std::uint32_t load_u32(const std::byte* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void store_u32(std::byte* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::byte>(v & 0xff);
  p[1] = static_cast<std::byte>((v >> 8) & 0xff);
  p[2] = static_cast<std::byte>((v >> 16) & 0xff);
  p[3] = static_cast<std::byte>((v >> 24) & 0xff);
}

/// Re-type snapshot Reader failures as wire failures: the decoders reuse
/// the bounds-checked Reader, whose kMalformed means the payload lied.
template <typename Fn>
auto decoding(Fn&& fn) -> decltype(fn()) {
  try {
    return fn();
  } catch (const SnapshotError& e) {
    throw WireError(WireError::Kind::kMalformed, e.what());
  }
}

MsgType expect_tag(Reader& in, MsgType want) {
  const auto tag = in.u8();
  if (tag != static_cast<std::uint8_t>(want)) {
    throw WireError(WireError::Kind::kBadType,
                    "payload tagged " + std::to_string(tag) + ", expected " +
                        std::string(msg_type_name(want)));
  }
  return want;
}

void write_full(int fd, const std::byte* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
#ifdef MSG_NOSIGNAL
    const ssize_t n = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
#else
    const ssize_t n = ::write(fd, data + off, size - off);
#endif
    if (n < 0) {
      if (errno == EINTR) continue;
      throw WireError(WireError::Kind::kIo,
                      std::string("send: ") + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
}

/// Read exactly `size` bytes. Returns false on clean EOF at offset 0 when
/// `eof_ok`; any other short read throws.
bool read_full(int fd, std::byte* data, std::size_t size, bool eof_ok) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::read(fd, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw WireError(WireError::Kind::kIo,
                      std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) {
      if (off == 0 && eof_ok) return false;
      throw WireError(WireError::Kind::kTruncated,
                      "stream ended inside a frame (" + std::to_string(off) +
                          "/" + std::to_string(size) + " bytes)");
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

const char* msg_type_name(MsgType type) noexcept {
  switch (type) {
    case MsgType::kHealth: return "health";
    case MsgType::kUploadGraph: return "upload-graph";
    case MsgType::kRun: return "run";
    case MsgType::kEstimate: return "estimate";
    case MsgType::kStatus: return "status";
    case MsgType::kTrace: return "trace";
    case MsgType::kServerStatus: return "server-status";
    case MsgType::kCancel: return "cancel";
    case MsgType::kShutdown: return "shutdown";
    case MsgType::kMetrics: return "metrics";
    case MsgType::kArtifact: return "artifact";
    case MsgType::kOk: return "ok";
    case MsgType::kErrorReply: return "error";
    case MsgType::kOverloaded: return "overloaded";
    case MsgType::kJobAccepted: return "job-accepted";
    case MsgType::kJobStatus: return "job-status";
    case MsgType::kServerInfo: return "server-info";
    case MsgType::kText: return "text";
  }
  return "unknown";
}

const char* error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kBadRequest: return "bad-request";
    case ErrorCode::kUnknownGraph: return "unknown-graph";
    case ErrorCode::kUnknownJob: return "unknown-job";
    case ErrorCode::kShuttingDown: return "shutting-down";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

const char* job_state_name(JobState state) noexcept {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
    case JobState::kTimedOut: return "timed-out";
  }
  return "unknown";
}

const char* artifact_kind_name(ArtifactKind kind) noexcept {
  switch (kind) {
    case ArtifactKind::kTraceJsonl: return "trace-jsonl";
    case ArtifactKind::kTraceChrome: return "trace-chrome";
    case ArtifactKind::kMetricsJson: return "metrics-json";
  }
  return "unknown";
}

bool valid_graph_name(const std::string& name) noexcept {
  if (name.empty() || name.size() > 64 || name.front() == '.') return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

std::vector<std::byte> frame_bytes(std::span<const std::byte> payload) {
  std::vector<std::byte> out(kFrameHeaderBytes + payload.size());
  store_u32(out.data(), kWireMagic);
  store_u32(out.data() + 4, static_cast<std::uint32_t>(payload.size()));
  store_u32(out.data() + 8, snapshot::crc32(payload));
  if (!payload.empty()) {
    std::memcpy(out.data() + kFrameHeaderBytes, payload.data(),
                payload.size());
  }
  return out;
}

std::vector<std::byte> unframe_bytes(std::span<const std::byte> bytes,
                                     std::size_t max_payload) {
  if (bytes.size() < kFrameHeaderBytes) {
    throw WireError(WireError::Kind::kTruncated,
                    "frame shorter than its header");
  }
  if (load_u32(bytes.data()) != kWireMagic) {
    throw WireError(WireError::Kind::kBadMagic, "bad frame magic");
  }
  const std::uint32_t len = load_u32(bytes.data() + 4);
  // Bound BEFORE any allocation or arithmetic that could wrap.
  if (len > max_payload) {
    throw WireError(WireError::Kind::kTooLarge,
                    "length prefix " + std::to_string(len) +
                        " exceeds frame bound " + std::to_string(max_payload));
  }
  if (bytes.size() - kFrameHeaderBytes < len) {
    throw WireError(WireError::Kind::kTruncated,
                    "payload shorter than the length prefix");
  }
  if (bytes.size() - kFrameHeaderBytes > len) {
    throw WireError(WireError::Kind::kMalformed,
                    "trailing bytes after the frame");
  }
  const auto payload = bytes.subspan(kFrameHeaderBytes, len);
  if (snapshot::crc32(payload) != load_u32(bytes.data() + 8)) {
    throw WireError(WireError::Kind::kBadChecksum, "frame CRC32 mismatch");
  }
  return {payload.begin(), payload.end()};
}

MsgType peek_type(std::span<const std::byte> payload) {
  if (payload.empty()) {
    throw WireError(WireError::Kind::kMalformed, "empty payload");
  }
  const auto tag = static_cast<std::uint8_t>(payload[0]);
  const bool request = tag >= static_cast<std::uint8_t>(MsgType::kHealth) &&
                       tag <= static_cast<std::uint8_t>(MsgType::kArtifact);
  const bool response = tag >= static_cast<std::uint8_t>(MsgType::kOk) &&
                        tag <= static_cast<std::uint8_t>(MsgType::kText);
  if (!request && !response) {
    throw WireError(WireError::Kind::kBadType,
                    "unknown message type " + std::to_string(tag));
  }
  return static_cast<MsgType>(tag);
}

void send_frame(int fd, std::span<const std::byte> payload) {
  const std::vector<std::byte> frame = frame_bytes(payload);
  write_full(fd, frame.data(), frame.size());
}

std::vector<std::byte> recv_frame(int fd, std::size_t max_payload) {
  std::byte header[kFrameHeaderBytes];
  if (!read_full(fd, header, sizeof(header), /*eof_ok=*/true)) {
    throw WireError(WireError::Kind::kClosed, "peer closed the connection");
  }
  if (load_u32(header) != kWireMagic) {
    throw WireError(WireError::Kind::kBadMagic, "bad frame magic");
  }
  const std::uint32_t len = load_u32(header + 4);
  if (len > max_payload) {
    throw WireError(WireError::Kind::kTooLarge,
                    "length prefix " + std::to_string(len) +
                        " exceeds frame bound " + std::to_string(max_payload));
  }
  std::vector<std::byte> payload(len);
  if (len > 0) read_full(fd, payload.data(), len, /*eof_ok=*/false);
  if (snapshot::crc32(payload) != load_u32(header + 8)) {
    throw WireError(WireError::Kind::kBadChecksum, "frame CRC32 mismatch");
  }
  return payload;
}

// ---------------------------------------------------------------------------
// Message codecs
// ---------------------------------------------------------------------------

std::vector<std::byte> encode_empty(MsgType type) {
  Writer out;
  out.u8(static_cast<std::uint8_t>(type));
  return out.take();
}

std::vector<std::byte> UploadGraphRequest::encode() const {
  Writer out;
  out.u8(static_cast<std::uint8_t>(MsgType::kUploadGraph));
  out.str(name);
  out.str(text);
  return out.take();
}

UploadGraphRequest UploadGraphRequest::decode(
    std::span<const std::byte> payload) {
  return decoding([&] {
    Reader in(payload);
    expect_tag(in, MsgType::kUploadGraph);
    UploadGraphRequest req;
    req.name = in.str();
    req.text = in.str();
    in.expect_end();
    return req;
  });
}

std::vector<std::byte> RunRequest::encode() const {
  Writer out;
  out.u8(static_cast<std::uint8_t>(MsgType::kRun));
  out.str(graph);
  out.str(controller);
  out.f64(rho);
  out.u64(seed);
  out.u32(steps);
  out.u32(m0);
  out.u32(m_max);
  out.i64(timeout_ms);
  out.u32(checkpoint_every);
  out.str(scheduler);
  out.u8(verify ? 1 : 0);
  return out.take();
}

RunRequest RunRequest::decode(std::span<const std::byte> payload) {
  return decoding([&] {
    Reader in(payload);
    expect_tag(in, MsgType::kRun);
    RunRequest req;
    req.graph = in.str();
    req.controller = in.str();
    req.rho = in.f64();
    req.seed = in.u64();
    req.steps = in.u32();
    req.m0 = in.u32();
    req.m_max = in.u32();
    req.timeout_ms = in.i64();
    req.checkpoint_every = in.u32();
    req.scheduler = in.str();
    req.verify = in.u8() != 0;
    in.expect_end();
    return req;
  });
}

std::vector<std::byte> EstimateRequest::encode() const {
  Writer out;
  out.u8(static_cast<std::uint8_t>(MsgType::kEstimate));
  out.str(graph);
  out.f64(rho);
  out.u32(trials);
  out.u64(seed);
  return out.take();
}

EstimateRequest EstimateRequest::decode(std::span<const std::byte> payload) {
  return decoding([&] {
    Reader in(payload);
    expect_tag(in, MsgType::kEstimate);
    EstimateRequest req;
    req.graph = in.str();
    req.rho = in.f64();
    req.trials = in.u32();
    req.seed = in.u64();
    in.expect_end();
    return req;
  });
}

std::vector<std::byte> JobIdRequest::encode() const {
  Writer out;
  out.u8(static_cast<std::uint8_t>(type));
  out.u64(job);
  return out.take();
}

JobIdRequest JobIdRequest::decode(std::span<const std::byte> payload) {
  return decoding([&] {
    Reader in(payload);
    const auto tag = in.u8();
    if (tag != static_cast<std::uint8_t>(MsgType::kStatus) &&
        tag != static_cast<std::uint8_t>(MsgType::kTrace) &&
        tag != static_cast<std::uint8_t>(MsgType::kCancel)) {
      throw WireError(WireError::Kind::kBadType,
                      "not a job-id request: tag " + std::to_string(tag));
    }
    JobIdRequest req;
    req.type = static_cast<MsgType>(tag);
    req.job = in.u64();
    in.expect_end();
    return req;
  });
}

std::vector<std::byte> ShutdownRequest::encode() const {
  Writer out;
  out.u8(static_cast<std::uint8_t>(MsgType::kShutdown));
  out.u8(drain ? 1 : 0);
  return out.take();
}

ShutdownRequest ShutdownRequest::decode(std::span<const std::byte> payload) {
  return decoding([&] {
    Reader in(payload);
    expect_tag(in, MsgType::kShutdown);
    ShutdownRequest req;
    req.drain = in.u8() != 0;
    in.expect_end();
    return req;
  });
}

std::vector<std::byte> MetricsRequest::encode() const {
  Writer out;
  out.u8(static_cast<std::uint8_t>(MsgType::kMetrics));
  out.str(format);
  return out.take();
}

MetricsRequest MetricsRequest::decode(std::span<const std::byte> payload) {
  return decoding([&] {
    Reader in(payload);
    expect_tag(in, MsgType::kMetrics);
    MetricsRequest req;
    req.format = in.str();
    in.expect_end();
    return req;
  });
}

std::vector<std::byte> ArtifactRequest::encode() const {
  Writer out;
  out.u8(static_cast<std::uint8_t>(MsgType::kArtifact));
  out.u64(job);
  out.u8(static_cast<std::uint8_t>(kind));
  return out.take();
}

ArtifactRequest ArtifactRequest::decode(std::span<const std::byte> payload) {
  return decoding([&] {
    Reader in(payload);
    expect_tag(in, MsgType::kArtifact);
    ArtifactRequest req;
    req.job = in.u64();
    const auto kind = in.u8();
    if (kind < static_cast<std::uint8_t>(ArtifactKind::kTraceJsonl) ||
        kind > static_cast<std::uint8_t>(ArtifactKind::kMetricsJson)) {
      throw WireError(WireError::Kind::kMalformed,
                      "unknown artifact kind " + std::to_string(kind));
    }
    req.kind = static_cast<ArtifactKind>(kind);
    in.expect_end();
    return req;
  });
}

std::vector<std::byte> OkReply::encode() const {
  Writer out;
  out.u8(static_cast<std::uint8_t>(MsgType::kOk));
  out.str(message);
  return out.take();
}

OkReply OkReply::decode(std::span<const std::byte> payload) {
  return decoding([&] {
    Reader in(payload);
    expect_tag(in, MsgType::kOk);
    OkReply rep;
    rep.message = in.str();
    in.expect_end();
    return rep;
  });
}

std::vector<std::byte> ErrorReply::encode() const {
  Writer out;
  out.u8(static_cast<std::uint8_t>(MsgType::kErrorReply));
  out.u8(static_cast<std::uint8_t>(code));
  out.str(message);
  return out.take();
}

ErrorReply ErrorReply::decode(std::span<const std::byte> payload) {
  return decoding([&] {
    Reader in(payload);
    expect_tag(in, MsgType::kErrorReply);
    ErrorReply rep;
    const auto code = in.u8();
    if (code < static_cast<std::uint8_t>(ErrorCode::kBadRequest) ||
        code > static_cast<std::uint8_t>(ErrorCode::kInternal)) {
      throw WireError(WireError::Kind::kMalformed,
                      "unknown error code " + std::to_string(code));
    }
    rep.code = static_cast<ErrorCode>(code);
    rep.message = in.str();
    in.expect_end();
    return rep;
  });
}

std::vector<std::byte> OverloadedReply::encode() const {
  Writer out;
  out.u8(static_cast<std::uint8_t>(MsgType::kOverloaded));
  out.u64(queue_depth);
  out.u64(capacity);
  return out.take();
}

OverloadedReply OverloadedReply::decode(std::span<const std::byte> payload) {
  return decoding([&] {
    Reader in(payload);
    expect_tag(in, MsgType::kOverloaded);
    OverloadedReply rep;
    rep.queue_depth = in.u64();
    rep.capacity = in.u64();
    in.expect_end();
    return rep;
  });
}

std::vector<std::byte> JobAcceptedReply::encode() const {
  Writer out;
  out.u8(static_cast<std::uint8_t>(MsgType::kJobAccepted));
  out.u64(job);
  return out.take();
}

JobAcceptedReply JobAcceptedReply::decode(
    std::span<const std::byte> payload) {
  return decoding([&] {
    Reader in(payload);
    expect_tag(in, MsgType::kJobAccepted);
    JobAcceptedReply rep;
    rep.job = in.u64();
    in.expect_end();
    return rep;
  });
}

std::vector<std::byte> JobStatusReply::encode() const {
  Writer out;
  out.u8(static_cast<std::uint8_t>(MsgType::kJobStatus));
  out.u64(job);
  out.u8(static_cast<std::uint8_t>(state));
  out.u8(static_cast<std::uint8_t>(kind));
  out.u64(rounds);
  out.u64(committed);
  out.u64(pending);
  out.f64(wasted);
  out.f64(mean_r);
  out.u32(mu);
  out.u8(resumed ? 1 : 0);
  out.str(error);
  out.str(scheduler);
  out.u8(verified);
  out.str(cert);
  return out.take();
}

JobStatusReply JobStatusReply::decode(std::span<const std::byte> payload) {
  return decoding([&] {
    Reader in(payload);
    expect_tag(in, MsgType::kJobStatus);
    JobStatusReply rep;
    rep.job = in.u64();
    const auto state = in.u8();
    if (state > static_cast<std::uint8_t>(JobState::kTimedOut)) {
      throw WireError(WireError::Kind::kMalformed,
                      "unknown job state " + std::to_string(state));
    }
    rep.state = static_cast<JobState>(state);
    const auto kind = in.u8();
    if (kind > static_cast<std::uint8_t>(JobKind::kEstimate)) {
      throw WireError(WireError::Kind::kMalformed,
                      "unknown job kind " + std::to_string(kind));
    }
    rep.kind = static_cast<JobKind>(kind);
    rep.rounds = in.u64();
    rep.committed = in.u64();
    rep.pending = in.u64();
    rep.wasted = in.f64();
    rep.mean_r = in.f64();
    rep.mu = in.u32();
    rep.resumed = in.u8() != 0;
    rep.error = in.str();
    rep.scheduler = in.str();
    const auto verified = in.u8();
    if (verified > 2) {
      throw WireError(WireError::Kind::kMalformed,
                      "unknown verification verdict " +
                          std::to_string(verified));
    }
    rep.verified = verified;
    rep.cert = in.str();
    in.expect_end();
    return rep;
  });
}

std::vector<std::byte> ServerInfoReply::encode() const {
  Writer out;
  out.u8(static_cast<std::uint8_t>(MsgType::kServerInfo));
  out.u64(queued);
  out.u64(active);
  out.u64(capacity);
  out.u64(submitted);
  out.u64(rejected);
  out.u64(completed);
  out.u64(failed);
  out.u64(cancelled);
  out.u64(timed_out);
  out.u64(resumed);
  out.u64(certified);
  out.u64(cert_failed);
  out.u64(lanes);
  out.u8(draining ? 1 : 0);
  return out.take();
}

ServerInfoReply ServerInfoReply::decode(std::span<const std::byte> payload) {
  return decoding([&] {
    Reader in(payload);
    expect_tag(in, MsgType::kServerInfo);
    ServerInfoReply rep;
    rep.queued = in.u64();
    rep.active = in.u64();
    rep.capacity = in.u64();
    rep.submitted = in.u64();
    rep.rejected = in.u64();
    rep.completed = in.u64();
    rep.failed = in.u64();
    rep.cancelled = in.u64();
    rep.timed_out = in.u64();
    rep.resumed = in.u64();
    rep.certified = in.u64();
    rep.cert_failed = in.u64();
    rep.lanes = in.u64();
    rep.draining = in.u8() != 0;
    in.expect_end();
    return rep;
  });
}

std::vector<std::byte> TextReply::encode() const {
  Writer out;
  out.u8(static_cast<std::uint8_t>(MsgType::kText));
  out.str(text);
  return out.take();
}

TextReply TextReply::decode(std::span<const std::byte> payload) {
  return decoding([&] {
    Reader in(payload);
    expect_tag(in, MsgType::kText);
    TextReply rep;
    rep.text = in.str();
    in.expect_end();
    return rep;
  });
}

}  // namespace optipar::serve
