// optipar_serve: a crash-safe scheduler daemon for speculative runs
// (DESIGN.md §13). One Server owns
//
//   * a UNIX stream socket speaking the serve/wire.hpp protocol,
//   * a bounded AdmissionQueue (typed kOverloaded backpressure),
//   * ONE fork-join ThreadPool that every job's SpeculativeExecutor shares,
//   * a single scheduler thread that multiplexes active jobs by stepping
//     their AdaptiveRuns round-robin (each step() boundary is a deadline /
//     cancellation / checkpoint point), and
//   * a write-ahead jobs journal + per-job checkpoint directories, so a
//     SIGKILL at any instant resumes every accepted job from its newest
//     valid checkpoint on restart — byte-identically at one lane.
//
// Degradation ladder under pressure: admission sheds load first (typed
// kOverloaded, never a hang), then active jobs shrink their per-round lane
// allocation (threads / active_jobs, floor 1) so throughput degrades
// smoothly instead of thrashing the pool; health checks are answered by
// independent connection threads throughout. A job that fails — poisoned
// operator, corrupt graph file, livelock — is quarantined as kFailed with
// its error recorded durably; neighbors and the daemon itself are
// unaffected. Drain shutdown finishes queued jobs in WAL (== FIFO) order;
// immediate shutdown force-checkpoints active jobs and abandons them to the
// next incarnation.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/admission.hpp"
#include "serve/job.hpp"
#include "serve/wire.hpp"
#include "support/telemetry/latency_histogram.hpp"
#include "support/thread_pool.hpp"

namespace optipar {
class Trace;
namespace snapshot {
class RoundJournal;
}
}  // namespace optipar

namespace optipar::serve {

struct ServerConfig {
  std::string socket_path;
  std::string state_dir;
  std::size_t threads = 4;        ///< fork-join pool lanes shared by jobs
  std::size_t queue_capacity = 16;
  std::size_t max_active = 2;     ///< jobs multiplexed at once
  std::size_t max_connections = 64;
  std::int64_t default_timeout_ms = 0;  ///< applied when a request says 0
  std::uint32_t checkpoint_every = 8;   ///< default snapshot cadence
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  std::size_t max_graph_bytes = 8u << 20;  ///< upload payload bound
  std::uint32_t rounds_per_slice = 8;  ///< scheduler round-robin quantum
  std::size_t trace_cache = 64;        ///< finished-job artifacts retained
};

/// Observability artifacts retained per finished run job, served through
/// kTrace (jsonl, for compatibility) and kArtifact (all three).
struct JobArtifacts {
  std::string jsonl;         ///< round/event trace JSONL
  std::string chrome;        ///< Chrome trace-event JSON (Perfetto)
  std::string metrics_json;  ///< per-job metrics export (optipar.metrics.v2)
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Open the state dir, replay the jobs WAL (re-admitting every job that
  /// was accepted but not finished, in WAL order), bind the socket, and
  /// launch the accept + scheduler threads. Throws on any setup failure.
  void start();

  /// Block until shutdown completes, then tear down sockets and threads.
  void wait();

  /// Initiate shutdown (idempotent; callable from connection threads).
  /// drain = finish every queued job first; otherwise active jobs are
  /// force-checkpointed and abandoned to the next incarnation.
  void request_shutdown(bool drain);

  [[nodiscard]] const ServerConfig& config() const noexcept {
    return config_;
  }
  /// Jobs re-admitted from the WAL by start() (observable for tests/logs).
  [[nodiscard]] std::uint64_t recovered_jobs() const noexcept {
    return recovered_;
  }

 private:
  struct ActiveJob;   // scheduler-owned per-job machinery (server.cpp)
  struct Connection;  // one accepted socket + its thread

  void accept_loop();
  void scheduler_loop();
  void serve_connection(Connection* conn);
  /// Dispatch one decoded request; returns the reply payload.
  std::vector<std::byte> handle_request(std::span<const std::byte> payload);

  std::vector<std::byte> handle_upload(std::span<const std::byte> payload);
  std::vector<std::byte> handle_submit(std::span<const std::byte> payload);
  std::vector<std::byte> handle_status(std::uint64_t job_id);
  std::vector<std::byte> handle_trace(std::uint64_t job_id);
  std::vector<std::byte> handle_artifact(std::uint64_t job_id,
                                         ArtifactKind kind);
  std::vector<std::byte> handle_cancel(std::uint64_t job_id);
  std::vector<std::byte> handle_server_status();
  std::vector<std::byte> handle_metrics(const std::string& format);

  /// Turn a popped queue id into an ActiveJob (run jobs) or execute it
  /// synchronously (estimate jobs). Any failure quarantines the job as
  /// kFailed — activation errors never unwind the scheduler.
  void activate(std::uint64_t job_id);
  void finish_job(const std::shared_ptr<Job>& job, JobState state,
                  JobResult result, JobArtifacts artifacts);
  [[nodiscard]] std::string graph_path(const std::string& name) const;
  [[nodiscard]] std::string job_dir(std::uint64_t job_id) const;

  ServerConfig config_;
  std::unique_ptr<AdmissionQueue> queue_;
  std::unique_ptr<ThreadPool> pool_;

  // Job table + WAL, one lock: submissions must make (capacity check →
  // WAL append → enqueue) atomic or the WAL and queue orders could
  // disagree; every other critical section is short.
  mutable std::mutex jobs_mutex_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Job>> jobs_;
  std::unique_ptr<snapshot::RoundJournal> wal_;
  std::uint64_t next_job_id_ = 1;
  std::unordered_map<std::uint64_t, JobArtifacts> artifacts_;
  std::deque<std::uint64_t> artifact_order_;  ///< FIFO eviction

  // Lifecycle counters (ServerInfoReply / metrics).
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> timed_out_{0};
  std::atomic<std::uint64_t> resumed_{0};
  std::atomic<std::uint64_t> certified_{0};    ///< verify jobs: cert held
  std::atomic<std::uint64_t> cert_failed_{0};  ///< verify jobs: cert refuted
  std::atomic<std::uint64_t> active_count_{0};
  std::uint64_t recovered_ = 0;

  // Scheduler state (scheduler thread only).
  std::list<std::unique_ptr<ActiveJob>> active_;

  // Serve latency histograms (DESIGN.md §15): recorded by the scheduler
  // thread (and the submit path for e2e of never-activated jobs), scraped
  // by connection threads via handle_metrics — hence their own short lock.
  mutable std::mutex lat_mutex_;
  telemetry::LatencyHistogram lat_admission_;   ///< submit → activate
  telemetry::LatencyHistogram lat_first_round_; ///< activate → first step
  telemetry::LatencyHistogram lat_round_;       ///< one step() each
  telemetry::LatencyHistogram lat_e2e_;         ///< submit → terminal state

  // Shutdown machinery.
  std::atomic<bool> draining_{false};
  std::atomic<bool> stop_now_{false};
  std::atomic<bool> started_{false};

  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::thread scheduler_thread_;
  std::mutex conns_mutex_;
  std::list<std::unique_ptr<Connection>> conns_;
};

}  // namespace optipar::serve
