// optipar_serve wire protocol (DESIGN.md §13): length-prefixed binary
// frames over a stream socket, reusing the CRC32 framing and hostile-input
// discipline of src/support/snapshot/. Every frame is
//
//   [magic u32 "OPRW"][payload_len u32][crc32 u32][payload bytes]
//
// and every payload is a snapshot::Writer-encoded message whose first byte
// is the MsgType. The receive path treats the peer as HOSTILE: the length
// prefix is bounded BEFORE any allocation, the CRC is verified before any
// decode, and every decoder is the bounds-checked snapshot::Reader — a
// malformed frame produces a typed WireError, never a crash, a hang, or a
// runaway allocation. tests/test_serve_wire_fuzz.cpp drives the same
// mutation/truncation corpus pattern as the graph reader's fuzz suite.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/snapshot/snapshot.hpp"

namespace optipar::serve {

inline constexpr std::uint32_t kWireMagic = 0x4F505257u;  // "OPRW"
inline constexpr std::size_t kFrameHeaderBytes = 12;      // magic,len,crc
/// Default per-frame payload bound. Graph uploads dominate frame size; a
/// peer claiming more than this is refused before any allocation.
inline constexpr std::size_t kDefaultMaxFrameBytes = 16u << 20;

/// Typed failure taxonomy of the receive/decode path.
class WireError : public std::runtime_error {
 public:
  enum class Kind {
    kIo,           ///< socket read/write/connect failure (or timeout)
    kClosed,       ///< peer closed cleanly between frames
    kBadMagic,     ///< frame does not start with kWireMagic
    kTooLarge,     ///< length prefix exceeds the frame bound
    kTruncated,    ///< stream ended inside a frame
    kBadChecksum,  ///< CRC32 mismatch
    kMalformed,    ///< payload fails structural decode (Reader bounds)
    kBadType,      ///< unknown or out-of-context MsgType
  };

  WireError(Kind kind, const std::string& what)
      : std::runtime_error("wire: " + what), kind_(kind) {}

  [[nodiscard]] Kind kind() const noexcept { return kind_; }

 private:
  Kind kind_;
};

enum class MsgType : std::uint8_t {
  // --- requests ---
  kHealth = 1,
  kUploadGraph = 2,
  kRun = 3,
  kEstimate = 4,
  kStatus = 5,
  kTrace = 6,
  kServerStatus = 7,
  kCancel = 8,
  kShutdown = 9,
  kMetrics = 10,
  kArtifact = 11,  ///< fetch a finished job's observability artifact
  // --- responses ---
  kOk = 64,
  kErrorReply = 65,
  kOverloaded = 66,
  kJobAccepted = 67,
  kJobStatus = 68,
  kServerInfo = 69,
  kText = 70,  ///< metrics exposition / trace JSONL
};

/// Application-level error codes carried by kErrorReply.
enum class ErrorCode : std::uint8_t {
  kBadRequest = 1,
  kUnknownGraph = 2,
  kUnknownJob = 3,
  kShuttingDown = 4,
  kInternal = 5,
};

[[nodiscard]] const char* msg_type_name(MsgType type) noexcept;
[[nodiscard]] const char* error_code_name(ErrorCode code) noexcept;

// ---------------------------------------------------------------------------
// Byte-level framing (socket-free, so the fuzz tests can drive it directly)
// ---------------------------------------------------------------------------

/// Frame `payload`: header (magic, length, CRC32 over the payload) + bytes.
[[nodiscard]] std::vector<std::byte> frame_bytes(
    std::span<const std::byte> payload);

/// Parse exactly one frame from `bytes` and return its payload. Throws
/// WireError on any defect; trailing bytes after the frame are kMalformed.
[[nodiscard]] std::vector<std::byte> unframe_bytes(
    std::span<const std::byte> bytes,
    std::size_t max_payload = kDefaultMaxFrameBytes);

/// First byte of a decoded payload, validated to be a known MsgType.
[[nodiscard]] MsgType peek_type(std::span<const std::byte> payload);

// ---------------------------------------------------------------------------
// Framed socket I/O
// ---------------------------------------------------------------------------

/// Write one frame to `fd` (handles partial writes / EINTR; MSG_NOSIGNAL
/// semantics — a dead peer raises WireError{kIo}, never SIGPIPE).
void send_frame(int fd, std::span<const std::byte> payload);

/// Read one frame from `fd`. A clean EOF before any header byte raises
/// kClosed; EOF inside a frame raises kTruncated; a hostile length prefix
/// raises kTooLarge before any allocation.
[[nodiscard]] std::vector<std::byte> recv_frame(
    int fd, std::size_t max_payload = kDefaultMaxFrameBytes);

// ---------------------------------------------------------------------------
// Messages. Each struct encodes to / decodes from a payload whose first
// byte is its MsgType. decode() validates the tag and consumes the payload
// exactly (Reader::expect_end), so trailing garbage is kMalformed.
// ---------------------------------------------------------------------------

/// Job kinds a Run-family submission can carry.
enum class JobKind : std::uint8_t { kRun = 0, kEstimate = 1 };

struct UploadGraphRequest {
  std::string name;  ///< registry key: [A-Za-z0-9_.-], <= 64 chars
  std::string text;  ///< edge-list text (graph_io format)

  [[nodiscard]] std::vector<std::byte> encode() const;
  [[nodiscard]] static UploadGraphRequest decode(
      std::span<const std::byte> payload);
};

struct RunRequest {
  std::string graph;               ///< uploaded graph name
  std::string controller = "hybrid";
  double rho = 0.25;
  std::uint64_t seed = 1;
  std::uint32_t steps = 100000;    ///< max rounds
  std::uint32_t m0 = 0;            ///< 0 = controller default
  std::uint32_t m_max = 0;         ///< 0 = controller default
  std::int64_t timeout_ms = 0;     ///< 0 = server default (may be none)
  std::uint32_t checkpoint_every = 0;  ///< 0 = server default
  std::string scheduler = "random";    ///< draw backend; validated at submit
  /// Certify the drained run (completeness + lock hygiene, src/verify/)
  /// before the job goes terminal; a refuted certificate fails the job.
  bool verify = false;

  [[nodiscard]] std::vector<std::byte> encode() const;
  [[nodiscard]] static RunRequest decode(std::span<const std::byte> payload);
};

struct EstimateRequest {
  std::string graph;
  double rho = 0.25;
  std::uint32_t trials = 400;
  std::uint64_t seed = 1;

  [[nodiscard]] std::vector<std::byte> encode() const;
  [[nodiscard]] static EstimateRequest decode(
      std::span<const std::byte> payload);
};

/// kStatus / kTrace / kCancel all carry one job id.
struct JobIdRequest {
  MsgType type = MsgType::kStatus;
  std::uint64_t job = 0;

  [[nodiscard]] std::vector<std::byte> encode() const;
  [[nodiscard]] static JobIdRequest decode(std::span<const std::byte> payload);
};

struct ShutdownRequest {
  bool drain = false;  ///< finish queued jobs (WAL order) before exit

  [[nodiscard]] std::vector<std::byte> encode() const;
  [[nodiscard]] static ShutdownRequest decode(
      std::span<const std::byte> payload);
};

struct MetricsRequest {
  std::string format = "prometheus";  ///< "prometheus" | "json"

  [[nodiscard]] std::vector<std::byte> encode() const;
  [[nodiscard]] static MetricsRequest decode(
      std::span<const std::byte> payload);
};

/// Observability artifacts a finished run job retains (DESIGN.md §15):
/// the round/event trace JSONL (same text kTrace serves), the Chrome
/// trace-event JSON for Perfetto, and the per-job metrics JSON export.
enum class ArtifactKind : std::uint8_t {
  kTraceJsonl = 1,
  kTraceChrome = 2,
  kMetricsJson = 3,
};

[[nodiscard]] const char* artifact_kind_name(ArtifactKind kind) noexcept;

struct ArtifactRequest {
  std::uint64_t job = 0;
  ArtifactKind kind = ArtifactKind::kTraceJsonl;

  [[nodiscard]] std::vector<std::byte> encode() const;
  [[nodiscard]] static ArtifactRequest decode(
      std::span<const std::byte> payload);
};

/// Zero-field requests (kHealth, kServerStatus) encode as just the tag.
[[nodiscard]] std::vector<std::byte> encode_empty(MsgType type);

// --- responses -------------------------------------------------------------

struct OkReply {
  std::string message;

  [[nodiscard]] std::vector<std::byte> encode() const;
  [[nodiscard]] static OkReply decode(std::span<const std::byte> payload);
};

struct ErrorReply {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;

  [[nodiscard]] std::vector<std::byte> encode() const;
  [[nodiscard]] static ErrorReply decode(std::span<const std::byte> payload);
};

/// Typed backpressure: the admission queue is full. Not an ErrorReply —
/// clients must be able to distinguish "retry later" from "bad request".
struct OverloadedReply {
  std::uint64_t queue_depth = 0;
  std::uint64_t capacity = 0;

  [[nodiscard]] std::vector<std::byte> encode() const;
  [[nodiscard]] static OverloadedReply decode(
      std::span<const std::byte> payload);
};

struct JobAcceptedReply {
  std::uint64_t job = 0;

  [[nodiscard]] std::vector<std::byte> encode() const;
  [[nodiscard]] static JobAcceptedReply decode(
      std::span<const std::byte> payload);
};

/// Job lifecycle states, shared with the WAL encoding (serve/job.hpp).
enum class JobState : std::uint8_t {
  kQueued = 0,
  kRunning = 1,
  kDone = 2,
  kFailed = 3,
  kCancelled = 4,
  kTimedOut = 5,
};

[[nodiscard]] const char* job_state_name(JobState state) noexcept;

struct JobStatusReply {
  std::uint64_t job = 0;
  JobState state = JobState::kQueued;
  JobKind kind = JobKind::kRun;
  std::uint64_t rounds = 0;
  std::uint64_t committed = 0;
  std::uint64_t pending = 0;
  double wasted = 0.0;
  double mean_r = 0.0;
  std::uint32_t mu = 0;        ///< estimate jobs: the operating point
  bool resumed = false;        ///< restored from a checkpoint after restart
  std::string error;           ///< failure detail (kFailed)
  std::string scheduler = "random";  ///< the job's draw backend label
  /// Certification verdict: 0 = not requested, 1 = certified ok,
  /// 2 = refuted (the job is kFailed and `error` carries the detail).
  std::uint8_t verified = 0;
  std::string cert;  ///< certificate describe() text when verified != 0

  [[nodiscard]] std::vector<std::byte> encode() const;
  [[nodiscard]] static JobStatusReply decode(
      std::span<const std::byte> payload);
};

struct ServerInfoReply {
  std::uint64_t queued = 0;
  std::uint64_t active = 0;
  std::uint64_t capacity = 0;
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;   ///< kOverloaded responses issued
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t resumed = 0;    ///< jobs restored from checkpoints
  std::uint64_t certified = 0;  ///< --verify jobs whose certificate held
  std::uint64_t cert_failed = 0;  ///< --verify jobs refuted by the checker
  std::uint64_t lanes = 0;      ///< pool size
  bool draining = false;

  [[nodiscard]] std::vector<std::byte> encode() const;
  [[nodiscard]] static ServerInfoReply decode(
      std::span<const std::byte> payload);
};

struct TextReply {
  std::string text;

  [[nodiscard]] std::vector<std::byte> encode() const;
  [[nodiscard]] static TextReply decode(std::span<const std::byte> payload);
};

/// Validate a graph-registry name: 1..64 chars of [A-Za-z0-9_.-], no
/// leading dot. The registry maps names to files under the state dir, so
/// this is the path-traversal gate.
[[nodiscard]] bool valid_graph_name(const std::string& name) noexcept;

}  // namespace optipar::serve
