#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>

namespace optipar::serve {

Client Client::connect(const std::string& socket_path, int timeout_ms) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw WireError(WireError::Kind::kIo,
                    std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    throw WireError(WireError::Kind::kIo,
                    "socket path too long: " + socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int err = errno;
    ::close(fd);
    throw WireError(WireError::Kind::kIo, "connect " + socket_path + ": " +
                                              std::strerror(err));
  }
  if (timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = static_cast<suseconds_t>(timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  return Client(fd);
}

Client::Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

std::vector<std::byte> Client::request(std::span<const std::byte> payload) {
  send_frame(fd_, payload);
  return recv_frame(fd_);
}

std::vector<std::byte> Client::request_expect(
    std::span<const std::byte> payload, MsgType expected) {
  auto reply = request(payload);
  const MsgType type = peek_type(reply);
  if (type == MsgType::kErrorReply) {
    const auto err = ErrorReply::decode(reply);
    throw ServeError(err.code, err.message);
  }
  if (type != expected) {
    throw WireError(WireError::Kind::kBadType,
                    std::string("expected ") + msg_type_name(expected) +
                        ", got " + msg_type_name(type));
  }
  return reply;
}

OkReply Client::health() {
  return OkReply::decode(
      request_expect(encode_empty(MsgType::kHealth), MsgType::kOk));
}

OkReply Client::upload_graph(const std::string& name,
                             const std::string& text) {
  UploadGraphRequest req;
  req.name = name;
  req.text = text;
  return OkReply::decode(request_expect(req.encode(), MsgType::kOk));
}

namespace {

Client::SubmitResult decode_submit(std::span<const std::byte> reply) {
  switch (peek_type(reply)) {
    case MsgType::kJobAccepted:
      return JobAcceptedReply::decode(reply);
    case MsgType::kOverloaded:
      return OverloadedReply::decode(reply);
    case MsgType::kErrorReply:
      return ErrorReply::decode(reply);
    default:
      throw WireError(WireError::Kind::kBadType,
                      "unexpected reply to a submission");
  }
}

}  // namespace

Client::SubmitResult Client::run(const RunRequest& request_msg) {
  return decode_submit(request(request_msg.encode()));
}

Client::SubmitResult Client::estimate(const EstimateRequest& request_msg) {
  return decode_submit(request(request_msg.encode()));
}

JobStatusReply Client::status(std::uint64_t job) {
  JobIdRequest req;
  req.type = MsgType::kStatus;
  req.job = job;
  return JobStatusReply::decode(
      request_expect(req.encode(), MsgType::kJobStatus));
}

TextReply Client::trace(std::uint64_t job) {
  JobIdRequest req;
  req.type = MsgType::kTrace;
  req.job = job;
  return TextReply::decode(request_expect(req.encode(), MsgType::kText));
}

TextReply Client::artifact(std::uint64_t job, ArtifactKind kind) {
  ArtifactRequest req;
  req.job = job;
  req.kind = kind;
  return TextReply::decode(request_expect(req.encode(), MsgType::kText));
}

OkReply Client::cancel(std::uint64_t job) {
  JobIdRequest req;
  req.type = MsgType::kCancel;
  req.job = job;
  return OkReply::decode(request_expect(req.encode(), MsgType::kOk));
}

ServerInfoReply Client::server_status() {
  return ServerInfoReply::decode(request_expect(
      encode_empty(MsgType::kServerStatus), MsgType::kServerInfo));
}

TextReply Client::metrics(const std::string& format) {
  MetricsRequest req;
  req.format = format;
  return TextReply::decode(request_expect(req.encode(), MsgType::kText));
}

OkReply Client::shutdown(bool drain) {
  ShutdownRequest req;
  req.drain = drain;
  return OkReply::decode(request_expect(req.encode(), MsgType::kOk));
}

JobStatusReply Client::wait_for_job(std::uint64_t job, int poll_ms,
                                    int budget_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(budget_ms);
  for (;;) {
    const auto reply = status(job);
    switch (reply.state) {
      case JobState::kDone:
      case JobState::kFailed:
      case JobState::kCancelled:
      case JobState::kTimedOut:
        return reply;
      default:
        break;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      throw WireError(WireError::Kind::kIo,
                      "job " + std::to_string(job) +
                          " did not reach a terminal state in " +
                          std::to_string(budget_ms) + "ms");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
  }
}

}  // namespace optipar::serve
