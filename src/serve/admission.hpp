// Bounded admission queue (DESIGN.md §13): the backpressure boundary
// between connection threads and the scheduler. try_admit is non-blocking
// and rejects — with an explicit verdict the caller turns into a typed
// kOverloaded response — instead of queueing unboundedly; the scheduler
// blocks on pop with a timeout so it can interleave shutdown checks. The
// queue is FIFO, which (because submissions are WAL-appended before
// admission) makes drain order equal WAL order by construction.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

namespace optipar::serve {

class AdmissionQueue {
 public:
  explicit AdmissionQueue(std::size_t capacity) : capacity_(capacity) {}

  enum class Verdict : std::uint8_t {
    kAdmitted,
    kOverloaded,  ///< queue at capacity — shed load, reply kOverloaded
    kClosed,      ///< shutting down — reply kShuttingDown
  };

  /// Non-blocking admit of job `id`.
  [[nodiscard]] Verdict try_admit(std::uint64_t id) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return Verdict::kClosed;
    if (queue_.size() >= capacity_) {
      ++rejected_;
      return Verdict::kOverloaded;
    }
    queue_.push_back(id);
    ++admitted_;
    cv_.notify_one();
    return Verdict::kAdmitted;
  }

  /// Recovery re-admission (restart): jobs that were ALREADY admitted
  /// before the crash bypass the capacity check — refusing them would
  /// drop durable work. Never called after the daemon starts serving.
  void readmit(std::uint64_t id) {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(id);
    ++admitted_;
    cv_.notify_one();
  }

  /// Blocking pop with timeout; nullopt on timeout or when closed-and-
  /// empty. The scheduler loops on this, checking its stop conditions
  /// between waits.
  [[nodiscard]] std::optional<std::uint64_t> pop_for(
      std::chrono::milliseconds wait) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait_for(lock, wait, [&] { return !queue_.empty() || closed_; });
    if (queue_.empty()) return std::nullopt;
    const std::uint64_t id = queue_.front();
    queue_.pop_front();
    return id;
  }

  /// Stop admitting; queued ids remain poppable (the drain path).
  void close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    cv_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }
  [[nodiscard]] std::size_t depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t admitted_total() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return admitted_;
  }
  [[nodiscard]] std::uint64_t rejected_total() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return rejected_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::uint64_t> queue_;
  bool closed_ = false;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace optipar::serve
