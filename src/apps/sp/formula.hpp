// CNF formula substrate for the survey-propagation application (the paper
// cites Braunstein–Mézard–Zecchina's SP as one of the algorithms Galois
// parallelizes). Provides random k-SAT generation, assignment evaluation,
// simplification under partial assignments, and a DPLL reference solver
// used to verify the speculative pipeline end to end.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "support/rng.hpp"

namespace optipar::sp {

/// A literal: variable index and sign (true = positive occurrence).
struct Literal {
  std::uint32_t var = 0;
  bool positive = true;

  friend bool operator==(const Literal&, const Literal&) = default;
};

struct Clause {
  std::vector<Literal> literals;
};

class Formula {
 public:
  Formula(std::uint32_t num_vars, std::vector<Clause> clauses);

  [[nodiscard]] std::uint32_t num_vars() const noexcept { return num_vars_; }
  [[nodiscard]] std::uint32_t num_clauses() const noexcept {
    return static_cast<std::uint32_t>(clauses_.size());
  }
  [[nodiscard]] const Clause& clause(std::uint32_t c) const {
    return clauses_[c];
  }
  [[nodiscard]] const std::vector<Clause>& clauses() const noexcept {
    return clauses_;
  }
  /// Clause indices containing variable v (either sign).
  [[nodiscard]] const std::vector<std::uint32_t>& clauses_of(
      std::uint32_t v) const {
    return var_to_clauses_[v];
  }

  /// True iff the total assignment satisfies every clause.
  [[nodiscard]] bool is_satisfied_by(
      const std::vector<std::uint8_t>& assignment) const;

  /// Formula obtained by fixing v := value: satisfied clauses drop out,
  /// falsified literals are removed. Returns nullopt if an empty clause
  /// appears (contradiction).
  [[nodiscard]] std::optional<Formula> fix_variable(std::uint32_t v,
                                                    bool value) const;

 private:
  std::uint32_t num_vars_;
  std::vector<Clause> clauses_;
  std::vector<std::vector<std::uint32_t>> var_to_clauses_;
};

/// Uniform random k-SAT: `num_clauses` clauses of k distinct variables,
/// signs fair coins. Clause-to-variable ratio ~4.27 is the 3-SAT threshold;
/// tests use ratios well below it so instances are satisfiable w.h.p.
[[nodiscard]] Formula random_ksat(std::uint32_t num_vars,
                                  std::uint32_t num_clauses, std::uint32_t k,
                                  Rng& rng);

/// DPLL with unit propagation. Returns a satisfying total assignment or
/// nullopt (exhaustive, so UNSAT is definitive). Practical for the
/// test-sized instances (tens of vars).
[[nodiscard]] std::optional<std::vector<std::uint8_t>> dpll_solve(
    const Formula& formula);

enum class SolveStatus { kSat, kUnsat, kUnknown };

struct DpllResult {
  SolveStatus status = SolveStatus::kUnknown;
  std::vector<std::uint8_t> assignment;  ///< valid iff status == kSat
};

/// DPLL with a branching-decision budget: kUnknown when the budget runs
/// out before the search completes. Keeps hard fallbacks bounded (SP's
/// decimation may leave a hard residual near the satisfiability threshold).
[[nodiscard]] DpllResult dpll_solve_limited(const Formula& formula,
                                            std::uint64_t max_decisions);

}  // namespace optipar::sp
