#include "apps/sp/survey.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

namespace optipar::sp {

SurveyState::SurveyState(const Formula& formula, Rng& rng)
    : formula_(&formula), eta_(formula.num_clauses()) {
  for (std::uint32_t c = 0; c < formula.num_clauses(); ++c) {
    eta_[c].resize(formula.clause(c).literals.size());
    for (auto& e : eta_[c]) e = rng.uniform();
  }
}

namespace {

/// The three Π products for variable j feeding into clause a (BMZ eq. SP):
///   prod_same  = Π_{b ∋ j, b ≠ a, sign(j, b) == sign(j, a)} (1 − η_{b→j})
///   prod_opp   = likewise over opposite-sign occurrences.
struct VarProducts {
  double prod_same = 1.0;
  double prod_opp = 1.0;
};

VarProducts var_products(const Formula& formula,
                         const std::vector<std::vector<double>>& eta,
                         std::uint32_t j, std::uint32_t a, bool sign_in_a) {
  VarProducts p;
  for (const std::uint32_t b : formula.clauses_of(j)) {
    if (b == a) continue;
    const auto& lits = formula.clause(b).literals;
    for (std::uint32_t slot = 0; slot < lits.size(); ++slot) {
      if (lits[slot].var != j) continue;
      const double factor = 1.0 - eta[b][slot];
      if (lits[slot].positive == sign_in_a) {
        p.prod_same *= factor;
      } else {
        p.prod_opp *= factor;
      }
    }
  }
  return p;
}

}  // namespace

std::vector<double> SurveyState::compute_clause(std::uint32_t a) const {
  const auto& lits = formula_->clause(a).literals;
  std::vector<double> out(lits.size(), 1.0);
  // Per-literal j term: Π^u / (Π^u + Π^s + Π^0), where "u" is the
  // direction that does NOT satisfy clause a.
  std::vector<double> term(lits.size(), 0.0);
  for (std::uint32_t s = 0; s < lits.size(); ++s) {
    const auto [prod_same, prod_opp] = var_products(
        *formula_, eta_, lits[s].var, a, lits[s].positive);
    // Warnings from same-sign clauses push j toward satisfying a;
    // warnings from opposite-sign clauses push it away.
    const double pi_u = (1.0 - prod_opp) * prod_same;
    const double pi_s = (1.0 - prod_same) * prod_opp;
    const double pi_0 = prod_same * prod_opp;
    const double denom = pi_u + pi_s + pi_0;
    term[s] = denom <= 0.0 ? 0.0 : pi_u / denom;
  }
  for (std::uint32_t s = 0; s < lits.size(); ++s) {
    double eta_value = 1.0;
    for (std::uint32_t other = 0; other < lits.size(); ++other) {
      if (other != s) eta_value *= term[other];
    }
    out[s] = eta_value;
  }
  return out;
}

double SurveyState::clause_residual(std::uint32_t a) const {
  const auto fresh = compute_clause(a);
  double residual = 0.0;
  for (std::uint32_t s = 0; s < fresh.size(); ++s) {
    residual = std::max(residual, std::abs(fresh[s] - eta_[a][s]));
  }
  return residual;
}

SurveyState::Bias SurveyState::bias(std::uint32_t var) const {
  double prod_pos = 1.0;  // Π over clauses where var appears positive
  double prod_neg = 1.0;
  for (const std::uint32_t b : formula_->clauses_of(var)) {
    const auto& lits = formula_->clause(b).literals;
    for (std::uint32_t slot = 0; slot < lits.size(); ++slot) {
      if (lits[slot].var != var) continue;
      const double factor = 1.0 - eta_[b][slot];
      if (lits[slot].positive) {
        prod_pos *= factor;
      } else {
        prod_neg *= factor;
      }
    }
  }
  const double pi_plus = (1.0 - prod_pos) * prod_neg;
  const double pi_minus = (1.0 - prod_neg) * prod_pos;
  const double pi_zero = prod_pos * prod_neg;
  const double denom = pi_plus + pi_minus + pi_zero;
  Bias bias;
  if (denom > 0.0) {
    bias.plus = pi_plus / denom;
    bias.minus = pi_minus / denom;
    bias.zero = pi_zero / denom;
  }
  return bias;
}

double SurveyState::max_eta() const {
  double m = 0.0;
  for (const auto& clause : eta_) {
    for (const double e : clause) m = std::max(m, e);
  }
  return m;
}

std::optional<std::uint32_t> run_survey_propagation(SurveyState& state,
                                                    const SpConfig& config) {
  const auto& formula = state.formula();
  for (std::uint32_t sweep = 0; sweep < config.max_sweeps; ++sweep) {
    double residual = 0.0;
    for (std::uint32_t a = 0; a < formula.num_clauses(); ++a) {
      const auto fresh = state.compute_clause(a);
      for (std::uint32_t s = 0; s < fresh.size(); ++s) {
        residual = std::max(residual, std::abs(fresh[s] - state.eta(a, s)));
        state.set_eta(a, s, fresh[s]);
      }
    }
    if (residual < config.tolerance) return sweep + 1;
  }
  return std::nullopt;
}

Trace run_survey_propagation_adaptive(SurveyState& state,
                                      const SpConfig& config,
                                      Controller& controller,
                                      ThreadPool& pool, std::uint64_t seed) {
  const auto& formula = state.formula();
  const double tolerance = config.tolerance;

  // Pending-membership flags keep the work-set duplicate-free: a clause is
  // scheduled at most once at a time. Each flag is only touched while the
  // corresponding clause's lock is held.
  auto scheduled = std::make_shared<std::vector<std::uint8_t>>(
      formula.num_clauses(), 1);

  auto op = [&state, &formula, tolerance, scheduled](TaskId task,
                                                     IterationContext& ctx) {
    const auto a = static_cast<std::uint32_t>(task);
    ctx.acquire(a);
    (*scheduled)[a] = 0;  // we are running; re-arm on abort (auto-requeue)
    ctx.on_abort([scheduled, a] { (*scheduled)[a] = 1; });

    // Acquire every clause sharing a variable with a (their surveys feed
    // the update, and they must be re-examined if ours changes).
    std::set<std::uint32_t> neighborhood;
    for (const Literal& lit : formula.clause(a).literals) {
      for (const std::uint32_t b : formula.clauses_of(lit.var)) {
        if (b != a) neighborhood.insert(b);
      }
    }
    for (const std::uint32_t b : neighborhood) ctx.acquire(b);

    const auto fresh = state.compute_clause(a);
    double delta = 0.0;
    for (std::uint32_t s = 0; s < fresh.size(); ++s) {
      const double old = state.eta(a, s);
      delta = std::max(delta, std::abs(fresh[s] - old));
      if (fresh[s] != old) {
        state.set_eta(a, s, fresh[s]);
        ctx.on_abort([&state, a, s, old] { state.set_eta(a, s, old); });
      }
    }
    if (delta >= tolerance) {
      // Our surveys moved materially: the neighbors' residuals are stale.
      // (a itself is now self-consistent — it is NOT re-pushed; neighbors
      // will re-push it if they move.)
      for (const std::uint32_t b : neighborhood) {
        if ((*scheduled)[b] == 0) {
          (*scheduled)[b] = 1;
          ctx.on_abort([scheduled, b] { (*scheduled)[b] = 0; });
          ctx.push(b);
        }
      }
    }
  };

  RoundOptions options;
  options.scheduler = config.scheduler;
  SpeculativeExecutor executor(pool, formula.num_clauses(), op, seed,
                               options);
  if (config.scheduler == sched::Backend::kChromatic) {
    // Declared footprint = the acquisition set above: clause a plus every
    // clause sharing a variable with it.
    executor.set_footprint_function(
        [&formula](TaskId task, std::vector<std::uint32_t>& fp) {
          const auto a = static_cast<std::uint32_t>(task);
          fp.push_back(a);
          for (const Literal& lit : formula.clause(a).literals) {
            for (const std::uint32_t b : formula.clauses_of(lit.var)) {
              fp.push_back(b);
            }
          }
        });
  } else if (config.scheduler == sched::Backend::kRelaxed) {
    executor.set_priority_function([](TaskId t) { return t; });
  }
  std::vector<TaskId> initial(formula.num_clauses());
  for (std::uint32_t a = 0; a < formula.num_clauses(); ++a) initial[a] = a;
  executor.push_initial(initial);

  AdaptiveRunConfig run_config;
  run_config.max_rounds = 100000;
  return run_adaptive(executor, controller, run_config);
}

SidResult solve_with_sid(const Formula& formula, const SpConfig& config,
                         Rng& rng, Controller* controller, ThreadPool* pool) {
  SidResult result;
  result.assignment.assign(formula.num_vars(), 1);
  std::vector<std::uint8_t> decided(formula.num_vars(), 0);

  Formula current = formula;
  for (std::uint32_t step = 0; step < config.max_decimations; ++step) {
    if (current.num_clauses() == 0) break;

    SurveyState state(current, rng);
    bool converged = false;
    if (controller != nullptr && pool != nullptr) {
      controller->reset();
      Trace t = run_survey_propagation_adaptive(state, config, *controller,
                                                *pool, rng());
      // Converged iff the work-set drained before the round cap.
      converged = t.steps.empty() || t.steps.back().pending_after == 0;
      result.trace.steps.insert(result.trace.steps.end(), t.steps.begin(),
                                t.steps.end());
    } else {
      converged = run_survey_propagation(state, config).has_value();
    }

    if (!converged || state.max_eta() < config.paramagnetic_eps) {
      break;  // paramagnetic (or SP failed): finish with DPLL below
    }

    // Batch decimation: fix the top decimation_fraction most polarized
    // still-active variables from this converged state.
    // Snapshot (polarization, var, preferred value) BEFORE any fixing:
    // `state` views the current formula, which the fixes below replace.
    struct Ranked {
      double polarization;
      std::uint32_t var;
      bool prefers_true;
    };
    std::vector<Ranked> ranked;
    for (std::uint32_t v = 0; v < current.num_vars(); ++v) {
      if (decided[v] || current.clauses_of(v).empty()) continue;
      const auto b = state.bias(v);
      ranked.push_back({b.polarization(), v, b.prefers_true()});
    }
    if (ranked.empty()) break;
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      return a.polarization > b.polarization;
    });
    const auto batch = std::max<std::size_t>(
        1, static_cast<std::size_t>(config.decimation_fraction *
                                    static_cast<double>(ranked.size())));

    bool dead_end = false;
    for (std::size_t i = 0; i < batch && i < ranked.size(); ++i) {
      const std::uint32_t var = ranked[i].var;
      bool value = ranked[i].prefers_true;
      auto next = current.fix_variable(var, value);
      if (!next.has_value()) {
        value = !value;  // contradiction: try the opposite polarity
        next = current.fix_variable(var, value);
        if (!next.has_value()) {
          dead_end = true;
          break;
        }
      }
      decided[var] = 1;
      result.assignment[var] = value ? 1 : 0;
      current = std::move(*next);
      ++result.decimation_steps;
    }
    if (dead_end) break;  // hand the rest to DPLL
  }

  // Finish the (paramagnetic / residual) sub-formula with bounded search.
  if (current.num_clauses() > 0) {
    const auto rest =
        dpll_solve_limited(current, config.dpll_decision_budget);
    if (rest.status != SolveStatus::kSat) return result;  // unsatisfied
    result.used_dpll_fallback = true;
    for (std::uint32_t v = 0; v < formula.num_vars(); ++v) {
      if (!decided[v]) result.assignment[v] = rest.assignment[v];
    }
  }
  result.satisfied = formula.is_satisfied_by(result.assignment);
  return result;
}

}  // namespace optipar::sp
