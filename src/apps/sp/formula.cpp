#include "apps/sp/formula.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace optipar::sp {

Formula::Formula(std::uint32_t num_vars, std::vector<Clause> clauses)
    : num_vars_(num_vars), clauses_(std::move(clauses)),
      var_to_clauses_(num_vars) {
  for (std::uint32_t c = 0; c < clauses_.size(); ++c) {
    for (const Literal& lit : clauses_[c].literals) {
      if (lit.var >= num_vars_) {
        throw std::invalid_argument("Formula: literal out of range");
      }
      auto& list = var_to_clauses_[lit.var];
      if (list.empty() || list.back() != c) list.push_back(c);
    }
  }
}

bool Formula::is_satisfied_by(
    const std::vector<std::uint8_t>& assignment) const {
  if (assignment.size() != num_vars_) {
    throw std::invalid_argument("is_satisfied_by: wrong assignment size");
  }
  for (const Clause& clause : clauses_) {
    bool satisfied = false;
    for (const Literal& lit : clause.literals) {
      if ((assignment[lit.var] != 0) == lit.positive) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) return false;
  }
  return true;
}

std::optional<Formula> Formula::fix_variable(std::uint32_t v,
                                             bool value) const {
  std::vector<Clause> reduced;
  reduced.reserve(clauses_.size());
  for (const Clause& clause : clauses_) {
    bool satisfied = false;
    Clause next;
    for (const Literal& lit : clause.literals) {
      if (lit.var == v) {
        if (lit.positive == value) {
          satisfied = true;
          break;
        }
        continue;  // falsified literal drops out
      }
      next.literals.push_back(lit);
    }
    if (satisfied) continue;
    if (next.literals.empty()) return std::nullopt;  // contradiction
    reduced.push_back(std::move(next));
  }
  return Formula(num_vars_, std::move(reduced));
}

Formula random_ksat(std::uint32_t num_vars, std::uint32_t num_clauses,
                    std::uint32_t k, Rng& rng) {
  if (k == 0 || k > num_vars) {
    throw std::invalid_argument("random_ksat: need 0 < k <= num_vars");
  }
  std::vector<Clause> clauses;
  clauses.reserve(num_clauses);
  for (std::uint32_t c = 0; c < num_clauses; ++c) {
    Clause clause;
    for (const auto v : rng.sample_without_replacement(num_vars, k)) {
      clause.literals.push_back({v, rng.chance(0.5)});
    }
    clauses.push_back(std::move(clause));
  }
  return Formula(num_vars, std::move(clauses));
}

namespace {

enum : std::uint8_t { kUnset = 2 };

struct BudgetExhausted {};

/// Apply unit propagation; returns false on conflict. `assignment` uses
/// kUnset for free variables.
bool unit_propagate(const Formula& formula,
                    std::vector<std::uint8_t>& assignment) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Clause& clause : formula.clauses()) {
      bool satisfied = false;
      const Literal* unit = nullptr;
      int free_count = 0;
      for (const Literal& lit : clause.literals) {
        const auto value = assignment[lit.var];
        if (value == kUnset) {
          ++free_count;
          unit = &lit;
        } else if ((value != 0) == lit.positive) {
          satisfied = true;
          break;
        }
      }
      if (satisfied) continue;
      if (free_count == 0) return false;  // falsified clause
      if (free_count == 1) {
        assignment[unit->var] = unit->positive ? 1 : 0;
        changed = true;
      }
    }
  }
  return true;
}

bool dpll(const Formula& formula, std::vector<std::uint8_t>& assignment,
          std::uint64_t& decisions_left) {
  if (!unit_propagate(formula, assignment)) return false;

  // Pick the first unset variable appearing in an unsatisfied clause.
  std::uint32_t branch_var = UINT32_MAX;
  bool all_satisfied = true;
  for (const Clause& clause : formula.clauses()) {
    bool satisfied = false;
    std::uint32_t candidate = UINT32_MAX;
    for (const Literal& lit : clause.literals) {
      const auto value = assignment[lit.var];
      if (value == kUnset) {
        if (candidate == UINT32_MAX) candidate = lit.var;
      } else if ((value != 0) == lit.positive) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) {
      all_satisfied = false;
      if (candidate != UINT32_MAX) {
        branch_var = candidate;
        break;
      }
      return false;  // unsatisfied clause with no free variable
    }
  }
  if (all_satisfied) return true;

  if (decisions_left == 0) throw BudgetExhausted{};
  --decisions_left;
  for (const std::uint8_t value : {1, 0}) {
    auto saved = assignment;
    assignment[branch_var] = value;
    if (dpll(formula, assignment, decisions_left)) return true;
    assignment = std::move(saved);
  }
  return false;
}

}  // namespace

std::optional<std::vector<std::uint8_t>> dpll_solve(const Formula& formula) {
  const auto result =
      dpll_solve_limited(formula, std::numeric_limits<std::uint64_t>::max());
  if (result.status != SolveStatus::kSat) return std::nullopt;
  return result.assignment;
}

DpllResult dpll_solve_limited(const Formula& formula,
                              std::uint64_t max_decisions) {
  DpllResult result;
  std::vector<std::uint8_t> assignment(formula.num_vars(), kUnset);
  std::uint64_t budget = max_decisions;
  try {
    const bool sat = dpll(formula, assignment, budget);
    result.status = sat ? SolveStatus::kSat : SolveStatus::kUnsat;
  } catch (const BudgetExhausted&) {
    result.status = SolveStatus::kUnknown;
    return result;
  }
  if (result.status == SolveStatus::kSat) {
    // Free variables (untouched by any clause) default to true.
    for (auto& v : assignment) {
      if (v == kUnset) v = 1;
    }
    result.assignment = std::move(assignment);
  }
  return result;
}

}  // namespace optipar::sp
