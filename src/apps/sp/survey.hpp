// Survey propagation (Braunstein–Mézard–Zecchina) on the CNF factor graph,
// with survey-inspired decimation (SID). The message-update tasks are
// amorphous-data-parallel: updating clause a's surveys reads the surveys of
// every clause sharing a variable with a, so overlapping neighborhoods
// conflict — exactly the workload shape the paper's controller targets.
// Both a sequential sweep solver and the speculative operator share the
// same update kernel.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "apps/sp/formula.hpp"
#include "control/controller.hpp"
#include "rt/adaptive_executor.hpp"
#include "rt/spec_executor.hpp"
#include "sim/trace.hpp"
#include "support/thread_pool.hpp"

namespace optipar::sp {

/// Surveys η_{a→i} indexed by (clause, literal slot), plus the update
/// kernel. Message state is only written under the runtime's clause locks
/// in speculative mode. Holds a non-owning view of `formula`, which must
/// outlive the SurveyState.
class SurveyState {
 public:
  SurveyState(const Formula& formula, Rng& rng);
  SurveyState(Formula&&, Rng&) = delete;  // reject dangling temporaries

  [[nodiscard]] double eta(std::uint32_t clause, std::uint32_t slot) const {
    return eta_[clause][slot];
  }
  void set_eta(std::uint32_t clause, std::uint32_t slot, double value) {
    eta_[clause][slot] = value;
  }
  [[nodiscard]] const Formula& formula() const noexcept { return *formula_; }

  /// Recompute clause `a`'s outgoing surveys from the current state.
  /// Returns the new values (slot-indexed) without writing them.
  [[nodiscard]] std::vector<double> compute_clause(std::uint32_t a) const;

  /// Largest |new − old| if compute_clause(a) were applied.
  [[nodiscard]] double clause_residual(std::uint32_t a) const;

  /// Per-variable decimation biases (W+, W−, W0) from converged surveys.
  struct Bias {
    double plus = 0.0;
    double minus = 0.0;
    double zero = 1.0;

    [[nodiscard]] double polarization() const noexcept {
      return plus > minus ? plus - minus : minus - plus;
    }
    [[nodiscard]] bool prefers_true() const noexcept { return plus >= minus; }
  };
  [[nodiscard]] Bias bias(std::uint32_t var) const;

  /// Max survey magnitude — ~0 means the paramagnetic (trivial) state.
  [[nodiscard]] double max_eta() const;

 private:
  const Formula* formula_;
  std::vector<std::vector<double>> eta_;
};

struct SpConfig {
  double tolerance = 1e-3;     ///< convergence: max residual below this
  /// Sequential sweep cap: converging instances settle within ~70 sweeps;
  /// past this SP is declared non-convergent (expected near threshold).
  std::uint32_t max_sweeps = 250;
  double paramagnetic_eps = 0.01;   ///< all-surveys-trivial threshold
  std::uint32_t max_decimations = 1u << 20;
  /// Fraction of still-free variables fixed per SP convergence (standard
  /// SID batches the most polarized ones instead of re-converging per
  /// variable). At least one variable is fixed per round.
  double decimation_fraction = 0.02;
  /// Branching budget for the DPLL fallback on the residual formula
  /// (near-threshold decimation can leave a hard residual); exceeding it
  /// reports "not satisfied" rather than searching forever.
  std::uint64_t dpll_decision_budget = 2'000'000;
  /// Scheduler backend for the speculative clause updates (DESIGN.md §14).
  /// Chromatic derives its footprint from the clause-sharing neighborhood;
  /// relaxed prioritizes by clause id. The default keeps the draw
  /// byte-identical to the pre-backend pipeline.
  sched::Backend scheduler = sched::Backend::kRandom;
};

/// Sequential SP: sweep all clauses until the residual drops below
/// tolerance. Returns the number of sweeps, or nullopt if it never
/// converged within the cap.
std::optional<std::uint32_t> run_survey_propagation(SurveyState& state,
                                                    const SpConfig& config);

/// Speculative SP: clause-update tasks under the given controller.
/// Returns the per-round trace (the work-set drains at convergence).
Trace run_survey_propagation_adaptive(SurveyState& state,
                                      const SpConfig& config,
                                      Controller& controller,
                                      ThreadPool& pool, std::uint64_t seed);

struct SidResult {
  bool satisfied = false;
  std::vector<std::uint8_t> assignment;  ///< valid iff satisfied
  std::uint32_t decimation_steps = 0;
  bool used_dpll_fallback = false;
  Trace trace;  ///< concatenated speculative rounds (adaptive mode only)
};

/// Survey-inspired decimation: converge SP, fix the most polarized
/// variable, simplify, repeat; finish the paramagnetic remainder with
/// DPLL. `controller`/`pool` null → fully sequential SP.
SidResult solve_with_sid(const Formula& formula, const SpConfig& config,
                         Rng& rng, Controller* controller = nullptr,
                         ThreadPool* pool = nullptr);

}  // namespace optipar::sp
