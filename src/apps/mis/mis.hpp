// Speculative maximal independent set — the "flag-based" Galois kernel.
// A task inspects node v and its whole neighborhood: if no neighbor is
// already IN, v enters the set and all undecided neighbors become OUT.
// Overlapping neighborhoods conflict, which makes MIS a high-contention
// stress test for the allocation controller on dense graphs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "control/controller.hpp"
#include "graph/csr_graph.hpp"
#include "rt/adaptive_executor.hpp"
#include "rt/spec_executor.hpp"
#include "sim/trace.hpp"
#include "support/thread_pool.hpp"

namespace optipar::mis {

enum class NodeState : std::uint8_t { kUndecided = 0, kIn = 1, kOut = 2 };

/// Per-node decision state; mutated only under the runtime's node locks.
class MisState {
 public:
  explicit MisState(NodeId n) : state_(n, NodeState::kUndecided) {}

  [[nodiscard]] NodeState get(NodeId v) const { return state_[v]; }
  void set(NodeId v, NodeState s) { state_[v] = s; }
  [[nodiscard]] NodeId size() const noexcept {
    return static_cast<NodeId>(state_.size());
  }
  [[nodiscard]] std::vector<NodeId> in_set() const;
  [[nodiscard]] bool all_decided() const;

 private:
  std::vector<NodeState> state_;
};

[[nodiscard]] TaskOperator make_mis_operator(const CsrGraph& graph,
                                             MisState& state);

/// Sequential greedy MIS over `order` (every node exactly once), as a
/// branchless SIMD sweep: v enters the set iff no earlier neighbor did.
/// This is the serial oracle the speculative runtime is compared against
/// (its committed set for a full-permutation round equals this sweep for
/// the same order — see model/permutation_sweep). The neighborhood probe
/// is a gathered compare over an in-set flag table, and the per-node
/// decision is an unconditional store, so the inner loop carries no
/// data-dependent branch.
[[nodiscard]] std::vector<NodeId> greedy_sweep(const CsrGraph& graph,
                                               std::span<const NodeId> order);

struct MisResult {
  Trace trace;
  std::vector<NodeId> independent_set;
};

[[nodiscard]] MisResult mis_adaptive(const CsrGraph& graph,
                                     Controller& controller, ThreadPool& pool,
                                     std::uint64_t seed,
                                     std::uint32_t max_rounds = 100000);

}  // namespace optipar::mis
