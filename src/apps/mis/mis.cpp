#include "apps/mis/mis.hpp"

#include <stdexcept>

#include "support/simd.hpp"

namespace optipar::mis {

std::vector<NodeId> greedy_sweep(const CsrGraph& graph,
                                 std::span<const NodeId> order) {
  const NodeId n = graph.num_nodes();
  if (order.size() != n) {
    throw std::invalid_argument("greedy_sweep: order size mismatch");
  }
  // u32 flags (1 = in the set) so the neighborhood probe is a pure
  // gather+compare; the result vector is built afterwards from the flags.
  std::vector<std::uint32_t> in_flags(n, 0);
  const simd::Isa isa = simd::active_isa();
  for (const NodeId v : order) {
    if (v >= n) throw std::invalid_argument("greedy_sweep: node out of range");
    const std::span<const NodeId> nbrs = graph.neighbors(v);
    const bool blocked = simd::any_equal_gather_u32(
        in_flags.data(), nbrs.data(), nbrs.size(), 1, isa);
    in_flags[v] = blocked ? 0 : 1;  // cmov, not a branch
  }
  std::vector<NodeId> out;
  for (NodeId v = 0; v < n; ++v) {
    if (in_flags[v] == 1) out.push_back(v);
  }
  return out;
}

std::vector<NodeId> MisState::in_set() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < size(); ++v) {
    if (state_[v] == NodeState::kIn) out.push_back(v);
  }
  return out;
}

bool MisState::all_decided() const {
  for (const auto s : state_) {
    if (s == NodeState::kUndecided) return false;
  }
  return true;
}

TaskOperator make_mis_operator(const CsrGraph& graph, MisState& state) {
  return [&graph, &state](TaskId task, IterationContext& ctx) {
    const auto v = static_cast<NodeId>(task);
    ctx.acquire(v);
    if (state.get(v) != NodeState::kUndecided) return;  // no-op commit

    // Acquire the full neighborhood before reading any of it.
    for (const NodeId w : graph.neighbors(v)) ctx.acquire(w);

    bool blocked = false;
    for (const NodeId w : graph.neighbors(v)) {
      if (state.get(w) == NodeState::kIn) {
        blocked = true;
        break;
      }
    }
    if (blocked) {
      state.set(v, NodeState::kOut);
      ctx.on_abort([&state, v] { state.set(v, NodeState::kUndecided); });
      return;
    }
    state.set(v, NodeState::kIn);
    ctx.on_abort([&state, v] { state.set(v, NodeState::kUndecided); });
    for (const NodeId w : graph.neighbors(v)) {
      if (state.get(w) == NodeState::kUndecided) {
        state.set(w, NodeState::kOut);
        ctx.on_abort([&state, w] { state.set(w, NodeState::kUndecided); });
      }
    }
  };
}

MisResult mis_adaptive(const CsrGraph& graph, Controller& controller,
                       ThreadPool& pool, std::uint64_t seed,
                       std::uint32_t max_rounds) {
  MisState state(graph.num_nodes());
  SpeculativeExecutor executor(pool, graph.num_nodes(),
                               make_mis_operator(graph, state), seed);
  std::vector<TaskId> initial(graph.num_nodes());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) initial[v] = v;
  executor.push_initial(initial);

  AdaptiveRunConfig config;
  config.max_rounds = max_rounds;
  MisResult result;
  result.trace = run_adaptive(executor, controller, config);
  result.independent_set = state.in_set();
  return result;
}

}  // namespace optipar::mis
