#include "apps/mis/mis.hpp"

namespace optipar::mis {

std::vector<NodeId> MisState::in_set() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < size(); ++v) {
    if (state_[v] == NodeState::kIn) out.push_back(v);
  }
  return out;
}

bool MisState::all_decided() const {
  for (const auto s : state_) {
    if (s == NodeState::kUndecided) return false;
  }
  return true;
}

TaskOperator make_mis_operator(const CsrGraph& graph, MisState& state) {
  return [&graph, &state](TaskId task, IterationContext& ctx) {
    const auto v = static_cast<NodeId>(task);
    ctx.acquire(v);
    if (state.get(v) != NodeState::kUndecided) return;  // no-op commit

    // Acquire the full neighborhood before reading any of it.
    for (const NodeId w : graph.neighbors(v)) ctx.acquire(w);

    bool blocked = false;
    for (const NodeId w : graph.neighbors(v)) {
      if (state.get(w) == NodeState::kIn) {
        blocked = true;
        break;
      }
    }
    if (blocked) {
      state.set(v, NodeState::kOut);
      ctx.on_abort([&state, v] { state.set(v, NodeState::kUndecided); });
      return;
    }
    state.set(v, NodeState::kIn);
    ctx.on_abort([&state, v] { state.set(v, NodeState::kUndecided); });
    for (const NodeId w : graph.neighbors(v)) {
      if (state.get(w) == NodeState::kUndecided) {
        state.set(w, NodeState::kOut);
        ctx.on_abort([&state, w] { state.set(w, NodeState::kUndecided); });
      }
    }
  };
}

MisResult mis_adaptive(const CsrGraph& graph, Controller& controller,
                       ThreadPool& pool, std::uint64_t seed,
                       std::uint32_t max_rounds) {
  MisState state(graph.num_nodes());
  SpeculativeExecutor executor(pool, graph.num_nodes(),
                               make_mis_operator(graph, state), seed);
  std::vector<TaskId> initial(graph.num_nodes());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) initial[v] = v;
  executor.push_initial(initial);

  AdaptiveRunConfig config;
  config.max_rounds = max_rounds;
  MisResult result;
  result.trace = run_adaptive(executor, controller, config);
  result.independent_set = state.in_set();
  return result;
}

}  // namespace optipar::mis
