#include "apps/coloring/coloring.hpp"

#include <algorithm>

namespace optipar::coloring {

std::uint32_t ColoringState::colors_used() const {
  std::uint32_t max_color = 0;
  bool any = false;
  for (const auto c : color_) {
    if (c != kUncolored) {
      max_color = std::max(max_color, c);
      any = true;
    }
  }
  return any ? max_color + 1 : 0;
}

bool ColoringState::is_proper(const CsrGraph& graph) const {
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (color_[v] == kUncolored) return false;
    for (const NodeId w : graph.neighbors(v)) {
      if (color_[w] == color_[v]) return false;
    }
  }
  return true;
}

TaskOperator make_coloring_operator(const CsrGraph& graph,
                                    ColoringState& state) {
  return [&graph, &state](TaskId task, IterationContext& ctx) {
    const auto v = static_cast<NodeId>(task);
    ctx.acquire(v);
    if (state.color(v) != kUncolored) return;  // no-op commit

    for (const NodeId w : graph.neighbors(v)) ctx.acquire(w);

    // Smallest color not used by any neighbor.
    std::vector<bool> taken(graph.degree(v) + 1, false);
    for (const NodeId w : graph.neighbors(v)) {
      const std::uint32_t c = state.color(w);
      if (c != kUncolored && c < taken.size()) taken[c] = true;
    }
    std::uint32_t chosen = 0;
    while (chosen < taken.size() && taken[chosen]) ++chosen;

    state.set_color(v, chosen);
    ctx.on_abort([&state, v] { state.set_color(v, kUncolored); });
  };
}

ColoringResult coloring_adaptive(const CsrGraph& graph,
                                 Controller& controller, ThreadPool& pool,
                                 std::uint64_t seed,
                                 std::uint32_t max_rounds) {
  ColoringState state(graph.num_nodes());
  SpeculativeExecutor executor(pool, graph.num_nodes(),
                               make_coloring_operator(graph, state), seed);
  std::vector<TaskId> initial(graph.num_nodes());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) initial[v] = v;
  executor.push_initial(initial);

  AdaptiveRunConfig config;
  config.max_rounds = max_rounds;
  ColoringResult result;
  result.trace = run_adaptive(executor, controller, config);
  result.colors_used = state.colors_used();
  result.proper = state.is_proper(graph);
  return result;
}

}  // namespace optipar::coloring
