// Speculative greedy graph coloring: a task assigns node v the smallest
// color absent from its neighborhood. The neighborhood must be read
// atomically (all neighbor locks held), otherwise two adjacent nodes could
// pick the same color — exactly the conflict optimistic parallelization
// detects and rolls back. Always uses at most max_degree + 1 colors.
#pragma once

#include <cstdint>
#include <vector>

#include "control/controller.hpp"
#include "graph/csr_graph.hpp"
#include "rt/adaptive_executor.hpp"
#include "rt/spec_executor.hpp"
#include "sim/trace.hpp"
#include "support/thread_pool.hpp"

namespace optipar::coloring {

inline constexpr std::uint32_t kUncolored = UINT32_MAX;

class ColoringState {
 public:
  explicit ColoringState(NodeId n) : color_(n, kUncolored) {}

  [[nodiscard]] std::uint32_t color(NodeId v) const { return color_[v]; }
  void set_color(NodeId v, std::uint32_t c) { color_[v] = c; }
  [[nodiscard]] NodeId size() const noexcept {
    return static_cast<NodeId>(color_.size());
  }
  /// Number of distinct colors used (0 if nothing colored).
  [[nodiscard]] std::uint32_t colors_used() const;
  /// True iff fully colored and no edge is monochromatic.
  [[nodiscard]] bool is_proper(const CsrGraph& graph) const;

 private:
  std::vector<std::uint32_t> color_;
};

[[nodiscard]] TaskOperator make_coloring_operator(const CsrGraph& graph,
                                                  ColoringState& state);

struct ColoringResult {
  Trace trace;
  std::uint32_t colors_used = 0;
  bool proper = false;
};

[[nodiscard]] ColoringResult coloring_adaptive(
    const CsrGraph& graph, Controller& controller, ThreadPool& pool,
    std::uint64_t seed, std::uint32_t max_rounds = 100000);

}  // namespace optipar::coloring
