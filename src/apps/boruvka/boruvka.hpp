// Boruvka minimum-spanning-tree by speculative edge contraction — one of
// the Galois applications the paper lists (§1). A task takes an alive
// supernode v, picks its lightest incident edge (v, u) (safe for the MST by
// the cut property, since v is an entire component), records it, and
// contracts v into u. Tasks whose neighborhoods overlap conflict. Both a
// sequential Kruskal reference and the speculative operator are provided.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "control/controller.hpp"
#include "graph/csr_graph.hpp"
#include "rt/adaptive_executor.hpp"
#include "rt/spec_executor.hpp"
#include "sim/trace.hpp"
#include "support/thread_pool.hpp"

namespace optipar::boruvka {

struct WeightedEdge {
  NodeId u = 0;
  NodeId v = 0;
  double w = 0.0;
};

/// Sequential reference: Kruskal with union–find. Returns total MST weight
/// (of the spanning forest, for disconnected inputs).
[[nodiscard]] double kruskal_mst_weight(NodeId n,
                                        std::vector<WeightedEdge> edges);

/// Contracted-graph state shared by the speculative iterations. All
/// per-node containers are only touched while the runtime's abstract lock
/// on that node is held.
class ContractionGraph {
 public:
  ContractionGraph(NodeId n, const std::vector<WeightedEdge>& edges);

  [[nodiscard]] NodeId num_nodes() const noexcept {
    return static_cast<NodeId>(adj_.size());
  }
  [[nodiscard]] bool is_alive(NodeId v) const { return alive_[v] != 0; }
  [[nodiscard]] const std::unordered_map<NodeId, double>& adjacency(
      NodeId v) const {
    return adj_[v];
  }
  /// Lightest incident edge of v (ties broken by smaller neighbor id).
  [[nodiscard]] std::optional<WeightedEdge> lightest_edge(NodeId v) const;

  /// Sum of the recorded contraction edges == MST/forest weight once the
  /// work-set drains.
  [[nodiscard]] double chosen_weight() const;
  [[nodiscard]] std::uint32_t chosen_count() const;

  // Mutators used by the operator (caller holds the relevant locks).
  void set_alive(NodeId v, bool alive) { alive_[v] = alive ? 1 : 0; }
  void record_choice(NodeId v, double w, bool chosen) {
    chosen_w_[v] = w;
    chosen_flag_[v] = chosen ? 1 : 0;
  }
  [[nodiscard]] bool has_choice(NodeId v) const {
    return chosen_flag_[v] != 0;
  }
  std::unordered_map<NodeId, double>& mutable_adjacency(NodeId v) {
    return adj_[v];
  }

 private:
  std::vector<std::unordered_map<NodeId, double>> adj_;
  std::vector<std::uint8_t> alive_;
  std::vector<double> chosen_w_;
  std::vector<std::uint8_t> chosen_flag_;
};

/// The speculative contraction operator (tasks are node ids).
[[nodiscard]] TaskOperator make_boruvka_operator(ContractionGraph& graph);

struct BoruvkaResult {
  Trace trace;
  double mst_weight = 0.0;
  std::uint32_t edges_chosen = 0;
};

/// Full adaptive run: contract the whole graph under the controller.
[[nodiscard]] BoruvkaResult boruvka_adaptive(
    NodeId n, const std::vector<WeightedEdge>& edges, Controller& controller,
    ThreadPool& pool, std::uint64_t seed, std::uint32_t max_rounds = 100000);

}  // namespace optipar::boruvka
