#include "apps/boruvka/boruvka.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/union_find.hpp"

namespace optipar::boruvka {

double kruskal_mst_weight(NodeId n, std::vector<WeightedEdge> edges) {
  std::sort(edges.begin(), edges.end(),
            [](const WeightedEdge& a, const WeightedEdge& b) {
              if (a.w != b.w) return a.w < b.w;
              if (a.u != b.u) return a.u < b.u;
              return a.v < b.v;
            });
  UnionFind uf(n);
  double total = 0.0;
  for (const auto& e : edges) {
    if (uf.unite(e.u, e.v)) total += e.w;
  }
  return total;
}

ContractionGraph::ContractionGraph(NodeId n,
                                   const std::vector<WeightedEdge>& edges)
    : adj_(n), alive_(n, 1), chosen_w_(n, 0.0), chosen_flag_(n, 0) {
  for (const auto& e : edges) {
    if (e.u >= n || e.v >= n || e.u == e.v) {
      throw std::invalid_argument("ContractionGraph: bad edge");
    }
    // Parallel edges collapse to the lightest immediately.
    auto keep_min = [](std::unordered_map<NodeId, double>& map, NodeId key,
                       double w) {
      const auto [it, fresh] = map.try_emplace(key, w);
      if (!fresh && w < it->second) it->second = w;
    };
    keep_min(adj_[e.u], e.v, e.w);
    keep_min(adj_[e.v], e.u, e.w);
  }
}

std::optional<WeightedEdge> ContractionGraph::lightest_edge(NodeId v) const {
  const auto& nbrs = adj_[v];
  if (nbrs.empty()) return std::nullopt;
  WeightedEdge best{v, 0, 0.0};
  bool first = true;
  for (const auto& [u, w] : nbrs) {
    if (first || w < best.w || (w == best.w && u < best.v)) {
      best.v = u;
      best.w = w;
      first = false;
    }
  }
  return best;
}

double ContractionGraph::chosen_weight() const {
  double total = 0.0;
  for (std::size_t v = 0; v < chosen_w_.size(); ++v) {
    if (chosen_flag_[v]) total += chosen_w_[v];
  }
  return total;
}

std::uint32_t ContractionGraph::chosen_count() const {
  std::uint32_t count = 0;
  for (const auto f : chosen_flag_) count += f;
  return count;
}

TaskOperator make_boruvka_operator(ContractionGraph& graph) {
  return [&graph](TaskId task, IterationContext& ctx) {
    const auto v = static_cast<NodeId>(task);
    ctx.acquire(v);
    if (!graph.is_alive(v)) return;  // contracted by someone else: no-op

    const auto best = graph.lightest_edge(v);
    if (!best.has_value()) {
      // Isolated supernode: its component's MST is complete.
      graph.set_alive(v, false);
      ctx.on_abort([&graph, v] { graph.set_alive(v, true); });
      return;
    }
    const NodeId u = best->v;
    const double w = best->w;
    ctx.acquire(u);

    // Snapshot v's neighborhood, then merge it into u. Every neighbor's
    // adjacency is rewritten, so each must be acquired first.
    const std::vector<std::pair<NodeId, double>> nbrs(
        graph.adjacency(v).begin(), graph.adjacency(v).end());
    for (const auto& [x, wx] : nbrs) ctx.acquire(x);

    for (const auto& [x, wx] : nbrs) {
      auto& adj_x = graph.mutable_adjacency(x);
      adj_x.erase(v);
      ctx.on_abort([&graph, x, v = v, wx] {
        graph.mutable_adjacency(x)[v] = wx;
      });
      if (x == u) continue;
      // x gains (or keeps the lighter of) an edge to u, mirrored in u.
      auto& adj_u = graph.mutable_adjacency(u);
      const auto old_xu = adj_x.find(u);
      const double previous =
          old_xu == adj_x.end() ? -1.0 : old_xu->second;  // -1 = absent
      if (old_xu == adj_x.end() || wx < old_xu->second) {
        adj_x[u] = wx;
        adj_u[x] = wx;
        ctx.on_abort([&graph, x, u, previous] {
          if (previous < 0.0) {
            graph.mutable_adjacency(x).erase(u);
            graph.mutable_adjacency(u).erase(x);
          } else {
            graph.mutable_adjacency(x)[u] = previous;
            graph.mutable_adjacency(u)[x] = previous;
          }
        });
      }
    }
    // v's own adjacency empties out; restore it wholesale on abort.
    auto saved = std::move(graph.mutable_adjacency(v));
    graph.mutable_adjacency(v).clear();
    ctx.on_abort([&graph, v, saved] {
      graph.mutable_adjacency(v) = saved;
    });

    graph.record_choice(v, w, true);
    ctx.on_abort([&graph, v] { graph.record_choice(v, 0.0, false); });
    graph.set_alive(v, false);
    ctx.on_abort([&graph, v] { graph.set_alive(v, true); });

    ctx.push(u);  // the merged supernode needs another pass
  };
}

BoruvkaResult boruvka_adaptive(NodeId n,
                               const std::vector<WeightedEdge>& edges,
                               Controller& controller, ThreadPool& pool,
                               std::uint64_t seed, std::uint32_t max_rounds) {
  ContractionGraph graph(n, edges);
  SpeculativeExecutor executor(pool, n, make_boruvka_operator(graph), seed);
  std::vector<TaskId> initial(n);
  for (NodeId v = 0; v < n; ++v) initial[v] = v;
  executor.push_initial(initial);

  AdaptiveRunConfig config;
  config.max_rounds = max_rounds;
  BoruvkaResult result;
  result.trace = run_adaptive(executor, controller, config);
  result.mst_weight = graph.chosen_weight();
  result.edges_chosen = graph.chosen_count();
  return result;
}

}  // namespace optipar::boruvka
