#include "apps/sssp/sssp.hpp"

#include <memory>
#include <queue>
#include <stdexcept>

namespace optipar::sssp {

std::vector<double> dijkstra(const WeightedGraph& g, NodeId source) {
  if (source >= g.num_nodes()) {
    throw std::invalid_argument("dijkstra: source out of range");
  }
  std::vector<double> dist(g.num_nodes(), kUnreachable);
  using Entry = std::pair<double, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[source] = 0.0;
  heap.push({0.0, source});
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > dist[v]) continue;  // stale entry
    for (const Arc& a : g.arcs(v)) {
      if (a.weight < 0.0) {
        throw std::invalid_argument("dijkstra: negative weight");
      }
      const double candidate = d + a.weight;
      if (candidate < dist[a.to]) {
        dist[a.to] = candidate;
        heap.push({candidate, a.to});
      }
    }
  }
  return dist;
}

DistanceTable::DistanceTable(NodeId n, NodeId source)
    : dist_(n, kUnreachable) {
  dist_.at(source) = 0.0;
}

TaskOperator make_sssp_operator(const WeightedGraph& g, DistanceTable& dist) {
  return [&g, &dist](TaskId task, IterationContext& ctx) {
    const auto v = static_cast<NodeId>(task);
    ctx.acquire(v);
    const double dv = dist.get(v);
    if (dv == kUnreachable) return;  // no useful relaxation yet: no-op
    for (const Arc& a : g.arcs(v)) {
      ctx.acquire(a.to);
      const double candidate = dv + a.weight;
      const double old = dist.get(a.to);
      if (candidate < old) {
        dist.set(a.to, candidate);
        ctx.on_abort([&dist, w = a.to, old] { dist.set(w, old); });
        ctx.push(a.to);  // w's own arcs need re-relaxing
      }
    }
  };
}

namespace {

SsspResult run_sssp(const WeightedGraph& g, NodeId source,
                    Controller& controller, ThreadPool& pool,
                    std::uint64_t seed, std::uint32_t max_rounds,
                    WorklistPolicy policy) {
  auto dist = std::make_shared<DistanceTable>(g.num_nodes(), source);
  SpeculativeExecutor executor(pool, g.num_nodes(),
                               make_sssp_operator(g, *dist), seed, policy);
  if (policy == WorklistPolicy::kPriority) {
    // Priority = quantized tentative distance at (re)insertion time. The
    // executor evaluates this outside the parallel section, so the
    // unlocked read is safe.
    executor.set_priority_function([dist](TaskId t) {
      const double d = dist->get(static_cast<NodeId>(t));
      if (d == kUnreachable) return UINT64_MAX;
      return static_cast<std::uint64_t>(d * 1024.0);
    });
  }
  const TaskId initial[] = {source};
  executor.push_initial(initial);

  AdaptiveRunConfig config;
  config.max_rounds = max_rounds;
  SsspResult result;
  result.trace = run_adaptive(executor, controller, config);
  result.dist = dist->all();
  return result;
}

}  // namespace

SsspResult sssp_adaptive(const WeightedGraph& g, NodeId source,
                         Controller& controller, ThreadPool& pool,
                         std::uint64_t seed, std::uint32_t max_rounds) {
  return run_sssp(g, source, controller, pool, seed, max_rounds,
                  WorklistPolicy::kRandom);
}

SsspResult sssp_priority_adaptive(const WeightedGraph& g, NodeId source,
                                  Controller& controller, ThreadPool& pool,
                                  std::uint64_t seed,
                                  std::uint32_t max_rounds) {
  return run_sssp(g, source, controller, pool, seed, max_rounds,
                  WorklistPolicy::kPriority);
}

}  // namespace optipar::sssp
