// Single-source shortest paths by chaotic relaxation — the classic
// *unordered* formulation of SSSP (Bellman–Ford without a schedule): a
// task relaxes one node's outgoing arcs; any relaxation order converges to
// the same fixed point, so speculative execution with rollback applies
// directly. Checked against a sequential Dijkstra.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "control/controller.hpp"
#include "graph/weighted_graph.hpp"
#include "rt/adaptive_executor.hpp"
#include "rt/spec_executor.hpp"
#include "sim/trace.hpp"
#include "support/thread_pool.hpp"

namespace optipar::sssp {

inline constexpr double kUnreachable = std::numeric_limits<double>::infinity();

/// Sequential reference (binary-heap Dijkstra). Requires non-negative
/// weights; throws std::invalid_argument otherwise.
[[nodiscard]] std::vector<double> dijkstra(const WeightedGraph& g,
                                           NodeId source);

/// Distance table shared by the speculative iterations; entry v is only
/// written while the runtime's lock on v is held.
class DistanceTable {
 public:
  DistanceTable(NodeId n, NodeId source);

  [[nodiscard]] double get(NodeId v) const { return dist_[v]; }
  void set(NodeId v, double d) { dist_[v] = d; }
  [[nodiscard]] const std::vector<double>& all() const noexcept {
    return dist_;
  }

 private:
  std::vector<double> dist_;
};

/// Speculative relaxation operator (tasks are node ids).
[[nodiscard]] TaskOperator make_sssp_operator(const WeightedGraph& g,
                                              DistanceTable& dist);

struct SsspResult {
  Trace trace;
  std::vector<double> dist;
};

[[nodiscard]] SsspResult sssp_adaptive(const WeightedGraph& g, NodeId source,
                                       Controller& controller,
                                       ThreadPool& pool, std::uint64_t seed,
                                       std::uint32_t max_rounds = 1000000);

/// Same computation under the OBIM-style soft-priority scheduler: nodes
/// with smaller tentative distance relax first (delta-stepping spirit) —
/// the paper's "ordered algorithms" future-work direction, realized as a
/// best-effort priority that needs no commit-order machinery because
/// chaotic relaxation is order-independent. Usually commits far fewer
/// relaxations than random order (compare the traces).
[[nodiscard]] SsspResult sssp_priority_adaptive(
    const WeightedGraph& g, NodeId source, Controller& controller,
    ThreadPool& pool, std::uint64_t seed, std::uint32_t max_rounds = 1000000);

}  // namespace optipar::sssp
