#include "apps/dmr/mesh.hpp"

#include <algorithm>
#include <stdexcept>

namespace optipar::dmr {

void Mesh::reserve(std::size_t max_points, std::size_t max_triangles) {
  const std::lock_guard lock(arena_);
  if (max_points < points_.size() || max_triangles < tris_.size()) {
    throw std::length_error("Mesh::reserve: below current size");
  }
  points_.reserve(max_points);
  tris_.reserve(max_triangles);
  max_points_ = max_points;
  max_triangles_ = max_triangles;
}

PointId Mesh::add_point(const Point2& p) {
  const std::lock_guard lock(arena_);
  if (max_points_ != 0 && points_.size() >= max_points_) {
    throw std::length_error("Mesh: point capacity exhausted");
  }
  points_.push_back(p);
  return static_cast<PointId>(points_.size() - 1);
}

std::size_t Mesh::num_points() const {
  const std::lock_guard lock(arena_);
  return points_.size();
}

TriId Mesh::create_triangle(PointId a, PointId b, PointId c) {
  Triangle t;
  t.v = {a, b, c};
  t.alive = true;
  const std::lock_guard lock(arena_);
  if (max_triangles_ != 0 && tris_.size() >= max_triangles_) {
    throw std::length_error("Mesh: triangle capacity exhausted");
  }
  tris_.push_back(t);
  return static_cast<TriId>(tris_.size() - 1);
}

void Mesh::kill_triangle(TriId t) {
  if (!tris_[t].alive) throw std::logic_error("kill_triangle: already dead");
  tris_[t].alive = false;
}

void Mesh::revive_triangle(TriId t) {
  if (tris_[t].alive) throw std::logic_error("revive_triangle: alive");
  tris_[t].alive = true;
}

std::size_t Mesh::num_triangle_slots() const {
  const std::lock_guard lock(arena_);
  return tris_.size();
}

std::size_t Mesh::num_alive_triangles() const {
  const std::lock_guard lock(arena_);
  return static_cast<std::size_t>(
      std::count_if(tris_.begin(), tris_.end(),
                    [](const Triangle& t) { return t.alive; }));
}

void Mesh::set_neighbor(TriId t, int slot, TriId n) {
  tris_[t].nbr[static_cast<std::size_t>(slot)] = n;
}

int Mesh::slot_of_neighbor(TriId t, TriId other) const {
  for (int i = 0; i < 3; ++i) {
    if (tris_[t].nbr[static_cast<std::size_t>(i)] == other) return i;
  }
  return -1;
}

int Mesh::slot_of_vertex(TriId t, PointId p) const {
  for (int i = 0; i < 3; ++i) {
    if (tris_[t].v[static_cast<std::size_t>(i)] == p) return i;
  }
  return -1;
}

bool Mesh::contains(TriId t, const Point2& p) const {
  const Point2& a = corner(t, 0);
  const Point2& b = corner(t, 1);
  const Point2& c = corner(t, 2);
  return orient2d(a, b, p) >= 0 && orient2d(b, c, p) >= 0 &&
         orient2d(c, a, p) >= 0;
}

bool Mesh::in_circumcircle(TriId t, const Point2& p) const {
  return incircle(corner(t, 0), corner(t, 1), corner(t, 2), p) > 0;
}

Point2 Mesh::circumcenter_of(TriId t) const {
  return circumcenter(corner(t, 0), corner(t, 1), corner(t, 2));
}

double Mesh::circumradius_of(TriId t) const {
  return circumradius(corner(t, 0), corner(t, 1), corner(t, 2));
}

double Mesh::shortest_edge_of(TriId t) const {
  return shortest_edge(corner(t, 0), corner(t, 1), corner(t, 2));
}

double Mesh::min_angle_of(TriId t) const {
  return min_angle(corner(t, 0), corner(t, 1), corner(t, 2));
}

std::vector<TriId> Mesh::alive_triangles() const {
  const std::lock_guard lock(arena_);
  std::vector<TriId> out;
  for (TriId t = 0; t < tris_.size(); ++t) {
    if (tris_[t].alive) out.push_back(t);
  }
  return out;
}

TriId Mesh::locate(const Point2& p, TriId hint) const {
  const auto slots = tris_.size();
  if (slots == 0) return kNoNeighbor;
  TriId current = (hint < slots && tris_[hint].alive) ? hint : kNoNeighbor;
  if (current != kNoNeighbor) {
    // Straight walk: cross the first edge that has p strictly outside.
    for (std::size_t steps = 0; steps < slots; ++steps) {
      bool moved = false;
      for (int i = 0; i < 3; ++i) {
        const Point2& a = corner(current, (i + 1) % 3);
        const Point2& b = corner(current, (i + 2) % 3);
        if (orient2d(a, b, p) < 0) {
          const TriId next = tris_[current].nbr[static_cast<std::size_t>(i)];
          if (next == kNoNeighbor || !tris_[next].alive) {
            moved = false;  // walked off the mesh — fall back to scan
            current = kNoNeighbor;
          } else {
            current = next;
            moved = true;
          }
          break;
        }
      }
      if (current == kNoNeighbor) break;
      if (!moved) return current;  // inside all three edges
    }
  }
  // Robust fallback.
  for (TriId t = 0; t < slots; ++t) {
    if (tris_[t].alive && contains(t, p)) return t;
  }
  return kNoNeighbor;
}

bool Mesh::validate() const {
  for (TriId t = 0; t < tris_.size(); ++t) {
    const Triangle& tri = tris_[t];
    if (!tri.alive) continue;
    if (orient2d(points_[tri.v[0]], points_[tri.v[1]], points_[tri.v[2]]) <=
        0) {
      return false;  // degenerate or clockwise
    }
    for (int i = 0; i < 3; ++i) {
      const TriId n = tri.nbr[static_cast<std::size_t>(i)];
      if (n == kNoNeighbor) continue;
      if (n >= tris_.size() || !tris_[n].alive) return false;
      const int back = slot_of_neighbor(n, t);
      if (back < 0) return false;  // asymmetric adjacency
      // The shared edge is {v[(i+1)%3], v[(i+2)%3]} on both sides.
      const PointId e1 = tri.v[static_cast<std::size_t>((i + 1) % 3)];
      const PointId e2 = tri.v[static_cast<std::size_t>((i + 2) % 3)];
      const Triangle& other = tris_[n];
      const PointId f1 = other.v[static_cast<std::size_t>((back + 1) % 3)];
      const PointId f2 = other.v[static_cast<std::size_t>((back + 2) % 3)];
      if (!((e1 == f1 && e2 == f2) || (e1 == f2 && e2 == f1))) return false;
    }
  }
  return true;
}

bool Mesh::is_locally_delaunay(PointId skip_verts_below) const {
  for (TriId t = 0; t < tris_.size(); ++t) {
    const Triangle& tri = tris_[t];
    if (!tri.alive) continue;
    if (tri.v[0] < skip_verts_below || tri.v[1] < skip_verts_below ||
        tri.v[2] < skip_verts_below) {
      continue;
    }
    for (int i = 0; i < 3; ++i) {
      const TriId n = tri.nbr[static_cast<std::size_t>(i)];
      if (n == kNoNeighbor || !tris_[n].alive) continue;
      const Triangle& other = tris_[n];
      if (other.v[0] < skip_verts_below || other.v[1] < skip_verts_below ||
          other.v[2] < skip_verts_below) {
        continue;
      }
      const int back = slot_of_neighbor(n, t);
      if (back < 0) return false;
      const PointId opposite = other.v[static_cast<std::size_t>(back)];
      if (in_circumcircle(t, points_[opposite])) return false;
    }
  }
  return true;
}

}  // namespace optipar::dmr
