#include "apps/dmr/refine.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <unordered_map>

namespace optipar::dmr {

void RefineQuality::set_domain(std::span<const Point2> pts, double margin) {
  if (pts.empty()) return;
  domain_lo_x = domain_hi_x = pts[0].x;
  domain_lo_y = domain_hi_y = pts[0].y;
  for (const auto& p : pts) {
    domain_lo_x = std::min(domain_lo_x, p.x);
    domain_hi_x = std::max(domain_hi_x, p.x);
    domain_lo_y = std::min(domain_lo_y, p.y);
    domain_hi_y = std::max(domain_hi_y, p.y);
  }
  domain_lo_x -= margin;
  domain_lo_y -= margin;
  domain_hi_x += margin;
  domain_hi_y += margin;
}

bool is_bad(const Mesh& mesh, TriId t, const RefineQuality& q) {
  if (!mesh.is_alive(t)) return false;
  const Triangle& tri = mesh.tri(t);
  for (const PointId v : tri.v) {
    if (v < kNumSuperVertices) return false;  // bordering the fake boundary
  }
  for (int i = 0; i < 3; ++i) {
    if (!q.in_domain(mesh.corner(t, i))) return false;
  }
  if (mesh.shortest_edge_of(t) < q.min_edge) return false;
  const double threshold = q.min_angle_deg * std::numbers::pi / 180.0;
  return mesh.min_angle_of(t) < threshold;
}

std::vector<TriId> bad_triangles(const Mesh& mesh, const RefineQuality& q) {
  std::vector<TriId> out;
  for (const TriId t : mesh.alive_triangles()) {
    if (is_bad(mesh, t, q)) out.push_back(t);
  }
  return out;
}

std::vector<TriId> refine_one(Mesh& mesh, TriId t, const RefineQuality& q,
                              const InsertHooks* hooks) {
  if (hooks != nullptr && hooks->touch) hooks->touch(t);
  if (!is_bad(mesh, t, q)) return {};
  const Point2 center = mesh.circumcenter_of(t);
  if (std::isfinite(center.x) && std::isfinite(center.y) &&
      q.in_domain(center)) {
    // The circumcenter is inside the bad triangle's own circumcircle by
    // definition, so t seeds the Bowyer–Watson cavity directly — no point
    // location needed (Chew's kernel).
    const PointId pid = mesh.add_point(center);
    const InsertResult res = insert_point(mesh, pid, t, hooks);
    if (res.ok) return res.created;
  }
  // Slivers can have circumcenters far outside the (super-triangle)
  // domain, where the fan would be rejected. Fall back to the centroid:
  // strictly interior to t, so its insertion always splits t and makes
  // progress toward the min_edge floor.
  const Point2 centroid{(mesh.corner(t, 0).x + mesh.corner(t, 1).x +
                         mesh.corner(t, 2).x) /
                            3.0,
                        (mesh.corner(t, 0).y + mesh.corner(t, 1).y +
                         mesh.corner(t, 2).y) /
                            3.0};
  const PointId pid = mesh.add_point(centroid);
  const InsertResult res = insert_point(mesh, pid, t, hooks);
  return res.created;  // empty only in pathological degeneracies
}

std::size_t refine_sequential(Mesh& mesh, const RefineQuality& q,
                              std::size_t max_insertions) {
  std::vector<TriId> worklist = bad_triangles(mesh, q);
  std::size_t insertions = 0;
  while (!worklist.empty() && insertions < max_insertions) {
    const TriId t = worklist.back();
    worklist.pop_back();
    const auto created = refine_one(mesh, t, q, nullptr);
    if (created.empty()) continue;
    ++insertions;
    for (const TriId nt : created) {
      if (is_bad(mesh, nt, q)) worklist.push_back(nt);
    }
  }
  return insertions;
}

CsrGraph refinement_conflict_graph(const Mesh& mesh, const RefineQuality& q,
                                   const std::vector<TriId>& bad) {
  // Inverted index: mesh triangle -> bad-task indices whose footprint
  // contains it. Footprint = the triangles refine_one would lock.
  std::unordered_map<TriId, std::vector<NodeId>> owners;
  for (NodeId task = 0; task < static_cast<NodeId>(bad.size()); ++task) {
    const TriId t = bad[task];
    Point2 center = mesh.circumcenter_of(t);
    if (!std::isfinite(center.x) || !std::isfinite(center.y) ||
        !q.in_domain(center)) {
      // Centroid fallback mirrors refine_one's insertion point choice.
      center = {(mesh.corner(t, 0).x + mesh.corner(t, 1).x +
                 mesh.corner(t, 2).x) /
                    3.0,
                (mesh.corner(t, 0).y + mesh.corner(t, 1).y +
                 mesh.corner(t, 2).y) /
                    3.0};
    }
    auto footprint = probe_cavity(mesh, center, t);
    footprint.cavity.push_back(t);  // the task always locks its own target
    for (const TriId tri : footprint.cavity) owners[tri].push_back(task);
    for (const TriId tri : footprint.ring) owners[tri].push_back(task);
  }
  EdgeList edges;
  for (const auto& [tri, tasks] : owners) {
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      for (std::size_t j = i + 1; j < tasks.size(); ++j) {
        if (tasks[i] != tasks[j]) edges.emplace_back(tasks[i], tasks[j]);
      }
    }
  }
  return CsrGraph::from_edges(static_cast<NodeId>(bad.size()), edges);
}

TaskOperator make_refine_operator(Mesh& mesh, const RefineQuality& q) {
  return [&mesh, q](TaskId task, IterationContext& ctx) {
    const auto t = static_cast<TriId>(task);
    InsertHooks hooks;
    hooks.touch = [&ctx](TriId tri) { ctx.acquire(tri); };
    hooks.on_undo = [&ctx](std::function<void()> inverse) {
      ctx.on_abort(std::move(inverse));
    };
    const auto created = refine_one(mesh, t, q, &hooks);
    for (const TriId nt : created) {
      if (is_bad(mesh, nt, q)) ctx.push(nt);
    }
  };
}

Trace refine_adaptive(Mesh& mesh, const RefineQuality& q,
                      Controller& controller, ThreadPool& pool,
                      std::uint64_t seed, std::uint32_t max_rounds) {
  SpeculativeExecutor executor(pool, mesh.num_triangle_slots(),
                               make_refine_operator(mesh, q), seed);
  const auto initial = bad_triangles(mesh, q);
  std::vector<TaskId> tasks(initial.begin(), initial.end());
  executor.push_initial(tasks);

  AdaptiveRunConfig config;
  config.max_rounds = max_rounds;
  config.before_round = [&mesh](SpeculativeExecutor& ex) {
    ex.grow_items(mesh.num_triangle_slots());
  };
  return run_adaptive(executor, controller, config);
}

}  // namespace optipar::dmr
