// Bowyer–Watson incremental Delaunay triangulation. One insertion routine
// serves both the sequential construction of the initial mesh and the
// speculative refinement operator: the InsertHooks let the speculative
// caller acquire abstract locks on every triangle the insertion visits and
// register rollback actions for every mutation.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "apps/dmr/mesh.hpp"

namespace optipar::dmr {

/// The first three point ids of a built mesh are the bounding
/// super-triangle's corners; triangles using them are never refined.
inline constexpr PointId kNumSuperVertices = 3;

struct InsertHooks {
  /// Called before the insertion first reads or writes a triangle; may
  /// throw (AbortIteration) to cancel the insertion before any mutation.
  std::function<void(TriId)> touch;
  /// Register the inverse of a mutation just performed.
  std::function<void(std::function<void()>)> on_undo;
  /// A freshly created triangle (reported after full wiring).
  std::function<void(TriId)> created;
};

struct InsertResult {
  bool ok = false;
  std::vector<TriId> created;  ///< the retriangulated cavity
};

/// Insert point `p` (already added to the mesh) whose coordinates lie
/// strictly inside the circumcircle of alive triangle `seed`. Carves the
/// Bowyer–Watson cavity, retriangulates it as a fan around p, and wires
/// all adjacency. Returns ok=false without mutating anything when the
/// configuration is degenerate (p coincides with an existing cavity
/// vertex, or the seed's circumcircle does not contain p numerically).
///
/// IMPORTANT phase discipline: all reads (cavity discovery) happen before
/// the first mutation, and `touch` has been called on every triangle that
/// will be read or written, so a speculative abort during discovery needs
/// no rollback at all.
InsertResult insert_point(Mesh& mesh, PointId p, TriId seed,
                          const InsertHooks* hooks = nullptr);

/// Read-only Bowyer–Watson discovery: the cavity of `p` seeded at alive
/// triangle `seed` (whose circumcircle must contain p) plus the ring of
/// boundary-outer triangles. Together these are exactly the triangles a
/// speculative insertion would lock — the task's conflict footprint.
struct CavityFootprint {
  std::vector<TriId> cavity;
  std::vector<TriId> ring;  ///< alive outer neighbors across boundary edges
};
[[nodiscard]] CavityFootprint probe_cavity(const Mesh& mesh, const Point2& p,
                                           TriId seed);

/// Build the Delaunay triangulation of `pts`: creates a huge bounding
/// super-triangle (vertices 0..2), inserts every point sequentially, and
/// leaves super-triangle-incident triangles in place (callers skip them
/// via kNumSuperVertices). The mesh must be empty; reserves capacity for
/// `extra_capacity_factor`× the construction size so later speculative
/// refinement never reallocates. Returns the ids of the inserted points.
std::vector<PointId> build_delaunay(Mesh& mesh, std::span<const Point2> pts,
                                    double extra_capacity_factor = 8.0);

}  // namespace optipar::dmr
