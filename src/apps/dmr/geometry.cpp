#include "apps/dmr/geometry.hpp"

#include <algorithm>
#include <cmath>

namespace optipar::dmr {

double orient2d(const Point2& a, const Point2& b, const Point2& c) {
  const long double acx = static_cast<long double>(a.x) - c.x;
  const long double bcx = static_cast<long double>(b.x) - c.x;
  const long double acy = static_cast<long double>(a.y) - c.y;
  const long double bcy = static_cast<long double>(b.y) - c.y;
  return static_cast<double>(acx * bcy - acy * bcx);
}

double incircle(const Point2& a, const Point2& b, const Point2& c,
                const Point2& d) {
  const long double adx = static_cast<long double>(a.x) - d.x;
  const long double ady = static_cast<long double>(a.y) - d.y;
  const long double bdx = static_cast<long double>(b.x) - d.x;
  const long double bdy = static_cast<long double>(b.y) - d.y;
  const long double cdx = static_cast<long double>(c.x) - d.x;
  const long double cdy = static_cast<long double>(c.y) - d.y;

  const long double ad2 = adx * adx + ady * ady;
  const long double bd2 = bdx * bdx + bdy * bdy;
  const long double cd2 = cdx * cdx + cdy * cdy;

  const long double det = adx * (bdy * cd2 - cdy * bd2) -
                          ady * (bdx * cd2 - cdx * bd2) +
                          ad2 * (bdx * cdy - cdx * bdy);
  return static_cast<double>(det);
}

double distance_squared(const Point2& a, const Point2& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

double distance(const Point2& a, const Point2& b) {
  return std::sqrt(distance_squared(a, b));
}

Point2 circumcenter(const Point2& a, const Point2& b, const Point2& c) {
  const double d = 2.0 * (a.x * (b.y - c.y) + b.x * (c.y - a.y) +
                          c.x * (a.y - b.y));
  const double a2 = a.x * a.x + a.y * a.y;
  const double b2 = b.x * b.x + b.y * b.y;
  const double c2 = c.x * c.x + c.y * c.y;
  Point2 center;
  center.x = (a2 * (b.y - c.y) + b2 * (c.y - a.y) + c2 * (a.y - b.y)) / d;
  center.y = (a2 * (c.x - b.x) + b2 * (a.x - c.x) + c2 * (b.x - a.x)) / d;
  return center;
}

double circumradius(const Point2& a, const Point2& b, const Point2& c) {
  return distance(circumcenter(a, b, c), a);
}

double shortest_edge(const Point2& a, const Point2& b, const Point2& c) {
  return std::sqrt(std::min({distance_squared(a, b), distance_squared(b, c),
                             distance_squared(c, a)}));
}

double signed_area2(const Point2& a, const Point2& b, const Point2& c) {
  return orient2d(a, b, c);
}

double min_angle(const Point2& a, const Point2& b, const Point2& c) {
  auto angle_at = [](const Point2& apex, const Point2& p, const Point2& q) {
    const double ux = p.x - apex.x;
    const double uy = p.y - apex.y;
    const double vx = q.x - apex.x;
    const double vy = q.y - apex.y;
    const double dot = ux * vx + uy * vy;
    const double nu = std::sqrt(ux * ux + uy * uy);
    const double nv = std::sqrt(vx * vx + vy * vy);
    const double cosine = std::clamp(dot / (nu * nv), -1.0, 1.0);
    return std::acos(cosine);
  };
  return std::min({angle_at(a, b, c), angle_at(b, c, a), angle_at(c, a, b)});
}

}  // namespace optipar::dmr
