// 2-D geometric predicates and constructions for the Delaunay mesh
// substrate. Predicates are evaluated in extended (long double) precision,
// which is robust for the well-separated synthetic point clouds the
// examples and benches generate (see DESIGN.md §4 on substitutions).
#pragma once

#include <cstdint>

namespace optipar::dmr {

struct Point2 {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point2&, const Point2&) = default;
};

/// > 0 if (a, b, c) make a left turn (counter-clockwise), < 0 for right
/// turn, 0 for collinear.
[[nodiscard]] double orient2d(const Point2& a, const Point2& b,
                              const Point2& c);

/// > 0 iff d lies strictly inside the circumcircle of the CCW triangle
/// (a, b, c).
[[nodiscard]] double incircle(const Point2& a, const Point2& b,
                              const Point2& c, const Point2& d);

[[nodiscard]] double distance(const Point2& a, const Point2& b);
[[nodiscard]] double distance_squared(const Point2& a, const Point2& b);

/// Circumcenter of a non-degenerate triangle.
[[nodiscard]] Point2 circumcenter(const Point2& a, const Point2& b,
                                  const Point2& c);

[[nodiscard]] double circumradius(const Point2& a, const Point2& b,
                                  const Point2& c);

/// Length of the shortest side.
[[nodiscard]] double shortest_edge(const Point2& a, const Point2& b,
                                   const Point2& c);

/// Twice the signed area (positive for CCW).
[[nodiscard]] double signed_area2(const Point2& a, const Point2& b,
                                  const Point2& c);

/// Smallest interior angle in radians.
[[nodiscard]] double min_angle(const Point2& a, const Point2& b,
                               const Point2& c);

}  // namespace optipar::dmr
