#include "apps/dmr/delaunay.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

namespace optipar::dmr {

namespace {

struct BoundaryEdge {
  PointId a = 0;       ///< edge (a, b), CCW as seen from inside the cavity
  PointId b = 0;
  TriId outer = kNoNeighbor;  ///< triangle across the edge (may be none)
  int outer_slot = -1;        ///< slot in `outer` facing the cavity
};

}  // namespace

InsertResult insert_point(Mesh& mesh, PointId p, TriId seed,
                          const InsertHooks* hooks) {
  InsertResult result;
  const Point2& pt = mesh.point(p);

  auto touch = [&](TriId t) {
    if (hooks != nullptr && hooks->touch) hooks->touch(t);
  };
  auto on_undo = [&](std::function<void()> inverse) {
    if (hooks != nullptr && hooks->on_undo) hooks->on_undo(std::move(inverse));
  };

  // ---- Phase 1: read-only cavity discovery --------------------------
  touch(seed);
  if (!mesh.is_alive(seed) || !mesh.in_circumcircle(seed, pt)) {
    return result;  // degenerate seed; nothing mutated
  }

  std::vector<TriId> cavity;
  std::vector<BoundaryEdge> boundary;
  std::unordered_map<TriId, bool> in_cavity;  // visited -> inside?
  std::vector<TriId> stack{seed};
  in_cavity[seed] = true;

  while (!stack.empty()) {
    const TriId t = stack.back();
    stack.pop_back();
    cavity.push_back(t);
    for (int i = 0; i < 3; ++i) {
      const TriId n = mesh.neighbor(t, i);
      const PointId ea = mesh.tri(t).v[static_cast<std::size_t>((i + 1) % 3)];
      const PointId eb = mesh.tri(t).v[static_cast<std::size_t>((i + 2) % 3)];
      if (n == kNoNeighbor) {
        boundary.push_back({ea, eb, kNoNeighbor, -1});
        continue;
      }
      const auto it = in_cavity.find(n);
      if (it != in_cavity.end()) {
        if (!it->second) {
          boundary.push_back({ea, eb, n, mesh.slot_of_neighbor(n, t)});
        }
        continue;
      }
      touch(n);  // acquire before reading the neighbor's geometry
      const bool inside = mesh.is_alive(n) && mesh.in_circumcircle(n, pt);
      in_cavity[n] = inside;
      if (inside) {
        stack.push_back(n);
      } else {
        boundary.push_back({ea, eb, n, mesh.slot_of_neighbor(n, t)});
      }
    }
  }

  // Degeneracy guard: if p collides with a cavity-boundary vertex the fan
  // would contain zero-area triangles. Reject before mutating.
  for (const auto& e : boundary) {
    if (mesh.point(e.a) == pt || mesh.point(e.b) == pt) return result;
    // New triangle (p, a, b) must be strictly CCW.
    if (orient2d(pt, mesh.point(e.a), mesh.point(e.b)) <= 0) return result;
  }

  // ---- Phase 2: mutation ---------------------------------------------
  for (const TriId t : cavity) {
    mesh.kill_triangle(t);
    on_undo([&mesh, t] { mesh.revive_triangle(t); });
  }

  // Fan around p: new triangle (p, a, b) per boundary edge. Slot layout:
  //   v = {p, a, b};  nbr[0] (opposite p) = outer,
  //   nbr[1] (edge b–p) = fan sibling with a' == b,
  //   nbr[2] (edge p–a) = fan sibling with b' == a.
  std::unordered_map<PointId, TriId> by_a;  // edge's a-vertex -> triangle
  std::unordered_map<PointId, TriId> by_b;
  result.created.reserve(boundary.size());
  for (const auto& e : boundary) {
    const TriId nt = mesh.create_triangle(p, e.a, e.b);
    on_undo([&mesh, nt] { mesh.kill_triangle(nt); });
    mesh.set_neighbor(nt, 0, e.outer);
    if (e.outer != kNoNeighbor) {
      const TriId old = mesh.neighbor(e.outer, e.outer_slot);
      mesh.set_neighbor(e.outer, e.outer_slot, nt);
      const TriId outer = e.outer;
      const int slot = e.outer_slot;
      on_undo([&mesh, outer, slot, old] {
        mesh.set_neighbor(outer, slot, old);
      });
    }
    by_a[e.a] = nt;
    by_b[e.b] = nt;
    result.created.push_back(nt);
  }
  for (std::size_t i = 0; i < boundary.size(); ++i) {
    const auto& e = boundary[i];
    const TriId nt = result.created[i];
    mesh.set_neighbor(nt, 1, by_a.at(e.b));  // across edge (b, p)
    mesh.set_neighbor(nt, 2, by_b.at(e.a));  // across edge (p, a)
  }
  if (hooks != nullptr && hooks->created) {
    for (const TriId nt : result.created) hooks->created(nt);
  }
  result.ok = true;
  return result;
}

CavityFootprint probe_cavity(const Mesh& mesh, const Point2& p, TriId seed) {
  CavityFootprint out;
  if (!mesh.is_alive(seed) || !mesh.in_circumcircle(seed, p)) return out;
  std::unordered_map<TriId, bool> in_cavity;
  std::vector<TriId> stack{seed};
  in_cavity[seed] = true;
  while (!stack.empty()) {
    const TriId t = stack.back();
    stack.pop_back();
    out.cavity.push_back(t);
    for (int i = 0; i < 3; ++i) {
      const TriId n = mesh.neighbor(t, i);
      if (n == kNoNeighbor) continue;
      const auto it = in_cavity.find(n);
      if (it != in_cavity.end()) continue;
      const bool inside = mesh.is_alive(n) && mesh.in_circumcircle(n, p);
      in_cavity[n] = inside;
      if (inside) {
        stack.push_back(n);
      } else if (mesh.is_alive(n)) {
        out.ring.push_back(n);
      }
    }
  }
  return out;
}

std::vector<PointId> build_delaunay(Mesh& mesh, std::span<const Point2> pts,
                                    double extra_capacity_factor) {
  if (mesh.num_triangle_slots() != 0 || mesh.num_points() != 0) {
    throw std::invalid_argument("build_delaunay: mesh must be empty");
  }
  if (pts.empty()) throw std::invalid_argument("build_delaunay: no points");
  if (extra_capacity_factor < 1.0) extra_capacity_factor = 1.0;

  // Bounding box -> huge super-triangle (far enough that its circumcircle
  // interactions never leak into the interior for our point scales).
  double min_x = pts[0].x, max_x = pts[0].x;
  double min_y = pts[0].y, max_y = pts[0].y;
  for (const auto& p : pts) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  const double span = std::max({max_x - min_x, max_y - min_y, 1.0});
  const double cx = 0.5 * (min_x + max_x);
  const double cy = 0.5 * (min_y + max_y);
  const double r = 32.0 * span;

  // Generous arenas: construction needs ~2·n triangles; refinement and
  // rollback garbage need headroom (see Mesh::reserve's concurrency note).
  const auto budget = static_cast<std::size_t>(
      extra_capacity_factor * (8.0 * static_cast<double>(pts.size()) + 64.0));
  mesh.reserve(budget, 4 * budget);

  const PointId s0 = mesh.add_point({cx - 2.0 * r, cy - r});
  const PointId s1 = mesh.add_point({cx + 2.0 * r, cy - r});
  const PointId s2 = mesh.add_point({cx, cy + 2.0 * r});
  TriId last = mesh.create_triangle(s0, s1, s2);

  std::vector<PointId> inserted;
  inserted.reserve(pts.size());
  for (const auto& p : pts) {
    const TriId container = mesh.locate(p, last);
    if (container == kNoNeighbor) {
      throw std::logic_error("build_delaunay: point outside super-triangle");
    }
    const PointId pid = mesh.add_point(p);
    const InsertResult res = insert_point(mesh, pid, container, nullptr);
    if (!res.ok) continue;  // duplicate/degenerate point: skip it
    inserted.push_back(pid);
    last = res.created.front();
  }
  return inserted;
}

}  // namespace optipar::dmr
