// Delaunay mesh refinement — the paper's running example of amorphous data
// parallelism (§2). Bad triangles (small minimum angle) are fixed by
// inserting their circumcenter, which re-triangulates the surrounding
// cavity; refinements whose cavities overlap conflict. Provided both as a
// sequential reference and as a speculative operator for the runtime, plus
// the full adaptive driver (controller in the loop).
#pragma once

#include <cstdint>

#include "apps/dmr/delaunay.hpp"
#include "apps/dmr/mesh.hpp"
#include "control/controller.hpp"
#include "graph/csr_graph.hpp"
#include "rt/adaptive_executor.hpp"
#include "rt/spec_executor.hpp"
#include "sim/trace.hpp"
#include "support/thread_pool.hpp"

namespace optipar::dmr {

struct RefineQuality {
  double min_angle_deg = 26.0;  ///< bad iff the minimum angle is below this
  /// Triangles whose shortest edge is already below this are left alone —
  /// a size floor that guarantees termination for any angle target.
  double min_edge = 1e-2;
  /// Refinement domain (the meshed region). Triangles with a vertex
  /// outside it are never refined and no point is inserted outside it —
  /// this is the stand-in for real boundary handling, preventing the
  /// refinement from cascading into the artificial super-triangle annulus.
  /// Defaults to unbounded.
  double domain_lo_x = -1e300;
  double domain_lo_y = -1e300;
  double domain_hi_x = 1e300;
  double domain_hi_y = 1e300;

  [[nodiscard]] bool in_domain(const Point2& p) const noexcept {
    return p.x >= domain_lo_x && p.x <= domain_hi_x && p.y >= domain_lo_y &&
           p.y <= domain_hi_y;
  }
  /// Set the domain to the bounding box of `pts` expanded by `margin`.
  void set_domain(std::span<const Point2> pts, double margin = 0.0);
};

/// A triangle is refinable-bad: alive, not incident to the super-triangle,
/// below the angle target, and above the size floor.
[[nodiscard]] bool is_bad(const Mesh& mesh, TriId t, const RefineQuality& q);

/// All currently bad triangles (the initial work-set).
[[nodiscard]] std::vector<TriId> bad_triangles(const Mesh& mesh,
                                               const RefineQuality& q);

/// Attempt one refinement: insert the circumcenter of bad triangle t.
/// Returns the newly created triangles (empty if t was skipped because it
/// is no longer alive/bad or the insertion was degenerate). `hooks` makes
/// the same code path speculative.
std::vector<TriId> refine_one(Mesh& mesh, TriId t, const RefineQuality& q,
                              const InsertHooks* hooks = nullptr);

/// Sequential reference refinement. Returns the number of successful
/// insertions (stops early at max_insertions).
std::size_t refine_sequential(Mesh& mesh, const RefineQuality& q,
                              std::size_t max_insertions = SIZE_MAX);

/// Speculative task operator over triangle ids for SpeculativeExecutor.
/// Commits push any new bad triangles back onto the work-set.
[[nodiscard]] TaskOperator make_refine_operator(Mesh& mesh,
                                                const RefineQuality& q);

/// The instantaneous CC (conflict) graph of the refinement work-set:
/// nodes = the current bad triangles, edge iff their speculative lock
/// footprints (cavity + boundary ring of the point they would insert)
/// intersect. This is the graph the paper's model analyses; feeding it to
/// estimate_conflict_curve predicts the runtime's observed conflict ratio
/// (see bench/model_vs_runtime).
[[nodiscard]] CsrGraph refinement_conflict_graph(
    const Mesh& mesh, const RefineQuality& q,
    const std::vector<TriId>& bad);

/// Full closed loop: refine `mesh` under `controller`'s allocation policy
/// on `pool`. Returns the per-round trace.
[[nodiscard]] Trace refine_adaptive(Mesh& mesh, const RefineQuality& q,
                                    Controller& controller, ThreadPool& pool,
                                    std::uint64_t seed,
                                    std::uint32_t max_rounds = 100000);

}  // namespace optipar::dmr
