// Triangle mesh with neighbor adjacency — the shared data structure the
// Delaunay refinement application mutates speculatively. Triangle slots are
// append-only (killed, never reused), so a triangle id can serve directly
// as the abstract-lock item id for the speculative runtime. The point and
// triangle arenas grow under a mutex; all other state is guarded by the
// runtime's item locks.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <vector>

#include "apps/dmr/geometry.hpp"

namespace optipar::dmr {

using TriId = std::uint32_t;
using PointId = std::uint32_t;

inline constexpr TriId kNoNeighbor = UINT32_MAX;

struct Triangle {
  std::array<PointId, 3> v{};    ///< CCW vertex ids
  std::array<TriId, 3> nbr{kNoNeighbor, kNoNeighbor, kNoNeighbor};
  ///< nbr[i] is across the edge opposite v[i]
  bool alive = false;
};

class Mesh {
 public:
  Mesh() = default;

  /// Fix the arena capacities BEFORE any speculative execution. Growth
  /// never reallocates past these bounds, which is what makes lock-free
  /// concurrent reads of points/triangles safe while other iterations
  /// append (a reallocation would invalidate concurrent readers).
  /// Exceeding a capacity throws std::length_error.
  void reserve(std::size_t max_points, std::size_t max_triangles);

  // ----- points ------------------------------------------------------
  /// Append a point (thread-safe); points are immutable once added.
  PointId add_point(const Point2& p);
  [[nodiscard]] const Point2& point(PointId i) const { return points_[i]; }
  [[nodiscard]] std::size_t num_points() const;

  // ----- triangles ---------------------------------------------------
  /// Allocate an alive triangle (thread-safe). Vertices must be CCW.
  TriId create_triangle(PointId a, PointId b, PointId c);
  /// Mark dead; adjacency of the corpse is preserved for rollback.
  void kill_triangle(TriId t);
  /// Rollback helper: resurrect a killed triangle.
  void revive_triangle(TriId t);

  [[nodiscard]] bool is_alive(TriId t) const { return tris_[t].alive; }
  [[nodiscard]] const Triangle& tri(TriId t) const { return tris_[t]; }
  /// Triangle slots allocated so far (alive + dead); also the size the
  /// executor's lock table must cover.
  [[nodiscard]] std::size_t num_triangle_slots() const;
  [[nodiscard]] std::size_t num_alive_triangles() const;

  /// Set t's neighbor across the edge opposite vertex slot `slot`.
  void set_neighbor(TriId t, int slot, TriId n);
  [[nodiscard]] TriId neighbor(TriId t, int slot) const {
    return tris_[t].nbr[slot];
  }
  /// Slot (0-2) of `t` whose opposite edge borders `other`; -1 if none.
  [[nodiscard]] int slot_of_neighbor(TriId t, TriId other) const;
  /// Slot of vertex p within t; -1 if absent.
  [[nodiscard]] int slot_of_vertex(TriId t, PointId p) const;

  // ----- geometry shortcuts -------------------------------------------
  [[nodiscard]] const Point2& corner(TriId t, int slot) const {
    return points_[tris_[t].v[slot]];
  }
  [[nodiscard]] bool contains(TriId t, const Point2& p) const;
  [[nodiscard]] bool in_circumcircle(TriId t, const Point2& p) const;
  [[nodiscard]] Point2 circumcenter_of(TriId t) const;
  [[nodiscard]] double circumradius_of(TriId t) const;
  [[nodiscard]] double shortest_edge_of(TriId t) const;
  [[nodiscard]] double min_angle_of(TriId t) const;

  /// All alive triangle ids.
  [[nodiscard]] std::vector<TriId> alive_triangles() const;

  /// Point-location by straight walk from `hint`, falling back to a linear
  /// scan for robustness. Returns the alive triangle containing p (edges
  /// inclusive); kNoNeighbor if p is outside every alive triangle.
  [[nodiscard]] TriId locate(const Point2& p, TriId hint) const;

  /// Structural invariants: alive triangles are CCW, neighbor links are
  /// symmetric, and neighboring triangles share exactly the two vertices
  /// of the common edge.
  [[nodiscard]] bool validate() const;

  /// Local Delaunay property: for every alive triangle and every neighbor,
  /// the neighbor's opposite vertex is not strictly inside the triangle's
  /// circumcircle. Triangles with a vertex in `skip_verts` (e.g. the
  /// bounding super-triangle corners) are ignored.
  [[nodiscard]] bool is_locally_delaunay(PointId skip_verts_below = 0) const;

 private:
  mutable std::mutex arena_;  // guards growth of points_ / tris_ (CP.50)
  std::vector<Point2> points_;
  std::vector<Triangle> tris_;
  std::size_t max_points_ = 0;     // 0 = unreserved (sequential use only)
  std::size_t max_triangles_ = 0;
};

}  // namespace optipar::dmr
