// Maximum flow by speculative push–relabel (Goldberg–Tarjan). The
// asynchronous formulation is naturally amorphous-data-parallel: a task
// discharges one active node (pushes excess along admissible arcs,
// relabeling when stuck); tasks touching overlapping neighborhoods
// conflict. Verified against a sequential Edmonds–Karp.
//
// Integer-valued capacities (stored as doubles) keep all arithmetic exact.
#pragma once

#include <cstdint>
#include <vector>

#include "control/controller.hpp"
#include "graph/csr_graph.hpp"
#include "rt/adaptive_executor.hpp"
#include "rt/spec_executor.hpp"
#include "sim/trace.hpp"
#include "support/thread_pool.hpp"

namespace optipar::maxflow {

/// Directed flow network with explicit residual (reverse) arcs. The arc
/// structure is frozen before execution; only `flow` fields mutate, always
/// under the runtime's locks on both endpoints.
class FlowNetwork {
 public:
  struct FlowArc {
    NodeId to = 0;
    double capacity = 0.0;
    double flow = 0.0;
    NodeId rev_node = 0;       ///< owner of the paired reverse arc
    std::uint32_t rev_index = 0;  ///< its index within rev_node's list

    [[nodiscard]] double residual() const noexcept {
      return capacity - flow;
    }
  };

  explicit FlowNetwork(NodeId n) : arcs_(n) {}

  [[nodiscard]] NodeId num_nodes() const noexcept {
    return static_cast<NodeId>(arcs_.size());
  }
  /// Add a directed arc u -> v with the given capacity (creates the paired
  /// zero-capacity reverse arc). Must not be called once execution starts.
  void add_arc(NodeId u, NodeId v, double capacity);

  [[nodiscard]] const std::vector<FlowArc>& arcs(NodeId v) const {
    return arcs_[v];
  }
  [[nodiscard]] std::vector<FlowArc>& arcs(NodeId v) { return arcs_[v]; }

  /// Push `amount` along arcs_[u][index] and pull it back on the reverse
  /// arc. Caller holds both endpoints' locks.
  void push(NodeId u, std::uint32_t index, double amount);

  /// Flow conservation + capacity constraints; excess allowed only at s, t.
  [[nodiscard]] bool is_feasible(NodeId s, NodeId t) const;
  /// Net flow out of s (== into t for a feasible flow).
  [[nodiscard]] double flow_value(NodeId s) const;
  void reset_flow();

 private:
  std::vector<std::vector<FlowArc>> arcs_;
};

/// Sequential reference: Edmonds–Karp (BFS augmenting paths) on a private
/// copy of the network. Returns the max-flow value.
[[nodiscard]] double edmonds_karp(FlowNetwork network, NodeId s, NodeId t);

/// Per-node push-relabel state, guarded by the runtime's node locks.
class PushRelabelState {
 public:
  PushRelabelState(NodeId n, NodeId s);

  [[nodiscard]] std::uint32_t height(NodeId v) const { return height_[v]; }
  void set_height(NodeId v, std::uint32_t h) { height_[v] = h; }
  [[nodiscard]] double excess(NodeId v) const { return excess_[v]; }
  void set_excess(NodeId v, double e) { excess_[v] = e; }

 private:
  std::vector<std::uint32_t> height_;
  std::vector<double> excess_;
};

[[nodiscard]] TaskOperator make_push_relabel_operator(FlowNetwork& net,
                                                      PushRelabelState& state,
                                                      NodeId s, NodeId t);

/// The classic global-relabeling heuristic: recompute every height as the
/// exact BFS distance to t in the residual graph (n + distance-to-s for
/// nodes that cannot reach t). Must run between rounds (no locks held).
/// Sound because BFS distances are valid distance labels and never below
/// the current labels' admissible structure requirements.
void global_relabel(const FlowNetwork& net, PushRelabelState& state, NodeId s,
                    NodeId t);

struct MaxflowResult {
  Trace trace;
  double flow_value = 0.0;
  bool feasible = false;
};

/// Run speculative push-relabel to completion under the controller.
/// `global_relabel_interval` = rounds between global relabels (0 = never);
/// the heuristic typically cuts the round count by orders of magnitude.
[[nodiscard]] MaxflowResult maxflow_adaptive(
    FlowNetwork& net, NodeId s, NodeId t, Controller& controller,
    ThreadPool& pool, std::uint64_t seed, std::uint32_t max_rounds = 1000000,
    std::uint32_t global_relabel_interval = 64);

}  // namespace optipar::maxflow
