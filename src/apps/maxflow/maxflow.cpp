#include "apps/maxflow/maxflow.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <queue>
#include <stdexcept>

namespace optipar::maxflow {

void FlowNetwork::add_arc(NodeId u, NodeId v, double capacity) {
  if (u >= num_nodes() || v >= num_nodes() || u == v) {
    throw std::invalid_argument("FlowNetwork::add_arc: bad endpoints");
  }
  if (capacity < 0.0) {
    throw std::invalid_argument("FlowNetwork::add_arc: negative capacity");
  }
  const auto ui = static_cast<std::uint32_t>(arcs_[u].size());
  const auto vi = static_cast<std::uint32_t>(arcs_[v].size());
  arcs_[u].push_back({v, capacity, 0.0, v, vi});
  arcs_[v].push_back({u, 0.0, 0.0, u, ui});
}

void FlowNetwork::push(NodeId u, std::uint32_t index, double amount) {
  FlowArc& fwd = arcs_[u][index];
  FlowArc& rev = arcs_[fwd.rev_node][fwd.rev_index];
  fwd.flow += amount;
  rev.flow -= amount;
}

bool FlowNetwork::is_feasible(NodeId s, NodeId t) const {
  for (NodeId v = 0; v < num_nodes(); ++v) {
    double net_out = 0.0;
    for (const FlowArc& a : arcs_[v]) {
      if (a.flow > a.capacity + 1e-9) return false;
      net_out += a.flow;
    }
    if (v != s && v != t && std::abs(net_out) > 1e-9) return false;
  }
  return true;
}

double FlowNetwork::flow_value(NodeId s) const {
  double out = 0.0;
  for (const FlowArc& a : arcs_[s]) out += a.flow;
  return out;
}

void FlowNetwork::reset_flow() {
  for (auto& list : arcs_) {
    for (auto& a : list) a.flow = 0.0;
  }
}

double edmonds_karp(FlowNetwork network, NodeId s, NodeId t) {
  if (s == t) throw std::invalid_argument("edmonds_karp: s == t");
  network.reset_flow();
  double total = 0.0;
  for (;;) {
    // BFS for the shortest residual path.
    std::vector<std::pair<NodeId, std::uint32_t>> parent(
        network.num_nodes(), {UINT32_MAX, 0});
    std::queue<NodeId> queue;
    queue.push(s);
    parent[s] = {s, 0};
    while (!queue.empty() && parent[t].first == UINT32_MAX) {
      const NodeId v = queue.front();
      queue.pop();
      const auto& arcs = network.arcs(v);
      for (std::uint32_t i = 0; i < arcs.size(); ++i) {
        const auto& a = arcs[i];
        if (a.residual() > 0.0 && parent[a.to].first == UINT32_MAX) {
          parent[a.to] = {v, i};
          queue.push(a.to);
        }
      }
    }
    if (parent[t].first == UINT32_MAX) break;  // no augmenting path

    double bottleneck = std::numeric_limits<double>::infinity();
    for (NodeId v = t; v != s;) {
      const auto [p, idx] = parent[v];
      bottleneck = std::min(bottleneck, network.arcs(p)[idx].residual());
      v = p;
    }
    for (NodeId v = t; v != s;) {
      const auto [p, idx] = parent[v];
      network.push(p, idx, bottleneck);
      v = p;
    }
    total += bottleneck;
  }
  return total;
}

PushRelabelState::PushRelabelState(NodeId n, NodeId s)
    : height_(n, 0), excess_(n, 0.0) {
  height_.at(s) = n;  // the classic initialization
}

TaskOperator make_push_relabel_operator(FlowNetwork& net,
                                        PushRelabelState& state, NodeId s,
                                        NodeId t) {
  return [&net, &state, s, t](TaskId task, IterationContext& ctx) {
    const auto v = static_cast<NodeId>(task);
    if (v == s || v == t) return;
    ctx.acquire(v);
    if (state.excess(v) <= 0.0) return;  // discharged by someone else

    // Acquire the full neighborhood up front: discharge reads neighbor
    // heights and may touch any residual arc.
    auto& arcs = net.arcs(v);
    for (const auto& a : arcs) ctx.acquire(a.to);

    const std::uint32_t h_v = state.height(v);
    bool progressed = false;
    for (std::uint32_t i = 0; i < arcs.size() && state.excess(v) > 0.0;
         ++i) {
      auto& a = arcs[i];
      if (a.residual() <= 0.0 || h_v != state.height(a.to) + 1) continue;
      const double delta = std::min(state.excess(v), a.residual());

      const double old_excess_v = state.excess(v);
      const double old_excess_w = state.excess(a.to);
      net.push(v, i, delta);
      state.set_excess(v, old_excess_v - delta);
      state.set_excess(a.to, old_excess_w + delta);
      ctx.on_abort([&net, &state, v, i, delta, old_excess_v, old_excess_w,
                    w = a.to] {
        net.push(v, i, -delta);
        state.set_excess(v, old_excess_v);
        state.set_excess(w, old_excess_w);
      });
      if (a.to != s && a.to != t) ctx.push(a.to);
      progressed = true;
    }

    (void)progressed;
    if (state.excess(v) > 0.0) {
      // The scan above left no admissible arc, so a relabel is sound:
      // lift v just above its lowest residual neighbor (all held).
      std::uint32_t lowest = UINT32_MAX;
      for (const auto& a : arcs) {
        if (a.residual() > 0.0) {
          lowest = std::min(lowest, state.height(a.to));
        }
      }
      if (lowest != UINT32_MAX && lowest + 1 > state.height(v)) {
        const std::uint32_t old_h = state.height(v);
        state.set_height(v, lowest + 1);
        ctx.on_abort([&state, v, old_h] { state.set_height(v, old_h); });
      }
      ctx.push(v);  // still active
    }
  };
}

void global_relabel(const FlowNetwork& net, PushRelabelState& state, NodeId s,
                    NodeId t) {
  const NodeId n = net.num_nodes();
  constexpr std::uint32_t kUnset = UINT32_MAX;

  // Backward BFS over residual arcs: dist_to[x] = residual distance x -> seed.
  auto residual_distances = [&](NodeId seed) {
    std::vector<std::uint32_t> dist(n, kUnset);
    std::queue<NodeId> queue;
    dist[seed] = 0;
    queue.push(seed);
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop();
      for (const auto& a : net.arcs(u)) {
        // The paired arc at a.rev_node is exactly (a.to -> u); if it has
        // residual capacity then a.to can reach u, hence the seed.
        const auto& reverse = net.arcs(a.rev_node)[a.rev_index];
        if (reverse.residual() > 0.0 && dist[a.to] == kUnset) {
          dist[a.to] = dist[u] + 1;
          queue.push(a.to);
        }
      }
    }
    return dist;
  };

  const auto dist_t = residual_distances(t);
  const auto dist_s = residual_distances(s);
  for (NodeId v = 0; v < n; ++v) {
    if (v == s || v == t) continue;
    std::uint32_t fresh = kUnset;
    if (dist_t[v] != kUnset) {
      fresh = dist_t[v];
    } else if (dist_s[v] != kUnset) {
      fresh = n + dist_s[v];
    }
    // Take the max with the current label: heights must never decrease,
    // and BFS distances are always a valid labeling.
    if (fresh != kUnset && fresh > state.height(v)) {
      state.set_height(v, fresh);
    }
  }
}

MaxflowResult maxflow_adaptive(FlowNetwork& net, NodeId s, NodeId t,
                               Controller& controller, ThreadPool& pool,
                               std::uint64_t seed, std::uint32_t max_rounds,
                               std::uint32_t global_relabel_interval) {
  if (s == t) throw std::invalid_argument("maxflow_adaptive: s == t");
  PushRelabelState state(net.num_nodes(), s);

  // Saturating pre-push out of the source.
  std::vector<TaskId> initial;
  auto& source_arcs = net.arcs(s);
  for (std::uint32_t i = 0; i < source_arcs.size(); ++i) {
    auto& a = source_arcs[i];
    if (a.capacity > 0.0) {
      net.push(s, i, a.capacity);
      state.set_excess(a.to, state.excess(a.to) + a.capacity);
      state.set_excess(s, state.excess(s) - a.capacity);
      if (a.to != t) initial.push_back(a.to);
    }
  }

  SpeculativeExecutor executor(pool, net.num_nodes(),
                               make_push_relabel_operator(net, state, s, t),
                               seed);
  executor.push_initial(initial);

  AdaptiveRunConfig config;
  config.max_rounds = max_rounds;
  if (global_relabel_interval > 0) {
    auto rounds_since = std::make_shared<std::uint32_t>(0);
    config.before_round = [&net, &state, s, t, global_relabel_interval,
                           rounds_since](SpeculativeExecutor&) {
      if (++*rounds_since >= global_relabel_interval) {
        *rounds_since = 0;
        global_relabel(net, state, s, t);
      }
    };
  }
  MaxflowResult result;
  result.trace = run_adaptive(executor, controller, config);
  result.flow_value = state.excess(t);
  result.feasible = net.is_feasible(s, t);
  return result;
}

}  // namespace optipar::maxflow
