#include "model/theory.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "support/math.hpp"

namespace optipar::theory {

double turan_bound(double n, double d) {
  if (n < 0 || d < 0) throw std::invalid_argument("turan_bound: negative");
  return n / (d + 1.0);
}

double initial_derivative(double n, double d) {
  if (n < 2) throw std::invalid_argument("initial_derivative: need n >= 2");
  return d / (2.0 * (n - 1.0));
}

double pr_node_in_induced_mis(std::uint32_t n, std::uint32_t d_v,
                              std::uint32_t m) {
  if (m > n) throw std::invalid_argument("pr_node_in_induced_mis: m > n");
  // (1/n) Σ_{j=1..m} Π_{i=1..j−1} (n−i−d_v)/(n−i), with a running product.
  double product = 1.0;  // j = 1 term (empty product)
  KahanSum sum;
  for (std::uint32_t j = 1; j <= m; ++j) {
    sum.add(product);
    // extend product to cover i = j for the next term
    const double num = static_cast<double>(n) - j - d_v;
    const double den = static_cast<double>(n) - j;
    product = (num <= 0.0 || den <= 0.0) ? 0.0 : product * (num / den);
  }
  return sum.value() / static_cast<double>(n);
}

double b_m(std::span<const std::uint32_t> degrees, std::uint32_t m) {
  const auto n = static_cast<std::uint32_t>(degrees.size());
  if (m > n) throw std::invalid_argument("b_m: m > n");
  // Group by distinct degree: cost O(#distinct · m) instead of O(n · m).
  std::map<std::uint32_t, std::uint32_t> multiplicity;
  for (const auto d : degrees) ++multiplicity[d];
  KahanSum total;
  for (const auto& [d_v, count] : multiplicity) {
    total.add(static_cast<double>(count) * pr_node_in_induced_mis(n, d_v, m));
  }
  return total.value();
}

double b_m(const CsrGraph& g, std::uint32_t m) {
  std::vector<std::uint32_t> degrees(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) degrees[v] = g.degree(v);
  return b_m(std::span<const std::uint32_t>(degrees), m);
}

double em_union_of_cliques(std::uint32_t n, std::uint32_t d, std::uint32_t m) {
  if (n % (d + 1) != 0) {
    throw std::invalid_argument("em_union_of_cliques: (d+1) must divide n");
  }
  if (m > n) throw std::invalid_argument("em_union_of_cliques: m > n");
  const double s = static_cast<double>(n) / (d + 1.0);
  // Π_{i=1..m} (n−d−i)/(n+1−i) — the hypergeometric "component untouched"
  // probability (eq. 26), in log space.
  const double prod = falling_ratio_product(
      static_cast<double>(n) - d, static_cast<double>(n) + 1.0, m);
  return s * (1.0 - prod);
}

double conflict_ratio_bound_exact(std::uint32_t n, std::uint32_t d,
                                  std::uint32_t m) {
  if (m == 0) return 0.0;
  const double r =
      1.0 - em_union_of_cliques(n, d, m) / static_cast<double>(m);
  // The exact value lies in [0, 1); clamp away accumulated rounding fuzz
  // (e.g. r = -1e-14 at m = 1, where EM equals m exactly).
  return std::clamp(r, 0.0, 1.0);
}

double conflict_ratio_bound_approx(double n, double d, double m) {
  if (m <= 0.0) return 0.0;
  const double frac = 1.0 - std::pow(1.0 - m / n, d + 1.0);
  return 1.0 - (n / (m * (d + 1.0))) * frac;
}

double conflict_ratio_bound_alpha(double alpha, double d) {
  if (alpha <= 0.0) return 0.0;
  return 1.0 - (1.0 / alpha) *
                   (1.0 - std::pow(1.0 - alpha / (d + 1.0), d + 1.0));
}

double conflict_ratio_bound_alpha_limit(double alpha) {
  if (alpha <= 0.0) return 0.0;
  return 1.0 - (1.0 - std::exp(-alpha)) / alpha;
}

double alpha_for_target_ratio(double rho) {
  if (rho <= 0.0 || rho >= 1.0) {
    throw std::invalid_argument("alpha_for_target_ratio: rho in (0,1)");
  }
  double lo = 1e-9;
  double hi = 1.0;
  while (conflict_ratio_bound_alpha_limit(hi) < rho) hi *= 2.0;
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (conflict_ratio_bound_alpha_limit(mid) < rho) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

std::uint32_t warm_start_m(std::uint32_t n, double d, double rho) {
  const double alpha = alpha_for_target_ratio(rho);
  const double m = alpha * static_cast<double>(n) / (d + 1.0);
  return std::max<std::uint32_t>(
      2, static_cast<std::uint32_t>(std::floor(m)));
}

}  // namespace optipar::theory
