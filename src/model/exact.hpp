// Exact (non-Monte-Carlo) evaluation of the model's quantities on small
// graphs, by enumerating all n! commit permutations with the single-pass
// prefix sweep. Used to validate the estimators to machine precision and
// to cross-check the closed forms in theory.hpp. Practical up to n ≈ 10.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"

namespace optipar::exact {

/// Hard cap on n for full enumeration (10! · n ≈ 4e7 sweep steps).
inline constexpr NodeId kMaxExactNodes = 10;

struct ExactCurve {
  /// k̄(m) for m = 0..n, averaged over ALL permutations (exact).
  std::vector<double> k_bar;

  [[nodiscard]] double r_bar(std::uint32_t m) const {
    return m == 0 ? 0.0 : k_bar.at(m) / m;
  }
  [[nodiscard]] double expected_committed(std::uint32_t m) const {
    return static_cast<double>(m) - k_bar.at(m);
  }
};

/// Enumerate every permutation of g's nodes and average the abort counts
/// of every prefix. Throws std::invalid_argument for n > kMaxExactNodes.
[[nodiscard]] ExactCurve exact_conflict_curve(const CsrGraph& g);

/// Exact E[greedy MIS size] over all permutations (= expected_committed(n)).
[[nodiscard]] double exact_expected_mis(const CsrGraph& g);

/// Closed form for the star S_k (hub + k leaves, n = k+1):
/// EM_m = m − k̄(m), with the hub blocking/blocked-by the first leaf.
/// Derivation: conditioned on the hub being among the m selected and at
/// position j (uniform), it commits iff j = 1; a selected leaf aborts iff
/// the hub was selected AND committed (hub first). Gives
///   k̄(m) = (m/n)·[ (m−1)·(1/m) · 1 ... ]  — see exact.cpp for the
/// spelled-out derivation.
[[nodiscard]] double star_k_bar(std::uint32_t leaves, std::uint32_t m);

/// Closed form for the complete graph: k̄(m) = m − 1 for m >= 1.
[[nodiscard]] double complete_k_bar(std::uint32_t n, std::uint32_t m);

}  // namespace optipar::exact
