#include "model/permutation_sweep.hpp"

#include <stdexcept>

namespace optipar {

PrefixSweep sweep_full_permutation(const CsrGraph& g,
                                   std::span<const NodeId> perm) {
  const NodeId n = g.num_nodes();
  if (perm.size() != n) {
    throw std::invalid_argument("sweep_full_permutation: size mismatch");
  }
  PrefixSweep out;
  out.committed.assign(n, 0);
  out.aborts_at_prefix.assign(static_cast<std::size_t>(n) + 1, 0);

  std::vector<std::uint8_t> seen(n, 0);
  std::uint32_t aborted = 0;
  for (std::uint32_t pos = 0; pos < n; ++pos) {
    const NodeId v = perm[pos];
    if (v >= n || seen[v]) {
      throw std::invalid_argument("sweep_full_permutation: not a permutation");
    }
    seen[v] = 1;
    bool blocked = false;
    for (const NodeId w : g.neighbors(v)) {
      if (out.committed[w]) {
        blocked = true;
        break;
      }
    }
    if (blocked) {
      ++aborted;
    } else {
      out.committed[v] = 1;
    }
    out.aborts_at_prefix[pos + 1] = aborted;
  }
  return out;
}

std::vector<std::uint8_t> round_outcome(
    const CsrGraph& g, std::span<const NodeId> active_in_commit_order) {
  std::vector<std::uint8_t> committed_flag(g.num_nodes(), 0);
  std::vector<std::uint8_t> result(active_in_commit_order.size(), 0);
  for (std::size_t pos = 0; pos < active_in_commit_order.size(); ++pos) {
    const NodeId v = active_in_commit_order[pos];
    bool blocked = false;
    for (const NodeId w : g.neighbors(v)) {
      if (committed_flag[w]) {
        blocked = true;
        break;
      }
    }
    if (!blocked) {
      committed_flag[v] = 1;
      result[pos] = 1;
    }
  }
  return result;
}

}  // namespace optipar
