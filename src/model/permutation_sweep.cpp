#include "model/permutation_sweep.hpp"

#include <stdexcept>

#include "support/simd.hpp"

namespace optipar {

void sweep_full_permutation(const CsrGraph& g, std::span<const NodeId> perm,
                            SweepScratch& scratch, PrefixSweep& out) {
  const NodeId n = g.num_nodes();
  if (perm.size() != n) {
    throw std::invalid_argument("sweep_full_permutation: size mismatch");
  }
  out.committed.assign(n, 0);
  out.aborts_at_prefix.resize(static_cast<std::size_t>(n) + 1);
  out.aborts_at_prefix[0] = 0;
  scratch.begin(n);

  const simd::Isa isa = simd::active_isa();
  std::uint32_t aborted = 0;
  for (std::uint32_t pos = 0; pos < n; ++pos) {
    const NodeId v = perm[pos];
    if (v >= n || scratch.seen_epoch[v] == scratch.epoch) {
      throw std::invalid_argument("sweep_full_permutation: not a permutation");
    }
    scratch.seen_epoch[v] = scratch.epoch;
    if (scratch.blocked_epoch[v] == scratch.epoch) {
      ++aborted;
    } else {
      out.committed[v] = 1;
      // Push the block: later neighbors learn their fate in O(1). The
      // stamp is a uniform-value scatter over the adjacency row — a
      // vpscatterdd on AVX-512, scalar elsewhere.
      const std::span<const NodeId> nbrs = g.neighbors(v);
      simd::scatter_u32(scratch.blocked_epoch.data(), nbrs.data(),
                        nbrs.size(), scratch.epoch, isa);
    }
    out.aborts_at_prefix[pos + 1] = aborted;
  }
}

PrefixSweep sweep_full_permutation(const CsrGraph& g,
                                   std::span<const NodeId> perm) {
  SweepScratch scratch;
  PrefixSweep out;
  sweep_full_permutation(g, perm, scratch, out);
  return out;
}

void round_outcome(const CsrGraph& g,
                   std::span<const NodeId> active_in_commit_order,
                   SweepScratch& scratch, std::vector<std::uint8_t>& result) {
  scratch.begin(g.num_nodes());
  result.assign(active_in_commit_order.size(), 0);
  const simd::Isa isa = simd::active_isa();
  for (std::size_t pos = 0; pos < active_in_commit_order.size(); ++pos) {
    const NodeId v = active_in_commit_order[pos];
    if (scratch.blocked_epoch[v] != scratch.epoch) {
      result[pos] = 1;
      const std::span<const NodeId> nbrs = g.neighbors(v);
      simd::scatter_u32(scratch.blocked_epoch.data(), nbrs.data(),
                        nbrs.size(), scratch.epoch, isa);
    }
  }
}

std::vector<std::uint8_t> round_outcome(
    const CsrGraph& g, std::span<const NodeId> active_in_commit_order) {
  SweepScratch scratch;
  std::vector<std::uint8_t> result;
  round_outcome(g, active_in_commit_order, scratch, result);
  return result;
}

}  // namespace optipar
