#include "model/exact.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "model/permutation_sweep.hpp"

namespace optipar::exact {

ExactCurve exact_conflict_curve(const CsrGraph& g) {
  const NodeId n = g.num_nodes();
  if (n > kMaxExactNodes) {
    throw std::invalid_argument("exact_conflict_curve: n too large");
  }
  ExactCurve curve;
  curve.k_bar.assign(static_cast<std::size_t>(n) + 1, 0.0);
  if (n == 0) return curve;

  std::vector<NodeId> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  std::uint64_t count = 0;
  do {
    const auto sweep = sweep_full_permutation(g, perm);
    for (std::uint32_t m = 0; m <= n; ++m) {
      curve.k_bar[m] += static_cast<double>(sweep.aborts_at_prefix[m]);
    }
    ++count;
  } while (std::next_permutation(perm.begin(), perm.end()));

  for (auto& k : curve.k_bar) k /= static_cast<double>(count);
  return curve;
}

double exact_expected_mis(const CsrGraph& g) {
  const auto curve = exact_conflict_curve(g);
  return curve.expected_committed(g.num_nodes());
}

double star_k_bar(std::uint32_t leaves, std::uint32_t m) {
  const std::uint32_t n = leaves + 1;
  if (m > n) throw std::invalid_argument("star_k_bar: m > n");
  if (m <= 1) return 0.0;
  // Condition on the hub being among the m launched tasks (prob m/n).
  //   hub first in the commit order (prob 1/m): the m−1 leaves all abort;
  //   hub later (prob (m−1)/m): the first leaf commits, only the hub
  //   aborts, every other leaf commits (leaves are pairwise independent).
  // k̄(m) = (m/n)·[ (1/m)(m−1) + ((m−1)/m)·1 ] = 2(m−1)/n.
  return 2.0 * (m - 1.0) / n;
}

double complete_k_bar(std::uint32_t n, std::uint32_t m) {
  if (m > n) throw std::invalid_argument("complete_k_bar: m > n");
  return m == 0 ? 0.0 : static_cast<double>(m) - 1.0;
}

}  // namespace optipar::exact
