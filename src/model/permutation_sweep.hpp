// The paper's commit-order semantics (§2.1), implemented as a single pass.
//
// A round launches the first m nodes of a random permutation π; node π(j)
// aborts iff some earlier *committed* neighbor π(i), i < j, exists (an
// earlier neighbor that itself aborted does not block π(j)). The committed
// set is therefore the greedy maximal independent set over the permutation
// order, and crucially a node's fate depends only on nodes before it — so
// ONE pass over a full permutation yields k(π, m), the abort count of the
// length-m prefix, for EVERY m simultaneously in O(n + |E|). All
// Monte-Carlo estimates of r̄(m) (Fig. 2) build on this sweep.
//
// The kernels are push-based: when a node commits it stamps its neighbors
// as blocked, so a later node's fate is one O(1) lookup instead of a scan
// of its adjacency list for a committed member. Total edge work is
// Σ deg(committed) rather than the pull-based Σ (prefix of deg(v) scanned),
// and the results are bit-identical ("some earlier committed neighbor
// exists" ⟺ "an earlier committed node stamped me").
//
// Stamps live in a SweepScratch that callers reuse across trials: an epoch
// counter makes clearing O(1) (bump the epoch; stale stamps from previous
// trials simply stop matching), so an m ≪ n round touches O(m + Σ deg)
// memory, not O(n).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr_graph.hpp"

namespace optipar {

struct PrefixSweep {
  /// committed[v] == 1 iff node v commits when the entire permutation runs.
  std::vector<std::uint8_t> committed;
  /// aborts_at_prefix[m] == k(π, m) for m = 0..n (index 0 is 0).
  std::vector<std::uint32_t> aborts_at_prefix;

  /// r(π, m) = k(π, m) / m.
  [[nodiscard]] double conflict_ratio(std::uint32_t m) const {
    return m == 0 ? 0.0
                  : static_cast<double>(aborts_at_prefix[m]) /
                        static_cast<double>(m);
  }
};

/// Reusable epoch-stamped scratch for the sweep kernels. One instance per
/// thread; begin() is O(1) except on first use (or epoch wraparound), so a
/// Monte-Carlo loop of T trials allocates O(n) once instead of T times.
struct SweepScratch {
  std::vector<std::uint32_t> blocked_epoch;  // node stamped by a committed
                                             // earlier neighbor this epoch
  std::vector<std::uint32_t> seen_epoch;     // permutation validation
  std::uint32_t epoch = 0;

  /// Start a fresh trial over n nodes; invalidates all previous stamps.
  void begin(std::uint32_t n) {
    if (blocked_epoch.size() < n) {
      blocked_epoch.resize(n, 0);
      seen_epoch.resize(n, 0);
    }
    if (++epoch == 0) {  // wraparound: stale stamps could collide — wipe
      std::fill(blocked_epoch.begin(), blocked_epoch.end(), 0u);
      std::fill(seen_epoch.begin(), seen_epoch.end(), 0u);
      epoch = 1;
    }
  }
};

/// Run the commit-order semantics over a full permutation of all nodes of g.
/// `perm` must be a permutation of 0..n-1 (checked). Scratch-reusing
/// variant: `out`'s buffers are overwritten (and only grow once).
void sweep_full_permutation(const CsrGraph& g, std::span<const NodeId> perm,
                            SweepScratch& scratch, PrefixSweep& out);

/// Convenience wrapper that owns its scratch (one-shot callers, tests).
[[nodiscard]] PrefixSweep sweep_full_permutation(const CsrGraph& g,
                                                 std::span<const NodeId> perm);

/// Outcome of one round restricted to an explicit active set in commit
/// order: fills per-position commit flags (1 = committed). Conflicts are
/// evaluated only among the active nodes, matching a round in which exactly
/// these m tasks were launched. Touches O(m + Σ deg(committed)) state — the
/// epoch scratch means no O(n) clear even though stamps are per-node.
void round_outcome(const CsrGraph& g,
                   std::span<const NodeId> active_in_commit_order,
                   SweepScratch& scratch, std::vector<std::uint8_t>& result);

/// Convenience wrapper that owns its scratch (one-shot callers, tests).
[[nodiscard]] std::vector<std::uint8_t> round_outcome(
    const CsrGraph& g, std::span<const NodeId> active_in_commit_order);

}  // namespace optipar
