// The paper's commit-order semantics (§2.1), implemented as a single pass.
//
// A round launches the first m nodes of a random permutation π; node π(j)
// aborts iff some earlier *committed* neighbor π(i), i < j, exists (an
// earlier neighbor that itself aborted does not block π(j)). The committed
// set is therefore the greedy maximal independent set over the permutation
// order, and crucially a node's fate depends only on nodes before it — so
// ONE pass over a full permutation yields k(π, m), the abort count of the
// length-m prefix, for EVERY m simultaneously in O(n + |E|). All
// Monte-Carlo estimates of r̄(m) (Fig. 2) build on this sweep.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr_graph.hpp"

namespace optipar {

struct PrefixSweep {
  /// committed[v] == 1 iff node v commits when the entire permutation runs.
  std::vector<std::uint8_t> committed;
  /// aborts_at_prefix[m] == k(π, m) for m = 0..n (index 0 is 0).
  std::vector<std::uint32_t> aborts_at_prefix;

  /// r(π, m) = k(π, m) / m.
  [[nodiscard]] double conflict_ratio(std::uint32_t m) const {
    return m == 0 ? 0.0
                  : static_cast<double>(aborts_at_prefix[m]) /
                        static_cast<double>(m);
  }
};

/// Run the commit-order semantics over a full permutation of all nodes of g.
/// `perm` must be a permutation of 0..n-1 (checked).
[[nodiscard]] PrefixSweep sweep_full_permutation(const CsrGraph& g,
                                                 std::span<const NodeId> perm);

/// Outcome of one round restricted to an explicit active set in commit
/// order: returns per-position commit flags (1 = committed). Conflicts are
/// evaluated only among the active nodes, matching a round in which exactly
/// these m tasks were launched.
[[nodiscard]] std::vector<std::uint8_t> round_outcome(
    const CsrGraph& g, std::span<const NodeId> active_in_commit_order);

}  // namespace optipar
