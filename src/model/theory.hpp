// Closed forms from the paper's theory sections:
//   Prop. 2   — initial derivative of r̄:  Δr̄(1) = d / (2(n−1))
//   Thm. 1    — Turán (strong form): E[greedy MIS] >= n/(d+1)
//   Thm. 2    — eq. (19)–(21): b_m(G), the induced-subgraph MIS lower-bound
//               functional, for arbitrary degree sequences
//   Thm. 3    — exact EM_m(K_d^n) and the conflict-ratio upper bound
//   Cor. 2    — the large-n approximation of that bound
//   Cor. 3    — the α-parameterized form 1 − (1 − e^{−α})/α
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr_graph.hpp"

namespace optipar::theory {

/// Turán lower bound on the expected random-greedy MIS size: n / (d+1).
[[nodiscard]] double turan_bound(double n, double d);

/// Prop. 2: Δr̄(1) = d / (2(n−1)). Defined for n >= 2.
[[nodiscard]] double initial_derivative(double n, double d);

/// Pr[v ∈ IS_m] for a node of degree d_v in an n-node graph (eq. 19):
/// (1/n) Σ_{j=1..m} Π_{i=1..j−1} (n−i−d_v)/(n−i).
[[nodiscard]] double pr_node_in_induced_mis(std::uint32_t n, std::uint32_t d_v,
                                            std::uint32_t m);

/// b_m(G) of eq. (20) for an explicit degree sequence: the expected size of
/// the "no earlier neighbor" independent set, a lower bound on EM_m(G).
[[nodiscard]] double b_m(std::span<const std::uint32_t> degrees,
                         std::uint32_t m);
[[nodiscard]] double b_m(const CsrGraph& g, std::uint32_t m);

/// Thm. 3 exact: EM_m(K_d^n) = s · (1 − Π_{i=1..m} (n−d−i)/(n+1−i)),
/// s = n/(d+1). Requires (d+1) | n and m <= n.
[[nodiscard]] double em_union_of_cliques(std::uint32_t n, std::uint32_t d,
                                         std::uint32_t m);

/// Thm. 3: worst-case conflict-ratio bound r̄(m) <= 1 − EM_m(K_d^n)/m.
[[nodiscard]] double conflict_ratio_bound_exact(std::uint32_t n,
                                                std::uint32_t d,
                                                std::uint32_t m);

/// Cor. 2: r̄(m) <= 1 − (n/(m(d+1)))·[1 − (1 − m/n)^{d+1}].
[[nodiscard]] double conflict_ratio_bound_approx(double n, double d, double m);

/// Cor. 3 with m = αn/(d+1): bound 1 − (1/α)[1 − (1 − α/(d+1))^{d+1}].
[[nodiscard]] double conflict_ratio_bound_alpha(double alpha, double d);

/// Cor. 3 limit d → ∞: 1 − (1 − e^{−α})/α. (≈ 21.3% at α = 1/2·…, see
/// paper §4: m = n/(2(d+1)) i.e. α = 1/2 gives <= 21.3%.)
[[nodiscard]] double conflict_ratio_bound_alpha_limit(double alpha);

/// Invert Cor. 3's limit: the largest α with bound(α) <= rho. Bisection on
/// a strictly increasing function; rho in (0, 1).
[[nodiscard]] double alpha_for_target_ratio(double rho);

/// Suggested warm start for the controller when d is known (paper §4):
/// m0 = α(ρ)·n/(d+1), guaranteed to keep the worst-case ratio under rho.
[[nodiscard]] std::uint32_t warm_start_m(std::uint32_t n, double d,
                                         double rho);

}  // namespace optipar::theory
