// The unfriendly seating problem (Freedman & Shepp 1962), which the paper
// identifies as the combinatorial core of estimating exploitable
// parallelism: the expected size of the maximal independent set produced by
// random sequential seating. Exact dynamic programs for paths and cycles,
// the classical asymptotic density, and Monte-Carlo estimation for general
// graphs (meshes, the statistical-physics setting of [11]).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace optipar::seating {

/// Exact E[greedy MIS] on the path P_n under a uniformly random permutation
/// (equivalently: random sequential adsorption on n seats in a row).
/// E(0)=0, E(1)=1, E(n) = 1 + (2/n) Σ_{k=0}^{n-2} E(k).
[[nodiscard]] double expected_path(std::uint32_t n);

/// Entire table E(0..n) in one O(n) pass (prefix-sum form of the DP).
[[nodiscard]] std::vector<double> expected_path_table(std::uint32_t n);

/// Exact E[greedy MIS] on the cycle C_n (n >= 3): the first seated node
/// reduces the cycle to a path of n-3 seats, so E_cycle(n) = 1 + E(n-3).
[[nodiscard]] double expected_cycle(std::uint32_t n);

/// The classical jamming density for the infinite path:
/// lim E(n)/n = (1 − e^{−2})/2 ≈ 0.43233.
[[nodiscard]] double path_density_limit();

/// Monte-Carlo E[greedy MIS] on an arbitrary graph, with CI.
[[nodiscard]] StreamingStats estimate(const CsrGraph& g, std::uint32_t trials,
                                      Rng& rng);

}  // namespace optipar::seating
