// Monte-Carlo estimation of the paper's central quantities on arbitrary CC
// graphs: the conflict-ratio function r̄(m) (eq. 1), the expected abort
// count k̄(m), the expected committed count EM_m(G), and the operating point
// μ(ρ) = max{m : r̄(m) <= ρ} that the adaptive controller chases.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/thread_pool.hpp"

namespace optipar {

/// The full curve m -> (k̄(m), r̄(m), EM_m) with confidence intervals,
/// estimated from `trials` independent full-permutation sweeps. One sweep
/// feeds every m at once (see permutation_sweep.hpp), so the total cost is
/// trials * O(n + |E|).
struct ConflictCurve {
  /// stats[m] accumulates k(π, m) over trials; index 0 unused (always 0).
  std::vector<StreamingStats> abort_stats;

  [[nodiscard]] std::uint32_t max_m() const noexcept {
    return static_cast<std::uint32_t>(abort_stats.size()) - 1;
  }
  [[nodiscard]] double k_bar(std::uint32_t m) const {
    return abort_stats.at(m).mean();
  }
  [[nodiscard]] double r_bar(std::uint32_t m) const {
    return m == 0 ? 0.0 : k_bar(m) / m;
  }
  /// EM_m(G): expected committed tasks among m launched.
  [[nodiscard]] double expected_committed(std::uint32_t m) const {
    return static_cast<double>(m) - k_bar(m);
  }
  /// 95% CI half-width on r̄(m).
  [[nodiscard]] double r_bar_ci95(std::uint32_t m) const {
    return m == 0 ? 0.0 : abort_stats.at(m).ci95() / m;
  }
};

[[nodiscard]] ConflictCurve estimate_conflict_curve(const CsrGraph& g,
                                                    std::uint32_t trials,
                                                    Rng& rng);

/// Parallel version: trials are split across the pool's workers, each with
/// its own split() RNG stream, and the per-worker accumulators are merged.
/// Deterministic given (seed, worker count). Statistically identical to
/// the serial estimator.
[[nodiscard]] ConflictCurve estimate_conflict_curve_parallel(
    const CsrGraph& g, std::uint32_t trials, std::uint64_t seed,
    ThreadPool& pool);

/// Point estimates at a single m: both r̄(m) and EM_m(G) come from the same
/// per-trial round outcome (committed = m − aborted), so one simulation
/// feeds both statistics.
struct RoundPointEstimate {
  StreamingStats r;          // per-trial aborted / m
  StreamingStats committed;  // per-trial committed count
};

/// Simulate `trials` independent rounds of exactly m random launches and
/// accumulate both point statistics. Cheaper than the full curve when only
/// one m matters. The draw stream matches the historical estimate_r_at /
/// estimate_committed_at exactly (one sample per trial).
[[nodiscard]] RoundPointEstimate estimate_round_point(const CsrGraph& g,
                                                      std::uint32_t m,
                                                      std::uint32_t trials,
                                                      Rng& rng);

/// Point estimate of r̄(m) only (cheaper when the full curve is not needed:
/// each trial stops after m nodes).
[[nodiscard]] StreamingStats estimate_r_at(const CsrGraph& g, std::uint32_t m,
                                           std::uint32_t trials, Rng& rng);

/// Point estimate of EM_m(G) — expected committed among m random launches —
/// used for Thm. 2 / Example 1 validation.
[[nodiscard]] StreamingStats estimate_committed_at(const CsrGraph& g,
                                                   std::uint32_t m,
                                                   std::uint32_t trials,
                                                   Rng& rng);

/// The controller's ideal operating point: the largest m with r̄(m) <= rho
/// (r̄ is non-decreasing by Prop. 1, so this is well defined). Estimated by
/// a single high-trial-count curve evaluation.
[[nodiscard]] std::uint32_t find_mu(const CsrGraph& g, double rho,
                                    std::uint32_t trials, Rng& rng);

/// Read μ(ρ) off an already-estimated curve. Callers that need μ at several
/// thresholds (sweeps, ablations) estimate the curve once and query this.
[[nodiscard]] std::uint32_t find_mu(const ConflictCurve& curve, double rho);

}  // namespace optipar
