#include "model/seating.hpp"

#include <cmath>
#include <stdexcept>

#include "graph/algos.hpp"

namespace optipar::seating {

std::vector<double> expected_path_table(std::uint32_t n) {
  std::vector<double> e(static_cast<std::size_t>(n) + 1, 0.0);
  // prefix[k] = Σ_{j=0}^{k} e[j]
  double prefix_up_to_n_minus_2 = 0.0;  // running Σ_{k=0}^{i-2} e[k]
  for (std::uint32_t i = 1; i <= n; ++i) {
    if (i >= 2) prefix_up_to_n_minus_2 += e[i - 2];
    e[i] = 1.0 + (i >= 2 ? 2.0 / static_cast<double>(i) *
                               prefix_up_to_n_minus_2
                         : 0.0);
  }
  return e;
}

double expected_path(std::uint32_t n) { return expected_path_table(n)[n]; }

double expected_cycle(std::uint32_t n) {
  if (n < 3) throw std::invalid_argument("expected_cycle: need n >= 3");
  return 1.0 + expected_path(n - 3);
}

double path_density_limit() { return 0.5 * (1.0 - std::exp(-2.0)); }

StreamingStats estimate(const CsrGraph& g, std::uint32_t trials, Rng& rng) {
  StreamingStats stats;
  for (std::uint32_t t = 0; t < trials; ++t) {
    const auto mis = random_greedy_mis(g, rng);
    stats.add(static_cast<double>(mis.size()));
  }
  return stats;
}

}  // namespace optipar::seating
