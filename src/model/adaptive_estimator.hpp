// Adaptive-precision estimation of the conflict-ratio curve. The fixed
// `trials` estimators in conflict_ratio.hpp spend the same number of
// permutation sweeps whether the graph's abort counts have converged after
// 50 sweeps or still swing after 5000. This engine replaces "run T trials"
// with "run until the 95% CI half-width on r̄(m) is <= epsilon", and stacks
// three variance levers on top of the stopping rule:
//
//   * Batched sequential sampling — sweeps run in fixed-size batches and
//     convergence is checked only at batch boundaries, so the trial count
//     is a deterministic function of (seed, epsilon, worker count), never
//     of timing.
//   * Antithetic pairing — each statistical sample averages the sweep of a
//     drawn permutation π and of reverse(π) (which is itself uniform, so
//     the estimator stays unbiased). Negatively correlated pair members
//     cancel noise; at worst a pair behaves like two independent sweeps.
//   * Control variates from theory.hpp's closed forms — every connected
//     component that is a clique K_c has an exactly known expected abort
//     contribution at every prefix m (the per-component form behind
//     Thm. 3: E = m·c/n − (1 − Π_{i<m} (n−c−i)/(n−i))). Subtracting the
//     per-sweep clique aborts and adding back the exact expectation leaves
//     the estimate unbiased while removing all variance contributed by
//     clique components — on K_d^n itself the estimator becomes exact and
//     stops at the first batch.
//
// The engine can also relabel the graph internally (graph/relabel.hpp) so
// sweeps traverse a cache-friendly CSR; every statistic it reports is
// label-invariant and the applied map is returned for callers that need to
// translate NodeIds.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/relabel.hpp"
#include "model/conflict_ratio.hpp"
#include "support/stats.hpp"
#include "support/thread_pool.hpp"

namespace optipar {

namespace telemetry {
class TimerSet;
}  // namespace telemetry

struct AdaptiveConfig {
  /// Target 95% CI half-width on r̄(m), enforced at every m in [1, n].
  double epsilon = 0.005;
  /// Samples accumulated before the first convergence check (>= 2 so the
  /// variance is defined). An antithetic pair is ONE sample (two sweeps).
  std::uint32_t min_samples = 16;
  /// Samples added between consecutive convergence checks.
  std::uint32_t batch_samples = 16;
  /// Hard cap on permutation sweeps (the cost unit); the engine stops
  /// unconverged rather than exceed it.
  std::uint32_t max_sweeps = 1u << 20;
  bool antithetic = true;
  bool control_variates = true;
  /// Internal node relabeling applied before sweeping (statistics are
  /// label-invariant; the map is reported in the result).
  RelabelOrder relabel = RelabelOrder::kNone;
  /// Optional profiling sink (DESIGN.md §10): batch sweep work accumulates
  /// into "estimator.sweeps", merge + CI scans into "estimator.merge".
  /// Non-owning; nullptr (the default) disables all clock reads. Profiling
  /// never affects the sample stream or the stopping decision.
  telemetry::TimerSet* timers = nullptr;

  [[nodiscard]] std::uint32_t sweeps_per_sample() const noexcept {
    return antithetic ? 2u : 1u;
  }
};

/// Exact expected abort contribution of clique-shaped connected components,
/// used as a control variate (and, on K_d^n, reproducing Thm. 3 exactly).
struct CliqueControlVariate {
  static constexpr std::uint32_t kNotClique = 0xffffffffu;
  /// Per node: dense clique-component id, or kNotClique. Components of
  /// size 1 contribute exactly zero aborts and are left unmarked.
  std::vector<std::uint32_t> clique_comp;
  std::uint32_t num_clique_comps = 0;
  std::uint32_t clique_nodes = 0;
  /// expected_aborts[m] = E[aborts at prefix m from clique components],
  /// m = 0..n, in closed form.
  std::vector<double> expected_aborts;

  [[nodiscard]] bool active() const noexcept { return num_clique_comps > 0; }
};

[[nodiscard]] CliqueControlVariate build_clique_control_variate(
    const CsrGraph& g);

/// Result of an adaptive curve estimation. `curve` holds the (possibly
/// control-variate-adjusted, pair-averaged) per-m statistics; its means and
/// CIs are unbiased estimates of the same quantities the fixed-trial
/// estimator targets.
struct AdaptiveCurve {
  ConflictCurve curve;
  std::uint32_t sweeps = 0;   ///< permutation sweeps actually executed
  std::uint32_t samples = 0;  ///< statistical samples (pair = 1 sample)
  bool converged = false;     ///< worst_ci <= epsilon at stop
  double worst_ci = 0.0;      ///< max over m of the r̄(m) CI at stop
  std::uint32_t worst_m = 0;  ///< argmax of the above
  double clique_node_fraction = 0.0;  ///< share of nodes covered by the CV
  Relabeling map;             ///< internal relabeling (identity if none)
};

/// Serial adaptive estimation. Deterministic given (seed, config).
/// Identical to the parallel version run on a pool of size 0.
[[nodiscard]] AdaptiveCurve estimate_conflict_curve_adaptive(
    const CsrGraph& g, const AdaptiveConfig& config, std::uint64_t seed);

/// Parallel adaptive estimation: each batch's samples are dealt round-robin
/// to per-lane split() RNG streams (as estimate_conflict_curve_parallel
/// does), partials merge at every batch boundary, and the stopping decision
/// is taken on the merged statistics — deterministic given (seed, config,
/// worker count).
[[nodiscard]] AdaptiveCurve estimate_conflict_curve_adaptive_parallel(
    const CsrGraph& g, const AdaptiveConfig& config, std::uint64_t seed,
    ThreadPool& pool);

/// Adaptive point estimate at a single m: rounds of m random launches until
/// the CI on r̄(m) is <= epsilon. Antithetic pairing reverses the commit
/// order of the same active set; the control variate adjusts by the exact
/// expected clique-component aborts at that m.
struct AdaptivePoint {
  StreamingStats r;          ///< per-sample aborted/m (adjusted)
  StreamingStats committed;  ///< per-sample committed count (adjusted)
  std::uint32_t rounds = 0;  ///< simulated rounds (pair = 2 rounds)
  std::uint32_t samples = 0;
  bool converged = false;
};

[[nodiscard]] AdaptivePoint estimate_round_point_adaptive(
    const CsrGraph& g, std::uint32_t m, const AdaptiveConfig& config,
    std::uint64_t seed);

/// μ(ρ) read off an adaptively estimated curve, with the curve attached so
/// callers can report precision and cost.
struct MuEstimate {
  std::uint32_t mu = 1;
  AdaptiveCurve curve;
};

[[nodiscard]] MuEstimate find_mu_adaptive(const CsrGraph& g, double rho,
                                          const AdaptiveConfig& config,
                                          std::uint64_t seed);
[[nodiscard]] MuEstimate find_mu_adaptive_parallel(
    const CsrGraph& g, double rho, const AdaptiveConfig& config,
    std::uint64_t seed, ThreadPool& pool);

}  // namespace optipar
