#include "model/conflict_ratio.hpp"

#include <stdexcept>

#include "model/permutation_sweep.hpp"
#include "support/simd.hpp"

namespace optipar {

namespace {

/// Accumulate `trials` full-permutation sweeps into `curve` using `rng`'s
/// stream. Shared by the serial estimator and each parallel lane; all O(n)
/// buffers (permutation, sweep output, stamps) are reused across trials.
///
/// The per-trial fold is the estimator's dominant cost (one divide-bound
/// Welford update per prefix length), so it runs structure-of-arrays
/// through simd::welford_step_u32 — every trial contributes one sample to
/// each of the n+1 accumulators, so they share a single sample count —
/// and folds back into StreamingStats at the end. The vector recurrence
/// is bit-identical to element-wise StreamingStats::add (simd.hpp), so
/// curve values, golden tests, and checkpoints are unchanged.
void accumulate_sweeps(const CsrGraph& g, std::uint32_t first_trial,
                       std::uint32_t trials, std::uint32_t stride, Rng& rng,
                       ConflictCurve& curve) {
  const NodeId n = g.num_nodes();
  const std::size_t stats = static_cast<std::size_t>(n) + 1;
  std::vector<std::uint32_t> perm;
  SweepScratch scratch;
  PrefixSweep sweep;
  std::vector<double> mean(stats, 0.0);
  std::vector<double> m2(stats, 0.0);
  std::vector<double> mn(stats, 1e300);
  std::vector<double> mx(stats, -1e300);
  const simd::Isa isa = simd::active_isa();
  std::uint64_t samples = 0;
  for (std::uint32_t t = first_trial; t < trials; t += stride) {
    rng.permutation_into(n, perm);
    sweep_full_permutation(g, perm, scratch, sweep);
    ++samples;
    simd::welford_step_u32(mean.data(), m2.data(), mn.data(), mx.data(),
                           sweep.aborts_at_prefix.data(), stats,
                           static_cast<double>(samples), isa);
  }
  for (std::size_t m = 0; m < stats; ++m) {
    curve.abort_stats[m] =
        StreamingStats::from_moments(samples, mean[m], m2[m], mn[m], mx[m]);
  }
}

}  // namespace

ConflictCurve estimate_conflict_curve(const CsrGraph& g, std::uint32_t trials,
                                      Rng& rng) {
  if (trials == 0) {
    throw std::invalid_argument("estimate_conflict_curve: trials == 0");
  }
  ConflictCurve curve;
  curve.abort_stats.assign(static_cast<std::size_t>(g.num_nodes()) + 1,
                           StreamingStats{});
  accumulate_sweeps(g, 0, trials, 1, rng, curve);
  return curve;
}

ConflictCurve estimate_conflict_curve_parallel(const CsrGraph& g,
                                               std::uint32_t trials,
                                               std::uint64_t seed,
                                               ThreadPool& pool) {
  if (trials == 0) {
    throw std::invalid_argument("estimate_conflict_curve_parallel: trials");
  }
  const NodeId n = g.num_nodes();
  const std::size_t lanes = pool.size() + 1;  // workers + calling thread

  // Pre-split one RNG stream per lane so results are deterministic given
  // (seed, lane count) regardless of scheduling.
  Rng root(seed);
  std::vector<Rng> lane_rngs;
  lane_rngs.reserve(lanes);
  for (std::size_t l = 0; l < lanes; ++l) lane_rngs.push_back(root.split());

  std::vector<ConflictCurve> partials(lanes);
  for (auto& p : partials) {
    p.abort_stats.assign(static_cast<std::size_t>(n) + 1, StreamingStats{});
  }

  pool.run_on_workers(lanes, [&](std::size_t lane) {
    // Deal trials round-robin so every lane count divides evenly enough.
    accumulate_sweeps(g, static_cast<std::uint32_t>(lane), trials,
                      static_cast<std::uint32_t>(lanes), lane_rngs[lane],
                      partials[lane]);
  });

  ConflictCurve merged = std::move(partials[0]);
  for (std::size_t l = 1; l < lanes; ++l) {
    for (std::uint32_t m = 0; m <= n; ++m) {
      merged.abort_stats[m].merge(partials[l].abort_stats[m]);
    }
  }
  return merged;
}

RoundPointEstimate estimate_round_point(const CsrGraph& g, std::uint32_t m,
                                        std::uint32_t trials, Rng& rng) {
  if (m == 0 || m > g.num_nodes()) {
    throw std::invalid_argument("estimate_round_point: bad m");
  }
  RoundPointEstimate est;
  Rng::SampleScratch sample_scratch;
  SweepScratch sweep_scratch;
  std::vector<NodeId> active;
  std::vector<std::uint8_t> outcome;
  for (std::uint32_t t = 0; t < trials; ++t) {
    rng.sample_without_replacement_into(g.num_nodes(), m, sample_scratch,
                                        active);
    round_outcome(g, active, sweep_scratch, outcome);
    const std::uint32_t committed = static_cast<std::uint32_t>(
        simd::count_equal_u8(outcome.data(), outcome.size(), 1));
    est.r.add(static_cast<double>(m - committed) / static_cast<double>(m));
    est.committed.add(static_cast<double>(committed));
  }
  return est;
}

StreamingStats estimate_r_at(const CsrGraph& g, std::uint32_t m,
                             std::uint32_t trials, Rng& rng) {
  return estimate_round_point(g, m, trials, rng).r;
}

StreamingStats estimate_committed_at(const CsrGraph& g, std::uint32_t m,
                                     std::uint32_t trials, Rng& rng) {
  return estimate_round_point(g, m, trials, rng).committed;
}

std::uint32_t find_mu(const ConflictCurve& curve, double rho) {
  std::uint32_t mu = 1;
  for (std::uint32_t m = 1; m <= curve.max_m(); ++m) {
    if (curve.r_bar(m) <= rho) mu = m;
  }
  return mu;
}

std::uint32_t find_mu(const CsrGraph& g, double rho, std::uint32_t trials,
                      Rng& rng) {
  return find_mu(estimate_conflict_curve(g, trials, rng), rho);
}

}  // namespace optipar
