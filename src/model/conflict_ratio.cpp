#include "model/conflict_ratio.hpp"

#include <stdexcept>

#include "model/permutation_sweep.hpp"

namespace optipar {

ConflictCurve estimate_conflict_curve(const CsrGraph& g, std::uint32_t trials,
                                      Rng& rng) {
  if (trials == 0) {
    throw std::invalid_argument("estimate_conflict_curve: trials == 0");
  }
  const NodeId n = g.num_nodes();
  ConflictCurve curve;
  curve.abort_stats.assign(static_cast<std::size_t>(n) + 1, StreamingStats{});
  for (std::uint32_t t = 0; t < trials; ++t) {
    const auto perm = rng.permutation(n);
    const auto sweep = sweep_full_permutation(g, perm);
    for (std::uint32_t m = 0; m <= n; ++m) {
      curve.abort_stats[m].add(
          static_cast<double>(sweep.aborts_at_prefix[m]));
    }
  }
  return curve;
}

ConflictCurve estimate_conflict_curve_parallel(const CsrGraph& g,
                                               std::uint32_t trials,
                                               std::uint64_t seed,
                                               ThreadPool& pool) {
  if (trials == 0) {
    throw std::invalid_argument("estimate_conflict_curve_parallel: trials");
  }
  const NodeId n = g.num_nodes();
  const std::size_t lanes = pool.size() + 1;  // workers + calling thread

  // Pre-split one RNG stream per lane so results are deterministic given
  // (seed, lane count) regardless of scheduling.
  Rng root(seed);
  std::vector<Rng> lane_rngs;
  lane_rngs.reserve(lanes);
  for (std::size_t l = 0; l < lanes; ++l) lane_rngs.push_back(root.split());

  std::vector<ConflictCurve> partials(lanes);
  for (auto& p : partials) {
    p.abort_stats.assign(static_cast<std::size_t>(n) + 1, StreamingStats{});
  }

  pool.run_on_workers(lanes, [&](std::size_t lane) {
    // Deal trials round-robin so every lane count divides evenly enough.
    Rng& rng = lane_rngs[lane];
    ConflictCurve& mine = partials[lane];
    for (std::uint32_t t = static_cast<std::uint32_t>(lane); t < trials;
         t += static_cast<std::uint32_t>(lanes)) {
      const auto perm = rng.permutation(n);
      const auto sweep = sweep_full_permutation(g, perm);
      for (std::uint32_t m = 0; m <= n; ++m) {
        mine.abort_stats[m].add(
            static_cast<double>(sweep.aborts_at_prefix[m]));
      }
    }
  });

  ConflictCurve merged = std::move(partials[0]);
  for (std::size_t l = 1; l < lanes; ++l) {
    for (std::uint32_t m = 0; m <= n; ++m) {
      merged.abort_stats[m].merge(partials[l].abort_stats[m]);
    }
  }
  return merged;
}

StreamingStats estimate_r_at(const CsrGraph& g, std::uint32_t m,
                             std::uint32_t trials, Rng& rng) {
  if (m == 0 || m > g.num_nodes()) {
    throw std::invalid_argument("estimate_r_at: bad m");
  }
  StreamingStats stats;
  for (std::uint32_t t = 0; t < trials; ++t) {
    const auto active = rng.sample_without_replacement(g.num_nodes(), m);
    const auto outcome =
        round_outcome(g, std::span<const NodeId>(active));
    std::uint32_t aborted = 0;
    for (const auto c : outcome) aborted += (c == 0);
    stats.add(static_cast<double>(aborted) / static_cast<double>(m));
  }
  return stats;
}

StreamingStats estimate_committed_at(const CsrGraph& g, std::uint32_t m,
                                     std::uint32_t trials, Rng& rng) {
  if (m == 0 || m > g.num_nodes()) {
    throw std::invalid_argument("estimate_committed_at: bad m");
  }
  StreamingStats stats;
  for (std::uint32_t t = 0; t < trials; ++t) {
    const auto active = rng.sample_without_replacement(g.num_nodes(), m);
    const auto outcome =
        round_outcome(g, std::span<const NodeId>(active));
    std::uint32_t committed = 0;
    for (const auto c : outcome) committed += (c == 1);
    stats.add(static_cast<double>(committed));
  }
  return stats;
}

std::uint32_t find_mu(const CsrGraph& g, double rho, std::uint32_t trials,
                      Rng& rng) {
  const auto curve = estimate_conflict_curve(g, trials, rng);
  std::uint32_t mu = 1;
  for (std::uint32_t m = 1; m <= curve.max_m(); ++m) {
    if (curve.r_bar(m) <= rho) mu = m;
  }
  return mu;
}

}  // namespace optipar
