#include "model/adaptive_estimator.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "graph/algos.hpp"
#include "model/permutation_sweep.hpp"
#include "support/telemetry/telemetry.hpp"

namespace optipar {

namespace {

void validate_config(const AdaptiveConfig& cfg) {
  if (!(cfg.epsilon > 0.0)) {
    throw std::invalid_argument("AdaptiveConfig: epsilon must be > 0");
  }
  if (cfg.min_samples < 2) {
    throw std::invalid_argument("AdaptiveConfig: min_samples must be >= 2");
  }
  if (cfg.batch_samples == 0) {
    throw std::invalid_argument("AdaptiveConfig: batch_samples must be >= 1");
  }
  if (cfg.max_sweeps < 2 * cfg.sweeps_per_sample()) {
    throw std::invalid_argument(
        "AdaptiveConfig: max_sweeps admits fewer than two samples");
  }
}

/// Per-lane mutable state: RNG stream plus every scratch buffer a sweep
/// needs, allocated once and reused across all batches.
struct LaneState {
  Rng rng{0};
  std::vector<std::uint32_t> perm;
  SweepScratch scratch;
  PrefixSweep sweep;
  std::vector<double> sample_a;  // adjusted aborts per prefix, first sweep
  std::vector<double> sample_b;  // second sweep of an antithetic pair
  std::vector<std::uint32_t> comp_epoch;  // CV "component seen" stamps
  std::uint32_t epoch = 0;
};

/// Sweep one full permutation and write the control-variate-adjusted abort
/// count per prefix m into `out` (size n+1). Without an active CV this is
/// just the raw aborts_at_prefix cast to double.
void adjusted_sweep(const CsrGraph& g, std::span<const NodeId> perm,
                    const CliqueControlVariate* cv, LaneState& ls,
                    std::vector<double>& out) {
  sweep_full_permutation(g, perm, ls.scratch, ls.sweep);
  const NodeId n = g.num_nodes();
  out.resize(static_cast<std::size_t>(n) + 1);
  out[0] = 0.0;
  if (cv == nullptr) {
    for (std::uint32_t m = 1; m <= n; ++m) {
      out[m] = static_cast<double>(ls.sweep.aborts_at_prefix[m]);
    }
    return;
  }
  if (ls.comp_epoch.size() < cv->num_clique_comps) {
    ls.comp_epoch.resize(cv->num_clique_comps, 0);
  }
  if (++ls.epoch == 0) {
    std::fill(ls.comp_epoch.begin(), ls.comp_epoch.end(), 0u);
    ls.epoch = 1;
  }
  // Within a clique component the first launched member commits and every
  // later member aborts, so the per-sweep clique abort count at prefix m is
  // (#clique nodes seen) − (#distinct clique components seen).
  std::uint32_t nodes_seen = 0;
  std::uint32_t comps_seen = 0;
  for (std::uint32_t m = 1; m <= n; ++m) {
    const auto c = cv->clique_comp[perm[m - 1]];
    if (c != CliqueControlVariate::kNotClique) {
      ++nodes_seen;
      if (ls.comp_epoch[c] != ls.epoch) {
        ls.comp_epoch[c] = ls.epoch;
        ++comps_seen;
      }
    }
    out[m] = static_cast<double>(ls.sweep.aborts_at_prefix[m]) -
             static_cast<double>(nodes_seen - comps_seen) +
             cv->expected_aborts[m];
  }
}

/// One statistical sample: a sweep, or an antithetic pair averaged.
void draw_curve_sample(const CsrGraph& g, const AdaptiveConfig& cfg,
                       const CliqueControlVariate* cv, LaneState& ls,
                       std::vector<StreamingStats>& stats) {
  const NodeId n = g.num_nodes();
  ls.rng.permutation_into(n, ls.perm);
  adjusted_sweep(g, ls.perm, cv, ls, ls.sample_a);
  if (cfg.antithetic) {
    std::reverse(ls.perm.begin(), ls.perm.end());  // no RNG draws
    adjusted_sweep(g, ls.perm, cv, ls, ls.sample_b);
    for (std::uint32_t m = 0; m <= n; ++m) {
      stats[m].add(0.5 * (ls.sample_a[m] + ls.sample_b[m]));
    }
  } else {
    for (std::uint32_t m = 0; m <= n; ++m) stats[m].add(ls.sample_a[m]);
  }
}

/// Shared driver: `pool == nullptr` is the serial path (one lane). Parallel
/// runs use pool->size() + 1 lanes with round-robin sample assignment, so
/// results are a pure function of (seed, cfg, worker count).
AdaptiveCurve run_adaptive_curve(const CsrGraph& input,
                                 const AdaptiveConfig& cfg,
                                 std::uint64_t seed, ThreadPool* pool) {
  validate_config(cfg);
  RelabeledGraph rg = relabel(input, cfg.relabel);
  const CsrGraph& g = rg.graph;
  const NodeId n = g.num_nodes();

  CliqueControlVariate cv_store;
  const CliqueControlVariate* cv = nullptr;
  if (cfg.control_variates) {
    cv_store = build_clique_control_variate(g);
    if (cv_store.active()) cv = &cv_store;
  }

  const std::size_t lanes = pool ? pool->size() + 1 : 1;
  Rng root(seed);
  std::vector<LaneState> lane(lanes);
  for (auto& ls : lane) ls.rng = root.split();
  std::vector<std::vector<StreamingStats>> partial(
      lanes, std::vector<StreamingStats>(static_cast<std::size_t>(n) + 1));

  AdaptiveCurve out;
  out.clique_node_fraction =
      n == 0 ? 0.0
             : static_cast<double>(cv_store.clique_nodes) /
                   static_cast<double>(n);
  const std::uint32_t per_sample = cfg.sweeps_per_sample();
  std::vector<StreamingStats> merged;
  // Resolve the profiling accumulators once; nullptr means no clock reads
  // anywhere in the loop (ScopedTimer's disabled contract).
  TimerAccumulator* const acc_sweeps =
      cfg.timers != nullptr ? &cfg.timers->at("estimator.sweeps") : nullptr;
  TimerAccumulator* const acc_merge =
      cfg.timers != nullptr ? &cfg.timers->at("estimator.merge") : nullptr;

  while (true) {
    const std::uint32_t want =
        out.samples == 0 ? cfg.min_samples : cfg.batch_samples;
    const std::uint32_t budget = (cfg.max_sweeps - out.sweeps) / per_sample;
    const std::uint32_t batch = std::min(want, budget);
    if (batch == 0) break;

    const std::uint32_t first = out.samples;
    auto work = [&](std::size_t l) {
      for (std::uint32_t i = first; i < first + batch; ++i) {
        if (i % lanes == l) draw_curve_sample(g, cfg, cv, lane[l], partial[l]);
      }
    };
    {
      ScopedTimer sweep_timer(acc_sweeps);
      if (pool) {
        pool->run_on_workers(lanes, work);
      } else {
        work(0);
      }
    }
    out.samples += batch;
    out.sweeps += batch * per_sample;

    ScopedTimer merge_timer(acc_merge);
    merged = partial[0];
    for (std::size_t l = 1; l < lanes; ++l) {
      for (std::uint32_t m = 0; m <= n; ++m) merged[m].merge(partial[l][m]);
    }
    out.worst_ci = 0.0;
    out.worst_m = 0;
    for (std::uint32_t m = 1; m <= n; ++m) {
      const double ci = merged[m].ci95() / m;
      if (ci > out.worst_ci) {
        out.worst_ci = ci;
        out.worst_m = m;
      }
    }
    merge_timer.stop();
    if (out.samples >= 2 && out.worst_ci <= cfg.epsilon) {
      out.converged = true;
      break;
    }
  }

  if (merged.empty()) {
    merged.assign(static_cast<std::size_t>(n) + 1, StreamingStats{});
  }
  out.curve.abort_stats = std::move(merged);
  out.map = std::move(rg.map);
  return out;
}

}  // namespace

CliqueControlVariate build_clique_control_variate(const CsrGraph& g) {
  CliqueControlVariate cv;
  const NodeId n = g.num_nodes();
  cv.clique_comp.assign(n, CliqueControlVariate::kNotClique);
  cv.expected_aborts.assign(static_cast<std::size_t>(n) + 1, 0.0);
  if (n == 0) return cv;

  const Components comps = connected_components(g);
  std::vector<std::uint32_t> size(comps.count, 0);
  for (NodeId v = 0; v < n; ++v) ++size[comps.id[v]];
  // A connected component of size c is a clique iff every member has degree
  // c−1 (neighbor lists are deduplicated, so the count is exact).
  std::vector<std::uint8_t> is_clique(comps.count, 1);
  for (NodeId v = 0; v < n; ++v) {
    if (g.degree(v) + 1 != size[comps.id[v]]) is_clique[comps.id[v]] = 0;
  }
  // Size-1 components never abort: their contribution (both per sweep and
  // in expectation) is identically zero, so they stay unmarked.
  std::vector<std::uint32_t> dense(comps.count,
                                   CliqueControlVariate::kNotClique);
  for (std::uint32_t c = 0; c < comps.count; ++c) {
    if (is_clique[c] && size[c] >= 2) dense[c] = cv.num_clique_comps++;
  }
  if (cv.num_clique_comps == 0) return cv;
  for (NodeId v = 0; v < n; ++v) {
    const auto d = dense[comps.id[v]];
    if (d != CliqueControlVariate::kNotClique) {
      cv.clique_comp[v] = d;
      ++cv.clique_nodes;
    }
  }

  // E[aborts from one size-c clique at prefix m]
  //   = E[#members in prefix] − Pr[>= 1 member in prefix]
  //   = m·c/n − (1 − Π_{i=0..m−1} (n−c−i)/(n−i)),
  // accumulated per distinct size with a running hypergeometric product.
  std::map<std::uint32_t, std::uint32_t> count_by_size;
  for (std::uint32_t c = 0; c < comps.count; ++c) {
    if (dense[c] != CliqueControlVariate::kNotClique) ++count_by_size[size[c]];
  }
  const double dn = static_cast<double>(n);
  for (const auto& [c, count] : count_by_size) {
    double absent = 1.0;  // Pr[no member in prefix m], running over m
    const double dc = static_cast<double>(c);
    for (std::uint32_t m = 1; m <= n; ++m) {
      const double numer = dn - dc - static_cast<double>(m - 1);
      absent = numer <= 0.0 ? 0.0
                            : absent * numer / (dn - static_cast<double>(m - 1));
      const double per_comp =
          static_cast<double>(m) * dc / dn - (1.0 - absent);
      cv.expected_aborts[m] += static_cast<double>(count) * per_comp;
    }
  }
  return cv;
}

AdaptiveCurve estimate_conflict_curve_adaptive(const CsrGraph& g,
                                               const AdaptiveConfig& config,
                                               std::uint64_t seed) {
  return run_adaptive_curve(g, config, seed, nullptr);
}

AdaptiveCurve estimate_conflict_curve_adaptive_parallel(
    const CsrGraph& g, const AdaptiveConfig& config, std::uint64_t seed,
    ThreadPool& pool) {
  return run_adaptive_curve(g, config, seed, &pool);
}

AdaptivePoint estimate_round_point_adaptive(const CsrGraph& g,
                                            std::uint32_t m,
                                            const AdaptiveConfig& config,
                                            std::uint64_t seed) {
  validate_config(config);
  if (m == 0 || m > g.num_nodes()) {
    throw std::invalid_argument("estimate_round_point_adaptive: bad m");
  }
  RelabeledGraph rg = relabel(g, config.relabel);
  const CsrGraph& gr = rg.graph;
  const NodeId n = gr.num_nodes();

  CliqueControlVariate cv_store;
  const CliqueControlVariate* cv = nullptr;
  if (config.control_variates) {
    cv_store = build_clique_control_variate(gr);
    if (cv_store.active()) cv = &cv_store;
  }

  Rng root(seed);
  Rng rng = root.split();  // lane-0 semantics, as in the curve engine
  Rng::SampleScratch sample_scratch;
  SweepScratch sweep_scratch;
  std::vector<NodeId> active;
  std::vector<std::uint8_t> outcome;
  std::vector<std::uint32_t> comp_epoch;
  std::uint32_t epoch = 0;

  // Aborts of one round over `active` (commit order), CV-adjusted.
  const auto adjusted_round = [&](std::span<const NodeId> order) {
    round_outcome(gr, order, sweep_scratch, outcome);
    std::uint32_t committed = 0;
    for (const auto c : outcome) committed += (c == 1);
    double k = static_cast<double>(m - committed);
    if (cv != nullptr) {
      if (comp_epoch.size() < cv->num_clique_comps) {
        comp_epoch.resize(cv->num_clique_comps, 0);
      }
      if (++epoch == 0) {
        std::fill(comp_epoch.begin(), comp_epoch.end(), 0u);
        epoch = 1;
      }
      std::uint32_t nodes_hit = 0, comps_hit = 0;
      for (const NodeId v : order) {
        const auto c = cv->clique_comp[v];
        if (c != CliqueControlVariate::kNotClique) {
          ++nodes_hit;
          if (comp_epoch[c] != epoch) {
            comp_epoch[c] = epoch;
            ++comps_hit;
          }
        }
      }
      k += cv->expected_aborts[m] -
           static_cast<double>(nodes_hit - comps_hit);
    }
    return k;
  };

  AdaptivePoint out;
  const std::uint32_t per_sample = config.sweeps_per_sample();
  while (true) {
    const std::uint32_t want =
        out.samples == 0 ? config.min_samples : config.batch_samples;
    const std::uint32_t budget = (config.max_sweeps - out.rounds) / per_sample;
    const std::uint32_t batch = std::min(want, budget);
    if (batch == 0) break;
    for (std::uint32_t i = 0; i < batch; ++i) {
      rng.sample_without_replacement_into(n, m, sample_scratch, active);
      double k = adjusted_round(active);
      if (config.antithetic) {
        std::reverse(active.begin(), active.end());  // same set, reversed
        k = 0.5 * (k + adjusted_round(active));      // commit order
      }
      out.r.add(k / static_cast<double>(m));
      out.committed.add(static_cast<double>(m) - k);
    }
    out.samples += batch;
    out.rounds += batch * per_sample;
    if (out.samples >= 2 && out.r.ci95() <= config.epsilon) {
      out.converged = true;
      break;
    }
  }
  return out;
}

MuEstimate find_mu_adaptive(const CsrGraph& g, double rho,
                            const AdaptiveConfig& config,
                            std::uint64_t seed) {
  MuEstimate est;
  est.curve = estimate_conflict_curve_adaptive(g, config, seed);
  est.mu = find_mu(est.curve.curve, rho);
  return est;
}

MuEstimate find_mu_adaptive_parallel(const CsrGraph& g, double rho,
                                     const AdaptiveConfig& config,
                                     std::uint64_t seed, ThreadPool& pool) {
  MuEstimate est;
  est.curve = estimate_conflict_curve_adaptive_parallel(g, config, seed, pool);
  est.mu = find_mu(est.curve.curve, rho);
  return est;
}

}  // namespace optipar
