#include "rt/adaptive_executor.hpp"

#include <algorithm>
#include <utility>

#include "rt/checkpoint.hpp"
#include "support/telemetry/telemetry.hpp"

namespace optipar {

Trace run_adaptive(SpeculativeExecutor& executor, Controller& controller,
                   const AdaptiveRunConfig& config) {
  Trace trace;
  telemetry::RuntimeTelemetry* const tel = executor.telemetry();
  CheckpointManager* const cp = config.checkpoint;
  std::uint32_t m = controller.initial_m();
  std::uint32_t stalled = 0;  // consecutive zero-progress rounds
  bool degraded = false;
  std::uint32_t start_round = 0;
  if (cp != nullptr) {
    // Recovery ladder: newest valid snapshot → older generation → clean
    // start. On success the executor/controller hold round R's state, the
    // journal's first R records become the trace prefix, and the loop
    // resumes at round R exactly as the uninterrupted run would enter it.
    if (auto resume = cp->try_restore(executor, controller)) {
      trace.steps = std::move(resume->replayed);
      m = resume->loop.next_m;
      stalled = resume->loop.stalled;
      degraded = resume->loop.degraded;
      trace.degraded_at_step = resume->loop.degraded_at_step;
      start_round = static_cast<std::uint32_t>(resume->rounds_done);
    }
  }
  for (std::uint32_t round = start_round;
       round < config.max_rounds && !executor.done(); ++round) {
    if (config.before_round) config.before_round(executor);
    StepRecord rec;
    rec.step = round;
    rec.m = m;
    const RoundStats stats = executor.run_round(m);
    rec.launched = stats.launched;
    rec.committed = stats.committed;
    rec.aborted = stats.aborted;
    rec.retried = stats.retried;
    rec.quarantined = stats.quarantined;
    rec.injected = stats.injected;
    rec.degraded = degraded || executor.serial_degraded();
    rec.pending_after = static_cast<std::uint32_t>(
        std::min<std::size_t>(executor.pending(), UINT32_MAX));
    if (stats.first_error) {
      // Surface the round's first failure in the trace unconditionally —
      // an absorbed (retried/quarantined) error must never be invisible.
      rec.error = telemetry::describe_exception(stats.first_error);
    }
    trace.steps.push_back(rec);
    // Write-ahead: the round's record is durable before any snapshot (or
    // any throw below) can reference it.
    if (cp != nullptr) cp->on_round(round, rec);
    bool force_snapshot = false;

    // Progress = a task left the work-set for good: it committed, or it was
    // quarantined. Aborts and retries leave pending unchanged, and a round
    // that launched nothing (all tasks parked in backoff) is waiting, not
    // stalled.
    const bool progress = stats.committed > 0 || stats.quarantined > 0;
    if (stats.launched > 0 && !progress) {
      ++stalled;
    } else {
      stalled = 0;
    }
    if (config.watchdog_rounds > 0 && !degraded &&
        stalled >= config.watchdog_rounds) {
      // Livelock watchdog: speculation is churning without retiring work.
      // Serial execution cannot conflict, so cap the allocation at 1 — both
      // on the applied m and inside the controller, so its recurrences stop
      // proposing allocations we would refuse.
      degraded = true;
      trace.degraded_at_step = round;
      controller.clamp_max(1);
      stalled = 0;
      force_snapshot = true;  // a post-degradation crash must resume degraded
      if (tel != nullptr) {
        tel->emit({telemetry::EventKind::kWatchdogDegrade, 0,
                   executor.round_index(), round, 0, 0.0, 0.0,
                   "zero-progress watchdog forced m=1"});
      }
    } else if (degraded && stalled >= config.serial_grace) {
      // Even conflict-free serial rounds retire nothing: the work itself
      // cannot commit. Surface a structured diagnostic instead of spinning
      // for the remaining max_rounds.
      if (tel != nullptr) {
        tel->emit({telemetry::EventKind::kLivelock, 0,
                   executor.round_index(), stalled, executor.pending(), 0.0,
                   0.0, "no allocation can commit this work"});
      }
      LivelockError error(stalled, executor.pending(),
                          executor.dead_letters().size());
      // The stalling round's StepRecord is already in the trace (and the
      // journal); hand the whole partial trace to the catcher so the run
      // stays diagnosable from --trace-out.
      error.partial_trace = trace;
      throw error;
    }
    m = controller.observe(stats);
    if (degraded) m = 1;  // enforce the cap even on no-op controllers
    if (tel != nullptr) {
      // Decision event: the controller's next allocation against what it
      // just observed. x = observed conflict ratio r̄; y = r̄ − ρ (the
      // tracking error when a target ρ is configured, else r̄ itself).
      const double r = rec.conflict_ratio();
      tel->emit({telemetry::EventKind::kControllerDecision, 0,
                 executor.round_index(), m, stats.launched, r,
                 r - tel->target_rho(), controller.decision_note()});
    }
    if (cp != nullptr) {
      // Snapshot AFTER observe: the saved loop state carries the next
      // round's allocation, so a resume re-enters the loop exactly here.
      CheckpointManager::LoopState loop;
      loop.next_m = m;
      loop.stalled = stalled;
      loop.degraded = degraded;
      loop.degraded_at_step = trace.degraded_at_step;
      cp->maybe_snapshot(round, executor, controller, loop,
                         trace.steps.size(), force_snapshot);
    }
  }
  return trace;
}

}  // namespace optipar
