#include "rt/adaptive_executor.hpp"

#include <algorithm>

namespace optipar {

Trace run_adaptive(SpeculativeExecutor& executor, Controller& controller,
                   const AdaptiveRunConfig& config) {
  Trace trace;
  std::uint32_t m = controller.initial_m();
  for (std::uint32_t round = 0;
       round < config.max_rounds && !executor.done(); ++round) {
    if (config.before_round) config.before_round(executor);
    StepRecord rec;
    rec.step = round;
    rec.m = m;
    const RoundStats stats = executor.run_round(m);
    rec.launched = stats.launched;
    rec.committed = stats.committed;
    rec.aborted = stats.aborted;
    rec.pending_after = static_cast<std::uint32_t>(
        std::min<std::size_t>(executor.pending(), UINT32_MAX));
    trace.steps.push_back(rec);
    m = controller.observe(stats);
  }
  return trace;
}

}  // namespace optipar
