#include "rt/adaptive_executor.hpp"

#include <algorithm>
#include <utility>

#include "rt/checkpoint.hpp"
#include "support/telemetry/span_trace.hpp"
#include "support/telemetry/telemetry.hpp"
#include "support/timer.hpp"

namespace optipar {

AdaptiveRun::AdaptiveRun(SpeculativeExecutor& executor,
                         Controller& controller, AdaptiveRunConfig config)
    : executor_(executor),
      controller_(controller),
      config_(std::move(config)),
      tel_(executor.telemetry()),
      m_(controller.initial_m()) {
  if (CheckpointManager* const cp = config_.checkpoint; cp != nullptr) {
    // Recovery ladder: newest valid snapshot → older generation → clean
    // start. On success the executor/controller hold round R's state, the
    // journal's first R records become the trace prefix, and the loop
    // resumes at round R exactly as the uninterrupted run would enter it.
    if (auto resume = cp->try_restore(executor_, controller_)) {
      trace_.steps = std::move(resume->replayed);
      m_ = resume->loop.next_m;
      stalled_ = resume->loop.stalled;
      degraded_ = resume->loop.degraded;
      trace_.degraded_at_step = resume->loop.degraded_at_step;
      round_ = static_cast<std::uint32_t>(resume->rounds_done);
      resumed_ = true;
    }
  }
}

bool AdaptiveRun::finished() const {
  return round_ >= config_.max_rounds || executor_.done();
}

void AdaptiveRun::run_snapshot(CheckpointManager& cp, std::uint32_t round,
                               std::uint32_t next_m, bool force) {
  CheckpointManager::LoopState loop;
  loop.next_m = next_m;
  loop.stalled = stalled_;
  loop.degraded = degraded_;
  loop.degraded_at_step = trace_.degraded_at_step;
  telemetry::SpanCollector* const spans =
      tel_ != nullptr ? tel_->spans() : nullptr;
  const std::uint32_t written_before = cp.snapshots_written();
  const std::uint64_t t0 = spans != nullptr ? monotonic_ns() : 0;
  cp.maybe_snapshot(round, executor_, controller_, loop,
                    trace_.steps.size(), force);
  if (spans != nullptr && cp.snapshots_written() != written_before) {
    telemetry::SpanRecord rec;
    rec.name = "checkpoint";
    rec.tid = 0;
    rec.start_ns = t0;
    rec.end_ns = monotonic_ns();
    rec.a = round;
    rec.b = cp.snapshots_written();
    spans->record(rec);
  }
}

void AdaptiveRun::snapshot_boundary(bool force) {
  CheckpointManager* const cp = config_.checkpoint;
  if (cp == nullptr) return;
  // `round_` is the round the NEXT step would run; the snapshot covers the
  // `trace_.steps.size()` rounds already journaled.
  run_snapshot(*cp, round_ == 0 ? 0 : round_ - 1, m_, force);
}

void AdaptiveRun::checkpoint_now() { snapshot_boundary(/*force=*/true); }

void AdaptiveRun::check_interrupt() {
  const bool cancelled =
      config_.cancel != nullptr &&
      config_.cancel->load(std::memory_order_acquire);
  const bool deadline = !cancelled && config_.deadline.expired();
  if (!cancelled && !deadline) return;
  if (tel_ != nullptr && tel_->spans() != nullptr) {
    tel_->spans()->instant(cancelled ? "cancelled" : "deadline", 0,
                           trace_.steps.size());
  }
  // Force one final snapshot so the interrupted job resumes from this
  // exact boundary, then unwind with the partial trace attached.
  snapshot_boundary(/*force=*/true);
  JobInterrupted error(cancelled ? JobInterrupted::Reason::kCancelled
                                 : JobInterrupted::Reason::kDeadline,
                       trace_.steps.size());
  error.partial_trace = trace_;
  throw error;
}

void AdaptiveRun::ensure_certified() {
  if (!config_.certifier || certificate_.has_value()) return;
  certificate_ = verify::run_certifier(config_.certifier, tel_,
                                       trace_.steps.size());
}

bool AdaptiveRun::step() {
  if (finished()) {
    // The first step() past the drain is the certification point: the
    // executor is quiescent, every commit is visible, and no further
    // round can change the answer.
    ensure_certified();
    return false;
  }
  check_interrupt();
  CheckpointManager* const cp = config_.checkpoint;
  const std::uint32_t round = round_;
  if (config_.before_round) config_.before_round(executor_);
  StepRecord rec;
  rec.step = round;
  rec.m = m_;
  const RoundStats stats = executor_.run_round(m_);
  rec.launched = stats.launched;
  rec.committed = stats.committed;
  rec.aborted = stats.aborted;
  rec.retried = stats.retried;
  rec.quarantined = stats.quarantined;
  rec.injected = stats.injected;
  rec.degraded = degraded_ || executor_.serial_degraded();
  rec.pending_after = static_cast<std::uint32_t>(
      std::min<std::size_t>(executor_.pending(), UINT32_MAX));
  if (stats.first_error) {
    // Surface the round's first failure in the trace unconditionally —
    // an absorbed (retried/quarantined) error must never be invisible.
    rec.error = telemetry::describe_exception(stats.first_error);
  }
  trace_.steps.push_back(rec);
  // Write-ahead: the round's record is durable before any snapshot (or
  // any throw below) can reference it.
  if (cp != nullptr) cp->on_round(round, rec);
  bool force_snapshot = false;

  // Progress = a task left the work-set for good: it committed, or it was
  // quarantined. Aborts and retries leave pending unchanged, and a round
  // that launched nothing (all tasks parked in backoff) is waiting, not
  // stalled.
  const bool progress = stats.committed > 0 || stats.quarantined > 0;
  if (stats.launched > 0 && !progress) {
    ++stalled_;
  } else {
    stalled_ = 0;
  }
  if (config_.watchdog_rounds > 0 && !degraded_ &&
      stalled_ >= config_.watchdog_rounds) {
    // Livelock watchdog: speculation is churning without retiring work.
    // Serial execution cannot conflict, so cap the allocation at 1 — both
    // on the applied m and inside the controller, so its recurrences stop
    // proposing allocations we would refuse.
    degraded_ = true;
    trace_.degraded_at_step = round;
    controller_.clamp_max(1);
    stalled_ = 0;
    force_snapshot = true;  // a post-degradation crash must resume degraded
    if (tel_ != nullptr) {
      tel_->emit({telemetry::EventKind::kWatchdogDegrade, 0,
                  executor_.round_index(), round, 0, 0.0, 0.0,
                  "zero-progress watchdog forced m=1"});
      if (tel_->spans() != nullptr) {
        tel_->spans()->instant("watchdog-degrade", 0, round);
      }
    }
  } else if (degraded_ && stalled_ >= config_.serial_grace) {
    // Even conflict-free serial rounds retire nothing: the work itself
    // cannot commit. Surface a structured diagnostic instead of spinning
    // for the remaining max_rounds.
    if (tel_ != nullptr) {
      tel_->emit({telemetry::EventKind::kLivelock, 0,
                  executor_.round_index(), stalled_, executor_.pending(),
                  0.0, 0.0, "no allocation can commit this work"});
      if (tel_->spans() != nullptr) {
        tel_->spans()->instant("livelock", 0, stalled_,
                               executor_.pending());
      }
    }
    LivelockError error(stalled_, executor_.pending(),
                        executor_.dead_letters().size());
    // The stalling round's StepRecord is already in the trace (and the
    // journal); hand the whole partial trace to the catcher so the run
    // stays diagnosable from --trace-out.
    error.partial_trace = trace_;
    throw error;
  }
  m_ = controller_.observe(stats);
  if (degraded_) m_ = 1;  // enforce the cap even on no-op controllers
  if (tel_ != nullptr) {
    // Decision event: the controller's next allocation against what it
    // just observed. x = observed conflict ratio r̄; y = r̄ − ρ (the
    // tracking error when a target ρ is configured, else r̄ itself).
    const double r = rec.conflict_ratio();
    tel_->emit({telemetry::EventKind::kControllerDecision, 0,
                executor_.round_index(), m_, stats.launched, r,
                r - tel_->target_rho(), controller_.decision_note()});
  }
  if (cp != nullptr) {
    // Snapshot AFTER observe: the saved loop state carries the next
    // round's allocation, so a resume re-enters the loop exactly here.
    run_snapshot(*cp, round, m_, force_snapshot);
  }
  round_ = round + 1;
  return true;
}

Trace run_adaptive(SpeculativeExecutor& executor, Controller& controller,
                   const AdaptiveRunConfig& config) {
  AdaptiveRun run(executor, controller, config);
  while (run.step()) {
  }
  return run.take_trace();
}

}  // namespace optipar
