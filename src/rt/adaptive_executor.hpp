// The paper's full closed loop on the real runtime: a Controller decides
// each round's allocation m_t, the SpeculativeExecutor runs the round, and
// the observed conflict ratio feeds back. This is the "integration into the
// Galois system" the paper's conclusion describes, realized on our
// from-scratch substrate.
//
// The loop also hosts the livelock watchdog (DESIGN.md §8): speculation can
// wedge — every round launches, every iteration aborts — when the conflict
// structure is denser than any allocation the controller can reach (e.g. a
// clique bundle under priority-wins churn, or a pathological operator).
// After `watchdog_rounds` consecutive zero-progress rounds the loop
// degrades gracefully: it caps the controller at m = 1 (serial execution is
// conflict-free by construction, so if the workload CAN commit, it will).
// If even serial rounds make no progress for `serial_grace` more rounds,
// the run aborts with a structured LivelockError instead of spinning
// forever.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "control/controller.hpp"
#include "rt/spec_executor.hpp"
#include "sim/trace.hpp"

namespace optipar {

class CheckpointManager;

/// Thrown by run_adaptive when even forced-serial execution makes no
/// progress — the workload is genuinely stuck (an operator that always
/// fails without a FailurePolicy to quarantine it, or a task set whose
/// tasks can never commit). Carries the diagnostic state at the stall.
class LivelockError final : public std::runtime_error {
 public:
  LivelockError(std::uint32_t stalled_rounds, std::size_t pending,
                std::size_t quarantined)
      : std::runtime_error(
            "livelock: " + std::to_string(stalled_rounds) +
            " consecutive zero-progress rounds at m=1 (pending=" +
            std::to_string(pending) +
            ", quarantined=" + std::to_string(quarantined) +
            "); no allocation can commit this work"),
        stalled_rounds_(stalled_rounds),
        pending_(pending),
        quarantined_(quarantined) {}

  [[nodiscard]] std::uint32_t stalled_rounds() const noexcept {
    return stalled_rounds_;
  }
  [[nodiscard]] std::size_t pending() const noexcept { return pending_; }
  [[nodiscard]] std::size_t quarantined() const noexcept {
    return quarantined_;
  }

  /// Everything the run recorded up to (and including) the stalling round.
  /// run_adaptive fills this before unwinding so a livelocked run is still
  /// diagnosable from --trace-out: the final round's StepRecord carries the
  /// stall, and the kLivelock telemetry event was emitted before the throw.
  Trace partial_trace;

 private:
  std::uint32_t stalled_rounds_;
  std::size_t pending_;
  std::size_t quarantined_;
};

struct AdaptiveRunConfig {
  std::uint32_t max_rounds = 1'000'000;  ///< safety stop
  /// Consecutive zero-progress rounds (launched > 0 but nothing committed
  /// or quarantined) before the watchdog forces m = 1. Zero disables it.
  std::uint32_t watchdog_rounds = 12;
  /// Additional zero-progress rounds tolerated AFTER degradation before
  /// the run aborts with LivelockError.
  std::uint32_t serial_grace = 8;
  /// Invoked before every round; applications use it to extend the lock
  /// table over items allocated by the previous round's commits (e.g.
  /// freshly created mesh triangles).
  std::function<void(SpeculativeExecutor&)> before_round;
  /// Crash-consistent checkpointing (DESIGN.md §11); non-owning, nullptr
  /// disables. With a manager attached, run_adaptive first walks the
  /// recovery ladder (resuming mid-run when a valid snapshot exists), then
  /// journals every round's StepRecord write-ahead and snapshots on the
  /// manager's cadence — plus immediately when the livelock watchdog
  /// degrades the run, so a post-degradation crash resumes degraded. The
  /// schedule itself is unaffected: with no snapshot on disk the trace is
  /// byte-identical to an uncheckpointed run.
  CheckpointManager* checkpoint = nullptr;
};

/// Drive the executor to completion under the controller's allocation
/// policy; returns the per-round trace (same Trace type the simulator
/// produces, so all analysis code is shared).
[[nodiscard]] Trace run_adaptive(SpeculativeExecutor& executor,
                                 Controller& controller,
                                 const AdaptiveRunConfig& config = {});

}  // namespace optipar
