// The paper's full closed loop on the real runtime: a Controller decides
// each round's allocation m_t, the SpeculativeExecutor runs the round, and
// the observed conflict ratio feeds back. This is the "integration into the
// Galois system" the paper's conclusion describes, realized on our
// from-scratch substrate.
#pragma once

#include <cstdint>

#include "control/controller.hpp"
#include "rt/spec_executor.hpp"
#include "sim/trace.hpp"

namespace optipar {

struct AdaptiveRunConfig {
  std::uint32_t max_rounds = 1'000'000;  ///< safety stop
  /// Invoked before every round; applications use it to extend the lock
  /// table over items allocated by the previous round's commits (e.g.
  /// freshly created mesh triangles).
  std::function<void(SpeculativeExecutor&)> before_round;
};

/// Drive the executor to completion under the controller's allocation
/// policy; returns the per-round trace (same Trace type the simulator
/// produces, so all analysis code is shared).
[[nodiscard]] Trace run_adaptive(SpeculativeExecutor& executor,
                                 Controller& controller,
                                 const AdaptiveRunConfig& config = {});

}  // namespace optipar
