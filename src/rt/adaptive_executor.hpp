// The paper's full closed loop on the real runtime: a Controller decides
// each round's allocation m_t, the SpeculativeExecutor runs the round, and
// the observed conflict ratio feeds back. This is the "integration into the
// Galois system" the paper's conclusion describes, realized on our
// from-scratch substrate.
//
// Two entry points share one implementation:
//
//  * run_adaptive() — drive the loop to completion (the one-shot CLI form).
//  * AdaptiveRun    — the same loop as a RE-ENTRANT, job-scoped stepper
//    (DESIGN.md §13): construct it, then call step() once per round. The
//    serve daemon interleaves many AdaptiveRuns over one thread pool by
//    stepping them round-robin; every boundary between step() calls is a
//    cancellation point and a legal instant to checkpoint. run_adaptive is
//    literally `while (run.step()) {}`, so both forms execute byte-
//    identically.
//
// The loop also hosts the livelock watchdog (DESIGN.md §8): speculation can
// wedge — every round launches, every iteration aborts — when the conflict
// structure is denser than any allocation the controller can reach (e.g. a
// clique bundle under priority-wins churn, or a pathological operator).
// After `watchdog_rounds` consecutive zero-progress rounds the loop
// degrades gracefully: it caps the controller at m = 1 (serial execution is
// conflict-free by construction, so if the workload CAN commit, it will).
// If even serial rounds make no progress for `serial_grace` more rounds,
// the run aborts with a structured LivelockError instead of spinning
// forever.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>

#include "control/controller.hpp"
#include "rt/spec_executor.hpp"
#include "sim/trace.hpp"
#include "support/deadline.hpp"
#include "verify/certifier.hpp"

namespace optipar {

class CheckpointManager;

/// Thrown by run_adaptive when even forced-serial execution makes no
/// progress — the workload is genuinely stuck (an operator that always
/// fails without a FailurePolicy to quarantine it, or a task set whose
/// tasks can never commit). Carries the diagnostic state at the stall.
class LivelockError final : public std::runtime_error {
 public:
  LivelockError(std::uint32_t stalled_rounds, std::size_t pending,
                std::size_t quarantined)
      : std::runtime_error(
            "livelock: " + std::to_string(stalled_rounds) +
            " consecutive zero-progress rounds at m=1 (pending=" +
            std::to_string(pending) +
            ", quarantined=" + std::to_string(quarantined) +
            "); no allocation can commit this work"),
        stalled_rounds_(stalled_rounds),
        pending_(pending),
        quarantined_(quarantined) {}

  [[nodiscard]] std::uint32_t stalled_rounds() const noexcept {
    return stalled_rounds_;
  }
  [[nodiscard]] std::size_t pending() const noexcept { return pending_; }
  [[nodiscard]] std::size_t quarantined() const noexcept {
    return quarantined_;
  }

  /// Everything the run recorded up to (and including) the stalling round.
  /// run_adaptive fills this before unwinding so a livelocked run is still
  /// diagnosable from --trace-out: the final round's StepRecord carries the
  /// stall, and the kLivelock telemetry event was emitted before the throw.
  Trace partial_trace;

 private:
  std::uint32_t stalled_rounds_;
  std::size_t pending_;
  std::size_t quarantined_;
};

/// Thrown at a round boundary when the run's deadline expired or its cancel
/// flag was raised (DESIGN.md §13). Before the throw the loop forces one
/// final snapshot when a CheckpointManager is attached, so an interrupted
/// job is resumable from the exact interruption point. Like LivelockError,
/// the partial trace rides along so the run stays diagnosable.
class JobInterrupted final : public std::runtime_error {
 public:
  enum class Reason : std::uint8_t {
    kDeadline,   ///< JobDeadline expired
    kCancelled,  ///< the cancel flag was raised
  };

  JobInterrupted(Reason reason, std::uint64_t rounds_done)
      : std::runtime_error(
            std::string(reason == Reason::kDeadline
                            ? "deadline exceeded"
                            : "cancelled") +
            " after " + std::to_string(rounds_done) + " rounds"),
        reason_(reason),
        rounds_done_(rounds_done) {}

  [[nodiscard]] Reason reason() const noexcept { return reason_; }
  [[nodiscard]] std::uint64_t rounds_done() const noexcept {
    return rounds_done_;
  }

  Trace partial_trace;

 private:
  Reason reason_;
  std::uint64_t rounds_done_;
};

struct AdaptiveRunConfig {
  std::uint32_t max_rounds = 1'000'000;  ///< safety stop
  /// Consecutive zero-progress rounds (launched > 0 but nothing committed
  /// or quarantined) before the watchdog forces m = 1. Zero disables it.
  std::uint32_t watchdog_rounds = 12;
  /// Additional zero-progress rounds tolerated AFTER degradation before
  /// the run aborts with LivelockError.
  std::uint32_t serial_grace = 8;
  /// Invoked before every round; applications use it to extend the lock
  /// table over items allocated by the previous round's commits (e.g.
  /// freshly created mesh triangles).
  std::function<void(SpeculativeExecutor&)> before_round;
  /// Crash-consistent checkpointing (DESIGN.md §11); non-owning, nullptr
  /// disables. With a manager attached, the loop first walks the recovery
  /// ladder (resuming mid-run when a valid snapshot exists), then journals
  /// every round's StepRecord write-ahead and snapshots on the manager's
  /// cadence — plus immediately when the livelock watchdog degrades the
  /// run, so a post-degradation crash resumes degraded. The schedule
  /// itself is unaffected: with no snapshot on disk the trace is
  /// byte-identical to an uncheckpointed run.
  CheckpointManager* checkpoint = nullptr;
  /// Wall-clock budget, checked at every round boundary (DESIGN.md §13).
  /// Expiry raises JobInterrupted{kDeadline} after a forced snapshot.
  /// The default-constructed deadline never expires.
  JobDeadline deadline;
  /// Cooperative cancellation flag (non-owning; nullptr disables). Raised
  /// by another thread, observed at the next round boundary: the loop
  /// forces a snapshot and raises JobInterrupted{kCancelled}.
  const std::atomic<bool>* cancel = nullptr;
  /// Post-run result certification (DESIGN.md §16; empty disables). Runs
  /// exactly once, at the first step() that observes the finished state —
  /// never on the round hot path — through verify::run_certifier, so the
  /// verdict lands in telemetry (kCertify event + "certify" span). The
  /// certificate is NOT escalated here: step() stays non-throwing on a
  /// refuted answer and hosts read certificate() to decide (the CLI exits
  /// 8, the daemon fails the job).
  verify::Certifier certifier;
};

/// The closed loop as a job-scoped stepper. The constructor walks the
/// recovery ladder (when a CheckpointManager is attached); each step()
/// checks the deadline/cancel interruption points, runs exactly one
/// executor round, feeds the controller, journals, and snapshots — the
/// identical sequence run_adaptive always performed. A host that owns
/// several AdaptiveRuns may interleave their step() calls freely: all
/// per-run state lives here, not in statics or the executor.
class AdaptiveRun {
 public:
  AdaptiveRun(SpeculativeExecutor& executor, Controller& controller,
              AdaptiveRunConfig config = {});

  AdaptiveRun(const AdaptiveRun&) = delete;
  AdaptiveRun& operator=(const AdaptiveRun&) = delete;

  /// Run one round. Returns false — without running anything — once the
  /// loop is finished (work drained or max_rounds reached). Throws
  /// LivelockError / JobInterrupted exactly as run_adaptive does.
  bool step();

  [[nodiscard]] bool finished() const;
  /// True when the constructor resumed from a snapshot rather than
  /// starting clean.
  [[nodiscard]] bool resumed() const noexcept { return resumed_; }
  /// The round index the next step() would execute.
  [[nodiscard]] std::uint32_t next_round() const noexcept { return round_; }

  [[nodiscard]] const Trace& trace() const noexcept { return trace_; }
  [[nodiscard]] Trace take_trace() noexcept { return std::move(trace_); }

  /// Force a snapshot of the current boundary state (no-op without a
  /// CheckpointManager). The serve daemon calls this when shutting down
  /// with jobs still active: the job is abandoned mid-run but resumes
  /// from this exact round after restart.
  void checkpoint_now();

  /// Run the configured certifier now if it has not run yet (idempotent;
  /// no-op without a certifier). step() calls this automatically when it
  /// observes the finished state; hosts that stop stepping early — e.g.
  /// on max_rounds — may call it directly.
  void ensure_certified();
  /// The post-run certificate: empty until the certifier has run (no
  /// certifier configured, or the run has not finished).
  [[nodiscard]] const std::optional<verify::Certificate>& certificate()
      const noexcept {
    return certificate_;
  }

 private:
  /// Deadline/cancel interruption point (top of step()).
  void check_interrupt();
  /// Snapshot the current boundary state (force = bypass the cadence).
  void snapshot_boundary(bool force);
  /// maybe_snapshot with a retroactive "checkpoint" span when a snapshot
  /// was actually written (checkpoint stalls must show in the timeline).
  void run_snapshot(CheckpointManager& cp, std::uint32_t round,
                    std::uint32_t next_m, bool force);

  SpeculativeExecutor& executor_;
  Controller& controller_;
  AdaptiveRunConfig config_;
  Trace trace_;
  telemetry::RuntimeTelemetry* tel_ = nullptr;
  std::uint32_t m_ = 0;
  std::uint32_t stalled_ = 0;  ///< consecutive zero-progress rounds
  bool degraded_ = false;
  bool resumed_ = false;
  std::uint32_t round_ = 0;  ///< next round to execute
  std::optional<verify::Certificate> certificate_;
};

/// Drive the executor to completion under the controller's allocation
/// policy; returns the per-round trace (same Trace type the simulator
/// produces, so all analysis code is shared).
[[nodiscard]] Trace run_adaptive(SpeculativeExecutor& executor,
                                 Controller& controller,
                                 const AdaptiveRunConfig& config = {});

}  // namespace optipar
