#include "rt/item_lock.hpp"

#include <cassert>
#include <stdexcept>

namespace optipar {

LockManager::LockManager(std::size_t items) { grow(items); }

void LockManager::grow(std::size_t items) {
  if (items <= size_) return;
  auto fresh = std::make_unique<Padded<std::atomic<std::uint32_t>>[]>(items);
  for (std::size_t i = 0; i < size_; ++i) {
    fresh[i].value.store(owners_[i].value.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  }
  for (std::size_t i = size_; i < items; ++i) {
    fresh[i].value.store(kFree, std::memory_order_relaxed);
  }
  owners_ = std::move(fresh);
  size_ = items;
}

bool LockManager::try_acquire(std::uint32_t item, std::uint32_t iter) {
  if (item >= size_) {
    throw std::out_of_range("LockManager::try_acquire: unknown item");
  }
  auto& owner = owners_[item].value;
  std::uint32_t expected = kFree;
  if (owner.compare_exchange_strong(expected, iter,
                                    std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
    return true;
  }
  if (expected == iter) return true;  // re-entrant acquire
  if (contention_ != nullptr) {
    contention_->fetch_add(1, std::memory_order_relaxed);
  }
  return false;
}

std::uint32_t LockManager::owner(std::uint32_t item) const {
  if (item >= size_) {
    throw std::out_of_range("LockManager::owner: unknown item");
  }
  return owners_[item].value.load(std::memory_order_acquire);
}

void LockManager::release(std::uint32_t item, std::uint32_t iter) {
  if (item >= size_) {
    throw std::out_of_range("LockManager::release: unknown item");
  }
  auto& owner = owners_[item].value;
  assert(owner.load(std::memory_order_relaxed) == iter &&
         "releasing an item not owned by this iteration");
  (void)iter;
  owner.store(kFree, std::memory_order_release);
}

std::size_t LockManager::owned_count() const {
  std::size_t owned = 0;
  for (std::size_t i = 0; i < size_; ++i) {
    if (owners_[i].value.load(std::memory_order_acquire) != kFree) ++owned;
  }
  return owned;
}

bool LockManager::all_free() const {
  for (std::size_t i = 0; i < size_; ++i) {
    if (owners_[i].value.load(std::memory_order_acquire) != kFree) {
      return false;
    }
  }
  return true;
}

}  // namespace optipar
