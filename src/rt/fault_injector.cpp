#include "rt/fault_injector.hpp"

#include <algorithm>
#include <thread>

namespace optipar {

namespace {

/// SplitMix64 finalizer — the same mixer rng.hpp uses for seeding, applied
/// here as a stateless PRF over the (seed, site, a, b) tuple.
constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr double to_unit(std::uint64_t x) noexcept {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace

const char* fault_site_name(FaultSite site) noexcept {
  switch (site) {
    case FaultSite::kOperatorThrow: return "operator-throw";
    case FaultSite::kOperatorDelay: return "operator-delay";
    case FaultSite::kRollbackInverse: return "rollback-inverse";
    case FaultSite::kLockAcquire: return "lock-acquire";
    case FaultSite::kPoolLane: return "pool-lane";
  }
  return "unknown";
}

InjectedFault::InjectedFault(FaultSite site, std::uint64_t a, std::uint64_t b)
    : std::runtime_error(std::string("injected fault [") +
                         fault_site_name(site) + "] at (" +
                         std::to_string(a) + ", " + std::to_string(b) + ")"),
      site_(site) {}

void FaultInjector::set_rate(FaultSite site, double rate) noexcept {
  rates_[static_cast<std::size_t>(site)] = std::clamp(rate, 0.0, 1.0);
}

void FaultInjector::set_all_rates(double rate) noexcept {
  for (std::size_t s = 0; s < kFaultSiteCount; ++s) {
    set_rate(static_cast<FaultSite>(s), rate);
  }
}

double FaultInjector::rate(FaultSite site) const noexcept {
  return rates_[static_cast<std::size_t>(site)];
}

std::uint64_t FaultInjector::mix(FaultSite site, std::uint64_t a,
                                 std::uint64_t b) const noexcept {
  // Three mixing rounds decorrelate the structured inputs (small dense task
  // ids and attempt counters) before thresholding.
  std::uint64_t z = seed_ + 0x9e3779b97f4a7c15ULL *
                                (static_cast<std::uint64_t>(site) + 1);
  z = mix64(z ^ mix64(a + 0x165667b19e3779f9ULL));
  z = mix64(z ^ mix64(b + 0x27d4eb2f165667c5ULL));
  return z;
}

bool FaultInjector::should_fire(FaultSite site, std::uint64_t a,
                                std::uint64_t b) const noexcept {
  const double r = rates_[static_cast<std::size_t>(site)];
  if (r <= 0.0) return false;
  if (r >= 1.0) return true;
  return to_unit(mix(site, a, b)) < r;
}

void FaultInjector::maybe_throw(FaultSite site, std::uint64_t a,
                                std::uint64_t b) {
  if (!should_fire(site, a, b)) return;
  fired_[static_cast<std::size_t>(site)].fetch_add(1,
                                                   std::memory_order_relaxed);
  if (on_fire_) on_fire_(site, a, b);
  throw InjectedFault(site, a, b);
}

void FaultInjector::maybe_stall(FaultSite site, std::uint64_t a,
                                std::uint64_t b) noexcept {
  if (!should_fire(site, a, b)) return;
  fired_[static_cast<std::size_t>(site)].fetch_add(1,
                                                   std::memory_order_relaxed);
  if (on_fire_) on_fire_(site, a, b);
  // Bounded stall: 1–64 yields, length drawn from the same PRF stream so
  // the delay profile replays under a fixed seed. A stall is observable
  // only as latency — it may reshuffle multi-lane conflict timing but can
  // never wedge a round (no locks are held across it by this call).
  const std::uint64_t yields = 1 + (mix(site, a ^ 0x5bf0ULL, b) & 63);
  for (std::uint64_t i = 0; i < yields; ++i) std::this_thread::yield();
}

void FaultInjector::count_fired(FaultSite site) noexcept {
  fired_[static_cast<std::size_t>(site)].fetch_add(
      1, std::memory_order_relaxed);
  if (on_fire_) on_fire_(site, 0, 0);
}

std::uint64_t FaultInjector::fired(FaultSite site) const noexcept {
  return fired_[static_cast<std::size_t>(site)].load(
      std::memory_order_relaxed);
}

std::uint64_t FaultInjector::total_fired() const noexcept {
  std::uint64_t total = 0;
  for (const auto& f : fired_) total += f.load(std::memory_order_relaxed);
  return total;
}

}  // namespace optipar
