// Deterministic fault injection for the speculative runtime (DESIGN.md §8).
// Chaos runs must replay byte-identically under a fixed seed — the same
// property the golden-trace tests pin for the fault-free schedule — so an
// injection decision may not depend on thread interleaving or wall-clock
// time. Every decision is therefore a *stateless* PRF evaluation over
//   (seed, site, a, b)
// where (a, b) identify the injection point stably across runs (typically
// the task id and its attempt number). Two runs with the same seed and the
// same per-task attempt history fire exactly the same faults, regardless of
// lane count or scheduling; the only mutable state is the per-site fired
// counters, which are reporting-only.
//
// Sites mirror the runtime's failure surface:
//   kOperatorThrow   — the user operator throws a real (non-Abort) error
//   kOperatorDelay   — the task stalls mid-operator (slow/hung iteration)
//   kRollbackInverse — an undo inverse throws during rollback
//   kLockAcquire     — an abstract-lock acquire stalls before acquiring
//   kPoolLane        — a fork-join pool lane dies outside any task
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

namespace optipar {

enum class FaultSite : std::uint32_t {
  kOperatorThrow = 0,
  kOperatorDelay,
  kRollbackInverse,
  kLockAcquire,
  kPoolLane,
};
inline constexpr std::size_t kFaultSiteCount = 5;

[[nodiscard]] const char* fault_site_name(FaultSite site) noexcept;

/// The exception every throwing site raises. Deliberately NOT derived from
/// AbortIteration: the runtime must treat it as an application failure
/// (retry/quarantine), never as a benign speculative conflict.
class InjectedFault : public std::runtime_error {
 public:
  InjectedFault(FaultSite site, std::uint64_t a, std::uint64_t b);

  [[nodiscard]] FaultSite site() const noexcept { return site_; }

 private:
  FaultSite site_;
};

class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed) noexcept : seed_(seed) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Set one site's firing probability (clamped to [0, 1]).
  void set_rate(FaultSite site, double rate) noexcept;
  /// Set every site's firing probability at once.
  void set_all_rates(double rate) noexcept;
  [[nodiscard]] double rate(FaultSite site) const noexcept;

  /// The pure decision function: does `site` fire at point (a, b)?
  /// Stateless and thread-safe; identical across runs with the same seed.
  [[nodiscard]] bool should_fire(FaultSite site, std::uint64_t a,
                                 std::uint64_t b) const noexcept;

  /// Throw InjectedFault iff the site fires at (a, b); counts the firing.
  void maybe_throw(FaultSite site, std::uint64_t a, std::uint64_t b);

  /// Stall (bounded, deterministic-length yield loop) iff the site fires
  /// at (a, b); counts the firing. Never throws.
  void maybe_stall(FaultSite site, std::uint64_t a,
                   std::uint64_t b) noexcept;

  /// Record a firing decided externally via should_fire (e.g. an armed
  /// rollback inverse that actually ran).
  void count_fired(FaultSite site) noexcept;

  /// Telemetry hook (DESIGN.md §10): invoked on every counted firing with
  /// the site and its (a, b) injection point ((0, 0) for count_fired, which
  /// has no point identity). MUST be thread-safe — firings happen on pool
  /// lanes — and must not throw. Empty function detaches. Never alters the
  /// firing decision, so chaos replays are unaffected.
  void set_fire_hook(
      std::function<void(FaultSite, std::uint64_t, std::uint64_t)> hook) {
    on_fire_ = std::move(hook);
  }

  [[nodiscard]] std::uint64_t fired(FaultSite site) const noexcept;
  [[nodiscard]] std::uint64_t total_fired() const noexcept;

 private:
  [[nodiscard]] std::uint64_t mix(FaultSite site, std::uint64_t a,
                                  std::uint64_t b) const noexcept;

  std::uint64_t seed_;
  std::array<double, kFaultSiteCount> rates_{};
  std::array<std::atomic<std::uint64_t>, kFaultSiteCount> fired_{};
  std::function<void(FaultSite, std::uint64_t, std::uint64_t)> on_fire_;
};

}  // namespace optipar
