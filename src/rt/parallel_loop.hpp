// The one-call entry point a downstream user starts with: run an amorphous
// data-parallel loop (Galois-style for_each) over an initial work-set with
// conflict detection, rollback, and the paper's adaptive processor
// allocation — all defaulted. Equivalent to wiring SpeculativeExecutor +
// HybridController + run_adaptive by hand.
#pragma once

#include <cstdint>
#include <span>

#include "control/hybrid.hpp"
#include "rt/adaptive_executor.hpp"
#include "rt/spec_executor.hpp"
#include "sim/trace.hpp"
#include "support/thread_pool.hpp"

namespace optipar {

struct ForEachOptions {
  std::size_t items = 0;            ///< abstract-lock table size (required)
  ControllerParams controller{};    ///< Algorithm 1 tunables
  std::uint64_t seed = 1;           ///< work-selection randomness
  WorklistPolicy policy = WorklistPolicy::kRandom;
  ArbitrationPolicy arbitration = ArbitrationPolicy::kAbortSelf;
  /// Task -> scheduling/arbitration priority (required for
  /// WorklistPolicy::kPriority; optional for kPriorityWins arbitration).
  std::function<std::uint64_t(TaskId)> priority;
  std::uint32_t max_rounds = 1'000'000;
  /// Called before each round (e.g. to grow the lock table).
  std::function<void(SpeculativeExecutor&)> before_round;
};

/// Execute `op` speculatively over `initial` (plus whatever commits push)
/// until the work-set drains, with the hybrid controller choosing each
/// round's parallelism. Returns the per-round trace.
inline Trace for_each_adaptive(ThreadPool& pool,
                               std::span<const TaskId> initial,
                               TaskOperator op, const ForEachOptions& options) {
  SpeculativeExecutor executor(pool, options.items, std::move(op),
                               options.seed, options.policy,
                               options.arbitration);
  if (options.priority) executor.set_priority_function(options.priority);
  executor.push_initial(initial);
  HybridController controller(options.controller);
  AdaptiveRunConfig config;
  config.max_rounds = options.max_rounds;
  config.before_round = options.before_round;
  return run_adaptive(executor, controller, config);
}

}  // namespace optipar
