// Crash-consistent checkpoint/restore for adaptive runs (DESIGN.md §11).
//
// Two cooperating artifacts live in the checkpoint directory:
//
//   journal.bin   — the write-ahead round journal: one framed, CRC-guarded
//                   StepRecord per completed round, appended and fsynced
//                   BEFORE any snapshot covering that round is written.
//   snap-a.bin /  — alternating full-state snapshots (versioned, CRC'd,
//   snap-b.bin      atomically renamed into place). A snapshot captures the
//                   executor (work-set, RNG streams, failure ledgers), the
//                   controller (via Controller::save_state), and the
//                   adaptive loop's own state (next m, watchdog counters).
//
// Recovery ladder (try_restore): the newest structurally valid snapshot
// whose run identity (graph fingerprint, controller name, executor shape)
// matches and whose rounds are fully covered by the journal wins; a corrupt
// or mismatched candidate falls back to the OTHER generation; if both fail,
// the run starts clean (journal rewound to empty). A damaged checkpoint is
// therefore always *detected* and degraded past — never silently loaded.
//
// Byte-identity contract: a run killed at any instant and resumed through
// try_restore replays rounds R..N exactly as the uninterrupted run executed
// them, and the first R journal records ARE the uninterrupted run's first R
// StepRecords — so the resumed trace equals the uninterrupted trace, byte
// for byte. The replay half of the contract is scoped to the runtime's
// deterministic single-lane configuration (one pool thread): multi-lane
// rounds distribute draw chunks through a racing ticket counter, so their
// forward schedule is timing-dependent with or without a checkpoint —
// restoration is still exact (the state IS the saved state), but the
// resumed schedule may legally differ, just as two uninterrupted multi-lane
// runs may. tests/test_checkpoint.cpp and scripts/run_crash.sh enforce
// byte-identity for every injected crash point at one lane.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "control/controller.hpp"
#include "rt/spec_executor.hpp"
#include "sim/trace.hpp"
#include "support/snapshot/journal.hpp"
#include "support/snapshot/snapshot.hpp"

namespace optipar {

namespace telemetry {
class RuntimeTelemetry;
}  // namespace telemetry

class CsrGraph;

/// Deterministic identity of the input graph, embedded in every snapshot so
/// a checkpoint can never be restored against different data (CRC32 over
/// the node count and every adjacency list).
[[nodiscard]] std::uint64_t graph_fingerprint(const CsrGraph& graph);

/// Where a crash is injected, for the recovery tests. The process exits
/// with _Exit(137) at the chosen instant — no destructors, no flushes, like
/// a SIGKILL — after completing exactly the writes the real crash would
/// have completed.
enum class CrashPoint : std::uint32_t {
  kNone = 0,
  kMidJournalWrite,      ///< half a journal frame on disk (torn tail)
  kAfterJournalAppend,   ///< journal ahead of every snapshot
  kMidSnapshotWrite,     ///< snap tmp file torn; previous generation intact
  kBeforeSnapshotRename, ///< snap tmp complete but not yet visible
  kAfterSnapshotRename,  ///< snapshot fully committed
};

struct CheckpointConfig {
  std::string dir;               ///< checkpoint directory (must exist)
  std::uint32_t every = 8;       ///< snapshot cadence in rounds (>= 1)
  /// Crash injection (tests only): fire `crash_point` at the end of round
  /// `crash_round` (0-based loop round). kNone disables.
  CrashPoint crash_point = CrashPoint::kNone;
  std::uint32_t crash_round = 0;
};

/// Serialize a StepRecord as a journal payload / parse one back. Exposed
/// for the tests that inspect journals directly.
[[nodiscard]] std::vector<std::byte> encode_step(const StepRecord& rec);
[[nodiscard]] StepRecord decode_step(std::span<const std::byte> payload);

class CheckpointManager {
 public:
  /// Loop state that lives outside the executor/controller but must survive
  /// a crash: the allocation the next round will use, and the livelock
  /// watchdog's counters (DESIGN.md §8).
  struct LoopState {
    std::uint32_t next_m = 0;
    std::uint32_t stalled = 0;
    bool degraded = false;
    std::size_t degraded_at_step = static_cast<std::size_t>(-1);
  };

  /// What try_restore hands back on success: the loop resumes at round
  /// `rounds_done` with `loop`, and `replayed` are the journal's first
  /// `rounds_done` StepRecords — the resumed trace's prefix.
  struct ResumeState {
    std::uint64_t rounds_done = 0;
    LoopState loop;
    std::vector<StepRecord> replayed;
  };

  /// Opens (creating if absent) journal.bin under config.dir and runs its
  /// torn-tail recovery. Throws SnapshotError{kIo} when the directory is
  /// unusable and std::invalid_argument when config.every == 0.
  CheckpointManager(CheckpointConfig config, std::uint64_t fingerprint);

  CheckpointManager(const CheckpointManager&) = delete;
  CheckpointManager& operator=(const CheckpointManager&) = delete;

  /// Attach a telemetry sink (non-owning; nullptr detaches): checkpoint and
  /// recovery events plus the "checkpoint.save"/"checkpoint.restore"
  /// phase timers.
  void set_telemetry(telemetry::RuntimeTelemetry* sink);

  /// Walk the recovery ladder. On success the executor and controller have
  /// been loaded, the journal has been rewound to the snapshot's round
  /// count, and the returned state resumes the loop. On nullopt the run
  /// starts clean: nothing was loaded and the journal is empty.
  [[nodiscard]] std::optional<ResumeState> try_restore(
      SpeculativeExecutor& executor, Controller& controller);

  /// Write-ahead append of round `round`'s record. Crash points
  /// kMidJournalWrite / kAfterJournalAppend fire here.
  void on_round(std::uint32_t round, const StepRecord& rec);

  /// Periodic + forced snapshotting, called after round `round`'s record
  /// was journaled and the controller observed it. `rounds_done` is the
  /// number of completed rounds ( == journal records). Snapshot crash
  /// points fire here.
  void maybe_snapshot(std::uint32_t round,
                      const SpeculativeExecutor& executor,
                      const Controller& controller, const LoopState& loop,
                      std::uint64_t rounds_done, bool force);

  [[nodiscard]] const CheckpointConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] std::uint32_t snapshots_written() const noexcept {
    return snapshots_written_;
  }
  /// Diagnostics of the last try_restore: candidate snapshots that were
  /// present but rejected (corrupt / mismatched / uncovered), as
  /// "path: reason" strings, newest candidate first.
  [[nodiscard]] const std::vector<std::string>& rejected_candidates()
      const noexcept {
    return rejected_;
  }

  [[nodiscard]] std::string snapshot_path(char generation) const;
  [[nodiscard]] std::string journal_path() const;

 private:
  void crash_if(CrashPoint point, std::uint32_t round);
  [[nodiscard]] std::vector<std::byte> build_snapshot(
      const SpeculativeExecutor& executor, const Controller& controller,
      const LoopState& loop, std::uint64_t rounds_done) const;

  CheckpointConfig config_;
  std::uint64_t fingerprint_;
  snapshot::RoundJournal journal_;
  char next_generation_ = 'a';  ///< generation the NEXT snapshot overwrites
  std::uint32_t snapshots_written_ = 0;
  std::vector<std::string> rejected_;
  telemetry::RuntimeTelemetry* telemetry_ = nullptr;
};

}  // namespace optipar
