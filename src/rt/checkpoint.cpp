#include "rt/checkpoint.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "graph/csr_graph.hpp"
#include "support/telemetry/telemetry.hpp"
#include "support/timer.hpp"

namespace optipar {

std::uint64_t graph_fingerprint(const CsrGraph& graph) {
  // CRC32 over (n, every adjacency list in node order), then widened with
  // the edge count so the fingerprint distinguishes graphs whose 32-bit
  // CRCs collide on structure but differ in size.
  const std::uint32_t n = graph.num_nodes();
  std::uint32_t crc = snapshot::crc32_bytes(&n, sizeof(n));
  for (NodeId v = 0; v < n; ++v) {
    const auto nbrs = graph.neighbors(v);
    crc = snapshot::crc32_bytes(nbrs.data(), nbrs.size_bytes(), crc);
  }
  return (graph.num_edges() << 32) | crc;
}

std::vector<std::byte> encode_step(const StepRecord& rec) {
  snapshot::Writer out;
  out.u32(rec.step);
  out.u32(rec.m);
  out.u32(rec.launched);
  out.u32(rec.committed);
  out.u32(rec.aborted);
  out.u32(rec.pending_after);
  out.f64(rec.avg_degree);
  out.u32(rec.retried);
  out.u32(rec.quarantined);
  out.u32(rec.injected);
  out.u8(rec.degraded ? 1 : 0);
  out.str(rec.error);
  return out.take();
}

StepRecord decode_step(std::span<const std::byte> payload) {
  snapshot::Reader in(payload);
  StepRecord rec;
  rec.step = in.u32();
  rec.m = in.u32();
  rec.launched = in.u32();
  rec.committed = in.u32();
  rec.aborted = in.u32();
  rec.pending_after = in.u32();
  rec.avg_degree = in.f64();
  rec.retried = in.u32();
  rec.quarantined = in.u32();
  rec.injected = in.u32();
  rec.degraded = in.u8() != 0;
  rec.error = in.str();
  in.expect_end();
  return rec;
}

CheckpointManager::CheckpointManager(CheckpointConfig config,
                                     std::uint64_t fingerprint)
    : config_(std::move(config)), fingerprint_(fingerprint),
      journal_(config_.dir + "/journal.bin") {
  if (config_.every == 0) {
    throw std::invalid_argument("CheckpointManager: every >= 1");
  }
}

std::string CheckpointManager::snapshot_path(char generation) const {
  return config_.dir + "/snap-" + generation + ".bin";
}

std::string CheckpointManager::journal_path() const {
  return journal_.path();
}

void CheckpointManager::set_telemetry(telemetry::RuntimeTelemetry* sink) {
  telemetry_ = sink;
}

void CheckpointManager::crash_if(CrashPoint point, std::uint32_t round) {
  if (config_.crash_point == point && config_.crash_round == round) {
    // SIGKILL semantics: no destructors, no stream flushes, exit now.
    std::_Exit(137);
  }
}

std::vector<std::byte> CheckpointManager::build_snapshot(
    const SpeculativeExecutor& executor, const Controller& controller,
    const LoopState& loop, std::uint64_t rounds_done) const {
  snapshot::Writer out;
  out.u64(fingerprint_);
  out.str(controller.name());
  out.u64(rounds_done);
  out.u32(loop.next_m);
  out.u32(loop.stalled);
  out.u8(loop.degraded ? 1 : 0);
  out.u64(static_cast<std::uint64_t>(loop.degraded_at_step));
  controller.save_state(out);
  executor.save_state(out);
  return out.take();
}

void CheckpointManager::on_round(std::uint32_t round, const StepRecord& rec) {
  const std::vector<std::byte> payload = encode_step(rec);
  if (config_.crash_point == CrashPoint::kMidJournalWrite &&
      config_.crash_round == round) {
    // Leave half a frame on disk, then die: the next open's recovery scan
    // must truncate the torn tail and report one fewer committed round.
    journal_.append_torn(payload, (12 + payload.size()) / 2);
    std::_Exit(137);
  }
  journal_.append(payload);
  crash_if(CrashPoint::kAfterJournalAppend, round);
}

void CheckpointManager::maybe_snapshot(std::uint32_t round,
                                       const SpeculativeExecutor& executor,
                                       const Controller& controller,
                                       const LoopState& loop,
                                       std::uint64_t rounds_done,
                                       bool force) {
  const bool injected_here = config_.crash_point != CrashPoint::kNone &&
                             config_.crash_point != CrashPoint::kMidJournalWrite &&
                             config_.crash_point != CrashPoint::kAfterJournalAppend &&
                             config_.crash_round == round;
  if (!force && !injected_here && (round + 1) % config_.every != 0) return;

  TimerAccumulator* acc =
      telemetry_ != nullptr ? &telemetry_->timers().at("checkpoint.save")
                            : nullptr;
  ScopedTimer timer(acc);

  const std::vector<std::byte> payload =
      build_snapshot(executor, controller, loop, rounds_done);
  const std::string path = snapshot_path(next_generation_);

  using snapshot::AtomicWriteStop;
  if (config_.crash_point == CrashPoint::kMidSnapshotWrite &&
      config_.crash_round == round) {
    snapshot::write_file_atomic_until(path, payload,
                                      AtomicWriteStop::kMidWrite);
    std::_Exit(137);
  }
  if (config_.crash_point == CrashPoint::kBeforeSnapshotRename &&
      config_.crash_round == round) {
    snapshot::write_file_atomic_until(path, payload,
                                      AtomicWriteStop::kBeforeRename);
    std::_Exit(137);
  }
  snapshot::write_file_atomic(path, payload);
  crash_if(CrashPoint::kAfterSnapshotRename, round);

  next_generation_ = next_generation_ == 'a' ? 'b' : 'a';
  ++snapshots_written_;
  if (telemetry_ != nullptr) {
    telemetry_->emit({telemetry::EventKind::kCheckpoint, 0,
                      executor.round_index(), rounds_done, payload.size(),
                      0.0, 0.0, path});
  }
}

std::optional<CheckpointManager::ResumeState> CheckpointManager::try_restore(
    SpeculativeExecutor& executor, Controller& controller) {
  TimerAccumulator* acc =
      telemetry_ != nullptr ? &telemetry_->timers().at("checkpoint.restore")
                            : nullptr;
  ScopedTimer timer(acc);
  rejected_.clear();

  // Phase 1: validate each generation's file + header cheaply, without
  // touching live state. A candidate survives when its file checksums, its
  // identity matches this run, and the journal covers its rounds.
  struct Candidate {
    std::string path;
    std::vector<std::byte> payload;
    std::uint64_t rounds_done = 0;
    LoopState loop;
    std::size_t body_pos = 0;  ///< reader offset of the controller blob
  };
  std::vector<Candidate> candidates;
  bool any_file_present = false;
  for (const char gen : {'a', 'b'}) {
    Candidate c;
    c.path = snapshot_path(gen);
    try {
      c.payload = snapshot::read_file_validated(c.path);
      any_file_present = true;
      snapshot::Reader in(std::span<const std::byte>(c.payload));
      const std::uint64_t fp = in.u64();
      if (fp != fingerprint_) {
        throw snapshot::SnapshotError(
            snapshot::SnapshotError::Kind::kMismatch,
            "graph fingerprint differs (snapshot is for different input)");
      }
      const std::string name = in.str();
      if (name != controller.name()) {
        throw snapshot::SnapshotError(
            snapshot::SnapshotError::Kind::kMismatch,
            "controller differs: snapshot has '" + name + "', run has '" +
                controller.name() + "'");
      }
      c.rounds_done = in.u64();
      c.loop.next_m = in.u32();
      c.loop.stalled = in.u32();
      c.loop.degraded = in.u8() != 0;
      c.loop.degraded_at_step = static_cast<std::size_t>(in.u64());
      if (c.rounds_done > journal_.committed_count()) {
        throw snapshot::SnapshotError(
            snapshot::SnapshotError::Kind::kMismatch,
            "journal covers " + std::to_string(journal_.committed_count()) +
                " rounds, snapshot claims " + std::to_string(c.rounds_done));
      }
      c.body_pos = c.payload.size() - in.remaining();
      candidates.push_back(std::move(c));
    } catch (const snapshot::SnapshotError& e) {
      const bool absent =
          e.kind() == snapshot::SnapshotError::Kind::kIo && c.payload.empty();
      if (!absent) rejected_.push_back(c.path + ": " + e.what());
    }
  }
  // Newest generation first; ties cannot happen (rounds strictly advance
  // between snapshots), but break them stably anyway.
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& x, const Candidate& y) {
                     return x.rounds_done > y.rounds_done;
                   });

  // Pristine images of the receiving state: if every candidate's body turns
  // out corrupt mid-load, roll back so a clean start really is clean.
  snapshot::Writer pristine_ctl_w;
  controller.save_state(pristine_ctl_w);
  const std::vector<std::byte> pristine_ctl = pristine_ctl_w.take();
  snapshot::Writer pristine_exec_w;
  executor.save_state(pristine_exec_w);
  const std::vector<std::byte> pristine_exec = pristine_exec_w.take();

  for (const Candidate& c : candidates) {
    try {
      snapshot::Reader in(std::span<const std::byte>(c.payload)
                              .subspan(c.body_pos));
      controller.load_state(in);
      executor.load_state(in);
      in.expect_end();
    } catch (const snapshot::SnapshotError& e) {
      rejected_.push_back(c.path + ": " + e.what());
      snapshot::Reader ctl_in{std::span<const std::byte>(pristine_ctl)};
      controller.load_state(ctl_in);
      snapshot::Reader exec_in{std::span<const std::byte>(pristine_exec)};
      executor.load_state(exec_in);
      continue;
    }
    // Loaded. Rewind the journal to the snapshot's round count (records
    // past it belong to rounds we are about to re-execute) and replay the
    // prefix as the resumed trace.
    ResumeState resume;
    resume.rounds_done = c.rounds_done;
    resume.loop = c.loop;
    resume.replayed.reserve(c.rounds_done);
    for (std::uint64_t i = 0; i < c.rounds_done; ++i) {
      resume.replayed.push_back(decode_step(journal_.records()[i]));
    }
    journal_.rewind_to(c.rounds_done);
    if (telemetry_ != nullptr) {
      // The restored totals were earned by pre-crash processes; record
      // them so metrics reconciliation (lanes + restored == total) holds
      // for the resumed run.
      const ExecutorTotals& t = executor.totals();
      telemetry_->set_restored_baseline(
          {t.launched, t.committed, t.aborted, t.retried, t.quarantined});
      telemetry_->emit({telemetry::EventKind::kRecovery, 0,
                        executor.round_index(), c.rounds_done,
                        journal_.committed_count(), 0.0, 0.0,
                        "restored from " + c.path});
    }
    return resume;
  }

  // Clean start: no usable snapshot. The journal's records describe rounds
  // whose executor state is gone, so they must not survive into the fresh
  // run's write-ahead sequence.
  journal_.rewind_to(0);
  if (any_file_present || journal_.truncated_torn_tail()) {
    if (telemetry_ != nullptr) {
      telemetry_->emit({telemetry::EventKind::kRecovery, 0, 0, 0, 0, 0.0,
                        0.0, "no usable snapshot: clean start"});
    }
  }
  return std::nullopt;
}

}  // namespace optipar
