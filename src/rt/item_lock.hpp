// Abstract item locks — the conflict-detection mechanism of optimistic
// parallelization (Galois-style). Every shared datum an iteration touches
// is registered under an item id; the first iteration to acquire an item
// owns it for the round, and any later iteration that needs it aborts
// itself (abort-self arbitration: deadlock-free because no task ever
// waits). Owners are cache-line padded to avoid false sharing between
// concurrently acquiring threads.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <stdexcept>

#include "support/padded.hpp"

namespace optipar {

class LockManager {
 public:
  static constexpr std::uint32_t kFree = UINT32_MAX;

  explicit LockManager(std::size_t items);

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Grow to cover at least `items` items. NOT safe concurrently with
  /// acquire/release; the executor only grows between rounds.
  void grow(std::size_t items);

  /// Try to take `item` for iteration `iter`. Succeeds if free or already
  /// owned by `iter` (re-entrant). Returns false on conflict.
  [[nodiscard]] bool try_acquire(std::uint32_t item, std::uint32_t iter);

  /// Current owner (kFree if unowned). For assertions and tests.
  [[nodiscard]] std::uint32_t owner(std::uint32_t item) const;

  /// Release one item owned by `iter` (asserts ownership in debug builds).
  void release(std::uint32_t item, std::uint32_t iter);

  // --- single-lane fast-path variants (DESIGN.md §12) ---------------------
  // Same ownership semantics and bounds checks as try_acquire/release, but
  // relaxed loads/plain stores instead of a CAS and a release fence. Legal
  // ONLY while exactly one thread touches the table (the executor's serial
  // round path); mixing them with concurrent acquires is a data race by
  // construction. Inline: the serial round calls these per held item.

  [[nodiscard]] bool try_acquire_relaxed(std::uint32_t item,
                                         std::uint32_t iter) {
    if (item >= size_) {
      throw std::out_of_range("LockManager::try_acquire: unknown item");
    }
    auto& owner = owners_[item].value;
    const std::uint32_t cur = owner.load(std::memory_order_relaxed);
    if (cur == kFree) {
      owner.store(iter, std::memory_order_relaxed);
      return true;
    }
    if (cur == iter) return true;  // re-entrant acquire
    if (contention_ != nullptr) {
      contention_->fetch_add(1, std::memory_order_relaxed);
    }
    return false;
  }

  void release_relaxed(std::uint32_t item, std::uint32_t iter) {
    if (item >= size_) {
      throw std::out_of_range("LockManager::release: unknown item");
    }
    auto& owner = owners_[item].value;
    assert(owner.load(std::memory_order_relaxed) == iter &&
           "releasing an item not owned by this iteration");
    (void)iter;
    owner.store(kFree, std::memory_order_relaxed);
  }

  /// True iff no item is owned — the executor checks this between rounds.
  [[nodiscard]] bool all_free() const;

  /// Number of currently owned items — failure-path diagnostic (a leaked
  /// lock after a salvaged round shows up here before all_free() trips an
  /// assert in release builds where asserts are compiled out).
  [[nodiscard]] std::size_t owned_count() const;

  /// Telemetry hook (DESIGN.md §10): count every failed (conflicting)
  /// try_acquire into `counter`. nullptr (the default) detaches — the
  /// fast path then pays one predictable branch on the FAILED acquire
  /// only, never on the success path. Not safe to swap mid-round.
  void set_contention_counter(std::atomic<std::uint64_t>* counter) noexcept {
    contention_ = counter;
  }

 private:
  // Atomics are neither copyable nor movable, so growth re-creates the
  // array and copies the raw values — safe because grow() is only legal
  // between rounds, when no acquire/release is in flight.
  std::unique_ptr<Padded<std::atomic<std::uint32_t>>[]> owners_;
  std::size_t size_ = 0;
  std::atomic<std::uint64_t>* contention_ = nullptr;  // non-owning
};

}  // namespace optipar
