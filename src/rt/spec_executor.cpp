#include "rt/spec_executor.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <thread>

#include "support/barrier.hpp"

namespace optipar {

namespace {
// Tickets (slots) are claimed in chunks so that lanes draw several tasks
// under one shard lock and touch the shared cursors rarely. A single lane
// claims every chunk in order, so the chunked draw replays the centralized
// draw sequence exactly.
constexpr std::size_t kDrawChunk = 16;
constexpr std::size_t kFinalizeChunk = 64;

// With several lanes the chunk must shrink as the round does: a task that
// blocks mid-operator (a priority-wins waiter, or a test choreography)
// stalls the rest of its lane's chunk, so small rounds need the seed's
// grain-1 interleaving where every other slot can proceed on another lane.
std::size_t draw_chunk(std::size_t take, std::size_t lanes) {
  if (lanes <= 1) return kDrawChunk;
  return std::max<std::size_t>(
      1, std::min<std::size_t>(kDrawChunk, take / (lanes * 2)));
}
}  // namespace

void IterationContext::acquire(std::uint32_t item) {
  if (executor_ != nullptr &&
      executor_->arbitration() == ArbitrationPolicy::kPriorityWins) {
    executor_->acquire_arbitrated(*this, item);
    return;
  }
  if (!try_acquire(item)) throw AbortIteration{};
}

bool IterationContext::try_acquire(std::uint32_t item) {
  // Fast path: already held (common when an operator revisits a cavity).
  if (std::find(held_.begin(), held_.end(), item) != held_.end()) return true;
  if (!locks_.try_acquire(item, iter_id_)) return false;
  held_.push_back(item);
  return true;
}

void IterationContext::release_all() {
  for (const std::uint32_t item : held_) locks_.release(item, iter_id_);
  held_.clear();
}

SpeculativeExecutor::SpeculativeExecutor(ThreadPool& pool, std::size_t items,
                                         TaskOperator op, std::uint64_t seed,
                                         WorklistPolicy policy,
                                         ArbitrationPolicy arbitration)
    : pool_(pool), locks_(items), op_(std::move(op)), rng_(seed),
      policy_(policy), arbitration_(arbitration),
      shard_count_(std::max<std::size_t>(1, pool.size())),
      shards_(std::make_unique<Shard[]>(shard_count_)) {
  // Helper lanes get independent draw streams derived from the seed with a
  // PRF — NOT splits of rng_, whose state must stay byte-identical to a
  // single-lane executor's until the first draw.
  SplitMix64 sm(seed ^ 0xa02bdbf7bb3c0a7dULL);
  helper_rngs_.reserve(shard_count_ - 1);
  for (std::size_t l = 1; l < shard_count_; ++l) {
    helper_rngs_.emplace_back(sm.next());
  }
}

void SpeculativeExecutor::push_initial(std::span<const TaskId> tasks) {
  if (policy_ == WorklistPolicy::kPriority) {
    const std::lock_guard lock(worklist_mutex_);
    if (!priority_fn_) {
      throw std::logic_error(
          "SpeculativeExecutor: kPriority requires set_priority_function");
    }
    for (const TaskId t : tasks) priority_heap_.emplace(priority_fn_(t), t);
    return;
  }
  if (shard_count_ == 1) {
    Shard& s = shards_[0];
    const std::lock_guard guard(s.mutex);
    s.tasks.insert(s.tasks.end(), tasks.begin(), tasks.end());
    return;
  }
  // Deal round-robin across shards, continuing where the last push left off
  // so repeated small pushes stay balanced.
  const std::size_t start =
      push_cursor_.fetch_add(tasks.size(), std::memory_order_relaxed) %
      shard_count_;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    Shard& shard = shards_[s];
    const std::lock_guard guard(shard.mutex);
    for (std::size_t i = (s + shard_count_ - start) % shard_count_;
         i < tasks.size(); i += shard_count_) {
      shard.tasks.push_back(tasks[i]);
    }
  }
}

void SpeculativeExecutor::set_priority_function(
    std::function<std::uint64_t(TaskId)> fn) {
  const std::lock_guard lock(worklist_mutex_);
  priority_fn_ = std::move(fn);
}

std::size_t SpeculativeExecutor::pending() const {
  std::size_t total = 0;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    const std::lock_guard guard(shards_[s].mutex);
    total += shards_[s].tasks.size() - shards_[s].head;
  }
  const std::lock_guard lock(worklist_mutex_);
  return total + priority_heap_.size();
}

IterationContext* SpeculativeExecutor::context_of(std::uint32_t iter_id) {
  if (iter_id < round_base_id_) return nullptr;
  const std::size_t slot = iter_id - round_base_id_;
  if (slot >= round_slots_) return nullptr;
  return arena_[slot].get();
}

void SpeculativeExecutor::acquire_arbitrated(IterationContext& ctx,
                                             std::uint32_t item) {
  // Every acquire is a cooperative-cancellation point — a poisoned
  // iteration must stop making progress promptly, including on
  // re-entrant acquires of items it already holds.
  if (ctx.status_.load(std::memory_order_acquire) !=
      IterationContext::kRunning) {
    throw AbortIteration{};
  }
  // Fast path: re-entrant hold.
  if (std::find(ctx.held_.begin(), ctx.held_.end(), item) !=
      ctx.held_.end()) {
    return;
  }
  for (;;) {
    if (ctx.status_.load(std::memory_order_acquire) !=
        IterationContext::kRunning) {
      throw AbortIteration{};
    }
    if (locks_.try_acquire(item, ctx.iter_id_)) {
      ctx.held_.push_back(item);
      return;
    }
    const std::uint32_t owner = locks_.owner(item);
    if (owner == LockManager::kFree || owner == ctx.iter_id_) continue;
    IterationContext* other = context_of(owner);
    if (other == nullptr) {
      // Foreign owner outside this round (e.g. a test holding the lock):
      // fall back to abort-self.
      throw AbortIteration{};
    }
    if (ctx.priority_ >= other->priority_) {
      throw AbortIteration{};  // the earlier (or equal) owner wins
    }
    // We are earlier: poison the owner, then wait for the item. The CAS
    // fails iff the owner already committed — then it holds the lock to
    // round end and we must yield the conflict instead.
    std::uint32_t expected = IterationContext::kRunning;
    const bool poisoned_now = other->status_.compare_exchange_strong(
        expected, IterationContext::kPoisoned, std::memory_order_acq_rel);
    if (!poisoned_now && expected == IterationContext::kCommitted) {
      throw AbortIteration{};
    }
    // Owner is poisoned (by us or someone else): it will roll back and
    // release. Spin-wait, staying cancellable ourselves.
    int spins = 0;
    while (locks_.owner(item) == owner) {
      if (ctx.status_.load(std::memory_order_acquire) !=
          IterationContext::kRunning) {
        throw AbortIteration{};
      }
      if (++spins > 64) {
        std::this_thread::yield();
        spins = 0;
      }
    }
    // Re-contend from the top (a third iteration may have grabbed it).
  }
}

TaskId SpeculativeExecutor::pop_from(Shard& s, Rng& rng) {
  switch (policy_) {
    case WorklistPolicy::kRandom: {
      const std::size_t j = s.head + rng.below(s.tasks.size() - s.head);
      const TaskId t = s.tasks[j];
      s.tasks[j] = s.tasks.back();
      s.tasks.pop_back();
      return t;
    }
    case WorklistPolicy::kFifo: {
      const TaskId t = s.tasks[s.head++];
      // Compact the consumed prefix once it dominates the buffer.
      if (s.head > 1024 && s.head * 2 > s.tasks.size()) {
        s.tasks.erase(s.tasks.begin(),
                      s.tasks.begin() + static_cast<std::ptrdiff_t>(s.head));
        s.head = 0;
      }
      return t;
    }
    case WorklistPolicy::kLifo: {
      const TaskId t = s.tasks.back();
      s.tasks.pop_back();
      return t;
    }
    case WorklistPolicy::kPriority:
      break;  // centralized path never reaches the shards
  }
  assert(false && "pop_from: unreachable policy");
  return 0;
}

TaskId SpeculativeExecutor::draw_one(std::size_t lane, Rng& rng) {
  // Own shard first, then steal round-robin. Because every ticket maps to a
  // task that was present at round start and requeues are buffered until
  // round end, shards only shrink during a round — a full scan observing
  // every shard empty would mean more pops than tickets, which cannot
  // happen. The outer loop is defensive only.
  for (;;) {
    for (std::size_t k = 0; k < shard_count_; ++k) {
      Shard& s = shards_[(lane + k) % shard_count_];
      const std::lock_guard guard(s.mutex);
      if (s.head < s.tasks.size()) return pop_from(s, rng);
    }
    std::this_thread::yield();
  }
}

void SpeculativeExecutor::record_round_error() noexcept {
  const std::lock_guard lock(round_error_mutex_);
  if (!round_error_) round_error_ = std::current_exception();
}

RoundStats SpeculativeExecutor::run_round(std::uint32_t m) {
  RoundStats stats;
  const bool prioritized = policy_ == WorklistPolicy::kPriority;
  std::size_t take = 0;
  if (prioritized) {
    // kPriority stays on the centralized path: the heap IS the policy (the
    // m globally-smallest tasks run), so the draw happens up front.
    const std::lock_guard lock(worklist_mutex_);
    take = std::min<std::size_t>(m, priority_heap_.size());
    active_.resize(take);
    for (std::size_t i = 0; i < take; ++i) {
      active_[i] = priority_heap_.top().second;
      priority_heap_.pop();
    }
  } else {
    std::size_t available = 0;
    for (std::size_t s = 0; s < shard_count_; ++s) {
      const std::lock_guard guard(shards_[s].mutex);
      available += shards_[s].tasks.size() - shards_[s].head;
    }
    take = std::min<std::size_t>(m, available);
    active_.resize(take);  // slots are filled by the drawing lanes
  }
  stats.launched = static_cast<std::uint32_t>(take);
  if (take == 0) return stats;

  // Arena: slot i of this round recycles arena_[i]; only first-time slots
  // allocate. Iteration ids stay dense per round for the lock table.
  const std::uint32_t base_id = next_iteration_id_;
  next_iteration_id_ += stats.launched;
  while (arena_.size() < take) {
    auto ctx = std::make_unique<IterationContext>(locks_, 0);
    ctx->executor_ = this;
    arena_.push_back(std::move(ctx));
  }
  round_base_id_ = base_id;
  round_slots_ = take;

  // Lane count mirrors the old parallel_for policy (at most one lane per
  // pool worker), so a pool of one worker runs exactly one deterministic
  // lane. A nested call site (inside a pool worker) cannot get concurrent
  // lanes from the pool, so it must run single-lane for the barrier below.
  const std::size_t lanes =
      pool_.in_worker_context()
          ? 1
          : std::max<std::size_t>(
                1, std::min<std::size_t>(shard_count_, take));
  if (lane_requeue_.size() < lanes) lane_requeue_.resize(lanes);
  if (lane_committed_.size() < lanes) lane_committed_.resize(lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    lane_requeue_[l].value.clear();
    lane_committed_[l].value = 0;
  }
  draw_cursor_.store(0, std::memory_order_relaxed);
  finalize_cursor_.store(0, std::memory_order_relaxed);
  round_error_ = nullptr;

  SpinBarrier round_barrier(lanes);
  const std::size_t chunk = draw_chunk(take, lanes);
  pool_.run_on_workers(lanes, [&](std::size_t lane) {
    Rng& rng = lane == 0 ? rng_ : helper_rngs_[lane - 1];
    // --- Speculative phase: draw and execute in ticket chunks. ----------
    for (;;) {
      const std::size_t begin =
          draw_cursor_.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= take) break;
      const std::size_t end = std::min(take, begin + chunk);
      if (!prioritized) {
        // Draw the chunk: own shard under one lock, then steal.
        std::size_t slot = begin;
        {
          Shard& own = shards_[lane];
          const std::lock_guard guard(own.mutex);
          while (slot < end && own.head < own.tasks.size()) {
            active_[slot++] = pop_from(own, rng);
          }
        }
        while (slot < end) active_[slot++] = draw_one(lane, rng);
      }
      for (std::size_t slot = begin; slot < end; ++slot) {
        const TaskId task = active_[slot];
        IterationContext& ctx = *arena_[slot];
        std::uint64_t prio = task;
        if (priority_fn_) {
          try {
            prio = priority_fn_(task);
          } catch (...) {
            record_round_error();
          }
        }
        ctx.reset(base_id + static_cast<std::uint32_t>(slot), prio);
        bool wants_commit = false;
        try {
          op_(task, ctx);
          wants_commit = true;
        } catch (const AbortIteration&) {
          // speculative conflict or voluntary abort
        } catch (...) {
          // Application bug: surfaced after the round, but the iteration
          // still rolls back so the runtime invariants hold.
          record_round_error();
        }
        // Finalize: a poisoned iteration may not commit even if it
        // finished.
        if (wants_commit && ctx.try_commit()) {
          // Committed iterations keep their items locked until the round
          // ends (the paper's semantics: an earlier committed neighbor
          // blocks).
        } else {
          // Roll back while still owning the touched items, then release
          // them immediately: an aborted task must not block later tasks
          // (§2.1), and a priority-wins waiter may be spinning on one of
          // our items.
          try {
            ctx.undo_.rollback();
          } catch (...) {
            record_round_error();
          }
          ctx.release_all();
        }
      }
    }
    // --- Round barrier: commits become final, locks still held. ---------
    round_barrier.arrive_and_wait();
    // --- Epilogue phase (parallel): publish pushes of committed
    //     iterations, buffer requeues lane-locally, release locks. -------
    auto& requeue = lane_requeue_[lane].value;
    std::uint32_t committed = 0;
    for (;;) {
      const std::size_t begin =
          finalize_cursor_.fetch_add(kFinalizeChunk,
                                     std::memory_order_relaxed);
      if (begin >= take) break;
      const std::size_t end = std::min(take, begin + kFinalizeChunk);
      for (std::size_t slot = begin; slot < end; ++slot) {
        IterationContext& ctx = *arena_[slot];
        if (ctx.status_.load(std::memory_order_relaxed) ==
            IterationContext::kCommitted) {
          ctx.undo_.discard();
          ++committed;
          requeue.insert(requeue.end(), ctx.pushed_.begin(),
                         ctx.pushed_.end());
          ctx.release_all();
        } else {
          requeue.push_back(active_[slot]);
        }
      }
    }
    lane_committed_[lane].value = committed;
    // --- Splice this lane's requeue buffer back into the work-set. ------
    if (!requeue.empty()) {
      if (prioritized) {
        // Re-evaluate priorities at (re)insertion time: the state a task's
        // priority derives from may have changed while it ran or waited.
        const std::lock_guard lock(worklist_mutex_);
        for (const TaskId t : requeue) {
          priority_heap_.emplace(priority_fn_(t), t);
        }
      } else {
        Shard& s = shards_[lane];
        const std::lock_guard guard(s.mutex);
        s.tasks.insert(s.tasks.end(), requeue.begin(), requeue.end());
      }
    }
  });
  round_slots_ = 0;

  for (std::size_t l = 0; l < lanes; ++l) {
    stats.committed += lane_committed_[l].value;
  }
  stats.aborted = stats.launched - stats.committed;
  assert(locks_.all_free());

  ++totals_.rounds;
  totals_.launched += stats.launched;
  totals_.committed += stats.committed;
  totals_.aborted += stats.aborted;

  if (round_error_) {
    // The round's bookkeeping is complete (locks free, tasks requeued,
    // totals counted); now surface the application error.
    std::exception_ptr error = round_error_;
    round_error_ = nullptr;
    std::rethrow_exception(error);
  }
  return stats;
}

}  // namespace optipar
