#include "rt/spec_executor.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <thread>

namespace optipar {

void IterationContext::acquire(std::uint32_t item) {
  if (executor_ != nullptr &&
      executor_->arbitration() == ArbitrationPolicy::kPriorityWins) {
    executor_->acquire_arbitrated(*this, item);
    return;
  }
  if (!try_acquire(item)) throw AbortIteration{};
}

bool IterationContext::try_acquire(std::uint32_t item) {
  // Fast path: already held (common when an operator revisits a cavity).
  if (std::find(held_.begin(), held_.end(), item) != held_.end()) return true;
  if (!locks_.try_acquire(item, iter_id_)) return false;
  held_.push_back(item);
  return true;
}

void IterationContext::release_all() {
  for (const std::uint32_t item : held_) locks_.release(item, iter_id_);
  held_.clear();
}

SpeculativeExecutor::SpeculativeExecutor(ThreadPool& pool, std::size_t items,
                                         TaskOperator op, std::uint64_t seed,
                                         WorklistPolicy policy,
                                         ArbitrationPolicy arbitration)
    : pool_(pool), locks_(items), op_(std::move(op)), rng_(seed),
      policy_(policy), arbitration_(arbitration) {}

void SpeculativeExecutor::push_initial(std::span<const TaskId> tasks) {
  const std::lock_guard lock(worklist_mutex_);
  if (policy_ == WorklistPolicy::kPriority) {
    if (!priority_fn_) {
      throw std::logic_error(
          "SpeculativeExecutor: kPriority requires set_priority_function");
    }
    for (const TaskId t : tasks) priority_heap_.emplace(priority_fn_(t), t);
  } else {
    worklist_.insert(worklist_.end(), tasks.begin(), tasks.end());
  }
}

void SpeculativeExecutor::set_priority_function(
    std::function<std::uint64_t(TaskId)> fn) {
  const std::lock_guard lock(worklist_mutex_);
  priority_fn_ = std::move(fn);
}

std::size_t SpeculativeExecutor::pending() const {
  const std::lock_guard lock(worklist_mutex_);
  return policy_ == WorklistPolicy::kPriority
             ? priority_heap_.size()
             : worklist_.size() - head_;
}

IterationContext* SpeculativeExecutor::context_of(std::uint32_t iter_id) {
  if (round_contexts_ == nullptr) return nullptr;
  if (iter_id < round_base_id_) return nullptr;
  const std::size_t slot = iter_id - round_base_id_;
  if (slot >= round_contexts_->size()) return nullptr;
  return (*round_contexts_)[slot].get();
}

void SpeculativeExecutor::acquire_arbitrated(IterationContext& ctx,
                                             std::uint32_t item) {
  // Every acquire is a cooperative-cancellation point — a poisoned
  // iteration must stop making progress promptly, including on
  // re-entrant acquires of items it already holds.
  if (ctx.status_.load(std::memory_order_acquire) !=
      IterationContext::kRunning) {
    throw AbortIteration{};
  }
  // Fast path: re-entrant hold.
  if (std::find(ctx.held_.begin(), ctx.held_.end(), item) !=
      ctx.held_.end()) {
    return;
  }
  for (;;) {
    if (ctx.status_.load(std::memory_order_acquire) !=
        IterationContext::kRunning) {
      throw AbortIteration{};
    }
    if (locks_.try_acquire(item, ctx.iter_id_)) {
      ctx.held_.push_back(item);
      return;
    }
    const std::uint32_t owner = locks_.owner(item);
    if (owner == LockManager::kFree || owner == ctx.iter_id_) continue;
    IterationContext* other = context_of(owner);
    if (other == nullptr) {
      // Foreign owner outside this round (e.g. a test holding the lock):
      // fall back to abort-self.
      throw AbortIteration{};
    }
    if (ctx.priority_ >= other->priority_) {
      throw AbortIteration{};  // the earlier (or equal) owner wins
    }
    // We are earlier: poison the owner, then wait for the item. The CAS
    // fails iff the owner already committed — then it holds the lock to
    // round end and we must yield the conflict instead.
    std::uint32_t expected = IterationContext::kRunning;
    const bool poisoned_now = other->status_.compare_exchange_strong(
        expected, IterationContext::kPoisoned, std::memory_order_acq_rel);
    if (!poisoned_now && expected == IterationContext::kCommitted) {
      throw AbortIteration{};
    }
    // Owner is poisoned (by us or someone else): it will roll back and
    // release. Spin-wait, staying cancellable ourselves.
    int spins = 0;
    while (locks_.owner(item) == owner) {
      if (ctx.status_.load(std::memory_order_acquire) !=
          IterationContext::kRunning) {
        throw AbortIteration{};
      }
      if (++spins > 64) {
        std::this_thread::yield();
        spins = 0;
      }
    }
    // Re-contend from the top (a third iteration may have grabbed it).
  }
}

RoundStats SpeculativeExecutor::run_round(std::uint32_t m) {
  // 1. Draw up to m tasks from the work-set according to the policy
  //    (random: swap-remove with the tail; FIFO: advance head_ cursor;
  //    LIFO: pop the back; priority: pop the heap).
  std::vector<TaskId> active;
  {
    const std::lock_guard lock(worklist_mutex_);
    const std::size_t available = policy_ == WorklistPolicy::kPriority
                                      ? priority_heap_.size()
                                      : worklist_.size() - head_;
    const auto take = std::min<std::size_t>(m, available);
    active.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      switch (policy_) {
        case WorklistPolicy::kRandom: {
          const std::size_t j =
              head_ + rng_.below(worklist_.size() - head_);
          active.push_back(worklist_[j]);
          worklist_[j] = worklist_.back();
          worklist_.pop_back();
          break;
        }
        case WorklistPolicy::kFifo:
          active.push_back(worklist_[head_++]);
          break;
        case WorklistPolicy::kLifo:
          active.push_back(worklist_.back());
          worklist_.pop_back();
          break;
        case WorklistPolicy::kPriority:
          active.push_back(priority_heap_.top().second);
          priority_heap_.pop();
          break;
      }
    }
    // Compact the consumed FIFO prefix once it dominates the buffer.
    if (head_ > 1024 && head_ * 2 > worklist_.size()) {
      worklist_.erase(worklist_.begin(),
                      worklist_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
  }

  RoundStats stats;
  stats.launched = static_cast<std::uint32_t>(active.size());
  if (active.empty()) return stats;

  // 2. Execute all active tasks speculatively across the pool. Each slot
  //    gets a stable iteration id for the lock table.
  const std::uint32_t base_id = next_iteration_id_;
  next_iteration_id_ += stats.launched;

  std::vector<std::unique_ptr<IterationContext>> contexts(active.size());
  std::vector<std::uint8_t> committed(active.size(), 0);
  for (std::size_t i = 0; i < active.size(); ++i) {
    contexts[i] = std::make_unique<IterationContext>(
        locks_, base_id + static_cast<std::uint32_t>(i));
    contexts[i]->executor_ = this;
    contexts[i]->priority_ =
        priority_fn_ ? priority_fn_(active[i]) : active[i];
  }
  round_contexts_ = &contexts;
  round_base_id_ = base_id;

  pool_.parallel_for(active.size(), [&](std::size_t i) {
    IterationContext& ctx = *contexts[i];
    bool wants_commit = false;
    try {
      op_(active[i], ctx);
      wants_commit = true;
    } catch (const AbortIteration&) {
      wants_commit = false;
    }
    // Finalize: a poisoned iteration may not commit even if it finished.
    if (wants_commit && ctx.try_commit()) {
      committed[i] = 1;
      // Committed iterations keep their items locked until the round ends
      // (the paper's semantics: an earlier committed neighbor blocks).
    } else {
      // Roll back while still owning the touched items, then release them
      // immediately: an aborted task must not block later tasks (§2.1),
      // and a priority-wins waiter may be spinning on one of our items.
      ctx.undo_.rollback();
      ctx.release_all();
    }
  });
  round_contexts_ = nullptr;

  // 3. Sequential epilogue: publish pushes of committed iterations,
  //    requeue aborted tasks, release the committed iterations' locks.
  std::vector<TaskId> to_requeue;
  for (std::size_t i = 0; i < active.size(); ++i) {
    IterationContext& ctx = *contexts[i];
    if (committed[i]) {
      ctx.undo_.discard();
      ++stats.committed;
      to_requeue.insert(to_requeue.end(), ctx.pushed_.begin(),
                        ctx.pushed_.end());
    } else {
      ++stats.aborted;
      to_requeue.push_back(active[i]);
    }
    ctx.release_all();
  }
  {
    const std::lock_guard lock(worklist_mutex_);
    if (policy_ == WorklistPolicy::kPriority) {
      // Re-evaluate priorities at (re)insertion time: the state a task's
      // priority derives from may have changed while it ran or waited.
      for (const TaskId t : to_requeue) {
        priority_heap_.emplace(priority_fn_(t), t);
      }
    } else {
      worklist_.insert(worklist_.end(), to_requeue.begin(),
                       to_requeue.end());
    }
  }
  assert(locks_.all_free());

  ++totals_.rounds;
  totals_.launched += stats.launched;
  totals_.committed += stats.committed;
  totals_.aborted += stats.aborted;
  return stats;
}

}  // namespace optipar
