#include "rt/spec_executor.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <thread>

#include "sched/chromatic_scheduler.hpp"
#include "support/barrier.hpp"
#include "support/cpu.hpp"
#include "support/snapshot/snapshot.hpp"
#include "support/telemetry/conflict_profiler.hpp"
#include "support/telemetry/span_trace.hpp"
#include "support/telemetry/telemetry.hpp"

namespace optipar {

namespace {
// Tickets (slots) are claimed in chunks so that lanes draw several tasks
// under one shard lock and touch the shared cursors rarely. A single lane
// claims every chunk in order, so the chunked draw replays the centralized
// draw sequence exactly.
constexpr std::size_t kDrawChunk = 16;
constexpr std::size_t kFinalizeChunk = 64;

// Phase clocks sample every N-th chunk (power of two; chunk 0 always
// sampled, so single-chunk rounds are timed exactly) and scale the tick
// totals up to the chunk population at flush time. Even a raw cycle read
// costs ~20ns on virtualized hosts, so timing every chunk would by itself
// consume the telemetry layer's enabled-overhead budget (DESIGN.md §10).
constexpr std::uint64_t kPhaseSamplePeriod = 8;
static_assert((kPhaseSamplePeriod & (kPhaseSamplePeriod - 1)) == 0);

// Sentinel marking a ticket whose task was never drawn (hardened rounds
// only): after a pool-lane death the salvage pass must distinguish "task
// still in its shard" from "task drawn but never executed".
constexpr TaskId kNoTask = ~TaskId{0};

// With several lanes the chunk must shrink as the round does: a task that
// blocks mid-operator (a priority-wins waiter, or a test choreography)
// stalls the rest of its lane's chunk, so small rounds need the seed's
// grain-1 interleaving where every other slot can proceed on another lane.
std::size_t draw_chunk(std::size_t take, std::size_t lanes) {
  if (lanes <= 1) return kDrawChunk;
  return std::max<std::size_t>(
      1, std::min<std::size_t>(kDrawChunk, take / (lanes * 2)));
}

}  // namespace

void IterationContext::acquire(std::uint32_t item) {
  if (executor_ != nullptr && executor_->injector_ != nullptr) {
    // Injection site: a lock acquire that stalls (bounded, deterministic).
    executor_->injector_->maybe_stall(FaultSite::kLockAcquire, item,
                                      iter_id_);
  }
  if (executor_ != nullptr &&
      executor_->arbitration() == ArbitrationPolicy::kPriorityWins) {
    executor_->acquire_arbitrated(*this, item);
    return;
  }
  if (!try_acquire(item)) throw AbortIteration{};
}

bool IterationContext::try_acquire(std::uint32_t item) {
  // Fast path: already held (common when an operator revisits a cavity).
  if (std::find(held_.begin(), held_.end(), item) != held_.end()) return true;
  const bool acquired = unsync_ ? locks_.try_acquire_relaxed(item, iter_id_)
                                : locks_.try_acquire(item, iter_id_);
  if (!acquired) {
    if (tlm_ != nullptr) {
      ++tlm_->lock_failures;
      // Conflict attribution: this item is what killed (or will kill) the
      // speculative task — the profiler's per-item counter is the spatial
      // resolution of the conflict ratio.
      if (tlm_->prof != nullptr) tlm_->prof->on_conflict(item);
    }
    return false;
  }
  held_.push_back(item);
  return true;
}

void IterationContext::release_all() {
  if (unsync_) {
    for (const std::uint32_t item : held_) {
      locks_.release_relaxed(item, iter_id_);
    }
  } else {
    for (const std::uint32_t item : held_) locks_.release(item, iter_id_);
  }
  held_.clear();
}

SpeculativeExecutor::SpeculativeExecutor(ThreadPool& pool, std::size_t items,
                                         TaskOperator op, std::uint64_t seed,
                                         WorklistPolicy policy,
                                         ArbitrationPolicy arbitration)
    : SpeculativeExecutor(pool, items, std::move(op), seed,
                          RoundOptions{policy, arbitration,
                                       sched::Backend::kRandom, 4}) {}

SpeculativeExecutor::SpeculativeExecutor(ThreadPool& pool, std::size_t items,
                                         TaskOperator op, std::uint64_t seed,
                                         const RoundOptions& options)
    : pool_(pool), locks_(items), op_(std::move(op)), rng_(seed),
      policy_wl_(options.worklist), arbitration_(options.arbitration),
      shard_count_(std::max<std::size_t>(1, pool.size())),
      backoff_seed_(seed ^ 0x6c62272e07bb0142ULL) {
  if (options.scheduler != sched::Backend::kRandom &&
      options.worklist != WorklistPolicy::kRandom) {
    throw std::invalid_argument(
        "SpeculativeExecutor: worklist policies are a random-backend draw "
        "knob; the chromatic/relaxed backends require the default worklist");
  }
  sched::SchedulerConfig config;
  config.worklist = options.worklist;
  config.shard_count = shard_count_;
  config.seed = seed;
  config.relaxed_queues_per_lane = options.relaxed_queues_per_lane;
  sched_ = sched::make_scheduler(options.scheduler, config);
  sched_->set_error_sink([this] { record_round_error(); });
  // Helper lanes get independent draw streams derived from the seed with a
  // PRF — NOT splits of rng_, whose state must stay byte-identical to a
  // single-lane executor's until the first draw.
  SplitMix64 sm(seed ^ 0xa02bdbf7bb3c0a7dULL);
  helper_rngs_.reserve(shard_count_ - 1);
  for (std::size_t l = 1; l < shard_count_; ++l) {
    helper_rngs_.emplace_back(sm.next());
  }
}

void SpeculativeExecutor::set_telemetry(telemetry::RuntimeTelemetry* sink) {
  telemetry_ = sink;
  if (sink != nullptr) {
    // Resolve the named accumulators once — the per-round ScopedTimer then
    // costs two clock reads, no map lookups. Calibrating the tick clock
    // here keeps its one-time spin out of the first timed chunk.
    static_cast<void>(phase_ns_per_tick());
    acc_round_ = &sink->timers().at("executor.round");
    acc_salvage_ = &sink->timers().at("executor.salvage");
  } else {
    acc_round_ = nullptr;
    acc_salvage_ = nullptr;
  }
}

void SpeculativeExecutor::push_initial(std::span<const TaskId> tasks) {
  sched_->push(tasks);
}

void SpeculativeExecutor::set_priority_function(
    std::function<std::uint64_t(TaskId)> fn) {
  // Two consumers: the scheduler orders draws with it; the executor copy
  // feeds launch-time arbitration priorities (kPriorityWins).
  priority_fn_ = fn;
  sched_->set_priority_function(std::move(fn));
}

void SpeculativeExecutor::set_footprint_function(sched::FootprintFn fn) {
  auto* chromatic = dynamic_cast<sched::ChromaticScheduler*>(sched_.get());
  if (chromatic == nullptr) {
    throw std::logic_error(
        "SpeculativeExecutor: set_footprint_function requires the "
        "chromatic scheduler backend");
  }
  chromatic->set_footprint_function(std::move(fn));
}

void SpeculativeExecutor::invalidate_schedule() {
  if (auto* chromatic =
          dynamic_cast<sched::ChromaticScheduler*>(sched_.get())) {
    chromatic->invalidate_pending();
  }
}

std::size_t SpeculativeExecutor::pending() const {
  // The overlapped-draw buffer is logically still the work-set: tasks in
  // it were drawn for round t+1 but not yet launched.
  return deferred_.size() + prefetched_.size() + sched_->size();
}

IterationContext* SpeculativeExecutor::context_of(std::uint32_t iter_id) {
  if (iter_id < round_base_id_) return nullptr;
  const std::size_t slot = iter_id - round_base_id_;
  if (slot >= round_slots_) return nullptr;
  return arena_[slot].get();
}

namespace {
// Arbitration conflict attribution: every AbortIteration thrown (or
// provoked, via poison) over `item` charges the item one conflict.
void attribute_conflict(telemetry::LaneTelemetry* tlm,
                        std::uint32_t item) noexcept {
  if (tlm != nullptr && tlm->prof != nullptr) tlm->prof->on_conflict(item);
}
}  // namespace

void SpeculativeExecutor::acquire_arbitrated(IterationContext& ctx,
                                             std::uint32_t item) {
  // Every acquire is a cooperative-cancellation point — a poisoned
  // iteration must stop making progress promptly, including on
  // re-entrant acquires of items it already holds.
  if (ctx.status_.load(std::memory_order_acquire) !=
      IterationContext::kRunning) {
    throw AbortIteration{};
  }
  // Fast path: re-entrant hold.
  if (std::find(ctx.held_.begin(), ctx.held_.end(), item) !=
      ctx.held_.end()) {
    return;
  }
  for (;;) {
    if (ctx.status_.load(std::memory_order_acquire) !=
        IterationContext::kRunning) {
      throw AbortIteration{};
    }
    if (locks_.try_acquire(item, ctx.iter_id_)) {
      ctx.held_.push_back(item);
      return;
    }
    const std::uint32_t owner = locks_.owner(item);
    if (owner == LockManager::kFree || owner == ctx.iter_id_) continue;
    IterationContext* other = context_of(owner);
    if (other == nullptr) {
      // Foreign owner outside this round (e.g. a test holding the lock):
      // fall back to abort-self.
      attribute_conflict(ctx.tlm_, item);
      throw AbortIteration{};
    }
    if (ctx.priority_ >= other->priority_) {
      attribute_conflict(ctx.tlm_, item);
      throw AbortIteration{};  // the earlier (or equal) owner wins
    }
    // We are earlier: poison the owner, then wait for the item. The CAS
    // fails iff the owner already committed — then it holds the lock to
    // round end and we must yield the conflict instead.
    std::uint32_t expected = IterationContext::kRunning;
    const bool poisoned_now = other->status_.compare_exchange_strong(
        expected, IterationContext::kPoisoned, std::memory_order_acq_rel);
    if (!poisoned_now && expected == IterationContext::kCommitted) {
      attribute_conflict(ctx.tlm_, item);
      throw AbortIteration{};
    }
    if (poisoned_now && ctx.tlm_ != nullptr) {
      ++ctx.tlm_->arb_poisons;
      // The owner's impending abort is this item's fault; recorded by the
      // poisoner (the owner unwinds without knowing which item lost).
      attribute_conflict(ctx.tlm_, item);
    }
    // Owner is poisoned (by us or someone else): it will roll back and
    // release. Spin-wait, staying cancellable ourselves. The wait is timed
    // only when telemetry is attached (one clock pair per wait, not per
    // spin) — arbitrate-phase stalls are otherwise invisible to profiles.
    const std::uint64_t wait_start =
        ctx.tlm_ != nullptr ? phase_ticks() : 0;
    int spins = 0;
    while (locks_.owner(item) == owner) {
      if (ctx.status_.load(std::memory_order_acquire) !=
          IterationContext::kRunning) {
        if (ctx.tlm_ != nullptr) {
          ++ctx.tlm_->arb_waits;
          const std::uint64_t wait_ns =
              phase_ticks_to_ns(phase_ticks() - wait_start);
          ctx.tlm_->arb_wait_ns += wait_ns;
          if (ctx.tlm_->prof != nullptr) {
            ctx.tlm_->prof->on_arb_wait(item, wait_ns);
          }
        }
        throw AbortIteration{};
      }
      if (++spins > 64) {
        std::this_thread::yield();
        spins = 0;
      }
    }
    if (ctx.tlm_ != nullptr) {
      ++ctx.tlm_->arb_waits;
      const std::uint64_t wait_ns =
          phase_ticks_to_ns(phase_ticks() - wait_start);
      ctx.tlm_->arb_wait_ns += wait_ns;
      if (ctx.tlm_->prof != nullptr) {
        ctx.tlm_->prof->on_arb_wait(item, wait_ns);
      }
    }
    // Re-contend from the top (a third iteration may have grabbed it).
  }
}

void SpeculativeExecutor::record_round_error() noexcept {
  const std::lock_guard lock(round_error_mutex_);
  if (!round_error_) round_error_ = std::current_exception();
}

std::uint32_t SpeculativeExecutor::attempt_of(TaskId task) const noexcept {
  if (failure_attempts_.empty()) return 1;
  const auto it = failure_attempts_.find(task);
  return it == failure_attempts_.end() ? 1 : it->second + 1;
}

std::uint64_t SpeculativeExecutor::backoff_rounds(
    TaskId task, std::uint32_t attempt) const {
  const FailurePolicy& fp = *policy_;
  const std::uint64_t base =
      std::max<std::uint64_t>(1, fp.backoff_base_rounds);
  const std::uint64_t cap = std::max<std::uint64_t>(base,
                                                    fp.backoff_cap_rounds);
  // Decorrelated jitter over an exponential envelope: attempt k waits a
  // uniform number of rounds in [base, min(cap, base·3^(k-1))], with the
  // jitter drawn from a PRF over (seed, task, attempt) so replays match.
  std::uint64_t envelope = base;
  for (std::uint32_t k = 1; k < attempt && envelope < cap; ++k) {
    envelope = std::min(cap, envelope * 3);
  }
  if (envelope <= base) return base;
  SplitMix64 sm(backoff_seed_ ^ (task * 0x9e3779b97f4a7c15ULL) ^ attempt);
  return base + sm.next() % (envelope - base + 1);
}

void SpeculativeExecutor::release_due_deferred() {
  if (deferred_.empty()) return;
  const auto due_end = std::partition(
      deferred_.begin(), deferred_.end(),
      [&](const Deferred& d) { return d.due_round <= round_index_; });
  if (due_end == deferred_.begin()) return;
  // Reinsertion order is pinned to (due_round, task) so chaos runs with a
  // fixed fault seed replay the same worklist evolution.
  std::sort(deferred_.begin(), due_end,
            [](const Deferred& a, const Deferred& b) {
              return a.due_round != b.due_round ? a.due_round < b.due_round
                                                : a.task < b.task;
            });
  std::vector<TaskId> due;
  due.reserve(static_cast<std::size_t>(due_end - deferred_.begin()));
  for (auto it = deferred_.begin(); it != due_end; ++it) {
    due.push_back(it->task);
  }
  deferred_.erase(deferred_.begin(), due_end);
  push_initial(due);
}

void SpeculativeExecutor::requeue_tasks(std::span<const TaskId> tasks) {
  // Serial-tail reinsertion. The backend must never drop a task: priority
  // or footprint failures degrade inside the scheduler and surface through
  // the error sink (record_round_error).
  sched_->requeue(tasks);
}

void SpeculativeExecutor::process_faulted_slots(
    RoundStats& stats, std::vector<std::size_t>& slots) {
  if (slots.empty()) return;
  const FailurePolicy& fp = *policy_;
  for (const std::size_t slot : slots) {
    const TaskId task = active_[slot];
    IterationContext& ctx = *arena_[slot];
    const std::exception_ptr error =
        ctx.fault_ ? ctx.fault_ : ctx.rollback_fault_;
    if (!stats.first_error) stats.first_error = error;
    // Retry/quarantine is decided serially, but attributed back to the lane
    // that executed the attempt (slot_lane_ stamp). Lanes are quiescent
    // here, so pushing into a lane ring from the serial tail is safe.
    telemetry::LaneTelemetry* tlane = nullptr;
    if (telemetry_ != nullptr && slot < slot_lane_.size()) {
      tlane = &telemetry_->lane(slot_lane_[slot]);
    }
    const std::uint32_t attempts = ++failure_attempts_[task];
    if (attempts <= fp.max_retries) {
      ++stats.retried;
      deferred_.push_back(
          {round_index_ + backoff_rounds(task, attempts), task});
      if (tlane != nullptr) {
        ++tlane->retried;
        tlane->ring.push({telemetry::EventKind::kRetry,
                          slot_lane_[slot], round_index_, task, attempts,
                          0.0, 0.0, {}});
      }
    } else {
      ++stats.quarantined;
      dead_letters_.push_back(
          {task, attempts, telemetry::describe_exception(error)});
      failure_attempts_.erase(task);
      if (tlane != nullptr) {
        ++tlane->quarantined;
        tlane->ring.push({telemetry::EventKind::kQuarantine,
                          slot_lane_[slot], round_index_, task, attempts,
                          0.0, 0.0, dead_letters_.back().error});
      }
    }
  }
}

void SpeculativeExecutor::salvage_round(
    RoundStats& stats, std::size_t take, std::size_t lanes,
    std::vector<std::size_t>& faulted_slots) {
  // A lane died (exception escaped the lane body — not a task operator).
  // The surviving lanes already finalized every stamped slot the cursor
  // handed them; what remains is bounded and done serially here: slots the
  // dead lane claimed but never executed, slots executed but never
  // finalized (a lane died mid-epilogue), requeue buffers never spliced,
  // and a from-scratch recount of launched/committed (a dead lane's local
  // commit counter is lost).
  const bool absorbing = absorbs_faults();
  const bool active_valid = round_hardened_ || sched_->centralized();
  std::vector<TaskId> salvage_requeue;
  std::uint32_t launched = 0;
  std::uint32_t committed = 0;
  for (std::size_t slot = 0; slot < take; ++slot) {
    IterationContext& ctx = *arena_[slot];
    if (slot_executed_[slot] != round_index_) {
      // Ticket never redeemed. If the task was already drawn, return it to
      // the work-set; a sentinel means it never left its shard.
      if (active_valid && active_[slot] != kNoTask) {
        salvage_requeue.push_back(active_[slot]);
      }
      continue;
    }
    ++launched;
    const bool is_committed = ctx.status_.load(std::memory_order_relaxed) ==
                              IterationContext::kCommitted;
    if (is_committed) ++committed;
    if (slot_finalized_[slot] == round_index_) continue;
    // Finalize serially what the dead lane left behind.
    if (is_committed) {
      ctx.undo_.discard();
      salvage_requeue.insert(salvage_requeue.end(), ctx.pushed_.begin(),
                             ctx.pushed_.end());
      ctx.release_all();
    } else if (absorbing && (ctx.fault_ || ctx.rollback_fault_)) {
      faulted_slots.push_back(slot);
    } else {
      salvage_requeue.push_back(active_[slot]);
    }
    slot_finalized_[slot] = round_index_;
  }
  stats.launched = launched;
  stats.committed = committed;
  // Dead lanes may have buffered requeues without splicing them (buffers
  // are cleared after a successful splice, so leftovers are unspliced).
  for (std::size_t l = 0; l < lanes; ++l) {
    auto& requeue = lane_requeue_[l].value;
    if (!requeue.empty()) {
      salvage_requeue.insert(salvage_requeue.end(), requeue.begin(),
                             requeue.end());
      requeue.clear();
    }
  }
  requeue_tasks(salvage_requeue);
}

void SpeculativeExecutor::drain_prefetch() {
  if (prefetched_.empty()) return;
  requeue_tasks(prefetched_);
  prefetched_.clear();
}

void SpeculativeExecutor::overlap_prefetch(std::size_t lane, std::uint32_t m,
                                           telemetry::LaneTelemetry* tlane) {
  const std::uint64_t t0 = phase_ticks();
  telemetry::SpanBuffer* const sbuf =
      tlane != nullptr ? tlane->spans : nullptr;
  const std::uint64_t w0 = sbuf != nullptr ? monotonic_ns() : 0;
  // Availability FLOOR: every one of this round's draws already happened
  // (the round barrier is behind us), and concurrent epilogue splices only
  // ADD tasks — so drawing `want` tasks can never block on an empty
  // work-set. Overlap only runs on the distributed (random) backend, so
  // size() counts exactly the sharded work-set.
  const std::size_t avail = sched_->size();
  const std::size_t want = std::min<std::size_t>(m, avail);
  if (want == 0) return;
  Rng& rng = helper_rngs_[lane - 1];
  prefetched_.resize(want);
  for (std::size_t i = 0; i < want; ++i) {
    prefetched_[i] = sched_->draw_one(lane, rng);
  }
  // Read-only conflict pre-check against the live lock table. The commit
  // fence is per-item: LockManager::owner's acquire load pairs with the
  // release store of each concurrent lock release — exactly the writes
  // the pre-check reads, no full barrier. A verdict may be stale by the
  // time the task runs; it only ORDERS the next round's draw (likely-
  // clean tasks first, flagged tasks demoted to the tail), never gates
  // execution — so staleness is harmless.
  const auto clean = [this](TaskId task) {
    if (precheck_fn_) return precheck_fn_(task, locks_);
    return task >= locks_.size() ||
           locks_.owner(static_cast<std::uint32_t>(task)) ==
               LockManager::kFree;
  };
  const auto mid =
      std::partition(prefetched_.begin(), prefetched_.end(), clean);
  pipe_stats_.overlapped_rounds += 1;
  pipe_stats_.prefetched_tasks += want;
  pipe_stats_.precheck_flagged +=
      static_cast<std::uint64_t>(prefetched_.end() - mid);
  const std::uint64_t dt = phase_ticks_to_ns(phase_ticks() - t0);
  pipe_stats_.overlap_ns += dt;
  if (tlane != nullptr) tlane->precheck_ns += dt;
  if (sbuf != nullptr) {
    sbuf->push({"precheck", static_cast<std::uint32_t>(lane) + 1, w0,
                monotonic_ns(), round_index_, want, false, {}});
  }
}

template <bool kSerial>
void SpeculativeExecutor::round_lane(std::size_t lane, const RoundPlan& plan,
                                     SpinBarrier* barrier) {
  Rng& rng = lane == 0 ? rng_ : helper_rngs_[lane - 1];
  // Single-lane fast path: shared cursors degrade to plain locals (no
  // atomic RMW per chunk) — claim order is identical by construction.
  std::size_t serial_draw = 0;
  std::size_t serial_finalize = 0;
  // Lane-private telemetry block (cache-line padded; no atomics on the
  // counting path). nullptr when detached — every site below is then a
  // single predictable branch. Phase clocks are raw cycle-counter reads
  // (phase_ticks) on SAMPLED chunks only (kPhaseSamplePeriod), with one
  // timestamp carried across the draw->exec boundary inside a sampled
  // chunk; tick totals and task outcomes accumulate in locals and flush
  // to the lane block once per round — the enabled-overhead budget
  // (DESIGN.md §10) depends on all three.
  telemetry::LaneTelemetry* const tlane =
      telemetry_ != nullptr
          ? &telemetry_->lane(lane)
          : nullptr;
  // Span sink (nullptr unless a SpanCollector is attached): sampled chunks
  // additionally record wall-clock draw/exec spans into the lane's
  // single-producer buffer. Span mode is explicit opt-in (--trace-chrome),
  // so its extra monotonic_ns reads are outside the enabled-overhead
  // budget the sentinel holds plain telemetry to.
  telemetry::SpanBuffer* const sbuf =
      tlane != nullptr ? tlane->spans : nullptr;
  const std::uint32_t span_tid = static_cast<std::uint32_t>(lane) + 1;
  std::uint64_t phase_t = 0;
  std::uint64_t draw_ticks = 0;
  std::uint64_t exec_ticks = 0;
  std::uint64_t rollback_ticks = 0;
  std::uint64_t chunks_seen = 0;
  std::uint64_t lane_executed = 0;
  std::uint64_t lane_committed = 0;
  std::uint64_t lane_aborted = 0;
  // --- Speculative phase: draw and execute in ticket chunks. ----------
  // The phase-level catch turns a dying lane into a recorded pool fault
  // instead of a wedged barrier: the lane still arrives below, and the
  // serial tail salvages whatever it left behind.
  try {
    for (;;) {
      if (plan.inject_lane_faults) {
        injector_->maybe_throw(FaultSite::kPoolLane, round_index_, lane);
      }
      std::size_t begin;
      if constexpr (kSerial) {
        begin = serial_draw;
        serial_draw += plan.chunk;
      } else {
        begin = draw_cursor_.fetch_add(plan.chunk,
                                       std::memory_order_relaxed);
      }
      if (begin >= plan.take) break;
      const std::size_t end = std::min(plan.take, begin + plan.chunk);
      const bool timed =
          tlane != nullptr &&
          (chunks_seen++ & (kPhaseSamplePeriod - 1)) == 0;
      const bool spanned = timed && sbuf != nullptr;
      std::uint64_t span_t = spanned ? monotonic_ns() : 0;
      if (timed) phase_t = phase_ticks();
      if (!plan.centralized) {
        // Draw the chunk through the scheduler. Slots below
        // plan.prefilled were already drawn by the previous round's
        // overlapped prefetch — skip straight past them.
        const std::size_t slot = std::max(begin, plan.prefilled);
        if (slot < end) {
          sched_->draw_span(lane, rng, active_.data() + slot, end - slot);
        }
        if (timed) {
          const std::uint64_t now = phase_ticks();
          draw_ticks += now - phase_t;
          phase_t = now;
          if (spanned) {
            const std::uint64_t wall = monotonic_ns();
            sbuf->push({"draw", span_tid, span_t, wall, round_index_,
                        end - begin, false, {}});
            span_t = wall;
          }
        }
      }
      // Lane stamps are written per chunk — one vectorized fill
      // instead of a store interleaved into every task; every slot in
      // [begin, end) executes on this lane (or dies with it and is
      // salvaged serially). Their only consumer is the serial tail's
      // retry/quarantine attribution (process_faulted_slots), which can
      // only see work when fault absorption is on — so plain rounds
      // skip the stamping entirely.
      if (tlane != nullptr && plan.absorbing) {
        std::fill(slot_lane_.begin() + static_cast<std::ptrdiff_t>(begin),
                  slot_lane_.begin() + static_cast<std::ptrdiff_t>(end),
                  static_cast<std::uint32_t>(lane));
      }
      for (std::size_t slot = begin; slot < end; ++slot) {
        const TaskId task = active_[slot];
        IterationContext& ctx = *arena_[slot];
        std::uint64_t prio = task;
        if (priority_fn_) {
          try {
            prio = priority_fn_(task);
          } catch (...) {
            record_round_error();
          }
        }
        ctx.reset(round_base_id_ + static_cast<std::uint32_t>(slot), prio);
        ctx.unsync_ = kSerial;  // relaxed lock/status ops; no peers exist
        if (tlane != nullptr) {
          ctx.tlm_ = tlane;  // routes lock/arbitration counts to this lane
        }
        const std::uint32_t attempt = attempt_of(task);
        if (injector_ != nullptr &&
            injector_->should_fire(FaultSite::kRollbackInverse, task,
                                   attempt)) {
          // Injection site: an undo inverse that throws. Recorded first
          // so it runs LAST in the unwind — the two-phase rollback must
          // still run every real inverse before surfacing the error.
          FaultInjector* inj = injector_;
          ctx.on_abort([inj, task, attempt] {
            inj->count_fired(FaultSite::kRollbackInverse);
            throw InjectedFault(FaultSite::kRollbackInverse, task,
                                attempt);
          });
        }
        bool wants_commit = false;
        try {
          if (injector_ != nullptr) {
            // Injection sites: a slow task, then an operator that
            // throws a real (non-Abort) exception.
            injector_->maybe_stall(FaultSite::kOperatorDelay, task,
                                   attempt);
            injector_->maybe_throw(FaultSite::kOperatorThrow, task,
                                   attempt);
          }
          op_(task, ctx);
          wants_commit = true;
        } catch (const AbortIteration&) {
          // speculative conflict or voluntary abort
        } catch (...) {
          // Application failure: preserved per-slot for the retry/
          // quarantine decision, and in round_error_ so it is never
          // silently dropped (RoundStats::first_error).
          ctx.fault_ = std::current_exception();
          record_round_error();
        }
        if (tlane != nullptr) {
          // held_ is still populated here (released below on abort), so
          // this is the per-task "items touched" sample either way.
          ++lane_executed;
          tlane->work.record(ctx.held_.size());
        }
        // Finalize: a poisoned iteration may not commit even if it
        // finished.
        if (wants_commit && ctx.try_commit()) {
          // Committed iterations keep their items locked until the round
          // ends (the paper's semantics: an earlier committed neighbor
          // blocks).
          if (tlane != nullptr) ++lane_committed;
        } else {
          // Roll back while still owning the touched items, then release
          // them immediately: an aborted task must not block later tasks
          // (§2.1), and a priority-wins waiter may be spinning on one of
          // our items. The unwind is two-phase (UndoLog::rollback): a
          // throwing inverse never strands the inverses below it.
          const std::uint64_t rb_t0 = timed ? phase_ticks() : 0;
          const std::uint64_t rb_w0 = spanned ? monotonic_ns() : 0;
          try {
            ctx.undo_.rollback();
          } catch (...) {
            ctx.rollback_fault_ = std::current_exception();
            record_round_error();
          }
          ctx.release_all();
          if (tlane != nullptr) {
            ++lane_aborted;
            if (timed) rollback_ticks += phase_ticks() - rb_t0;
            if (spanned) {
              sbuf->push({"rollback", span_tid, rb_w0, monotonic_ns(),
                          round_index_, task, false, {}});
            }
          }
        }
        slot_executed_[slot] = round_index_;
      }
      if (timed) {
        // exec covers the whole speculative slice (operator + commit/
        // rollback decisions); rollback above is a sub-slice of it.
        exec_ticks += phase_ticks() - phase_t;
        if (spanned) {
          sbuf->push({"exec", span_tid, span_t, monotonic_ns(),
                      round_index_, end - begin, false, {}});
        }
      }
    }
  } catch (...) {
    lane_pool_fault_[lane].value = std::current_exception();
    record_round_error();
  }
  if (tlane != nullptr) {
    // Single flush per round — a dying lane still reaches it (the catch
    // above absorbed the escape), so counters stay exact even on a pool
    // fault; only the fatal chunk's partial time is understated.
    tlane->executed += lane_executed;
    tlane->committed += lane_committed;
    tlane->aborted += lane_aborted;
    if (chunks_seen > 0) {
      // Scale the sampled tick totals up to the chunk population (the
      // sample is deterministic: chunks 0, P, 2P, ...), then convert
      // ticks to nanoseconds — once per phase per round.
      const std::uint64_t timed_chunks =
          (chunks_seen + kPhaseSamplePeriod - 1) / kPhaseSamplePeriod;
      const double scale = phase_ns_per_tick() *
                           static_cast<double>(chunks_seen) /
                           static_cast<double>(timed_chunks);
      tlane->draw_ns += static_cast<std::uint64_t>(
          static_cast<double>(draw_ticks) * scale);
      tlane->exec_ns += static_cast<std::uint64_t>(
          static_cast<double>(exec_ticks) * scale);
      tlane->rollback_ns += static_cast<std::uint64_t>(
          static_cast<double>(rollback_ticks) * scale);
    }
  }
  // --- Round barrier: commits become final, locks still held. ---------
  // Every lane arrives exactly once, even after a pool fault above —
  // otherwise the surviving lanes would spin forever. The single-lane
  // fast path has no peers to fence against and skips it outright.
  if constexpr (!kSerial) barrier->arrive_and_wait();
  // --- Epilogue phase (parallel): publish pushes of committed
  //     iterations, buffer requeues lane-locally, release locks. -------
  try {
    auto& requeue = lane_requeue_[lane].value;
    std::uint32_t committed = 0;
    const bool track_commit = lane == 0 && plan.overlap;
    const std::uint64_t commit_t0 =
        (tlane != nullptr || track_commit) ? phase_ticks() : 0;
    const std::uint64_t commit_w0 = sbuf != nullptr ? monotonic_ns() : 0;
    // Software pipeline (DESIGN.md §12): while the other lanes run the
    // commit epilogue for round t, the LAST lane draws and pre-checks
    // round t+1 into the double buffer (prefetched_). The buffer is
    // published to the caller by the fork-join join; no lane reads it
    // before the next run_round.
    if constexpr (!kSerial) {
      if (plan.overlap && lane + 1 == plan.lanes) {
        overlap_prefetch(lane, plan.m, tlane);
      }
    }
    for (;;) {
      std::size_t begin;
      if constexpr (kSerial) {
        begin = serial_finalize;
        serial_finalize += kFinalizeChunk;
      } else {
        begin = finalize_cursor_.fetch_add(kFinalizeChunk,
                                           std::memory_order_relaxed);
      }
      if (begin >= plan.take) break;
      const std::size_t end = std::min(plan.take, begin + kFinalizeChunk);
      for (std::size_t slot = begin; slot < end; ++slot) {
        if (slot_executed_[slot] != round_index_) {
          continue;  // a dead lane's ticket; salvaged serially
        }
        IterationContext& ctx = *arena_[slot];
        if (ctx.status_.load(std::memory_order_relaxed) ==
            IterationContext::kCommitted) {
          ctx.undo_.discard();
          ++committed;
          requeue.insert(requeue.end(), ctx.pushed_.begin(),
                         ctx.pushed_.end());
          ctx.release_all();
        } else if (plan.absorbing && (ctx.fault_ || ctx.rollback_fault_)) {
          // Failed, not merely conflicted: the serial tail decides
          // retry-with-backoff vs quarantine. Not requeued here.
          lane_faulted_[lane].value.push_back(slot);
        } else {
          requeue.push_back(active_[slot]);
        }
        slot_finalized_[slot] = round_index_;
      }
    }
    lane_committed_[lane].value = committed;
    // --- Splice this lane's requeue buffer back into the work-set. ----
    // Backend exceptions (e.g. a throwing priority function) propagate
    // into the catch below and become a recorded pool fault; the serial
    // tail re-splices the still-populated buffer through requeue().
    if (!requeue.empty()) {
      sched_->splice(lane, requeue);
      requeue.clear();  // spliced; salvage treats leftovers as unspliced
    }
    if (tlane != nullptr || track_commit) {
      const std::uint64_t commit_ns =
          phase_ticks_to_ns(phase_ticks() - commit_t0);
      if (tlane != nullptr) tlane->commit_ns += commit_ns;
      // Occupancy denominator: lane 0's epilogue wall time. Distinct
      // scalar from the prefetch lane's overlap_ns — no write race.
      if (track_commit) pipe_stats_.commit_ns += commit_ns;
    }
    if (sbuf != nullptr) {
      sbuf->push({"commit", span_tid, commit_w0, monotonic_ns(),
                  round_index_, committed, false, {}});
    }
  } catch (...) {
    if (!lane_pool_fault_[lane].value) {
      lane_pool_fault_[lane].value = std::current_exception();
    }
    record_round_error();
  }
}

RoundStats SpeculativeExecutor::run_round(std::uint32_t m) {
  // nullptr accumulator → ScopedTimer performs no clock reads at all.
  ScopedTimer round_timer(acc_round_);
  ++round_index_;
  // Coordinator-level round span (tid 0); lane chunk spans nest under it
  // on their own tids. Null collector = no clock read, same as the timer.
  telemetry::SpanScope round_span(
      telemetry_ != nullptr ? telemetry_->spans() : nullptr, "round", 0,
      round_index_, m);
  release_due_deferred();
  RoundStats stats;
  const std::uint64_t injected_before =
      injector_ != nullptr ? injector_->total_fired() : 0;
  const bool centralized = sched_->centralized();
  round_hardened_ = injector_ != nullptr || policy_.has_value();
  // Hardened, degraded, and centralized rounds never consume an overlapped
  // draw: salvage accounts for every ticket through kNoTask sentinels
  // (which a pre-filled prefix would defeat), and centralized backends
  // re-evaluate their draw order at round start. Return the buffer to the
  // work-set first — through the scheduler interface, so no backend can
  // leak prefetched tasks.
  if (!prefetched_.empty() &&
      (round_hardened_ || serial_fallback_ || centralized)) {
    drain_prefetch();
  }
  std::size_t take = 0;
  std::size_t prefilled = 0;
  if (centralized) {
    // Centralized backends materialize the active set up front: the heap /
    // color class / relaxed draw IS the policy.
    take = sched_->begin_round(m, active_, rng_);
  } else {
    const std::size_t available = prefetched_.size() + sched_->size();
    take = std::min<std::size_t>(m, available);
    active_.resize(take);  // slots are filled by the drawing lanes
    if (round_hardened_) {
      // Salvage after a lane death must know which tickets were redeemed.
      std::fill_n(active_.begin(), take, kNoTask);
    }
    if (!prefetched_.empty()) {
      // Splice the overlapped draw from the previous round's epilogue into
      // the leading slots (pre-check ordered them likely-clean first). Any
      // surplus — the controller shrank m — flows back to the work-set.
      prefilled = std::min(take, prefetched_.size());
      std::copy_n(prefetched_.begin(), prefilled, active_.begin());
      if (prefilled < prefetched_.size()) {
        requeue_tasks(
            std::span<const TaskId>(prefetched_).subspan(prefilled));
      }
      prefetched_.clear();
    }
  }
  stats.launched = static_cast<std::uint32_t>(take);
  if (telemetry_ != nullptr) {
    telemetry_->emit({telemetry::EventKind::kRoundStart, 0, round_index_, m,
                      take, 0.0, 0.0, {}});
  }
  if (take == 0) return stats;

  // Arena: slot i of this round recycles arena_[i]; only first-time slots
  // allocate. Iteration ids stay dense per round for the lock table.
  const std::uint32_t base_id = next_iteration_id_;
  next_iteration_id_ += stats.launched;
  while (arena_.size() < take) {
    auto ctx = std::make_unique<IterationContext>(locks_, 0);
    ctx->executor_ = this;
    arena_.push_back(std::move(ctx));
  }
  round_base_id_ = base_id;
  round_slots_ = take;
  if (slot_executed_.size() < take) {
    slot_executed_.resize(take, 0);
    slot_finalized_.resize(take, 0);
  }

  // Lane count mirrors the old parallel_for policy (at most one lane per
  // pool worker) CAPPED by the processor-allocation setting: by default no
  // more lanes than the machine has cores to run them (oversubscribed
  // lanes only add draw-cursor and barrier traffic — the paper's
  // allocation argument applied to the runtime itself). A nested call
  // site (inside a pool worker) cannot get concurrent lanes from the
  // pool, so it must run single-lane; after graceful degradation the
  // executor pins itself to the serial path regardless of the pool.
  const std::size_t lane_cap = pipeline_.max_lanes != 0
                                   ? pipeline_.max_lanes
                                   : effective_concurrency();
  std::size_t lanes =
      pool_.in_worker_context()
          ? 1
          : std::max<std::size_t>(
                1, std::min({shard_count_, take, lane_cap}));
  if (serial_fallback_) lanes = 1;
  if (lane_requeue_.size() < lanes) lane_requeue_.resize(lanes);
  if (lane_committed_.size() < lanes) lane_committed_.resize(lanes);
  if (lane_faulted_.size() < lanes) lane_faulted_.resize(lanes);
  if (lane_pool_fault_.size() < lanes) lane_pool_fault_.resize(lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    lane_requeue_[l].value.clear();
    lane_committed_[l].value = 0;
    lane_faulted_[l].value.clear();
    lane_pool_fault_[l].value = nullptr;
  }
  if (telemetry_ != nullptr) {
    telemetry_->ensure_lanes(lanes);
    // slot→lane stamps let the serial tail attribute retries/quarantines
    // to the executing lane; maintained only while a sink is attached.
    if (slot_lane_.size() < take) slot_lane_.resize(take, 0);
  }
  draw_cursor_.store(0, std::memory_order_relaxed);
  finalize_cursor_.store(0, std::memory_order_relaxed);
  round_error_ = nullptr;
  const bool absorbing = absorbs_faults();
  // kPoolLane models a dying pool worker; the serial path runs on the
  // caller's thread, which this site does not model — gating it keeps the
  // degraded executor guaranteed to drain.
  const bool inject_lane_faults = injector_ != nullptr && lanes > 1;

  RoundPlan plan;
  plan.take = take;
  plan.prefilled = prefilled;
  plan.chunk = draw_chunk(take, lanes);
  plan.lanes = lanes;
  plan.m = m;
  plan.centralized = centralized;
  plan.absorbing = absorbing;
  plan.inject_lane_faults = inject_lane_faults;
  plan.overlap = pipeline_.overlapped_draw && lanes > 1 && !centralized &&
                 !round_hardened_;

  if (lanes == 1 && pipeline_.single_lane_fast_path) {
    // Deterministic fast path: identical claim order to a one-lane pool
    // run, but no fork-join hop, no barrier, and relaxed lock-table
    // traffic. Called directly so in_worker_context() stays false for
    // the operator, exactly as fork_join(participants == 1) behaved.
    round_lane<true>(0, plan, nullptr);
  } else {
    SpinBarrier round_barrier(lanes);
    pool_.run_on_workers(lanes, [&](std::size_t lane) {
      round_lane<false>(lane, plan, &round_barrier);
    });
  }
  round_slots_ = 0;

  // --- Serial tail: pool-fault salvage, then retry/quarantine. -----------
  std::vector<std::size_t> faulted_slots;
  bool lane_fault = false;
  for (std::size_t l = 0; l < lanes; ++l) {
    if (lane_pool_fault_[l].value) lane_fault = true;
  }
  if (lane_fault) {
    ++pool_failures_;
    if (telemetry_ != nullptr) {
      for (std::size_t l = 0; l < lanes; ++l) {
        if (lane_pool_fault_[l].value) {
          telemetry_->emit(
              {telemetry::EventKind::kLaneDeath,
               static_cast<std::uint32_t>(l), round_index_, pool_failures_,
               0, 0.0, 0.0,
               telemetry::describe_exception(lane_pool_fault_[l].value)});
        }
      }
    }
    {
      ScopedTimer salvage_timer(acc_salvage_);
      salvage_round(stats, take, lanes, faulted_slots);
    }
    if (policy_.has_value() &&
        pool_failures_ >= policy_->max_pool_failures) {
      if (!serial_fallback_ && telemetry_ != nullptr) {
        telemetry_->emit({telemetry::EventKind::kSerialDegrade, 0,
                          round_index_, pool_failures_, 0, 0.0, 0.0,
                          "pool-failure budget exhausted"});
      }
      serial_fallback_ = true;  // graceful degradation: serial from now on
    }
  } else {
    for (std::size_t l = 0; l < lanes; ++l) {
      stats.committed += lane_committed_[l].value;
    }
  }
  if (absorbing) {
    for (std::size_t l = 0; l < lanes; ++l) {
      auto& faulted = lane_faulted_[l].value;
      faulted_slots.insert(faulted_slots.end(), faulted.begin(),
                           faulted.end());
    }
    // Ascending slot order makes the retry/quarantine sequence (and the
    // dead-letter list) deterministic for a fixed fault seed.
    std::sort(faulted_slots.begin(), faulted_slots.end());
    process_faulted_slots(stats, faulted_slots);
    if (!failure_attempts_.empty()) {
      // A task that finally committed clears its attempt history.
      for (std::size_t slot = 0; slot < take; ++slot) {
        if (slot_executed_[slot] == round_index_ &&
            arena_[slot]->status_.load(std::memory_order_relaxed) ==
                IterationContext::kCommitted) {
          failure_attempts_.erase(active_[slot]);
        }
      }
    }
    if (dead_letters_.size() > policy_->quarantine_budget) {
      if (!serial_fallback_ && telemetry_ != nullptr) {
        telemetry_->emit({telemetry::EventKind::kSerialDegrade, 0,
                          round_index_, dead_letters_.size(), 0, 0.0, 0.0,
                          "quarantine budget exhausted"});
      }
      serial_fallback_ = true;
    }
  }
  stats.aborted = stats.launched - stats.committed;
  // Zero-abort backends (chromatic): same-color tasks have pairwise
  // disjoint declared footprints, so no iteration can ever lose a lock
  // conflict. Conflict detection stays on (the locks are the correctness
  // net) but is demoted to this debug assert; hardened rounds and runs
  // with a fault injector attached are exempt (injected faults and
  // voluntary retries abort without conflicting).
  assert(!sched_->zero_abort() || round_hardened_ || injector_ != nullptr ||
         stats.aborted == 0);
  assert(locks_.all_free());
  if (injector_ != nullptr) {
    stats.injected =
        static_cast<std::uint32_t>(injector_->total_fired() -
                                   injected_before);
  }

  ++totals_.rounds;
  totals_.launched += stats.launched;
  totals_.committed += stats.committed;
  totals_.aborted += stats.aborted;
  totals_.retried += stats.retried;
  totals_.quarantined += stats.quarantined;

  if (!stats.first_error && round_error_) stats.first_error = round_error_;
  if (telemetry_ != nullptr) {
    const double rate =
        stats.launched == 0
            ? 0.0
            : static_cast<double>(stats.committed) /
                  static_cast<double>(stats.launched);
    telemetry_->emit({telemetry::EventKind::kRoundEnd, 0, round_index_,
                      stats.launched, stats.committed, rate,
                      static_cast<double>(stats.aborted), {}});
  }
  if (round_error_) {
    // The round's bookkeeping is complete (locks free, tasks requeued or
    // quarantined, totals counted). Legacy contract: surface the error.
    // With an absorbing FailurePolicy it stays on the stats instead.
    std::exception_ptr error = round_error_;
    round_error_ = nullptr;
    if (!absorbing) std::rethrow_exception(error);
  }
  return stats;
}

// ---- checkpoint/restore (DESIGN.md §11) -----------------------------------
//
// Serialization invariants the format relies on:
//  * Between rounds every per-round scratch structure (arena, active_,
//    lane buffers, cursors, round_error_) is logically empty, so only the
//    durable state below needs to cross the snapshot.
//  * The work-set itself is owned by the scheduler backend; its bytes are
//    delegated to Scheduler::save_state/load_state after the shape header
//    (which pins the backend tag, so a snapshot can never be replayed
//    under a different draw discipline).
//  * failure_attempts_ is only ever probed point-wise (find/erase), so the
//    rebuilt map's iteration order is irrelevant; entries are written
//    sorted by task purely to make the snapshot bytes canonical.

namespace {

[[noreturn]] void state_mismatch(const std::string& what) {
  throw snapshot::SnapshotError(snapshot::SnapshotError::Kind::kMismatch,
                                "executor state: " + what);
}

void write_rng(snapshot::Writer& out, const Rng& rng) {
  for (const std::uint64_t w : rng.state()) out.u64(w);
}

void read_rng(snapshot::Reader& in, Rng& rng) {
  std::array<std::uint64_t, 4> s{};
  for (auto& w : s) w = in.u64();
  rng.set_state(s);
}

}  // namespace

void SpeculativeExecutor::save_state(snapshot::Writer& out) const {
  // Shape header: everything load_state cross-checks before touching state.
  out.u64(backoff_seed_);
  out.u64(static_cast<std::uint64_t>(shard_count_));
  out.u8(static_cast<std::uint8_t>(policy_wl_));
  out.u8(static_cast<std::uint8_t>(arbitration_));
  out.u8(static_cast<std::uint8_t>(sched_->backend()));
  out.u64(static_cast<std::uint64_t>(locks_.size()));

  write_rng(out, rng_);
  for (const Rng& rng : helper_rngs_) write_rng(out, rng);

  // Backend-owned work-set (DESIGN.md §14). The overlapped-draw buffer is
  // handed over so a snapshot taken between a prefetch and its round folds
  // those drawn-but-not-launched tasks back into pending work.
  sched_->save_state(out, prefetched_);

  out.u64(round_index_);
  out.u32(next_iteration_id_);
  out.u64(totals_.rounds);
  out.u64(totals_.launched);
  out.u64(totals_.committed);
  out.u64(totals_.aborted);
  out.u64(totals_.retried);
  out.u64(totals_.quarantined);

  std::vector<std::pair<TaskId, std::uint32_t>> attempts(
      failure_attempts_.begin(), failure_attempts_.end());
  std::sort(attempts.begin(), attempts.end());
  out.u64(attempts.size());
  for (const auto& [task, count] : attempts) {
    out.u64(task);
    out.u32(count);
  }

  out.u64(deferred_.size());
  for (const Deferred& d : deferred_) {
    out.u64(d.due_round);
    out.u64(d.task);
  }

  out.u64(dead_letters_.size());
  for (const DeadLetter& dl : dead_letters_) {
    out.u64(dl.task);
    out.u32(dl.attempts);
    out.str(dl.error);
  }

  out.u32(pool_failures_);
  out.u8(serial_fallback_ ? 1 : 0);
}

void SpeculativeExecutor::load_state(snapshot::Reader& in) {
  // The snapshot already folded any overlapped draw back into shard 0.
  prefetched_.clear();
  if (in.u64() != backoff_seed_) state_mismatch("seed differs");
  if (in.u64() != shard_count_) state_mismatch("shard count differs");
  if (in.u8() != static_cast<std::uint8_t>(policy_wl_)) {
    state_mismatch("worklist policy differs");
  }
  if (in.u8() != static_cast<std::uint8_t>(arbitration_)) {
    state_mismatch("arbitration policy differs");
  }
  if (in.u8() != static_cast<std::uint8_t>(sched_->backend())) {
    state_mismatch("scheduler backend differs");
  }
  const std::uint64_t lock_items = in.u64();
  if (lock_items < locks_.size()) state_mismatch("lock table shrank");
  locks_.grow(lock_items);  // mid-run grow_items calls replayed in one step

  read_rng(in, rng_);
  for (Rng& rng : helper_rngs_) read_rng(in, rng);

  sched_->load_state(in);

  round_index_ = in.u64();
  next_iteration_id_ = in.u32();
  totals_.rounds = in.u64();
  totals_.launched = in.u64();
  totals_.committed = in.u64();
  totals_.aborted = in.u64();
  totals_.retried = in.u64();
  totals_.quarantined = in.u64();

  failure_attempts_.clear();
  const std::uint64_t attempt_count = in.u64();
  for (std::uint64_t i = 0; i < attempt_count; ++i) {
    const TaskId task = in.u64();
    failure_attempts_[task] = in.u32();
  }

  deferred_.clear();
  const std::uint64_t deferred_count = in.u64();
  // Pre-size from the bytes actually present, never the claimed count — a
  // hostile length must hit a bounds-checked read, not an allocation.
  deferred_.reserve(std::min<std::uint64_t>(deferred_count,
                                            in.remaining() / 16));
  for (std::uint64_t i = 0; i < deferred_count; ++i) {
    Deferred d;
    d.due_round = in.u64();
    d.task = in.u64();
    deferred_.push_back(d);
  }

  dead_letters_.clear();
  const std::uint64_t dead_count = in.u64();
  dead_letters_.reserve(std::min<std::uint64_t>(dead_count,
                                                in.remaining() / 20));
  for (std::uint64_t i = 0; i < dead_count; ++i) {
    DeadLetter dl;
    dl.task = in.u64();
    dl.attempts = in.u32();
    dl.error = in.str();
    dead_letters_.push_back(std::move(dl));
  }

  pool_failures_ = in.u32();
  serial_fallback_ = in.u8() != 0;
}

}  // namespace optipar
