// Round-synchronous speculative executor — the substrate that stands in for
// the Galois runtime (see DESIGN.md §4 and §7). Each round, m tasks are
// drawn from the work-set (uniformly at random by default) and executed
// concurrently on the thread pool. An iteration acquires the abstract lock
// of every item it touches; conflicts are resolved by the arbitration
// policy (abort-self, or KDG-style priority-wins with cooperative
// poisoning). Aborted iterations roll back their undo log and requeue;
// committed iterations publish their newly created tasks. The per-round
// (launched, committed, aborted) statistics are exactly the observations
// Algorithm 1's controller needs.
//
// Hot-path structure (DESIGN.md §7): the work-set is sharded per lane with
// work stealing, so task draw and requeue never funnel through one global
// mutex; IterationContext objects live in a per-slot arena that survives
// across rounds (reset, not reallocated); and one fork-join dispatch per
// round runs both the speculative phase and the commit/requeue epilogue,
// separated by a barrier. With a single lane (pool of one worker) the
// draw/requeue sequence is byte-identical to a centralized worklist, which
// pins the determinism contract tests rely on.
//
// Failure hardening (DESIGN.md §8): beyond the benign AbortIteration, the
// executor treats real failures — operator exceptions, rollback-inverse
// exceptions, dead pool lanes — as first-class inputs. Installing a
// FailurePolicy switches from "rethrow the first error at round end" to
// retry-with-backoff and dead-letter quarantine; an optional FaultInjector
// fires deterministic, seeded faults at the execute/commit/rollback paths
// so chaos runs replay exactly.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "control/controller.hpp"
#include "rt/fault_injector.hpp"
#include "rt/item_lock.hpp"
#include "rt/undo_log.hpp"
#include "sched/scheduler.hpp"
#include "support/failure_policy.hpp"
#include "support/padded.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace optipar {

class SpinBarrier;

namespace telemetry {
class RuntimeTelemetry;
struct LaneTelemetry;
}  // namespace telemetry

namespace snapshot {
class Writer;
class Reader;
}  // namespace snapshot

/// Thrown (internally) when an acquire conflicts; user operators may also
/// throw it to abort voluntarily.
struct AbortIteration {};

class SpeculativeExecutor;

/// Handle given to the user operator while one task executes speculatively.
class IterationContext {
 public:
  IterationContext(LockManager& locks, std::uint32_t iter_id) noexcept
      : locks_(locks), iter_id_(iter_id) {}

  IterationContext(const IterationContext&) = delete;
  IterationContext& operator=(const IterationContext&) = delete;

  /// Acquire the abstract lock for `item`; throws AbortIteration when this
  /// iteration loses the conflict arbitration. Re-entrant for items
  /// already held by this iteration.
  void acquire(std::uint32_t item);

  /// Non-throwing variant (always abort-self semantics: never waits).
  [[nodiscard]] bool try_acquire(std::uint32_t item);

  /// Register the inverse of a speculative mutation (runs on abort).
  void on_abort(std::function<void()> inverse) {
    undo_.record(std::move(inverse));
  }

  /// Schedule new work, visible only if this iteration commits.
  void push(TaskId task) { pushed_.push_back(task); }

  [[nodiscard]] std::uint32_t iteration_id() const noexcept {
    return iter_id_;
  }
  [[nodiscard]] std::span<const std::uint32_t> held() const noexcept {
    return held_;
  }
  /// Scheduling/arbitration priority of this iteration (smaller = earlier).
  [[nodiscard]] std::uint64_t priority() const noexcept { return priority_; }

 private:
  friend class SpeculativeExecutor;

  enum : std::uint32_t { kRunning = 0, kCommitted = 1, kPoisoned = 2 };

  /// Re-arm a recycled arena context for a fresh iteration. held_, pushed_
  /// and the undo log keep their capacity — the whole point of the arena is
  /// that a steady-state round performs no allocation here.
  void reset(std::uint32_t iter_id, std::uint64_t priority) noexcept {
    iter_id_ = iter_id;
    priority_ = priority;
    status_.store(kRunning, std::memory_order_relaxed);
    held_.clear();
    pushed_.clear();
    undo_.discard();
    fault_ = nullptr;
    rollback_fault_ = nullptr;
    tlm_ = nullptr;
    unsync_ = false;
  }

  /// Finalize: only an un-poisoned iteration may commit. On the serial
  /// fast path (unsync_) nobody can poison concurrently, so the CAS
  /// degrades to a relaxed load + store.
  [[nodiscard]] bool try_commit() noexcept {
    if (unsync_) {
      if (status_.load(std::memory_order_relaxed) != kRunning) return false;
      status_.store(kCommitted, std::memory_order_relaxed);
      return true;
    }
    std::uint32_t expected = kRunning;
    return status_.compare_exchange_strong(expected, kCommitted,
                                           std::memory_order_acq_rel);
  }
  void release_all();

  LockManager& locks_;
  std::uint32_t iter_id_;
  std::uint64_t priority_ = 0;
  SpeculativeExecutor* executor_ = nullptr;  // set for arbitration/faults
  std::atomic<std::uint32_t> status_{kRunning};
  std::vector<std::uint32_t> held_;
  std::vector<TaskId> pushed_;
  UndoLog undo_;
  // Failure records of the current attempt (read in the round's serial
  // tail): a non-Abort exception out of the operator, and a RollbackError
  // out of the (completed, two-phase) unwind.
  std::exception_ptr fault_;
  std::exception_ptr rollback_fault_;
  // Executing lane's telemetry block (DESIGN.md §10); nullptr whenever
  // telemetry is detached, so every counting site is one branch.
  telemetry::LaneTelemetry* tlm_ = nullptr;
  // Single-lane fast path (DESIGN.md §12): when set, lock and status
  // transitions use the relaxed CAS-free variants — legal only while no
  // other thread can observe this context or the lock table.
  bool unsync_ = false;
};

/// The user operator: process one task inside a speculative iteration. It
/// must acquire() every item it reads or writes and register undo actions
/// for every mutation. Returning normally requests a commit.
using TaskOperator = std::function<void(TaskId, IterationContext&)>;

struct ExecutorTotals {
  std::uint64_t rounds = 0;
  std::uint64_t launched = 0;
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t retried = 0;      ///< faulted tasks requeued with backoff
  std::uint64_t quarantined = 0;  ///< tasks moved to the dead-letter list

  [[nodiscard]] double wasted_fraction() const noexcept {
    return launched == 0
               ? 0.0
               : static_cast<double>(aborted) / static_cast<double>(launched);
  }
};

// WorklistPolicy (how the random backend draws) lives in
// sched/scheduler.hpp next to the Backend selector; it is re-exported into
// namespace optipar from there.

/// Conflict arbitration between two live iterations contending for an item:
///   kAbortSelf     — the later arrival aborts itself (the paper's model;
///                    deadlock-free because nobody ever waits).
///   kPriorityWins  — KDG-style: the earlier-priority iteration poisons the
///                    owner and waits for the item; the poisoned owner
///                    aborts at its next acquire (or fails its final
///                    commit). Wait-for edges always point from earlier to
///                    later priority, so no cycles can form. Priorities
///                    come from set_priority_function (default: TaskId).
enum class ArbitrationPolicy { kAbortSelf, kPriorityWins };

/// Everything that shapes how rounds are scheduled and arbitrated, in one
/// bag (DESIGN.md §14). The legacy (policy, arbitration) constructor maps
/// onto this with scheduler = kRandom. Non-random backends require
/// worklist == kRandom: the worklist policy is a *random-backend* draw
/// knob, and combining it with chromatic/relaxed has no meaning.
struct RoundOptions {
  WorklistPolicy worklist = WorklistPolicy::kRandom;
  ArbitrationPolicy arbitration = ArbitrationPolicy::kAbortSelf;
  sched::Backend scheduler = sched::Backend::kRandom;
  /// MultiQueue width factor c (relaxed backend): c·lanes heaps.
  std::size_t relaxed_queues_per_lane = 4;
};

/// Software-pipelined round execution knobs (DESIGN.md §12).
struct PipelineConfig {
  /// Upper bound on concurrent lanes per round. 0 (the default) caps at
  /// the host's effective concurrency: a lane that cannot physically run
  /// buys nothing but barrier stalls and context switches, so the
  /// executor never oversubscribes by default. Tests that choreograph
  /// cross-lane interleavings (barriers inside operators, injected lane
  /// deaths) set an explicit lane count to force concurrency back on.
  std::size_t max_lanes = 0;
  /// Overlap round t+1's random draw and conflict pre-check with round
  /// t's commit epilogue (multi-lane rounds only): the last lane runs the
  /// double-buffered draw stage while the other lanes commit.
  bool overlapped_draw = true;
  /// Use the CAS-free single-lane specialization whenever a round runs on
  /// one lane. The schedule is byte-identical either way; disabling it
  /// exists for the fast-vs-generic differential tests.
  bool single_lane_fast_path = true;
};

/// Occupancy accounting for the overlapped draw stage (cumulative).
struct PipelineStats {
  std::uint64_t overlapped_rounds = 0;  ///< rounds that ran a prefetch
  std::uint64_t prefetched_tasks = 0;   ///< tasks drawn ahead of their round
  std::uint64_t precheck_flagged = 0;   ///< prefetched tasks probed busy
  std::uint64_t overlap_ns = 0;  ///< wall time of the draw+precheck stage
  std::uint64_t commit_ns = 0;   ///< lane-0 commit wall during overlap
  /// Fraction of commit time with an active overlapped draw, in [0, 1].
  [[nodiscard]] double occupancy() const noexcept {
    if (commit_ns == 0) return 0.0;
    const double f = static_cast<double>(overlap_ns) /
                     static_cast<double>(commit_ns);
    return f > 1.0 ? 1.0 : f;
  }
};

class SpeculativeExecutor {
 public:
  /// A task retired to the dead-letter list after exhausting its retry
  /// budget (FailurePolicy::max_retries).
  struct DeadLetter {
    TaskId task = 0;
    std::uint32_t attempts = 0;  ///< executions performed (all failed)
    std::string error;           ///< what() of the final failure
  };

  /// `items` sizes the lock table (growable between rounds via grow_items).
  SpeculativeExecutor(ThreadPool& pool, std::size_t items, TaskOperator op,
                      std::uint64_t seed,
                      WorklistPolicy policy = WorklistPolicy::kRandom,
                      ArbitrationPolicy arbitration =
                          ArbitrationPolicy::kAbortSelf);

  /// Full-options constructor: selects the scheduler backend (DESIGN.md
  /// §14). Throws std::invalid_argument for meaningless combinations
  /// (non-random backend with a non-kRandom worklist policy).
  SpeculativeExecutor(ThreadPool& pool, std::size_t items, TaskOperator op,
                      std::uint64_t seed, const RoundOptions& options);

  /// Seed the work-set.
  void push_initial(std::span<const TaskId> tasks);

  /// Required before any push under WorklistPolicy::kPriority and under
  /// the relaxed backend; also sets the arbitration priority under
  /// ArbitrationPolicy::kPriorityWins. Maps a task to its priority
  /// (smaller = sooner / stronger). Evaluated at push time (scheduling)
  /// and at launch time (arbitration).
  void set_priority_function(std::function<std::uint64_t(TaskId)> fn);

  /// Required before any push under the chromatic backend (and before
  /// load_state, which recomputes footprints): declares every item a
  /// task's operator may acquire. Throws std::logic_error on any other
  /// backend.
  void set_footprint_function(sched::FootprintFn fn);

  /// Chromatic backend: drop the standing coloring and recolor all pending
  /// tasks with fresh footprints. Dynamic apps whose operators change task
  /// neighborhoods (contraction, refinement) call this between rounds; a
  /// no-op on other backends. Call between rounds only.
  void invalidate_schedule();

  [[nodiscard]] sched::Backend scheduler_backend() const noexcept {
    return sched_->backend();
  }
  [[nodiscard]] sched::Scheduler& scheduler() noexcept { return *sched_; }

  /// Install retry/quarantine failure handling (DESIGN.md §8). Without a
  /// policy the executor keeps the legacy contract: the first non-Abort
  /// operator error is rethrown at round end and faulted tasks requeue
  /// unconditionally. Call between rounds only.
  void set_failure_policy(const FailurePolicy& policy) { policy_ = policy; }
  [[nodiscard]] const std::optional<FailurePolicy>& failure_policy()
      const noexcept {
    return policy_;
  }

  /// Configure the pipelined round execution (DESIGN.md §12). Call
  /// between rounds only.
  void set_pipeline(const PipelineConfig& config) noexcept {
    pipeline_ = config;
  }
  [[nodiscard]] const PipelineConfig& pipeline() const noexcept {
    return pipeline_;
  }
  [[nodiscard]] const PipelineStats& pipeline_stats() const noexcept {
    return pipe_stats_;
  }

  /// Override the overlapped-draw conflict pre-check (DESIGN.md §12). The
  /// function sees a prefetched task and the live lock table and returns
  /// true when the task looks runnable; flagged tasks are demoted to the
  /// tail of the next round's draw. It must be READ-ONLY (LockManager::
  /// owner probes at most) and tolerate stale answers — the pre-check is
  /// an ordering hint, never a correctness gate. Default: probe the
  /// task's own item (task id == item id, the common app convention).
  /// Call between rounds only; an empty function restores the default.
  void set_precheck_function(
      std::function<bool(TaskId, const LockManager&)> fn) {
    precheck_fn_ = std::move(fn);
  }

  /// Attach a deterministic fault injector (non-owning; nullptr detaches).
  /// Injection points: operator throw/delay per attempt, rollback-inverse
  /// throw, lock-acquire stall, and pool-lane death. Call between rounds.
  void set_fault_injector(FaultInjector* injector) noexcept {
    injector_ = injector;
  }

  /// Attach a telemetry sink (non-owning; nullptr detaches). Call between
  /// rounds only. With a sink attached the executor records per-lane
  /// counters, phase times, a work histogram, and structured trace events;
  /// detached (the default) every instrumentation site reduces to one
  /// pointer test, and the schedule is byte-identical either way — the
  /// sink never influences draws, arbitration, or requeues (DESIGN.md §10).
  void set_telemetry(telemetry::RuntimeTelemetry* sink);
  [[nodiscard]] telemetry::RuntimeTelemetry* telemetry() const noexcept {
    return telemetry_;
  }

  [[nodiscard]] std::size_t pending() const;
  [[nodiscard]] bool done() const { return pending() == 0; }

  /// Extend the lock table (e.g. after the mesh allocated new triangles).
  void grow_items(std::size_t items) { locks_.grow(items); }

  /// Run one optimistic round with (up to) m concurrent tasks. Aborted
  /// tasks are rolled back and requeued; committed tasks' pushes join the
  /// work-set. Returns the round's statistics.
  RoundStats run_round(std::uint32_t m);

  [[nodiscard]] const ExecutorTotals& totals() const noexcept {
    return totals_;
  }
  [[nodiscard]] LockManager& locks() noexcept { return locks_; }
  [[nodiscard]] ArbitrationPolicy arbitration() const noexcept {
    return arbitration_;
  }

  /// Quarantined tasks, in retirement order.
  [[nodiscard]] const std::vector<DeadLetter>& dead_letters() const noexcept {
    return dead_letters_;
  }
  /// Tasks currently waiting out a retry backoff (still counted pending).
  [[nodiscard]] std::size_t deferred_count() const noexcept {
    return deferred_.size();
  }
  /// True once the executor has fallen back to the single-lane serial path
  /// (repeated pool-lane failure or quarantine-budget exhaustion).
  [[nodiscard]] bool serial_degraded() const noexcept {
    return serial_fallback_;
  }
  /// Rounds in which a pool lane died (exception outside any task).
  [[nodiscard]] std::uint32_t pool_failures() const noexcept {
    return pool_failures_;
  }
  /// Rounds started so far — the executor's logical clock for backoff.
  [[nodiscard]] std::uint64_t round_index() const noexcept {
    return round_index_;
  }

  /// Checkpoint hooks (DESIGN.md §11). Between rounds the executor's future
  /// behavior is fully determined by the work-set, the draw RNG streams,
  /// the round clock, and the failure-hardening ledgers — save_state
  /// captures exactly that set, and load_state rebuilds it so that every
  /// subsequent run_round draws, arbitrates, backs off, and quarantines
  /// byte-identically to the uninterrupted run. The snapshot leads with a
  /// shape header (seed derivative, shard count, worklist/arbitration
  /// policy); load_state throws SnapshotError{kMismatch} when the receiving
  /// executor was constructed differently, rather than resuming a run that
  /// would silently diverge. Configuration that cannot be serialized (the
  /// operator, priority function, failure policy, injector, telemetry) must
  /// be reinstalled by the host before load_state. Call between rounds only.
  void save_state(snapshot::Writer& out) const;
  void load_state(snapshot::Reader& in);

 private:
  friend class IterationContext;

  /// A faulted task waiting out its backoff (due_round is absolute).
  struct Deferred {
    std::uint64_t due_round = 0;
    TaskId task = 0;
  };

  /// Blocking acquire implementing kPriorityWins (called from contexts).
  void acquire_arbitrated(IterationContext& ctx, std::uint32_t item);
  [[nodiscard]] IterationContext* context_of(std::uint32_t iter_id);

  void record_round_error() noexcept;

  /// True when a FailurePolicy absorbs faults (retry/quarantine) instead
  /// of the legacy round-end rethrow.
  [[nodiscard]] bool absorbs_faults() const noexcept {
    return policy_.has_value() && !policy_->rethrow_operator_errors;
  }
  /// Attempt number the next execution of `task` would be (1 + failures).
  [[nodiscard]] std::uint32_t attempt_of(TaskId task) const noexcept;
  /// Deterministic decorrelated-jitter backoff, in rounds.
  [[nodiscard]] std::uint64_t backoff_rounds(TaskId task,
                                             std::uint32_t attempt) const;
  /// Move deferred tasks whose backoff expired back into the work-set.
  void release_due_deferred();
  /// Serial per-round fault handling: retry-or-quarantine every faulted
  /// slot (ascending slot order — deterministic), update stats/dead list.
  void process_faulted_slots(RoundStats& stats,
                             std::vector<std::size_t>& slots);
  /// Serial recovery after a pool-lane death: finish un-finalized slots,
  /// recount launched/committed, requeue drawn-but-unexecuted tasks, and
  /// splice dead lanes' buffered requeues. Returns faulted slots found.
  void salvage_round(RoundStats& stats, std::size_t take, std::size_t lanes,
                     std::vector<std::size_t>& faulted_slots);
  /// Splice tasks into the work-set per policy (serial tail only).
  void requeue_tasks(std::span<const TaskId> tasks);

  /// Everything a round lane needs that is fixed before dispatch. One
  /// instance per round, shared read-only by all lanes.
  struct RoundPlan {
    std::size_t take = 0;       ///< tickets (slots) this round
    std::size_t prefilled = 0;  ///< slots pre-filled by the overlapped draw
    std::size_t chunk = 0;      ///< ticket-claim chunk size
    std::size_t lanes = 0;
    std::uint32_t m = 0;        ///< requested allocation (prefetch sizing)
    bool centralized = false;   ///< active set materialized by begin_round
    bool absorbing = false;
    bool inject_lane_faults = false;
    bool overlap = false;  ///< run the overlapped draw in this epilogue
  };

  /// The round body one lane executes: chunked draw + speculative
  /// execution, round barrier, then the commit/requeue epilogue.
  /// kSerial == true is the single-lane fast path (DESIGN.md §12): plain
  /// cursors instead of shared atomics, no barrier, and relaxed CAS-free
  /// lock/status transitions — while keeping the draw order, telemetry
  /// sampling, and epilogue sequence byte-identical to a one-lane generic
  /// round.
  template <bool kSerial>
  void round_lane(std::size_t lane, const RoundPlan& plan,
                  SpinBarrier* barrier);

  /// Software-pipelined draw stage (DESIGN.md §12): called by the last
  /// lane at the top of its epilogue, so round t+1's draw + conflict
  /// pre-check overlap round t's commit on the other lanes.
  void overlap_prefetch(std::size_t lane, std::uint32_t m,
                        telemetry::LaneTelemetry* tlane);
  /// Return the overlapped-draw buffer to the work-set (round shapes that
  /// cannot consume it: hardened or degraded rounds).
  void drain_prefetch();

  ThreadPool& pool_;
  LockManager locks_;
  TaskOperator op_;
  Rng rng_;                       // lane 0's draw stream (the seeded stream)
  std::vector<Rng> helper_rngs_;  // lanes 1..S-1, derived from the seed
  WorklistPolicy policy_wl_;
  ArbitrationPolicy arbitration_;

  // The pluggable work-set + draw stage (DESIGN.md §14). Shard count is
  // fixed at construction to the pool's worker count; the random backend
  // shards per lane, the chromatic/relaxed backends are centralized.
  std::size_t shard_count_;
  std::unique_ptr<sched::Scheduler> sched_;
  // Executor-side copy for launch-time arbitration priorities (the
  // scheduler holds its own copy for draw ordering).
  std::function<std::uint64_t(TaskId)> priority_fn_;

  // Context arena: slot s of every round reuses arena_[s]. Valid only while
  // run_round's parallel section executes (read by workers through
  // acquire_arbitrated); round_slots_ bounds the live prefix.
  std::vector<std::unique_ptr<IterationContext>> arena_;
  std::uint32_t round_base_id_ = 0;
  std::size_t round_slots_ = 0;

  // Per-round scratch, reused across rounds. active_[slot] is written by
  // the drawing lane in the speculative phase and read after the round
  // barrier. Lane-indexed buffers/counters are padded so that commit and
  // requeue accounting never false-shares.
  std::vector<TaskId> active_;
  std::vector<Padded<std::vector<TaskId>>> lane_requeue_;
  std::vector<Padded<std::uint32_t>> lane_committed_;
  alignas(kCacheLine) std::atomic<std::size_t> draw_cursor_{0};
  alignas(kCacheLine) std::atomic<std::size_t> finalize_cursor_{0};
  std::exception_ptr round_error_;  // first non-Abort operator exception
  std::mutex round_error_mutex_;

  // --- failure hardening (DESIGN.md §8) ----------------------------------
  FaultInjector* injector_ = nullptr;  // non-owning; nullptr = no injection
  std::optional<FailurePolicy> policy_;
  std::uint64_t backoff_seed_;  // jitter PRF seed (derived from `seed`)
  std::uint64_t round_index_ = 0;
  // Per-slot stamps: executed (speculative phase ran commit-or-rollback)
  // and finalized (epilogue processed it). A slot whose stamp is stale
  // after a lane death is salvaged serially.
  std::vector<std::uint64_t> slot_executed_;
  std::vector<std::uint64_t> slot_finalized_;
  std::vector<Padded<std::vector<std::size_t>>> lane_faulted_;
  std::vector<Padded<std::exception_ptr>> lane_pool_fault_;
  std::unordered_map<TaskId, std::uint32_t> failure_attempts_;
  std::vector<Deferred> deferred_;
  std::vector<DeadLetter> dead_letters_;
  std::uint32_t pool_failures_ = 0;
  bool serial_fallback_ = false;
  // True while the current round sentinel-fills active_ (injector or policy
  // installed), so salvage can tell drawn slots from never-drawn ones.
  bool round_hardened_ = false;

  // --- software pipelining (DESIGN.md §12) -------------------------------
  // prefetched_ is the double buffer of the draw stage: filled by the last
  // lane of round t's epilogue, consumed at the head of round t+1's active
  // set (publication via the fork-join join). Its tasks are out of their
  // shards but still pending; save_state serializes them back into the
  // work-set so a crash between an overlapped draw and its commit replays
  // the draw. pipe_stats_ members are written by two different lanes
  // (overlap_* by the prefetch lane, commit_ns by lane 0) — distinct
  // scalars, so there is no data race.
  PipelineConfig pipeline_;
  std::function<bool(TaskId, const LockManager&)> precheck_fn_;
  std::vector<TaskId> prefetched_;
  PipelineStats pipe_stats_;

  // --- telemetry (DESIGN.md §10) -----------------------------------------
  // Non-owning; nullptr = detached (the default). slot_lane_ stamps which
  // lane executed each slot so the serial tail can attribute retries and
  // quarantines back to the executing lane; only maintained while attached
  // AND fault absorption is on (its sole consumer is the retry/quarantine
  // path, and plain rounds skip the stamping cost).
  telemetry::RuntimeTelemetry* telemetry_ = nullptr;
  std::vector<std::uint32_t> slot_lane_;
  TimerAccumulator* acc_round_ = nullptr;    // "executor.round"
  TimerAccumulator* acc_salvage_ = nullptr;  // "executor.salvage"

  ExecutorTotals totals_;
  std::uint32_t next_iteration_id_ = 0;
};

}  // namespace optipar
