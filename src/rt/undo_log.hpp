// Per-iteration undo log: speculative mutations register inverse actions,
// which run in reverse order if the iteration aborts (the "roll-back" of
// optimistic parallelization). Committed iterations simply discard the log.
#pragma once

#include <functional>
#include <utility>
#include <vector>

namespace optipar {

class UndoLog {
 public:
  /// Register the inverse of a mutation just performed.
  void record(std::function<void()> inverse) {
    actions_.push_back(std::move(inverse));
  }

  [[nodiscard]] std::size_t size() const noexcept { return actions_.size(); }
  [[nodiscard]] bool empty() const noexcept { return actions_.empty(); }

  /// Abort path: run all inverses newest-first, then clear.
  void rollback() {
    for (auto it = actions_.rbegin(); it != actions_.rend(); ++it) (*it)();
    actions_.clear();
  }

  /// Commit path: forget the inverses.
  void discard() noexcept { actions_.clear(); }

 private:
  std::vector<std::function<void()>> actions_;
};

}  // namespace optipar
