// Per-iteration undo log: speculative mutations register inverse actions,
// which run in reverse order if the iteration aborts (the "roll-back" of
// optimistic parallelization). Committed iterations simply discard the log.
//
// Rollback is TWO-PHASE exception-safe (DESIGN.md §8): an inverse that
// throws must not strand the inverses recorded before it — the unwind
// always runs to completion (phase 1), and only then are the collected
// per-action errors surfaced as one RollbackError (phase 2). Anything less
// leaks speculative state into the shared data structures, which the
// round-synchronous executor can never repair.
#pragma once

#include <cstddef>
#include <functional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace optipar {

/// Raised after a completed unwind in which one or more inverses threw.
/// Carries per-action context: the record-order index of each failed
/// inverse and the message it threw with.
class RollbackError : public std::runtime_error {
 public:
  struct ActionError {
    std::size_t index;  ///< record-order index of the failing inverse
    std::string what;   ///< message of the exception it threw
  };

  explicit RollbackError(std::vector<ActionError> errors)
      : std::runtime_error(format(errors)), errors_(std::move(errors)) {}

  [[nodiscard]] const std::vector<ActionError>& errors() const noexcept {
    return errors_;
  }

 private:
  static std::string format(const std::vector<ActionError>& errors) {
    std::string msg = "rollback completed with " +
                      std::to_string(errors.size()) + " failed inverse(s):";
    for (const auto& e : errors) {
      msg += " [#" + std::to_string(e.index) + ": " + e.what + "]";
    }
    return msg;
  }

  std::vector<ActionError> errors_;
};

class UndoLog {
 public:
  /// Register the inverse of a mutation just performed. Recycles the slot
  /// storage of previous iterations: the arena resets a context's log with
  /// discard(), which rewinds the cursor without releasing the vector, so
  /// a steady-state task re-records into existing slots (and small-buffer
  /// std::function targets never touch the heap).
  void record(std::function<void()> inverse) {
    if (size_ < actions_.size()) {
      actions_[size_] = std::move(inverse);
    } else {
      actions_.push_back(std::move(inverse));
    }
    ++size_;
  }

  /// Pre-size the action storage (e.g. to a workload's known touch count).
  void reserve(std::size_t n) { actions_.reserve(n); }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Abort path: run all inverses newest-first. The unwind is two-phase —
  /// every inverse runs even if earlier ones throw; collected failures are
  /// then surfaced as a single RollbackError with per-action context. The
  /// log is empty afterwards in both outcomes.
  void rollback() {
    std::vector<RollbackError::ActionError> errors;
    for (std::size_t i = size_; i-- > 0;) {
      try {
        actions_[i]();
      } catch (const std::exception& e) {
        errors.push_back({i, e.what()});
      } catch (...) {
        errors.push_back({i, "non-std exception"});
      }
    }
    size_ = 0;
    if (!errors.empty()) throw RollbackError(std::move(errors));
  }

  /// Commit path: forget the inverses. Keeps slot storage for recycling;
  /// call shrink() to actually release captured state.
  void discard() noexcept { size_ = 0; }

  /// Release the recycled slots (drops whatever the stale inverses
  /// captured). For contexts leaving an arena, not the per-round path.
  void shrink() noexcept {
    actions_.clear();
    actions_.shrink_to_fit();
  }

 private:
  // Live prefix [0, size_) of actions_; slots past the cursor are retained
  // moved-from/stale functions kept only for storage reuse.
  std::vector<std::function<void()>> actions_;
  std::size_t size_ = 0;
};

}  // namespace optipar
