// Immutable undirected graph in compressed-sparse-row form. This is the
// representation the model layer (permutation sweeps, Monte-Carlo
// conflict-ratio estimation) iterates over millions of times, so neighbor
// access is a contiguous span and the structure is frozen after build.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace optipar {

using NodeId = std::uint32_t;
using EdgeList = std::vector<std::pair<NodeId, NodeId>>;

class CsrGraph {
 public:
  CsrGraph() = default;

  /// Build from an undirected edge list over nodes [0, n). Self-loops are
  /// rejected (a task never conflicts with itself in the CC model) and
  /// duplicate edges are merged. Throws std::invalid_argument on
  /// out-of-range endpoints or self-loops.
  static CsrGraph from_edges(NodeId n, const EdgeList& edges);

  [[nodiscard]] NodeId num_nodes() const noexcept {
    return static_cast<NodeId>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }
  /// Number of undirected edges.
  [[nodiscard]] std::uint64_t num_edges() const noexcept {
    return adjacency_.size() / 2;
  }
  [[nodiscard]] std::uint32_t degree(NodeId v) const {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }
  /// Sorted neighbor list of v.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const {
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }
  /// Average degree d = 2|E| / n (0 for the empty graph).
  [[nodiscard]] double average_degree() const noexcept;
  [[nodiscard]] std::uint32_t max_degree() const noexcept;
  /// O(log deg) adjacency test via binary search on the sorted list.
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

  /// Recover the (u < v canonical) undirected edge list.
  [[nodiscard]] EdgeList edges() const;

  /// Internal-consistency check used by tests and after deserialization:
  /// offsets monotone, neighbor lists sorted + deduplicated, adjacency
  /// symmetric, no self-loops.
  [[nodiscard]] bool validate() const;

 private:
  std::vector<std::uint64_t> offsets_;  // size n+1
  std::vector<NodeId> adjacency_;       // size 2|E|
};

}  // namespace optipar
