// Plain-text graph persistence: whitespace edge lists ("u v" per line, `#`
// comments, a "p <n> <m>" header) and DIMACS-like format. Enough to move
// generated CC graphs between the bench binaries and external tools.
//
// The reader treats its input as HOSTILE (DESIGN.md §11): node ids are
// bounds-checked against the header, self and duplicate edges are rejected,
// the edge count must match the header exactly, and claimed sizes can never
// drive an allocation beyond the bytes actually present. Every failure is a
// typed GraphIoError carrying the offending line, so a fuzzer corpus can
// assert the *reason* each corrupt file was refused, not just that it threw.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <stdexcept>
#include <string>

#include "graph/csr_graph.hpp"

namespace optipar::io {

/// Typed failure taxonomy of read_edge_list. Derives from
/// std::runtime_error so pre-existing catch sites keep working.
class GraphIoError : public std::runtime_error {
 public:
  enum class Kind {
    kIo,             ///< file cannot be opened
    kBadHeader,      ///< missing or unparseable "p n m" header
    kBadEdge,        ///< unparseable or trailing-garbage edge line
    kOutOfRange,     ///< endpoint negative or >= n
    kSelfLoop,       ///< u == v
    kDuplicateEdge,  ///< the same undirected edge appears twice
    kCountMismatch,  ///< edges present != header's m
    kOverflow,       ///< n or m exceed what the graph types can represent
  };

  GraphIoError(Kind kind, std::size_t line, const std::string& what)
      : std::runtime_error("read_edge_list: " + what +
                           (line == 0 ? std::string{}
                                      : " at line " + std::to_string(line))),
        kind_(kind), line_(line) {}

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  /// 1-based input line of the offense (0 when not line-specific).
  [[nodiscard]] std::size_t line() const noexcept { return line_; }

 private:
  Kind kind_;
  std::size_t line_;
};

/// Write "p n m" header then one "u v" line per undirected edge.
void write_edge_list(const CsrGraph& g, std::ostream& out);
void write_edge_list(const CsrGraph& g, const std::string& path);

/// Parse the format produced by write_edge_list. Lines starting with '#' or
/// 'c' are comments. Throws GraphIoError (a std::runtime_error) on
/// malformed, out-of-range, duplicated, or truncated input.
CsrGraph read_edge_list(std::istream& in);
CsrGraph read_edge_list(const std::string& path);

}  // namespace optipar::io
