// Plain-text graph persistence: whitespace edge lists ("u v" per line, `#`
// comments, a "p <n> <m>" header) and DIMACS-like format. Enough to move
// generated CC graphs between the bench binaries and external tools.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/csr_graph.hpp"

namespace optipar::io {

/// Write "p n m" header then one "u v" line per undirected edge.
void write_edge_list(const CsrGraph& g, std::ostream& out);
void write_edge_list(const CsrGraph& g, const std::string& path);

/// Parse the format produced by write_edge_list. Lines starting with '#' or
/// 'c' are comments. Throws std::runtime_error on malformed input.
CsrGraph read_edge_list(std::istream& in);
CsrGraph read_edge_list(const std::string& path);

}  // namespace optipar::io
