// Disjoint-set union with path halving + union by size. Used by the graph
// algorithms (connected components) and by the Boruvka application, both
// sequentially and under speculative execution (where each iteration's
// unions are guarded by the runtime's abstract locks).
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

namespace optipar {

class UnionFind {
 public:
  explicit UnionFind(std::uint32_t n) : parent_(n), size_(n, 1), sets_(n) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }

  [[nodiscard]] std::uint32_t find(std::uint32_t x) noexcept {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  /// Merge the sets containing a and b; returns false if already joined.
  bool unite(std::uint32_t a, std::uint32_t b) noexcept {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    --sets_;
    return true;
  }

  [[nodiscard]] bool connected(std::uint32_t a, std::uint32_t b) noexcept {
    return find(a) == find(b);
  }
  [[nodiscard]] std::uint32_t set_size(std::uint32_t x) noexcept {
    return size_[find(x)];
  }
  [[nodiscard]] std::uint32_t num_sets() const noexcept { return sets_; }
  [[nodiscard]] std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(parent_.size());
  }

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> size_;
  std::uint32_t sets_;
};

}  // namespace optipar
