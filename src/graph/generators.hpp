// Synthetic CC-graph families. These stand in for the paper's workloads:
//   * gnm_random        — Fig. 2/3's "random graph: edges chosen uniformly at
//                         random until the desired degree is reached"
//   * union_of_cliques  — K_d^n, the worst case of Thm. 2 / Remark 2
//   * clique_plus_isolated — Example 1's K_{n^2} ⊎ D_n family (parameterized)
//   * random_regular, grid/torus, path/cycle — seating-problem meshes
//   * rmat, barabasi_albert — skewed-degree graphs for robustness studies
#pragma once

#include <cstdint>

#include "graph/csr_graph.hpp"
#include "support/rng.hpp"

namespace optipar::gen {

/// Erdős–Rényi G(n, M): exactly `edges` distinct edges chosen uniformly
/// among all pairs. Throws if edges exceeds n(n-1)/2.
CsrGraph gnm_random(NodeId n, std::uint64_t edges, Rng& rng);

/// G(n, M) with the edge count chosen to hit a target average degree d
/// (M = round(n*d/2)).
CsrGraph random_with_average_degree(NodeId n, double avg_degree, Rng& rng);

/// Erdős–Rényi G(n, p) via geometric skipping (O(n + |E|)).
CsrGraph gnp_random(NodeId n, double p, Rng& rng);

/// K_d^n from the paper: s = n/(d+1) disjoint cliques of size d+1. Requires
/// (d+1) | n. Average degree is exactly d.
CsrGraph union_of_cliques(NodeId n, std::uint32_t d);

/// Example 1's family: one clique of size `clique` plus `isolated`
/// disconnected nodes (clique nodes come first).
CsrGraph clique_plus_isolated(NodeId clique, NodeId isolated);

/// Complete graph K_n.
CsrGraph complete(NodeId n);

/// Star with `leaves` leaves (node 0 is the hub).
CsrGraph star(NodeId leaves);

/// Simple path 0-1-...-(n-1).
CsrGraph path(NodeId n);

/// Cycle on n >= 3 nodes.
CsrGraph cycle(NodeId n);

/// rows x cols 4-neighbor grid (the unfriendly-seating mesh of [11]).
CsrGraph grid_2d(NodeId rows, NodeId cols);

/// rows x cols 4-neighbor torus (every node has degree exactly 4).
CsrGraph torus_2d(NodeId rows, NodeId cols);

/// Random d-regular graph via the configuration/pairing model with
/// restarts; requires n*d even and d < n. Simple (no loops/multi-edges).
CsrGraph random_regular(NodeId n, std::uint32_t d, Rng& rng);

/// R-MAT recursive-matrix graph (a,b,c quadrant probabilities; the fourth
/// is 1-a-b-c). n is rounded up to a power of two internally and trimmed.
CsrGraph rmat(NodeId n, std::uint64_t edges, double a, double b, double c,
              Rng& rng);

/// Barabási–Albert preferential attachment: each new node attaches `k`
/// edges to existing nodes with probability proportional to degree.
CsrGraph barabasi_albert(NodeId n, std::uint32_t k, Rng& rng);

}  // namespace optipar::gen
