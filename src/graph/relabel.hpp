// Cache-conscious node relabeling for the sweep-heavy model layer. A
// permutation sweep walks adjacency lists in permutation order, so its
// memory behavior is governed by how the CSR rows of neighboring nodes are
// laid out: generator families like R-MAT and Barabási–Albert hand out ids
// that scatter each node's neighborhood across the whole adjacency array,
// and every neighbor stamp becomes a cache miss.
//
// A relabeling pass rewrites the CSR with a locality-aware permutation —
// BFS order (neighbors of a node get nearby ids, so committed-node stamping
// touches a compact window) or degree order (hot high-degree rows pack
// together at the front of the adjacency array). All conflict-ratio
// statistics are label-invariant: r̄(m), k̄(m), and EM_m depend only on the
// isomorphism class of the graph, because the commit permutation is uniform
// over whichever labeling is in force. The Relabeling struct carries both
// directions of the map so callers that do care about identities (per-node
// results, external NodeIds) can translate losslessly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr_graph.hpp"

namespace optipar {

enum class RelabelOrder : std::uint8_t {
  kNone = 0,   ///< identity — keep the builder's labels
  kBfs = 1,    ///< breadth-first order per component (locality windows)
  kDegree = 2  ///< degree-descending (hot rows first)
};

/// Parse "none" / "bfs" / "degree" (CLI flag values). Throws on others.
[[nodiscard]] RelabelOrder parse_relabel_order(const std::string& name);
[[nodiscard]] const char* relabel_order_name(RelabelOrder order);

/// A bijection between external ("old") and internal ("new") NodeIds.
struct Relabeling {
  std::vector<NodeId> old_to_new;  ///< indexed by old id
  std::vector<NodeId> new_to_old;  ///< indexed by new id

  [[nodiscard]] NodeId to_internal(NodeId old_id) const {
    return old_to_new[old_id];
  }
  [[nodiscard]] NodeId to_external(NodeId new_id) const {
    return new_to_old[new_id];
  }
  [[nodiscard]] bool is_identity() const noexcept;
  /// Internal-consistency: both arrays are inverse permutations.
  [[nodiscard]] bool validate() const;
};

/// Identity relabeling over n nodes.
[[nodiscard]] Relabeling identity_relabeling(NodeId n);

/// BFS order: components are entered at their smallest old id, nodes are
/// numbered in dequeue order, neighbors enqueue in sorted-adjacency order.
/// Deterministic — no RNG, no tie ambiguity.
[[nodiscard]] Relabeling bfs_relabeling(const CsrGraph& g);

/// Degree-descending order; ties broken by old id (stable), so the result
/// is deterministic.
[[nodiscard]] Relabeling degree_relabeling(const CsrGraph& g);

/// Dispatch on the enum.
[[nodiscard]] Relabeling make_relabeling(const CsrGraph& g,
                                         RelabelOrder order);

/// Rebuild the CSR under the relabeling in O(n + |E|) (no edge-list round
/// trip): new node r.old_to_new[v] owns v's neighbor set, itself mapped and
/// re-sorted. The result validates and is isomorphic to `g` by
/// construction.
[[nodiscard]] CsrGraph apply_relabeling(const CsrGraph& g,
                                        const Relabeling& r);

/// A relabeled graph bundled with its map — what the estimation engine
/// carries so every external NodeId remains translatable.
struct RelabeledGraph {
  CsrGraph graph;
  Relabeling map;
};

[[nodiscard]] RelabeledGraph relabel(const CsrGraph& g, RelabelOrder order);

}  // namespace optipar
