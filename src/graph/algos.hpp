// Graph algorithms shared by the model layer and tests: independent-set
// machinery (the committed set of an optimistic round IS a greedy MIS over
// the commit permutation), connected components, and degree statistics.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr_graph.hpp"
#include "support/rng.hpp"

namespace optipar {

struct DegreeStats {
  double average = 0.0;
  std::uint32_t min = 0;
  std::uint32_t max = 0;
  double variance = 0.0;
};

[[nodiscard]] DegreeStats degree_stats(const CsrGraph& g);

/// Greedy maximal independent set over an explicit node order: node is kept
/// iff no earlier kept neighbor exists. This is exactly the committed set of
/// the paper's commit-permutation semantics when `order` spans all nodes.
[[nodiscard]] std::vector<NodeId> greedy_mis(const CsrGraph& g,
                                             std::span<const NodeId> order);

/// Greedy MIS over a uniformly random permutation (Turán's random-greedy).
[[nodiscard]] std::vector<NodeId> random_greedy_mis(const CsrGraph& g,
                                                    Rng& rng);

[[nodiscard]] bool is_independent_set(const CsrGraph& g,
                                      std::span<const NodeId> nodes);

/// Maximality within the whole graph: independent and no node can be added.
[[nodiscard]] bool is_maximal_independent_set(const CsrGraph& g,
                                              std::span<const NodeId> nodes);

/// Connected components; returns component id per node and count.
struct Components {
  std::vector<std::uint32_t> id;
  std::uint32_t count = 0;
};
[[nodiscard]] Components connected_components(const CsrGraph& g);

/// Exact count of triangles (for generator sanity checks).
[[nodiscard]] std::uint64_t triangle_count(const CsrGraph& g);

/// The graph square: u ~ v iff their distance in g is 1 or 2. This is the
/// CC (conflict) graph of neighborhood-locking tasks — two MIS/coloring
/// tasks conflict exactly when their lock sets {v} ∪ N(v) intersect.
[[nodiscard]] CsrGraph square(const CsrGraph& g);

}  // namespace optipar
