#include "graph/algos.hpp"

#include <algorithm>
#include <stdexcept>

namespace optipar {

DegreeStats degree_stats(const CsrGraph& g) {
  DegreeStats s;
  const NodeId n = g.num_nodes();
  if (n == 0) return s;
  s.min = UINT32_MAX;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (NodeId v = 0; v < n; ++v) {
    const std::uint32_t d = g.degree(v);
    s.min = std::min(s.min, d);
    s.max = std::max(s.max, d);
    sum += d;
    sum_sq += static_cast<double>(d) * d;
  }
  s.average = sum / n;
  s.variance = sum_sq / n - s.average * s.average;
  return s;
}

std::vector<NodeId> greedy_mis(const CsrGraph& g,
                               std::span<const NodeId> order) {
  std::vector<bool> kept(g.num_nodes(), false);
  std::vector<bool> seen(g.num_nodes(), false);
  std::vector<NodeId> result;
  for (const NodeId v : order) {
    if (v >= g.num_nodes()) throw std::invalid_argument("greedy_mis: bad id");
    if (seen[v]) throw std::invalid_argument("greedy_mis: duplicate in order");
    seen[v] = true;
    bool blocked = false;
    for (const NodeId w : g.neighbors(v)) {
      if (kept[w]) {
        blocked = true;
        break;
      }
    }
    if (!blocked) {
      kept[v] = true;
      result.push_back(v);
    }
  }
  return result;
}

std::vector<NodeId> random_greedy_mis(const CsrGraph& g, Rng& rng) {
  const auto perm = rng.permutation(g.num_nodes());
  return greedy_mis(g, std::span<const NodeId>(perm));
}

bool is_independent_set(const CsrGraph& g, std::span<const NodeId> nodes) {
  std::vector<bool> in(g.num_nodes(), false);
  for (const NodeId v : nodes) {
    if (v >= g.num_nodes() || in[v]) return false;
    in[v] = true;
  }
  for (const NodeId v : nodes) {
    for (const NodeId w : g.neighbors(v)) {
      if (in[w]) return false;
    }
  }
  return true;
}

bool is_maximal_independent_set(const CsrGraph& g,
                                std::span<const NodeId> nodes) {
  if (!is_independent_set(g, nodes)) return false;
  std::vector<bool> in(g.num_nodes(), false);
  for (const NodeId v : nodes) in[v] = true;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (in[v]) continue;
    bool blocked = false;
    for (const NodeId w : g.neighbors(v)) {
      if (in[w]) {
        blocked = true;
        break;
      }
    }
    if (!blocked) return false;  // v could still be added
  }
  return true;
}

Components connected_components(const CsrGraph& g) {
  Components comp;
  comp.id.assign(g.num_nodes(), UINT32_MAX);
  std::vector<NodeId> stack;
  for (NodeId root = 0; root < g.num_nodes(); ++root) {
    if (comp.id[root] != UINT32_MAX) continue;
    comp.id[root] = comp.count;
    stack.push_back(root);
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (const NodeId w : g.neighbors(v)) {
        if (comp.id[w] == UINT32_MAX) {
          comp.id[w] = comp.count;
          stack.push_back(w);
        }
      }
    }
    ++comp.count;
  }
  return comp;
}

CsrGraph square(const CsrGraph& g) {
  EdgeList edges;
  std::vector<std::uint8_t> marked(g.num_nodes(), 0);
  std::vector<NodeId> touched;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    touched.clear();
    for (const NodeId v : g.neighbors(u)) {
      if (v > u && !marked[v]) {
        marked[v] = 1;
        touched.push_back(v);
      }
      for (const NodeId w : g.neighbors(v)) {
        if (w > u && !marked[w]) {
          marked[w] = 1;
          touched.push_back(w);
        }
      }
    }
    for (const NodeId v : touched) {
      edges.emplace_back(u, v);
      marked[v] = 0;
    }
  }
  return CsrGraph::from_edges(g.num_nodes(), edges);
}

std::uint64_t triangle_count(const CsrGraph& g) {
  std::uint64_t count = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto nu = g.neighbors(u);
    for (const NodeId v : nu) {
      if (v <= u) continue;
      const auto nv = g.neighbors(v);
      // merge-intersect the sorted lists, counting w > v to avoid dupes
      auto a = std::upper_bound(nu.begin(), nu.end(), v);
      auto b = std::upper_bound(nv.begin(), nv.end(), v);
      while (a != nu.end() && b != nv.end()) {
        if (*a < *b) {
          ++a;
        } else if (*b < *a) {
          ++b;
        } else {
          ++count;
          ++a;
          ++b;
        }
      }
    }
  }
  return count;
}

}  // namespace optipar
