// Mutable undirected graph supporting the "morph" operations of amorphous
// data-parallel algorithms (Pingali et al.): remove a committed task's node,
// add freshly spawned tasks, and rewire conflict edges in a neighborhood.
// The step simulator (src/sim/) evolves CC graphs through this type.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"

namespace optipar {

class DynamicGraph {
 public:
  DynamicGraph() = default;
  explicit DynamicGraph(NodeId initial_nodes);
  /// Import a frozen graph (all nodes alive).
  explicit DynamicGraph(const CsrGraph& g);

  /// Total node slots ever created (dead ones included). Valid node ids are
  /// [0, capacity()); only alive ones participate in the graph.
  [[nodiscard]] NodeId capacity() const noexcept {
    return static_cast<NodeId>(alive_.size());
  }
  [[nodiscard]] NodeId num_alive() const noexcept { return alive_count_; }
  [[nodiscard]] std::uint64_t num_edges() const noexcept { return edge_count_; }
  [[nodiscard]] bool is_alive(NodeId v) const { return alive_.at(v); }
  [[nodiscard]] std::uint32_t degree(NodeId v) const;
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;
  /// Average degree over alive nodes.
  [[nodiscard]] double average_degree() const noexcept;

  /// Neighbor list of an alive node (alive neighbors only, unsorted).
  [[nodiscard]] const std::vector<NodeId>& neighbors(NodeId v) const;

  /// Create a new isolated node; returns its id.
  NodeId add_node();
  /// Add an undirected edge between two distinct alive nodes. Returns false
  /// (no-op) if the edge already exists.
  bool add_edge(NodeId u, NodeId v);
  /// Remove an edge if present; returns whether it existed.
  bool remove_edge(NodeId u, NodeId v);
  /// Remove a node and all incident edges. The id is never reused.
  void remove_node(NodeId v);

  /// All alive node ids, ascending.
  [[nodiscard]] std::vector<NodeId> alive_nodes() const;

  /// Snapshot to CSR over a compact relabeling of alive nodes; the optional
  /// out-param receives old-id -> new-id (dead nodes map to UINT32_MAX).
  [[nodiscard]] CsrGraph freeze(std::vector<NodeId>* relabel = nullptr) const;

  /// Structural invariants: symmetry, no self-loops, no dead endpoints,
  /// edge_count_ consistent. Used by tests and debug assertions.
  [[nodiscard]] bool validate() const;

 private:
  void detach_from_neighbors(NodeId v);

  std::vector<std::vector<NodeId>> adj_;
  std::vector<bool> alive_;
  NodeId alive_count_ = 0;
  std::uint64_t edge_count_ = 0;
};

}  // namespace optipar
