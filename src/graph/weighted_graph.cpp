#include "graph/weighted_graph.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace optipar {

WeightedGraph WeightedGraph::from_edges(
    NodeId n, const std::vector<WeightedEdgeTriple>& edges) {
  // Canonicalize and collapse duplicates to the lightest weight.
  std::map<std::pair<NodeId, NodeId>, double> canonical;
  for (const auto& e : edges) {
    if (e.u >= n || e.v >= n) {
      throw std::invalid_argument("WeightedGraph: endpoint out of range");
    }
    if (e.u == e.v) {
      throw std::invalid_argument("WeightedGraph: self-loop not allowed");
    }
    if (!std::isfinite(e.w)) {
      throw std::invalid_argument("WeightedGraph: non-finite weight");
    }
    const auto key = std::minmax(e.u, e.v);
    const auto [it, fresh] = canonical.try_emplace({key.first, key.second},
                                                   e.w);
    if (!fresh && e.w < it->second) it->second = e.w;
  }

  WeightedGraph g;
  g.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& [key, w] : canonical) {
    ++g.offsets_[key.first + 1];
    ++g.offsets_[key.second + 1];
  }
  for (NodeId v = 0; v < n; ++v) g.offsets_[v + 1] += g.offsets_[v];
  g.arcs_.resize(g.offsets_[n]);
  std::vector<std::uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [key, w] : canonical) {
    g.arcs_[cursor[key.first]++] = {key.second, w};
    g.arcs_[cursor[key.second]++] = {key.first, w};
  }
  return g;
}

CsrGraph WeightedGraph::structure() const {
  EdgeList edges;
  edges.reserve(num_edges());
  for (NodeId v = 0; v < num_nodes(); ++v) {
    for (const Arc& a : arcs(v)) {
      if (v < a.to) edges.emplace_back(v, a.to);
    }
  }
  return CsrGraph::from_edges(num_nodes(), edges);
}

}  // namespace optipar
