#include "graph/dynamic_graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace optipar {

DynamicGraph::DynamicGraph(NodeId initial_nodes)
    : adj_(initial_nodes), alive_(initial_nodes, true),
      alive_count_(initial_nodes) {}

DynamicGraph::DynamicGraph(const CsrGraph& g)
    : adj_(g.num_nodes()), alive_(g.num_nodes(), true),
      alive_count_(g.num_nodes()), edge_count_(g.num_edges()) {
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto nbrs = g.neighbors(v);
    adj_[v].assign(nbrs.begin(), nbrs.end());
  }
}

std::uint32_t DynamicGraph::degree(NodeId v) const {
  if (!is_alive(v)) throw std::invalid_argument("degree of dead node");
  return static_cast<std::uint32_t>(adj_[v].size());
}

bool DynamicGraph::has_edge(NodeId u, NodeId v) const {
  if (!is_alive(u) || !is_alive(v)) return false;
  const auto& shorter = adj_[u].size() <= adj_[v].size() ? adj_[u] : adj_[v];
  const NodeId probe = adj_[u].size() <= adj_[v].size() ? v : u;
  return std::find(shorter.begin(), shorter.end(), probe) != shorter.end();
}

double DynamicGraph::average_degree() const noexcept {
  if (alive_count_ == 0) return 0.0;
  return 2.0 * static_cast<double>(edge_count_) /
         static_cast<double>(alive_count_);
}

const std::vector<NodeId>& DynamicGraph::neighbors(NodeId v) const {
  if (!is_alive(v)) throw std::invalid_argument("neighbors of dead node");
  return adj_[v];
}

NodeId DynamicGraph::add_node() {
  adj_.emplace_back();
  alive_.push_back(true);
  ++alive_count_;
  return static_cast<NodeId>(adj_.size() - 1);
}

bool DynamicGraph::add_edge(NodeId u, NodeId v) {
  if (u == v) throw std::invalid_argument("add_edge: self-loop");
  if (!is_alive(u) || !is_alive(v)) {
    throw std::invalid_argument("add_edge: dead endpoint");
  }
  if (has_edge(u, v)) return false;
  adj_[u].push_back(v);
  adj_[v].push_back(u);
  ++edge_count_;
  return true;
}

bool DynamicGraph::remove_edge(NodeId u, NodeId v) {
  if (!is_alive(u) || !is_alive(v)) return false;
  auto erase_one = [](std::vector<NodeId>& list, NodeId x) {
    const auto it = std::find(list.begin(), list.end(), x);
    if (it == list.end()) return false;
    *it = list.back();
    list.pop_back();
    return true;
  };
  if (!erase_one(adj_[u], v)) return false;
  erase_one(adj_[v], u);
  --edge_count_;
  return true;
}

void DynamicGraph::detach_from_neighbors(NodeId v) {
  for (const NodeId w : adj_[v]) {
    auto& list = adj_[w];
    const auto it = std::find(list.begin(), list.end(), v);
    if (it != list.end()) {
      *it = list.back();
      list.pop_back();
    }
  }
  edge_count_ -= adj_[v].size();
  adj_[v].clear();
  adj_[v].shrink_to_fit();
}

void DynamicGraph::remove_node(NodeId v) {
  if (!is_alive(v)) throw std::invalid_argument("remove_node: already dead");
  detach_from_neighbors(v);
  alive_[v] = false;
  --alive_count_;
}

std::vector<NodeId> DynamicGraph::alive_nodes() const {
  std::vector<NodeId> out;
  out.reserve(alive_count_);
  for (NodeId v = 0; v < capacity(); ++v) {
    if (alive_[v]) out.push_back(v);
  }
  return out;
}

CsrGraph DynamicGraph::freeze(std::vector<NodeId>* relabel) const {
  std::vector<NodeId> map(capacity(), UINT32_MAX);
  NodeId next = 0;
  for (NodeId v = 0; v < capacity(); ++v) {
    if (alive_[v]) map[v] = next++;
  }
  EdgeList edges;
  edges.reserve(edge_count_);
  for (NodeId v = 0; v < capacity(); ++v) {
    if (!alive_[v]) continue;
    for (const NodeId w : adj_[v]) {
      if (v < w) edges.emplace_back(map[v], map[w]);
    }
  }
  if (relabel != nullptr) *relabel = std::move(map);
  return CsrGraph::from_edges(next, edges);
}

bool DynamicGraph::validate() const {
  std::uint64_t half_edges = 0;
  NodeId alive_seen = 0;
  for (NodeId v = 0; v < capacity(); ++v) {
    if (!alive_[v]) {
      if (!adj_[v].empty()) return false;
      continue;
    }
    ++alive_seen;
    half_edges += adj_[v].size();
    for (const NodeId w : adj_[v]) {
      if (w >= capacity() || w == v || !alive_[w]) return false;
      // symmetry
      if (std::find(adj_[w].begin(), adj_[w].end(), v) == adj_[w].end()) {
        return false;
      }
      // no parallel edges
      if (std::count(adj_[v].begin(), adj_[v].end(), w) != 1) return false;
    }
  }
  return alive_seen == alive_count_ && half_edges == 2 * edge_count_;
}

}  // namespace optipar
