#include "graph/relabel.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace optipar {

RelabelOrder parse_relabel_order(const std::string& name) {
  if (name == "none") return RelabelOrder::kNone;
  if (name == "bfs") return RelabelOrder::kBfs;
  if (name == "degree") return RelabelOrder::kDegree;
  throw std::invalid_argument("unknown relabel order: " + name +
                              " (want none|bfs|degree)");
}

const char* relabel_order_name(RelabelOrder order) {
  switch (order) {
    case RelabelOrder::kNone: return "none";
    case RelabelOrder::kBfs: return "bfs";
    case RelabelOrder::kDegree: return "degree";
  }
  return "?";
}

bool Relabeling::is_identity() const noexcept {
  for (NodeId v = 0; v < old_to_new.size(); ++v) {
    if (old_to_new[v] != v) return false;
  }
  return true;
}

bool Relabeling::validate() const {
  const std::size_t n = old_to_new.size();
  if (new_to_old.size() != n) return false;
  for (NodeId v = 0; v < n; ++v) {
    if (old_to_new[v] >= n || new_to_old[old_to_new[v]] != v) return false;
  }
  return true;
}

Relabeling identity_relabeling(NodeId n) {
  Relabeling r;
  r.old_to_new.resize(n);
  std::iota(r.old_to_new.begin(), r.old_to_new.end(), NodeId{0});
  r.new_to_old = r.old_to_new;
  return r;
}

namespace {

Relabeling from_new_to_old(std::vector<NodeId> new_to_old) {
  Relabeling r;
  r.old_to_new.resize(new_to_old.size());
  for (NodeId pos = 0; pos < new_to_old.size(); ++pos) {
    r.old_to_new[new_to_old[pos]] = pos;
  }
  r.new_to_old = std::move(new_to_old);
  return r;
}

}  // namespace

Relabeling bfs_relabeling(const CsrGraph& g) {
  const NodeId n = g.num_nodes();
  std::vector<NodeId> order;
  order.reserve(n);
  std::vector<std::uint8_t> visited(n, 0);
  std::vector<NodeId> queue;
  queue.reserve(n);
  for (NodeId root = 0; root < n; ++root) {
    if (visited[root]) continue;
    visited[root] = 1;
    queue.push_back(root);
    // Index-front queue: the vector doubles as the component's visit order.
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const NodeId v = queue[head];
      for (const NodeId w : g.neighbors(v)) {
        if (!visited[w]) {
          visited[w] = 1;
          queue.push_back(w);
        }
      }
    }
    order.insert(order.end(), queue.begin(), queue.end());
    queue.clear();
  }
  return from_new_to_old(std::move(order));
}

Relabeling degree_relabeling(const CsrGraph& g) {
  const NodeId n = g.num_nodes();
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return g.degree(a) > g.degree(b);
  });
  return from_new_to_old(std::move(order));
}

Relabeling make_relabeling(const CsrGraph& g, RelabelOrder order) {
  switch (order) {
    case RelabelOrder::kNone: return identity_relabeling(g.num_nodes());
    case RelabelOrder::kBfs: return bfs_relabeling(g);
    case RelabelOrder::kDegree: return degree_relabeling(g);
  }
  throw std::invalid_argument("make_relabeling: bad order");
}

CsrGraph apply_relabeling(const CsrGraph& g, const Relabeling& r) {
  const NodeId n = g.num_nodes();
  if (r.old_to_new.size() != n || !r.validate()) {
    throw std::invalid_argument("apply_relabeling: map is not a bijection");
  }
  EdgeList edges;
  edges.reserve(g.num_edges());
  for (NodeId u = 0; u < n; ++u) {
    for (const NodeId v : g.neighbors(u)) {
      if (u < v) edges.emplace_back(r.old_to_new[u], r.old_to_new[v]);
    }
  }
  return CsrGraph::from_edges(n, edges);
}

RelabeledGraph relabel(const CsrGraph& g, RelabelOrder order) {
  RelabeledGraph out;
  out.map = make_relabeling(g, order);
  out.graph = order == RelabelOrder::kNone ? g
                                           : apply_relabeling(g, out.map);
  return out;
}

}  // namespace optipar
