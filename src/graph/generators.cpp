#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>
#include <unordered_set>

namespace optipar::gen {

namespace {

/// Canonical 64-bit key for an undirected edge.
std::uint64_t edge_key(NodeId u, NodeId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

}  // namespace

CsrGraph gnm_random(NodeId n, std::uint64_t edges, Rng& rng) {
  if (n < 2 && edges > 0) {
    throw std::invalid_argument("gnm_random: too few nodes");
  }
  const std::uint64_t max_edges =
      static_cast<std::uint64_t>(n) * (n - 1) / 2;
  if (edges > max_edges) {
    throw std::invalid_argument("gnm_random: more edges than pairs");
  }
  EdgeList list;
  list.reserve(edges);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(edges * 2);
  while (list.size() < edges) {
    const auto u = static_cast<NodeId>(rng.below(n));
    const auto v = static_cast<NodeId>(rng.below(n));
    if (u == v) continue;
    if (seen.insert(edge_key(u, v)).second) list.emplace_back(u, v);
  }
  return CsrGraph::from_edges(n, list);
}

CsrGraph random_with_average_degree(NodeId n, double avg_degree, Rng& rng) {
  const auto edges =
      static_cast<std::uint64_t>(std::llround(avg_degree * n / 2.0));
  return gnm_random(n, edges, rng);
}

CsrGraph gnp_random(NodeId n, double p, Rng& rng) {
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("gnp_random: bad p");
  EdgeList list;
  if (p > 0.0) {
    // Geometric skipping over the lexicographic pair enumeration.
    const double log_q = std::log1p(-p);
    std::int64_t v = 1;
    std::int64_t u = -1;
    const auto nn = static_cast<std::int64_t>(n);
    while (v < nn) {
      double r = rng.uniform();
      if (r >= 1.0) r = std::nextafter(1.0, 0.0);
      std::int64_t skip =
          (p >= 1.0) ? 1
                     : 1 + static_cast<std::int64_t>(
                               std::floor(std::log1p(-r) / log_q));
      u += skip;
      while (u >= v && v < nn) {
        u -= v;
        ++v;
      }
      if (v < nn) {
        list.emplace_back(static_cast<NodeId>(u), static_cast<NodeId>(v));
      }
    }
  }
  return CsrGraph::from_edges(n, list);
}

CsrGraph union_of_cliques(NodeId n, std::uint32_t d) {
  if (n % (d + 1) != 0) {
    throw std::invalid_argument("union_of_cliques: (d+1) must divide n");
  }
  EdgeList list;
  const NodeId clique = d + 1;
  list.reserve(static_cast<std::size_t>(n / clique) * clique * d / 2);
  for (NodeId base = 0; base < n; base += clique) {
    for (NodeId i = 0; i < clique; ++i) {
      for (NodeId j = i + 1; j < clique; ++j) {
        list.emplace_back(base + i, base + j);
      }
    }
  }
  return CsrGraph::from_edges(n, list);
}

CsrGraph clique_plus_isolated(NodeId clique, NodeId isolated) {
  EdgeList list;
  list.reserve(static_cast<std::size_t>(clique) * (clique - 1) / 2);
  for (NodeId i = 0; i < clique; ++i) {
    for (NodeId j = i + 1; j < clique; ++j) list.emplace_back(i, j);
  }
  return CsrGraph::from_edges(clique + isolated, list);
}

CsrGraph complete(NodeId n) { return clique_plus_isolated(n, 0); }

CsrGraph star(NodeId leaves) {
  EdgeList list;
  list.reserve(leaves);
  for (NodeId i = 1; i <= leaves; ++i) list.emplace_back(0, i);
  return CsrGraph::from_edges(leaves + 1, list);
}

CsrGraph path(NodeId n) {
  EdgeList list;
  for (NodeId i = 0; i + 1 < n; ++i) list.emplace_back(i, i + 1);
  return CsrGraph::from_edges(n, list);
}

CsrGraph cycle(NodeId n) {
  if (n < 3) throw std::invalid_argument("cycle: need n >= 3");
  EdgeList list = path(n).edges();
  list.emplace_back(n - 1, 0);
  return CsrGraph::from_edges(n, list);
}

CsrGraph grid_2d(NodeId rows, NodeId cols) {
  EdgeList list;
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) list.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) list.emplace_back(id(r, c), id(r + 1, c));
    }
  }
  return CsrGraph::from_edges(rows * cols, list);
}

CsrGraph torus_2d(NodeId rows, NodeId cols) {
  if (rows < 3 || cols < 3) {
    throw std::invalid_argument("torus_2d: need rows, cols >= 3");
  }
  EdgeList list;
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      list.emplace_back(id(r, c), id(r, (c + 1) % cols));
      list.emplace_back(id(r, c), id((r + 1) % rows, c));
    }
  }
  return CsrGraph::from_edges(rows * cols, list);
}

CsrGraph random_regular(NodeId n, std::uint32_t d, Rng& rng) {
  if (d >= n) throw std::invalid_argument("random_regular: d must be < n");
  if ((static_cast<std::uint64_t>(n) * d) % 2 != 0) {
    throw std::invalid_argument("random_regular: n*d must be even");
  }
  if (d == 0) return CsrGraph::from_edges(n, {});
  // Steger–Wormald: repeatedly pair two random remaining stubs of distinct,
  // non-adjacent nodes; restart on dead ends. Asymptotically uniform and,
  // unlike the naive pairing model, succeeds w.h.p. even for d ~ 6-10.
  constexpr int kMaxRestarts = 10000;
  for (int attempt = 0; attempt < kMaxRestarts; ++attempt) {
    std::vector<NodeId> stubs;
    stubs.reserve(static_cast<std::size_t>(n) * d);
    for (NodeId v = 0; v < n; ++v) {
      for (std::uint32_t i = 0; i < d; ++i) stubs.push_back(v);
    }
    EdgeList list;
    list.reserve(stubs.size() / 2);
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(stubs.size());
    bool stuck = false;
    while (!stubs.empty()) {
      bool paired = false;
      // A bounded number of local retries before declaring a dead end.
      for (int tries = 0; tries < 64; ++tries) {
        const std::size_t i = rng.below(stubs.size());
        const std::size_t j = rng.below(stubs.size());
        if (i == j) continue;
        const NodeId u = stubs[i];
        const NodeId v = stubs[j];
        if (u == v || seen.count(edge_key(u, v)) != 0) continue;
        seen.insert(edge_key(u, v));
        list.emplace_back(u, v);
        // Remove the two consumed stubs (higher index first).
        const auto hi = std::max(i, j);
        const auto lo = std::min(i, j);
        stubs[hi] = stubs.back();
        stubs.pop_back();
        stubs[lo] = stubs.back();
        stubs.pop_back();
        paired = true;
        break;
      }
      if (!paired) {
        stuck = true;
        break;
      }
    }
    if (!stuck) return CsrGraph::from_edges(n, list);
  }
  throw std::runtime_error(
      "random_regular: failed to complete a simple pairing");
}

CsrGraph rmat(NodeId n, std::uint64_t edges, double a, double b, double c,
              Rng& rng) {
  if (a < 0 || b < 0 || c < 0 || a + b + c > 1.0) {
    throw std::invalid_argument("rmat: invalid quadrant probabilities");
  }
  int levels = 0;
  NodeId size = 1;
  while (size < n) {
    size *= 2;
    ++levels;
  }
  EdgeList list;
  list.reserve(edges);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(edges * 2);
  std::uint64_t attempts = 0;
  const std::uint64_t max_attempts = edges * 64 + 4096;
  while (list.size() < edges && attempts++ < max_attempts) {
    NodeId u = 0;
    NodeId v = 0;
    for (int l = 0; l < levels; ++l) {
      const double r = rng.uniform();
      const NodeId bit = size >> (l + 1);
      if (r < a) {
        // upper-left: no bits
      } else if (r < a + b) {
        v |= bit;
      } else if (r < a + b + c) {
        u |= bit;
      } else {
        u |= bit;
        v |= bit;
      }
    }
    if (u >= n || v >= n || u == v) continue;
    if (seen.insert(edge_key(u, v)).second) list.emplace_back(u, v);
  }
  return CsrGraph::from_edges(n, list);
}

CsrGraph barabasi_albert(NodeId n, std::uint32_t k, Rng& rng) {
  if (n < k + 1) throw std::invalid_argument("barabasi_albert: n <= k");
  EdgeList list;
  // Repeated-endpoint trick: sampling a uniform position in the flattened
  // edge-endpoint array is degree-proportional sampling.
  std::vector<NodeId> endpoints;
  // Seed: a (k+1)-clique so every early node has degree >= k.
  for (NodeId i = 0; i <= k; ++i) {
    for (NodeId j = i + 1; j <= k; ++j) {
      list.emplace_back(i, j);
      endpoints.push_back(i);
      endpoints.push_back(j);
    }
  }
  for (NodeId v = k + 1; v < n; ++v) {
    std::set<NodeId> targets;
    while (targets.size() < k) {
      const NodeId t = endpoints[rng.below(endpoints.size())];
      targets.insert(t);
    }
    for (const NodeId t : targets) {
      list.emplace_back(v, t);
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return CsrGraph::from_edges(n, list);
}

}  // namespace optipar::gen
