#include "graph/graph_io.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>
#include <unordered_set>

namespace optipar::io {

void write_edge_list(const CsrGraph& g, std::ostream& out) {
  out << "p " << g.num_nodes() << ' ' << g.num_edges() << '\n';
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const NodeId v : g.neighbors(u)) {
      if (u < v) out << u << ' ' << v << '\n';
    }
  }
}

void write_edge_list(const CsrGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw GraphIoError(GraphIoError::Kind::kIo, 0, "cannot open " + path);
  }
  write_edge_list(g, out);
}

namespace {

// Cap speculative pre-allocation from the header's CLAIMED edge count: a
// hostile "p 2 9999999999" header must not reserve gigabytes before the
// (absent) edges fail to arrive. Beyond the cap the vector grows only as
// real edges are parsed.
constexpr std::uint64_t kReserveCap = 1u << 20;

}  // namespace

CsrGraph read_edge_list(std::istream& in) {
  std::string line;
  std::int64_t n = 0;
  std::int64_t m = 0;
  bool have_header = false;
  EdgeList edges;
  // Duplicate detection over packed (min, max) endpoint pairs — O(1) per
  // edge, and the set's size is bounded by the edges actually present.
  std::unordered_set<std::uint64_t> seen;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#' || line[0] == 'c') continue;
    std::istringstream ls(line);
    if (!have_header) {
      std::string tag;
      // Extract into SIGNED 64-bit first: istream extraction into an
      // unsigned type wraps "-3" to a huge value instead of failing, which
      // would turn a nonsense header into a resource-exhaustion attempt.
      if (!(ls >> tag >> n >> m) || tag != "p") {
        throw GraphIoError(GraphIoError::Kind::kBadHeader, lineno,
                           "missing 'p n m' header");
      }
      std::string extra;
      if (ls >> extra) {
        throw GraphIoError(GraphIoError::Kind::kBadHeader, lineno,
                           "trailing tokens after 'p n m' header");
      }
      if (n < 0 || m < 0) {
        throw GraphIoError(GraphIoError::Kind::kBadHeader, lineno,
                           "negative node or edge count");
      }
      if (n > static_cast<std::int64_t>(
                  std::numeric_limits<NodeId>::max())) {
        throw GraphIoError(GraphIoError::Kind::kOverflow, lineno,
                           "node count " + std::to_string(n) +
                               " exceeds the 32-bit node id space");
      }
      // A simple undirected graph holds at most n(n-1)/2 edges. n fits in
      // 32 bits here, so the product fits in 64 without overflow.
      const std::uint64_t max_edges =
          static_cast<std::uint64_t>(n) * (n > 0 ? n - 1 : 0) / 2;
      if (static_cast<std::uint64_t>(m) > max_edges) {
        throw GraphIoError(GraphIoError::Kind::kOverflow, lineno,
                           "edge count " + std::to_string(m) +
                               " exceeds n(n-1)/2 = " +
                               std::to_string(max_edges));
      }
      have_header = true;
      edges.reserve(static_cast<std::size_t>(
          std::min<std::uint64_t>(static_cast<std::uint64_t>(m),
                                  kReserveCap)));
      continue;
    }
    std::int64_t u = 0;
    std::int64_t v = 0;
    if (!(ls >> u >> v)) {
      throw GraphIoError(GraphIoError::Kind::kBadEdge, lineno, "bad edge");
    }
    std::string extra;
    if (ls >> extra) {
      throw GraphIoError(GraphIoError::Kind::kBadEdge, lineno,
                         "trailing tokens after edge");
    }
    if (u < 0 || v < 0 || u >= n || v >= n) {
      throw GraphIoError(GraphIoError::Kind::kOutOfRange, lineno,
                         "endpoint outside [0, " + std::to_string(n) + ")");
    }
    if (u == v) {
      throw GraphIoError(GraphIoError::Kind::kSelfLoop, lineno,
                         "self-loop on node " + std::to_string(u));
    }
    const std::uint64_t key =
        (static_cast<std::uint64_t>(std::min(u, v)) << 32) |
        static_cast<std::uint64_t>(std::max(u, v));
    if (!seen.insert(key).second) {
      throw GraphIoError(GraphIoError::Kind::kDuplicateEdge, lineno,
                         "duplicate edge " + std::to_string(u) + "-" +
                             std::to_string(v));
    }
    if (edges.size() == static_cast<std::size_t>(m)) {
      throw GraphIoError(GraphIoError::Kind::kCountMismatch, lineno,
                         "more edges than the header's " +
                             std::to_string(m));
    }
    edges.emplace_back(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  if (!have_header) {
    throw GraphIoError(GraphIoError::Kind::kBadHeader, 0, "empty input");
  }
  if (edges.size() != static_cast<std::size_t>(m)) {
    throw GraphIoError(GraphIoError::Kind::kCountMismatch, 0,
                       "header promises " + std::to_string(m) +
                           " edges, input has " +
                           std::to_string(edges.size()));
  }
  return CsrGraph::from_edges(static_cast<NodeId>(n), edges);
}

CsrGraph read_edge_list(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw GraphIoError(GraphIoError::Kind::kIo, 0, "cannot open " + path);
  }
  return read_edge_list(in);
}

}  // namespace optipar::io
