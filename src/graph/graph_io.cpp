#include "graph/graph_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace optipar::io {

void write_edge_list(const CsrGraph& g, std::ostream& out) {
  out << "p " << g.num_nodes() << ' ' << g.num_edges() << '\n';
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const NodeId v : g.neighbors(u)) {
      if (u < v) out << u << ' ' << v << '\n';
    }
  }
}

void write_edge_list(const CsrGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_edge_list: cannot open " + path);
  write_edge_list(g, out);
}

CsrGraph read_edge_list(std::istream& in) {
  std::string line;
  NodeId n = 0;
  bool have_header = false;
  EdgeList edges;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#' || line[0] == 'c') continue;
    std::istringstream ls(line);
    if (!have_header) {
      std::string tag;
      std::uint64_t m = 0;
      if (!(ls >> tag >> n >> m) || tag != "p") {
        throw std::runtime_error("read_edge_list: missing 'p n m' header");
      }
      have_header = true;
      edges.reserve(m);
      continue;
    }
    NodeId u = 0;
    NodeId v = 0;
    if (!(ls >> u >> v)) {
      throw std::runtime_error("read_edge_list: bad edge at line " +
                               std::to_string(lineno));
    }
    edges.emplace_back(u, v);
  }
  if (!have_header) throw std::runtime_error("read_edge_list: empty input");
  return CsrGraph::from_edges(n, edges);
}

CsrGraph read_edge_list(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_edge_list: cannot open " + path);
  return read_edge_list(in);
}

}  // namespace optipar::io
