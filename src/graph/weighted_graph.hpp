// Immutable undirected weighted graph in CSR form — the input type for the
// SSSP application and other weighted kernels. Same construction contract
// as CsrGraph (no self-loops; parallel edges collapse to the lightest).
#pragma once

#include <cstdint>
#include <span>
#include <tuple>
#include <vector>

#include "graph/csr_graph.hpp"

namespace optipar {

struct Arc {
  NodeId to = 0;
  double weight = 0.0;
};

struct WeightedEdgeTriple {
  NodeId u = 0;
  NodeId v = 0;
  double w = 0.0;
};

class WeightedGraph {
 public:
  WeightedGraph() = default;

  /// Build from undirected weighted edges. Self-loops are rejected;
  /// duplicate edges keep the smallest weight. Weights must be finite.
  static WeightedGraph from_edges(NodeId n,
                                  const std::vector<WeightedEdgeTriple>& edges);

  [[nodiscard]] NodeId num_nodes() const noexcept {
    return static_cast<NodeId>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }
  [[nodiscard]] std::uint64_t num_edges() const noexcept {
    return arcs_.size() / 2;
  }
  [[nodiscard]] std::uint32_t degree(NodeId v) const {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }
  [[nodiscard]] std::span<const Arc> arcs(NodeId v) const {
    return {arcs_.data() + offsets_[v], arcs_.data() + offsets_[v + 1]};
  }

  /// The underlying unweighted structure (for conflict analysis).
  [[nodiscard]] CsrGraph structure() const;

 private:
  std::vector<std::uint64_t> offsets_;
  std::vector<Arc> arcs_;
};

}  // namespace optipar
