#include "graph/csr_graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace optipar {

CsrGraph CsrGraph::from_edges(NodeId n, const EdgeList& edges) {
  CsrGraph g;
  g.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);

  for (const auto& [u, v] : edges) {
    if (u >= n || v >= n) {
      throw std::invalid_argument("CsrGraph: edge endpoint out of range");
    }
    if (u == v) {
      throw std::invalid_argument("CsrGraph: self-loop not allowed");
    }
  }

  // Two-pass counting sort into CSR, then per-node sort + dedup.
  std::vector<std::uint32_t> counts(n, 0);
  for (const auto& [u, v] : edges) {
    ++counts[u];
    ++counts[v];
  }
  for (NodeId v = 0; v < n; ++v) {
    g.offsets_[v + 1] = g.offsets_[v] + counts[v];
  }
  g.adjacency_.resize(g.offsets_[n]);
  std::vector<std::uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [u, v] : edges) {
    g.adjacency_[cursor[u]++] = v;
    g.adjacency_[cursor[v]++] = u;
  }

  // Sort each list, drop duplicates, and rebuild offsets compactly.
  std::vector<std::uint64_t> new_offsets(static_cast<std::size_t>(n) + 1, 0);
  std::uint64_t write = 0;
  for (NodeId v = 0; v < n; ++v) {
    const auto begin = g.adjacency_.begin() +
                       static_cast<std::ptrdiff_t>(g.offsets_[v]);
    const auto end = g.adjacency_.begin() +
                     static_cast<std::ptrdiff_t>(g.offsets_[v + 1]);
    std::sort(begin, end);
    const auto unique_end = std::unique(begin, end);
    new_offsets[v] = write;
    for (auto it = begin; it != unique_end; ++it) {
      g.adjacency_[write++] = *it;
    }
  }
  new_offsets[n] = write;
  g.adjacency_.resize(write);
  g.offsets_ = std::move(new_offsets);
  return g;
}

double CsrGraph::average_degree() const noexcept {
  const NodeId n = num_nodes();
  if (n == 0) return 0.0;
  return static_cast<double>(adjacency_.size()) / static_cast<double>(n);
}

std::uint32_t CsrGraph::max_degree() const noexcept {
  std::uint32_t best = 0;
  for (NodeId v = 0; v < num_nodes(); ++v) best = std::max(best, degree(v));
  return best;
}

bool CsrGraph::has_edge(NodeId u, NodeId v) const {
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

EdgeList CsrGraph::edges() const {
  EdgeList out;
  out.reserve(num_edges());
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (const NodeId v : neighbors(u)) {
      if (u < v) out.emplace_back(u, v);
    }
  }
  return out;
}

bool CsrGraph::validate() const {
  const NodeId n = num_nodes();
  if (offsets_.empty() || offsets_.front() != 0 ||
      offsets_.back() != adjacency_.size()) {
    return false;
  }
  for (NodeId v = 0; v < n; ++v) {
    if (offsets_[v] > offsets_[v + 1]) return false;
    const auto nbrs = neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] >= n || nbrs[i] == v) return false;
      if (i > 0 && nbrs[i - 1] >= nbrs[i]) return false;  // sorted + unique
      if (!has_edge(nbrs[i], v)) return false;            // symmetric
    }
  }
  return true;
}

}  // namespace optipar
