// Controller factory shared by every host that names controllers as
// strings — optipar_cli, the serve daemon, and the tests. One registry
// means a job submitted over the wire accepts exactly the names the CLI
// documents, and a snapshot's controller-identity check ("hybrid" ==
// "hybrid") is consistent across hosts.
#pragma once

#include <memory>
#include <string>

#include "control/controller.hpp"

namespace optipar {

/// Build a controller by name: "hybrid", "recurrence-A", "recurrence-B",
/// "bisection", "aimd", "pid", "ewma", or "fixed-<m>". Returns nullptr for
/// an unknown name (hosts report their own usage errors).
[[nodiscard]] std::unique_ptr<Controller> make_controller(
    const std::string& name, const ControllerParams& params);

}  // namespace optipar
