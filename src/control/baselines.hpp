// Baseline allocation policies the benches compare Algorithm 1 against:
//   * FixedController      — static m (what a non-adaptive scheduler does)
//   * BisectionController  — the paper's own strawman (eq. 30): maintain a
//                            bracket [lo, hi] around μ, probe the midpoint
//                            for T rounds, and halve the bracket
//   * AimdController       — TCP-style additive increase / multiplicative
//                            decrease around the target conflict ratio
#pragma once

#include "control/controller.hpp"

namespace optipar {

class FixedController final : public Controller {
 public:
  explicit FixedController(std::uint32_t m) : m_(m < 1 ? 1 : m) {}

  [[nodiscard]] std::uint32_t initial_m() const override { return m_; }
  std::uint32_t observe(const RoundStats&) override { return m_; }
  void reset() override {}
  [[nodiscard]] std::string name() const override {
    return "fixed-" + std::to_string(m_);
  }

 private:
  std::uint32_t m_;
};

/// Bisection search for μ = max{m : r̄(m) <= ρ} exploiting Prop. 1
/// (monotonicity). Probes the bracket midpoint for T rounds; if the
/// averaged r exceeds ρ the upper half is discarded, otherwise the lower.
/// Re-expands the bracket if the workload drifts and the current bracket's
/// answer stops tracking ρ.
class BisectionController final : public Controller {
 public:
  explicit BisectionController(const ControllerParams& params);

  [[nodiscard]] std::uint32_t initial_m() const override { return m_; }
  std::uint32_t observe(const RoundStats& round) override;
  void reset() override;
  [[nodiscard]] std::string name() const override { return "bisection"; }
  void save_state(snapshot::Writer& out) const override;
  void load_state(snapshot::Reader& in) override;

 private:
  void restart_bracket();

  ControllerParams params_;
  std::uint32_t lo_, hi_, m_;
  double r_accum_ = 0.0;
  std::uint32_t rounds_in_window_ = 0;
};

/// Additive-increase / multiplicative-decrease: if the averaged r is below
/// ρ, m += increase; if above, m ← m · decay.
class AimdController final : public Controller {
 public:
  AimdController(const ControllerParams& params, std::uint32_t increase = 4,
                 double decay = 0.5);

  [[nodiscard]] std::uint32_t initial_m() const override { return m_; }
  std::uint32_t observe(const RoundStats& round) override;
  void reset() override;
  [[nodiscard]] std::string name() const override { return "aimd"; }
  void save_state(snapshot::Writer& out) const override;
  void load_state(snapshot::Reader& in) override;

 private:
  ControllerParams params_;
  std::uint32_t increase_;
  double decay_;
  std::uint32_t m_;
  double r_accum_ = 0.0;
  std::uint32_t rounds_in_window_ = 0;
};

}  // namespace optipar
