#include "control/extra.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "model/theory.hpp"
#include "support/snapshot/snapshot.hpp"

namespace optipar {

PidController::PidController(const ControllerParams& params,
                             const PidGains& gains)
    : params_(params), gains_(gains), m_(params.clamp(params.m0)) {
  if (params_.rho <= 0.0 || params_.rho >= 1.0) {
    throw std::invalid_argument("PidController: rho must be in (0, 1)");
  }
  if (params_.T == 0) throw std::invalid_argument("PidController: T >= 1");
}

void PidController::reset() {
  m_ = params_.clamp(params_.m0);
  r_accum_ = 0.0;
  rounds_in_window_ = 0;
  integral_ = 0.0;
  last_error_ = 0.0;
  has_last_error_ = false;
}

std::uint32_t PidController::observe(const RoundStats& round) {
  r_accum_ += round.conflict_ratio();
  if (++rounds_in_window_ < params_.T) return m_;
  const double r = r_accum_ / static_cast<double>(rounds_in_window_);
  r_accum_ = 0.0;
  rounds_in_window_ = 0;

  // Relative error so the multiplicative update is scale-free in ρ.
  const double error = (params_.rho - r) / params_.rho;
  integral_ = std::clamp(integral_ + error, -gains_.integral_clamp,
                         gains_.integral_clamp);
  const double derivative = has_last_error_ ? error - last_error_ : 0.0;
  last_error_ = error;
  has_last_error_ = true;

  const double control =
      gains_.kp * error + gains_.ki * integral_ + gains_.kd * derivative;
  // Multiplicative application, bounded to at most a 4x change per window.
  const double factor = std::clamp(1.0 + control, 0.25, 4.0);
  m_ = params_.clamp(static_cast<std::uint64_t>(
      std::ceil(factor * static_cast<double>(m_))));
  return m_;
}

void PidController::save_state(snapshot::Writer& out) const {
  out.u32(m_);
  out.f64(r_accum_);
  out.u32(rounds_in_window_);
  out.f64(integral_);
  out.f64(last_error_);
  out.u8(has_last_error_ ? 1 : 0);
}

void PidController::load_state(snapshot::Reader& in) {
  m_ = in.u32();
  r_accum_ = in.f64();
  rounds_in_window_ = in.u32();
  integral_ = in.f64();
  last_error_ = in.f64();
  has_last_error_ = in.u8() != 0;
}

EwmaHybridController::EwmaHybridController(const ControllerParams& params,
                                           double alpha,
                                           std::uint32_t cooldown)
    : params_(params), alpha_(alpha), cooldown_(cooldown),
      m_(params.clamp(params.m0)), ewma_(alpha) {
  if (alpha <= 0.0 || alpha > 1.0) {
    throw std::invalid_argument("EwmaHybridController: alpha in (0, 1]");
  }
  if (params_.rho <= 0.0 || params_.rho >= 1.0) {
    throw std::invalid_argument("EwmaHybridController: rho in (0, 1)");
  }
}

void EwmaHybridController::reset() {
  m_ = params_.clamp(params_.m0);
  ewma_.reset();
  rounds_since_change_ = 0;
}

std::uint32_t EwmaHybridController::observe(const RoundStats& round) {
  ewma_.add(round.conflict_ratio());
  if (++rounds_since_change_ < cooldown_) return m_;

  double r = ewma_.value();
  const double alpha_dev = std::abs(1.0 - r / params_.rho);
  if (alpha_dev > params_.alpha0) {
    if (r < params_.r_min) r = params_.r_min;
    m_ = params_.clamp(static_cast<std::uint64_t>(
        std::ceil(params_.rho / r * static_cast<double>(m_))));
    rounds_since_change_ = 0;
    // A big jump invalidates the smoothed history; start fresh.
    ewma_.reset();
  } else if (alpha_dev > params_.alpha1) {
    m_ = params_.clamp(static_cast<std::uint64_t>(
        std::ceil((1.0 - r + params_.rho) * static_cast<double>(m_))));
    rounds_since_change_ = 0;
  }
  return m_;
}

void EwmaHybridController::save_state(snapshot::Writer& out) const {
  out.u32(m_);
  out.f64(ewma_.raw());
  out.f64(ewma_.norm());
  out.u32(rounds_since_change_);
}

void EwmaHybridController::load_state(snapshot::Reader& in) {
  m_ = in.u32();
  const double raw = in.f64();
  const double norm = in.f64();
  ewma_.restore(raw, norm);
  rounds_since_change_ = in.u32();
}

ControllerParams with_warm_start(ControllerParams params, std::uint32_t n,
                                 double avg_degree) {
  params.m0 = theory::warm_start_m(n, avg_degree, params.rho);
  return params;
}

}  // namespace optipar
