#include "control/factory.hpp"

#include <cstdint>
#include <stdexcept>

#include "control/baselines.hpp"
#include "control/extra.hpp"
#include "control/hybrid.hpp"
#include "control/recurrence.hpp"

namespace optipar {

std::unique_ptr<Controller> make_controller(const std::string& name,
                                            const ControllerParams& params) {
  if (name == "hybrid") return std::make_unique<HybridController>(params);
  if (name == "recurrence-A") {
    return std::make_unique<RecurrenceAController>(params);
  }
  if (name == "recurrence-B") {
    return std::make_unique<RecurrenceBController>(params);
  }
  if (name == "bisection") {
    return std::make_unique<BisectionController>(params);
  }
  if (name == "aimd") return std::make_unique<AimdController>(params);
  if (name == "pid") return std::make_unique<PidController>(params);
  if (name == "ewma") return std::make_unique<EwmaHybridController>(params);
  if (name.rfind("fixed-", 0) == 0) {
    try {
      return std::make_unique<FixedController>(
          static_cast<std::uint32_t>(std::stoul(name.substr(6))));
    } catch (const std::exception&) {
      return nullptr;  // "fixed-garbage" is an unknown name, not a crash
    }
  }
  return nullptr;
}

}  // namespace optipar
