#include "control/baselines.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "support/snapshot/snapshot.hpp"

namespace optipar {

BisectionController::BisectionController(const ControllerParams& params)
    : params_(params), lo_(params.m_min), hi_(params.m_max),
      m_(params.clamp(params.m0)) {
  if (params_.T == 0) throw std::invalid_argument("bisection: T >= 1");
  restart_bracket();
}

void BisectionController::restart_bracket() {
  lo_ = params_.m_min;
  hi_ = params_.m_max;
  m_ = params_.clamp((static_cast<std::uint64_t>(lo_) + hi_) / 2);
}

void BisectionController::reset() {
  r_accum_ = 0.0;
  rounds_in_window_ = 0;
  restart_bracket();
}

std::uint32_t BisectionController::observe(const RoundStats& round) {
  r_accum_ += round.conflict_ratio();
  if (++rounds_in_window_ < params_.T) return m_;
  const double r = r_accum_ / static_cast<double>(rounds_in_window_);
  r_accum_ = 0.0;
  rounds_in_window_ = 0;

  if (lo_ >= hi_) {
    // Converged bracket: keep probing; if the answer stopped tracking ρ
    // (workload drift), restart the search.
    if (std::abs(1.0 - r / params_.rho) > params_.alpha0) restart_bracket();
    return m_;
  }
  if (r > params_.rho) {
    hi_ = m_ > lo_ ? m_ - 1 : lo_;
  } else {
    lo_ = m_ < hi_ ? m_ + 1 : hi_;
  }
  m_ = params_.clamp((static_cast<std::uint64_t>(lo_) + hi_) / 2);
  return m_;
}

void BisectionController::save_state(snapshot::Writer& out) const {
  out.u32(lo_);
  out.u32(hi_);
  out.u32(m_);
  out.f64(r_accum_);
  out.u32(rounds_in_window_);
}

void BisectionController::load_state(snapshot::Reader& in) {
  lo_ = in.u32();
  hi_ = in.u32();
  m_ = in.u32();
  r_accum_ = in.f64();
  rounds_in_window_ = in.u32();
}

AimdController::AimdController(const ControllerParams& params,
                               std::uint32_t increase, double decay)
    : params_(params), increase_(increase), decay_(decay),
      m_(params.clamp(params.m0)) {
  if (decay_ <= 0.0 || decay_ >= 1.0) {
    throw std::invalid_argument("aimd: decay must be in (0, 1)");
  }
}

void AimdController::reset() {
  m_ = params_.clamp(params_.m0);
  r_accum_ = 0.0;
  rounds_in_window_ = 0;
}

std::uint32_t AimdController::observe(const RoundStats& round) {
  r_accum_ += round.conflict_ratio();
  if (++rounds_in_window_ < params_.T) return m_;
  const double r = r_accum_ / static_cast<double>(rounds_in_window_);
  r_accum_ = 0.0;
  rounds_in_window_ = 0;

  if (r > params_.rho) {
    m_ = params_.clamp(static_cast<std::uint64_t>(
        std::floor(static_cast<double>(m_) * decay_)));
  } else {
    m_ = params_.clamp(static_cast<std::uint64_t>(m_) + increase_);
  }
  return m_;
}

void AimdController::save_state(snapshot::Writer& out) const {
  out.u32(m_);
  out.f64(r_accum_);
  out.u32(rounds_in_window_);
}

void AimdController::load_state(snapshot::Reader& in) {
  m_ = in.u32();
  r_accum_ = in.f64();
  rounds_in_window_ = in.u32();
}

}  // namespace optipar
