// Controllers beyond the paper's Algorithm 1, used as comparison points in
// the ablation benches:
//   * PidController        — classic discrete PID on the error (ρ − r),
//                            applied multiplicatively to m
//   * EwmaHybridController — Algorithm 1's decision rule driven by an
//                            exponentially-weighted moving average of r
//                            instead of the T-round block average
//   * with_warm_start()    — parameter helper implementing the paper's §4
//                            suggestion: when the CC graph's average degree
//                            is known, start at m0 = α(ρ)·n/(d+1) (Cor. 3)
//                            instead of m0 = 2.
#pragma once

#include "control/controller.hpp"
#include "support/stats.hpp"

namespace optipar {

struct PidGains {
  double kp = 1.2;   ///< proportional
  double ki = 0.25;  ///< integral
  double kd = 0.15;  ///< derivative
  double integral_clamp = 2.0;  ///< anti-windup bound on the I term
};

class PidController final : public Controller {
 public:
  PidController(const ControllerParams& params, const PidGains& gains = {});

  [[nodiscard]] std::uint32_t initial_m() const override { return m_; }
  std::uint32_t observe(const RoundStats& round) override;
  void reset() override;
  [[nodiscard]] std::string name() const override { return "pid"; }
  void save_state(snapshot::Writer& out) const override;
  void load_state(snapshot::Reader& in) override;

 private:
  ControllerParams params_;
  PidGains gains_;
  std::uint32_t m_;
  double r_accum_ = 0.0;
  std::uint32_t rounds_in_window_ = 0;
  double integral_ = 0.0;
  double last_error_ = 0.0;
  bool has_last_error_ = false;
};

class EwmaHybridController final : public Controller {
 public:
  /// `alpha` is the EWMA weight of the newest round; `cooldown` is the
  /// minimum number of rounds between two allocation changes.
  EwmaHybridController(const ControllerParams& params, double alpha = 0.3,
                       std::uint32_t cooldown = 2);

  [[nodiscard]] std::uint32_t initial_m() const override { return m_; }
  std::uint32_t observe(const RoundStats& round) override;
  void reset() override;
  [[nodiscard]] std::string name() const override { return "ewma-hybrid"; }
  void save_state(snapshot::Writer& out) const override;
  void load_state(snapshot::Reader& in) override;

 private:
  ControllerParams params_;
  double alpha_;
  std::uint32_t cooldown_;
  std::uint32_t m_;
  Ewma ewma_;
  std::uint32_t rounds_since_change_ = 0;
};

/// Paper §4: with an estimate of the CC graph's size and average degree,
/// Cor. 3 gives an m0 whose worst-case conflict ratio stays under ρ — the
/// controller then starts in the right neighborhood instead of at 2.
[[nodiscard]] ControllerParams with_warm_start(ControllerParams params,
                                               std::uint32_t n,
                                               double avg_degree);

}  // namespace optipar
