// Algorithm 1: the paper's hybrid control heuristic. Every T rounds the
// averaged conflict ratio r is compared against the target ρ through
// α = |1 − r/ρ|:
//   α > α₀          → Recurrence B, m ← ⌈(ρ/max(r, r_min))·m⌉ (fast phase)
//   α₁ < α <= α₀    → Recurrence A, m ← ⌈(1 − r + ρ)·m⌉       (fine tuning)
//   α <= α₁         → no change (dead band; avoids steady-state churn that
//                     defeats locality, §4.1)
// with m clamped to [m_min, m_max] each round and the small-m regime using
// a longer window and wider dead band (§4.1, third optimization).
#pragma once

#include "control/controller.hpp"

namespace optipar {

class HybridController final : public Controller {
 public:
  explicit HybridController(const ControllerParams& params);

  [[nodiscard]] std::uint32_t initial_m() const override { return m_; }
  std::uint32_t observe(const RoundStats& round) override;
  void reset() override;
  void clamp_max(std::uint32_t m_cap) override;
  [[nodiscard]] std::string name() const override { return "hybrid"; }

  [[nodiscard]] const ControllerParams& params() const noexcept {
    return params_;
  }
  [[nodiscard]] std::uint32_t current_m() const noexcept { return m_; }

  /// Which branch fired at the last window boundary (for ablation traces).
  enum class Branch { kNone, kDeadBand, kRecurrenceA, kRecurrenceB };
  [[nodiscard]] Branch last_branch() const noexcept { return last_branch_; }

  /// Telemetry rendering of last_branch() ("" mid-window, else
  /// "dead-band" / "recurrence-A" / "recurrence-B").
  [[nodiscard]] std::string decision_note() const override;

  /// Also serializes params_.m_min/m_max — clamp_max() mutates them, so a
  /// watchdog-degraded run must restore the shrunken band, not the original.
  void save_state(snapshot::Writer& out) const override;
  void load_state(snapshot::Reader& in) override;

 private:
  ControllerParams params_;
  std::uint32_t m_;
  double r_accum_ = 0.0;
  std::uint32_t rounds_in_window_ = 0;
  Branch last_branch_ = Branch::kNone;
};

}  // namespace optipar
