// Controller interface for the processor-allocation problem (§4): after
// each optimistic round the scheduler reports what happened, and the
// controller chooses how many tasks m_{t+1} to launch next. The same
// interface drives both the discrete-step CC-graph simulator (src/sim/) and
// the real speculative runtime (src/rt/), so controller behavior can be
// studied in the paper's model and then exercised on real irregular
// workloads without modification.
#pragma once

#include <cstdint>
#include <exception>
#include <string>

namespace optipar {

namespace snapshot {
class Writer;
class Reader;
}  // namespace snapshot

/// What one optimistic round observed. launched == committed + aborted.
/// The failure-handling fields (DESIGN.md §8) are zero in fault-free runs:
/// retried/quarantined count tasks whose operator (or rollback) threw a
/// real, non-AbortIteration exception, and first_error preserves the first
/// such exception of the round so it is never silently dropped — even when
/// a FailurePolicy absorbs it instead of rethrowing.
struct RoundStats {
  std::uint32_t launched = 0;
  std::uint32_t committed = 0;
  std::uint32_t aborted = 0;
  std::uint32_t retried = 0;      ///< faulted tasks requeued with backoff
  std::uint32_t quarantined = 0;  ///< faulted tasks dead-lettered this round
  std::uint32_t injected = 0;     ///< faults the injector fired this round
  std::exception_ptr first_error; ///< first operator/rollback/lane error

  [[nodiscard]] double conflict_ratio() const noexcept {
    return launched == 0
               ? 0.0
               : static_cast<double>(aborted) / static_cast<double>(launched);
  }
};

/// Tunables of Algorithm 1, with the paper's published defaults, plus the
/// small-m regime parameters the paper mentions but leaves out of the
/// pseudo-code ("tune separately this case using different parameters";
/// Fig. 3 caption: "different parameters for m greater or smaller than 20").
struct ControllerParams {
  double rho = 0.25;          ///< target conflict ratio ρ (20–30% reasonable)
  std::uint32_t m0 = 2;       ///< initial allocation
  std::uint32_t m_min = 2;    ///< Remark 1: never below 2
  std::uint32_t m_max = 1024; ///< processor budget
  std::uint32_t T = 4;        ///< averaging window (rounds)
  double r_min = 0.03;        ///< clamp for Recurrence B's divisor
  double alpha0 = 0.25;       ///< |1 − r/ρ| above this → Recurrence B
  double alpha1 = 0.06;       ///< dead band; below this → no change
  // Small-m regime: below m_small the observed r has much higher variance,
  // so average longer and require a larger deviation before acting.
  bool small_m_regime = true;
  std::uint32_t m_small = 20;
  std::uint32_t T_small = 8;
  double alpha1_small = 0.12;

  /// Clamp an m proposal into [m_min, m_max].
  [[nodiscard]] std::uint32_t clamp(std::uint64_t m) const noexcept {
    if (m < m_min) return m_min;
    if (m > m_max) return m_max;
    return static_cast<std::uint32_t>(m);
  }
};

/// Abstract allocation policy. Implementations are deterministic given the
/// observation stream — all randomness lives in the workload.
class Controller {
 public:
  virtual ~Controller() = default;

  /// m_0, before any observation.
  [[nodiscard]] virtual std::uint32_t initial_m() const = 0;

  /// Report round t's outcome; returns m_{t+1}.
  virtual std::uint32_t observe(const RoundStats& round) = 0;

  /// Forget all state (back to m_0).
  virtual void reset() = 0;

  /// Externally cap future proposals at `m_cap` — the livelock watchdog's
  /// degradation hook (DESIGN.md §8). run_adaptive enforces the cap on the
  /// applied allocation regardless; overriding lets a stateful controller
  /// also clamp its internal state (e.g. shrink m_max) so its recurrences
  /// stop proposing allocations the runtime will refuse. Default: no-op.
  virtual void clamp_max(std::uint32_t m_cap) { (void)m_cap; }

  [[nodiscard]] virtual std::string name() const = 0;

  /// Checkpoint hooks (DESIGN.md §11): serialize every field observe()
  /// depends on into `out`, and restore it from `in`, so that a controller
  /// reloaded mid-run proposes the exact allocation sequence the
  /// uninterrupted run would have. Stateless controllers keep the defaults
  /// (nothing written, nothing read); stateful implementations must
  /// override BOTH or neither — the checkpoint layer frames the blob and
  /// verifies the controller's name(), so a partial override surfaces as a
  /// typed restore error, never a silently diverging run.
  virtual void save_state(snapshot::Writer& /*out*/) const {}
  virtual void load_state(snapshot::Reader& /*in*/) {}

  /// Short diagnostic of the LAST observe() decision, consumed by the
  /// telemetry layer's controller-decision events (DESIGN.md §10) — e.g.
  /// which recurrence branch fired. Purely observational: implementations
  /// must not let it affect control behavior. Default: nothing to report.
  [[nodiscard]] virtual std::string decision_note() const { return {}; }
};

}  // namespace optipar
