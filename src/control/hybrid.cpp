#include "control/hybrid.hpp"

#include <cmath>
#include <stdexcept>

#include "support/snapshot/snapshot.hpp"

namespace optipar {

HybridController::HybridController(const ControllerParams& params)
    : params_(params), m_(params.clamp(params.m0)) {
  if (params_.rho <= 0.0 || params_.rho >= 1.0) {
    throw std::invalid_argument("HybridController: rho must be in (0, 1)");
  }
  if (params_.m_min < 2) {
    throw std::invalid_argument("HybridController: m_min >= 2 (Remark 1)");
  }
  if (params_.T == 0 || params_.T_small == 0) {
    throw std::invalid_argument("HybridController: T >= 1");
  }
  if (params_.alpha1 > params_.alpha0) {
    throw std::invalid_argument("HybridController: need alpha1 <= alpha0");
  }
  if (params_.r_min <= 0.0) {
    throw std::invalid_argument("HybridController: r_min must be positive");
  }
}

void HybridController::clamp_max(std::uint32_t m_cap) {
  // Watchdog degradation: shrink the feasible band so the recurrences stop
  // proposing allocations the runtime will refuse. A cap of 1 deliberately
  // overrides Remark 1's m_min >= 2 — serial is the last-resort mode.
  if (m_cap < 1) m_cap = 1;
  if (m_cap < params_.m_max) params_.m_max = m_cap;
  if (params_.m_min > params_.m_max) params_.m_min = params_.m_max;
  if (m_ > params_.m_max) m_ = params_.m_max;
}

void HybridController::reset() {
  m_ = params_.clamp(params_.m0);
  r_accum_ = 0.0;
  rounds_in_window_ = 0;
  last_branch_ = Branch::kNone;
}

std::uint32_t HybridController::observe(const RoundStats& round) {
  r_accum_ += round.conflict_ratio();
  ++rounds_in_window_;

  const bool small = params_.small_m_regime && m_ < params_.m_small;
  const std::uint32_t window = small ? params_.T_small : params_.T;
  if (rounds_in_window_ < window) return m_;

  double r = r_accum_ / static_cast<double>(rounds_in_window_);
  r_accum_ = 0.0;
  rounds_in_window_ = 0;

  const double alpha = std::abs(1.0 - r / params_.rho);
  const double dead_band = small ? params_.alpha1_small : params_.alpha1;

  if (alpha > params_.alpha0) {
    // Recurrence B: multiplicative correction assuming r̄ linear in m.
    if (r < params_.r_min) r = params_.r_min;
    m_ = params_.clamp(static_cast<std::uint64_t>(
        std::ceil(params_.rho / r * static_cast<double>(m_))));
    last_branch_ = Branch::kRecurrenceB;
  } else if (alpha > dead_band) {
    // Recurrence A: gentle additive-ratio correction.
    m_ = params_.clamp(static_cast<std::uint64_t>(
        std::ceil((1.0 - r + params_.rho) * static_cast<double>(m_))));
    last_branch_ = Branch::kRecurrenceA;
  } else {
    last_branch_ = Branch::kDeadBand;
  }
  return m_;
}

void HybridController::save_state(snapshot::Writer& out) const {
  out.u32(params_.m_min);
  out.u32(params_.m_max);
  out.u32(m_);
  out.f64(r_accum_);
  out.u32(rounds_in_window_);
  out.u8(static_cast<std::uint8_t>(last_branch_));
}

void HybridController::load_state(snapshot::Reader& in) {
  params_.m_min = in.u32();
  params_.m_max = in.u32();
  m_ = in.u32();
  r_accum_ = in.f64();
  rounds_in_window_ = in.u32();
  const std::uint8_t branch = in.u8();
  if (branch > static_cast<std::uint8_t>(Branch::kRecurrenceB)) {
    throw snapshot::SnapshotError(snapshot::SnapshotError::Kind::kMalformed,
                                  "hybrid controller: bad branch tag");
  }
  last_branch_ = static_cast<Branch>(branch);
}

std::string HybridController::decision_note() const {
  switch (last_branch_) {
    case Branch::kNone: return {};
    case Branch::kDeadBand: return "dead-band";
    case Branch::kRecurrenceA: return "recurrence-A";
    case Branch::kRecurrenceB: return "recurrence-B";
  }
  return {};
}

}  // namespace optipar
