// The two building-block recurrences of §4, each usable as a standalone
// controller (Fig. 3 compares the hybrid against Recurrence A alone):
//   Recurrence A:  m ← ⌈(1 − r + ρ) · m⌉   — slow but noise-tolerant
//   Recurrence B:  m ← ⌈(ρ / r) · m⌉       — fast, assumes r̄ initially
//                                             linear in m; needs r_min clamp
// Both apply the paper's T-round averaging and the α₁ dead band so that the
// comparison against the hybrid isolates the recurrence itself.
#pragma once

#include "control/controller.hpp"

namespace optipar {

/// Shared scaffolding: T-round accumulation of r, dead-band check, clamping.
class RecurrenceControllerBase : public Controller {
 public:
  explicit RecurrenceControllerBase(const ControllerParams& params);

  [[nodiscard]] std::uint32_t initial_m() const override { return m_; }
  std::uint32_t observe(const RoundStats& round) final;
  void reset() override;

  [[nodiscard]] const ControllerParams& params() const noexcept {
    return params_;
  }
  [[nodiscard]] std::uint32_t current_m() const noexcept { return m_; }

  void save_state(snapshot::Writer& out) const override;
  void load_state(snapshot::Reader& in) override;

 protected:
  /// Apply the recurrence to (r_avg, m); return the unclamped proposal.
  [[nodiscard]] virtual std::uint64_t step(double r_avg,
                                           std::uint32_t m) const = 0;

 private:
  ControllerParams params_;
  std::uint32_t m_;
  double r_accum_ = 0.0;
  std::uint32_t rounds_in_window_ = 0;
};

class RecurrenceAController final : public RecurrenceControllerBase {
 public:
  using RecurrenceControllerBase::RecurrenceControllerBase;
  [[nodiscard]] std::string name() const override { return "recurrence-A"; }

 protected:
  [[nodiscard]] std::uint64_t step(double r_avg,
                                   std::uint32_t m) const override;
};

class RecurrenceBController final : public RecurrenceControllerBase {
 public:
  using RecurrenceControllerBase::RecurrenceControllerBase;
  [[nodiscard]] std::string name() const override { return "recurrence-B"; }

 protected:
  [[nodiscard]] std::uint64_t step(double r_avg,
                                   std::uint32_t m) const override;
};

}  // namespace optipar
