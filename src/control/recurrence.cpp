#include "control/recurrence.hpp"

#include <cmath>
#include <stdexcept>

#include "support/snapshot/snapshot.hpp"

namespace optipar {

RecurrenceControllerBase::RecurrenceControllerBase(
    const ControllerParams& params)
    : params_(params), m_(params.clamp(params.m0)) {
  if (params_.rho <= 0.0 || params_.rho >= 1.0) {
    throw std::invalid_argument("controller: rho must be in (0, 1)");
  }
  if (params_.m_min < 2) {
    throw std::invalid_argument("controller: m_min >= 2 (Remark 1)");
  }
  if (params_.T == 0) throw std::invalid_argument("controller: T >= 1");
}

void RecurrenceControllerBase::reset() {
  m_ = params_.clamp(params_.m0);
  r_accum_ = 0.0;
  rounds_in_window_ = 0;
}

std::uint32_t RecurrenceControllerBase::observe(const RoundStats& round) {
  r_accum_ += round.conflict_ratio();
  ++rounds_in_window_;
  const bool small = params_.small_m_regime && m_ < params_.m_small;
  const std::uint32_t window = small ? params_.T_small : params_.T;
  if (rounds_in_window_ >= window) {
    const double r_avg = r_accum_ / static_cast<double>(rounds_in_window_);
    r_accum_ = 0.0;
    rounds_in_window_ = 0;
    const double alpha = std::abs(1.0 - r_avg / params_.rho);
    const double dead_band = small ? params_.alpha1_small : params_.alpha1;
    if (alpha > dead_band) {
      m_ = params_.clamp(step(r_avg, m_));
    }
  }
  return m_;
}

void RecurrenceControllerBase::save_state(snapshot::Writer& out) const {
  out.u32(m_);
  out.f64(r_accum_);
  out.u32(rounds_in_window_);
}

void RecurrenceControllerBase::load_state(snapshot::Reader& in) {
  m_ = in.u32();
  r_accum_ = in.f64();
  rounds_in_window_ = in.u32();
}

std::uint64_t RecurrenceAController::step(double r_avg,
                                          std::uint32_t m) const {
  // m ← ⌈(1 − r + ρ) · m⌉ (eq. 32)
  const double factor = 1.0 - r_avg + params().rho;
  return static_cast<std::uint64_t>(
      std::ceil(std::max(0.0, factor) * static_cast<double>(m)));
}

std::uint64_t RecurrenceBController::step(double r_avg,
                                          std::uint32_t m) const {
  // m ← ⌈(ρ / r) · m⌉ (eq. 33), with the r_min clamp from Algorithm 1.
  const double r = std::max(r_avg, params().r_min);
  return static_cast<std::uint64_t>(
      std::ceil(params().rho / r * static_cast<double>(m)));
}

}  // namespace optipar
