// Deterministic closed-loop analysis: iterate a controller against an
// idealized noise-free plant m ↦ r̄(m). Separates the controller's own
// dynamics (convergence rate, overshoot, limit cycles) from sampling
// noise — the complement of the Monte-Carlo workloads in src/sim/.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <vector>

#include "control/controller.hpp"
#include "model/conflict_ratio.hpp"
#include "model/theory.hpp"

namespace optipar {

/// The plant: expected conflict ratio as a function of the allocation.
using Plant = std::function<double(std::uint32_t)>;

/// Idealized linear plant r(m) = min(1, slope · (m − 1)) — the small-m
/// behavior Prop. 2 predicts, extended linearly (the regime in which
/// Recurrence B is exact).
[[nodiscard]] inline Plant linear_plant(double slope) {
  return [slope](std::uint32_t m) {
    return std::min(1.0, slope * (static_cast<double>(m) - 1.0));
  };
}

/// Worst-case plant: the Cor. 2 bound for an (n, d) family.
[[nodiscard]] inline Plant worst_case_plant(double n, double d) {
  return [n, d](std::uint32_t m) {
    return theory::conflict_ratio_bound_approx(n, d, m);
  };
}

/// Plant interpolated from a measured conflict curve (clamps m to range).
[[nodiscard]] inline Plant plant_from_curve(const ConflictCurve& curve) {
  // Copy the means out so the plant owns its data.
  std::vector<double> r(curve.abort_stats.size());
  for (std::uint32_t m = 0; m < r.size(); ++m) r[m] = curve.r_bar(m);
  return [r = std::move(r)](std::uint32_t m) {
    if (r.empty()) return 0.0;
    const auto idx = std::min<std::size_t>(m, r.size() - 1);
    return r[idx];
  };
}

struct PlantTrace {
  std::vector<std::uint32_t> m;  ///< allocation per step
  std::vector<double> r;         ///< plant response per step

  /// First step from which m stays within (1 ± band)·mu_ref forever.
  [[nodiscard]] std::size_t settling_step(double mu_ref, double band) const {
    const double lo = mu_ref * (1.0 - band);
    const double hi = mu_ref * (1.0 + band);
    std::size_t settle = m.size();
    for (std::size_t i = m.size(); i-- > 0;) {
      if (m[i] >= lo && m[i] <= hi) {
        settle = i;
      } else {
        break;
      }
    }
    return settle;
  }

  /// Largest allocation ever proposed (overshoot detection).
  [[nodiscard]] std::uint32_t peak_m() const {
    std::uint32_t peak = 0;
    for (const auto v : m) peak = std::max(peak, v);
    return peak;
  }
};

/// Run the controller against the plant for `steps` rounds. Each round
/// launches exactly m tasks and observes the plant's exact ratio (the
/// abort count is the real-valued expectation, so no quantization noise
/// beyond the controller's own ceil()s).
[[nodiscard]] inline PlantTrace simulate_on_plant(Controller& controller,
                                                  const Plant& plant,
                                                  std::uint32_t steps) {
  PlantTrace trace;
  trace.m.reserve(steps);
  trace.r.reserve(steps);
  std::uint32_t m = controller.initial_m();
  for (std::uint32_t step = 0; step < steps; ++step) {
    const double ratio = plant(m);
    trace.m.push_back(m);
    trace.r.push_back(ratio);
    RoundStats stats;
    stats.launched = m;
    stats.aborted = static_cast<std::uint32_t>(
        std::llround(ratio * static_cast<double>(m)));
    stats.committed = stats.launched - stats.aborted;
    m = controller.observe(stats);
  }
  return trace;
}

/// The plant's ideal operating point: largest m <= m_max with r(m) <= rho.
[[nodiscard]] inline std::uint32_t plant_mu(const Plant& plant, double rho,
                                            std::uint32_t m_max) {
  std::uint32_t mu = 1;
  for (std::uint32_t m = 1; m <= m_max; ++m) {
    if (plant(m) <= rho) mu = m;
  }
  return mu;
}

}  // namespace optipar
