#include "support/options.hpp"

#include <stdexcept>

namespace optipar {

Options::Options(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        kv_[arg.substr(2)] = "true";
      } else {
        kv_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

bool Options::has(const std::string& key) const { return kv_.count(key) > 0; }

std::string Options::get(const std::string& key,
                         const std::string& fallback) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? fallback : it->second;
}

std::int64_t Options::get_int(const std::string& key,
                              std::int64_t fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  return std::stoll(it->second);
}

double Options::get_double(const std::string& key, double fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  return std::stod(it->second);
}

bool Options::get_bool(const std::string& key, bool fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::invalid_argument("Options: bad boolean for --" + key + ": " + v);
}

}  // namespace optipar
