// Streaming statistics used throughout the experiment harness: Welford
// accumulators with normal-approximation confidence intervals, exponentially
// weighted moving averages (for controller smoothing studies), and fixed-bin
// histograms (for abort-count distributions).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace optipar {

/// Single-pass mean/variance accumulator (Welford). Numerically stable for
/// billions of samples; no storage of the sample stream.
class StreamingStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  void merge(const StreamingStats& other) noexcept;

  /// Rebuild an accumulator from externally tracked moments. The SoA
  /// estimator path (model/conflict_ratio) runs the identical Welford
  /// recurrence over arrays via simd::welford_step_u32 and folds back
  /// here; the moments must come from that same recurrence (and use the
  /// same empty-state sentinels: min=1e300, max=-1e300 when n == 0) so
  /// the rebuilt accumulator is bit-identical to element-wise add calls.
  [[nodiscard]] static StreamingStats from_moments(std::uint64_t n,
                                                   double mean, double m2,
                                                   double min,
                                                   double max) noexcept {
    StreamingStats s;
    s.n_ = n;
    s.mean_ = mean;
    s.m2_ = m2;
    s.min_ = min;
    s.max_ = max;
    return s;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean.
  [[nodiscard]] double sem() const noexcept;
  /// Half-width of the ~95% normal-approximation confidence interval.
  [[nodiscard]] double ci95() const noexcept { return 1.96 * sem(); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 1e300;
  double max_ = -1e300;
};

/// Exponentially weighted moving average with bias-corrected warm-up,
/// mirroring what a production controller would use to smooth r_t.
class Ewma {
 public:
  /// alpha in (0, 1]: weight of the newest observation.
  explicit Ewma(double alpha) noexcept : alpha_(alpha) {}

  void add(double x) noexcept {
    raw_ = alpha_ * x + (1.0 - alpha_) * raw_;
    norm_ = alpha_ + (1.0 - alpha_) * norm_;
  }
  [[nodiscard]] bool empty() const noexcept { return norm_ == 0.0; }
  /// Bias-corrected value; 0 when no samples were added.
  [[nodiscard]] double value() const noexcept {
    return norm_ == 0.0 ? 0.0 : raw_ / norm_;
  }
  void reset() noexcept { raw_ = norm_ = 0.0; }

  /// Accumulator internals, for checkpoint/restore (the pair fully
  /// determines future values for a fixed alpha).
  [[nodiscard]] double raw() const noexcept { return raw_; }
  [[nodiscard]] double norm() const noexcept { return norm_; }
  void restore(double raw, double norm) noexcept {
    raw_ = raw;
    norm_ = norm;
  }

 private:
  double alpha_;
  double raw_ = 0.0;
  double norm_ = 0.0;
};

/// Fixed-width-bin histogram over [lo, hi); out-of-range samples clamp into
/// the edge bins so totals always match the sample count.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const {
    return counts_.at(bin);
  }
  [[nodiscard]] double bin_low(std::size_t bin) const noexcept;
  /// Smallest x with empirical CDF(x) >= q, linear within the bin.
  [[nodiscard]] double quantile(double q) const;
  /// Compact one-line rendering, e.g. for bench logs.
  [[nodiscard]] std::string ascii(std::size_t width = 40) const;

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace optipar
