#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace optipar {

void StreamingStats::merge(const StreamingStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double StreamingStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double StreamingStats::stddev() const noexcept { return std::sqrt(variance()); }

double StreamingStats::sem() const noexcept {
  return n_ == 0 ? 0.0 : stddev() / std::sqrt(static_cast<double>(n_));
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(hi > lo) || bins == 0) {
    throw std::invalid_argument("Histogram: need hi > lo and bins > 0");
  }
}

void Histogram::add(double x) noexcept {
  const double frac = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::int64_t>(frac * static_cast<double>(counts_.size()));
  bin = std::clamp<std::int64_t>(bin, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_low(std::size_t bin) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double Histogram::quantile(double q) const {
  if (total_ == 0) throw std::logic_error("Histogram::quantile: empty");
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const double next = cum + static_cast<double>(counts_[b]);
    if (next >= target) {
      const double inside =
          counts_[b] == 0 ? 0.0
                          : (target - cum) / static_cast<double>(counts_[b]);
      return bin_low(b) + inside * width;
    }
    cum = next;
  }
  return hi_;
}

std::string Histogram::ascii(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  static constexpr const char* kBlocks[] = {" ", ".", ":", "-", "=", "#", "@"};
  for (auto c : counts_) {
    const double frac = static_cast<double>(c) / static_cast<double>(peak);
    const auto level = static_cast<std::size_t>(frac * 6.0);
    out += kBlocks[std::min<std::size_t>(level, 6)];
  }
  if (out.size() > width) out.resize(width);
  return out;
}

}  // namespace optipar
