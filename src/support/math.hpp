// Numeric kernels shared by the model/theory layer: stable products of
// ratios (computed in log space), finite differences (the paper's Δ^i
// operator, eq. 2), and compensated summation.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

namespace optipar {

/// Kahan–Babuška compensated accumulator for long sums of doubles.
class KahanSum {
 public:
  void add(double x) noexcept {
    const double t = sum_ + x;
    if (std::abs(sum_) >= std::abs(x)) {
      comp_ += (sum_ - t) + x;
    } else {
      comp_ += (x - t) + sum_;
    }
    sum_ = t;
  }
  [[nodiscard]] double value() const noexcept { return sum_ + comp_; }

 private:
  double sum_ = 0.0;
  double comp_ = 0.0;
};

/// Π_{i=1..m} (num0 - i) / (den0 - i), computed in log space so that long
/// products (m up to ~1e6) neither underflow nor lose relative accuracy.
/// Returns 0 exactly when some factor's numerator hits zero or below.
/// This is the hypergeometric "component not hit" product of Thm. 3 with
/// num0 = n - d and den0 = n + 1.
inline double falling_ratio_product(double num0, double den0, std::uint64_t m) {
  double log_acc = 0.0;
  for (std::uint64_t i = 1; i <= m; ++i) {
    const double num = num0 - static_cast<double>(i);
    const double den = den0 - static_cast<double>(i);
    assert(den > 0.0 && "denominator term must stay positive");
    if (num <= 0.0) return 0.0;
    log_acc += std::log(num) - std::log(den);
  }
  return std::exp(log_acc);
}

/// First forward finite difference Δf(k) = f(k+1) − f(k) evaluated over a
/// tabulated sequence; output has size input.size() − 1.
inline std::vector<double> finite_difference(const std::vector<double>& f) {
  std::vector<double> d;
  if (f.size() < 2) return d;
  d.reserve(f.size() - 1);
  for (std::size_t i = 0; i + 1 < f.size(); ++i) d.push_back(f[i + 1] - f[i]);
  return d;
}

/// i-th forward finite difference of a tabulated sequence (paper eq. 2).
inline std::vector<double> finite_difference(const std::vector<double>& f,
                                             int order) {
  std::vector<double> cur = f;
  for (int i = 0; i < order; ++i) cur = finite_difference(cur);
  return cur;
}

/// log(n choose k) via lgamma; exact enough for tail probabilities.
inline double log_binomial(double n, double k) {
  if (k < 0 || k > n) return -std::numeric_limits<double>::infinity();
  return std::lgamma(n + 1) - std::lgamma(k + 1) - std::lgamma(n - k + 1);
}

/// Bisection root find for a monotone non-decreasing integer function:
/// smallest m in [lo, hi] with f(m) >= target; returns hi if never reached.
inline std::int64_t monotone_bisect(
    std::int64_t lo, std::int64_t hi, double target,
    const std::function<double(std::int64_t)>& f) {
  while (lo < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (f(mid) >= target) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace optipar
