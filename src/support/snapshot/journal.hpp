// Write-ahead round journal (DESIGN.md §11). One record is appended — and
// fsynced — per executor round, BEFORE any snapshot that covers the round is
// written, so the journal is always at least as current as the newest
// snapshot. Each record is independently framed:
//
//   [magic u32][payload_len u32][crc32 u32][payload bytes]
//
// Recovery scans the file front to back and stops at the first frame that is
// short, mis-magicked, or checksum-broken: everything before it is the
// committed prefix, everything from it on is a torn tail from the crash and
// is physically truncated away. Appends after recovery continue at the
// truncation point, so a resumed run's journal is byte-identical to an
// uninterrupted run's.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace optipar::snapshot {

class RoundJournal {
 public:
  /// Opens (creating if absent) the journal at `path` and runs torn-tail
  /// recovery immediately: after construction, records() holds exactly the
  /// committed prefix and the file has been truncated to match.
  explicit RoundJournal(std::string path);
  ~RoundJournal();

  RoundJournal(const RoundJournal&) = delete;
  RoundJournal& operator=(const RoundJournal&) = delete;

  /// The committed records recovered at open, oldest first. Appends during
  /// this process's lifetime are NOT reflected here — the vector is the
  /// recovery view, consumed once at restore time.
  [[nodiscard]] const std::vector<std::vector<std::byte>>& records()
      const noexcept {
    return records_;
  }
  /// Committed record count: recovered records plus appends made since.
  [[nodiscard]] std::uint64_t committed_count() const noexcept {
    return committed_count_;
  }
  /// True when recovery found (and truncated) a torn tail.
  [[nodiscard]] bool truncated_torn_tail() const noexcept {
    return truncated_torn_tail_;
  }

  /// Append one record; fsyncs before returning (the write-ahead
  /// guarantee). Throws SnapshotError{kIo} on failure.
  void append(std::span<const std::byte> payload);

  /// Crash-injection support: write only the first `prefix_bytes` of the
  /// frame append(payload) would write (clamped to the full frame size) and
  /// fsync, WITHOUT counting the record — simulating a crash mid-append.
  /// The torn bytes are exactly what the next open's recovery scan must
  /// detect and truncate.
  void append_torn(std::span<const std::byte> payload,
                   std::size_t prefix_bytes);

  /// Drop every record at index >= `count` (a restore rewinding to a
  /// snapshot older than the journal head). Truncates the file; subsequent
  /// appends continue from the cut.
  void rewind_to(std::uint64_t count);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  void open_for_append();

  std::string path_;
  int fd_ = -1;
  std::vector<std::vector<std::byte>> records_;
  /// Byte offset where record i begins; size() == records_.size() + 1, the
  /// last entry being the committed end of file (append position).
  std::vector<std::uint64_t> offsets_;
  std::uint64_t committed_count_ = 0;
  bool truncated_torn_tail_ = false;
};

inline constexpr std::uint32_t kJournalMagic = 0x4F504A4Cu;  // "OPJL"

}  // namespace optipar::snapshot
