// Versioned, checksummed binary snapshot format (DESIGN.md §11). The
// checkpoint/restore subsystem serializes runtime state through a byte-level
// Writer/Reader pair: little-endian fixed-width integers, IEEE doubles, and
// length-prefixed strings/vectors, framed by a header carrying a magic, a
// format version, the payload length, and a CRC32 over the payload. Readers
// are hostile-input hardened: every read is bounds-checked and every
// mismatch (magic, version, length, checksum) raises a typed SnapshotError —
// a torn or bit-flipped snapshot is *detected*, never silently loaded.
//
// Durability discipline for files: write_file_atomic stages the payload in a
// sibling temp file, fsyncs it, atomically renames it over the target, and
// fsyncs the directory — a crash at any instant leaves either the old file
// or the new one, never a torn mix.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace optipar::snapshot {

/// CRC-32 (ISO-HDLC / zlib polynomial 0xEDB88320), the checksum that guards
/// every snapshot payload and journal record.
[[nodiscard]] std::uint32_t crc32(std::span<const std::byte> data,
                                  std::uint32_t seed = 0) noexcept;
[[nodiscard]] std::uint32_t crc32_bytes(const void* data, std::size_t size,
                                        std::uint32_t seed = 0) noexcept;

/// Typed failure taxonomy of the restore path. Every error the format can
/// detect maps to one kind so the recovery ladder (checkpoint.cpp) and the
/// tests can distinguish "corrupt" from "absent" from "incompatible".
class SnapshotError : public std::runtime_error {
 public:
  enum class Kind {
    kIo,           ///< open/read/write/rename/fsync failure
    kBadMagic,     ///< file is not a snapshot at all
    kBadVersion,   ///< produced by an incompatible format revision
    kTruncated,    ///< payload shorter than the header promises
    kBadChecksum,  ///< CRC32 mismatch — bit rot or a torn write
    kMalformed,    ///< structurally invalid payload (out-of-bounds read,
                   ///< impossible length, trailing garbage)
    kMismatch,     ///< valid snapshot for a different run (graph
                   ///< fingerprint, controller, lane count, ...)
  };

  SnapshotError(Kind kind, const std::string& what)
      : std::runtime_error("snapshot: " + what), kind_(kind) {}

  [[nodiscard]] Kind kind() const noexcept { return kind_; }

 private:
  Kind kind_;
};

/// Append-only byte sink with typed little-endian encoders. The buffer is
/// plain std::vector so a finished payload can be framed (header + CRC) or
/// embedded as a journal record without copies.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void str(const std::string& s);

  /// Length-prefixed homogeneous sequences.
  void u64_vec(std::span<const std::uint64_t> xs);
  void u32_vec(std::span<const std::uint32_t> xs);

  void raw(const void* data, std::size_t size);

  [[nodiscard]] const std::vector<std::byte>& bytes() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::vector<std::byte> take() noexcept {
    return std::move(buf_);
  }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

 private:
  std::vector<std::byte> buf_;
};

/// Bounds-checked cursor over an untrusted payload. Every accessor throws
/// SnapshotError{kMalformed} instead of reading past the end, and sequence
/// lengths are validated against the remaining bytes BEFORE any allocation
/// so a hostile length cannot trigger an OOM.
class Reader {
 public:
  explicit Reader(std::span<const std::byte> data) noexcept : data_(data) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int64_t i64() {
    return static_cast<std::int64_t>(u64());
  }
  [[nodiscard]] double f64();
  [[nodiscard]] std::string str();
  [[nodiscard]] std::vector<std::uint64_t> u64_vec();
  [[nodiscard]] std::vector<std::uint32_t> u32_vec();

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  /// Restores must consume the payload exactly; leftovers mean the format
  /// and the code disagree.
  void expect_end() const;

 private:
  void need(std::size_t n) const;

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

/// Frame `payload` with the versioned header + CRC and durably write it to
/// `path` (tmp + fsync + atomic rename + directory fsync).
void write_file_atomic(const std::string& path,
                       std::span<const std::byte> payload);

/// Crash-injection support (checkpoint tests and scripts/run_crash.sh):
/// perform only a prefix of write_file_atomic's work, simulating a process
/// killed at a chosen instant of the save.
enum class AtomicWriteStop {
  kComplete,      ///< the full durable sequence (== write_file_atomic)
  kMidWrite,      ///< tmp file holds a torn prefix of the frame; no rename
  kBeforeRename,  ///< tmp complete and fsynced, target not yet replaced
};
void write_file_atomic_until(const std::string& path,
                             std::span<const std::byte> payload,
                             AtomicWriteStop stop);

/// Read `path`, validate magic/version/length/CRC, and return the payload.
/// Throws SnapshotError (kIo when absent/unreadable, kBadMagic/kBadVersion/
/// kTruncated/kBadChecksum when present but unusable).
[[nodiscard]] std::vector<std::byte> read_file_validated(
    const std::string& path);

/// Format constants, exposed for the tests that corrupt files on purpose.
inline constexpr std::uint32_t kSnapshotMagic = 0x4F50534Eu;  // "OPSN"
inline constexpr std::uint32_t kSnapshotVersion = 1;
inline constexpr std::size_t kFileHeaderBytes = 16;  // magic,ver,len,crc

}  // namespace optipar::snapshot
