#include "support/snapshot/journal.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

#include "support/snapshot/snapshot.hpp"

namespace optipar::snapshot {

namespace {

constexpr std::size_t kFrameHeader = 12;  // magic, len, crc

std::uint32_t le32_at(const std::byte* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(p[i]))
         << (8 * i);
  }
  return v;
}

void le32_out(std::vector<std::byte>& buf, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFFu));
  }
}

[[noreturn]] void throw_errno(const std::string& op, const std::string& path) {
  throw SnapshotError(SnapshotError::Kind::kIo,
                      op + " " + path + ": " + std::strerror(errno));
}

}  // namespace

RoundJournal::RoundJournal(std::string path) : path_(std::move(path)) {
  // --- Recovery scan: committed prefix + torn-tail truncation. -----------
  std::vector<std::byte> raw;
  {
    std::ifstream in(path_, std::ios::binary);
    if (in) {
      std::vector<char> data((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
      raw.resize(data.size());
      if (!data.empty()) {  // memcpy(null, null, 0) is still UB
        std::memcpy(raw.data(), data.data(), data.size());
      }
    }
  }
  offsets_.push_back(0);
  std::size_t pos = 0;
  while (pos + kFrameHeader <= raw.size()) {
    const std::uint32_t magic = le32_at(raw.data() + pos);
    const std::uint32_t len = le32_at(raw.data() + pos + 4);
    const std::uint32_t crc = le32_at(raw.data() + pos + 8);
    if (magic != kJournalMagic) break;
    if (pos + kFrameHeader + len > raw.size()) break;  // short frame
    const std::span<const std::byte> payload{raw.data() + pos + kFrameHeader,
                                             len};
    if (crc32(payload) != crc) break;  // bit rot or torn write
    records_.emplace_back(payload.begin(), payload.end());
    pos += kFrameHeader + len;
    offsets_.push_back(pos);
  }
  committed_count_ = records_.size();
  truncated_torn_tail_ = pos != raw.size();

  open_for_append();
  if (truncated_torn_tail_) {
    if (::ftruncate(fd_, static_cast<off_t>(pos)) != 0) {
      throw_errno("ftruncate", path_);
    }
    if (::fsync(fd_) != 0) throw_errno("fsync", path_);
  }
  if (::lseek(fd_, static_cast<off_t>(pos), SEEK_SET) < 0) {
    throw_errno("lseek", path_);
  }
}

RoundJournal::~RoundJournal() {
  if (fd_ >= 0) ::close(fd_);
}

void RoundJournal::open_for_append() {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) throw_errno("open", path_);
}

namespace {

std::vector<std::byte> build_frame(std::span<const std::byte> payload) {
  std::vector<std::byte> frame;
  frame.reserve(kFrameHeader + payload.size());
  le32_out(frame, kJournalMagic);
  le32_out(frame, static_cast<std::uint32_t>(payload.size()));
  le32_out(frame, crc32(payload));
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

}  // namespace

void RoundJournal::append(std::span<const std::byte> payload) {
  const std::vector<std::byte> frame = build_frame(payload);
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::write(fd_, frame.data() + off, frame.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("write", path_);
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd_) != 0) throw_errno("fsync", path_);
  offsets_.push_back(offsets_.back() + kFrameHeader + payload.size());
  ++committed_count_;
}

void RoundJournal::append_torn(std::span<const std::byte> payload,
                               std::size_t prefix_bytes) {
  const std::vector<std::byte> frame = build_frame(payload);
  const std::size_t limit = std::min(prefix_bytes, frame.size());
  std::size_t off = 0;
  while (off < limit) {
    const ssize_t n = ::write(fd_, frame.data() + off, limit - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("write", path_);
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd_) != 0) throw_errno("fsync", path_);
  // Deliberately NOT counted: the bytes are a torn tail, not a record.
}

void RoundJournal::rewind_to(std::uint64_t count) {
  if (count >= committed_count_) return;
  const std::uint64_t cut = offsets_[count];
  if (::ftruncate(fd_, static_cast<off_t>(cut)) != 0) {
    throw_errno("ftruncate", path_);
  }
  if (::fsync(fd_) != 0) throw_errno("fsync", path_);
  if (::lseek(fd_, static_cast<off_t>(cut), SEEK_SET) < 0) {
    throw_errno("lseek", path_);
  }
  offsets_.resize(count + 1);
  if (records_.size() > count) {
    records_.resize(count);
  }
  committed_count_ = count;
}

}  // namespace optipar::snapshot
