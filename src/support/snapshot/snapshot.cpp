#include "support/snapshot/snapshot.hpp"

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include <fcntl.h>
#include <unistd.h>

namespace optipar::snapshot {

namespace {

/// CRC-32 lookup table for polynomial 0xEDB88320, built once.
const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

void put_le32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFFu));
  }
}

std::uint32_t get_le32(const std::byte* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(p[i]))
         << (8 * i);
  }
  return v;
}

[[noreturn]] void throw_errno(const std::string& op, const std::string& path) {
  throw SnapshotError(SnapshotError::Kind::kIo,
                      op + " " + path + ": " + std::strerror(errno));
}

/// Directory component of `path` ("." when none) for the post-rename fsync.
std::string dir_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

std::uint32_t crc32(std::span<const std::byte> data,
                    std::uint32_t seed) noexcept {
  const auto& table = crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (const std::byte b : data) {
    c = table[(c ^ std::to_integer<std::uint8_t>(b)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc32_bytes(const void* data, std::size_t size,
                          std::uint32_t seed) noexcept {
  return crc32({static_cast<const std::byte*>(data), size}, seed);
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

void Writer::u32(std::uint32_t v) { put_le32(buf_, v); }

void Writer::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v & 0xFFFFFFFFu));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void Writer::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void Writer::str(const std::string& s) {
  u64(s.size());
  raw(s.data(), s.size());
}

void Writer::u64_vec(std::span<const std::uint64_t> xs) {
  u64(xs.size());
  for (const std::uint64_t x : xs) u64(x);
}

void Writer::u32_vec(std::span<const std::uint32_t> xs) {
  u64(xs.size());
  for (const std::uint32_t x : xs) u32(x);
}

void Writer::raw(const void* data, std::size_t size) {
  const auto* p = static_cast<const std::byte*>(data);
  buf_.insert(buf_.end(), p, p + size);
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

void Reader::need(std::size_t n) const {
  if (remaining() < n) {
    throw SnapshotError(SnapshotError::Kind::kMalformed,
                        "payload truncated: need " + std::to_string(n) +
                            " bytes, have " + std::to_string(remaining()));
  }
}

std::uint8_t Reader::u8() {
  need(1);
  return std::to_integer<std::uint8_t>(data_[pos_++]);
}

std::uint32_t Reader::u32() {
  need(4);
  const std::uint32_t v = get_le32(data_.data() + pos_);
  pos_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  const std::uint64_t lo = u32();
  const std::uint64_t hi = u32();
  return lo | (hi << 32);
}

double Reader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string Reader::str() {
  const std::uint64_t n = u64();
  need(n);  // length validated against remaining bytes BEFORE allocating
  std::string s(n, '\0');
  std::memcpy(s.data(), data_.data() + pos_, n);
  pos_ += n;
  return s;
}

std::vector<std::uint64_t> Reader::u64_vec() {
  const std::uint64_t n = u64();
  need(n * 8 < n ? static_cast<std::size_t>(-1) : n * 8);  // overflow-safe
  std::vector<std::uint64_t> xs(n);
  for (auto& x : xs) x = u64();
  return xs;
}

std::vector<std::uint32_t> Reader::u32_vec() {
  const std::uint64_t n = u64();
  need(n * 4 < n ? static_cast<std::size_t>(-1) : n * 4);
  std::vector<std::uint32_t> xs(n);
  for (auto& x : xs) x = u32();
  return xs;
}

void Reader::expect_end() const {
  if (remaining() != 0) {
    throw SnapshotError(SnapshotError::Kind::kMalformed,
                        std::to_string(remaining()) +
                            " trailing bytes after payload");
  }
}

// ---------------------------------------------------------------------------
// Durable file I/O
// ---------------------------------------------------------------------------

void write_file_atomic_until(const std::string& path,
                             std::span<const std::byte> payload,
                             AtomicWriteStop stop) {
  std::vector<std::byte> framed;
  framed.reserve(kFileHeaderBytes + payload.size());
  put_le32(framed, kSnapshotMagic);
  put_le32(framed, kSnapshotVersion);
  put_le32(framed, static_cast<std::uint32_t>(payload.size()));
  put_le32(framed, crc32(payload));
  framed.insert(framed.end(), payload.begin(), payload.end());

  // A mid-write crash leaves half the frame: past the header, inside the
  // payload, so recovery sees a length the file cannot satisfy.
  const std::size_t limit =
      stop == AtomicWriteStop::kMidWrite ? framed.size() / 2 : framed.size();

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_errno("open", tmp);
  std::size_t off = 0;
  while (off < limit) {
    const ssize_t n = ::write(fd, framed.data() + off, limit - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw_errno("write", tmp);
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    throw_errno("fsync", tmp);
  }
  if (::close(fd) != 0) throw_errno("close", tmp);
  if (stop != AtomicWriteStop::kComplete) return;
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw_errno("rename", path);
  }
  // fsync the directory so the rename itself is durable.
  const int dfd = ::open(dir_of(path).c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

void write_file_atomic(const std::string& path,
                       std::span<const std::byte> payload) {
  write_file_atomic_until(path, payload, AtomicWriteStop::kComplete);
}

std::vector<std::byte> read_file_validated(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw SnapshotError(SnapshotError::Kind::kIo, "cannot open " + path);
  }
  std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  if (raw.size() < kFileHeaderBytes) {
    throw SnapshotError(SnapshotError::Kind::kTruncated,
                        path + ": shorter than the file header");
  }
  const auto* bytes = reinterpret_cast<const std::byte*>(raw.data());
  if (get_le32(bytes) != kSnapshotMagic) {
    throw SnapshotError(SnapshotError::Kind::kBadMagic,
                        path + ": not a snapshot file");
  }
  const std::uint32_t version = get_le32(bytes + 4);
  if (version != kSnapshotVersion) {
    throw SnapshotError(SnapshotError::Kind::kBadVersion,
                        path + ": format version " + std::to_string(version) +
                            " (supported: " +
                            std::to_string(kSnapshotVersion) + ")");
  }
  const std::uint32_t length = get_le32(bytes + 8);
  const std::uint32_t checksum = get_le32(bytes + 12);
  if (raw.size() - kFileHeaderBytes != length) {
    throw SnapshotError(SnapshotError::Kind::kTruncated,
                        path + ": header promises " + std::to_string(length) +
                            " payload bytes, file has " +
                            std::to_string(raw.size() - kFileHeaderBytes));
  }
  const std::span<const std::byte> payload{bytes + kFileHeaderBytes, length};
  if (crc32(payload) != checksum) {
    throw SnapshotError(SnapshotError::Kind::kBadChecksum,
                        path + ": CRC32 mismatch");
  }
  return {payload.begin(), payload.end()};
}

}  // namespace optipar::snapshot
