// Minimal terminal line-chart renderer so the figure benches can show the
// curve shapes directly in their output (the CSVs remain the source of
// truth for external plotting).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace optipar {

class AsciiPlot {
 public:
  AsciiPlot(std::size_t width, std::size_t height)
      : width_(width), height_(height) {}

  /// Add a named series; x must be non-decreasing. `glyph` draws it.
  void add_series(std::string name, char glyph, std::vector<double> x,
                  std::vector<double> y) {
    series_.push_back({std::move(name), glyph, std::move(x), std::move(y)});
  }

  void render(std::ostream& os) const {
    double min_x = 1e300, max_x = -1e300, min_y = 1e300, max_y = -1e300;
    for (const auto& s : series_) {
      for (const double v : s.x) {
        min_x = std::min(min_x, v);
        max_x = std::max(max_x, v);
      }
      for (const double v : s.y) {
        min_y = std::min(min_y, v);
        max_y = std::max(max_y, v);
      }
    }
    if (min_x > max_x || min_y > max_y) return;  // nothing to draw
    if (max_x == min_x) max_x = min_x + 1;
    if (max_y == min_y) max_y = min_y + 1;

    std::vector<std::string> grid(height_, std::string(width_, ' '));
    for (const auto& s : series_) {
      for (std::size_t i = 0; i < std::min(s.x.size(), s.y.size()); ++i) {
        const auto col = static_cast<std::size_t>(
            std::round((s.x[i] - min_x) / (max_x - min_x) *
                       static_cast<double>(width_ - 1)));
        const auto row = static_cast<std::size_t>(
            std::round((s.y[i] - min_y) / (max_y - min_y) *
                       static_cast<double>(height_ - 1)));
        grid[height_ - 1 - row][col] = s.glyph;
      }
    }
    char ybuf[32];
    std::snprintf(ybuf, sizeof(ybuf), "%8.3g", max_y);
    os << ybuf << " +" << std::string(width_, '-') << "+\n";
    for (const auto& line : grid) {
      os << std::string(9, ' ') << '|' << line << "|\n";
    }
    std::snprintf(ybuf, sizeof(ybuf), "%8.3g", min_y);
    os << ybuf << " +" << std::string(width_, '-') << "+\n";
    std::snprintf(ybuf, sizeof(ybuf), "%-10.3g", min_x);
    os << std::string(10, ' ') << ybuf
       << std::string(width_ > 24 ? width_ - 20 : 1, ' ');
    std::snprintf(ybuf, sizeof(ybuf), "%10.3g", max_x);
    os << ybuf << "\n";
    for (const auto& s : series_) {
      os << "          " << s.glyph << " = " << s.name << "\n";
    }
  }

 private:
  struct Series {
    std::string name;
    char glyph;
    std::vector<double> x;
    std::vector<double> y;
  };
  std::size_t width_;
  std::size_t height_;
  std::vector<Series> series_;
};

}  // namespace optipar
