// A fixed-size thread pool following the Core Guidelines concurrency rules:
// threads are created once and reused (CP.41), idle workers wait on a
// condition variable rather than spinning (CP.42), and mutable state is
// packaged with the mutex that guards it (CP.50). The pool is the execution
// substrate for the speculative runtime in src/rt/.
//
// Two execution paths share the resident workers:
//
//  * submit() — one-off tasks through a mutex/CV queue, with a future for
//    completion and exception transport. Unchanged classic pool.
//  * parallel_for() / run_on_workers() — the FORK-JOIN path. The dispatching
//    thread broadcasts one type-erased callable to every resident worker by
//    bumping an epoch counter; workers run their lane and decrement an
//    arrival counter the dispatcher joins on. No per-call allocation, no
//    std::function copies, no packaged_task/future pairs — the
//    round-synchronous executor dispatches thousands of rounds per second
//    through this path.
//
// Nesting: a fork-join entry point invoked from inside a worker lane (or
// re-entrantly from the dispatching thread) degrades to serial inline
// execution — it cannot recruit workers that are already occupied by the
// outer call. Exceptions still propagate identically. run_on_workers
// callables that synchronize across lanes (e.g. barriers) therefore require
// a non-nested call site.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace optipar {

/// Non-owning reference to a callable `void(std::size_t)`. The fork-join
/// entry points take this instead of `std::function` so that dispatching a
/// round costs neither an allocation nor an indirect copy; the referenced
/// callable must outlive the (synchronous) call, which every fork-join use
/// guarantees by construction.
class WorkFnRef {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, WorkFnRef>>>
  // NOLINTNEXTLINE(google-explicit-constructor): intentional implicit ref.
  WorkFnRef(F&& f) noexcept
      : obj_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
        call_(+[](void* o, std::size_t i) {
          (*static_cast<std::remove_reference_t<F>*>(o))(i);
        }) {}

  void operator()(std::size_t i) const { call_(obj_, i); }

 private:
  void* obj_;
  void (*call_)(void*, std::size_t);
};

class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1). Defaults to hardware concurrency.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; the future reports completion / exceptions.
  std::future<void> submit(std::function<void()> task);

  /// Run fn(i) for i in [0, n) across the pool and wait for all of them.
  /// Work is dealt in contiguous blocks via an atomic cursor, so callers get
  /// reasonable locality without static partitioning. If fn throws, the
  /// throwing lane stops, the remaining lanes finish their work, and the
  /// first exception is rethrown to the caller.
  void parallel_for(std::size_t n, WorkFnRef fn, std::size_t grain = 1);

  /// Run one instance of fn(lane) on each of k lanes (k <= size() + 1; the
  /// caller participates as lane 0) and wait. This is the primitive the
  /// round-synchronous executor uses: each round activates exactly m
  /// "processors". In a non-nested call the k lanes run concurrently, so
  /// the callable may synchronize across lanes (e.g. with a SpinBarrier).
  void run_on_workers(std::size_t k, WorkFnRef fn);

  /// True when the calling thread may not dispatch a concurrent fork-join
  /// (it is one of this pool's workers, or already inside a fork-join
  /// region). Callers that need genuine cross-lane concurrency — barriers —
  /// must fall back to a single lane when this holds.
  [[nodiscard]] bool in_worker_context() const noexcept;

  /// Lifetime count of lane exceptions caught by the fork-join paths —
  /// failure-path observability (scripts/run_chaos.sh asserts this stays 0
  /// when the executor's own lane wrappers absorb every injected fault).
  [[nodiscard]] std::uint64_t lane_errors() const noexcept {
    return lane_errors_.load(std::memory_order_relaxed);
  }

 private:
  void worker_loop(std::size_t id);
  /// Shared fork-join dispatch: caller is lane 0, workers 0..p-2 are lanes
  /// 1..p-1. Serial-inline when nested. Rethrows the first lane exception.
  void fork_join(std::size_t participants, const WorkFnRef& fn);
  void record_error() noexcept;

  // --- one-off task queue (guarded by wake_mutex_) -------------------------
  std::queue<std::packaged_task<void()>> tasks_;
  bool stopping_ = false;

  // --- fork-join broadcast state ------------------------------------------
  // job_fn_ / job_worker_lanes_ are written by the dispatcher under
  // wake_mutex_ before the release bump of job_epoch_; workers read them
  // after an acquire load of job_epoch_ (publication via the epoch).
  const WorkFnRef* job_fn_ = nullptr;
  std::size_t job_worker_lanes_ = 0;
  alignas(64) std::atomic<std::uint64_t> job_epoch_{0};
  alignas(64) std::atomic<std::size_t> job_remaining_{0};
  std::exception_ptr job_error_;  // first lane exception (error_mutex_)
  std::mutex error_mutex_;
  std::atomic<std::uint64_t> lane_errors_{0};

  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;  // workers: new job / queue task / stop
  std::condition_variable done_cv_;  // dispatcher: all lanes arrived
  std::mutex fork_mutex_;  // serializes concurrent external dispatchers

  std::vector<std::thread> workers_;
};

}  // namespace optipar
