// A small fixed-size thread pool following the Core Guidelines concurrency
// rules: threads are created once and reused (CP.41), workers wait on a
// condition variable rather than spinning (CP.42), and the queue's mutex is
// packaged with the data it guards (CP.50). The pool is the execution
// substrate for the speculative runtime in src/rt/.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace optipar {

class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1). Defaults to hardware concurrency.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; the future reports completion / exceptions.
  std::future<void> submit(std::function<void()> task);

  /// Run fn(i) for i in [0, n) across the pool and wait for all of them.
  /// Work is dealt in contiguous blocks via an atomic cursor, so callers get
  /// reasonable locality without static partitioning. If fn throws, the
  /// throwing lane stops, the remaining lanes finish their work, and the
  /// first exception is rethrown to the caller.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 1);

  /// Run one instance of fn(worker_index) on each of k workers (k <= size())
  /// and wait. This is the primitive the round-synchronous executor uses:
  /// each round activates exactly m "processors".
  void run_on_workers(std::size_t k,
                      const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  struct Queue {
    std::mutex mutex;
    std::condition_variable cv;
    std::queue<std::packaged_task<void()>> tasks;
    bool stopping = false;
  };

  Queue queue_;
  std::vector<std::thread> workers_;
};

}  // namespace optipar
