// The metrics export surface (DESIGN.md §10): a flat registry of metric
// families — counters, gauges, histograms — rendered as Prometheus
// exposition text or as JSON (schema "optipar.metrics.v2", validated by
// scripts/check_metrics.py). Renderings are deterministic: families appear
// in registration order, samples in insertion order, and floating-point
// values use a fixed shortest-round-trip format — so golden-file tests can
// pin the exact bytes.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace optipar {

class MetricsRegistry {
 public:
  enum class Type { kCounter, kGauge, kHistogram };

  /// Label set; rendered sorted by key.
  using Labels = std::map<std::string, std::string>;

  /// One cumulative histogram bucket: count of observations <= `le`.
  struct Bucket {
    std::string le;  ///< upper bound as text ("1", "2.5", "+Inf")
    std::uint64_t count = 0;
  };

  /// Add a counter/gauge sample. The first add of a `name` fixes its type
  /// and help text; later adds append samples (e.g. one per lane label).
  void add(const std::string& name, Type type, const std::string& help,
           Labels labels, double value);

  /// Add a histogram sample: `buckets` must be cumulative and end with the
  /// "+Inf" bucket (whose count equals the observation total).
  void add_histogram(const std::string& name, const std::string& help,
                     Labels labels, std::vector<Bucket> buckets,
                     double sum = 0.0);

  [[nodiscard]] std::size_t family_count() const noexcept {
    return families_.size();
  }

  /// Prometheus text exposition format (# HELP / # TYPE / samples).
  void render_prometheus(std::ostream& os) const;

  /// JSON document: {"schema":"optipar.metrics.v2","metrics":[...]}.
  void render_json(std::ostream& os) const;

  /// Format a double exactly the way both renderers do (integral values
  /// without a decimal point, otherwise shortest round-trip).
  [[nodiscard]] static std::string format_value(double value);

 private:
  struct Sample {
    Labels labels;
    double value = 0.0;
    std::vector<Bucket> buckets;  ///< histogram samples only
    double sum = 0.0;             ///< histogram samples only
  };
  struct Family {
    std::string name;
    Type type = Type::kCounter;
    std::string help;
    std::vector<Sample> samples;
  };

  Family& family_of(const std::string& name, Type type,
                    const std::string& help);

  std::vector<Family> families_;
  std::map<std::string, std::size_t> index_;
};

}  // namespace optipar
