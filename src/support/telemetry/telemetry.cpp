#include "support/telemetry/telemetry.hpp"

#include <algorithm>
#include <bit>

#include "support/telemetry/conflict_profiler.hpp"
#include "support/telemetry/metrics_registry.hpp"
#include "support/telemetry/span_trace.hpp"

namespace optipar::telemetry {

std::string describe_exception(const std::exception_ptr& error) {
  if (!error) return "unknown error";
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "non-std exception";
  }
}

const char* event_kind_name(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kRoundStart: return "round_start";
    case EventKind::kRoundEnd: return "round_end";
    case EventKind::kControllerDecision: return "controller_decision";
    case EventKind::kRetry: return "retry";
    case EventKind::kQuarantine: return "quarantine";
    case EventKind::kFaultFired: return "fault_fired";
    case EventKind::kLaneDeath: return "lane_death";
    case EventKind::kWatchdogDegrade: return "watchdog_degrade";
    case EventKind::kSerialDegrade: return "serial_degrade";
    case EventKind::kLivelock: return "livelock";
    case EventKind::kError: return "error";
    case EventKind::kCheckpoint: return "checkpoint";
    case EventKind::kRecovery: return "recovery";
    case EventKind::kCertify: return "certify";
  }
  return "unknown";
}

namespace {
void write_escaped(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) >= 0x20) os << c;
    }
  }
}
}  // namespace

void write_events_jsonl(std::ostream& os,
                        std::span<const TraceEvent> events) {
  for (const TraceEvent& ev : events) {
    os << "{\"type\":\"event\",\"kind\":\"" << event_kind_name(ev.kind)
       << "\",\"round\":" << ev.round << ",\"lane\":" << ev.lane
       << ",\"a\":" << ev.a << ",\"b\":" << ev.b
       << ",\"x\":" << MetricsRegistry::format_value(ev.x)
       << ",\"y\":" << MetricsRegistry::format_value(ev.y);
    if (!ev.note.empty()) {
      os << ",\"note\":\"";
      write_escaped(os, ev.note);
      os << '"';
    }
    os << "}\n";
  }
}

// ---------------------------------------------------------------------------
// EventRing
// ---------------------------------------------------------------------------

EventRing::EventRing(std::size_t capacity) {
  const std::size_t cap = std::bit_ceil(std::max<std::size_t>(capacity, 8));
  buf_.resize(cap);
  mask_ = cap - 1;
}

void EventRing::push(TraceEvent event) noexcept {
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  std::uint64_t tail = tail_.load(std::memory_order_relaxed);
  if (head - tail == buf_.size()) {
    // Full: drop the oldest. Single-producer, and drains only happen at
    // quiescent points, so advancing the tail here cannot race a reader.
    tail_.store(tail + 1, std::memory_order_relaxed);
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  buf_[head & mask_] = std::move(event);
  head_.store(head + 1, std::memory_order_release);
}

std::size_t EventRing::size() const noexcept {
  return static_cast<std::size_t>(head_.load(std::memory_order_acquire) -
                                  tail_.load(std::memory_order_relaxed));
}

void EventRing::drain(std::vector<TraceEvent>& out) {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  std::uint64_t tail = tail_.load(std::memory_order_relaxed);
  out.reserve(out.size() + static_cast<std::size_t>(head - tail));
  for (; tail != head; ++tail) {
    out.push_back(std::move(buf_[tail & mask_]));
  }
  tail_.store(tail, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// TimerSet
// ---------------------------------------------------------------------------

TimerAccumulator& TimerSet::at(const std::string& name) {
  const std::lock_guard lock(mutex_);
  auto& slot = named_[name];
  if (!slot) slot = std::make_unique<TimerAccumulator>();
  return *slot;
}

std::vector<TimerSet::Entry> TimerSet::snapshot() const {
  const std::lock_guard lock(mutex_);
  std::vector<Entry> out;
  out.reserve(named_.size());
  for (const auto& [name, acc] : named_) {
    out.push_back({name, acc->total_ns(), acc->count()});
  }
  return out;  // std::map iteration is already name-sorted
}

// ---------------------------------------------------------------------------
// RuntimeTelemetry
// ---------------------------------------------------------------------------

RuntimeTelemetry::RuntimeTelemetry(TelemetryConfig config)
    : config_(config), control_(config.ring_capacity) {}

void RuntimeTelemetry::ensure_lanes(std::size_t n) {
  while (lanes_.size() < n) {
    lanes_.push_back(std::make_unique<LaneTelemetry>(config_.ring_capacity));
  }
  wire_lane_sinks();
}

void RuntimeTelemetry::set_spans(SpanCollector* spans) {
  spans_ = spans;
  wire_lane_sinks();
}

void RuntimeTelemetry::set_profiler(ConflictProfiler* profiler) {
  profiler_ = profiler;
  wire_lane_sinks();
}

void RuntimeTelemetry::wire_lane_sinks() {
  // Each lane reaches the optional sinks through its own pointer, so a
  // detached sink stays the usual single-pointer-test no-op on hot paths.
  if (spans_ != nullptr) spans_->ensure_lanes(lanes_.size());
  for (std::size_t l = 0; l < lanes_.size(); ++l) {
    lanes_[l]->spans = spans_ != nullptr ? &spans_->lane(l) : nullptr;
    lanes_[l]->prof = profiler_;
  }
}

void RuntimeTelemetry::emit(TraceEvent event) {
  const std::lock_guard lock(control_mutex_);
  control_.push(std::move(event));
}

std::vector<TraceEvent> RuntimeTelemetry::drain_events() {
  std::vector<TraceEvent> out;
  {
    const std::lock_guard lock(control_mutex_);
    control_.drain(out);
  }
  for (auto& lane : lanes_) lane->ring.drain(out);
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.round < b.round;
                   });
  return out;
}

TelemetryTotals RuntimeTelemetry::totals() const {
  TelemetryTotals t;
  for (const auto& lane : lanes_) {
    t.executed += lane->executed;
    t.committed += lane->committed;
    t.aborted += lane->aborted;
    t.retried += lane->retried;
    t.quarantined += lane->quarantined;
    t.lock_failures += lane->lock_failures;
    t.arb_poisons += lane->arb_poisons;
    t.arb_waits += lane->arb_waits;
    t.dropped_events += lane->ring.dropped();
    t.work.merge(lane->work);
  }
  return t;
}

std::uint64_t RuntimeTelemetry::total_dropped() const {
  std::uint64_t dropped = control_.dropped();
  for (const auto& lane : lanes_) dropped += lane->ring.dropped();
  return dropped;
}

namespace {

void add_lane_counter(MetricsRegistry& reg, const std::string& name,
                      const std::string& help, std::size_t lane,
                      std::uint64_t value) {
  reg.add(name, MetricsRegistry::Type::kCounter, help,
          {{"lane", std::to_string(lane)}}, static_cast<double>(value));
}

void add_phase_seconds(MetricsRegistry& reg, std::size_t lane,
                       const char* phase, std::uint64_t ns) {
  reg.add("optipar_phase_seconds_total", MetricsRegistry::Type::kCounter,
          "Wall seconds spent per executor phase, per lane",
          {{"lane", std::to_string(lane)}, {"phase", phase}},
          static_cast<double>(ns) * 1e-9);
}

}  // namespace

void RuntimeTelemetry::export_metrics(MetricsRegistry& reg) const {
  for (std::size_t l = 0; l < lanes_.size(); ++l) {
    const LaneTelemetry& lane = *lanes_[l];
    add_lane_counter(reg, "optipar_lane_executed_total",
                     "Tasks executed per lane", l, lane.executed);
    add_lane_counter(reg, "optipar_lane_committed_total",
                     "Tasks committed per lane", l, lane.committed);
    add_lane_counter(reg, "optipar_lane_aborted_total",
                     "Tasks aborted per lane (conflicted or faulted)", l,
                     lane.aborted);
    add_lane_counter(reg, "optipar_lane_retried_total",
                     "Faulted tasks requeued with backoff, per executing lane",
                     l, lane.retried);
    add_lane_counter(reg, "optipar_lane_quarantined_total",
                     "Faulted tasks dead-lettered, per executing lane", l,
                     lane.quarantined);
    add_lane_counter(reg, "optipar_lane_lock_failures_total",
                     "Failed abstract-lock acquires (conflicts seen)", l,
                     lane.lock_failures);
    add_lane_counter(reg, "optipar_lane_arbitration_poisons_total",
                     "Priority-wins poisons issued", l, lane.arb_poisons);
    add_lane_counter(reg, "optipar_lane_arbitration_waits_total",
                     "Priority-wins wait loops entered", l, lane.arb_waits);
  }
  for (std::size_t l = 0; l < lanes_.size(); ++l) {
    const LaneTelemetry& lane = *lanes_[l];
    add_phase_seconds(reg, l, "draw", lane.draw_ns);
    add_phase_seconds(reg, l, "speculate", lane.exec_ns);
    add_phase_seconds(reg, l, "rollback", lane.rollback_ns);
    add_phase_seconds(reg, l, "commit", lane.commit_ns);
    add_phase_seconds(reg, l, "arbitrate", lane.arb_wait_ns);
    add_phase_seconds(reg, l, "precheck", lane.precheck_ns);
  }

  const TelemetryTotals t = totals();
  std::vector<MetricsRegistry::Bucket> buckets;
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < WorkHistogram::kBuckets; ++b) {
    cumulative += t.work.counts[b];
    const std::uint64_t ub = WorkHistogram::upper_bound(b);
    buckets.push_back({b + 1 == WorkHistogram::kBuckets
                           ? std::string("+Inf")
                           : std::to_string(ub),
                       cumulative});
  }
  reg.add_histogram("optipar_task_items_held",
                    "Abstract locks held per executed task", {},
                    std::move(buckets));

  reg.add("optipar_trace_events_dropped_total",
          MetricsRegistry::Type::kCounter,
          "Trace events lost to ring-buffer overflow (drop-oldest)", {},
          static_cast<double>(total_dropped()));

  // Checkpoint-restored work (DESIGN.md §11): executed by a pre-crash
  // process, so it appears in the executor's cumulative totals but in no
  // lane counter of THIS process. Exported even when zero so the
  // reconciliation invariant (lanes + restored == total) is checkable on
  // every run.
  const auto add_restored = [&reg](const char* name, const char* help,
                                   std::uint64_t value) {
    reg.add(name, MetricsRegistry::Type::kCounter, help, {},
            static_cast<double>(value));
  };
  add_restored("optipar_restored_launched_total",
               "Tasks launched by pre-crash processes (from checkpoint)",
               restored_.launched);
  add_restored("optipar_restored_committed_total",
               "Tasks committed by pre-crash processes (from checkpoint)",
               restored_.committed);
  add_restored("optipar_restored_aborted_total",
               "Tasks aborted by pre-crash processes (from checkpoint)",
               restored_.aborted);
  add_restored("optipar_restored_retried_total",
               "Tasks retried by pre-crash processes (from checkpoint)",
               restored_.retried);
  add_restored("optipar_restored_quarantined_total",
               "Tasks quarantined by pre-crash processes (from checkpoint)",
               restored_.quarantined);

  for (const TimerSet::Entry& e : timers_.snapshot()) {
    reg.add("optipar_scoped_timer_seconds_total",
            MetricsRegistry::Type::kCounter,
            "Named scoped-timer totals (serial phases, estimator, CLI)",
            {{"timer", e.name}}, static_cast<double>(e.total_ns) * 1e-9);
    reg.add("optipar_scoped_timer_spans_total",
            MetricsRegistry::Type::kCounter,
            "Named scoped-timer span counts", {{"timer", e.name}},
            static_cast<double>(e.count));
  }
}

}  // namespace optipar::telemetry
