// HDR-style log-bucketed latency histogram (DESIGN.md §15). Buckets are
// powers of two in nanoseconds — bucket i covers (2^(i-1), 2^i] ns — which
// keeps the relative error of any recorded value under 2x across the whole
// 1 ns .. ~9 minute range with a fixed 40-counter footprint and no
// allocation on the record path. The serve daemon aggregates one of these
// per latency family (admission wait, time-to-first-round, round latency,
// end-to-end time-to-solution) and exports them through MetricsRegistry as
// optipar.metrics.v2 histogram families plus quantile-summary gauges.
//
// Not internally synchronized: the daemon records from its single
// scheduler thread and snapshots under a mutex; merge() exists for hosts
// that shard by thread.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <string>

#include "support/telemetry/metrics_registry.hpp"

namespace optipar::telemetry {

class LatencyHistogram {
 public:
  /// le bounds 2^0 .. 2^38 ns (~4.6 min) + the implicit +Inf bucket.
  static constexpr std::size_t kBuckets = 40;

  static constexpr std::size_t bucket_of(std::uint64_t ns) noexcept {
    // bit_width(1) == 1 -> bucket 0 (le 1 ns); bit_width(2^38+1) == 39 ->
    // the +Inf bucket (index 39).
    if (ns <= 1) return 0;
    const std::size_t b = static_cast<std::size_t>(std::bit_width(ns - 1));
    return b < kBuckets ? b : kBuckets - 1;
  }

  /// Upper bound of bucket `i` in nanoseconds (the +Inf bucket saturates).
  static constexpr std::uint64_t upper_bound_ns(std::size_t i) noexcept {
    return i + 1 < kBuckets ? (std::uint64_t{1} << i) : ~std::uint64_t{0};
  }

  void record_ns(std::uint64_t ns) noexcept {
    ++counts_[bucket_of(ns)];
    ++count_;
    sum_ns_ += static_cast<double>(ns);
    if (ns > max_ns_) max_ns_ = ns;
  }

  void merge(const LatencyHistogram& other) noexcept {
    for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
    count_ += other.count_;
    sum_ns_ += other.sum_ns_;
    if (other.max_ns_ > max_ns_) max_ns_ = other.max_ns_;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum_seconds() const noexcept { return sum_ns_ * 1e-9; }
  [[nodiscard]] std::uint64_t max_ns() const noexcept { return max_ns_; }

  /// Quantile estimate in seconds: the upper bound of the first bucket
  /// whose cumulative count reaches q·count (0 when empty). Upward-biased
  /// by at most 2x — the HDR trade the log buckets buy.
  [[nodiscard]] double quantile_seconds(double q) const noexcept {
    if (count_ == 0) return 0.0;
    const double target = q * static_cast<double>(count_);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      cumulative += counts_[i];
      if (static_cast<double>(cumulative) >= target) {
        // The +Inf bucket reports the observed max instead of infinity.
        return i + 1 < kBuckets
                   ? static_cast<double>(upper_bound_ns(i)) * 1e-9
                   : static_cast<double>(max_ns_) * 1e-9;
      }
    }
    return static_cast<double>(max_ns_) * 1e-9;
  }

  /// Export as a cumulative `<base>_seconds` histogram family (le bounds
  /// in seconds) plus a `<base>_quantile_seconds` gauge family with
  /// p50/p90/p99 samples. `base` carries no unit suffix.
  void export_metrics(MetricsRegistry& reg, const std::string& base,
                      const std::string& help) const {
    std::vector<MetricsRegistry::Bucket> buckets;
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      cumulative += counts_[i];
      if (counts_[i] == 0 && i + 1 < kBuckets) continue;  // sparse render
      const std::string le =
          i + 1 < kBuckets ? MetricsRegistry::format_value(
                                 static_cast<double>(upper_bound_ns(i)) * 1e-9)
                           : "+Inf";
      buckets.push_back({le, cumulative});
    }
    if (buckets.empty() || buckets.back().le != "+Inf") {
      buckets.push_back({"+Inf", cumulative});
    }
    reg.add_histogram(base + "_seconds", help, {}, buckets, sum_seconds());
    for (const double q : {0.5, 0.9, 0.99}) {
      reg.add(base + "_quantile_seconds", MetricsRegistry::Type::kGauge,
              help + " (log-bucket quantile estimate)",
              {{"quantile", MetricsRegistry::format_value(q)}},
              quantile_seconds(q));
    }
  }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  double sum_ns_ = 0.0;
  std::uint64_t max_ns_ = 0;
};

}  // namespace optipar::telemetry
