// Hierarchical span tracing (DESIGN.md §15). A SpanCollector records timed
// spans — job → round → phase → lane chunk — through the same attachable
// hook as the rest of the telemetry layer, and exports them as a Chrome
// trace-event JSON document viewable in Perfetto / chrome://tracing.
//
// Recording model:
//   * Coordinator-side spans (round, checkpoint, admission wait, WAL fsync)
//     go through begin()/end()/record()/instant() under a mutex: they fire a
//     few times per round, so the lock is irrelevant.
//   * Lane-side spans (sampled draw/exec chunks, rollbacks) go into
//     per-lane single-producer SpanBuffers with no synchronization at all —
//     the same quiescent-drain discipline as the EventRing: lanes only push
//     during a round, the exporter only reads after the run has drained.
//
// The collector is attached via RuntimeTelemetry::set_spans and reached
// from the executor's hot path through one pointer on LaneTelemetry, so a
// run without --trace-chrome performs exactly the nullptr tests it always
// performed: the telemetry-off path stays byte-identical and the span-off
// telemetry path keeps the PR 4 overhead sentinel.
//
// Export discipline: spans may arrive malformed — ended out of order,
// never ended (a throw unwound past the site), or overlapping their parent
// because a lane flushed late. export_chrome repairs rather than trusts:
// per (pid, tid) it sorts spans parent-first, clamps children into their
// parent's interval, closes orphans at the parent's end (or the trace
// end), and only then emits the B/E pairs — so the output always parses,
// always nests, and scripts/check_trace.py can hold it to the strict
// trace-event schema.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace optipar::telemetry {

/// One recorded span (ph "B"/"E" pair at export) or instant (ph "i").
/// `name` must point at a string literal or otherwise outlive the
/// collector — span sites are static instrumentation points, not dynamic
/// labels; dynamic detail rides in `note`.
struct SpanRecord {
  const char* name = "";
  std::uint32_t tid = 0;       ///< 0 = coordinator, 1+L = lane L
  std::uint64_t start_ns = 0;  ///< monotonic_ns()
  std::uint64_t end_ns = 0;    ///< 0 = still open (repaired at export)
  std::uint64_t a = 0;         ///< args.a (typically the round index)
  std::uint64_t b = 0;         ///< args.b (typically m / take / bytes)
  bool instant = false;        ///< ph "i" thread-scoped instant event
  std::string note;            ///< optional args.note
};

/// Single-producer span sink for one lane. Push is a plain vector append:
/// no atomics, no lock — exactly one lane thread writes between drains.
class SpanBuffer {
 public:
  void push(const SpanRecord& rec) { spans_.push_back(rec); }
  [[nodiscard]] const std::vector<SpanRecord>& spans() const noexcept {
    return spans_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return spans_.size(); }
  void clear() noexcept { spans_.clear(); }

 private:
  std::vector<SpanRecord> spans_;
};

class SpanCollector {
 public:
  /// `pid` labels every exported event; the serve daemon uses the job id,
  /// the CLI uses 1.
  explicit SpanCollector(std::uint64_t pid = 1) : pid_(pid) {}

  SpanCollector(const SpanCollector&) = delete;
  SpanCollector& operator=(const SpanCollector&) = delete;

  [[nodiscard]] std::uint64_t pid() const noexcept { return pid_; }

  // -- coordinator-side recording (mutex-guarded) ---------------------------

  /// Open a span now; returns a handle for end(). Handles stay valid for
  /// the collector's lifetime.
  std::size_t begin(const char* name, std::uint32_t tid, std::uint64_t a = 0,
                    std::uint64_t b = 0);
  /// Close a span opened by begin(). Tolerant by design: an out-of-range
  /// handle or a double-end is ignored — malformed close order must never
  /// crash or corrupt the export (the repair pass handles nesting).
  void end(std::size_t handle);
  /// Push an already-complete span (used for retroactive spans, e.g. the
  /// admission wait measured between two timestamps the caller owns).
  void record(const SpanRecord& rec);
  /// Thread-scoped instant event (deadline fire, cancellation, crash).
  void instant(const char* name, std::uint32_t tid, std::uint64_t a = 0,
               std::uint64_t b = 0, const std::string& note = {});

  // -- lane-side recording (single producer per buffer, no lock) -----------

  /// Grow the per-lane buffer set; existing buffer addresses are stable.
  void ensure_lanes(std::size_t n);
  [[nodiscard]] SpanBuffer& lane(std::size_t i) { return *lanes_[i]; }
  [[nodiscard]] std::size_t lane_count() const noexcept {
    return lanes_.size();
  }

  // -- export ---------------------------------------------------------------

  /// Emit the whole collection as one Chrome trace-event JSON document
  /// ({"traceEvents":[...]}, ts in microseconds relative to the earliest
  /// span). Call only at a quiescent point (after the run has drained).
  void export_chrome(std::ostream& os) const;

  /// Total recorded spans + instants across all buffers.
  [[nodiscard]] std::size_t size() const;

  void clear();

 private:
  std::uint64_t pid_;
  mutable std::mutex mutex_;                        ///< guards control_
  std::vector<SpanRecord> control_;                 ///< coordinator spans
  std::vector<std::unique_ptr<SpanBuffer>> lanes_;  ///< lane spans
};

/// RAII coordinator span: begin at construction, end at scope exit. A null
/// collector makes every member a no-op — the standard disabled-path
/// contract (no clock read, one branch).
class SpanScope {
 public:
  SpanScope(SpanCollector* collector, const char* name, std::uint32_t tid,
            std::uint64_t a = 0, std::uint64_t b = 0)
      : collector_(collector),
        handle_(collector ? collector->begin(name, tid, a, b) : 0) {}

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  ~SpanScope() { close(); }

  /// Close the span now instead of at scope exit (idempotent).
  void close() {
    if (collector_ == nullptr) return;
    collector_->end(handle_);
    collector_ = nullptr;
  }

 private:
  SpanCollector* collector_;
  std::size_t handle_;
};

}  // namespace optipar::telemetry
