// Conflict-attribution profiler (DESIGN.md §15): WHERE do the aborts come
// from? The controller consumes the conflict ratio as one global scalar,
// but the ROADMAP's partitioned-execution item needs the signal spatially
// resolved — which items (graph regions) kill speculative work, per
// scheduler backend. The profiler keeps one relaxed counter pair per
// abstract-lock item:
//
//   * conflicts — failed acquires and arbitration poisons, i.e. the item
//     that killed a speculative task (every abort has exactly one);
//   * arb_wait_ns — nanoseconds lanes spent parked on the item's
//     arbitration queue.
//
// Recording is a single relaxed fetch_add on the item's counter, reached
// through one pointer test on LaneTelemetry (nullptr = detached, the same
// contract as the rest of the telemetry layer). Optional event sampling
// (sample_period > 1) decimates through a cache-padded per-thread cursor
// and scales the recorded weight back up, bounding cross-lane traffic on
// adversarial workloads; the default of 1 records every event, which makes
// single-lane hotspot reports exactly reproducible run-to-run.
//
// Rollups (top-K hotspots, degree-bucketed totals, top-share locality) are
// cold-path reads at a quiescent point.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <vector>

namespace optipar::telemetry {

class ConflictProfiler {
 public:
  explicit ConflictProfiler(std::uint32_t num_items,
                            std::uint32_t sample_period = 1);

  ConflictProfiler(const ConflictProfiler&) = delete;
  ConflictProfiler& operator=(const ConflictProfiler&) = delete;

  /// Per-item degree (or any size proxy) for the degree-bucketed rollup;
  /// items without a degree land in bucket 0.
  void set_degrees(std::vector<std::uint32_t> degrees);

  // -- hot-path recording (called from lanes; relaxed atomics) -------------

  void on_conflict(std::uint32_t item) noexcept {
    if (item >= conflicts_.size() || !sample()) return;
    conflicts_[item].fetch_add(sample_period_, std::memory_order_relaxed);
  }

  void on_arb_wait(std::uint32_t item, std::uint64_t ns) noexcept {
    if (item >= arb_wait_ns_.size() || !sample()) return;
    arb_wait_ns_[item].fetch_add(ns * sample_period_,
                                 std::memory_order_relaxed);
  }

  // -- cold-path rollups ---------------------------------------------------

  [[nodiscard]] std::uint32_t num_items() const noexcept {
    return static_cast<std::uint32_t>(conflicts_.size());
  }
  [[nodiscard]] std::uint32_t sample_period() const noexcept {
    return sample_period_;
  }
  [[nodiscard]] std::uint64_t total_conflicts() const noexcept;
  [[nodiscard]] std::uint64_t total_arb_wait_ns() const noexcept;

  struct Hotspot {
    std::uint32_t item = 0;
    std::uint64_t conflicts = 0;
    std::uint64_t arb_wait_ns = 0;
    std::uint32_t degree = 0;
  };

  /// The K items with the most attributed conflicts, descending, ties
  /// broken by item id (so equal-count reports are deterministic).
  [[nodiscard]] std::vector<Hotspot> top_k(std::size_t k) const;

  /// Fraction of all conflicts attributed to the top-K items — the
  /// abort-locality scalar bench/sched_compare reports per backend (1.0
  /// when everything concentrates on K items, ~K/n when uniform).
  [[nodiscard]] double top_share(std::size_t k) const;

  struct DegreeBucket {
    std::uint64_t degree_lo = 0;  ///< inclusive
    std::uint64_t degree_hi = 0;  ///< inclusive
    std::uint64_t items = 0;      ///< items in the degree range
    std::uint64_t conflicts = 0;
    std::uint64_t arb_wait_ns = 0;
  };

  /// Conflicts rolled up by power-of-two degree buckets ([0,0], [1,1],
  /// [2,3], [4,7], ...) — the "is contention a high-degree phenomenon?"
  /// view. Empty buckets are omitted.
  [[nodiscard]] std::vector<DegreeBucket> degree_buckets() const;

  /// Machine-readable report: {"schema":"optipar.profile.v1",...} with the
  /// top-K hotspot list and the degree rollup.
  void write_json(std::ostream& os, std::size_t k) const;

  /// Human-readable top-K table.
  void write_report(std::ostream& os, std::size_t k) const;

 private:
  [[nodiscard]] bool sample() noexcept {
    if (sample_period_ <= 1) return true;
    // Thread-local cursor (its own line by construction): decimation costs
    // no shared-line traffic; the recorded weight is scaled by the period.
    thread_local std::uint64_t cursor = 0;
    return ++cursor % sample_period_ == 0;
  }

  std::uint32_t sample_period_;
  std::vector<std::atomic<std::uint64_t>> conflicts_;
  std::vector<std::atomic<std::uint64_t>> arb_wait_ns_;
  std::vector<std::uint32_t> degrees_;
};

}  // namespace optipar::telemetry
