#include "support/telemetry/span_trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <ostream>

#include "support/timer.hpp"

namespace optipar::telemetry {

namespace {

/// Escape a string for a JSON literal (same policy as the telemetry JSONL
/// writer: control characters are dropped, quotes and backslashes escaped).
void write_escaped_json(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      os << c;
    }
  }
}

/// Microseconds with fixed sub-microsecond precision: Chrome's `ts` unit.
void write_ts_us(std::ostream& os, std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", ns / 1000,
                static_cast<unsigned>(ns % 1000));
  os << buf;
}

/// One trace event ready to serialize, ordered by (ts, per-tid sequence).
struct EmitEvent {
  std::uint64_t ts_ns = 0;
  char ph = 'B';
  const SpanRecord* rec = nullptr;
};

void write_event(std::ostream& os, const EmitEvent& ev, std::uint64_t pid,
                 std::uint64_t base_ns) {
  os << "{\"name\":\"";
  write_escaped_json(os, ev.rec->name);
  os << "\",\"cat\":\"optipar\",\"ph\":\"" << ev.ph << "\",\"ts\":";
  write_ts_us(os, ev.ts_ns - base_ns);
  os << ",\"pid\":" << pid << ",\"tid\":" << ev.rec->tid;
  if (ev.ph == 'B' || ev.ph == 'i') {
    if (ev.ph == 'i') os << ",\"s\":\"t\"";
    os << ",\"args\":{\"a\":" << ev.rec->a << ",\"b\":" << ev.rec->b;
    if (!ev.rec->note.empty()) {
      os << ",\"note\":\"";
      write_escaped_json(os, ev.rec->note);
      os << "\"";
    }
    os << "}";
  }
  os << "}";
}

}  // namespace

std::size_t SpanCollector::begin(const char* name, std::uint32_t tid,
                                 std::uint64_t a, std::uint64_t b) {
  const std::uint64_t now = monotonic_ns();
  const std::scoped_lock lock(mutex_);
  SpanRecord rec;
  rec.name = name;
  rec.tid = tid;
  rec.start_ns = now;
  rec.a = a;
  rec.b = b;
  control_.push_back(std::move(rec));
  return control_.size() - 1;
}

void SpanCollector::end(std::size_t handle) {
  const std::uint64_t now = monotonic_ns();
  const std::scoped_lock lock(mutex_);
  if (handle >= control_.size()) return;       // tolerate bogus handles
  if (control_[handle].end_ns != 0) return;    // tolerate double-end
  if (control_[handle].instant) return;
  control_[handle].end_ns = now;
}

void SpanCollector::record(const SpanRecord& rec) {
  const std::scoped_lock lock(mutex_);
  control_.push_back(rec);
}

void SpanCollector::instant(const char* name, std::uint32_t tid,
                            std::uint64_t a, std::uint64_t b,
                            const std::string& note) {
  SpanRecord rec;
  rec.name = name;
  rec.tid = tid;
  rec.start_ns = monotonic_ns();
  rec.end_ns = rec.start_ns;
  rec.a = a;
  rec.b = b;
  rec.instant = true;
  rec.note = note;
  record(rec);
}

void SpanCollector::ensure_lanes(std::size_t n) {
  while (lanes_.size() < n) lanes_.push_back(std::make_unique<SpanBuffer>());
}

std::size_t SpanCollector::size() const {
  std::size_t total = 0;
  {
    const std::scoped_lock lock(mutex_);
    total += control_.size();
  }
  for (const auto& lane : lanes_) total += lane->size();
  return total;
}

void SpanCollector::clear() {
  {
    const std::scoped_lock lock(mutex_);
    control_.clear();
  }
  for (const auto& lane : lanes_) lane->clear();
}

void SpanCollector::export_chrome(std::ostream& os) const {
  // Gather everything into one owned vector: the repair pass mutates
  // end_ns copies, never the recorded spans.
  std::vector<SpanRecord> all;
  {
    const std::scoped_lock lock(mutex_);
    all = control_;
  }
  for (const auto& lane : lanes_) {
    all.insert(all.end(), lane->spans().begin(), lane->spans().end());
  }

  // Trace extent. Unclosed spans (a throw unwound past the site, or a
  // coordinator abandoned mid-round) are closed at the trace end.
  std::uint64_t base_ns = ~std::uint64_t{0};
  std::uint64_t max_ns = 0;
  for (const SpanRecord& rec : all) {
    base_ns = std::min(base_ns, rec.start_ns);
    max_ns = std::max(max_ns, std::max(rec.start_ns, rec.end_ns));
  }
  if (all.empty()) base_ns = 0;
  for (SpanRecord& rec : all) {
    if (!rec.instant && rec.end_ns == 0) rec.end_ns = max_ns;
    if (rec.end_ns < rec.start_ns) rec.end_ns = rec.start_ns;
  }

  // Per-tid repair: sort parent-first, clamp children into their parent's
  // interval with a stack sweep, emit B/E in stack order. The result is
  // properly nested per (pid, tid) by construction, whatever the close
  // order at the record sites was.
  std::map<std::uint32_t, std::vector<SpanRecord>> by_tid;
  for (const SpanRecord& rec : all) by_tid[rec.tid].push_back(rec);

  std::vector<EmitEvent> events;
  std::vector<std::vector<SpanRecord>> repaired;  // stable storage for ptrs
  repaired.reserve(by_tid.size() * 2);
  for (auto& [tid, spans] : by_tid) {
    std::vector<SpanRecord> instants;
    std::erase_if(spans, [&instants](const SpanRecord& rec) {
      if (rec.instant) instants.push_back(rec);
      return rec.instant;
    });
    std::sort(spans.begin(), spans.end(),
              [](const SpanRecord& x, const SpanRecord& y) {
                if (x.start_ns != y.start_ns) return x.start_ns < y.start_ns;
                return x.end_ns > y.end_ns;  // parent (longer) first
              });
    std::vector<const SpanRecord*> stack;
    for (SpanRecord& rec : spans) {
      while (!stack.empty() && stack.back()->end_ns <= rec.start_ns) {
        events.push_back({stack.back()->end_ns, 'E', stack.back()});
        stack.pop_back();
      }
      if (!stack.empty() && rec.end_ns > stack.back()->end_ns) {
        rec.end_ns = stack.back()->end_ns;  // clamp into the parent
      }
      events.push_back({rec.start_ns, 'B', &rec});
      stack.push_back(&rec);
    }
    while (!stack.empty()) {
      events.push_back({stack.back()->end_ns, 'E', stack.back()});
      stack.pop_back();
    }
    for (const SpanRecord& rec : instants) {
      events.push_back({rec.start_ns, 'i', &rec});
    }
    repaired.push_back(std::move(spans));
    repaired.push_back(std::move(instants));
    // Re-point events at the stable storage (spans was moved).
    // NOTE: pointers into `spans`/`instants` remain valid after the move —
    // moving a vector moves its heap buffer, not its elements.
  }

  // Global timestamp order. Events from one tid were emitted in legal
  // stack order at equal timestamps, and stable_sort preserves that; tids
  // are independent, so any interleave across them is valid.
  std::stable_sort(events.begin(), events.end(),
                   [](const EmitEvent& x, const EmitEvent& y) {
                     return x.ts_ns < y.ts_ns;
                   });

  os << "{\"traceEvents\":[";
  bool first = true;
  // Metadata: name the process and each thread lane for the viewer.
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid_
     << ",\"tid\":0,\"args\":{\"name\":\"optipar job " << pid_ << "\"}}";
  for (const auto& [tid, spans] : by_tid) {
    os << ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid_
       << ",\"tid\":" << tid << ",\"args\":{\"name\":\""
       << (tid == 0 ? std::string("scheduler")
                    : "lane " + std::to_string(tid - 1))
       << "\"}}";
  }
  first = false;
  for (const EmitEvent& ev : events) {
    if (!first) os << ",";
    os << "\n";
    first = false;
    write_event(os, ev, pid_, base_ns);
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace optipar::telemetry
