#include "support/telemetry/metrics_registry.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace optipar {

namespace {

const char* type_name(MetricsRegistry::Type type) {
  switch (type) {
    case MetricsRegistry::Type::kCounter: return "counter";
    case MetricsRegistry::Type::kGauge: return "gauge";
    case MetricsRegistry::Type::kHistogram: return "histogram";
  }
  return "untyped";
}

void write_json_escaped(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

void write_label_set(std::ostream& os, const MetricsRegistry::Labels& labels) {
  if (labels.empty()) return;
  os << '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) os << ',';
    first = false;
    os << k << "=\"" << v << '"';
  }
  os << '}';
}

}  // namespace

std::string MetricsRegistry::format_value(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", value);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  return buf;
}

MetricsRegistry::Family& MetricsRegistry::family_of(const std::string& name,
                                                    Type type,
                                                    const std::string& help) {
  const auto it = index_.find(name);
  if (it != index_.end()) {
    Family& family = families_[it->second];
    if (family.type != type) {
      throw std::logic_error("MetricsRegistry: metric '" + name +
                             "' re-registered with a different type");
    }
    return family;
  }
  index_.emplace(name, families_.size());
  families_.push_back({name, type, help, {}});
  return families_.back();
}

void MetricsRegistry::add(const std::string& name, Type type,
                          const std::string& help, Labels labels,
                          double value) {
  if (type == Type::kHistogram) {
    throw std::logic_error("MetricsRegistry: use add_histogram for '" +
                           name + "'");
  }
  family_of(name, type, help).samples.push_back(
      {std::move(labels), value, {}, 0.0});
}

void MetricsRegistry::add_histogram(const std::string& name,
                                    const std::string& help, Labels labels,
                                    std::vector<Bucket> buckets, double sum) {
  if (buckets.empty() || buckets.back().le != "+Inf") {
    throw std::logic_error("MetricsRegistry: histogram '" + name +
                           "' must end with the +Inf bucket");
  }
  family_of(name, Type::kHistogram, help)
      .samples.push_back({std::move(labels),
                          static_cast<double>(buckets.back().count),
                          std::move(buckets), sum});
}

void MetricsRegistry::render_prometheus(std::ostream& os) const {
  for (const Family& family : families_) {
    if (!family.help.empty()) {
      os << "# HELP " << family.name << ' ' << family.help << '\n';
    }
    os << "# TYPE " << family.name << ' ' << type_name(family.type) << '\n';
    for (const Sample& sample : family.samples) {
      if (family.type == Type::kHistogram) {
        for (const Bucket& bucket : sample.buckets) {
          Labels with_le = sample.labels;
          with_le["le"] = bucket.le;
          os << family.name << "_bucket";
          write_label_set(os, with_le);
          os << ' ' << bucket.count << '\n';
        }
        os << family.name << "_sum";
        write_label_set(os, sample.labels);
        os << ' ' << format_value(sample.sum) << '\n';
        os << family.name << "_count";
        write_label_set(os, sample.labels);
        os << ' ' << sample.buckets.back().count << '\n';
      } else {
        os << family.name;
        write_label_set(os, sample.labels);
        os << ' ' << format_value(sample.value) << '\n';
      }
    }
  }
}

void MetricsRegistry::render_json(std::ostream& os) const {
  // v2 (additive over v1): histogram families may carry quantile-summary
  // gauge companions (`<base>_quantile_seconds`), and serve exports the
  // per-job latency histogram families. Consumers keyed on v1 only need to
  // accept the new schema string — sample shapes are unchanged.
  os << "{\"schema\":\"optipar.metrics.v2\",\"metrics\":[";
  bool first_family = true;
  for (const Family& family : families_) {
    if (!first_family) os << ',';
    first_family = false;
    os << "{\"name\":\"";
    write_json_escaped(os, family.name);
    os << "\",\"type\":\"" << type_name(family.type) << "\",\"help\":\"";
    write_json_escaped(os, family.help);
    os << "\",\"samples\":[";
    bool first_sample = true;
    for (const Sample& sample : family.samples) {
      if (!first_sample) os << ',';
      first_sample = false;
      os << "{\"labels\":{";
      bool first_label = true;
      for (const auto& [k, v] : sample.labels) {
        if (!first_label) os << ',';
        first_label = false;
        os << '"';
        write_json_escaped(os, k);
        os << "\":\"";
        write_json_escaped(os, v);
        os << '"';
      }
      os << '}';
      if (family.type == Type::kHistogram) {
        os << ",\"buckets\":[";
        bool first_bucket = true;
        for (const Bucket& bucket : sample.buckets) {
          if (!first_bucket) os << ',';
          first_bucket = false;
          os << "{\"le\":\"" << bucket.le << "\",\"count\":" << bucket.count
             << '}';
        }
        os << "],\"sum\":" << format_value(sample.sum)
           << ",\"count\":" << sample.buckets.back().count;
      } else {
        os << ",\"value\":" << format_value(sample.value);
      }
      os << '}';
    }
    os << "]}";
  }
  os << "]}\n";
}

}  // namespace optipar
