#include "support/telemetry/conflict_profiler.hpp"

#include <algorithm>
#include <bit>
#include <iomanip>
#include <ostream>

namespace optipar::telemetry {

ConflictProfiler::ConflictProfiler(std::uint32_t num_items,
                                   std::uint32_t sample_period)
    : sample_period_(sample_period == 0 ? 1 : sample_period),
      conflicts_(num_items),
      arb_wait_ns_(num_items) {}

void ConflictProfiler::set_degrees(std::vector<std::uint32_t> degrees) {
  degrees_ = std::move(degrees);
}

std::uint64_t ConflictProfiler::total_conflicts() const noexcept {
  std::uint64_t total = 0;
  for (const auto& c : conflicts_) {
    total += c.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t ConflictProfiler::total_arb_wait_ns() const noexcept {
  std::uint64_t total = 0;
  for (const auto& c : arb_wait_ns_) {
    total += c.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<ConflictProfiler::Hotspot> ConflictProfiler::top_k(
    std::size_t k) const {
  std::vector<Hotspot> all;
  for (std::uint32_t item = 0; item < conflicts_.size(); ++item) {
    const std::uint64_t c = conflicts_[item].load(std::memory_order_relaxed);
    const std::uint64_t w =
        arb_wait_ns_[item].load(std::memory_order_relaxed);
    if (c == 0 && w == 0) continue;
    Hotspot h;
    h.item = item;
    h.conflicts = c;
    h.arb_wait_ns = w;
    h.degree = item < degrees_.size() ? degrees_[item] : 0;
    all.push_back(h);
  }
  const std::size_t take = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(take),
                    all.end(), [](const Hotspot& x, const Hotspot& y) {
                      if (x.conflicts != y.conflicts) {
                        return x.conflicts > y.conflicts;
                      }
                      if (x.arb_wait_ns != y.arb_wait_ns) {
                        return x.arb_wait_ns > y.arb_wait_ns;
                      }
                      return x.item < y.item;
                    });
  all.resize(take);
  return all;
}

double ConflictProfiler::top_share(std::size_t k) const {
  const std::uint64_t total = total_conflicts();
  if (total == 0) return 0.0;
  std::uint64_t top = 0;
  for (const Hotspot& h : top_k(k)) top += h.conflicts;
  return static_cast<double>(top) / static_cast<double>(total);
}

std::vector<ConflictProfiler::DegreeBucket>
ConflictProfiler::degree_buckets() const {
  // Bucket b >= 1 covers degrees [2^(b-1), 2^b - 1]; bucket 0 is degree 0.
  constexpr std::size_t kMaxBuckets = 33;
  std::vector<DegreeBucket> buckets(kMaxBuckets);
  for (std::uint32_t item = 0; item < conflicts_.size(); ++item) {
    const std::uint32_t deg =
        item < degrees_.size() ? degrees_[item] : 0;
    const std::size_t b = deg == 0 ? 0 : std::bit_width(deg);
    DegreeBucket& bucket = buckets[std::min(b, kMaxBuckets - 1)];
    ++bucket.items;
    bucket.conflicts += conflicts_[item].load(std::memory_order_relaxed);
    bucket.arb_wait_ns +=
        arb_wait_ns_[item].load(std::memory_order_relaxed);
  }
  std::vector<DegreeBucket> out;
  for (std::size_t b = 0; b < kMaxBuckets; ++b) {
    if (buckets[b].items == 0) continue;
    buckets[b].degree_lo = b == 0 ? 0 : std::uint64_t{1} << (b - 1);
    buckets[b].degree_hi = b == 0 ? 0 : (std::uint64_t{1} << b) - 1;
    out.push_back(buckets[b]);
  }
  return out;
}

void ConflictProfiler::write_json(std::ostream& os, std::size_t k) const {
  os << "{\"schema\":\"optipar.profile.v1\",\"items\":" << num_items()
     << ",\"sample_period\":" << sample_period_
     << ",\"total_conflicts\":" << total_conflicts()
     << ",\"total_arb_wait_ns\":" << total_arb_wait_ns()
     << ",\"top_share_16\":" << top_share(16) << ",\"hotspots\":[";
  bool first = true;
  for (const Hotspot& h : top_k(k)) {
    if (!first) os << ",";
    first = false;
    os << "{\"item\":" << h.item << ",\"conflicts\":" << h.conflicts
       << ",\"arb_wait_ns\":" << h.arb_wait_ns << ",\"degree\":" << h.degree
       << "}";
  }
  os << "],\"degree_buckets\":[";
  first = true;
  for (const DegreeBucket& b : degree_buckets()) {
    if (!first) os << ",";
    first = false;
    os << "{\"degree_lo\":" << b.degree_lo << ",\"degree_hi\":" << b.degree_hi
       << ",\"items\":" << b.items << ",\"conflicts\":" << b.conflicts
       << ",\"arb_wait_ns\":" << b.arb_wait_ns << "}";
  }
  os << "]}\n";
}

void ConflictProfiler::write_report(std::ostream& os, std::size_t k) const {
  os << "conflict hotspots (top " << k << " of " << num_items()
     << " items, " << total_conflicts() << " conflicts attributed):\n";
  os << "  item        conflicts    arb_wait_us   degree\n";
  for (const Hotspot& h : top_k(k)) {
    os << "  " << std::setw(10) << std::left << h.item << std::right
       << std::setw(11) << h.conflicts << std::setw(15)
       << h.arb_wait_ns / 1000 << std::setw(9) << h.degree << "\n";
  }
  os << "degree buckets:\n";
  for (const DegreeBucket& b : degree_buckets()) {
    os << "  deg [" << b.degree_lo << ", " << b.degree_hi << "]: "
       << b.items << " items, " << b.conflicts << " conflicts\n";
  }
}

}  // namespace optipar::telemetry
