// Runtime telemetry (DESIGN.md §10): per-lane counters and histograms,
// per-phase time accumulators, and structured event traces for the
// speculative runtime and the adaptive estimator.
//
// Design constraints, in order:
//   1. Near-free when disabled. Nothing here is ever consulted unless a
//      RuntimeTelemetry object is attached; every instrumentation site in
//      the executor is a single pointer test. Telemetry-off runs are
//      byte-identical to un-instrumented builds (the golden-trace tests pin
//      this) and within noise on perf_micro.
//   2. No cross-lane sharing on the hot path. Each pool lane owns a
//      cache-line-padded LaneTelemetry block (counters, histogram, phase
//      nanoseconds, event ring); lanes never write each other's blocks.
//      Merging happens at round barriers or export time, both serial.
//   3. Deterministic exports. Counter totals are exact sums over lanes and
//      reconcile with the executor's RoundStats; renderings sort names so
//      golden-file tests can pin them.
//
// The event trace extends sim/trace.hpp's StepRecord rather than
// duplicating it: per-round records stay StepRecords (written as JSONL by
// sim/trace.{hpp,cpp}); TraceEvent carries only the *sub-round* happenings
// a StepRecord cannot — controller decisions, retries, quarantines, fault
// firings, lane deaths, degradation transitions.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "support/padded.hpp"
#include "support/timer.hpp"

namespace optipar {

class MetricsRegistry;

namespace telemetry {

class SpanCollector;      // span_trace.hpp
class SpanBuffer;         // span_trace.hpp
class ConflictProfiler;   // conflict_profiler.hpp

/// Render an exception_ptr's message (what(), or a fallback) — shared by
/// the executor's dead-letter records and the trace/metrics error path.
[[nodiscard]] std::string describe_exception(const std::exception_ptr& error);

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

/// Fixed power-of-two-bucket histogram for per-task work (items held,
/// undo entries, ...). Buckets: v <= 1, <= 2, <= 4, ... <= 128, +inf.
/// POD-fast: recording is one bit-width computation and one increment, so a
/// lane can afford it per task when telemetry is enabled.
struct WorkHistogram {
  static constexpr std::size_t kBuckets = 9;  ///< 1,2,4,...,128, then +inf

  std::array<std::uint64_t, kBuckets> counts{};

  /// Bucket index of value `v` (see class comment for the boundaries).
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t v) noexcept {
    if (v <= 1) return 0;
    const auto w = static_cast<std::size_t>(std::bit_width(v - 1));
    return w < kBuckets - 1 ? w : kBuckets - 1;
  }
  /// Inclusive upper bound of bucket `b` (UINT64_MAX for the last bucket).
  [[nodiscard]] static std::uint64_t upper_bound(std::size_t b) noexcept {
    return b + 1 < kBuckets ? (std::uint64_t{1} << b) : ~std::uint64_t{0};
  }

  void record(std::uint64_t v) noexcept { ++counts[bucket_of(v)]; }

  [[nodiscard]] std::uint64_t total() const noexcept {
    std::uint64_t t = 0;
    for (const auto c : counts) t += c;
    return t;
  }

  void merge(const WorkHistogram& other) noexcept {
    for (std::size_t b = 0; b < kBuckets; ++b) counts[b] += other.counts[b];
  }
};

// ---------------------------------------------------------------------------
// Typed trace events
// ---------------------------------------------------------------------------

enum class EventKind : std::uint32_t {
  kRoundStart,           ///< a = requested m, b = tasks actually taken
  kRoundEnd,             ///< a = launched, b = committed, x = conflict ratio
  kControllerDecision,   ///< a = next m, b = launched, x = r̄, y = r̄ − ρ
  kRetry,                ///< a = task, b = attempt
  kQuarantine,           ///< a = task, b = attempts; note = final error
  kFaultFired,           ///< a/b = injection-point ids; note = site name
  kLaneDeath,            ///< a = lane; note = escaped exception
  kWatchdogDegrade,      ///< a = step the watchdog fired at
  kSerialDegrade,        ///< executor pinned itself to the serial path
  kLivelock,             ///< a = stalled rounds; note = diagnostic
  kError,                ///< a = task/round id; note = first_error text
  kCheckpoint,           ///< a = rounds covered, b = snapshot bytes
  kRecovery,             ///< a = rounds restored, b = journal records kept;
                         ///< note = which rung of the ladder succeeded
  kCertify,              ///< a = verdict (1 ok / 0 fail), b = facts checked,
                         ///< x = seconds; note = certificate code [+ detail]
};

[[nodiscard]] const char* event_kind_name(EventKind kind) noexcept;

struct TraceEvent {
  EventKind kind = EventKind::kRoundStart;
  std::uint32_t lane = 0;   ///< producing lane (or 0 for control events)
  std::uint64_t round = 0;  ///< executor round index (1-based)
  std::uint64_t a = 0;      ///< kind-specific (see EventKind)
  std::uint64_t b = 0;
  double x = 0.0;
  double y = 0.0;
  std::string note;  ///< optional human detail (error text, site name)
};

/// Write events as JSONL, one `{"type":"event",...}` object per line.
/// Fields are stable and the `note` is JSON-escaped; consumers pair these
/// with the `{"type":"round",...}` lines sim/trace.hpp emits.
void write_events_jsonl(std::ostream& os, std::span<const TraceEvent> events);

/// Per-lane single-producer event ring with a drop-oldest overflow policy.
/// The producing lane pushes during the round; draining happens only at
/// round boundaries / export time, when lanes have quiesced — so the ring
/// needs no consumer-side synchronization, only the drop accounting.
class EventRing {
 public:
  /// Capacity is rounded up to a power of two (minimum 8).
  explicit EventRing(std::size_t capacity = 1024);

  EventRing(const EventRing&) = delete;
  EventRing& operator=(const EventRing&) = delete;

  /// Append; when full the OLDEST event is dropped (and counted) — recent
  /// history is worth more than ancient history in a post-mortem.
  void push(TraceEvent event) noexcept;

  [[nodiscard]] std::size_t size() const noexcept;
  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Move the buffered events (oldest first) into `out`; empties the ring.
  void drain(std::vector<TraceEvent>& out);

 private:
  std::vector<TraceEvent> buf_;
  std::uint64_t mask_;
  std::atomic<std::uint64_t> head_{0};  ///< next write position
  std::atomic<std::uint64_t> tail_{0};  ///< oldest retained event
  std::atomic<std::uint64_t> dropped_{0};
};

// ---------------------------------------------------------------------------
// Per-lane state
// ---------------------------------------------------------------------------

/// One pool lane's counters, phase clocks, histogram, and event ring.
/// Cache-line padded: lanes bump their own block with plain (non-atomic)
/// increments and never touch a neighbor's line.
struct alignas(kCacheLine) LaneTelemetry {
  explicit LaneTelemetry(std::size_t ring_capacity) : ring(ring_capacity) {}

  // Task outcomes, attributed to the lane that EXECUTED the task (commit is
  // decided at execute time; retry/quarantine are serial-tail decisions
  // attributed back via the executing-lane stamp).
  std::uint64_t executed = 0;
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;  ///< includes conflicted AND faulted tasks
  std::uint64_t retried = 0;
  std::uint64_t quarantined = 0;

  // Lock-layer observations (item_lock).
  std::uint64_t lock_failures = 0;  ///< failed item acquires (conflicts)
  std::uint64_t arb_poisons = 0;    ///< priority-wins poisons issued
  std::uint64_t arb_waits = 0;      ///< priority-wins wait loops entered

  // Per-phase nanoseconds spent by this lane.
  std::uint64_t draw_ns = 0;      ///< shard pops / steals
  std::uint64_t exec_ns = 0;      ///< operator execution + commit decision
  std::uint64_t rollback_ns = 0;  ///< undo-log unwinds (subset of exec wall)
  std::uint64_t commit_ns = 0;    ///< epilogue: publish, requeue, release
  std::uint64_t arb_wait_ns = 0;  ///< priority-wins spin-waiting
  std::uint64_t precheck_ns = 0;  ///< pipelined draw + conflict pre-check

  WorkHistogram work;  ///< items held per executed task

  EventRing ring;

  // Optional deep-observability sinks, wired by RuntimeTelemetry when a
  // SpanCollector / ConflictProfiler is attached. nullptr (the default)
  // keeps every extra site a single pointer test, so the span-off /
  // profiler-off telemetry path pays nothing new (PR 4 overhead sentinel).
  SpanBuffer* spans = nullptr;      ///< this lane's span sink (DESIGN.md §15)
  ConflictProfiler* prof = nullptr; ///< per-item conflict attribution
};

// ---------------------------------------------------------------------------
// RuntimeTelemetry — the attachable sink
// ---------------------------------------------------------------------------

struct TelemetryConfig {
  std::size_t ring_capacity = 1024;  ///< per-lane AND control-stream rings
  double target_rho = 0.0;  ///< ρ for decision events' rho-error (0 = unset)
};

/// Aggregated counter view (exact sums over lanes).
struct TelemetryTotals {
  std::uint64_t executed = 0;
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t retried = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t lock_failures = 0;
  std::uint64_t arb_poisons = 0;
  std::uint64_t arb_waits = 0;
  std::uint64_t dropped_events = 0;
  WorkHistogram work;
};

/// Named scoped-timer accumulators (serial phases, estimator sweeps, CLI
/// stages). Registration takes a mutex; accumulation is lock-free — cache
/// the TimerAccumulator* once per attach, not per use.
class TimerSet {
 public:
  /// Get-or-create the accumulator named `name`. The reference is stable
  /// for the TimerSet's lifetime.
  [[nodiscard]] TimerAccumulator& at(const std::string& name);

  struct Entry {
    std::string name;
    std::uint64_t total_ns = 0;
    std::uint64_t count = 0;
  };
  /// Snapshot sorted by name (deterministic export order).
  [[nodiscard]] std::vector<Entry> snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<TimerAccumulator>> named_;
};

/// The attachable telemetry sink. One instance serves one executor (or one
/// estimator run); lifetime must cover every round it is attached for.
class RuntimeTelemetry {
 public:
  explicit RuntimeTelemetry(TelemetryConfig config = {});

  RuntimeTelemetry(const RuntimeTelemetry&) = delete;
  RuntimeTelemetry& operator=(const RuntimeTelemetry&) = delete;

  [[nodiscard]] const TelemetryConfig& config() const noexcept {
    return config_;
  }
  void set_target_rho(double rho) noexcept { config_.target_rho = rho; }
  [[nodiscard]] double target_rho() const noexcept {
    return config_.target_rho;
  }

  /// Grow to at least `n` lanes. Serial-context only (between rounds);
  /// existing LaneTelemetry addresses are stable across growth.
  void ensure_lanes(std::size_t n);
  [[nodiscard]] std::size_t lane_count() const noexcept {
    return lanes_.size();
  }
  /// Lane `i`'s block; `i < lane_count()`. The lane itself writes plain
  /// fields; other threads may only read after a quiescent point.
  [[nodiscard]] LaneTelemetry& lane(std::size_t i) { return *lanes_[i]; }
  [[nodiscard]] const LaneTelemetry& lane(std::size_t i) const {
    return *lanes_[i];
  }

  /// Thread-safe push to the control event stream (controller decisions,
  /// degradations, fault firings). Mutex-guarded — control events are rare
  /// by construction, so contention is not a concern.
  void emit(TraceEvent event);

  [[nodiscard]] TimerSet& timers() noexcept { return timers_; }
  [[nodiscard]] const TimerSet& timers() const noexcept { return timers_; }

  /// Attach a span collector (nullptr detaches). Serial-context only.
  /// Existing and future lanes get their SpanBuffer pointer wired so the
  /// executor reaches spans through the LaneTelemetry it already holds.
  void set_spans(SpanCollector* spans);
  [[nodiscard]] SpanCollector* spans() const noexcept { return spans_; }

  /// Attach a conflict-attribution profiler (nullptr detaches).
  /// Serial-context only; same lane-pointer wiring as set_spans.
  void set_profiler(ConflictProfiler* profiler);
  [[nodiscard]] ConflictProfiler* profiler() const noexcept {
    return profiler_;
  }

  /// Drain every ring (all lanes + control stream) into one list, stably
  /// sorted by round so JSONL output reads chronologically. Serial-context
  /// only.
  [[nodiscard]] std::vector<TraceEvent> drain_events();

  /// Exact sums of the per-lane counters (serial-context only).
  [[nodiscard]] TelemetryTotals totals() const;

  /// Events dropped across every ring (lanes + control).
  [[nodiscard]] std::uint64_t total_dropped() const;

  /// Render counters, per-lane breakdowns, phase times, histograms, and
  /// named timers into `registry` under the `optipar_` namespace.
  void export_metrics(MetricsRegistry& registry) const;

  /// Work restored from a checkpoint rather than executed by this
  /// process's lanes (DESIGN.md §11). A resumed run's executor totals
  /// include the pre-crash rounds, so the reconciliation invariant becomes
  /// sum(lanes) + restored == executor total; checkpoint restore records
  /// the snapshot's cumulative totals here.
  struct RestoredBaseline {
    std::uint64_t launched = 0;
    std::uint64_t committed = 0;
    std::uint64_t aborted = 0;
    std::uint64_t retried = 0;
    std::uint64_t quarantined = 0;
  };
  void set_restored_baseline(const RestoredBaseline& baseline) noexcept {
    restored_ = baseline;
  }
  [[nodiscard]] const RestoredBaseline& restored_baseline() const noexcept {
    return restored_;
  }

 private:
  TelemetryConfig config_;
  std::vector<std::unique_ptr<LaneTelemetry>> lanes_;
  EventRing control_;
  std::mutex control_mutex_;
  TimerSet timers_;
  RestoredBaseline restored_;
  SpanCollector* spans_ = nullptr;        ///< non-owning; nullptr = off
  ConflictProfiler* profiler_ = nullptr;  ///< non-owning; nullptr = off

  void wire_lane_sinks();
};

}  // namespace telemetry
}  // namespace optipar
