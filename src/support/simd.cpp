#include "support/simd.hpp"

#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
#define OPTIPAR_SIMD_X86 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define OPTIPAR_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace optipar::simd {

// ---------------------------------------------------------------------------
// Scalar reference kernels. These ARE the semantics: every vector body
// below must match them bit-for-bit (the differential test enforces it).
// ---------------------------------------------------------------------------

namespace {

std::size_t count_equal_u8_scalar(const std::uint8_t* data, std::size_t n,
                                  std::uint8_t value) noexcept {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) count += data[i] == value;
  return count;
}

bool any_equal_gather_u32_scalar(const std::uint32_t* table,
                                 const std::uint32_t* idx, std::size_t n,
                                 std::uint32_t match) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    if (table[idx[i]] == match) return true;
  }
  return false;
}

void scatter_u32_scalar(std::uint32_t* table, const std::uint32_t* idx,
                        std::size_t n, std::uint32_t value) noexcept {
  for (std::size_t i = 0; i < n; ++i) table[idx[i]] = value;
}

void welford_step_u32_scalar(double* mean, double* m2, double* mn,
                             double* mx, const std::uint32_t* x,
                             std::size_t n, double count) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    const double v = static_cast<double>(x[i]);
    const double delta = v - mean[i];
    mean[i] += delta / count;
    m2[i] += delta * (v - mean[i]);
    if (v < mn[i]) mn[i] = v;
    if (v > mx[i]) mx[i] = v;
  }
}

// ---------------------------------------------------------------------------
// AVX2 / AVX-512 bodies (x86 only). Function-level target attributes keep
// the rest of the translation unit at the baseline ISA.
// ---------------------------------------------------------------------------

#if defined(OPTIPAR_SIMD_X86)

__attribute__((target("avx2,popcnt"))) std::size_t count_equal_u8_avx2(
    const std::uint8_t* data, std::size_t n, std::uint8_t value) noexcept {
  const __m256i needle = _mm256_set1_epi8(static_cast<char>(value));
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(data + i));
    const unsigned mask = static_cast<unsigned>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, needle)));
    count += static_cast<std::size_t>(__builtin_popcount(mask));
  }
  return count + count_equal_u8_scalar(data + i, n - i, value);
}

__attribute__((target("avx512f,avx512bw"))) std::size_t
count_equal_u8_avx512(const std::uint8_t* data, std::size_t n,
                      std::uint8_t value) noexcept {
  const __m512i needle = _mm512_set1_epi8(static_cast<char>(value));
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m512i v = _mm512_loadu_si512(data + i);
    count += static_cast<std::size_t>(
        __builtin_popcountll(_mm512_cmpeq_epi8_mask(v, needle)));
  }
  if (i < n) {
    const __mmask64 tail = (~std::uint64_t{0}) >> (64 - (n - i));
    const __m512i v = _mm512_maskz_loadu_epi8(tail, data + i);
    count += static_cast<std::size_t>(__builtin_popcountll(
        _mm512_mask_cmpeq_epi8_mask(tail, v, needle)));
  }
  return count;
}

__attribute__((target("avx2"))) bool any_equal_gather_u32_avx2(
    const std::uint32_t* table, const std::uint32_t* idx, std::size_t n,
    std::uint32_t match) noexcept {
  const __m256i needle = _mm256_set1_epi32(static_cast<int>(match));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i vidx = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(idx + i));
    const __m256i vals = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(table), vidx, 4);
    if (_mm256_movemask_epi8(_mm256_cmpeq_epi32(vals, needle)) != 0) {
      return true;
    }
  }
  return any_equal_gather_u32_scalar(table, idx + i, n - i, match);
}

__attribute__((target("avx512f"))) bool any_equal_gather_u32_avx512(
    const std::uint32_t* table, const std::uint32_t* idx, std::size_t n,
    std::uint32_t match) noexcept {
  const __m512i needle = _mm512_set1_epi32(static_cast<int>(match));
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i vidx = _mm512_loadu_si512(idx + i);
    const __m512i vals = _mm512_i32gather_epi32(vidx, table, 4);
    if (_mm512_cmpeq_epi32_mask(vals, needle) != 0) return true;
  }
  if (i < n) {
    const __mmask16 tail = static_cast<__mmask16>((1u << (n - i)) - 1);
    const __m512i vidx = _mm512_maskz_loadu_epi32(tail, idx + i);
    const __m512i vals =
        _mm512_mask_i32gather_epi32(needle, tail, vidx, table, 4);
    // Masked-off lanes gathered nothing and default to `needle`, so
    // restrict the compare to the live lanes.
    if (_mm512_mask_cmpeq_epi32_mask(tail, vals, needle) != 0) return true;
  }
  return false;
}

__attribute__((target("avx512f"))) void scatter_u32_avx512(
    std::uint32_t* table, const std::uint32_t* idx, std::size_t n,
    std::uint32_t value) noexcept {
  const __m512i vval = _mm512_set1_epi32(static_cast<int>(value));
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i vidx = _mm512_loadu_si512(idx + i);
    _mm512_i32scatter_epi32(table, vidx, vval, 4);
  }
  if (i < n) {
    const __mmask16 tail = static_cast<__mmask16>((1u << (n - i)) - 1);
    const __m512i vidx = _mm512_maskz_loadu_epi32(tail, idx + i);
    _mm512_mask_i32scatter_epi32(table, tail, vidx, vval, 4);
  }
}

// Welford: the element recurrence is div/sub/mul/add in the exact scalar
// order; min/max via minpd/maxpd (no NaNs or signed zeros here — inputs
// are small non-negative integers widened to double).
__attribute__((target("avx2"))) void welford_step_u32_avx2(
    double* mean, double* m2, double* mn, double* mx,
    const std::uint32_t* x, std::size_t n, double count) noexcept {
  const __m256d vcount = _mm256_set1_pd(count);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i xi = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(x + i));
    const __m256d v = _mm256_cvtepi32_pd(xi);  // x < 2^31 precondition
    __m256d m = _mm256_loadu_pd(mean + i);
    const __m256d delta = _mm256_sub_pd(v, m);
    m = _mm256_add_pd(m, _mm256_div_pd(delta, vcount));
    const __m256d q = _mm256_loadu_pd(m2 + i);
    _mm256_storeu_pd(
        m2 + i, _mm256_add_pd(q, _mm256_mul_pd(delta, _mm256_sub_pd(v, m))));
    _mm256_storeu_pd(mean + i, m);
    _mm256_storeu_pd(mn + i, _mm256_min_pd(_mm256_loadu_pd(mn + i), v));
    _mm256_storeu_pd(mx + i, _mm256_max_pd(_mm256_loadu_pd(mx + i), v));
  }
  welford_step_u32_scalar(mean + i, m2 + i, mn + i, mx + i, x + i, n - i,
                          count);
}

__attribute__((target("avx512f"))) void welford_step_u32_avx512(
    double* mean, double* m2, double* mn, double* mx,
    const std::uint32_t* x, std::size_t n, double count) noexcept {
  const __m512d vcount = _mm512_set1_pd(count);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i xi = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(x + i));
    const __m512d v = _mm512_cvtepu32_pd(xi);
    __m512d m = _mm512_loadu_pd(mean + i);
    const __m512d delta = _mm512_sub_pd(v, m);
    m = _mm512_add_pd(m, _mm512_div_pd(delta, vcount));
    const __m512d q = _mm512_loadu_pd(m2 + i);
    _mm512_storeu_pd(
        m2 + i, _mm512_add_pd(q, _mm512_mul_pd(delta, _mm512_sub_pd(v, m))));
    _mm512_storeu_pd(mean + i, m);
    _mm512_storeu_pd(mn + i, _mm512_min_pd(_mm512_loadu_pd(mn + i), v));
    _mm512_storeu_pd(mx + i, _mm512_max_pd(_mm512_loadu_pd(mx + i), v));
  }
  welford_step_u32_scalar(mean + i, m2 + i, mn + i, mx + i, x + i, n - i,
                          count);
}

#endif  // OPTIPAR_SIMD_X86

// ---------------------------------------------------------------------------
// NEON bodies (aarch64; NEON is architecturally guaranteed there).
// ---------------------------------------------------------------------------

#if defined(OPTIPAR_SIMD_NEON)

std::size_t count_equal_u8_neon(const std::uint8_t* data, std::size_t n,
                                std::uint8_t value) noexcept {
  const uint8x16_t needle = vdupq_n_u8(value);
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    // cmpeq lanes are 0xFF; shift to 0x01 and horizontally add.
    const uint8x16_t eq = vceqq_u8(vld1q_u8(data + i), needle);
    count += vaddvq_u8(vshrq_n_u8(eq, 7));
  }
  return count + count_equal_u8_scalar(data + i, n - i, value);
}

void welford_step_u32_neon(double* mean, double* m2, double* mn, double* mx,
                           const std::uint32_t* x, std::size_t n,
                           double count) noexcept {
  const float64x2_t vcount = vdupq_n_f64(count);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t v =
        vcvtq_f64_u64(vmovl_u32(vld1_u32(x + i)));
    float64x2_t m = vld1q_f64(mean + i);
    const float64x2_t delta = vsubq_f64(v, m);
    m = vaddq_f64(m, vdivq_f64(delta, vcount));
    const float64x2_t q = vld1q_f64(m2 + i);
    vst1q_f64(m2 + i, vaddq_f64(q, vmulq_f64(delta, vsubq_f64(v, m))));
    vst1q_f64(mean + i, m);
    vst1q_f64(mn + i, vminq_f64(vld1q_f64(mn + i), v));
    vst1q_f64(mx + i, vmaxq_f64(vld1q_f64(mx + i), v));
  }
  welford_step_u32_scalar(mean + i, m2 + i, mn + i, mx + i, x + i, n - i,
                          count);
}

#endif  // OPTIPAR_SIMD_NEON

Isa detect_isa() noexcept {
#if defined(OPTIPAR_SIMD_X86)
  __builtin_cpu_init();
  Isa best = Isa::kScalar;
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("popcnt")) {
    best = Isa::kAvx2;
  }
  if (best == Isa::kAvx2 && __builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512bw")) {
    best = Isa::kAvx512;
  }
  return best;
#elif defined(OPTIPAR_SIMD_NEON)
  return Isa::kNeon;
#else
  return Isa::kScalar;
#endif
}

bool host_supports(Isa isa) noexcept {
  if (isa == Isa::kScalar) return true;
  const Isa best = detect_isa();
  if (isa == best) return true;
  // AVX-512 hosts also run the AVX2 bodies.
  return isa == Isa::kAvx2 && best == Isa::kAvx512;
}

Isa resolve_active() noexcept {
  Isa isa = detect_isa();
  if (const char* env = std::getenv("OPTIPAR_SIMD")) {
    const auto want = [env](const char* name) {
      return std::strcmp(env, name) == 0;
    };
    if (want("scalar")) {
      isa = Isa::kScalar;
    } else if (want("avx2") && host_supports(Isa::kAvx2)) {
      isa = Isa::kAvx2;
    } else if (want("avx512") && host_supports(Isa::kAvx512)) {
      isa = Isa::kAvx512;
    } else if (want("neon") && host_supports(Isa::kNeon)) {
      isa = Isa::kNeon;
    }
  }
  return isa;
}

}  // namespace

const char* isa_name(Isa isa) noexcept {
  switch (isa) {
    case Isa::kScalar: return "scalar";
    case Isa::kAvx2: return "avx2";
    case Isa::kAvx512: return "avx512";
    case Isa::kNeon: return "neon";
  }
  return "unknown";
}

Isa active_isa() noexcept {
  static const Isa cached = resolve_active();
  return cached;
}

std::vector<Isa> available_isas() {
  std::vector<Isa> out{Isa::kScalar};
  for (const Isa isa : {Isa::kAvx2, Isa::kAvx512, Isa::kNeon}) {
    if (host_supports(isa)) out.push_back(isa);
  }
  return out;
}

std::size_t lane_width_u32(Isa isa) noexcept {
  switch (isa) {
    case Isa::kScalar: return 1;
    case Isa::kAvx2: return 8;
    case Isa::kAvx512: return 16;
    case Isa::kNeon: return 4;
  }
  return 1;
}

std::size_t count_equal_u8(const std::uint8_t* data, std::size_t n,
                           std::uint8_t value, Isa isa) noexcept {
#if defined(OPTIPAR_SIMD_X86)
  if (isa == Isa::kAvx512) return count_equal_u8_avx512(data, n, value);
  if (isa == Isa::kAvx2) return count_equal_u8_avx2(data, n, value);
#elif defined(OPTIPAR_SIMD_NEON)
  if (isa == Isa::kNeon) return count_equal_u8_neon(data, n, value);
#endif
  (void)isa;
  return count_equal_u8_scalar(data, n, value);
}

bool any_equal_gather_u32(const std::uint32_t* table,
                          const std::uint32_t* idx, std::size_t n,
                          std::uint32_t match, Isa isa) noexcept {
#if defined(OPTIPAR_SIMD_X86)
  if (isa == Isa::kAvx512) {
    return any_equal_gather_u32_avx512(table, idx, n, match);
  }
  if (isa == Isa::kAvx2) {
    return any_equal_gather_u32_avx2(table, idx, n, match);
  }
#endif
  (void)isa;
  return any_equal_gather_u32_scalar(table, idx, n, match);
}

void scatter_u32(std::uint32_t* table, const std::uint32_t* idx,
                 std::size_t n, std::uint32_t value, Isa isa) noexcept {
#if defined(OPTIPAR_SIMD_X86)
  if (isa == Isa::kAvx512) {
    scatter_u32_avx512(table, idx, n, value);
    return;
  }
#endif
  (void)isa;  // AVX2/NEON have no scatter; the scalar loop is the path
  scatter_u32_scalar(table, idx, n, value);
}

void welford_step_u32(double* mean, double* m2, double* mn, double* mx,
                      const std::uint32_t* x, std::size_t n, double count,
                      Isa isa) noexcept {
#if defined(OPTIPAR_SIMD_X86)
  if (isa == Isa::kAvx512) {
    welford_step_u32_avx512(mean, m2, mn, mx, x, n, count);
    return;
  }
  if (isa == Isa::kAvx2) {
    welford_step_u32_avx2(mean, m2, mn, mx, x, n, count);
    return;
  }
#elif defined(OPTIPAR_SIMD_NEON)
  if (isa == Isa::kNeon) {
    welford_step_u32_neon(mean, m2, mn, mx, x, n, count);
    return;
  }
#endif
  (void)isa;
  welford_step_u32_scalar(mean, m2, mn, mx, x, n, count);
}

}  // namespace optipar::simd
