// Experiment output: a Table collects named columns row by row, prints an
// aligned console rendering (what the bench binaries emit), and can persist
// itself as CSV so figures can be re-plotted externally.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace optipar {

class Table {
 public:
  using Cell = std::variant<std::string, double, std::int64_t>;

  explicit Table(std::vector<std::string> columns);

  [[nodiscard]] const std::vector<std::string>& columns() const noexcept {
    return columns_;
  }
  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::vector<Cell>& row(std::size_t i) const {
    return rows_.at(i);
  }

  /// Append a row; cell count must match the column count.
  void add_row(std::vector<Cell> cells);

  /// Aligned fixed-width rendering for terminal output.
  void print(std::ostream& os) const;

  /// RFC-4180-ish CSV (quotes cells containing commas/quotes/newlines).
  void write_csv(const std::string& path) const;

  [[nodiscard]] static std::string format_cell(const Cell& cell,
                                               int precision = 6);

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace optipar
