// Host CPU topology queries for the runtime's processor-allocation
// decisions. The round executor caps its lane count at the host's
// effective concurrency: on the paper's model an extra "processor" only
// ever adds conflict surface, and on a machine with fewer cores than pool
// workers it additionally buys a context-switch-ridden barrier — so
// oversubscribed lanes are pure loss (DESIGN.md §12).
#pragma once

#include <cstddef>
#include <cstdlib>
#include <thread>

namespace optipar {

/// Number of lanes that can actually run concurrently on this host
/// (>= 1). Overridable with OPTIPAR_EFFECTIVE_CPUS for experiments that
/// model a smaller machine; the value is resolved once per process.
inline std::size_t effective_concurrency() noexcept {
  static const std::size_t cached = [] {
    if (const char* env = std::getenv("OPTIPAR_EFFECTIVE_CPUS")) {
      const long v = std::atol(env);
      if (v > 0) return static_cast<std::size_t>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return static_cast<std::size_t>(hw == 0 ? 1 : hw);
  }();
  return cached;
}

}  // namespace optipar
