// Cache-line isolation helpers. Per-thread counters in the speculative
// runtime are padded to a destructive-interference boundary so that abort /
// commit accounting never false-shares (Core Guidelines Per.19: access
// memory predictably).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>

namespace optipar {

// A fixed 64-byte line rather than std::hardware_destructive_interference_
// size: the constant participates in the library ABI and the standard value
// varies with -mtune (GCC warns about exactly this use).
inline constexpr std::size_t kCacheLine = 64;

/// A T padded out to its own cache line. T must be trivially destructible
/// for the common counter use; any T works.
template <typename T>
struct alignas(kCacheLine) Padded {
  T value{};
  char pad[kCacheLine > sizeof(T) ? kCacheLine - sizeof(T) : 1];
};

/// Relaxed-increment counter on its own cache line.
struct alignas(kCacheLine) PaddedCounter {
  std::atomic<std::uint64_t> value{0};

  void bump(std::uint64_t by = 1) noexcept {
    value.fetch_add(by, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t load() const noexcept {
    return value.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value.store(0, std::memory_order_relaxed); }
};

}  // namespace optipar
