// Monotonic wall-clock timing for benches and the runtime's round loop,
// plus the accumulator/RAII pair the telemetry layer (DESIGN.md §10) feeds
// per-phase time breakdowns through. A ScopedTimer constructed over a null
// accumulator performs no clock read at all — that is the disabled-path
// guarantee every instrumentation site relies on.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace optipar {

class Timer {
 public:
  Timer() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }
  [[nodiscard]] double micros() const noexcept { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Monotonic nanoseconds since an arbitrary epoch — the raw unit the
/// per-lane phase accumulators store (one subtraction per measured span,
/// no duration<double> conversion on the hot path).
[[nodiscard]] inline std::uint64_t monotonic_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Raw cycle-counter read for the executor's per-chunk phase clocks —
/// several times cheaper than monotonic_ns() on x86 (no vDSO call, no
/// conversion). Values are opaque ticks: accumulate deltas and convert the
/// running total with phase_ticks_to_ns() on a cold path. Falls back to
/// monotonic_ns() where no invariant cycle counter is available, so the
/// tick unit is then already nanoseconds.
[[nodiscard]] inline std::uint64_t phase_ticks() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#else
  return monotonic_ns();
#endif
}

/// Nanoseconds per phase_ticks() tick, calibrated once per process against
/// monotonic_ns() (~100us spin on first use — call it from a cold path,
/// e.g. when attaching a telemetry sink, so the first timed chunk does not
/// pay for it).
[[nodiscard]] inline double phase_ns_per_tick() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  static const double ns_per_tick = [] {
    const std::uint64_t ns0 = monotonic_ns();
    const std::uint64_t t0 = __rdtsc();
    std::uint64_t ns1 = ns0;
    while (ns1 - ns0 < 100'000) ns1 = monotonic_ns();
    const std::uint64_t t1 = __rdtsc();
    return t1 > t0 ? static_cast<double>(ns1 - ns0) /
                         static_cast<double>(t1 - t0)
                   : 1.0;
  }();
  return ns_per_tick;
#else
  return 1.0;
#endif
}

/// Convert an accumulated phase_ticks() delta to nanoseconds.
[[nodiscard]] inline std::uint64_t phase_ticks_to_ns(
    std::uint64_t ticks) noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return static_cast<std::uint64_t>(static_cast<double>(ticks) *
                                    phase_ns_per_tick());
#else
  return ticks;
#endif
}

/// A named span's running total: nanoseconds and number of recorded spans.
/// Thread-safe (relaxed atomics — totals are read only at export time, when
/// all writers have quiesced or exactness does not matter).
class TimerAccumulator {
 public:
  void add(std::uint64_t ns, std::uint64_t spans = 1) noexcept {
    ns_.fetch_add(ns, std::memory_order_relaxed);
    count_.fetch_add(spans, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t total_ns() const noexcept {
    return ns_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double total_seconds() const noexcept {
    return static_cast<double>(total_ns()) * 1e-9;
  }

  void reset() noexcept {
    ns_.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> ns_{0};
  std::atomic<std::uint64_t> count_{0};
};

/// RAII span feeding a TimerAccumulator on destruction. Pass nullptr to
/// disable: no clock is read and the destructor is a single branch, so an
/// instrumentation site costs nothing when telemetry is off.
class ScopedTimer {
 public:
  explicit ScopedTimer(TimerAccumulator* acc) noexcept
      : acc_(acc), start_(acc ? monotonic_ns() : 0) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() { stop(); }

  /// Record the span now instead of at scope exit (idempotent).
  void stop() noexcept {
    if (acc_ == nullptr) return;
    acc_->add(monotonic_ns() - start_);
    acc_ = nullptr;
  }

 private:
  TimerAccumulator* acc_;
  std::uint64_t start_;
};

}  // namespace optipar
