// Monotonic wall-clock timing for benches and the runtime's round loop.
#pragma once

#include <chrono>

namespace optipar {

class Timer {
 public:
  Timer() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }
  [[nodiscard]] double micros() const noexcept { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace optipar
