// Failure-handling tunables for the speculative runtime (DESIGN.md §8).
// The paper treats task aborts (conflict ratio r̄(m)) as the routine,
// *benign* failure mode; FailurePolicy governs everything beyond it: user
// operators that throw real exceptions, rollback inverses that fail, and
// lanes of the fork-join pool that die mid-round. Installing a policy on a
// SpeculativeExecutor switches it from the legacy behavior (rethrow the
// first operator error at round end) to retry/quarantine semantics: a
// faulted task is relaunched up to max_retries times with decorrelated-
// jitter backoff (measured in rounds — the executor's only clock), then
// moved to a dead-letter list so the round keeps committing.
#pragma once

#include <cstddef>
#include <cstdint>

namespace optipar {

struct FailurePolicy {
  /// Relaunch attempts for a task whose operator (or rollback) threw a
  /// non-AbortIteration exception, before it is quarantined. The first
  /// execution is attempt 1, so a task runs at most 1 + max_retries times.
  std::uint32_t max_retries = 3;

  /// Decorrelated-jitter backoff, measured in rounds: attempt k waits a
  /// uniform number of rounds in [base, min(cap, base * 3^(k-1))] before
  /// it becomes drawable again. Rounds are the executor's logical clock,
  /// so backoff is deterministic and replayable under a fixed fault seed.
  std::uint32_t backoff_base_rounds = 1;
  std::uint32_t backoff_cap_rounds = 16;

  /// Dead letters tolerated before the executor degrades to the
  /// single-lane serial path for the rest of the run (graceful
  /// degradation; SIZE_MAX = never degrade for this reason).
  std::size_t quarantine_budget = static_cast<std::size_t>(-1);

  /// Rounds in which a pool lane failed (an exception escaped the lane
  /// body itself, not a task operator) tolerated before degrading to the
  /// serial path.
  std::uint32_t max_pool_failures = 2;

  /// Legacy escape hatch: rethrow the first operator error at round end
  /// (pre-policy behavior) instead of retry/quarantine. Rollback errors
  /// and pool-lane errors are still salvaged first.
  bool rethrow_operator_errors = false;
};

}  // namespace optipar
