#include "support/csv.hpp"

#include <cmath>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace optipar {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  if (columns_.empty()) throw std::invalid_argument("Table: no columns");
}

void Table::add_row(std::vector<Cell> cells) {
  if (cells.size() != columns_.size()) {
    throw std::invalid_argument("Table::add_row: cell/column count mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::format_cell(const Cell& cell, int precision) {
  if (const auto* s = std::get_if<std::string>(&cell)) return *s;
  if (const auto* i = std::get_if<std::int64_t>(&cell)) {
    return std::to_string(*i);
  }
  const double d = std::get<double>(cell);
  std::ostringstream os;
  if (std::isfinite(d) && std::abs(d) < 1e15) {
    os << std::fixed << std::setprecision(precision) << d;
    std::string s = os.str();
    // Trim trailing zeros (and a bare trailing dot) for compact tables.
    if (s.find('.') != std::string::npos) {
      while (!s.empty() && s.back() == '0') s.pop_back();
      if (!s.empty() && s.back() == '.') s.pop_back();
    }
    return s;
  }
  os << std::setprecision(precision) << d;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(format_cell(row[c], 4));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    rendered.push_back(std::move(cells));
  }
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::setw(static_cast<int>(widths[c]) + 2) << cells[c];
    }
    os << '\n';
  };
  line(columns_);
  for (const auto& row : rendered) line(row);
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Table::write_csv: cannot open " + path);
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    out << (c ? "," : "") << csv_escape(columns_[c]);
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c ? "," : "") << csv_escape(format_cell(row[c], 10));
    }
    out << '\n';
  }
}

}  // namespace optipar
