// Minimal command-line option parsing for the bench / example binaries:
// `--key=value` and `--flag` forms, with typed accessors and defaults. No
// external dependency, deliberately tiny.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace optipar {

class Options {
 public:
  Options(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  /// Arguments that were not --options, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

 private:
  std::map<std::string, std::string> kv_;
  std::vector<std::string> positional_;
};

}  // namespace optipar
