// Portable SIMD shim for the model/runtime hot loops (DESIGN.md §12).
//
// Design rules:
//  * Runtime dispatch, not compile-time: the library is built with the
//    baseline ISA only, and every vector body carries a function-level
//    target attribute — so one Release binary gets the AVX2/AVX-512 fast
//    path where the host has it and the scalar path everywhere else.
//  * Every kernel has a forced-ISA entry point. Hot loops hoist
//    `active_isa()` out of the loop and call the forced variant; the
//    differential tests sweep `available_isas()` and require bit-identical
//    results against the scalar reference on random inputs.
//  * Float kernels must be BIT-identical to their scalar loop, not merely
//    close: the estimator's statistics feed golden-value tests and
//    checkpoint byte-identity. The repo compiles with -ffp-contract=off
//    (strict C++20, no extensions), so the Welford kernel below uses the
//    same div/sub/mul/add sequence per element as StreamingStats::add and
//    no FMA — vector and scalar round identically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace optipar::simd {

enum class Isa : std::uint8_t { kScalar = 0, kAvx2 = 1, kAvx512 = 2,
                                kNeon = 3 };

[[nodiscard]] const char* isa_name(Isa isa) noexcept;

/// Best ISA this host supports, resolved once per process. Overridable
/// with OPTIPAR_SIMD=scalar|avx2|avx512|neon (clamped to what the host
/// actually has).
[[nodiscard]] Isa active_isa() noexcept;

/// Every ISA usable on this host, scalar first — the differential tests
/// sweep this list.
[[nodiscard]] std::vector<Isa> available_isas();

/// u32 elements per vector op (1 for scalar) — tests use it to build
/// inputs that exercise full blocks plus every remainder length.
[[nodiscard]] std::size_t lane_width_u32(Isa isa) noexcept;

/// Number of elements of `data[0..n)` equal to `value`.
[[nodiscard]] std::size_t count_equal_u8(const std::uint8_t* data,
                                         std::size_t n, std::uint8_t value,
                                         Isa isa) noexcept;

/// True iff table[idx[i]] == match for any i in [0, n). Gather-based on
/// AVX2/AVX-512. Every idx[i] must be a valid index into `table`.
[[nodiscard]] bool any_equal_gather_u32(const std::uint32_t* table,
                                        const std::uint32_t* idx,
                                        std::size_t n, std::uint32_t match,
                                        Isa isa) noexcept;

/// table[idx[i]] = value for every i in [0, n). Duplicate indices are
/// fine (the stored value is uniform). Vectorized (vpscatterdd) only on
/// AVX-512 — AVX2/NEON have no scatter and fall back to the scalar loop.
void scatter_u32(std::uint32_t* table, const std::uint32_t* idx,
                 std::size_t n, std::uint32_t value, Isa isa) noexcept;

/// One Welford update across n INDEPENDENT accumulators sharing a sample
/// count: for each i, fold sample x[i] into (mean[i], m2[i], mn[i],
/// mx[i]) exactly as StreamingStats::add does, with `count` = the number
/// of samples INCLUDING this one. x values must be < 2^31 (they are
/// abort counts, bounded by the node count). Bit-identical to the scalar
/// recurrence — see the header comment.
void welford_step_u32(double* mean, double* m2, double* mn, double* mx,
                      const std::uint32_t* x, std::size_t n, double count,
                      Isa isa) noexcept;

// Convenience overloads on the host's active ISA.
[[nodiscard]] inline std::size_t count_equal_u8(const std::uint8_t* data,
                                                std::size_t n,
                                                std::uint8_t value) noexcept {
  return count_equal_u8(data, n, value, active_isa());
}
[[nodiscard]] inline bool any_equal_gather_u32(const std::uint32_t* table,
                                               const std::uint32_t* idx,
                                               std::size_t n,
                                               std::uint32_t match) noexcept {
  return any_equal_gather_u32(table, idx, n, match, active_isa());
}
inline void scatter_u32(std::uint32_t* table, const std::uint32_t* idx,
                        std::size_t n, std::uint32_t value) noexcept {
  scatter_u32(table, idx, n, value, active_isa());
}
inline void welford_step_u32(double* mean, double* m2, double* mn,
                             double* mx, const std::uint32_t* x,
                             std::size_t n, double count) noexcept {
  welford_step_u32(mean, m2, mn, mx, x, n, count, active_isa());
}

}  // namespace optipar::simd
