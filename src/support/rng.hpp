// Deterministic, seedable random-number generation for reproducible
// experiments. Every stochastic component in optipar draws from an Rng that
// is explicitly seeded by the caller; nothing reads global entropy, so every
// figure and test in the repository replays bit-identically.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <numeric>
#include <span>
#include <vector>

namespace optipar {

/// SplitMix64: used to expand a single 64-bit seed into a full generator
/// state. Passes BigCrush when used directly; here it is the seeding PRF.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — fast, high-quality 64-bit generator (Blackman & Vigna).
/// Satisfies the UniformRandomBitGenerator concept so it can be used with
/// <random> distributions, but the convenience members below avoid the
/// libstdc++ distribution objects for speed and cross-platform determinism.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x0971ca9ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Lemire's nearly-divisionless method.
  std::uint64_t below(std::uint64_t bound) noexcept {
    using u128 = unsigned __int128;
    std::uint64_t x = (*this)();
    u128 m = static_cast<u128>(x) * static_cast<u128>(bound);
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<u128>(x) * static_cast<u128>(bound);
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the closed range [lo, hi].
  std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Raw generator state, for checkpoint/restore (support/snapshot): the
  /// four words fully determine every future draw, so saving and restoring
  /// them resumes the stream byte-identically.
  [[nodiscard]] std::array<std::uint64_t, 4> state() const noexcept {
    return state_;
  }
  void set_state(const std::array<std::uint64_t, 4>& s) noexcept {
    state_ = s;
  }

  /// Derive an independent child generator. Use one split per PURPOSE
  /// (generation vs measurement vs execution): feeding the same raw stream
  /// to two consumers can correlate them catastrophically — e.g. sampling
  /// node pairs with the stream that generated the graph's edges replays
  /// the edge list, making every sampled pair a conflict.
  Rng split() noexcept { return Rng((*this)() ^ 0x5851f42d4c957f2dULL); }

  /// Fisher–Yates shuffle of a span, using this generator.
  template <typename T>
  void shuffle(std::span<T> xs) noexcept {
    for (std::size_t i = xs.size(); i > 1; --i) {
      const std::size_t j = below(i);
      std::swap(xs[i - 1], xs[j]);
    }
  }

  /// A uniformly random permutation of {0, 1, ..., n-1}.
  std::vector<std::uint32_t> permutation(std::uint32_t n) {
    std::vector<std::uint32_t> p;
    permutation_into(n, p);
    return p;
  }

  /// Scratch-reusing permutation: same draw stream as permutation(), but
  /// `out`'s capacity is reused across calls (Monte-Carlo loops).
  void permutation_into(std::uint32_t n, std::vector<std::uint32_t>& out) {
    out.resize(n);
    std::iota(out.begin(), out.end(), 0u);
    shuffle(std::span<std::uint32_t>(out));
  }

  /// Reusable state for sample_without_replacement_into. The epoch stamp
  /// replaces the per-call O(n) bitmap of the sparse branch with an O(1)
  /// reset; the dense branch reuses the index vector's storage.
  struct SampleScratch {
    std::vector<std::uint32_t> idx;    // dense branch work array
    std::vector<std::uint32_t> stamp;  // sparse branch "taken" epochs
    std::uint32_t epoch = 0;
  };

  /// Sample k distinct values uniformly from {0, ..., n-1}. Uses a partial
  /// Fisher–Yates over an index vector when k is a large fraction of n and
  /// rejection sampling otherwise; result order is random in both cases.
  std::vector<std::uint32_t> sample_without_replacement(std::uint32_t n,
                                                        std::uint32_t k);

  /// Scratch-reusing variant with the IDENTICAL draw stream (same branch
  /// choice, same below() call sequence, same accept/reject decisions) —
  /// results match sample_without_replacement exactly.
  void sample_without_replacement_into(std::uint32_t n, std::uint32_t k,
                                       SampleScratch& scratch,
                                       std::vector<std::uint32_t>& out);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

inline std::vector<std::uint32_t> Rng::sample_without_replacement(
    std::uint32_t n, std::uint32_t k) {
  SampleScratch scratch;
  std::vector<std::uint32_t> out;
  sample_without_replacement_into(n, k, scratch, out);
  return out;
}

inline void Rng::sample_without_replacement_into(
    std::uint32_t n, std::uint32_t k, SampleScratch& scratch,
    std::vector<std::uint32_t>& out) {
  if (k > n) k = n;
  out.clear();
  out.reserve(k);
  if (k * 3 >= n) {  // dense: partial Fisher–Yates
    auto& idx = scratch.idx;
    idx.resize(n);
    std::iota(idx.begin(), idx.end(), 0u);
    for (std::uint32_t i = 0; i < k; ++i) {
      const std::size_t j = i + below(n - i);
      std::swap(idx[i], idx[j]);
      out.push_back(idx[i]);
    }
  } else {  // sparse: rejection against an epoch-stamped "taken" array
    auto& stamp = scratch.stamp;
    if (stamp.size() < n) stamp.resize(n, 0);
    if (++scratch.epoch == 0) {  // wraparound: wipe stale stamps
      std::fill(stamp.begin(), stamp.end(), 0u);
      scratch.epoch = 1;
    }
    while (out.size() < k) {
      const auto v = static_cast<std::uint32_t>(below(n));
      if (stamp[v] != scratch.epoch) {
        stamp[v] = scratch.epoch;
        out.push_back(v);
      }
    }
  }
}

}  // namespace optipar
