// Sense-reversing centralized barrier for the round-synchronous speculative
// executor. Spins briefly then yields, which behaves well both on real
// multicore hosts and on oversubscribed single-core CI machines.
#pragma once

#include <atomic>
#include <cstddef>
#include <thread>

namespace optipar {

class SpinBarrier {
 public:
  explicit SpinBarrier(std::size_t parties) noexcept
      : parties_(parties), arrived_(0), sense_(false) {}

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  /// Block until all parties have arrived. Reusable across rounds.
  void arrive_and_wait() noexcept {
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      arrived_.store(0, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
    } else {
      int spins = 0;
      while (sense_.load(std::memory_order_acquire) != my_sense) {
        if (++spins > 1024) {
          std::this_thread::yield();
          spins = 0;
        }
      }
    }
  }

 private:
  const std::size_t parties_;
  std::atomic<std::size_t> arrived_;
  std::atomic<bool> sense_;
};

}  // namespace optipar
