#include "support/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>

namespace optipar {

namespace {

// Which pool (if any) owns the current thread, and whether the thread is
// already inside a fork-join region (as dispatcher or lane). Both gate the
// serial-inline fallback for nested fork-join calls.
thread_local const ThreadPool* tl_worker_pool = nullptr;
thread_local int tl_fork_depth = 0;

struct ForkDepthGuard {
  ForkDepthGuard() noexcept { ++tl_fork_depth; }
  ~ForkDepthGuard() noexcept { --tl_fork_depth; }
};

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(wake_mutex_);
    stopping_ = true;
  }
  wake_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::in_worker_context() const noexcept {
  return tl_worker_pool == this || tl_fork_depth > 0;
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    const std::lock_guard lock(wake_mutex_);
    if (stopping_) {
      throw std::runtime_error("ThreadPool::submit after shutdown");
    }
    tasks_.push(std::move(packaged));
  }
  wake_cv_.notify_one();
  return future;
}

void ThreadPool::record_error() noexcept {
  lane_errors_.fetch_add(1, std::memory_order_relaxed);
  const std::lock_guard lock(error_mutex_);
  if (!job_error_) job_error_ = std::current_exception();
}

void ThreadPool::worker_loop(std::size_t id) {
  tl_worker_pool = this;
  std::uint64_t seen_epoch = 0;
  for (;;) {
    // 1) A fork-join job published since we last looked? The acquire load
    //    pairs with the dispatcher's release bump and publishes job_fn_ /
    //    job_worker_lanes_. A worker can observe at most one outstanding
    //    job: the next dispatch cannot start until this one fully joins.
    const std::uint64_t epoch = job_epoch_.load(std::memory_order_acquire);
    if (epoch != seen_epoch) {
      seen_epoch = epoch;
      if (id < job_worker_lanes_) {
        {
          const ForkDepthGuard nested;
          try {
            (*job_fn_)(id + 1);
          } catch (...) {
            record_error();
          }
        }
        if (job_remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          // Last lane out: wake the dispatcher. Taking the mutex (empty
          // critical section) closes the race with a dispatcher that is
          // between its predicate check and its wait.
          { const std::lock_guard lock(wake_mutex_); }
          done_cv_.notify_all();
        }
      }
      continue;
    }
    // 2) A queued one-off task?
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(wake_mutex_);
      wake_cv_.wait(lock, [&] {
        return stopping_ || !tasks_.empty() ||
               job_epoch_.load(std::memory_order_relaxed) != seen_epoch;
      });
      if (job_epoch_.load(std::memory_order_relaxed) != seen_epoch) {
        continue;  // re-read with acquire at the top of the loop
      }
      if (!tasks_.empty()) {
        task = std::move(tasks_.front());
        tasks_.pop();
      } else {
        return;  // stopping and drained
      }
    }
    task();
  }
}

void ThreadPool::fork_join(std::size_t participants, const WorkFnRef& fn) {
  if (participants == 0) return;
  if (participants == 1 || in_worker_context()) {
    // Single lane, or nested inside a worker/fork-join region: the resident
    // workers are either unnecessary or already occupied, so run every lane
    // inline. Exception semantics match the concurrent path: the first
    // throwing lane stops, later lanes still run, first error is rethrown.
    std::exception_ptr error;
    for (std::size_t lane = 0; lane < participants; ++lane) {
      try {
        fn(lane);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    if (error) std::rethrow_exception(error);
    return;
  }

  const std::lock_guard fork_lock(fork_mutex_);
  const ForkDepthGuard nested;
  job_error_ = nullptr;
  const std::size_t worker_lanes = participants - 1;  // caller is lane 0
  job_remaining_.store(worker_lanes, std::memory_order_relaxed);
  {
    const std::lock_guard lock(wake_mutex_);
    job_fn_ = &fn;
    job_worker_lanes_ = worker_lanes;
    job_epoch_.fetch_add(1, std::memory_order_release);
  }
  wake_cv_.notify_all();

  try {
    fn(0);
  } catch (...) {
    record_error();
  }

  // Join: spin briefly (rounds are short), then block on done_cv_.
  int spins = 0;
  while (job_remaining_.load(std::memory_order_acquire) != 0) {
    if (++spins > 1024) {
      std::unique_lock lock(wake_mutex_);
      done_cv_.wait(lock, [&] {
        return job_remaining_.load(std::memory_order_acquire) == 0;
      });
      break;
    }
    std::this_thread::yield();
  }

  if (job_error_) {
    std::exception_ptr error = job_error_;
    job_error_ = nullptr;
    std::rethrow_exception(error);
  }
}

void ThreadPool::parallel_for(std::size_t n, WorkFnRef fn, std::size_t grain) {
  if (n == 0) return;
  grain = std::max<std::size_t>(1, grain);
  const std::size_t blocks = (n + grain - 1) / grain;
  const std::size_t participants =
      std::max<std::size_t>(1, std::min(workers_.size(), blocks));

  std::atomic<std::size_t> cursor{0};
  const auto body = [&](std::size_t) {
    for (;;) {
      const std::size_t begin =
          cursor.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= n) return;
      const std::size_t end = std::min(n, begin + grain);
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }
  };
  fork_join(participants, WorkFnRef(body));
}

void ThreadPool::run_on_workers(std::size_t k, WorkFnRef fn) {
  k = std::min(k, workers_.size() + 1);  // caller participates as lane 0
  fork_join(k, fn);
}

}  // namespace optipar
