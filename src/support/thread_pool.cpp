#include "support/thread_pool.hpp"

#include <atomic>
#include <algorithm>
#include <stdexcept>

namespace optipar {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(queue_.mutex);
    queue_.stopping = true;
  }
  queue_.cv.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    const std::lock_guard lock(queue_.mutex);
    if (queue_.stopping) {
      throw std::runtime_error("ThreadPool::submit after shutdown");
    }
    queue_.tasks.push(std::move(packaged));
  }
  queue_.cv.notify_one();
  return future;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(queue_.mutex);
      queue_.cv.wait(lock,
                     [this] { return queue_.stopping || !queue_.tasks.empty(); });
      if (queue_.tasks.empty()) return;  // stopping and drained
      task = std::move(queue_.tasks.front());
      queue_.tasks.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  if (n == 0) return;
  grain = std::max<std::size_t>(1, grain);
  auto cursor = std::make_shared<std::atomic<std::size_t>>(0);
  const std::size_t lanes = std::min(workers_.size(), (n + grain - 1) / grain);

  auto body = [cursor, n, grain, &fn] {
    for (;;) {
      const std::size_t begin =
          cursor->fetch_add(grain, std::memory_order_relaxed);
      if (begin >= n) return;
      const std::size_t end = std::min(n, begin + grain);
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }
  };

  std::vector<std::future<void>> helpers;
  helpers.reserve(lanes > 0 ? lanes - 1 : 0);
  for (std::size_t l = 1; l < lanes; ++l) helpers.push_back(submit(body));
  // The caller is a lane too, so a 1-thread pool still makes progress. If
  // fn throws, every other lane is still drained before the first
  // exception is rethrown — the captured state stays alive until all
  // lanes have stopped touching it.
  std::exception_ptr error;
  try {
    body();
  } catch (...) {
    error = std::current_exception();
  }
  for (auto& h : helpers) {
    try {
      h.get();
    } catch (...) {
      if (!error) error = std::current_exception();
    }
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::run_on_workers(std::size_t k,
                                const std::function<void(std::size_t)>& fn) {
  k = std::min(k, workers_.size() + 1);  // caller participates as lane 0
  if (k == 0) return;
  std::vector<std::future<void>> helpers;
  helpers.reserve(k - 1);
  for (std::size_t i = 1; i < k; ++i) {
    helpers.push_back(submit([&fn, i] { fn(i); }));
  }
  fn(0);
  for (auto& h : helpers) h.get();
}

}  // namespace optipar
