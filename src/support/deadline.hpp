// Wall-clock deadline for a unit of work (DESIGN.md §13). One abstraction
// serves two hosts: `optipar_cli run/chaos --timeout-ms` and the serve
// daemon's per-job deadlines — so deadline enforcement is testable without
// a socket. A JobDeadline is checked at cooperative cancellation points
// (round boundaries in the adaptive loop); it never interrupts a round in
// flight, which keeps every interruption a clean, checkpointable state.
#pragma once

#include <chrono>
#include <cstdint>

namespace optipar {

class JobDeadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// No deadline: never expires.
  JobDeadline() = default;

  /// Expires `timeout_ms` from now; `timeout_ms <= 0` means unlimited.
  [[nodiscard]] static JobDeadline after_ms(std::int64_t timeout_ms) {
    JobDeadline d;
    if (timeout_ms > 0) {
      d.limited_ = true;
      d.deadline_ = Clock::now() + std::chrono::milliseconds(timeout_ms);
    }
    return d;
  }

  [[nodiscard]] bool unlimited() const noexcept { return !limited_; }

  [[nodiscard]] bool expired() const noexcept {
    return limited_ && Clock::now() >= deadline_;
  }

  /// Milliseconds until expiry (clamped at 0); a large sentinel when
  /// unlimited so callers can min() it against poll intervals.
  [[nodiscard]] std::int64_t remaining_ms() const noexcept {
    if (!limited_) return kUnlimitedMs;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline_ - Clock::now());
    return left.count() < 0 ? 0 : left.count();
  }

  static constexpr std::int64_t kUnlimitedMs = INT64_MAX / 2;

 private:
  bool limited_ = false;
  Clock::time_point deadline_{};
};

}  // namespace optipar
