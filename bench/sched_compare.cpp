// SCHED-COMPARE — the three draw backends (DESIGN.md §14) head-to-head on
// the paper's irregular-graph workloads: the paper's random draw, the
// zero-abort chromatic rounds, and the MultiQueue-relaxed priority draw.
// For each workload × backend: time-to-solution, rounds, launched /
// committed / aborted, conflict ratio. Emits a JSON document that
// scripts/run_bench.sh merges into BENCH_rt.json["sched_compare"] and
// gates with the chromatic sentinel (zero aborts AND tts no worse than
// random).
//
// Timing discipline: --reps (default 3) full runs per cell, keep the
// fastest — same min-of-probes rejection of scheduler spikes as the
// telemetry-overhead probes in run_bench.sh.
//
// Usage: sched_compare [--nodes=4000] [--threads=4] [--m=256] [--reps=3]
//                      [--out=FILE]
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/coloring/coloring.hpp"
#include "apps/mis/mis.hpp"
#include "bench_common.hpp"
#include "graph/algos.hpp"
#include "rt/spec_executor.hpp"
#include "sched/scheduler.hpp"
#include "support/telemetry/conflict_profiler.hpp"
#include "support/telemetry/telemetry.hpp"

using namespace optipar;

namespace {

struct CellResult {
  double time_ms = 0.0;
  std::uint64_t rounds = 0;
  std::uint64_t launched = 0;
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  /// Abort locality (DESIGN.md §15): the fraction of attributed conflicts
  /// concentrated on the 16 hottest items. The chromatic backend has no
  /// aborts (reported as 0); for random vs relaxed this shows whether the
  /// relaxed draw spreads contention off the hubs.
  double top16_share = 0.0;
  std::uint64_t profiled_conflicts = 0;
  bool correct = false;

  [[nodiscard]] double conflict_ratio() const {
    return launched == 0
               ? 0.0
               : static_cast<double>(aborted) / static_cast<double>(launched);
  }
};

struct SchedWorkload {
  std::string name;
  const CsrGraph* graph = nullptr;
  std::string app;  ///< "coloring" | "mis"
};

/// One full drain of `app` on `g` under `backend`. The operator and its
/// oracle are the real application kernels; the only variable is who owns
/// the draw.
CellResult run_cell(const SchedWorkload& wl, sched::Backend backend,
                    ThreadPool& pool, std::uint32_t m, std::uint64_t seed) {
  const CsrGraph& g = *wl.graph;
  RoundOptions opts;
  opts.scheduler = backend;

  coloring::ColoringState colors(g.num_nodes());
  mis::MisState mis_state(g.num_nodes());
  TaskOperator op = wl.app == "coloring"
                        ? coloring::make_coloring_operator(g, colors)
                        : mis::make_mis_operator(g, mis_state);

  CellResult out;
  const auto t0 = std::chrono::steady_clock::now();
  SpeculativeExecutor ex(pool, g.num_nodes(), op, seed, opts);
  // Conflict attribution rides every rep: recording is one relaxed
  // fetch_add per abort, so it does not disturb the min-of-reps timing, and
  // the reported cell keeps the locality measured in its own run.
  telemetry::RuntimeTelemetry tel;
  telemetry::ConflictProfiler prof(g.num_nodes());
  {
    std::vector<std::uint32_t> degrees(g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) degrees[v] = g.degree(v);
    prof.set_degrees(std::move(degrees));
  }
  tel.set_profiler(&prof);
  ex.set_telemetry(&tel);
  if (backend == sched::Backend::kChromatic) {
    ex.set_footprint_function(
        [&g](TaskId t, std::vector<std::uint32_t>& fp) {
          const auto v = static_cast<NodeId>(t);
          fp.push_back(v);
          for (const NodeId u : g.neighbors(v)) fp.push_back(u);
        });
  } else if (backend == sched::Backend::kRelaxed) {
    ex.set_priority_function([](TaskId t) { return t; });
  }
  std::vector<TaskId> initial(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) initial[v] = v;
  ex.push_initial(initial);
  std::uint64_t guard = 0;
  while (!ex.done() && guard++ < 1000000) (void)ex.run_round(m);
  const auto t1 = std::chrono::steady_clock::now();

  out.time_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  out.rounds = ex.totals().rounds;
  out.launched = ex.totals().launched;
  out.committed = ex.totals().committed;
  out.aborted = ex.totals().aborted;
  out.top16_share = prof.top_share(16);
  out.profiled_conflicts = prof.total_conflicts();
  out.correct = wl.app == "coloring"
                    ? colors.is_proper(g)
                    : is_maximal_independent_set(g, mis_state.in_set());
  return out;
}

void emit_cell(std::ostream& os, const std::string& backend,
               const CellResult& r, bool last) {
  os << "   \"" << backend << "\": {"
     << "\"time_ms\": " << r.time_ms << ", \"rounds\": " << r.rounds
     << ", \"launched\": " << r.launched
     << ", \"committed\": " << r.committed << ", \"aborted\": " << r.aborted
     << ", \"conflict_ratio\": " << r.conflict_ratio()
     << ", \"top16_share\": " << r.top16_share
     << ", \"profiled_conflicts\": " << r.profiled_conflicts
     << ", \"correct\": " << (r.correct ? "true" : "false") << "}"
     << (last ? "" : ",") << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt(argc, argv);
  const auto nodes = static_cast<NodeId>(opt.get_int("nodes", 4000));
  const auto threads = static_cast<std::size_t>(opt.get_int("threads", 4));
  const auto m = static_cast<std::uint32_t>(opt.get_int("m", 256));
  const int reps = static_cast<int>(opt.get_int("reps", 3));
  ThreadPool pool(threads);

  // The paper's irregular inputs: a skewed RMAT power-law graph and a
  // Barabási–Albert preferential-attachment graph — both conflict-dense
  // enough that the draw policy is the dominant cost driver.
  Rng rmat_rng(101);
  const CsrGraph rmat_graph =
      gen::rmat(nodes, static_cast<std::uint64_t>(nodes) * 8, 0.55, 0.15,
                0.15, rmat_rng);
  Rng ba_rng(102);
  const CsrGraph ba_graph = gen::barabasi_albert(nodes, 8, ba_rng);

  const std::vector<SchedWorkload> workloads = {
      {"rmat-coloring", &rmat_graph, "coloring"},
      {"rmat-mis", &rmat_graph, "mis"},
      {"ba-coloring", &ba_graph, "coloring"},
      {"ba-mis", &ba_graph, "mis"},
  };
  const std::vector<std::pair<std::string, sched::Backend>> backends = {
      {"random", sched::Backend::kRandom},
      {"chromatic", sched::Backend::kChromatic},
      {"relaxed", sched::Backend::kRelaxed},
  };

  std::ostringstream json;
  json << "{\n \"nodes\": " << nodes << ",\n \"threads\": " << threads
       << ",\n \"m\": " << m << ",\n \"reps\": " << reps
       << ",\n \"workloads\": {\n";
  bool first_wl = true;
  for (const SchedWorkload& wl : workloads) {
    bench::banner(wl.name + " (" + std::to_string(nodes) + " nodes, m=" +
                  std::to_string(m) + ")");
    if (!first_wl) json << "  ,\n";
    first_wl = false;
    json << "  \"" << wl.name << "\": {\n";
    for (std::size_t b = 0; b < backends.size(); ++b) {
      const auto& [name, backend] = backends[b];
      CellResult best;
      for (int rep = 0; rep < reps; ++rep) {
        const CellResult r = run_cell(wl, backend, pool, m, 33 + rep);
        if (rep == 0 || r.time_ms < best.time_ms) best = r;
      }
      std::cout << "  " << name << ": " << best.time_ms << " ms, "
                << best.rounds << " rounds, aborted " << best.aborted
                << " / launched " << best.launched << " (r="
                << best.conflict_ratio() << ", top16_share="
                << best.top16_share << ") correct="
                << (best.correct ? "yes" : "NO") << "\n";
      emit_cell(json, name, best, b + 1 == backends.size());
      if (!best.correct) {
        std::cerr << "sched_compare: " << wl.name << "/" << name
                  << " produced an INCORRECT answer\n";
        return 1;
      }
    }
    json << "  }\n";
  }
  json << " }\n}\n";

  if (opt.has("out")) {
    std::ofstream os(opt.get("out", ""));
    if (!os) {
      std::cerr << "sched_compare: cannot open --out="
                << opt.get("out", "") << "\n";
      return 1;
    }
    os << json.str();
  } else {
    bench::banner("json");
    std::cout << json.str();
  }
  return 0;
}
