// ABL — ablations of Algorithm 1's design knobs (DESIGN.md §5):
//   1. averaging window T          (noise smoothing vs responsiveness)
//   2. hybrid thresholds α₀ / α₁   (vs pure-A and pure-B behavior)
//   3. r_min clamp                 (Recurrence B explosion guard)
//   4. the small-m regime          (paper's unshown separate tuning)
//   5. target ρ sweep              (10% … 40%)
// Metrics per configuration: convergence step to mu ± 25%, steady-state
// RMS m-error, steady mean conflict ratio, wasted work.
//
// Usage: ablation_controller [--n=2000] [--d=16] [--steps=280] [--reps=3]
#include <iostream>

#include "apps/mis/mis.hpp"
#include "bench_common.hpp"
#include "model/conflict_ratio.hpp"
#include "rt/adaptive_executor.hpp"

using namespace optipar;

namespace {

struct Metrics {
  double convergence = 0.0;
  double rms = 0.0;
  double steady_r = 0.0;
  double wasted = 0.0;
};

Metrics evaluate(const ControllerParams& p, const CsrGraph& g, double mu,
                 std::uint32_t steps, int reps, std::uint64_t seed) {
  Metrics m;
  for (int rep = 0; rep < reps; ++rep) {
    HybridController c(p);
    StationaryWorkload w(g);
    RunLoopConfig cfg;
    cfg.max_steps = steps;
    Rng rng(seed + static_cast<std::uint64_t>(rep) * 101);
    const auto trace = run_controlled(c, w, cfg, rng);
    const auto s = bench::summarize("hybrid", trace, mu, 0.25);
    m.convergence += static_cast<double>(
        std::min(s.convergence_step, trace.steps.size()));
    m.rms += s.rms_error;
    m.steady_r += s.mean_ratio_steady;
    m.wasted += s.wasted;
  }
  m.convergence /= reps;
  m.rms /= reps;
  m.steady_r /= reps;
  m.wasted /= reps;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt(argc, argv);
  const auto n = static_cast<NodeId>(opt.get_int("n", 2000));
  const auto d = static_cast<std::uint32_t>(opt.get_int("d", 16));
  const auto steps = static_cast<std::uint32_t>(opt.get_int("steps", 280));
  const int reps = static_cast<int>(opt.get_int("reps", 3));
  Rng rng(opt.get_int("seed", 5));

  const auto g = gen::random_with_average_degree(n, d, rng);
  const double rho = 0.25;
  const auto mu = static_cast<double>(find_mu(g, rho, 300, rng));
  bench::banner("ablation baseline: n=" + std::to_string(n) + ", d=" +
                std::to_string(d) + ", rho=0.25, mu~=" +
                std::to_string(static_cast<int>(mu)));

  ControllerParams base;
  base.rho = rho;
  base.m_max = 4096;

  auto row = [&](Table& t, const std::string& label,
                 const ControllerParams& p) {
    const auto m = evaluate(p, g, mu, steps, reps, 1234);
    t.add_row({label, m.convergence, m.rms, m.steady_r, m.wasted});
  };

  // 1. Averaging window T.
  {
    bench::banner("1. averaging window T");
    Table t({"T", "convergence_step", "steady_rms", "steady_r", "wasted"});
    for (const std::uint32_t T : {1u, 2u, 4u, 8u, 16u}) {
      auto p = base;
      p.T = T;
      row(t, std::to_string(T), p);
    }
    t.print(std::cout);
    bench::note("paper default T=4: small T reacts to noise, large T lags.");
  }

  // 2. Hybrid thresholds.
  {
    bench::banner("2. hybrid switch alpha0 / dead band alpha1");
    Table t({"config", "convergence_step", "steady_rms", "steady_r",
             "wasted"});
    {
      auto p = base;
      row(t, "paper (a0=0.25, a1=0.06)", p);
    }
    {
      auto p = base;
      p.alpha0 = 1e9;  // Recurrence B can never fire -> pure A
      row(t, "pure-A (a0=inf)", p);
    }
    {
      auto p = base;
      p.alpha0 = p.alpha1;  // B fires on any out-of-band deviation -> pure B
      row(t, "pure-B (a0=a1)", p);
    }
    {
      auto p = base;
      p.alpha1 = 0.0;  // no dead band: keep nudging forever
      row(t, "no dead band (a1=0)", p);
    }
    {
      auto p = base;
      p.alpha1 = 0.20;  // huge dead band: sloppy steady state
      row(t, "wide dead band (a1=0.20)", p);
    }
    t.print(std::cout);
  }

  // 3. r_min clamp.
  {
    bench::banner("3. r_min clamp for Recurrence B");
    Table t({"r_min", "convergence_step", "steady_rms", "steady_r",
             "wasted"});
    for (const double r_min : {0.001, 0.01, 0.03, 0.10}) {
      auto p = base;
      p.r_min = r_min;
      row(t, Table::format_cell(r_min, 3), p);
    }
    t.print(std::cout);
    bench::note(
        "tiny r_min lets m <- (rho/r)m explode past mu when r~0 is "
        "observed by chance; the paper clamps at 3%.");
  }

  // 4. Small-m regime on a low-parallelism graph.
  {
    bench::banner("4. small-m regime (low-parallelism workload, mu ~ 10)");
    const auto dense = gen::union_of_cliques(n - n % 40, 39);
    Rng mu_rng(11);
    const auto mu_dense =
        static_cast<double>(find_mu(dense, rho, 300, mu_rng));
    Table t({"small_m_regime", "convergence_step", "steady_rms", "steady_r",
             "wasted"});
    for (const bool on : {true, false}) {
      auto p = base;
      p.small_m_regime = on;
      Metrics m;
      for (int rep = 0; rep < reps; ++rep) {
        HybridController c(p);
        StationaryWorkload w(dense);
        RunLoopConfig cfg;
        cfg.max_steps = steps;
        Rng run_rng(99 + static_cast<std::uint64_t>(rep));
        const auto trace = run_controlled(c, w, cfg, run_rng);
        const auto s = bench::summarize("hybrid", trace, mu_dense, 0.25);
        m.convergence += static_cast<double>(
            std::min(s.convergence_step, trace.steps.size()));
        m.rms += s.rms_error;
        m.steady_r += s.mean_ratio_steady;
        m.wasted += s.wasted;
      }
      t.add_row({on ? "on" : "off", m.convergence / reps, m.rms / reps,
                 m.steady_r / reps, m.wasted / reps});
    }
    t.print(std::cout);
    std::cout << "mu(dense) ~= " << mu_dense << "\n";
  }

  // 5. rho sweep.
  {
    bench::banner("5. target conflict ratio rho sweep");
    Table t({"rho", "mu(rho)", "convergence_step", "steady_r", "wasted",
             "throughput(committed/step)"});
    Rng mu_rng(13);
    const auto mu_curve = estimate_conflict_curve(g, 300, mu_rng);
    for (const double r : {0.10, 0.20, 0.25, 0.30, 0.40}) {
      const auto mu_r = static_cast<double>(find_mu(mu_curve, r));
      auto p = base;
      p.rho = r;
      HybridController c(p);
      StationaryWorkload w(g);
      RunLoopConfig cfg;
      cfg.max_steps = steps;
      Rng run_rng(7);
      const auto trace = run_controlled(c, w, cfg, run_rng);
      const auto s = bench::summarize("hybrid", trace, mu_r, 0.25);
      t.add_row({r, mu_r,
                 static_cast<double>(
                     std::min(s.convergence_step, trace.steps.size())),
                 s.mean_ratio_steady, s.wasted,
                 static_cast<double>(trace.total_committed()) /
                     static_cast<double>(trace.steps.size())});
    }
    t.print(std::cout);
    bench::note(
        "the paper recommends rho in [20%, 30%]: lower starves parallelism, "
        "higher burns work on rollbacks.");
  }

  // 0. The noise that motivates Algorithm 1's machinery: the per-round
  //    observation r_t has variance that explodes as m shrinks (§4.1's
  //    rationale for T-averaging and the separate small-m regime).
  {
    bench::banner("0. observation noise: std[r_t] vs m");
    Table t({"m", "mean_r", "std_r", "relative_noise"});
    Rng noise_rng(3);
    for (std::uint32_t m = 2; m <= 512; m *= 2) {
      const auto stats = estimate_r_at(g, m, 3000, noise_rng);
      t.add_row({static_cast<std::int64_t>(m), stats.mean(), stats.stddev(),
                 stats.mean() > 0 ? stats.stddev() / stats.mean() : 0.0});
    }
    t.print(std::cout);
    bench::note(
        "at m ~ 4 one round tells you almost nothing (relative noise > 1); "
        "hence the longer window and wider dead band below m_small.");
  }

  // 6. Worklist selection policy in the real runtime (the model assumes
  //    uniformly random task selection; FIFO/LIFO bias which conflicts the
  //    controller observes).
  {
    bench::banner("6. executor worklist policy (MIS on G(n, 6n))");
    Rng g_rng(21);
    const auto mis_graph = gen::random_with_average_degree(n, 12, g_rng);
    ThreadPool pool(4);
    Table t({"policy", "rounds", "wasted", "mean_r"});
    const std::pair<const char*, WorklistPolicy> policies[] = {
        {"random", WorklistPolicy::kRandom},
        {"fifo", WorklistPolicy::kFifo},
        {"lifo", WorklistPolicy::kLifo}};
    for (const auto& [label, policy] : policies) {
      mis::MisState state(mis_graph.num_nodes());
      SpeculativeExecutor ex(pool, mis_graph.num_nodes(),
                             mis::make_mis_operator(mis_graph, state), 77,
                             policy);
      std::vector<TaskId> tasks(mis_graph.num_nodes());
      for (NodeId v = 0; v < mis_graph.num_nodes(); ++v) tasks[v] = v;
      ex.push_initial(tasks);
      auto p = base;
      HybridController c(p);
      const auto trace = run_adaptive(ex, c);
      t.add_row({std::string(label),
                 static_cast<std::int64_t>(trace.steps.size()),
                 trace.wasted_fraction(), trace.mean_conflict_ratio()});
    }
    t.print(std::cout);
    bench::note(
        "random selection matches the paper's model; FIFO keeps the "
        "initial spatial order (neighbors adjacent in time -> more "
        "conflicts), LIFO chases freshly-pushed neighborhoods.");
  }

  // 7. Conflict arbitration: abort-self (the paper's model) vs KDG-style
  //    priority-wins (earlier task poisons the later owner).
  {
    bench::banner("7. conflict arbitration (MIS, same workload as 6)");
    Rng g_rng(22);
    const auto mis_graph = gen::random_with_average_degree(n, 12, g_rng);
    ThreadPool pool(4);
    Table t({"arbitration", "rounds", "wasted", "mean_r"});
    const std::pair<const char*, ArbitrationPolicy> policies[] = {
        {"abort-self", ArbitrationPolicy::kAbortSelf},
        {"priority-wins", ArbitrationPolicy::kPriorityWins}};
    for (const auto& [label, arb] : policies) {
      mis::MisState state(mis_graph.num_nodes());
      SpeculativeExecutor ex(pool, mis_graph.num_nodes(),
                             mis::make_mis_operator(mis_graph, state), 78,
                             WorklistPolicy::kRandom, arb);
      std::vector<TaskId> tasks(mis_graph.num_nodes());
      for (NodeId v = 0; v < mis_graph.num_nodes(); ++v) tasks[v] = v;
      ex.push_initial(tasks);
      auto p = base;
      HybridController c(p);
      const auto trace = run_adaptive(ex, c);
      t.add_row({std::string(label),
                 static_cast<std::int64_t>(trace.steps.size()),
                 trace.wasted_fraction(), trace.mean_conflict_ratio()});
    }
    t.print(std::cout);
    bench::note(
        "priority-wins guarantees the earliest task always survives a "
        "round (useful when priorities encode urgency); abort-self is "
        "wait-free and matches the paper's commit-order model. On a "
        "single-core host the two coincide: rounds serialize, so a "
        "conflicting owner has usually already committed and poisoning "
        "cannot fire (see test_arbitration for the true concurrent "
        "behavior).");
  }
  return 0;
}
