// SEC41 — the paper's §4.1 adaptation claims, measured:
//   (a) convergence speed from m0 = 2 on a stationary random CC graph for
//       every controller (hybrid / A / B / bisection / AIMD / fixed);
//   (b) the Lonestar-style DMR ramp ("no parallelism to one thousand
//       parallel tasks in ~30 steps") on the refining workload, and how
//       closely each controller's m_t follows it;
//   (c) re-convergence after abrupt phase shifts in available parallelism.
//
// Usage: sec41_adaptation [--n=2000] [--d=16] [--rho=0.25] [--steps=240]
#include <iostream>

#include "bench_common.hpp"
#include "model/conflict_ratio.hpp"
#include "sim/profile.hpp"

using namespace optipar;

namespace {

const std::vector<std::string> kControllers = {
    "hybrid", "recurrence-A", "recurrence-B", "bisection", "aimd", "pid",
    "ewma-hybrid", "fixed-8", "fixed-256"};

}  // namespace

int main(int argc, char** argv) {
  const Options opt(argc, argv);
  const auto n = static_cast<NodeId>(opt.get_int("n", 2000));
  const auto d = static_cast<std::uint32_t>(opt.get_int("d", 16));
  const double rho = opt.get_double("rho", 0.25);
  const auto steps = static_cast<std::uint32_t>(opt.get_int("steps", 240));
  Rng rng(opt.get_int("seed", 3));

  // ------------------------------------------------ (a) convergence race
  bench::banner("(a) controller race on stationary G(n, nd/2), rho=" +
                std::to_string(rho));
  const auto g = gen::random_with_average_degree(n, d, rng);
  const auto mu = find_mu(g, rho, 300, rng);
  bench::note("reference operating point mu ~= " + std::to_string(mu));
  Table race({"controller", "converged_at", "steady_mean_r",
              "steady_rms_m_err", "wasted_fraction"});
  std::vector<std::string> racers = kControllers;
  racers.push_back("fixed-" + std::to_string(mu));  // the offline oracle
  for (const auto& name : racers) {
    ControllerParams p;
    p.rho = rho;
    p.m_max = 4096;
    auto c = bench::make_controller(name, p);
    StationaryWorkload w(g);
    RunLoopConfig cfg;
    cfg.max_steps = steps;
    Rng run_rng(17);
    const auto trace = run_controlled(*c, w, cfg, run_rng);
    const auto s = bench::summarize(name, trace, mu, 0.30);
    race.add_row({name,
                  static_cast<std::int64_t>(
                      s.convergence_step >= trace.steps.size()
                          ? -1
                          : static_cast<std::int64_t>(s.convergence_step)),
                  s.mean_ratio_steady, s.rms_error, s.wasted});
  }
  race.print(std::cout);
  bench::note("(-1 = never entered the mu +/- 30% band; fixed-" +
              std::to_string(mu) +
              " is the offline oracle that knows mu in advance)");

  // ------------------------------------------------ (b) the DMR ramp
  bench::banner("(b) refining workload: available parallelism ramp");
  RefiningParams rp;
  rp.seed_nodes = 8;
  rp.children = 3;
  rp.attach_neighbors = 2;
  rp.total_budget = 60000;
  {
    Rng prof_rng(23);
    RefiningWorkload w(rp, prof_rng);
    const auto profile = parallelism_profile(w, 60, prof_rng);
    Table ramp({"step", "pending_tasks", "executed_parallel"});
    for (const auto& pt : profile) {
      if (pt.step % 4 == 0) {
        ramp.add_row({static_cast<std::int64_t>(pt.step),
                      static_cast<std::int64_t>(pt.available),
                      static_cast<std::int64_t>(pt.executed)});
      }
    }
    ramp.print(std::cout);
    std::cout << "peak executed parallelism: " << profile_peak(profile)
              << ", steps to half of peak: "
              << steps_to_fraction_of_peak(profile, 0.5)
              << " (paper cites DMR: ~1000 tasks within ~30 steps)\n";
  }

  bench::banner("(b') controllers riding the ramp (m_t growth)");
  Table ride({"controller", "m_at_10", "m_at_30", "m_at_60", "max_m",
              "mean_r", "wasted"});
  for (const auto& name : kControllers) {
    ControllerParams p;
    p.rho = rho;
    p.m_max = 8192;
    auto c = bench::make_controller(name, p);
    Rng run_rng(29);
    RefiningWorkload w(rp, run_rng);
    RunLoopConfig cfg;
    cfg.max_steps = 80;
    const auto trace = run_controlled(*c, w, cfg, run_rng);
    auto m_at = [&](std::size_t i) {
      return static_cast<std::int64_t>(
          i < trace.steps.size() ? trace.steps[i].m : 0);
    };
    std::uint32_t max_m = 0;
    for (const auto& s : trace.steps) max_m = std::max(max_m, s.m);
    ride.add_row({name, m_at(10), m_at(30), m_at(60),
                  static_cast<std::int64_t>(max_m),
                  trace.mean_conflict_ratio(), trace.wasted_fraction()});
  }
  ride.print(std::cout);

  // ------------------------------------------------ (c) phase shifts
  bench::banner("(c) abrupt phase shifts: dense -> sparse -> dense");
  {
    Rng phase_rng(31);
    auto make_workload = [&]() {
      std::vector<PhaseShiftWorkload::Stage> stages;
      stages.push_back({80, gen::union_of_cliques(n - n % 60, 59)});
      stages.push_back({80, gen::random_with_average_degree(n, 2, phase_rng)});
      stages.push_back({80, gen::union_of_cliques(n - n % 60, 59)});
      return PhaseShiftWorkload(std::move(stages));
    };
    Table shift({"controller", "m_end_dense1", "m_end_sparse", "m_end_dense2",
                 "mean_r_overall"});
    for (const auto& name : kControllers) {
      ControllerParams p;
      p.rho = rho;
      p.m_max = 4096;
      auto c = bench::make_controller(name, p);
      auto w = make_workload();
      RunLoopConfig cfg;
      cfg.max_steps = 240;
      Rng run_rng(37);
      const auto trace = run_controlled(*c, w, cfg, run_rng);
      auto m_at = [&](std::size_t i) {
        return static_cast<std::int64_t>(
            i < trace.steps.size() ? trace.steps[i].m : 0);
      };
      shift.add_row({name, m_at(79), m_at(159), m_at(239),
                     trace.mean_conflict_ratio()});
    }
    shift.print(std::cout);
    bench::note(
        "expected: adaptive controllers shrink m in dense phases, blow it "
        "up in the sparse phase, and re-shrink — fixed ones cannot.");
  }
  return 0;
}
