// APP-DMR / APP-GRAPH — the paper's motivating applications executed on the
// real speculative runtime under different allocation policies:
//   * Delaunay mesh refinement (the paper's running example, §2)
//   * Boruvka MST (checked against a sequential Kruskal)
//   * maximal independent set
//   * greedy graph coloring
// For each app and controller: rounds to completion, wasted-work fraction,
// mean conflict ratio — the quantities Algorithm 1 trades off.
//
// Usage: app_workloads [--points=250] [--nodes=1500] [--threads=4]
#include <iostream>

#include "apps/boruvka/boruvka.hpp"
#include "apps/coloring/coloring.hpp"
#include "apps/dmr/refine.hpp"
#include "apps/maxflow/maxflow.hpp"
#include "apps/mis/mis.hpp"
#include "apps/sp/survey.hpp"
#include "apps/sssp/sssp.hpp"
#include "bench_common.hpp"
#include "graph/algos.hpp"
#include "graph/weighted_graph.hpp"

using namespace optipar;

namespace {

const std::vector<std::string> kControllers = {"hybrid", "recurrence-A",
                                               "bisection", "fixed-4",
                                               "fixed-64"};

std::vector<dmr::Point2> random_points(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<dmr::Point2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform() * 100.0, rng.uniform() * 100.0});
  }
  return pts;
}

void add_trace_row(Table& t, const std::string& app,
                   const std::string& controller, const Trace& trace,
                   const std::string& correctness) {
  t.add_row({app, controller, static_cast<std::int64_t>(trace.steps.size()),
             static_cast<std::int64_t>(trace.total_committed()),
             static_cast<std::int64_t>(trace.total_aborted()),
             trace.wasted_fraction(), trace.mean_conflict_ratio(),
             correctness});
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt(argc, argv);
  const auto points = static_cast<std::size_t>(opt.get_int("points", 250));
  const auto nodes = static_cast<NodeId>(opt.get_int("nodes", 1500));
  const auto threads = static_cast<std::size_t>(opt.get_int("threads", 4));
  ThreadPool pool(threads);
  const double rho = opt.get_double("rho", 0.25);

  Table results({"app", "controller", "rounds", "committed", "aborted",
                 "wasted", "mean_r", "correct"});

  // ------------------------------------------------------------- DMR
  bench::banner("Delaunay mesh refinement (" + std::to_string(points) +
                " points)");
  const auto pts = random_points(points, 42);
  dmr::RefineQuality q;
  q.min_angle_deg = 25.0;
  q.min_edge = 2.0;
  q.set_domain(pts);
  for (const auto& cname : kControllers) {
    dmr::Mesh mesh;
    dmr::build_delaunay(mesh, pts, 16.0);
    ControllerParams p;
    p.rho = rho;
    auto c = bench::make_controller(cname, p);
    const auto trace = dmr::refine_adaptive(mesh, q, *c, pool, 7);
    const bool ok = dmr::bad_triangles(mesh, q).empty() && mesh.validate() &&
                    mesh.is_locally_delaunay();
    add_trace_row(results, "dmr", cname, trace, ok ? "yes" : "NO");
  }

  // --------------------------------------------------------- Boruvka
  bench::banner("Boruvka MST (" + std::to_string(nodes) + " nodes)");
  std::vector<boruvka::WeightedEdge> edges;
  {
    Rng rng(43);
    const auto g = gen::random_with_average_degree(nodes, 8, rng);
    for (const auto& [u, v] : g.edges()) {
      edges.push_back({u, v, rng.uniform() * 100.0 + 1e-3});
    }
  }
  const double kruskal = boruvka::kruskal_mst_weight(nodes, edges);
  for (const auto& cname : kControllers) {
    ControllerParams p;
    p.rho = rho;
    auto c = bench::make_controller(cname, p);
    const auto res = boruvka::boruvka_adaptive(nodes, edges, *c, pool, 11);
    const bool ok = std::abs(res.mst_weight - kruskal) < 1e-6 * kruskal;
    add_trace_row(results, "boruvka", cname, res.trace, ok ? "yes" : "NO");
  }

  // ------------------------------------------------------------- MIS
  bench::banner("Maximal independent set");
  Rng mis_rng(44);
  const auto mis_graph = gen::random_with_average_degree(nodes, 12, mis_rng);
  for (const auto& cname : kControllers) {
    ControllerParams p;
    p.rho = rho;
    auto c = bench::make_controller(cname, p);
    const auto res = mis::mis_adaptive(mis_graph, *c, pool, 13);
    const bool ok =
        is_maximal_independent_set(mis_graph, res.independent_set);
    add_trace_row(results, "mis", cname, res.trace, ok ? "yes" : "NO");
  }

  // -------------------------------------------------------- Coloring
  bench::banner("Greedy graph coloring");
  Rng col_rng(45);
  const auto col_graph = gen::rmat(nodes, nodes * 6, 0.55, 0.15, 0.15,
                                   col_rng);
  for (const auto& cname : kControllers) {
    ControllerParams p;
    p.rho = rho;
    auto c = bench::make_controller(cname, p);
    const auto res = coloring::coloring_adaptive(col_graph, *c, pool, 17);
    const bool ok =
        res.proper && res.colors_used <= col_graph.max_degree() + 1;
    add_trace_row(results, "coloring", cname, res.trace, ok ? "yes" : "NO");
  }

  // ------------------------------------------------------------ SSSP
  bench::banner("SSSP by chaotic relaxation");
  {
    Rng rng(46);
    const auto skeleton = gen::random_with_average_degree(nodes, 6, rng);
    std::vector<WeightedEdgeTriple> wedges;
    for (const auto& [u, v] : skeleton.edges()) {
      wedges.push_back({u, v, rng.uniform() * 10.0 + 0.01});
    }
    const auto wg = WeightedGraph::from_edges(nodes, wedges);
    const auto reference = sssp::dijkstra(wg, 0);
    auto check = [&](const std::vector<double>& dist) {
      for (NodeId v = 0; v < nodes; ++v) {
        if (reference[v] != sssp::kUnreachable &&
            std::abs(dist[v] - reference[v]) > 1e-9) {
          return false;
        }
      }
      return true;
    };
    for (const auto& cname : kControllers) {
      ControllerParams p;
      p.rho = rho;
      auto c = bench::make_controller(cname, p);
      const auto res = sssp::sssp_adaptive(wg, 0, *c, pool, 19);
      add_trace_row(results, "sssp", cname, res.trace,
                    check(res.dist) ? "yes" : "NO");
    }
    // The soft-priority (OBIM-style) scheduler: same answer, far less
    // committed work than random order.
    {
      ControllerParams p;
      p.rho = rho;
      auto c = bench::make_controller("hybrid", p);
      const auto res = sssp::sssp_priority_adaptive(wg, 0, *c, pool, 19);
      add_trace_row(results, "sssp(prio)", "hybrid", res.trace,
                    check(res.dist) ? "yes" : "NO");
    }
  }

  // --------------------------------------------------------- Max-flow
  bench::banner("Max-flow by speculative push-relabel");
  {
    Rng rng(47);
    const NodeId fn = nodes / 4;
    maxflow::FlowNetwork base(fn);
    for (NodeId v = 0; v + 1 < fn; ++v) {
      base.add_arc(v, v + 1, static_cast<double>(1 + rng.below(8)));
    }
    for (std::size_t e = 0; e < static_cast<std::size_t>(fn) * 3; ++e) {
      const auto u = static_cast<NodeId>(rng.below(fn));
      const auto v = static_cast<NodeId>(rng.below(fn));
      if (u != v) base.add_arc(u, v, static_cast<double>(1 + rng.below(12)));
    }
    const double reference = maxflow::edmonds_karp(base, 0, fn - 1);
    for (const auto& cname : kControllers) {
      maxflow::FlowNetwork net = base;  // fresh flow per controller
      net.reset_flow();
      ControllerParams p;
      p.rho = rho;
      auto c = bench::make_controller(cname, p);
      const auto res = maxflow::maxflow_adaptive(net, 0, fn - 1, *c, pool,
                                                 23);
      const bool ok =
          res.feasible && std::abs(res.flow_value - reference) < 1e-9;
      add_trace_row(results, "maxflow", cname, res.trace, ok ? "yes" : "NO");
    }
  }

  // --------------------------------------------- Survey propagation
  bench::banner("Survey propagation (random 3-SAT, ratio 3.0)");
  {
    Rng rng(48);
    const auto vars = static_cast<std::uint32_t>(nodes / 10);
    const sp::Formula formula = sp::random_ksat(vars, vars * 3, 3, rng);
    sp::SpConfig sp_config;
    for (const auto& cname : kControllers) {
      ControllerParams p;
      p.rho = rho;
      auto c = bench::make_controller(cname, p);
      Rng solver_rng(49);
      const auto res =
          sp::solve_with_sid(formula, sp_config, solver_rng, c.get(), &pool);
      const bool ok =
          res.satisfied && formula.is_satisfied_by(res.assignment);
      add_trace_row(results, "sp", cname, res.trace, ok ? "yes" : "NO");
    }
  }

  bench::banner("summary (all apps, all controllers)");
  results.print(std::cout);
  bench::note(
      "expected shape: the hybrid matches the best fixed allocation's "
      "round count without its wasted work; fixed-64 burns rollbacks on "
      "the draining tail, fixed-4 crawls on the parallel middle.");
  if (opt.has("csv")) results.write_csv(opt.get("csv", "apps.csv"));
  return 0;
}
