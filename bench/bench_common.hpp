// Shared helpers for the experiment binaries: banner printing, standard
// graph constructions used by the paper's figures, and controller-trace
// summarization.
#pragma once

#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "control/baselines.hpp"
#include "control/controller.hpp"
#include "control/extra.hpp"
#include "control/hybrid.hpp"
#include "control/recurrence.hpp"
#include "graph/csr_graph.hpp"
#include "graph/generators.hpp"
#include "sim/run_loop.hpp"
#include "support/csv.hpp"
#include "support/options.hpp"
#include "support/rng.hpp"
#include "support/telemetry/telemetry.hpp"
#include "support/timer.hpp"

namespace optipar::bench {

inline void banner(const std::string& title) {
  std::cout << "\n==== " << title << " ====\n";
}

inline void note(const std::string& text) { std::cout << text << "\n"; }

/// Named wall-clock phase breakdown for experiment binaries, built on the
/// telemetry layer's ScopedTimer/TimerSet pair (DESIGN.md §10). Usage:
///
///     bench::PhaseClock phases;
///     { ScopedTimer t(phases.acc("find-mu")); mu = find_mu(...); }
///     phases.report();
class PhaseClock {
 public:
  /// Stable accumulator pointer for `name` — hand it to a ScopedTimer.
  [[nodiscard]] TimerAccumulator* acc(const std::string& name) {
    return &timers_.at(name);
  }

  /// Print "  [time] name: X.X ms over N span(s)" per phase, name-sorted.
  void report() const {
    for (const auto& e : timers_.snapshot()) {
      std::cout << "  [time] " << e.name << ": "
                << static_cast<double>(e.total_ns) * 1e-6 << " ms over "
                << e.count << " span(s)\n";
    }
  }

 private:
  telemetry::TimerSet timers_;
};

/// Fig. 2's third curve: a union of cliques PLUS disconnected nodes, with
/// overall average degree ≈ d. Uses cliques of size (k+1) covering the
/// fraction d/k of the nodes (k > d), the rest isolated.
inline CsrGraph cliques_and_isolated_with_degree(NodeId n, std::uint32_t d,
                                                 std::uint32_t clique_degree) {
  const std::uint32_t k = clique_degree;  // degree inside each clique
  const NodeId clique_size = k + 1;
  // x nodes in cliques: x·k / n = d  =>  x = n·d/k, rounded to a multiple
  // of the clique size.
  NodeId in_cliques = static_cast<NodeId>(
      static_cast<std::uint64_t>(n) * d / k);
  in_cliques -= in_cliques % clique_size;
  const auto base = gen::union_of_cliques(in_cliques, k);
  return CsrGraph::from_edges(n, base.edges());  // rest stay isolated
}

/// Construct a named controller for CLI-style selection.
inline std::unique_ptr<Controller> make_controller(
    const std::string& name, const ControllerParams& params) {
  if (name == "hybrid") return std::make_unique<HybridController>(params);
  if (name == "recurrence-A") {
    return std::make_unique<RecurrenceAController>(params);
  }
  if (name == "recurrence-B") {
    return std::make_unique<RecurrenceBController>(params);
  }
  if (name == "bisection") {
    return std::make_unique<BisectionController>(params);
  }
  if (name == "aimd") return std::make_unique<AimdController>(params);
  if (name == "pid") return std::make_unique<PidController>(params);
  if (name == "ewma-hybrid") {
    return std::make_unique<EwmaHybridController>(params);
  }
  if (name.rfind("fixed-", 0) == 0) {
    return std::make_unique<FixedController>(
        static_cast<std::uint32_t>(std::stoul(name.substr(6))));
  }
  throw std::invalid_argument("unknown controller: " + name);
}

struct TraceSummary {
  std::string controller;
  std::size_t rounds = 0;
  std::size_t convergence_step = 0;
  double mean_ratio_steady = 0.0;
  double rms_error = 0.0;
  double wasted = 0.0;
  std::uint64_t committed = 0;
};

inline TraceSummary summarize(const std::string& name, const Trace& trace,
                              double mu_ref, double band = 0.25) {
  TraceSummary s;
  s.controller = name;
  s.rounds = trace.steps.size();
  s.convergence_step = trace.convergence_step(mu_ref, band, 5);
  const std::size_t steady = std::min(s.convergence_step, s.rounds);
  s.mean_ratio_steady = trace.mean_conflict_ratio(steady);
  s.rms_error = trace.rms_relative_error(mu_ref, steady);
  s.wasted = trace.wasted_fraction();
  s.committed = trace.total_committed();
  return s;
}

}  // namespace optipar::bench
