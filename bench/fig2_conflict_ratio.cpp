// FIG2 — reproduces Figure 2 of the paper: the conflict-ratio function
// r̄(m) for graphs with n = 2000 nodes and average degree d = 16:
//   (i)   the worst-case upper bound (Cor. 2 approximation, plus our exact
//         Thm. 3 evaluation),
//   (ii)  a random graph (edges uniform until the target degree),
//   (iii) a union of cliques and disconnected nodes.
// Expected shape (paper): all curves share the initial slope d/(2(n−1))
// (Prop. 2); the bound dominates both empirical curves; curve (iii) rises
// toward 1 faster than the random graph once m is large.
//
// Usage: fig2_conflict_ratio [--n=2000] [--d=16] [--trials=200]
//                            [--csv=fig2.csv]
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "model/conflict_ratio.hpp"
#include "model/theory.hpp"
#include "support/ascii_plot.hpp"

using namespace optipar;

int main(int argc, char** argv) {
  const Options opt(argc, argv);
  const auto n = static_cast<NodeId>(opt.get_int("n", 2000));
  const auto d = static_cast<std::uint32_t>(opt.get_int("d", 16));
  const auto trials = static_cast<std::uint32_t>(opt.get_int("trials", 200));
  const std::uint64_t seed = opt.get_int("seed", 42);

  bench::banner("Fig. 2 — conflict ratio r̄(m), n=" + std::to_string(n) +
                ", d=" + std::to_string(d));

  Rng rng(seed);
  const auto random_g = gen::random_with_average_degree(n, d, rng);
  const auto mix_g = bench::cliques_and_isolated_with_degree(n, d, 20);
  // The exact Thm. 3 curve needs (d+1) | n; round n down for it.
  const NodeId n_exact = n - n % (d + 1);

  bench::note("random graph: d=" + std::to_string(random_g.average_degree()));
  bench::note("cliques+isolated: d=" + std::to_string(mix_g.average_degree()));

  const auto curve_random = estimate_conflict_curve(random_g, trials, rng);
  const auto curve_mix = estimate_conflict_curve(mix_g, trials, rng);

  Table table({"m", "bound_thm3_exact", "bound_cor2", "r_random",
               "r_random_ci95", "r_cliques_isolated", "r_cliq_ci95"});
  std::vector<std::uint32_t> ms;
  for (std::uint32_t m = 1; m <= n; m = std::max(m + 1, m * 9 / 8)) {
    ms.push_back(std::min(m, n));
  }
  if (ms.back() != n) ms.push_back(n);
  for (const auto m : ms) {
    const auto m_exact = std::min(m, n_exact);
    table.add_row({static_cast<std::int64_t>(m),
                   theory::conflict_ratio_bound_exact(n_exact, d, m_exact),
                   theory::conflict_ratio_bound_approx(n, d, m),
                   curve_random.r_bar(m), curve_random.r_bar_ci95(m),
                   curve_mix.r_bar(m), curve_mix.r_bar_ci95(m)});
  }
  table.print(std::cout);

  // Terminal rendering of the figure itself.
  {
    AsciiPlot plot(72, 20);
    std::vector<double> xs, bound_ys, rnd_ys, mix_ys;
    for (const auto m : ms) {
      xs.push_back(m);
      bound_ys.push_back(theory::conflict_ratio_bound_exact(
          n_exact, d, std::min(m, n_exact)));
      rnd_ys.push_back(curve_random.r_bar(m));
      mix_ys.push_back(curve_mix.r_bar(m));
    }
    plot.add_series("worst-case bound (Thm. 3)", '#', xs, bound_ys);
    plot.add_series("random graph (MC)", '*', xs, rnd_ys);
    plot.add_series("cliques + isolated (MC)", 'o', xs, mix_ys);
    std::cout << "\nr̄(m) vs m:\n";
    plot.render(std::cout);
  }

  // Shape assertions the paper's figure makes visually.
  const double slope = theory::initial_derivative(n, d);
  bench::banner("shape checks");
  // The initial slope needs far more samples than the whole-curve MC, so
  // measure r̄(2) separately at high trial count (r̄(1) = 0 exactly).
  const auto r2_random = estimate_r_at(random_g, 2, 60000, rng);
  const auto r2_mix = estimate_r_at(mix_g, 2, 60000, rng);
  std::cout << "initial slope (Prop. 2, all curves): d/(2(n-1)) = " << slope
            << "\n  measured random:            " << r2_random.mean()
            << " +/- " << r2_random.ci95()
            << "\n  measured cliques+isolated:  " << r2_mix.mean()
            << " +/- " << r2_mix.ci95() << "\n";
  std::size_t bound_violations = 0;
  for (const auto m : ms) {
    const auto m_exact = std::min(m, n_exact);
    const double bound =
        theory::conflict_ratio_bound_exact(n_exact, d, m_exact);
    if (curve_random.r_bar(m) >
        bound + 3 * curve_random.r_bar_ci95(m) + 0.02) {
      ++bound_violations;
    }
  }
  std::cout << "bound dominates random-graph curve: "
            << (bound_violations == 0 ? "YES" : "NO") << " ("
            << bound_violations << " violations)\n";
  std::cout << "mid-range (m=n/8): cliques+isolated=" << curve_mix.r_bar(n / 8)
            << " vs random=" << curve_random.r_bar(n / 8)
            << " (clique structure conflicts harder at moderate m; the "
               "isolated nodes cap its saturation at m=n: "
            << curve_mix.r_bar(n) << " vs " << curve_random.r_bar(n)
            << ")\n";

  if (opt.has("csv")) {
    table.write_csv(opt.get("csv", "fig2.csv"));
    bench::note("wrote " + opt.get("csv", "fig2.csv"));
  }
  return 0;
}
