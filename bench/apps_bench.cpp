// APPS-BENCH — real application kernels (MIS, greedy coloring, SSSP) run
// through the speculative executor with the conflict-attribution profiler
// attached (DESIGN.md §15). Three products per run:
//
//   * one conflict-ratio curve r̄(m) per app (the paper's Fig. 2 shape),
//     measured on the real runtime (not the sampling model) by draining the
//     workload at a sweep of fixed allocations, with the per-m
//     abort-locality scalar (top16_share) and wall time riding along;
//   * a time-to-solution figure per app at the reference allocation; and
//   * the MIS hotspot report at the reference allocation — WHICH items kill
//     speculative work, with their degrees, plus the degree-bucket rollup.
//
// Every drain is certified by the independent verify:: oracle for its app
// (DESIGN.md §16) before its numbers are recorded — a refuted certificate
// aborts the bench, so BENCH_apps.json never contains numbers from a wrong
// answer.
//
// Emits a JSON document ({"schema":"optipar.bench.apps.v2"}) that seeds /
// refreshes BENCH_apps.json.
//
// Usage: apps_bench [--nodes=4000] [--d=8] [--threads=4] [--seed=7]
//                   [--m-ref=256] [--top=16] [--out=FILE]
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/coloring/coloring.hpp"
#include "apps/mis/mis.hpp"
#include "apps/sssp/sssp.hpp"
#include "bench_common.hpp"
#include "graph/algos.hpp"
#include "graph/weighted_graph.hpp"
#include "rt/spec_executor.hpp"
#include "support/telemetry/conflict_profiler.hpp"
#include "support/telemetry/telemetry.hpp"
#include "verify/app_certs.hpp"

using namespace optipar;

namespace {

struct SweepPoint {
  std::uint32_t m = 0;
  double r = 0.0;            ///< aborted / launched over the whole drain
  std::uint64_t rounds = 0;
  std::uint64_t committed = 0;
  double top16_share = 0.0;  ///< abort locality at this allocation
  double elapsed_ms = 0.0;   ///< wall time of the drain (not the check)
};

/// One app's certified sweep: the curve plus the reference-allocation
/// answer and time-to-solution.
struct AppSeries {
  std::string app;
  double answer = 0.0;
  double time_to_solution_ms = 0.0;  ///< drain wall time at m_ref
  std::vector<SweepPoint> curve;
};

void seed_degrees(telemetry::ConflictProfiler& prof,
                  const std::vector<std::uint32_t>& degrees) {
  std::vector<std::uint32_t> deg = degrees;
  prof.set_degrees(std::move(deg));
}

/// Drain `ex` at fixed allocation `m`, then certify the answer through the
/// app's independent oracle. A refuted certificate invalidates the bench.
SweepPoint drain_certified(SpeculativeExecutor& ex, std::uint32_t m,
                           const verify::Certifier& certify,
                           const telemetry::ConflictProfiler& prof,
                           const std::string& app) {
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t guard = 0;
  while (!ex.done() && guard++ < 1000000) (void)ex.run_round(m);
  const auto t1 = std::chrono::steady_clock::now();
  const verify::Certificate cert = certify();
  if (!cert.ok()) {
    throw std::runtime_error("apps_bench: " + app + " refuted at m=" +
                             std::to_string(m) + ": " + cert.describe());
  }
  SweepPoint p;
  p.m = m;
  p.rounds = ex.totals().rounds;
  p.committed = ex.totals().committed;
  p.r = ex.totals().launched == 0
            ? 0.0
            : static_cast<double>(ex.totals().aborted) /
                  static_cast<double>(ex.totals().launched);
  p.top16_share = prof.top_share(16);
  p.elapsed_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  return p;
}

void push_all(SpeculativeExecutor& ex, NodeId n) {
  std::vector<TaskId> initial(n);
  for (NodeId v = 0; v < n; ++v) initial[v] = v;
  ex.push_initial(initial);
}

SweepPoint run_mis_fixed(const CsrGraph& g, ThreadPool& pool,
                         std::uint32_t m, std::uint64_t seed,
                         telemetry::ConflictProfiler& prof,
                         double* answer = nullptr) {
  mis::MisState state(g.num_nodes());
  SpeculativeExecutor ex(pool, g.num_nodes(),
                         mis::make_mis_operator(g, state), seed);
  telemetry::RuntimeTelemetry tel;
  tel.set_profiler(&prof);
  ex.set_telemetry(&tel);
  push_all(ex, g.num_nodes());
  const SweepPoint p = drain_certified(
      ex, m, [&] { return verify::certify_mis(g, state); }, prof, "mis");
  if (answer != nullptr) {
    *answer = static_cast<double>(state.in_set().size());
  }
  return p;
}

SweepPoint run_coloring_fixed(const CsrGraph& g, ThreadPool& pool,
                              std::uint32_t m, std::uint64_t seed,
                              telemetry::ConflictProfiler& prof,
                              double* answer = nullptr) {
  coloring::ColoringState state(g.num_nodes());
  SpeculativeExecutor ex(pool, g.num_nodes(),
                         coloring::make_coloring_operator(g, state), seed);
  telemetry::RuntimeTelemetry tel;
  tel.set_profiler(&prof);
  ex.set_telemetry(&tel);
  push_all(ex, g.num_nodes());
  const SweepPoint p = drain_certified(
      ex, m, [&] { return verify::certify_coloring(g, state); }, prof,
      "coloring");
  if (answer != nullptr) *answer = static_cast<double>(state.colors_used());
  return p;
}

SweepPoint run_sssp_fixed(const WeightedGraph& g, ThreadPool& pool,
                          std::uint32_t m, std::uint64_t seed,
                          telemetry::ConflictProfiler& prof,
                          double* answer = nullptr) {
  const NodeId source = 0;
  sssp::DistanceTable dist(g.num_nodes(), source);
  SpeculativeExecutor ex(pool, g.num_nodes(),
                         sssp::make_sssp_operator(g, dist), seed);
  telemetry::RuntimeTelemetry tel;
  tel.set_profiler(&prof);
  ex.set_telemetry(&tel);
  push_all(ex, g.num_nodes());
  const SweepPoint p = drain_certified(
      ex, m, [&] { return verify::certify_sssp(g, source, dist.all()); },
      prof, "sssp");
  if (answer != nullptr) {
    double reached = 0.0;
    for (const double d : dist.all()) {
      if (d != sssp::kUnreachable) reached += 1.0;
    }
    *answer = reached;
  }
  return p;
}

void print_point(const SweepPoint& p) {
  std::cout << "  m=" << p.m << " r=" << p.r << " rounds=" << p.rounds
            << " committed=" << p.committed
            << " top16_share=" << p.top16_share << " elapsed_ms="
            << p.elapsed_ms << "\n";
}

void emit_series(std::ostringstream& json, const AppSeries& s, bool last) {
  json << "  {\"app\": \"" << s.app << "\", \"certified\": true, "
       << "\"answer\": " << s.answer << ", \"time_to_solution_ms\": "
       << s.time_to_solution_ms << ",\n   \"curve\": [\n";
  for (std::size_t i = 0; i < s.curve.size(); ++i) {
    const SweepPoint& p = s.curve[i];
    json << "    {\"m\": " << p.m << ", \"r\": " << p.r << ", \"rounds\": "
         << p.rounds << ", \"committed\": " << p.committed
         << ", \"top16_share\": " << p.top16_share << ", \"elapsed_ms\": "
         << p.elapsed_ms << "}" << (i + 1 < s.curve.size() ? "," : "")
         << "\n";
  }
  json << "   ]}" << (last ? "" : ",") << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt(argc, argv);
  const auto nodes = static_cast<NodeId>(opt.get_int("nodes", 4000));
  const auto d = static_cast<std::uint32_t>(opt.get_int("d", 8));
  const auto threads = static_cast<std::size_t>(opt.get_int("threads", 4));
  const auto seed = static_cast<std::uint64_t>(opt.get_int("seed", 7));
  const auto m_ref = static_cast<std::uint32_t>(opt.get_int("m-ref", 256));
  const auto top = static_cast<std::size_t>(opt.get_int("top", 16));
  ThreadPool pool(threads);

  Rng rng(41);
  const CsrGraph g = gen::rmat(
      nodes, static_cast<std::uint64_t>(nodes) * d, 0.55, 0.15, 0.15, rng);
  std::vector<std::uint32_t> degrees(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) degrees[v] = g.degree(v);

  // SSSP runs on the same topology with deterministic positive weights.
  std::vector<WeightedEdgeTriple> wedges;
  for (const auto& [u, v] : g.edges()) {
    wedges.push_back({u, v, rng.uniform() * 10.0 + 0.1});
  }
  const WeightedGraph wg = WeightedGraph::from_edges(g.num_nodes(), wedges);

  std::vector<AppSeries> apps;
  for (const std::string app : {"mis", "coloring", "sssp"}) {
    bench::banner(app + " on rmat (" + std::to_string(nodes) +
                  " nodes, d=" + std::to_string(d) + ")");
    AppSeries series;
    series.app = app;
    // Conflict-ratio curve: one fresh certified drain per allocation, each
    // with its own profiler so the locality scalar belongs to that m alone.
    for (std::uint32_t m = 1; m <= nodes; m *= 4) {
      telemetry::ConflictProfiler prof(g.num_nodes());
      seed_degrees(prof, degrees);
      SweepPoint p;
      if (app == "mis") {
        p = run_mis_fixed(g, pool, m, seed, prof);
      } else if (app == "coloring") {
        p = run_coloring_fixed(g, pool, m, seed, prof);
      } else {
        p = run_sssp_fixed(wg, pool, m, seed, prof);
      }
      series.curve.push_back(p);
      print_point(p);
    }
    // Time-to-solution + answer at the reference allocation.
    telemetry::ConflictProfiler prof(g.num_nodes());
    seed_degrees(prof, degrees);
    SweepPoint ref;
    if (app == "mis") {
      ref = run_mis_fixed(g, pool, m_ref, seed, prof, &series.answer);
    } else if (app == "coloring") {
      ref = run_coloring_fixed(g, pool, m_ref, seed, prof, &series.answer);
    } else {
      ref = run_sssp_fixed(wg, pool, m_ref, seed, prof, &series.answer);
    }
    series.time_to_solution_ms = ref.elapsed_ms;
    std::cout << "  m_ref=" << m_ref << " answer=" << series.answer
              << " time_to_solution_ms=" << series.time_to_solution_ms
              << " certified=ok\n";
    apps.push_back(std::move(series));
  }

  // Hotspot report for MIS at the reference allocation (the app with the
  // strongest degree/conflict correlation on RMAT).
  telemetry::ConflictProfiler prof(g.num_nodes());
  seed_degrees(prof, degrees);
  const SweepPoint ref = run_mis_fixed(g, pool, m_ref, seed, prof);
  bench::banner("mis hotspots at m=" + std::to_string(m_ref));
  prof.write_report(std::cout, top);

  std::ostringstream json;
  json << "{\n \"schema\": \"optipar.bench.apps.v2\",\n"
       << " \"graph\": {\"family\": \"rmat\", \"nodes\": " << nodes
       << ", \"avg_degree\": " << d << "},\n"
       << " \"threads\": " << threads << ",\n \"seed\": " << seed << ",\n"
       << " \"apps\": [\n";
  for (std::size_t i = 0; i < apps.size(); ++i) {
    emit_series(json, apps[i], i + 1 == apps.size());
  }
  json << " ],\n \"m_ref\": " << m_ref << ",\n \"ref_r\": " << ref.r
       << ",\n \"total_conflicts\": " << prof.total_conflicts()
       << ",\n \"hotspots\": [\n";
  const auto hot = prof.top_k(top);
  for (std::size_t i = 0; i < hot.size(); ++i) {
    json << "  {\"item\": " << hot[i].item << ", \"conflicts\": "
         << hot[i].conflicts << ", \"arb_wait_ns\": " << hot[i].arb_wait_ns
         << ", \"degree\": " << hot[i].degree << "}"
         << (i + 1 < hot.size() ? "," : "") << "\n";
  }
  json << " ],\n \"degree_buckets\": [\n";
  const auto buckets = prof.degree_buckets();
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const auto& b = buckets[i];
    json << "  {\"degree_lo\": " << b.degree_lo << ", \"degree_hi\": "
         << b.degree_hi << ", \"items\": " << b.items << ", \"conflicts\": "
         << b.conflicts << ", \"arb_wait_ns\": " << b.arb_wait_ns << "}"
         << (i + 1 < buckets.size() ? "," : "") << "\n";
  }
  json << " ]\n}\n";

  if (opt.has("out")) {
    std::ofstream os(opt.get("out", ""));
    if (!os) {
      std::cerr << "apps_bench: cannot open --out=" << opt.get("out", "")
                << "\n";
      return 1;
    }
    os << json.str();
  } else {
    bench::banner("json");
    std::cout << json.str();
  }
  return 0;
}
