// APPS-BENCH — a real application kernel (maximal independent set) run
// through the speculative executor with the conflict-attribution profiler
// attached (DESIGN.md §15). Two products per run:
//
//   * the conflict-ratio curve r̄(m) of the paper's Fig. 2, measured on the
//     real runtime (not the sampling model) by draining the MIS workload at
//     a sweep of fixed allocations, with the per-m abort-locality scalar
//     (top16_share) riding along; and
//   * the hotspot report at the reference allocation — WHICH items kill
//     speculative work, with their degrees, plus the degree-bucket rollup.
//
// Emits a JSON document ({"schema":"optipar.bench.apps.v1"}) that seeds /
// refreshes BENCH_apps.json.
//
// Usage: apps_bench [--nodes=4000] [--d=8] [--threads=4] [--seed=7]
//                   [--m-ref=256] [--top=16] [--out=FILE]
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/mis/mis.hpp"
#include "bench_common.hpp"
#include "graph/algos.hpp"
#include "rt/spec_executor.hpp"
#include "support/telemetry/conflict_profiler.hpp"
#include "support/telemetry/telemetry.hpp"

using namespace optipar;

namespace {

struct SweepPoint {
  std::uint32_t m = 0;
  double r = 0.0;            ///< aborted / launched over the whole drain
  std::uint64_t rounds = 0;
  std::uint64_t committed = 0;
  double top16_share = 0.0;  ///< abort locality at this allocation
};

/// Drain MIS on `g` at fixed allocation `m`; fills `prof` (reset by the
/// caller) and verifies the answer — a wrong MIS invalidates the bench.
SweepPoint run_fixed(const CsrGraph& g, ThreadPool& pool, std::uint32_t m,
                     std::uint64_t seed, telemetry::ConflictProfiler& prof) {
  mis::MisState state(g.num_nodes());
  SpeculativeExecutor ex(pool, g.num_nodes(),
                         mis::make_mis_operator(g, state), seed);
  telemetry::RuntimeTelemetry tel;
  tel.set_profiler(&prof);
  ex.set_telemetry(&tel);
  std::vector<TaskId> initial(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) initial[v] = v;
  ex.push_initial(initial);
  std::uint64_t guard = 0;
  while (!ex.done() && guard++ < 1000000) (void)ex.run_round(m);
  if (!is_maximal_independent_set(g, state.in_set())) {
    throw std::runtime_error("apps_bench: MIS answer is incorrect at m=" +
                             std::to_string(m));
  }
  SweepPoint p;
  p.m = m;
  p.rounds = ex.totals().rounds;
  p.committed = ex.totals().committed;
  p.r = ex.totals().launched == 0
            ? 0.0
            : static_cast<double>(ex.totals().aborted) /
                  static_cast<double>(ex.totals().launched);
  p.top16_share = prof.top_share(16);
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt(argc, argv);
  const auto nodes = static_cast<NodeId>(opt.get_int("nodes", 4000));
  const auto d = static_cast<std::uint32_t>(opt.get_int("d", 8));
  const auto threads = static_cast<std::size_t>(opt.get_int("threads", 4));
  const auto seed = static_cast<std::uint64_t>(opt.get_int("seed", 7));
  const auto m_ref = static_cast<std::uint32_t>(opt.get_int("m-ref", 256));
  const auto top = static_cast<std::size_t>(opt.get_int("top", 16));
  ThreadPool pool(threads);

  Rng rng(41);
  const CsrGraph g = gen::rmat(
      nodes, static_cast<std::uint64_t>(nodes) * d, 0.55, 0.15, 0.15, rng);
  std::vector<std::uint32_t> degrees(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) degrees[v] = g.degree(v);

  bench::banner("mis on rmat (" + std::to_string(nodes) + " nodes, d=" +
                std::to_string(d) + ")");

  // Conflict-ratio curve: one fresh drain per allocation, each with its
  // own profiler so the locality scalar belongs to that m alone.
  std::vector<SweepPoint> curve;
  for (std::uint32_t m = 1; m <= nodes; m *= 4) {
    telemetry::ConflictProfiler prof(g.num_nodes());
    {
      std::vector<std::uint32_t> deg = degrees;
      prof.set_degrees(std::move(deg));
    }
    const SweepPoint p = run_fixed(g, pool, m, seed, prof);
    curve.push_back(p);
    std::cout << "  m=" << p.m << " r=" << p.r << " rounds=" << p.rounds
              << " committed=" << p.committed
              << " top16_share=" << p.top16_share << "\n";
  }

  // Hotspot report at the reference allocation.
  telemetry::ConflictProfiler prof(g.num_nodes());
  {
    std::vector<std::uint32_t> deg = degrees;
    prof.set_degrees(std::move(deg));
  }
  const SweepPoint ref = run_fixed(g, pool, m_ref, seed, prof);
  bench::banner("hotspots at m=" + std::to_string(m_ref));
  prof.write_report(std::cout, top);

  std::ostringstream json;
  json << "{\n \"schema\": \"optipar.bench.apps.v1\",\n"
       << " \"app\": \"mis\",\n"
       << " \"graph\": {\"family\": \"rmat\", \"nodes\": " << nodes
       << ", \"avg_degree\": " << d << "},\n"
       << " \"threads\": " << threads << ",\n \"seed\": " << seed << ",\n"
       << " \"curve\": [\n";
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const SweepPoint& p = curve[i];
    json << "  {\"m\": " << p.m << ", \"r\": " << p.r << ", \"rounds\": "
         << p.rounds << ", \"committed\": " << p.committed
         << ", \"top16_share\": " << p.top16_share << "}"
         << (i + 1 < curve.size() ? "," : "") << "\n";
  }
  json << " ],\n \"m_ref\": " << m_ref << ",\n \"ref_r\": " << ref.r
       << ",\n \"total_conflicts\": " << prof.total_conflicts()
       << ",\n \"hotspots\": [\n";
  const auto hot = prof.top_k(top);
  for (std::size_t i = 0; i < hot.size(); ++i) {
    json << "  {\"item\": " << hot[i].item << ", \"conflicts\": "
         << hot[i].conflicts << ", \"arb_wait_ns\": " << hot[i].arb_wait_ns
         << ", \"degree\": " << hot[i].degree << "}"
         << (i + 1 < hot.size() ? "," : "") << "\n";
  }
  json << " ],\n \"degree_buckets\": [\n";
  const auto buckets = prof.degree_buckets();
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const auto& b = buckets[i];
    json << "  {\"degree_lo\": " << b.degree_lo << ", \"degree_hi\": "
         << b.degree_hi << ", \"items\": " << b.items << ", \"conflicts\": "
         << b.conflicts << ", \"arb_wait_ns\": " << b.arb_wait_ns << "}"
         << (i + 1 < buckets.size() ? "," : "") << "\n";
  }
  json << " ]\n}\n";

  if (opt.has("out")) {
    std::ofstream os(opt.get("out", ""));
    if (!os) {
      std::cerr << "apps_bench: cannot open --out=" << opt.get("out", "")
                << "\n";
      return 1;
    }
    os << json.str();
  } else {
    bench::banner("json");
    std::cout << json.str();
  }
  return 0;
}
