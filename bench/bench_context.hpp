// Build-type context for the google-benchmark binaries. The library's own
// "library_build_type" context key describes how the *installed
// libbenchmark* was compiled, not this binary — the checked-in
// BENCH_rt.json of PR 1 was recorded trusting that key, which is why it
// claims "debug" timings. These keys describe the optipar binary itself;
// scripts/run_bench.sh refuses to record BENCH_*.json unless they report a
// Release (NDEBUG) build.
#pragma once

#include <benchmark/benchmark.h>

#ifndef OPTIPAR_BUILD_TYPE
#define OPTIPAR_BUILD_TYPE "unknown"
#endif

namespace optipar::bench {

inline void add_build_context() {
  benchmark::AddCustomContext("optipar_build_type", OPTIPAR_BUILD_TYPE);
#ifdef NDEBUG
  benchmark::AddCustomContext("optipar_ndebug", "1");
#else
  benchmark::AddCustomContext("optipar_ndebug", "0");
#endif
}

}  // namespace optipar::bench

/// BENCHMARK_MAIN() with the build-type context registered first.
#define OPTIPAR_BENCHMARK_MAIN()                                          \
  int main(int argc, char** argv) {                                       \
    optipar::bench::add_build_context();                                  \
    benchmark::Initialize(&argc, argv);                                   \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;     \
    benchmark::RunSpecifiedBenchmarks();                                  \
    benchmark::Shutdown();                                                \
    return 0;                                                             \
  }
