// MODEL-VS-RUNTIME — the validation that justifies DESIGN.md's
// substitution argument: extract the *actual* CC (conflict) graph of a real
// application's work-set, feed it to the paper's model (the Monte-Carlo
// r̄(m) estimator), and compare the prediction against the conflict ratio
// the speculative runtime really observes at the same allocation m.
//
//   * MIS / coloring tasks lock {v} ∪ N(v): their CC graph is the square
//     of the input graph.
//   * A DMR task locks its cavity + boundary ring: the CC graph comes from
//     probe_cavity footprint intersections.
//
// Expected shape: the model tracks the runtime closely; the runtime sits
// slightly above at large m because transiently-held locks of tasks that
// later abort can cascade extra aborts (the model charges only committed
// neighbors).
//
// Usage: model_vs_runtime [--n=800] [--d=8] [--points=250] [--reps=30]
#include <iostream>

#include "apps/dmr/refine.hpp"
#include "apps/mis/mis.hpp"
#include "bench_common.hpp"
#include "graph/algos.hpp"
#include "model/conflict_ratio.hpp"

using namespace optipar;

namespace {

std::vector<dmr::Point2> random_points(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<dmr::Point2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform() * 100.0, rng.uniform() * 100.0});
  }
  return pts;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt(argc, argv);
  const auto n = static_cast<NodeId>(opt.get_int("n", 800));
  const auto d = static_cast<std::uint32_t>(opt.get_int("d", 8));
  const auto points = static_cast<std::size_t>(opt.get_int("points", 250));
  const int reps = static_cast<int>(opt.get_int("reps", 30));
  ThreadPool pool(static_cast<std::size_t>(opt.get_int("threads", 4)));

  // ----------------------------------------------------------- MIS
  bench::banner("MIS on G(n, nd/2): model CC graph = square(G)");
  {
    Rng rng(1);
    const auto g = gen::random_with_average_degree(n, d, rng);
    const auto cc = square(g);
    bench::note("input: n=" + std::to_string(n) + ", d=" +
                std::to_string(g.average_degree()) +
                "; CC graph degree=" + std::to_string(cc.average_degree()));
    const auto predicted = estimate_conflict_curve(cc, 400, rng);

    Table t({"m", "model_r", "runtime_r", "runtime_ci95"});
    for (std::uint32_t m = 4; m <= std::min<NodeId>(n, 512); m *= 2) {
      StreamingStats observed;
      for (int rep = 0; rep < reps; ++rep) {
        mis::MisState state(g.num_nodes());
        SpeculativeExecutor ex(pool, g.num_nodes(),
                               mis::make_mis_operator(g, state),
                               1000 + static_cast<std::uint64_t>(rep) * 17);
        std::vector<TaskId> tasks(g.num_nodes());
        for (NodeId v = 0; v < g.num_nodes(); ++v) tasks[v] = v;
        ex.push_initial(tasks);
        const auto stats = ex.run_round(m);
        observed.add(stats.conflict_ratio());
      }
      t.add_row({static_cast<std::int64_t>(m), predicted.r_bar(m),
                 observed.mean(), observed.ci95()});
    }
    t.print(std::cout);
  }

  // ----------------------------------------------------------- DMR
  bench::banner("DMR: model CC graph = cavity-footprint intersections");
  {
    const auto pts = random_points(points, 7);
    dmr::RefineQuality q;
    q.min_angle_deg = 25.0;
    q.min_edge = 2.0;
    q.set_domain(pts);

    dmr::Mesh probe_mesh;
    dmr::build_delaunay(probe_mesh, pts, 16.0);
    const auto bad = dmr::bad_triangles(probe_mesh, q);
    const auto cc = dmr::refinement_conflict_graph(probe_mesh, q, bad);
    bench::note("work-set: " + std::to_string(bad.size()) +
                " bad triangles; CC degree=" +
                std::to_string(cc.average_degree()));
    Rng rng(2);
    const auto predicted = estimate_conflict_curve(cc, 600, rng);

    Table t({"m", "model_r", "runtime_r", "runtime_ci95"});
    for (std::uint32_t m = 2; m <= cc.num_nodes(); m *= 2) {
      StreamingStats observed;
      for (int rep = 0; rep < std::max(4, reps / 3); ++rep) {
        dmr::Mesh mesh;  // fresh mesh per repetition (rounds mutate it)
        dmr::build_delaunay(mesh, pts, 16.0);
        SpeculativeExecutor ex(pool, mesh.num_triangle_slots(),
                               dmr::make_refine_operator(mesh, q),
                               2000 + static_cast<std::uint64_t>(rep) * 23);
        const auto fresh_bad = dmr::bad_triangles(mesh, q);
        std::vector<TaskId> tasks(fresh_bad.begin(), fresh_bad.end());
        ex.push_initial(tasks);
        const auto stats = ex.run_round(m);
        observed.add(stats.conflict_ratio());
      }
      t.add_row({static_cast<std::int64_t>(m), predicted.r_bar(m),
                 observed.mean(), observed.ci95()});
    }
    t.print(std::cout);
    bench::note(
        "the CC-graph abstraction (Fig. 1) predicts the real runtime's "
        "conflict ratio from structure alone — this is what lets the "
        "paper's controller analysis transfer to real workloads.");
  }
  return 0;
}
