// PERF — google-benchmark micro-benchmarks of the hot kernels: the
// permutation sweep (one full r̄-curve sample), single-round conflict
// evaluation, graph generation, controller decision overhead, speculative
// executor round overhead, and Delaunay construction.
#include <benchmark/benchmark.h>

#include "apps/dmr/delaunay.hpp"
#include "apps/mis/mis.hpp"
#include "bench_context.hpp"
#include "control/hybrid.hpp"
#include "graph/generators.hpp"
#include "model/conflict_ratio.hpp"
#include "model/permutation_sweep.hpp"
#include "rt/spec_executor.hpp"
#include "support/rng.hpp"
#include "support/telemetry/telemetry.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace optipar;

void BM_PermutationSweep(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng rng(1);
  const auto g = gen::random_with_average_degree(n, 16, rng);
  std::vector<NodeId> perm;
  SweepScratch scratch;
  PrefixSweep sweep;
  for (auto _ : state) {
    rng.permutation_into(n, perm);
    sweep_full_permutation(g, perm, scratch, sweep);
    benchmark::DoNotOptimize(sweep.aborts_at_prefix.back());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PermutationSweep)->Arg(500)->Arg(2000)->Arg(8000);

void BM_RoundOutcome(benchmark::State& state) {
  const auto m = static_cast<std::uint32_t>(state.range(0));
  Rng rng(2);
  const auto g = gen::random_with_average_degree(2000, 16, rng);
  Rng::SampleScratch sample_scratch;
  SweepScratch sweep_scratch;
  std::vector<NodeId> active;
  std::vector<std::uint8_t> outcome;
  for (auto _ : state) {
    rng.sample_without_replacement_into(2000, m, sample_scratch, active);
    round_outcome(g, active, sweep_scratch, outcome);
    benchmark::DoNotOptimize(outcome.data());
  }
  state.SetItemsProcessed(state.iterations() * m);
}
BENCHMARK(BM_RoundOutcome)->Arg(16)->Arg(128)->Arg(1024);

void BM_GnmGeneration(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gen::random_with_average_degree(n, 16, rng).num_edges());
  }
}
BENCHMARK(BM_GnmGeneration)->Arg(1000)->Arg(10000);

void BM_UnionOfCliques(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen::union_of_cliques(n, 16).num_edges());
  }
}
BENCHMARK(BM_UnionOfCliques)->Arg(1020)->Arg(10200);

void BM_HybridControllerObserve(benchmark::State& state) {
  ControllerParams p;
  HybridController c(p);
  RoundStats stats;
  stats.launched = 100;
  stats.committed = 75;
  stats.aborted = 25;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.observe(stats));
  }
}
BENCHMARK(BM_HybridControllerObserve);

void BM_ConflictCurveEstimation(benchmark::State& state) {
  Rng rng(4);
  const auto g = gen::random_with_average_degree(2000, 16, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        estimate_conflict_curve(g, 10, rng).r_bar(1000));
  }
}
BENCHMARK(BM_ConflictCurveEstimation);

void BM_ParallelCurveEstimation(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  const auto g = gen::random_with_average_degree(2000, 16, rng);
  ThreadPool pool(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        estimate_conflict_curve_parallel(g, 10, 42, pool).r_bar(1000));
  }
}
BENCHMARK(BM_ParallelCurveEstimation)->Arg(1)->Arg(2)->Arg(4);

void BM_ExecutorRound(benchmark::State& state) {
  const auto m = static_cast<std::uint32_t>(state.range(0));
  ThreadPool pool(2);
  for (auto _ : state) {
    state.PauseTiming();
    SpeculativeExecutor ex(
        pool, 4096,
        [](TaskId t, IterationContext& ctx) {
          ctx.acquire(static_cast<std::uint32_t>(t));
        },
        5);
    std::vector<TaskId> tasks(4096);
    for (TaskId t = 0; t < 4096; ++t) tasks[t] = t;
    ex.push_initial(tasks);
    state.ResumeTiming();
    benchmark::DoNotOptimize(ex.run_round(m).committed);
  }
  state.SetItemsProcessed(state.iterations() * m);
}
BENCHMARK(BM_ExecutorRound)->Arg(16)->Arg(256)->Arg(2048);

// Steady-state round overhead: the executor, its worklist, and its
// iteration contexts are reused across rounds — this is the dispatch path
// an adaptive run loop actually sits in (thousands of rounds per run).
// Every committed task re-pushes itself, so the worklist size is invariant
// and each timed iteration performs one full round of m conflict-free
// tasks.
void BM_SpecExecutorRound(benchmark::State& state) {
  const auto m = static_cast<std::uint32_t>(state.range(0));
  ThreadPool pool(2);
  SpeculativeExecutor ex(
      pool, 4096,
      [](TaskId t, IterationContext& ctx) {
        ctx.acquire(static_cast<std::uint32_t>(t));
        ctx.push(t);  // keep the worklist at steady state
      },
      5);
  std::vector<TaskId> tasks(m);
  for (std::uint32_t t = 0; t < m; ++t) tasks[t] = t;
  ex.push_initial(tasks);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ex.run_round(m).committed);
  }
  state.SetItemsProcessed(state.iterations() * m);
}
BENCHMARK(BM_SpecExecutorRound)->Arg(16)->Arg(256)->Arg(2048);

// The same steady-state round with a RuntimeTelemetry sink attached — the
// enabled-path cost of the per-lane counters, phase clocks, and work
// histogram. scripts/run_bench.sh compares this bench's median against
// BM_SpecExecutorRound's and records the ratio as `telemetry_overhead` in
// BENCH_rt.json (budget: TELEMETRY_OVERHEAD_MAX, DESIGN.md §10).
void BM_SpecExecutorRoundTelemetry(benchmark::State& state) {
  const auto m = static_cast<std::uint32_t>(state.range(0));
  ThreadPool pool(2);
  SpeculativeExecutor ex(
      pool, 4096,
      [](TaskId t, IterationContext& ctx) {
        ctx.acquire(static_cast<std::uint32_t>(t));
        ctx.push(t);  // keep the worklist at steady state
      },
      5);
  telemetry::RuntimeTelemetry tel;
  ex.set_telemetry(&tel);
  std::vector<TaskId> tasks(m);
  for (std::uint32_t t = 0; t < m; ++t) tasks[t] = t;
  ex.push_initial(tasks);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ex.run_round(m).committed);
  }
  state.SetItemsProcessed(state.iterations() * m);
}
BENCHMARK(BM_SpecExecutorRoundTelemetry)->Arg(16)->Arg(256)->Arg(2048);

// Forced two-lane rounds with the overlapped draw on: round t+1's draw +
// conflict pre-check runs during round t's commit epilogue. Reports
// `pipeline_occupancy` — the fraction of epilogue wall time covered by
// the overlapped draw stage (1.0 = the prefetch is fully hidden).
void BM_PipelinedRound(benchmark::State& state) {
  const auto m = static_cast<std::uint32_t>(state.range(0));
  ThreadPool pool(2);
  SpeculativeExecutor ex(
      pool, 4096,
      [](TaskId t, IterationContext& ctx) {
        ctx.acquire(static_cast<std::uint32_t>(t));
        ctx.push(t);  // keep the worklist at steady state
      },
      5);
  ex.set_pipeline({.max_lanes = 2, .overlapped_draw = true});
  std::vector<TaskId> tasks(m);
  for (std::uint32_t t = 0; t < m; ++t) tasks[t] = t;
  ex.push_initial(tasks);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ex.run_round(m).committed);
  }
  state.SetItemsProcessed(state.iterations() * m);
  state.counters["pipeline_occupancy"] = ex.pipeline_stats().occupancy();
}
BENCHMARK(BM_PipelinedRound)->Arg(256)->Arg(2048);

// The branchless SIMD greedy-MIS sweep (gathered neighborhood probe, no
// data-dependent branch) over a fixed permutation.
void BM_GreedyMisSweep(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng rng(8);
  const auto g = gen::random_with_average_degree(n, 16, rng);
  std::vector<NodeId> order;
  rng.permutation_into(n, order);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mis::greedy_sweep(g, order).size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GreedyMisSweep)->Arg(2000)->Arg(8000);

void BM_DelaunayBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  std::vector<dmr::Point2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform() * 100, rng.uniform() * 100});
  }
  for (auto _ : state) {
    dmr::Mesh mesh;
    benchmark::DoNotOptimize(dmr::build_delaunay(mesh, pts, 2.0).size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DelaunayBuild)->Arg(100)->Arg(500);

}  // namespace

OPTIPAR_BENCHMARK_MAIN()
