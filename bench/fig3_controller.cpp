// FIG3 — reproduces Figure 3 of the paper: convergence of the hybrid
// control algorithm vs one that only uses Recurrence A, on two different
// random CC graphs with n = 2000, target ρ = 20%, starting from m0 = 2.
// Expected shape (paper): the hybrid converges close to μ in ~15 temporal
// steps and stays stable; Recurrence A alone crawls.
//
// Usage: fig3_controller [--n=2000] [--d1=16] [--d2=8] [--rho=0.20]
//                        [--steps=120] [--csv=fig3.csv]
#include <iostream>

#include "bench_common.hpp"
#include "model/conflict_ratio.hpp"
#include "support/ascii_plot.hpp"

using namespace optipar;

namespace {

struct Run {
  std::string label;
  Trace trace;
  std::uint32_t mu;
};

Run run_on(const CsrGraph& g, const std::string& controller_name,
           double rho, std::uint32_t steps, std::uint32_t mu,
           std::uint64_t seed) {
  ControllerParams p;
  p.rho = rho;
  p.m0 = 2;
  p.m_max = 4096;
  std::unique_ptr<Controller> controller;
  if (controller_name == "hybrid+warmstart") {
    // Paper §4: with d known, Cor. 3 gives a safe initial allocation.
    controller = std::make_unique<HybridController>(
        with_warm_start(p, g.num_nodes(), g.average_degree()));
  } else {
    controller = bench::make_controller(controller_name, p);
  }
  StationaryWorkload w(g);
  RunLoopConfig cfg;
  cfg.max_steps = steps;
  Rng rng(seed);
  Run run;
  run.label = controller_name;
  run.trace = run_controlled(*controller, w, cfg, rng);
  run.mu = mu;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt(argc, argv);
  const auto n = static_cast<NodeId>(opt.get_int("n", 2000));
  const auto d1 = static_cast<std::uint32_t>(opt.get_int("d1", 16));
  const auto d2 = static_cast<std::uint32_t>(opt.get_int("d2", 8));
  const double rho = opt.get_double("rho", 0.20);
  const auto steps = static_cast<std::uint32_t>(opt.get_int("steps", 120));
  const std::uint64_t seed = opt.get_int("seed", 7);

  bench::banner("Fig. 3 — hybrid vs Recurrence-A-only, n=" +
                std::to_string(n) + ", rho=" + std::to_string(rho));

  Rng rng(seed);
  std::vector<std::pair<std::string, CsrGraph>> graphs;
  graphs.emplace_back("random-d" + std::to_string(d1),
                      gen::random_with_average_degree(n, d1, rng));
  graphs.emplace_back("random-d" + std::to_string(d2),
                      gen::random_with_average_degree(n, d2, rng));

  std::vector<Run> runs;
  bench::PhaseClock phases;
  Table trace_table({"step", "graph", "controller", "m", "r"});
  for (const auto& [gname, g] : graphs) {
    ScopedTimer mu_timer(phases.acc("find-mu"));
    const auto mu = find_mu(g, rho, 300, rng);
    mu_timer.stop();
    bench::note(gname + ": mu(rho) ~= " + std::to_string(mu));
    for (const std::string cname :
         {"hybrid", "recurrence-A", "hybrid+warmstart"}) {
      ScopedTimer run_timer(phases.acc("controller-run"));
      auto run = run_on(g, cname, rho, steps, mu, seed + 1);
      run_timer.stop();
      for (const auto& s : run.trace.steps) {
        if (s.step < 60 || s.step % 10 == 0) {
          trace_table.add_row({static_cast<std::int64_t>(s.step), gname,
                               cname, static_cast<std::int64_t>(s.m),
                               s.conflict_ratio()});
        }
      }
      run.label = gname + "/" + cname;
      runs.push_back(std::move(run));
    }
  }
  trace_table.print(std::cout);

  // Terminal rendering of the m_t trajectories (first graph only).
  {
    AsciiPlot plot(72, 18);
    for (std::size_t i = 0; i < std::min<std::size_t>(2, runs.size()); ++i) {
      std::vector<double> xs, ys;
      for (const auto& s : runs[i].trace.steps) {
        xs.push_back(s.step);
        ys.push_back(s.m);
      }
      plot.add_series(runs[i].label, i == 0 ? '#' : '*', std::move(xs),
                      std::move(ys));
    }
    std::vector<double> mu_x = {0.0, static_cast<double>(steps - 1)};
    std::vector<double> mu_y = {static_cast<double>(runs[0].mu),
                                static_cast<double>(runs[0].mu)};
    plot.add_series("mu", '-', mu_x, mu_y);
    std::cout << "\nm_t vs step (graph 1):\n";
    plot.render(std::cout);
  }

  bench::banner("convergence summary (band: mu ± 30%)");
  Table summary({"run", "mu", "converged_at_step", "steady_mean_r",
                 "steady_rms_m_err", "wasted_fraction"});
  for (const auto& run : runs) {
    const auto s = bench::summarize(run.label, run.trace,
                                    static_cast<double>(run.mu), 0.30);
    summary.add_row({run.label, static_cast<std::int64_t>(run.mu),
                     static_cast<std::int64_t>(
                         static_cast<std::int64_t>(s.convergence_step)),
                     s.mean_ratio_steady, s.rms_error, s.wasted});
  }
  summary.print(std::cout);
  bench::note(
      "paper claim: hybrid reaches the mu neighborhood in ~15 steps from "
      "m0=2; Recurrence A alone is several times slower.");
  phases.report();

  if (opt.has("csv")) {
    trace_table.write_csv(opt.get("csv", "fig3.csv"));
  }
  return 0;
}
