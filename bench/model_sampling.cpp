// PERF — the adaptive-precision estimation engine vs. the fixed-trial
// baseline, measured in the currency that matters on a single-CPU host:
// permutation sweeps (and wall-clock) spent to pin every r̄(m) down to a
// 95% CI half-width of epsilon.
//
//   BM_SweepsToEpsilon/plain/*    — stopping rule only (no antithetic, no
//       control variates). This is exactly the sweep count a fixed-trial
//       user must budget to certify the same precision, so it is the
//       baseline the "sweeps" counters compare against.
//   BM_SweepsToEpsilon/adaptive/* — full engine (antithetic pairs +
//       clique-component control variates).
//   BM_SweepThroughput/*          — raw sweep cost on a power-law R-MAT
//       graph under none/bfs/degree relabeling (cache locality of the CSR
//       traversal; statistics are label-invariant).
//   BM_OperatingPoint             — the sim layer's adaptive μ(ρ) search.
//
// scripts/run_bench.sh records this binary into BENCH_model.json and
// enforces the >= 2x adaptive-vs-plain sweep reduction sentinel on the
// clique-structured workloads.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "bench_context.hpp"
#include "graph/generators.hpp"
#include "graph/relabel.hpp"
#include "model/adaptive_estimator.hpp"
#include "model/permutation_sweep.hpp"
#include "sim/run_loop.hpp"
#include "support/rng.hpp"

namespace {

using namespace optipar;

constexpr double kEpsilon = 0.005;
constexpr std::uint64_t kSeed = 2026;

/// Workload graphs, built once per process.
const CsrGraph& named_graph(const std::string& name) {
  static const CsrGraph gnm = [] {
    Rng rng(11);
    return gen::random_with_average_degree(2000, 16, rng);
  }();
  static const CsrGraph cliques = gen::union_of_cliques(2040, 16);
  static const CsrGraph mix =
      bench::cliques_and_isolated_with_degree(2000, 16, 20);
  static const CsrGraph rmat = [] {
    Rng rng(13);
    return gen::rmat(100000, 800000, 0.55, 0.15, 0.15, rng);
  }();
  if (name == "gnm") return gnm;
  if (name == "cliques") return cliques;
  if (name == "mix") return mix;
  if (name == "rmat") return rmat;
  throw std::invalid_argument("named_graph: " + name);
}

AdaptiveConfig engine_config(bool full) {
  AdaptiveConfig cfg;
  cfg.epsilon = kEpsilon;
  cfg.antithetic = full;
  cfg.control_variates = full;
  return cfg;
}

void BM_SweepsToEpsilon(benchmark::State& state, const char* graph_name,
                        bool full) {
  const CsrGraph& g = named_graph(graph_name);
  const AdaptiveConfig cfg = engine_config(full);
  std::uint32_t sweeps = 0;
  bool converged = false;
  double worst_ci = 0.0;
  for (auto _ : state) {
    const auto result = estimate_conflict_curve_adaptive(g, cfg, kSeed);
    sweeps = result.sweeps;
    converged = result.converged;
    worst_ci = result.worst_ci;
    benchmark::DoNotOptimize(result.curve.abort_stats.data());
  }
  state.counters["sweeps"] = sweeps;
  state.counters["converged"] = converged ? 1 : 0;
  state.counters["worst_ci"] = worst_ci;
}

BENCHMARK_CAPTURE(BM_SweepsToEpsilon, plain_gnm, "gnm", false);
BENCHMARK_CAPTURE(BM_SweepsToEpsilon, adaptive_gnm, "gnm", true);
BENCHMARK_CAPTURE(BM_SweepsToEpsilon, plain_cliques, "cliques", false);
BENCHMARK_CAPTURE(BM_SweepsToEpsilon, adaptive_cliques, "cliques", true);
BENCHMARK_CAPTURE(BM_SweepsToEpsilon, plain_mix, "mix", false);
BENCHMARK_CAPTURE(BM_SweepsToEpsilon, adaptive_mix, "mix", true);

void BM_SweepThroughput(benchmark::State& state, RelabelOrder order) {
  const CsrGraph& base = named_graph("rmat");
  const CsrGraph g =
      order == RelabelOrder::kNone ? base : relabel(base, order).graph;
  Rng rng(17);
  std::vector<NodeId> perm;
  SweepScratch scratch;
  PrefixSweep sweep;
  for (auto _ : state) {
    rng.permutation_into(g.num_nodes(), perm);
    sweep_full_permutation(g, perm, scratch, sweep);
    benchmark::DoNotOptimize(sweep.aborts_at_prefix.back());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(g.num_nodes() + 2 * g.num_edges()));
}

BENCHMARK_CAPTURE(BM_SweepThroughput, rmat_none, RelabelOrder::kNone);
BENCHMARK_CAPTURE(BM_SweepThroughput, rmat_bfs, RelabelOrder::kBfs);
BENCHMARK_CAPTURE(BM_SweepThroughput, rmat_degree, RelabelOrder::kDegree);

void BM_OperatingPoint(benchmark::State& state) {
  const CsrGraph& g = named_graph("gnm");
  AdaptiveConfig cfg = engine_config(true);
  cfg.epsilon = 0.01;  // μ only needs the curve near rho
  std::uint32_t sweeps = 0;
  for (auto _ : state) {
    const auto op = find_operating_point(g, 0.25, cfg, kSeed);
    sweeps = op.sweeps;
    benchmark::DoNotOptimize(op.mu);
  }
  state.counters["sweeps"] = sweeps;
}

BENCHMARK(BM_OperatingPoint);

void BM_RoundPointAdaptive(benchmark::State& state, bool full) {
  const CsrGraph& g = named_graph("mix");
  const AdaptiveConfig cfg = engine_config(full);
  std::uint32_t rounds = 0;
  for (auto _ : state) {
    const auto est = estimate_round_point_adaptive(g, 250, cfg, kSeed);
    rounds = est.rounds;
    benchmark::DoNotOptimize(est.r.mean());
  }
  state.counters["rounds"] = rounds;
}

BENCHMARK_CAPTURE(BM_RoundPointAdaptive, plain, false);
BENCHMARK_CAPTURE(BM_RoundPointAdaptive, adaptive, true);

}  // namespace

OPTIPAR_BENCHMARK_MAIN()
