// T-PROP1 / T-PROP2 / T-THM23 / EX1 — numerical validation of every
// theoretical statement in the paper against Monte-Carlo measurement:
//   Prop. 1  r̄(m) non-decreasing
//   Prop. 2  Δr̄(1) = d/(2(n−1)) across structurally different graphs
//   Thm. 1   Turán: E[greedy MIS] >= n/(d+1)
//   Thm. 2   EM_m(G) >= b_m(G) >= EM_m(K_d^n)
//   Thm. 3   exact EM_m(K_d^n) vs measurement
//   Cor. 2/3 bound approximations
//   Ex. 1    K_{n²} ⊎ D_n: max IS = n+1 but ~2 committed
//   plus the unfriendly-seating exact solvers (paths, cycles, grid [11]).
//
// Usage: validate_theory [--trials=3000] [--seed=1]
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "graph/algos.hpp"
#include "model/conflict_ratio.hpp"
#include "model/seating.hpp"
#include "model/theory.hpp"

using namespace optipar;

int main(int argc, char** argv) {
  const Options opt(argc, argv);
  const auto trials = static_cast<std::uint32_t>(opt.get_int("trials", 3000));
  Rng rng(opt.get_int("seed", 1));
  int failures = 0;
  auto verdict = [&](bool ok) {
    if (!ok) ++failures;
    return std::string(ok ? "OK" : "VIOLATED");
  };

  // ---------------------------------------------------------- Prop. 1
  bench::banner("Prop. 1 — r̄(m) is non-decreasing");
  {
    Table t({"graph", "n", "d", "max_negative_step", "verdict"});
    struct Case {
      std::string name;
      CsrGraph g;
    };
    std::vector<Case> cases;
    cases.push_back({"gnm", gen::random_with_average_degree(400, 10, rng)});
    cases.push_back({"cliques", gen::union_of_cliques(400, 9)});
    cases.push_back({"grid", gen::grid_2d(20, 20)});
    cases.push_back({"rmat", gen::rmat(400, 2000, 0.55, 0.15, 0.15, rng)});
    for (const auto& c : cases) {
      const auto curve = estimate_conflict_curve(c.g, trials, rng);
      double worst = 0.0;
      for (std::uint32_t m = 1; m < c.g.num_nodes(); ++m) {
        worst = std::min(worst, curve.r_bar(m + 1) - curve.r_bar(m));
      }
      const bool ok = worst > -0.02;  // MC noise tolerance
      t.add_row({c.name, static_cast<std::int64_t>(c.g.num_nodes()),
                 c.g.average_degree(), worst, verdict(ok)});
    }
    t.print(std::cout);
  }

  // ---------------------------------------------------------- Prop. 2
  bench::banner("Prop. 2 — initial derivative d/(2(n-1)) for any structure");
  {
    Table t({"graph", "predicted", "measured", "verdict"});
    struct Case {
      std::string name;
      CsrGraph g;
    };
    std::vector<Case> cases;
    cases.push_back({"gnm", gen::random_with_average_degree(300, 12, rng)});
    cases.push_back({"star", gen::star(299)});
    cases.push_back({"cliques", gen::union_of_cliques(300, 11)});
    cases.push_back({"path", gen::path(300)});
    for (const auto& c : cases) {
      const auto curve = estimate_conflict_curve(c.g, 20000, rng);
      const double pred = theory::initial_derivative(c.g.num_nodes(),
                                                     c.g.average_degree());
      const double meas = curve.r_bar(2) - curve.r_bar(1);
      t.add_row({c.name, pred, meas,
                 verdict(std::abs(meas - pred) <
                         5 * curve.r_bar_ci95(2) + 1e-4)});
    }
    t.print(std::cout);
  }

  // ------------------------------------------------- Thm. 1 (Turán)
  bench::banner("Thm. 1 — Turán: E[random-greedy MIS] >= n/(d+1)");
  {
    Table t({"graph", "turan_bound", "measured_mis", "verdict"});
    struct Case {
      std::string name;
      CsrGraph g;
    };
    std::vector<Case> cases;
    cases.push_back({"gnm", gen::random_with_average_degree(300, 8, rng)});
    cases.push_back({"cliques(tight)", gen::union_of_cliques(300, 9)});
    cases.push_back({"torus", gen::torus_2d(15, 20)});
    for (const auto& c : cases) {
      const auto mis = seating::estimate(c.g, trials / 4, rng);
      const double bound =
          theory::turan_bound(c.g.num_nodes(), c.g.average_degree());
      t.add_row({c.name, bound, mis.mean(),
                 verdict(mis.mean() >= bound - 3 * mis.ci95())});
    }
    t.print(std::cout);
  }

  // ------------------------------------------------------- Thm. 2 / 3
  bench::banner("Thm. 2/3 — EM_m(G) >= b_m(G) >= EM_m(K_d^n), exact worst case");
  {
    const std::uint32_t n = 300, d = 9;
    const auto g = gen::random_with_average_degree(n, d, rng);
    const auto kdn = gen::union_of_cliques(n, d);
    Table t({"m", "EM_random(MC)", "b_m(random)", "EM_Kdn(exact)",
             "EM_Kdn(MC)", "ordering", "exactness"});
    for (const std::uint32_t m : {10u, 30u, 75u, 150u, 300u}) {
      const auto em_g = estimate_committed_at(g, m, trials, rng);
      const auto em_k = estimate_committed_at(kdn, m, trials, rng);
      const double bm = theory::b_m(g, m);
      const double exact = theory::em_union_of_cliques(n, d, m);
      const bool order_ok = em_g.mean() + 3 * em_g.ci95() >= bm &&
                            bm >= exact - 1e-9;
      const bool exact_ok = std::abs(em_k.mean() - exact) <
                            4 * em_k.ci95() + 1e-6;
      t.add_row({static_cast<std::int64_t>(m), em_g.mean(), bm, exact,
                 em_k.mean(), verdict(order_ok), verdict(exact_ok)});
    }
    t.print(std::cout);
  }

  // ---------------------------------------------------------- Cor. 3
  bench::banner("Cor. 3 — alpha-parameterized bound and its d->inf limit");
  {
    Table t({"alpha", "bound_d16", "bound_limit", "dominates"});
    for (const double alpha : {0.25, 0.5, 1.0, 2.0, 4.0}) {
      const double b16 = theory::conflict_ratio_bound_alpha(alpha, 16);
      const double blim = theory::conflict_ratio_bound_alpha_limit(alpha);
      t.add_row({alpha, b16, blim, verdict(b16 <= blim + 1e-12)});
    }
    t.print(std::cout);
    std::cout << "alpha=0.5 limit bound (paper's 21.3% claim): "
              << theory::conflict_ratio_bound_alpha_limit(0.5) << "\n";
  }

  // --------------------------------------------------------- Example 1
  bench::banner("Example 1 — K_{n^2} u D_n: max IS = n+1 yet ~2 committed");
  {
    Table t({"n", "launched(m=n+1)", "max_IS", "measured_committed",
             "verdict(~2)"});
    for (const std::uint32_t n : {8u, 12u, 16u}) {
      const auto g = gen::clique_plus_isolated(n * n, n);
      const auto em = estimate_committed_at(g, n + 1, trials * 4, rng);
      t.add_row({static_cast<std::int64_t>(n),
                 static_cast<std::int64_t>(n + 1),
                 static_cast<std::int64_t>(n + 1), em.mean(),
                 verdict(std::abs(em.mean() - 2.0) < 0.25)});
    }
    t.print(std::cout);
  }

  // ----------------------------------------------- unfriendly seating
  bench::banner("Unfriendly seating — exact DP vs Monte-Carlo");
  {
    Table t({"graph", "exact/ref", "monte_carlo", "verdict"});
    const auto path_mc = seating::estimate(gen::path(100), trials, rng);
    t.add_row({"path(100)", seating::expected_path(100), path_mc.mean(),
               verdict(std::abs(path_mc.mean() - seating::expected_path(100)) <
                       4 * path_mc.ci95())});
    const auto cyc_mc = seating::estimate(gen::cycle(100), trials, rng);
    t.add_row({"cycle(100)", seating::expected_cycle(100), cyc_mc.mean(),
               verdict(std::abs(cyc_mc.mean() - seating::expected_cycle(100)) <
                       4 * cyc_mc.ci95())});
    const auto grid_mc = seating::estimate(gen::grid_2d(30, 30), trials / 4,
                                           rng);
    t.add_row({"grid(30x30) density", 0.3641, grid_mc.mean() / 900.0,
               verdict(std::abs(grid_mc.mean() / 900.0 - 0.3641) < 0.02)});
    t.add_row({"path density limit", (1 - std::exp(-2.0)) / 2,
               seating::expected_path(20000) / 20000.0,
               verdict(std::abs(seating::expected_path(20000) / 20000.0 -
                                seating::path_density_limit()) < 1e-3)});
    t.print(std::cout);
  }

  bench::banner(failures == 0 ? "ALL CHECKS PASSED"
                              : std::to_string(failures) + " CHECKS FAILED");
  return failures == 0 ? 0 : 1;
}
