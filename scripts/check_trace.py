#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON document exported by --trace-chrome.

Usage:
    check_trace.py [trace.json]

Reads the trace document from the given path (or stdin when omitted) and
enforces the strict subset of the trace-event format that
SpanCollector::export_chrome promises (DESIGN.md §15):

  * the document is {"traceEvents": [...]} and every event carries a
    string name, a phase in {B, E, X, i, M}, and non-negative integer
    pid/tid;
  * every non-metadata event carries a non-negative numeric ts, and the ts
    sequence is nondecreasing over the whole document (the repair pass
    stable-sorts before emitting);
  * per (pid, tid), B/E events obey stack discipline — each E closes the
    most recent open B of the same name, and no span is left open at the
    end of the document (orphans must have been repaired, not emitted);
  * instant events carry a scope "s" in {t, p, g};
  * the pid/tid population is sane: at least one event, and few enough
    distinct threads that a lane id was not garbage (≤ 4096).

Exit status 0 on success, 1 with a diagnostic per violation otherwise.
"""

import json
import sys

KNOWN_PHASES = {"B", "E", "X", "i", "M"}
MAX_DISTINCT_TIDS = 4096


def check_events(events, errors):
    stacks = {}  # (pid, tid) -> [name, ...]
    tids = set()
    last_ts = None
    for i, ev in enumerate(events):
        where = f"event {i}"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        name = ev.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: missing or empty name")
            name = "?"
        ph = ev.get("ph")
        if ph not in KNOWN_PHASES:
            errors.append(f"{where} ({name}): unknown phase {ph!r}")
            continue
        pid, tid = ev.get("pid"), ev.get("tid")
        for label, val in (("pid", pid), ("tid", tid)):
            if not isinstance(val, int) or isinstance(val, bool) or val < 0:
                errors.append(f"{where} ({name}): {label} {val!r} is not a "
                              "non-negative integer")
        if isinstance(tid, int):
            tids.add((pid, tid))
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"{where} ({name}): ts {ts!r} is not a "
                          "non-negative number")
            continue
        if last_ts is not None and ts < last_ts:
            errors.append(f"{where} ({name}): ts {ts} < previous {last_ts} "
                          "(events must be sorted)")
        last_ts = ts
        key = (pid, tid)
        if ph == "B":
            stacks.setdefault(key, []).append(name)
        elif ph == "E":
            stack = stacks.get(key, [])
            if not stack:
                errors.append(f"{where} ({name}): E without an open B on "
                              f"pid={pid} tid={tid}")
            elif stack[-1] != name:
                errors.append(f"{where}: E ({name}) does not close the "
                              f"open span ({stack[-1]}) on pid={pid} "
                              f"tid={tid}")
            else:
                stack.pop()
        elif ph == "i":
            if ev.get("s") not in {"t", "p", "g"}:
                errors.append(f"{where} ({name}): instant scope "
                              f"{ev.get('s')!r} not in {{t, p, g}}")
    for (pid, tid), stack in stacks.items():
        for name in stack:
            errors.append(f"span {name!r} on pid={pid} tid={tid} is never "
                          "closed")
    if not events:
        errors.append("traceEvents is empty")
    if len(tids) > MAX_DISTINCT_TIDS:
        errors.append(f"{len(tids)} distinct (pid, tid) pairs — lane ids "
                      "look corrupt")
    return len(tids)


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "-"
    if path in ("-h", "--help"):
        print(__doc__)
        return 0
    errors = []
    try:
        if path == "-":
            doc = json.load(sys.stdin)
        else:
            with open(path, encoding="utf-8") as fh:
                doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_trace: cannot parse {path}: {e}", file=sys.stderr)
        return 1
    events = doc.get("traceEvents") if isinstance(doc, dict) else None
    if not isinstance(events, list):
        print("check_trace: document has no traceEvents list",
              file=sys.stderr)
        return 1
    threads = check_events(events, errors)
    if errors:
        for e in errors:
            print(f"check_trace: {e}", file=sys.stderr)
        return 1
    print(f"check_trace: OK ({len(events)} events, {threads} threads)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
