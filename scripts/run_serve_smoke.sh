#!/usr/bin/env bash
# Kill-and-resume smoke test for the optipar_serve daemon (DESIGN.md §13).
# Starts the daemon at one lane, uploads a graph, submits a job, SIGKILLs
# the daemon mid-job, restarts it on the same state dir, and asserts the
# crash-recovery contract: the job is re-admitted from the jobs WAL,
# resumes from its newest valid checkpoint, and finishes with per-round
# trace lines byte-identical to the same spec run uninterrupted through
# `optipar_cli run --threads=1`. Also soaks admission: a submission burst
# against a capacity-1 queue must shed the surplus with typed kOverloaded
# (exit 7) while health keeps answering.
# Usage: scripts/run_serve_smoke.sh [path-to-build-dir]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"
SERVE="$BUILD/tools/optipar_serve"
CLI="$BUILD/tools/optipar_cli"
for bin in "$SERVE" "$CLI"; do
  if [[ ! -x "$bin" ]]; then
    echo "run_serve_smoke: $bin not found; build first" >&2
    exit 2
  fi
done

WORK="$(mktemp -d /tmp/optipar_serve.XXXXXX)"
SOCK="$WORK/d.sock"
STATE="$WORK/state"
SERVER_PID=""
cleanup() {
  [[ -n "$SERVER_PID" ]] && kill -9 "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

status=0
fail() {
  echo "run_serve_smoke: FAIL: $*" >&2
  status=1
}

S="--socket=$SOCK"
IO="--io-timeout-ms=30000"

start_daemon() {  # extra serve flags in "$@"
  "$SERVE" serve "$S" --state-dir="$STATE" --threads=1 \
           --checkpoint-every=2 "$@" >"$WORK/serve.log" 2>&1 &
  SERVER_PID=$!
  for _ in $(seq 1 100); do
    [[ -S "$SOCK" ]] && "$SERVE" health "$S" "$IO" >/dev/null 2>&1 && return 0
    sleep 0.05
  done
  fail "daemon did not come up (log: $(tail -1 "$WORK/serve.log" 2>/dev/null))"
  return 1
}

rounds_of() { grep '"type":"round"' "$1" || true; }

# Dense-conflict clique union: enough rounds at one lane that a mid-job
# SIGKILL lands while the job is genuinely in flight.
"$CLI" gen --family=cliques --n=10200 --d=50 --seed=9 --out="$WORK/big.txt" \
  >/dev/null

# --- 1. Reference: the same spec through the one-shot CLI. -----------------
"$CLI" run --graph="$WORK/big.txt" --threads=1 --seed=21 \
       --trace-out="$WORK/ref.jsonl" >/dev/null
rounds_of "$WORK/ref.jsonl" >"$WORK/ref.rounds"
[[ -s "$WORK/ref.rounds" ]] || fail "reference run produced no rounds"

# --- 2. Start, upload, submit, SIGKILL mid-job. ----------------------------
start_daemon
"$SERVE" upload "$S" "$IO" --name=big --graph="$WORK/big.txt" >/dev/null
# --verify rides in the job spec, survives the WAL, and must still hold
# after the kill-and-resume below.
"$SERVE" run "$S" "$IO" --graph=big --seed=21 --verify >/dev/null

# Wait until the job is running with at least one checkpointable round done,
# then kill -9 — no destructors, no goodbye.
for _ in $(seq 1 400); do
  st="$("$SERVE" status "$S" "$IO" --job=1 2>/dev/null || true)"
  [[ "$st" == *"state=running"* && "$st" != *"rounds=0 "* ]] && break
  [[ "$st" == *"state=done"* ]] && fail "job finished before the kill" && break
  sleep 0.01
done
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

# --- 3. Restart: the WAL re-admits the job, the checkpoint resumes it. -----
start_daemon
grep -q "recovered=1" "$WORK/serve.log" \
  || fail "restarted daemon did not re-admit the killed job from the WAL"

final="$("$SERVE" status "$S" "$IO" --job=1)"
for _ in $(seq 1 600); do
  final="$("$SERVE" status "$S" "$IO" --job=1)"
  [[ "$final" == *"state=done"* ]] && break
  sleep 0.05
done
[[ "$final" == *"state=done"* ]] || fail "resumed job never finished: $final"
[[ "$final" == *"resumed=1"* ]] \
  || fail "job finished without resuming from the checkpoint: $final"
[[ "$final" == *'verified=1 cert="ok"'* ]] \
  || fail "resumed job lost or refuted its certificate: $final"

"$SERVE" trace "$S" "$IO" --job=1 --out="$WORK/res.jsonl"
rounds_of "$WORK/res.jsonl" >"$WORK/res.rounds"
if cmp -s "$WORK/ref.rounds" "$WORK/res.rounds"; then
  echo "run_serve_smoke: kill -9 resume byte-identical to the CLI reference"
else
  fail "resumed trace differs from the uninterrupted reference"
fi

"$SERVE" shutdown "$S" "$IO" >/dev/null
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

# --- 4. Overload soak: surplus submissions shed with typed exit 7. ---------
rm -rf "$STATE"
start_daemon --capacity=1 --max-active=1
"$SERVE" upload "$S" "$IO" --name=big --graph="$WORK/big.txt" >/dev/null
accepted=0
overloaded=0
for i in $(seq 1 8); do
  set +e
  "$SERVE" run "$S" "$IO" --graph=big --seed="$i" >/dev/null 2>&1
  rc=$?
  set -e
  case "$rc" in
    0) accepted=$((accepted + 1)) ;;
    7) overloaded=$((overloaded + 1)) ;;
    *) fail "burst submission $i: unexpected exit $rc" ;;
  esac
done
[[ "$accepted" -ge 1 ]] || fail "burst: nothing admitted"
[[ "$overloaded" -ge 1 ]] || fail "burst: capacity bound never shed load"
"$SERVE" health "$S" "$IO" >/dev/null \
  || fail "daemon stopped answering health while saturated"
echo "run_serve_smoke: burst accepted=$accepted overloaded=$overloaded," \
     "health answered throughout"

"$SERVE" shutdown "$S" "$IO" >/dev/null
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

# --- 5. Certified jobs on every scheduler backend. -------------------------
# Small graph; each backend's verified job must finish done with an intact
# certificate, and the daemon-wide attestation counters must add up.
"$CLI" gen --family=cliques --n=360 --d=5 --seed=9 --out="$WORK/small.txt" \
  >/dev/null
rm -rf "$STATE"
start_daemon
"$SERVE" upload "$S" "$IO" --name=small --graph="$WORK/small.txt" >/dev/null
for sched in random chromatic relaxed; do
  set +e
  out="$("$SERVE" run "$S" "$IO" --graph=small --seed=5 \
               --scheduler="$sched" --verify --wait 2>&1)"
  rc=$?
  set -e
  [[ "$rc" -eq 0 ]] || fail "$sched: verified job exited $rc: $out"
  [[ "$out" == *"state=done"* ]] || fail "$sched: job not done: $out"
  [[ "$out" == *'verified=1 cert="ok"'* ]] \
    || fail "$sched: certificate missing or refuted: $out"
done
info="$("$SERVE" server-status "$S" "$IO")"
[[ "$info" == *"certified=3"* && "$info" == *"cert_failed=0"* ]] \
  || fail "server-status attestation counters wrong: $info"
echo "run_serve_smoke: all three backends certified, counters reconcile"

"$SERVE" shutdown "$S" "$IO" >/dev/null
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

if [[ $status -eq 0 ]]; then
  echo "run_serve_smoke: all serve invariants hold"
fi
exit $status
