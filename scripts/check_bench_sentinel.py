#!/usr/bin/env python3
"""Bench sentinel: assert the steady-state executor round stayed fast.

Reads a google-benchmark JSON artifact (BENCH_rt.json or a raw
--benchmark_format=json capture) and fails unless the
BM_SpecExecutorRound/2048 median is at least --min-speedup times faster
than --baseline-ns (the pre-pipelining median recorded when the software-
pipelined executor landed; see EXPERIMENTS.md).

With --sched, instead validates the scheduler head-to-head section
(DESIGN.md §14): every workload's chromatic cell must have zero aborts
and a correct answer, and on the conflict-dense coloring workloads its
time-to-solution must be at most --sched-slack times the random draw's.
Accepts either BENCH_rt.json (reads "sched_compare") or a raw `sched_compare --out` capture (reads "workloads" at top level).

Usage:
  scripts/check_bench_sentinel.py BENCH_rt.json \
      --baseline-ns 145476.2 --min-speedup 1.5
  scripts/check_bench_sentinel.py sched.json --sched [--sched-slack 1.0]
"""

import argparse
import json
import sys

BENCH = "BM_SpecExecutorRound/2048"


def median_real_time(doc, run_name):
    """The bench's median real_time: the 'median' aggregate when
    repetitions were aggregated, else the median of plain iterations."""
    times = []
    for b in doc.get("benchmarks", []):
        name = b.get("run_name", b.get("name", ""))
        if name != run_name or "real_time" not in b:
            continue
        agg = b.get("aggregate_name")
        if agg == "median":
            return float(b["real_time"])
        if agg is None and b.get("run_type", "iteration") == "iteration":
            times.append(float(b["real_time"]))
    if times:
        return sorted(times)[len(times) // 2]
    return None


def check_sched(doc, artifact, slack):
    """The chromatic sentinel over a sched_compare section."""
    workloads = doc.get("sched_compare", doc).get("workloads")
    if not workloads:
        sys.exit(f"check_bench_sentinel: no sched_compare workloads "
                 f"in {artifact}")
    failures = []
    for wl, cells in sorted(workloads.items()):
        chromatic, random_ = cells.get("chromatic"), cells.get("random")
        if not chromatic or not random_:
            failures.append(f"{wl}: missing backend cell")
            continue
        ratio = (random_["time_ms"] / chromatic["time_ms"]
                 if chromatic["time_ms"] else float("inf"))
        print(f"{wl}: random {random_['time_ms']:.1f} ms "
              f"(aborted {random_['aborted']}) vs chromatic "
              f"{chromatic['time_ms']:.1f} ms "
              f"(aborted {chromatic['aborted']}) — {ratio:.2f}x")
        if chromatic["aborted"] != 0:
            failures.append(f"{wl}: chromatic aborted "
                            f"{chromatic['aborted']} tasks (must be 0)")
        # tts is gated on the conflict-dense coloring workloads only; on
        # moderate-conflict MIS chromatic is round-bound (one color class
        # per round) and tts is recorded but not a contract.
        if (wl.endswith("-coloring") and
                chromatic["time_ms"] > random_["time_ms"] * slack):
            failures.append(f"{wl}: chromatic tts exceeds random x {slack}")
        for name, cell in cells.items():
            if not cell.get("correct", False):
                failures.append(f"{wl}/{name}: incorrect answer")
    if failures:
        sys.exit("check_bench_sentinel: chromatic sentinel tripped:\n  "
                 + "\n  ".join(failures))


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("artifact", help="google-benchmark JSON file")
    ap.add_argument("--baseline-ns", type=float,
                    help="pre-change median real_time in nanoseconds")
    ap.add_argument("--min-speedup", type=float, default=1.5,
                    help="required baseline/current ratio (default 1.5)")
    ap.add_argument("--bench", default=BENCH,
                    help=f"benchmark run name (default {BENCH})")
    ap.add_argument("--sched", action="store_true",
                    help="validate the sched_compare chromatic sentinel "
                         "instead of the executor-round speedup floor")
    ap.add_argument("--sched-slack", type=float, default=1.0,
                    help="allowed chromatic/random tts ratio (default 1.0)")
    args = ap.parse_args()

    with open(args.artifact) as f:
        doc = json.load(f)
    if args.sched:
        check_sched(doc, args.artifact, args.sched_slack)
        return
    if args.baseline_ns is None:
        ap.error("--baseline-ns is required without --sched")
    current = median_real_time(doc, args.bench)
    if current is None:
        sys.exit(f"check_bench_sentinel: no median for {args.bench!r} "
                 f"in {args.artifact}")
    speedup = args.baseline_ns / current
    print(f"{args.bench}: {args.baseline_ns:.0f} ns -> {current:.0f} ns "
          f"({speedup:.2f}x, floor {args.min_speedup:.2f}x)")
    if speedup < args.min_speedup:
        sys.exit(f"check_bench_sentinel: {args.bench} regressed — "
                 f"{speedup:.2f}x vs the {args.baseline_ns:.0f} ns baseline "
                 f"is below the {args.min_speedup:.2f}x floor")


if __name__ == "__main__":
    main()
