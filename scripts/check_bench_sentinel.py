#!/usr/bin/env python3
"""Bench sentinel: assert the steady-state executor round stayed fast.

Reads a google-benchmark JSON artifact (BENCH_rt.json or a raw
--benchmark_format=json capture) and fails unless the
BM_SpecExecutorRound/2048 median is at least --min-speedup times faster
than --baseline-ns (the pre-pipelining median recorded when the software-
pipelined executor landed; see EXPERIMENTS.md).

Usage:
  scripts/check_bench_sentinel.py BENCH_rt.json \
      --baseline-ns 145476.2 --min-speedup 1.5
"""

import argparse
import json
import sys

BENCH = "BM_SpecExecutorRound/2048"


def median_real_time(doc, run_name):
    """The bench's median real_time: the 'median' aggregate when
    repetitions were aggregated, else the median of plain iterations."""
    times = []
    for b in doc.get("benchmarks", []):
        name = b.get("run_name", b.get("name", ""))
        if name != run_name or "real_time" not in b:
            continue
        agg = b.get("aggregate_name")
        if agg == "median":
            return float(b["real_time"])
        if agg is None and b.get("run_type", "iteration") == "iteration":
            times.append(float(b["real_time"]))
    if times:
        return sorted(times)[len(times) // 2]
    return None


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("artifact", help="google-benchmark JSON file")
    ap.add_argument("--baseline-ns", type=float, required=True,
                    help="pre-change median real_time in nanoseconds")
    ap.add_argument("--min-speedup", type=float, default=1.5,
                    help="required baseline/current ratio (default 1.5)")
    ap.add_argument("--bench", default=BENCH,
                    help=f"benchmark run name (default {BENCH})")
    args = ap.parse_args()

    with open(args.artifact) as f:
        doc = json.load(f)
    current = median_real_time(doc, args.bench)
    if current is None:
        sys.exit(f"check_bench_sentinel: no median for {args.bench!r} "
                 f"in {args.artifact}")
    speedup = args.baseline_ns / current
    print(f"{args.bench}: {args.baseline_ns:.0f} ns -> {current:.0f} ns "
          f"({speedup:.2f}x, floor {args.min_speedup:.2f}x)")
    if speedup < args.min_speedup:
        sys.exit(f"check_bench_sentinel: {args.bench} regressed — "
                 f"{speedup:.2f}x vs the {args.baseline_ns:.0f} ns baseline "
                 f"is below the {args.min_speedup:.2f}x floor")


if __name__ == "__main__":
    main()
