#!/usr/bin/env python3
"""Validate an optipar metrics export and (optionally) a trace JSONL file.

Usage:
    check_metrics.py [metrics.json] [--trace trace.jsonl]

Reads the metrics JSON document from the given path (or stdin when omitted)
and enforces:

  * the document schema is "optipar.metrics.v1" or "optipar.metrics.v2"
    with well-formed families (optipar_-prefixed names, known types,
    list-of-samples shape);
  * histogram samples are cumulative, end with the "+Inf" bucket, and their
    count equals the +Inf count;
  * v2 quantile-summary families (*_quantile_seconds) carry a "quantile"
    label on every sample with a value in (0, 1);
  * the reconciliation invariant of DESIGN.md §10 — wherever both a per-lane
    family and its executor-side total are present, the sum over lanes
    equals the total exactly (committed, aborted, retried, quarantined, and
    lane-executed vs launched).

With --trace, additionally checks every JSONL line is one of the known
record types ({"type":"round"|"event"|"trace_summary"}) with its required
fields, and that the trace_summary totals equal the sums over round lines.

Exit status 0 on success, 1 with a diagnostic per violation otherwise.
"""

import argparse
import json
import sys

KNOWN_TYPES = {"counter", "gauge", "histogram"}

# v2 is additive over v1: histogram families may carry quantile-summary
# gauge companions, and serve exports per-job latency histogram families.
KNOWN_SCHEMAS = {"optipar.metrics.v1", "optipar.metrics.v2"}

EVENT_KINDS = {
    "round_start", "round_end", "controller_decision", "retry",
    "quarantine", "fault_fired", "lane_death", "watchdog_degrade",
    "serial_degrade", "livelock", "error", "checkpoint", "recovery",
    "certify",
}

ROUND_FIELDS = {
    "step", "m", "launched", "committed", "aborted", "retried",
    "quarantined", "injected", "pending_after", "r", "degraded",
}

# per-lane family -> (executor-total family, checkpoint-restored family).
# A resumed run's executor totals include work done by pre-crash processes
# (DESIGN.md §11), exported separately as optipar_restored_*_total, so the
# invariant is sum(lanes) + restored == total (restored is 0 when absent).
RECONCILE = {
    "optipar_lane_committed_total":
        ("optipar_committed_total", "optipar_restored_committed_total"),
    "optipar_lane_aborted_total":
        ("optipar_aborted_total", "optipar_restored_aborted_total"),
    "optipar_lane_retried_total":
        ("optipar_retried_total", "optipar_restored_retried_total"),
    "optipar_lane_quarantined_total":
        ("optipar_quarantined_total", "optipar_restored_quarantined_total"),
    "optipar_lane_executed_total":
        ("optipar_launched_total", "optipar_restored_launched_total"),
}


def check_metrics(doc, errors):
    if doc.get("schema") not in KNOWN_SCHEMAS:
        errors.append(f"schema is {doc.get('schema')!r}, expected one of "
                      f"{sorted(KNOWN_SCHEMAS)}")
        return {}
    metrics = doc.get("metrics")
    if not isinstance(metrics, list):
        errors.append("'metrics' is not a list")
        return {}

    families = {}
    for fam in metrics:
        name = fam.get("name", "")
        if not name.startswith("optipar_"):
            errors.append(f"family {name!r} lacks the optipar_ prefix")
        if fam.get("type") not in KNOWN_TYPES:
            errors.append(f"family {name!r} has unknown type "
                          f"{fam.get('type')!r}")
        if name in families:
            errors.append(f"family {name!r} appears twice")
        samples = fam.get("samples")
        if not isinstance(samples, list) or not samples:
            errors.append(f"family {name!r} has no samples")
            continue
        families[name] = fam
        for s in samples:
            if not isinstance(s.get("labels"), dict):
                errors.append(f"{name}: sample without a labels object")
            if fam.get("type") == "histogram":
                buckets = s.get("buckets")
                if not buckets or buckets[-1].get("le") != "+Inf":
                    errors.append(f"{name}: histogram must end with +Inf")
                    continue
                counts = [b.get("count", 0) for b in buckets]
                if counts != sorted(counts):
                    errors.append(f"{name}: bucket counts not cumulative")
                if s.get("count") != counts[-1]:
                    errors.append(f"{name}: count {s.get('count')} != +Inf "
                                  f"bucket {counts[-1]}")
            elif not isinstance(s.get("value"), (int, float)):
                errors.append(f"{name}: sample without a numeric value")
        if name.endswith("_quantile_seconds"):
            if fam.get("type") != "gauge":
                errors.append(f"{name}: quantile summary must be a gauge")
            for s in samples:
                q = (s.get("labels") or {}).get("quantile")
                try:
                    ok = 0.0 < float(q) < 1.0
                except (TypeError, ValueError):
                    ok = False
                if not ok:
                    errors.append(f"{name}: sample quantile label "
                                  f"{q!r} is not in (0, 1)")
    return families


def family_sum(fam):
    return sum(s.get("value", 0) for s in fam.get("samples", []))


def check_reconciliation(families, errors):
    for lane_name, (total_name, restored_name) in RECONCILE.items():
        lane_fam = families.get(lane_name)
        total_fam = families.get(total_name)
        if lane_fam is None or total_fam is None:
            continue  # standalone exports may omit either side
        lane_sum = family_sum(lane_fam)
        restored = family_sum(families.get(restored_name, {}))
        total = family_sum(total_fam)
        if lane_sum + restored != total:
            errors.append(f"reconciliation: sum over lanes of {lane_name} "
                          f"= {lane_sum} (+ {restored} restored) "
                          f"but {total_name} = {total}")


def check_trace(path, errors):
    sums = {"committed": 0, "aborted": 0, "retried": 0, "quarantined": 0,
            "injected": 0}
    summary = None
    rounds = 0
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as e:
                errors.append(f"{path}:{lineno}: invalid JSON: {e}")
                continue
            kind = rec.get("type")
            if kind == "round":
                rounds += 1
                missing = ROUND_FIELDS - rec.keys()
                if missing:
                    errors.append(f"{path}:{lineno}: round record missing "
                                  f"{sorted(missing)}")
                for key in sums:
                    sums[key] += rec.get(key, 0)
            elif kind == "event":
                if rec.get("kind") not in EVENT_KINDS:
                    errors.append(f"{path}:{lineno}: unknown event kind "
                                  f"{rec.get('kind')!r}")
                for key in ("round", "lane", "a", "b", "x", "y"):
                    if key not in rec:
                        errors.append(f"{path}:{lineno}: event record "
                                      f"missing {key!r}")
            elif kind == "trace_summary":
                if summary is not None:
                    errors.append(f"{path}:{lineno}: duplicate "
                                  "trace_summary")
                summary = rec
            else:
                errors.append(f"{path}:{lineno}: unknown record type "
                              f"{kind!r}")
    if summary is not None:
        if summary.get("rounds") != rounds:
            errors.append(f"{path}: summary rounds {summary.get('rounds')} "
                          f"!= {rounds} round lines")
        for key, total in sums.items():
            if summary.get(key, 0) != total:
                errors.append(f"{path}: summary {key} "
                              f"{summary.get(key)} != sum over rounds "
                              f"{total}")
    elif rounds > 0:
        errors.append(f"{path}: round records without a trace_summary")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("metrics", nargs="?", default="-",
                        help="metrics JSON file ('-' or omitted: stdin)")
    parser.add_argument("--trace", help="trace JSONL file to validate")
    args = parser.parse_args()

    errors = []
    if args.metrics == "-":
        doc = json.load(sys.stdin)
    else:
        with open(args.metrics, encoding="utf-8") as fh:
            doc = json.load(fh)
    families = check_metrics(doc, errors)
    check_reconciliation(families, errors)
    if args.trace:
        check_trace(args.trace, errors)

    if errors:
        for e in errors:
            print(f"check_metrics: {e}", file=sys.stderr)
        return 1
    trace_note = f" + {args.trace}" if args.trace else ""
    print(f"check_metrics: OK ({len(families)} families{trace_note})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
