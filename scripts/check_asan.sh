#!/usr/bin/env bash
# Build the memory/UB-critical test binaries under AddressSanitizer +
# UndefinedBehaviorSanitizer (CMake preset "asan") and run them. The restore
# path deserializes UNTRUSTED bytes (snapshots, journals, graph files), so
# any heap overflow, use-after-free, or signed-overflow reachable from a
# corrupt input fails this script.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

cmake --preset asan
cmake --build --preset asan -j"$(nproc)"

export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1 detect_leaks=0}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1 print_stacktrace=1}"

status=0
for bin in test_checkpoint test_graph_io test_graph_io_fuzz \
           test_serve_wire_fuzz test_serve test_deadline \
           test_executor_chaos test_spec_executor test_simd_kernels \
           test_scheduler; do
  echo "== asan+ubsan: $bin =="
  if ! "build-asan/tests/$bin"; then
    status=1
  fi
done

if [[ $status -eq 0 ]]; then
  echo "asan: all memory/UB-critical test binaries clean"
fi
exit $status
