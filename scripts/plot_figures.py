#!/usr/bin/env python3
"""Plot the paper's figures from the bench binaries' CSV output.

Usage:
    build/bench/fig2_conflict_ratio --csv=fig2.csv
    build/bench/fig3_controller --csv=fig3.csv
    python3 scripts/plot_figures.py fig2.csv fig3.csv

Produces fig2.png / fig3.png next to the inputs. Requires matplotlib; the
bench binaries themselves already render ASCII versions, so this script is
optional polish for papers/slides.
"""

import csv
import pathlib
import sys


def read_csv(path):
    with open(path, newline="") as f:
        reader = csv.DictReader(f)
        rows = list(reader)
    return rows


def plot_fig2(path, plt):
    rows = read_csv(path)
    m = [float(r["m"]) for r in rows]
    fig, ax = plt.subplots(figsize=(7, 4.5))
    ax.plot(m, [float(r["bound_thm3_exact"]) for r in rows],
            label="worst-case bound (Thm. 3, exact)", lw=2)
    ax.plot(m, [float(r["bound_cor2"]) for r in rows],
            label="worst-case bound (Cor. 2 approx.)", ls="--")
    ax.errorbar(m, [float(r["r_random"]) for r in rows],
                yerr=[float(r["r_random_ci95"]) for r in rows],
                label="random graph (MC)", errorevery=4)
    ax.errorbar(m, [float(r["r_cliques_isolated"]) for r in rows],
                yerr=[float(r["r_cliq_ci95"]) for r in rows],
                label="cliques + isolated (MC)", errorevery=4)
    ax.set_xlabel("launched tasks m")
    ax.set_ylabel("conflict ratio  r̄(m)")
    ax.set_title("Fig. 2 — conflict ratio curves (n=2000, d=16)")
    ax.legend()
    ax.grid(alpha=0.3)
    out = pathlib.Path(path).with_suffix(".png")
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def plot_fig3(path, plt):
    rows = read_csv(path)
    fig, ax = plt.subplots(figsize=(7, 4.5))
    series = {}
    for r in rows:
        key = (r["graph"], r["controller"])
        series.setdefault(key, ([], []))
        series[key][0].append(float(r["step"]))
        series[key][1].append(float(r["m"]))
    for (graph, controller), (xs, ys) in sorted(series.items()):
        ax.plot(xs, ys, label=f"{graph} / {controller}",
                ls="-" if controller == "hybrid" else "--")
    ax.set_xlabel("temporal step t")
    ax.set_ylabel("allocated tasks m_t")
    ax.set_title("Fig. 3 — hybrid vs Recurrence-A convergence (rho=20%)")
    ax.legend()
    ax.grid(alpha=0.3)
    out = pathlib.Path(path).with_suffix(".png")
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def main():
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    import matplotlib
    matplotlib.use("Agg")
    import matplotlib.pyplot as plt
    for path in sys.argv[1:]:
        rows = read_csv(path)
        if not rows:
            print(f"{path}: empty, skipping")
            continue
        if "bound_thm3_exact" in rows[0]:
            plot_fig2(path, plt)
        elif "controller" in rows[0]:
            plot_fig3(path, plt)
        else:
            print(f"{path}: unrecognized columns {list(rows[0])}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
