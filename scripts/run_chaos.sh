#!/usr/bin/env bash
# Chaos sweep over the failure-hardened speculative runtime (DESIGN.md §8).
# Runs `optipar_cli chaos` across a grid of fault rates and seeds and
# asserts the recovery invariants the CLI self-checks (state == oracle over
# non-quarantined tasks, zero lock leaks, every task accounted for), plus
# two sweep-level properties:
#   * at fault rate 0 the run is transparent: no retries, no quarantines,
#     no watchdog firing, no degradation (zero false positives);
#   * with the same fault seed, two runs print identical summary lines
#     (deterministic chaos replay).
# Usage: scripts/run_chaos.sh [path-to-optipar_cli]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
CLI="${1:-$ROOT/build/tools/optipar_cli}"
if [[ ! -x "$CLI" ]]; then
  echo "run_chaos: $CLI not found; build first (cmake --build build)" >&2
  exit 2
fi

status=0
fail() {
  echo "run_chaos: FAIL: $*" >&2
  status=1
}

field() {  # field <line> <key>  -> value of key=value in the summary line
  sed -n "s/.*[[:space:]]$2=\([^[:space:]]*\).*/\1/p" <<<"$1"
}

# --- 1. Fault-free transparency: rate 0 must be a plain run. ---------------
for threads in 1 4; do
  line="$("$CLI" chaos --fault-rate=0 --threads="$threads" --seed=3 | tail -1)"
  echo "$line"
  [[ "$(field "$line" verdict)" == "pass" ]] || fail "rate 0 verdict (t=$threads)"
  [[ "$(field "$line" quarantined)" == "0" ]] || fail "rate 0 quarantine leak"
  [[ "$(field "$line" retried)" == "0" ]] || fail "rate 0 spurious retries"
  [[ "$(field "$line" injected)" == "0" ]] || fail "rate 0 spurious injections"
  [[ "$(field "$line" watchdog)" == "0" ]] || fail "rate 0 watchdog false positive"
  [[ "$(field "$line" degraded)" == "0" ]] || fail "rate 0 spurious degradation"
  [[ "$(field "$line" lock_leaks)" == "0" ]] || fail "rate 0 lock leak"
done

# --- 2. Fault-rate sweep: recovery invariants at every rate, certified. ----
for rate in 0.05 0.2 0.5; do
  for fseed in 11 42; do
    for threads in 1 4; do
      line="$("$CLI" chaos --fault-rate="$rate" --fault-seed="$fseed" \
                    --threads="$threads" --max-retries=3 --verify | tail -1)"
      echo "$line"
      [[ "$(field "$line" verdict)" == "pass" ]] \
        || fail "rate=$rate seed=$fseed t=$threads verdict"
      [[ "$(field "$line" lock_leaks)" == "0" ]] \
        || fail "rate=$rate seed=$fseed t=$threads lock leak"
      [[ "$(field "$line" certified)" == "ok" ]] \
        || fail "rate=$rate seed=$fseed t=$threads certificate refuted"
    done
  done
done

# --- 2b. Certified recovery on every scheduler backend. --------------------
# The completeness certificate (drained, accounted, no lock leaks, state ==
# oracle) must hold for chaos survivors no matter which draw backend ran.
for sched in random chromatic relaxed; do
  line="$("$CLI" chaos --fault-rate=0.2 --fault-seed=11 --threads=4 \
                --max-retries=3 --scheduler="$sched" --verify | tail -1)"
  echo "$line"
  [[ "$(field "$line" verdict)" == "pass" ]] \
    || fail "sched=$sched chaos verdict"
  [[ "$(field "$line" certified)" == "ok" ]] \
    || fail "sched=$sched certificate refuted"
done

# --- 3. Pool-lane death: salvage + graceful serial degradation. ------------
line="$("$CLI" chaos --lane-rate=1 --threads=4 --fault-seed=7 | tail -1)"
echo "$line"
[[ "$(field "$line" verdict)" == "pass" ]] || fail "lane-death verdict"
[[ "$(field "$line" degraded)" == "1" ]] || fail "lane death did not degrade"

# --- 4. Deterministic replay: same fault seed, identical summary. ----------
a="$("$CLI" chaos --fault-rate=0.4 --fault-seed=123 --threads=1 | tail -1)"
b="$("$CLI" chaos --fault-rate=0.4 --fault-seed=123 --threads=1 | tail -1)"
echo "$a"
[[ "$a" == "$b" ]] || fail "chaos replay with fixed fault seed diverged"

if [[ $status -eq 0 ]]; then
  echo "run_chaos: all chaos invariants hold"
fi
exit $status
