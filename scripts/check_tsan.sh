#!/usr/bin/env bash
# Build the four concurrency-critical test binaries under ThreadSanitizer
# (CMake preset "tsan") and run them. Any data race, lock-order inversion,
# or racy signal in the fork-join pool, the sharded speculative executor,
# or the abstract lock table fails this script.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

cmake --preset tsan
cmake --build --preset tsan -j"$(nproc)"

export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"

status=0
for bin in test_spec_executor test_executor_chaos test_thread_pool \
           test_item_lock test_deadline test_serve test_scheduler \
           chaos_test pipeline_stress_test; do
  echo "== tsan: $bin =="
  if ! "build-tsan/tests/$bin"; then
    status=1
  fi
done

if [[ $status -eq 0 ]]; then
  echo "tsan: all concurrency test binaries clean"
fi
exit $status
