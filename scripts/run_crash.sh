#!/usr/bin/env bash
# Kill-and-resume harness for the checkpoint/restore subsystem (DESIGN.md
# §11). Sweeps a deliberate in-process crash (--crash-point, an _Exit(137)
# with no destructors — SIGKILL semantics) across every durability step of
# the save path, resumes each killed run from disk, and asserts the
# byte-identity contract: the resumed run's per-round trace equals the
# uninterrupted reference run's, byte for byte. Also corrupts snapshots on
# purpose to drive the recovery ladder's fallback and clean-start rungs.
# Usage: scripts/run_crash.sh [path-to-optipar_cli]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
CLI="${1:-$ROOT/build/tools/optipar_cli}"
if [[ ! -x "$CLI" ]]; then
  echo "run_crash: $CLI not found; build first (cmake --build build)" >&2
  exit 2
fi

WORK="$(mktemp -d /tmp/optipar_crash.XXXXXX)"
trap 'rm -rf "$WORK"' EXIT

status=0
fail() {
  echo "run_crash: FAIL: $*" >&2
  status=1
}

# Workload: deterministic on-the-fly graph, so the resumed process rebuilds
# the exact run (and the snapshot's graph fingerprint must match).
# --threads=1 pins the deterministic single-lane configuration: multi-lane
# rounds hand draw chunks to lanes through a racing ticket counter, so only
# one lane replays byte-identically (same scope as run_chaos.sh's
# deterministic-replay check; DESIGN.md §11).
ARGS=(run --family=cliques --n=360 --d=5 --seed=9 --threads=1 --steps=500)

rounds_of() { grep '"type":"round"' "$1" || true; }

# --- 1. Reference run, and determinism sanity. -----------------------------
"${CLI}" "${ARGS[@]}" --trace-out="$WORK/ref.jsonl" >/dev/null
rounds_of "$WORK/ref.jsonl" >"$WORK/ref.rounds"
[[ -s "$WORK/ref.rounds" ]] || fail "reference run produced no rounds"

"${CLI}" "${ARGS[@]}" --trace-out="$WORK/ref2.jsonl" >/dev/null
rounds_of "$WORK/ref2.jsonl" >"$WORK/ref2.rounds"
cmp -s "$WORK/ref.rounds" "$WORK/ref2.rounds" \
  || fail "two uncheckpointed runs diverged (determinism broken)"

# --- 2. Checkpointing must not perturb the schedule. -----------------------
CKPT="$WORK/ckpt"
"${CLI}" "${ARGS[@]}" --checkpoint-dir="$CKPT" --checkpoint-every=3 \
         --trace-out="$WORK/ck.jsonl" >/dev/null
rounds_of "$WORK/ck.jsonl" >"$WORK/ck.rounds"
cmp -s "$WORK/ref.rounds" "$WORK/ck.rounds" \
  || fail "checkpointed run's trace differs from the uncheckpointed run"

# --- 3. Crash sweep: every injection point, two kill rounds. ---------------
total_rounds="$(wc -l <"$WORK/ref.rounds")"
for point in mid-journal after-journal mid-snapshot before-rename \
             after-rename; do
  for kill_round in 2 5; do
    [[ "$kill_round" -lt "$total_rounds" ]] || continue
    rm -rf "$CKPT"
    set +e
    "${CLI}" "${ARGS[@]}" --checkpoint-dir="$CKPT" --checkpoint-every=3 \
             --crash-point="$point" --crash-round="$kill_round" \
             >/dev/null 2>&1
    rc=$?
    set -e
    [[ "$rc" -eq 137 ]] \
      || fail "$point@$kill_round: expected _Exit(137), got rc=$rc"

    # --verify on the resume: the survivor must not only replay the
    # schedule byte-identically but also hold the completeness
    # certificate (drained, accounted, no lock leaks).
    out="$("${CLI}" "${ARGS[@]}" --checkpoint-dir="$CKPT" --resume --verify \
             --trace-out="$WORK/res.jsonl")" \
      || fail "$point@$kill_round: resume run failed"
    [[ "$out" == *"certified=ok"* ]] \
      || fail "$point@$kill_round: resume not certified: $out"
    rounds_of "$WORK/res.jsonl" >"$WORK/res.rounds"
    if cmp -s "$WORK/ref.rounds" "$WORK/res.rounds"; then
      echo "run_crash: $point@$kill_round resume byte-identical"
    else
      fail "$point@$kill_round: resumed trace differs from reference"
    fi
  done
done

# --- 4. Recovery ladder: corrupt snapshots are detected, never loaded. -----
corrupt() {  # flip 4 bytes inside the payload of $1
  dd if=/dev/zero of="$1" bs=1 seek=20 count=4 conv=notrunc 2>/dev/null
}

# Corrupt ONE generation after a mid-run kill: resume must fall back (to the
# older generation or a clean start) and still reproduce the reference.
rm -rf "$CKPT"
set +e
"${CLI}" "${ARGS[@]}" --checkpoint-dir="$CKPT" --checkpoint-every=2 \
         --crash-point=after-rename --crash-round=5 >/dev/null 2>&1
set -e
newest="$(ls -t "$CKPT"/snap-*.bin | head -1)"
corrupt "$newest"
out="$("${CLI}" "${ARGS[@]}" --checkpoint-dir="$CKPT" --resume --verify \
         --trace-out="$WORK/fb.jsonl")" \
  || fail "fallback resume failed"
[[ "$out" == *"certified=ok"* ]] || fail "fallback resume not certified"
rounds_of "$WORK/fb.jsonl" >"$WORK/fb.rounds"
cmp -s "$WORK/ref.rounds" "$WORK/fb.rounds" \
  || fail "fallback after corrupting newest snapshot diverged"
echo "run_crash: corrupt-newest fallback byte-identical"

# Corrupt BOTH generations: the ladder's last rung is a clean start, which
# must still converge to the reference trace (never silently wrong).
rm -rf "$CKPT"
set +e
"${CLI}" "${ARGS[@]}" --checkpoint-dir="$CKPT" --checkpoint-every=2 \
         --crash-point=after-rename --crash-round=5 >/dev/null 2>&1
set -e
for snap in "$CKPT"/snap-*.bin; do corrupt "$snap"; done
out="$("${CLI}" "${ARGS[@]}" --checkpoint-dir="$CKPT" --resume --verify \
         --trace-out="$WORK/cs.jsonl")" \
  || fail "clean-start resume failed"
[[ "$out" == *"certified=ok"* ]] || fail "clean-start resume not certified"
rounds_of "$WORK/cs.jsonl" >"$WORK/cs.rounds"
cmp -s "$WORK/ref.rounds" "$WORK/cs.rounds" \
  || fail "clean start after corrupting both snapshots diverged"
echo "run_crash: corrupt-both clean start byte-identical"

# --- 5. Scheduler backends: same contract under chromatic and relaxed. -----
# Each non-default draw backend must survive a mid-run kill and resume
# byte-identically against its OWN uninterrupted reference (the backends
# draw in different orders, so each gets its own trace scope). Also pins
# the CLI's unknown-backend refusal to the usage exit code.
for backend in chromatic relaxed; do
  SARGS=("${ARGS[@]}" --scheduler="$backend")
  "${CLI}" "${SARGS[@]}" --trace-out="$WORK/s_ref.jsonl" >/dev/null \
    || fail "$backend: reference run failed"
  rounds_of "$WORK/s_ref.jsonl" >"$WORK/s_ref.rounds"
  [[ -s "$WORK/s_ref.rounds" ]] \
    || fail "$backend: reference run produced no rounds"

  rm -rf "$CKPT"
  set +e
  "${CLI}" "${SARGS[@]}" --checkpoint-dir="$CKPT" --checkpoint-every=3 \
           --crash-point=after-rename --crash-round=4 >/dev/null 2>&1
  rc=$?
  set -e
  [[ "$rc" -eq 137 ]] || fail "$backend: expected _Exit(137), got rc=$rc"

  out="$("${CLI}" "${SARGS[@]}" --checkpoint-dir="$CKPT" --resume --verify \
           --trace-out="$WORK/s_res.jsonl")" \
    || fail "$backend: resume run failed"
  [[ "$out" == *"certified=ok"* ]] \
    || fail "$backend: resume not certified: $out"
  rounds_of "$WORK/s_res.jsonl" >"$WORK/s_res.rounds"
  if cmp -s "$WORK/s_ref.rounds" "$WORK/s_res.rounds"; then
    echo "run_crash: $backend backend resume byte-identical"
  else
    fail "$backend: resumed trace differs from reference"
  fi
done

set +e
"${CLI}" run --family=cliques --n=60 --d=5 --scheduler=bogus \
         >/dev/null 2>&1
rc=$?
set -e
[[ "$rc" -eq 2 ]] \
  || fail "unknown --scheduler should exit 2 (usage), got rc=$rc"
echo "run_crash: unknown scheduler refused with usage exit"

if [[ $status -eq 0 ]]; then
  echo "run_crash: all crash-recovery invariants hold"
fi
exit $status
