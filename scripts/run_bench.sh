#!/usr/bin/env bash
# Run the performance benchmarks and write BENCH_rt.json (bench/perf_micro)
# and BENCH_model.json (bench/model_sampling) at the repository root.
#
# Usage:
#   scripts/run_bench.sh [baseline.json]
#
# With no argument the artifacts hold the raw google-benchmark JSON of the
# current build. With a baseline file (google-benchmark JSON captured from an
# earlier build, e.g. the pre-refactor seed), every BENCH_rt.json entry gains
# "baseline_real_time" and "speedup" fields so before/after lives in one
# artifact.
#
# Benchmarks are only meaningful from an optimized, assert-free binary, so
# this script builds the `release` CMake preset (CMAKE_BUILD_TYPE=Release,
# build-release/) and then REFUSES to write either artifact unless the
# binary's own context keys say optipar_ndebug=1 and a non-debug build type.
# google-benchmark's own "library_build_type" context key describes the
# installed libbenchmark, not our binaries (bench/bench_context.hpp), so the
# artifacts rewrite it to the verified optipar build type and keep the
# library's value under "benchmark_library_build_type".
#
# BENCH_model.json additionally carries a regression sentinel: the adaptive
# engine must reach epsilon in at most half the sweeps of the plain stopping
# rule on the clique-structured workloads (cliques, mix), else exit 1.
#
# BENCH_rt.json records the telemetry overhead (DESIGN.md §10):
# BM_SpecExecutorRoundTelemetry/2048 vs BM_SpecExecutorRound/2048 lands in
# doc["telemetry_overhead"], with two sentinels:
#   * enabled-path budget — overhead > TELEMETRY_OVERHEAD_MAX (default 0.10)
#     exits 1. The budget defends an ABSOLUTE cost (~2-3 ns per executed
#     task for the counters + work histogram); it is expressed as a ratio
#     of the 2048-task round, so every round speedup shrinks the
#     denominator and inflates the reading. The software-pipelined round
#     (DESIGN.md §12) is 2-2.8x faster than the round the original 3%
#     figure was calibrated against — the same per-task cost now reads
#     7-8% (±1% probe noise) — hence 0.10. The gate exists to catch
#     order-of-magnitude mistakes (e.g. a clock read per task), not
#     single-percent drift;
#   * disabled-path guard — with a baseline, the BM_SpecExecutorRound/2048
#     median regressing more than TELEMETRY_DISABLED_REGRESSION_MAX
#     (default 0.03) vs that baseline exits 1 (telemetry off must stay free).
# The enabled-path delta is a few percent — below run-to-run drift on a busy
# host — so it gets its own measurement: BENCH_OVERHEAD_PROBES (default 7)
# short invocations of just the two executor-round benches, compared
# pairwise within each invocation (back-to-back, so host drift cancels) and
# reduced with the median across probes.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BASELINE="${1:-}"
REPS="${BENCH_REPS:-3}"
MIN_TIME="${BENCH_MIN_TIME:-0.2}"

if [[ -n "${BUILD_DIR:-}" ]]; then
  BUILD="$BUILD_DIR"
  if [[ ! -d "$BUILD" ]]; then
    echo "run_bench.sh: BUILD_DIR=$BUILD does not exist" >&2
    exit 1
  fi
  cmake --build "$BUILD" --target perf_micro model_sampling sched_compare \
    -j"$(nproc)"
else
  BUILD="$ROOT/build-release"
  cmake --preset release -S "$ROOT" >/dev/null
  cmake --build --preset release --target perf_micro model_sampling \
    sched_compare -j"$(nproc)"
fi

run_one() {  # run_one <binary> <raw-json-out>
  "$BUILD/bench/$1" \
    --benchmark_format=json \
    --benchmark_min_time="$MIN_TIME" \
    --benchmark_repetitions="$REPS" \
    --benchmark_report_aggregates_only=true \
    > "$2"
}

RAW_RT="$(mktemp)"
RAW_MODEL="$(mktemp)"
RAW_SCHED="$(mktemp)"
PROBE_DIR="$(mktemp -d)"
trap 'rm -f "$RAW_RT" "$RAW_MODEL" "$RAW_SCHED"; rm -rf "$PROBE_DIR"' EXIT
run_one perf_micro "$RAW_RT"
run_one model_sampling "$RAW_MODEL"

# Scheduler-backend head-to-head (DESIGN.md §14): random vs chromatic vs
# relaxed on the RMAT / Barabási–Albert workloads. Lands in
# BENCH_rt.json["sched_compare"]; the chromatic sentinel below demands
# zero aborts AND time-to-solution no worse than the paper's random draw.
"$BUILD/bench/sched_compare" \
  --nodes="${SCHED_NODES:-4000}" \
  --threads="${SCHED_THREADS:-4}" \
  --reps="${SCHED_REPS:-3}" \
  --out="$RAW_SCHED"

# Paired telemetry-overhead probes (see header). Each probe repeats the
# pair three times and the reducer takes the per-side MIN within the probe
# (rejecting intra-probe scheduler spikes) before forming the ratio.
PROBES="${BENCH_OVERHEAD_PROBES:-7}"
for i in $(seq 1 "$PROBES"); do
  "$BUILD/bench/perf_micro" \
    --benchmark_filter='^BM_SpecExecutorRound(Telemetry)?/2048$' \
    --benchmark_format=json \
    --benchmark_min_time="${BENCH_OVERHEAD_MIN_TIME:-0.1}" \
    --benchmark_repetitions=3 \
    > "$PROBE_DIR/probe_$i.json" 2>/dev/null
done

python3 - "$RAW_RT" "$ROOT/BENCH_rt.json" "$BASELINE" "$PROBE_DIR" \
  "$RAW_SCHED" <<'EOF'
import json
import sys

raw_path, out_path, baseline_path = sys.argv[1], sys.argv[2], sys.argv[3]
doc = json.load(open(raw_path))
doc["generated_by"] = "scripts/run_bench.sh"

ctx = doc.get("context", {})
if ctx.get("optipar_ndebug") != "1" or ctx.get("optipar_build_type") in (
        None, "", "debug"):
    sys.exit(f"run_bench.sh: refusing to record {out_path}: binary context "
             f"optipar_build_type={ctx.get('optipar_build_type')!r} "
             f"optipar_ndebug={ctx.get('optipar_ndebug')!r} is not an "
             "optimized NDEBUG build")

# google-benchmark populates context.library_build_type with the installed
# libbenchmark's own build flavor, which reads as if OUR binary were a
# debug build. Keep the library's value under an honest name and make the
# canonical key describe the optipar binary (already verified above).
ctx["benchmark_library_build_type"] = ctx.get("library_build_type")
ctx["library_build_type"] = ctx.get("optipar_build_type")

def comparable(b):
    # With aggregate reporting, compare medians only (means/stddev/cv are
    # not meaningful as ratios).
    agg = b.get("aggregate_name")
    return "real_time" in b and (agg is None or agg == "median")

if baseline_path:
    base = json.load(open(baseline_path))
    base_times = {b["name"]: b["real_time"] for b in base.get("benchmarks", [])
                  if comparable(b)}
    for b in doc.get("benchmarks", []):
        name = b.get("name")
        if comparable(b) and name in base_times and b.get("real_time"):
            b["baseline_real_time"] = base_times[name]
            b["speedup"] = round(base_times[name] / b["real_time"], 3)
    doc["baseline_context"] = base.get("context", {})

# Telemetry overhead (DESIGN.md §10): enabled vs disabled on the
# steady-state 2048-task round, measured by the paired probes (median of
# within-invocation ratios — drift-robust), plus the disabled-path
# regression guard on the main pass's median.
import glob
import os

probe_dir = sys.argv[4]

def median_of(prefix):
    for b in doc.get("benchmarks", []):
        if (b.get("run_name", b.get("name", "")) == prefix and
                b.get("aggregate_name", "median") == "median" and
                b.get("real_time")):
            return b["real_time"]
    return None

ratios = []
for path in sorted(glob.glob(os.path.join(probe_dir, "probe_*.json"))):
    probe = json.load(open(path))
    times = {}
    for b in probe.get("benchmarks", []):
        if b.get("run_type") == "iteration" and "real_time" in b:
            name = b.get("run_name", b.get("name", ""))
            times.setdefault(name, []).append(b["real_time"])
    d = times.get("BM_SpecExecutorRound/2048")
    e = times.get("BM_SpecExecutorRoundTelemetry/2048")
    if d and e:
        ratios.append(min(e) / min(d) - 1.0)

failures = []
disabled = median_of("BM_SpecExecutorRound/2048")
enabled = median_of("BM_SpecExecutorRoundTelemetry/2048")
if ratios:
    overhead = sorted(ratios)[len(ratios) // 2]
    budget = float(os.environ.get("TELEMETRY_OVERHEAD_MAX", "0.10"))
    doc["telemetry_overhead"] = {
        "bench": "BM_SpecExecutorRound/2048",
        "overhead": round(overhead, 4),
        "budget": budget,
        "probe_ratios": [round(r, 4) for r in ratios],
        "disabled_real_time": disabled,
        "enabled_real_time": enabled,
    }
    if overhead > budget:
        failures.append(f"telemetry-enabled round is {overhead:.1%} slower "
                        f"than disabled (budget {budget:.0%}, median of "
                        f"{len(ratios)} paired probes)")
else:
    failures.append("telemetry-overhead probes produced no "
                    "SpecExecutorRound/2048 pairs")

if baseline_path and disabled:
    # Aggregate baseline entries carry the "_median" suffix in "name";
    # single-rep baselines use the bare run name.
    base_disabled = base_times.get(
        "BM_SpecExecutorRound/2048_median",
        base_times.get("BM_SpecExecutorRound/2048"))
    if base_disabled:
        regression = disabled / base_disabled - 1.0
        guard = float(os.environ.get(
            "TELEMETRY_DISABLED_REGRESSION_MAX", "0.03"))
        doc.setdefault("telemetry_overhead", {})["disabled_vs_baseline"] = (
            round(regression, 4))
        if regression > guard:
            failures.append(
                f"telemetry-off round regressed {regression:.1%} vs the "
                f"baseline (guard {guard:.0%}) — the disabled path must "
                "stay free")

# Scheduler head-to-head + chromatic sentinel (DESIGN.md §14). The
# chromatic backend's contract is structural (a proper coloring admits no
# same-round conflict), so aborts==0 is exact on EVERY workload. The tts
# bound is gated on the coloring workloads only: there random re-executes
# most of each round (conflict ratio > 0.9), so chromatic wins 10-20x
# with margin to spare. On the moderate-conflict MIS workloads chromatic
# is round-bound (one color class per round) and tts is a wash — recorded,
# not gated. SCHED_TTS_SLACK (default 1.0) exists for noisy hosts.
import os as _os

sched = json.load(open(sys.argv[5]))
doc["sched_compare"] = sched
slack = float(_os.environ.get("SCHED_TTS_SLACK", "1.0"))
for wl, cells in sched.get("workloads", {}).items():
    chromatic, random_ = cells.get("chromatic"), cells.get("random")
    if not chromatic or not random_:
        failures.append(f"sched_compare/{wl}: missing backend cell")
        continue
    if chromatic["aborted"] != 0:
        failures.append(f"sched_compare/{wl}: chromatic aborted "
                        f"{chromatic['aborted']} tasks (must be 0)")
    if (wl.endswith("-coloring") and
            chromatic["time_ms"] > random_["time_ms"] * slack):
        failures.append(
            f"sched_compare/{wl}: chromatic tts {chromatic['time_ms']:.1f} "
            f"ms exceeds random {random_['time_ms']:.1f} ms x {slack}")
    for name, cell in cells.items():
        if not cell.get("correct", False):
            failures.append(f"sched_compare/{wl}/{name}: incorrect answer")

json.dump(doc, open(out_path, "w"), indent=1)
print(f"wrote {out_path}")
for wl, cells in sched.get("workloads", {}).items():
    r, c = cells.get("random", {}), cells.get("chromatic", {})
    if r and c and c["time_ms"] > 0:
        print(f"  sched_compare {wl:15s} random {r['time_ms']:>8.1f} ms "
              f"(aborted {r['aborted']}) -> chromatic {c['time_ms']:>8.1f} "
              f"ms (aborted {c['aborted']}, "
              f"{r['time_ms'] / c['time_ms']:.2f}x)")
for b in doc.get("benchmarks", []):
    if "speedup" in b:
        print(f"  {b['name']:45s} {b['baseline_real_time']:>12.0f} ns -> "
              f"{b['real_time']:>12.0f} ns   {b['speedup']:.2f}x")
to = doc.get("telemetry_overhead")
if to and "overhead" in to:
    print(f"  telemetry overhead on {to['bench']}: {to['overhead']:+.1%} "
          f"(budget {to['budget']:.0%}, median of {len(to['probe_ratios'])} "
          "paired probes)")
if failures:
    sys.exit("run_bench.sh: telemetry/scheduler sentinel tripped:\n  "
             + "\n  ".join(failures))
EOF

python3 - "$RAW_MODEL" "$ROOT/BENCH_model.json" <<'EOF'
import json
import sys

raw_path, out_path = sys.argv[1], sys.argv[2]
doc = json.load(open(raw_path))
doc["generated_by"] = "scripts/run_bench.sh"

ctx = doc.get("context", {})
if ctx.get("optipar_ndebug") != "1" or ctx.get("optipar_build_type") in (
        None, "", "debug"):
    sys.exit(f"run_bench.sh: refusing to record {out_path}: binary context "
             f"optipar_build_type={ctx.get('optipar_build_type')!r} "
             f"optipar_ndebug={ctx.get('optipar_ndebug')!r} is not an "
             "optimized NDEBUG build")

# Same context fix-up as BENCH_rt.json: library_build_type must describe
# the optipar binary, not the installed libbenchmark.
ctx["benchmark_library_build_type"] = ctx.get("library_build_type")
ctx["library_build_type"] = ctx.get("optipar_build_type")

# Sweeps-to-epsilon per workload, from the deterministic "sweeps" counter
# (identical across repetitions; any aggregate or plain entry will do —
# run_name is the name without the aggregate suffix).
sweeps = {}
for b in doc.get("benchmarks", []):
    name = b.get("run_name", b.get("name", ""))
    if name.startswith("BM_SweepsToEpsilon/") and b.get("sweeps"):
        sweeps[name.split("/")[1]] = b["sweeps"]

sentinel = {}
failures = []
for wl in ("cliques", "mix"):
    plain, adaptive = sweeps.get(f"plain_{wl}"), sweeps.get(f"adaptive_{wl}")
    if not plain or not adaptive:
        failures.append(f"missing sweeps counters for workload {wl!r}")
        continue
    ratio = plain / adaptive
    sentinel[wl] = {"plain_sweeps": plain, "adaptive_sweeps": adaptive,
                    "reduction": round(ratio, 2)}
    if ratio < 2.0:
        failures.append(f"{wl}: adaptive used {adaptive:.0f} sweeps vs plain "
                        f"{plain:.0f} ({ratio:.2f}x < 2x reduction floor)")
doc["adaptive_sentinel"] = sentinel

json.dump(doc, open(out_path, "w"), indent=1)
print(f"wrote {out_path}")
for wl, s in sentinel.items():
    print(f"  {wl:10s} plain {s['plain_sweeps']:>7.0f} sweeps -> adaptive "
          f"{s['adaptive_sweeps']:>7.0f}   {s['reduction']:.2f}x fewer")
if failures:
    sys.exit("run_bench.sh: adaptive-engine regression sentinel tripped:\n  "
             + "\n  ".join(failures))
EOF
