#!/usr/bin/env bash
# Run the runtime micro-benchmarks (bench/perf_micro) and write BENCH_rt.json
# at the repository root.
#
# Usage:
#   scripts/run_bench.sh [baseline.json]
#
# With no argument, BENCH_rt.json holds the raw google-benchmark JSON of the
# current build. With a baseline file (google-benchmark JSON captured from an
# earlier build, e.g. the pre-refactor seed), every benchmark entry gains
# "baseline_real_time" and "speedup" fields so before/after lives in one
# artifact.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"
OUT="$ROOT/BENCH_rt.json"
BASELINE="${1:-}"

if [[ ! -d "$BUILD" ]]; then
  cmake -B "$BUILD" -S "$ROOT"
fi
cmake --build "$BUILD" --target perf_micro -j"$(nproc)"

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT
REPS="${BENCH_REPS:-3}"
"$BUILD/bench/perf_micro" \
  --benchmark_format=json \
  --benchmark_min_time="${BENCH_MIN_TIME:-0.2}" \
  --benchmark_repetitions="$REPS" \
  --benchmark_report_aggregates_only=true \
  > "$RAW"

python3 - "$RAW" "$OUT" "$BASELINE" <<'EOF'
import json
import sys

raw_path, out_path, baseline_path = sys.argv[1], sys.argv[2], sys.argv[3]
doc = json.load(open(raw_path))
doc["generated_by"] = "scripts/run_bench.sh"

def comparable(b):
    # With aggregate reporting, compare medians only (means/stddev/cv are
    # not meaningful as ratios).
    agg = b.get("aggregate_name")
    return "real_time" in b and (agg is None or agg == "median")

if baseline_path:
    base = json.load(open(baseline_path))
    base_times = {b["name"]: b["real_time"] for b in base.get("benchmarks", [])
                  if comparable(b)}
    for b in doc.get("benchmarks", []):
        name = b.get("name")
        if comparable(b) and name in base_times and b.get("real_time"):
            b["baseline_real_time"] = base_times[name]
            b["speedup"] = round(base_times[name] / b["real_time"], 3)
    doc["baseline_context"] = base.get("context", {})

json.dump(doc, open(out_path, "w"), indent=1)
print(f"wrote {out_path}")
for b in doc.get("benchmarks", []):
    if "speedup" in b:
        print(f"  {b['name']:45s} {b['baseline_real_time']:>12.0f} ns -> "
              f"{b['real_time']:>12.0f} ns   {b['speedup']:.2f}x")
EOF
