file(REMOVE_RECURSE
  "CMakeFiles/model_vs_runtime.dir/model_vs_runtime.cpp.o"
  "CMakeFiles/model_vs_runtime.dir/model_vs_runtime.cpp.o.d"
  "model_vs_runtime"
  "model_vs_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_vs_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
