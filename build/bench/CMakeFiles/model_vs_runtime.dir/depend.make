# Empty dependencies file for model_vs_runtime.
# This may be replaced when dependencies are built.
