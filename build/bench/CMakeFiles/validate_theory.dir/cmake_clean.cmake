file(REMOVE_RECURSE
  "CMakeFiles/validate_theory.dir/validate_theory.cpp.o"
  "CMakeFiles/validate_theory.dir/validate_theory.cpp.o.d"
  "validate_theory"
  "validate_theory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validate_theory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
