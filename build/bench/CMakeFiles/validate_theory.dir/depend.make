# Empty dependencies file for validate_theory.
# This may be replaced when dependencies are built.
