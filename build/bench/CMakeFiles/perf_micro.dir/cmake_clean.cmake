file(REMOVE_RECURSE
  "CMakeFiles/perf_micro.dir/perf_micro.cpp.o"
  "CMakeFiles/perf_micro.dir/perf_micro.cpp.o.d"
  "perf_micro"
  "perf_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
