# Empty dependencies file for perf_micro.
# This may be replaced when dependencies are built.
