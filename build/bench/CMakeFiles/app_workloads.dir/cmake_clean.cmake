file(REMOVE_RECURSE
  "CMakeFiles/app_workloads.dir/app_workloads.cpp.o"
  "CMakeFiles/app_workloads.dir/app_workloads.cpp.o.d"
  "app_workloads"
  "app_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
