# Empty dependencies file for app_workloads.
# This may be replaced when dependencies are built.
