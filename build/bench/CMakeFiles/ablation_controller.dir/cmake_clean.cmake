file(REMOVE_RECURSE
  "CMakeFiles/ablation_controller.dir/ablation_controller.cpp.o"
  "CMakeFiles/ablation_controller.dir/ablation_controller.cpp.o.d"
  "ablation_controller"
  "ablation_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
