# Empty dependencies file for fig2_conflict_ratio.
# This may be replaced when dependencies are built.
