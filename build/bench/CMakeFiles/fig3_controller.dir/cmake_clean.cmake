file(REMOVE_RECURSE
  "CMakeFiles/fig3_controller.dir/fig3_controller.cpp.o"
  "CMakeFiles/fig3_controller.dir/fig3_controller.cpp.o.d"
  "fig3_controller"
  "fig3_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
