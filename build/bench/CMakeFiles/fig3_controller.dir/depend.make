# Empty dependencies file for fig3_controller.
# This may be replaced when dependencies are built.
