# Empty dependencies file for sec41_adaptation.
# This may be replaced when dependencies are built.
