file(REMOVE_RECURSE
  "CMakeFiles/sec41_adaptation.dir/sec41_adaptation.cpp.o"
  "CMakeFiles/sec41_adaptation.dir/sec41_adaptation.cpp.o.d"
  "sec41_adaptation"
  "sec41_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec41_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
