file(REMOVE_RECURSE
  "CMakeFiles/delaunay_refinement.dir/delaunay_refinement.cpp.o"
  "CMakeFiles/delaunay_refinement.dir/delaunay_refinement.cpp.o.d"
  "delaunay_refinement"
  "delaunay_refinement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delaunay_refinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
