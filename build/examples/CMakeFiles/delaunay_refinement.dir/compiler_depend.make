# Empty compiler generated dependencies file for delaunay_refinement.
# This may be replaced when dependencies are built.
