# Empty dependencies file for survey_propagation.
# This may be replaced when dependencies are built.
