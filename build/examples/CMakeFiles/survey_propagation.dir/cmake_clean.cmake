file(REMOVE_RECURSE
  "CMakeFiles/survey_propagation.dir/survey_propagation.cpp.o"
  "CMakeFiles/survey_propagation.dir/survey_propagation.cpp.o.d"
  "survey_propagation"
  "survey_propagation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/survey_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
