# Empty compiler generated dependencies file for boruvka_mst.
# This may be replaced when dependencies are built.
