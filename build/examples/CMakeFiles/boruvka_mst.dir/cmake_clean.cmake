file(REMOVE_RECURSE
  "CMakeFiles/boruvka_mst.dir/boruvka_mst.cpp.o"
  "CMakeFiles/boruvka_mst.dir/boruvka_mst.cpp.o.d"
  "boruvka_mst"
  "boruvka_mst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boruvka_mst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
