file(REMOVE_RECURSE
  "CMakeFiles/adaptive_vs_fixed.dir/adaptive_vs_fixed.cpp.o"
  "CMakeFiles/adaptive_vs_fixed.dir/adaptive_vs_fixed.cpp.o.d"
  "adaptive_vs_fixed"
  "adaptive_vs_fixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_vs_fixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
