# Empty compiler generated dependencies file for adaptive_vs_fixed.
# This may be replaced when dependencies are built.
