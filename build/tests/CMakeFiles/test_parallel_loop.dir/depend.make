# Empty dependencies file for test_parallel_loop.
# This may be replaced when dependencies are built.
