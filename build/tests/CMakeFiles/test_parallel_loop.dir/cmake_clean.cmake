file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_loop.dir/test_parallel_loop.cpp.o"
  "CMakeFiles/test_parallel_loop.dir/test_parallel_loop.cpp.o.d"
  "test_parallel_loop"
  "test_parallel_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
