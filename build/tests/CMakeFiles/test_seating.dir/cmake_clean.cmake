file(REMOVE_RECURSE
  "CMakeFiles/test_seating.dir/test_seating.cpp.o"
  "CMakeFiles/test_seating.dir/test_seating.cpp.o.d"
  "test_seating"
  "test_seating.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_seating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
