# Empty compiler generated dependencies file for test_seating.
# This may be replaced when dependencies are built.
