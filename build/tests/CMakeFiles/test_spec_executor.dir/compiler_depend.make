# Empty compiler generated dependencies file for test_spec_executor.
# This may be replaced when dependencies are built.
