file(REMOVE_RECURSE
  "CMakeFiles/test_spec_executor.dir/test_spec_executor.cpp.o"
  "CMakeFiles/test_spec_executor.dir/test_spec_executor.cpp.o.d"
  "test_spec_executor"
  "test_spec_executor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spec_executor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
