file(REMOVE_RECURSE
  "CMakeFiles/test_dynamic_graph.dir/test_dynamic_graph.cpp.o"
  "CMakeFiles/test_dynamic_graph.dir/test_dynamic_graph.cpp.o.d"
  "test_dynamic_graph"
  "test_dynamic_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dynamic_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
