# Empty compiler generated dependencies file for test_csr_graph.
# This may be replaced when dependencies are built.
