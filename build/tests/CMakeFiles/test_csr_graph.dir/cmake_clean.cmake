file(REMOVE_RECURSE
  "CMakeFiles/test_csr_graph.dir/test_csr_graph.cpp.o"
  "CMakeFiles/test_csr_graph.dir/test_csr_graph.cpp.o.d"
  "test_csr_graph"
  "test_csr_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_csr_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
