# Empty compiler generated dependencies file for test_item_lock.
# This may be replaced when dependencies are built.
