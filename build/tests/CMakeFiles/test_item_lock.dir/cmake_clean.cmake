file(REMOVE_RECURSE
  "CMakeFiles/test_item_lock.dir/test_item_lock.cpp.o"
  "CMakeFiles/test_item_lock.dir/test_item_lock.cpp.o.d"
  "test_item_lock"
  "test_item_lock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_item_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
