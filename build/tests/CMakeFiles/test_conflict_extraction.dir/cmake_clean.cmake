file(REMOVE_RECURSE
  "CMakeFiles/test_conflict_extraction.dir/test_conflict_extraction.cpp.o"
  "CMakeFiles/test_conflict_extraction.dir/test_conflict_extraction.cpp.o.d"
  "test_conflict_extraction"
  "test_conflict_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_conflict_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
