# Empty dependencies file for test_conflict_extraction.
# This may be replaced when dependencies are built.
