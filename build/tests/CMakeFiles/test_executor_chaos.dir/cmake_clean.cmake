file(REMOVE_RECURSE
  "CMakeFiles/test_executor_chaos.dir/test_executor_chaos.cpp.o"
  "CMakeFiles/test_executor_chaos.dir/test_executor_chaos.cpp.o.d"
  "test_executor_chaos"
  "test_executor_chaos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_executor_chaos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
