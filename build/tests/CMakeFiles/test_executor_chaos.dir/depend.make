# Empty dependencies file for test_executor_chaos.
# This may be replaced when dependencies are built.
