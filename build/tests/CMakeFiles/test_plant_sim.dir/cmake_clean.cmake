file(REMOVE_RECURSE
  "CMakeFiles/test_plant_sim.dir/test_plant_sim.cpp.o"
  "CMakeFiles/test_plant_sim.dir/test_plant_sim.cpp.o.d"
  "test_plant_sim"
  "test_plant_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_plant_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
