# Empty compiler generated dependencies file for test_worklist_policy.
# This may be replaced when dependencies are built.
