file(REMOVE_RECURSE
  "CMakeFiles/test_worklist_policy.dir/test_worklist_policy.cpp.o"
  "CMakeFiles/test_worklist_policy.dir/test_worklist_policy.cpp.o.d"
  "test_worklist_policy"
  "test_worklist_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_worklist_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
