# Empty dependencies file for test_refine.
# This may be replaced when dependencies are built.
