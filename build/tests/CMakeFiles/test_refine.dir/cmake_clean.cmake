file(REMOVE_RECURSE
  "CMakeFiles/test_refine.dir/test_refine.cpp.o"
  "CMakeFiles/test_refine.dir/test_refine.cpp.o.d"
  "test_refine"
  "test_refine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_refine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
