file(REMOVE_RECURSE
  "CMakeFiles/test_model_families.dir/test_model_families.cpp.o"
  "CMakeFiles/test_model_families.dir/test_model_families.cpp.o.d"
  "test_model_families"
  "test_model_families.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_families.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
