# Empty compiler generated dependencies file for test_model_families.
# This may be replaced when dependencies are built.
