# Empty dependencies file for test_algos.
# This may be replaced when dependencies are built.
